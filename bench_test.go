// Package bench is the top-level benchmark harness: one benchmark per table
// and figure of the paper (plus the extension ablations), each regenerating
// the corresponding rows/series through internal/experiments. The first
// iteration of every benchmark prints the rendered result, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation in one run. Results are cached under
// artifacts/cache — the first run trains models and simulates measurements,
// subsequent runs re-render from cache.
package bench

import (
	"io"
	"os"
	"testing"

	"advhunter/internal/experiments"
)

// benchOpts returns the options used by the harness. The BENCH_QUICK
// environment variable switches to reduced workloads (useful on slow CI).
func benchOpts() experiments.Options {
	return experiments.Options{
		CacheDir: "artifacts/cache",
		Quick:    os.Getenv("BENCH_QUICK") != "",
	}
}

// runExperiment executes one registered experiment b.N times, rendering the
// result to stdout on the first iteration only.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		var out io.Writer = io.Discard
		if i == 0 {
			out = os.Stdout
		}
		if err := experiments.Run(id, opts, out); err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (scenarios and clean accuracies).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1 (activated-neuron distributions on
// the case-study CNN).
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFigure3 regenerates Figure 3 (core-event distributions under
// targeted FGSM in S2).
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkTable2 regenerates Table 2 (per-category accuracy and F1 across
// the five core events).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFigure4 regenerates Figure 4 (attack effectiveness and detection
// across attacks, strengths and scenarios).
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates Figure 5 (cache sub-event distributions under
// untargeted FGSM).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable3 regenerates Table 3 (F1 per cache-miss sub-event vs attack
// strength).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFigure6 regenerates Figure 6 (F1 vs validation-set size with
// resampled validation draws).
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkAblationReplacement sweeps the LLC replacement policy (extension).
func BenchmarkAblationReplacement(b *testing.B) { runExperiment(b, "ablation-replacement") }

// BenchmarkAblationPrefetch sweeps L1D prefetchers (extension).
func BenchmarkAblationPrefetch(b *testing.B) { runExperiment(b, "ablation-prefetch") }

// BenchmarkAblationQuant sweeps tensor storage precision (extension).
func BenchmarkAblationQuant(b *testing.B) { runExperiment(b, "ablation-quant") }

// BenchmarkAblationBranchy compares SIMD and scalar kernels (extension).
func BenchmarkAblationBranchy(b *testing.B) { runExperiment(b, "ablation-branchy") }

// BenchmarkAblationNoise sweeps measurement noise and repetition count
// (extension).
func BenchmarkAblationNoise(b *testing.B) { runExperiment(b, "ablation-noise") }

// BenchmarkAblationDetectors compares detector variants and baselines
// (extension).
func BenchmarkAblationDetectors(b *testing.B) { runExperiment(b, "ablation-detectors") }

// BenchmarkBackendComparison runs every registered detector backend on one
// workload (extension).
func BenchmarkBackendComparison(b *testing.B) { runExperiment(b, "backend-comparison") }

// BenchmarkAblationCoRunner sweeps shared-LLC co-runner contention
// (extension).
func BenchmarkAblationCoRunner(b *testing.B) { runExperiment(b, "ablation-corunner") }

// BenchmarkControlNoise runs the random-noise control (extension).
func BenchmarkControlNoise(b *testing.B) { runExperiment(b, "control-noise") }

// BenchmarkAdaptiveAttacker sweeps the AdvHunter-aware adaptive attacker
// (extension).
func BenchmarkAdaptiveAttacker(b *testing.B) { runExperiment(b, "adaptive-attacker") }
