module advhunter

go 1.22
