// Command hpcstat mimics `perf stat` for the simulated machine: it runs one
// (or several) inferences of a scenario model on the instrumented engine and
// prints the counter readings, optionally comparing a clean input against
// its adversarially perturbed twin.
//
// Usage:
//
//	hpcstat -scenario S2 [-image 3] [-repeats 10] [-adversarial] [-cache DIR]
package main

import (
	"flag"
	"fmt"
	"os"

	"advhunter/internal/attack"
	"advhunter/internal/data"
	"advhunter/internal/experiments"
	"advhunter/internal/uarch/hpc"
)

func main() {
	scenario := flag.String("scenario", "S2", "scenario id (S1, S2, S3, CS)")
	image := flag.Int("image", 0, "test-image index to measure")
	repeats := flag.Int("repeats", 10, "measurement repetitions (perf-style -r)")
	adversarial := flag.Bool("adversarial", false, "also measure a targeted-FGSM twin of the image")
	eps := flag.Float64("eps", 0.5, "attack strength for -adversarial")
	cacheDir := flag.String("cache", "artifacts/cache", "model cache directory")
	verbose := flag.Bool("v", false, "log progress")
	flag.Parse()

	opts := experiments.Options{CacheDir: *cacheDir}
	if *verbose {
		opts.Log = os.Stderr
	}
	env, err := experiments.LoadEnv(*scenario, opts)
	if err != nil {
		fail(err)
	}
	if *image < 0 || *image >= len(env.DS.Test) {
		fail(fmt.Errorf("image index %d out of range [0,%d)", *image, len(env.DS.Test)))
	}
	sample := env.DS.Test[*image]
	env.Meas.R = *repeats

	m := env.Meas.Measure(sample.X)
	pred, counts := m.Pred, m.Counts
	fmt.Printf("Performance counter stats for inference of test image %d (%d runs):\n\n",
		*image, *repeats)
	printCounts(counts)
	fmt.Printf("\n  true class:      %q\n", data.ClassName(env.Scn.Dataset, sample.Label))
	fmt.Printf("  predicted class: %q\n", data.ClassName(env.Scn.Dataset, pred))

	if !*adversarial {
		return
	}
	atk := attack.NewTargetedFGSM(*eps, env.Scn.TargetClass)
	adv := atk.Perturb(env.Model, sample.X, sample.Label)
	am := env.Meas.Measure(adv)
	advPred, advCounts := am.Pred, am.Counts
	fmt.Printf("\nPerformance counter stats for its targeted-FGSM twin (ε=%g → %q):\n\n",
		*eps, data.ClassName(env.Scn.Dataset, env.Scn.TargetClass))
	printCounts(advCounts)
	fmt.Printf("\n  predicted class: %q\n", data.ClassName(env.Scn.Dataset, advPred))

	fmt.Println("\ndelta (adversarial − clean):")
	for _, e := range hpc.AllEvents() {
		d := advCounts.Get(e) - counts.Get(e)
		rel := 0.0
		if counts.Get(e) != 0 {
			rel = 100 * d / counts.Get(e)
		}
		fmt.Printf("  %22s  %+12.1f  (%+.2f%%)\n", e, d, rel)
	}
}

// printCounts renders one reading in perf stat's visual style.
func printCounts(c hpc.Counts) {
	for _, e := range hpc.AllEvents() {
		fmt.Printf("  %16.1f      %s\n", c.Get(e), e)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "hpcstat: %v\n", err)
	os.Exit(1)
}
