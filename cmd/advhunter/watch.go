package main

// `advhunter watch` — a terminal dashboard over a running serve or cluster
// instance. It polls the plain HTTP surfaces every instance already exposes
// (/metrics, /debug/flight, /alerts, /debug/trace), so it needs no agent in
// the target process and works identically against a single server, a
// cluster router (where the merged pages aggregate the fleet), or a server
// booted by loadgen.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"advhunter/internal/obs"
	"advhunter/internal/workload"
)

func cmdWatch(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of the serve or cluster instance to watch")
	interval := fs.Duration("interval", 2*time.Second, "poll cadence")
	count := fs.Int("count", 0, "frames to render before exiting (0 = until interrupted)")
	window := fs.Duration("window", time.Minute, "flight-recorder window for rates and latency quantiles")
	traces := fs.Int("traces", 5, "recent request traces to show (0 hides the section)")
	plain := fs.Bool("plain", false, "append frames instead of redrawing in place (for logs and pipes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimSuffix(*target, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	for frame := 1; ; frame++ {
		f, err := pollFrame(client, base, *window, *traces)
		if err != nil {
			// A dead target on the first frame is a usage problem; later it
			// is a restart or drain in progress — keep watching.
			if frame == 1 {
				return fmt.Errorf("polling %s: %w", base, err)
			}
			fmt.Fprintf(stderr, "watch: %v (retrying)\n", err)
		} else {
			if !*plain && frame > 1 {
				fmt.Fprint(stdout, "\x1b[H\x1b[2J") // home + clear: redraw in place
			}
			renderFrame(stdout, base, frame, f)
		}
		if *count > 0 && frame >= *count {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// watchFrame is one poll of the target's observability surfaces. The flight,
// alert and trace sections are optional — a target running with those
// surfaces off just yields a smaller dashboard.
type watchFrame struct {
	snap   workload.Snapshot
	flight *flightView
	alerts []obs.AlertView
	traces []obs.TraceView
}

// flightView decodes the subset of /debug/flight the dashboard renders.
type flightView struct {
	WindowSecs  float64                       `json:"window_seconds"`
	SeriesCount int                           `json:"series_count"`
	Rates       map[string]float64            `json:"rates"`
	Quantiles   map[string]map[string]float64 `json:"quantiles"`
}

func pollFrame(client *http.Client, base string, window time.Duration, traces int) (watchFrame, error) {
	var f watchFrame
	snap, err := workload.Scrape(client, base)
	if err != nil {
		return f, err
	}
	f.snap = snap

	// The debug surfaces are opt-in on the target; a 404 means "off", not
	// "broken", so each one degrades to a hidden section.
	var fv flightView
	if getJSON(client, fmt.Sprintf("%s/debug/flight?window=%s", base, window), &fv) == nil {
		f.flight = &fv
	}
	var ap struct {
		Alerts []obs.AlertView `json:"alerts"`
	}
	if getJSON(client, base+"/alerts", &ap) == nil {
		f.alerts = ap.Alerts
	}
	if traces > 0 {
		var tp struct {
			Traces []obs.TraceView `json:"traces"`
		}
		if getJSON(client, fmt.Sprintf("%s/debug/trace?last=%d", base, traces), &tp) == nil {
			f.traces = tp.Traces
		}
	}
	return f, nil
}

// getJSON fetches url and decodes a 200 JSON body into v; any non-200 status
// is an error so optional surfaces fall away cleanly.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func renderFrame(w io.Writer, base string, frame int, f watchFrame) {
	fmt.Fprintf(w, "advhunter watch — %s   frame %d   %s\n\n", base, frame, time.Now().Format(time.RFC3339))

	// Traffic: lifetime totals from /metrics, live rates and latency from the
	// flight recorder when the target runs one.
	requests := f.snap.Sum("advhunter_requests_total")
	scans := f.snap.Sum("advhunter_scans_total")
	flagged := f.snap.Sum("advhunter_flagged_total")
	fmt.Fprintln(w, "traffic")
	line := fmt.Sprintf("  requests %.0f", requests)
	if f.flight != nil {
		if rate, ok := f.flight.Rates["advhunter_requests_total"]; ok {
			line += fmt.Sprintf("   %.1f req/s over %.0fs", rate, f.flight.WindowSecs)
		}
	}
	fmt.Fprintln(w, line)
	if scans > 0 {
		fmt.Fprintf(w, "  scans    %.0f   flagged %.0f (%.1f%%)\n", scans, flagged, 100*flagged/scans)
	}
	if codes := sumByLabel(f.snap, "advhunter_requests_total", "code"); len(codes) > 0 {
		fmt.Fprintf(w, "  by code  %s\n", codes)
	}
	if f.flight != nil {
		if q, ok := f.flight.Quantiles["advhunter_request_duration_seconds"]; ok {
			fmt.Fprintf(w, "  latency  p50 %s  p90 %s  p99 %s\n",
				ms(q["p50"]), ms(q["p90"]), ms(q["p99"]))
		}
		fmt.Fprintf(w, "  flight   %d series recorded\n", f.flight.SeriesCount)
	} else {
		fmt.Fprintln(w, "  flight   recorder off (-flight to enable)")
	}

	fmt.Fprintln(w, "\nalerts")
	if f.alerts == nil {
		fmt.Fprintln(w, "  alerting off (-alerts to enable)")
	}
	for _, a := range f.alerts {
		state := a.State
		if state == obs.AlertFiring {
			state = strings.ToUpper(state)
		}
		ready := ""
		if !a.Ready {
			ready = "  (warming up)"
		}
		fmt.Fprintf(w, "  %-8s %-14s value %.4g  threshold %.4g  fired %d%s\n",
			state, a.Rule, a.Value, a.Threshold, a.FiredTotal, ready)
	}

	if f.traces != nil {
		fmt.Fprintln(w, "\nrecent traces")
		for _, t := range f.traces {
			extra := ""
			if t.Tier != "" {
				extra += " tier=" + t.Tier
			}
			if t.Verdict != "" {
				extra += " verdict=" + t.Verdict
			}
			if t.CacheHit {
				extra += " cache=hit"
			}
			fmt.Fprintf(w, "  %-12s %3d  %8s total  %7s queued%s\n",
				t.ID, t.Status, ms(t.TotalMs/1000), ms(t.QueueWaitMs/1000), extra)
		}
		if len(f.traces) == 0 {
			fmt.Fprintln(w, "  (no traces yet)")
		}
	}
}

// sumByLabel folds every series of family by one label's value — e.g. request
// counts by status code across all replicas — rendered "200=41 429=1".
func sumByLabel(snap workload.Snapshot, family, label string) string {
	totals := map[string]float64{}
	needle := label + `="`
	for key, v := range snap {
		if !strings.HasPrefix(key, family+"{") {
			continue
		}
		i := strings.Index(key, needle)
		if i < 0 {
			continue
		}
		rest := key[i+len(needle):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			continue
		}
		totals[rest[:j]] += v
	}
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.0f", k, totals[k])
	}
	return strings.Join(parts, "  ")
}

// ms renders a duration given in seconds as adaptive milliseconds.
func ms(seconds float64) string {
	m := seconds * 1000
	switch {
	case m != m: // NaN: quantile not ready yet
		return "—"
	case m >= 100:
		return fmt.Sprintf("%.0fms", m)
	default:
		return fmt.Sprintf("%.1fms", m)
	}
}
