package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"advhunter/internal/cluster"
	"advhunter/internal/experiments"
)

// cmdCluster runs the multi-replica serving tier: N in-process serve
// replicas — each with its own admission gate, batcher, tier stack, and
// truth caches — behind a routing policy, with one merged /metrics page
// carrying every replica's series under its replica label.
func cmdCluster(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "S2", "scenario id (defines the served model)")
	addr := fs.String("addr", ":8080", "listen address")
	replicas := fs.Int("replicas", 2, "in-process serve replicas behind the router")
	policy := fs.String("policy", cluster.PolicyRoundRobin, fmt.Sprintf("routing policy: %v", cluster.Policies))
	clusterInflight := fs.Int("cluster-inflight", 0, "cluster-level cap on concurrently admitted requests, on top of each replica's -max-inflight (0 = unlimited)")
	dopts := detectorFlags(fs)
	sopts := serveFlags(fs)
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := copts.logger(stderr)
	if err != nil {
		return err
	}
	if err := sopts.validate(); err != nil {
		return err
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas %d: a cluster needs at least one replica", *replicas)
	}
	if !validPolicy(*policy) {
		return fmt.Errorf("unknown policy %q (have %v)", *policy, cluster.Policies)
	}
	env, err := experiments.LoadEnv(*scenario, copts.options())
	if err != nil {
		return err
	}
	det, cfg, err := buildServeStack(env, dopts, sopts, copts, logger, "")
	if err != nil {
		return err
	}
	c := cluster.New(sopts.clusterObs(cluster.Config{
		Replicas:    *replicas,
		Policy:      *policy,
		MaxInflight: *clusterInflight,
		Logger:      logger,
	}), replicaBuilder(env, det, cfg))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: c.Handler()}

	// Graceful drain on SIGTERM/SIGINT, mirroring `serve`: the cluster gate
	// stops admitting, every replica drains, then the listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	// Same announcement shape as `serve`: scripted callers
	// (scripts/servesmoke) parse the address out of this line.
	fmt.Fprintf(stdout, "serving %s (%s × %s, tier %s, %d replicas, policy %s) on %s — POST /detect, GET /healthz /readyz /metrics%s\n",
		env.Scn.ID, env.Scn.Dataset, env.Scn.Arch, *sopts.tier, *replicas, c.Policy(), ln.Addr(), sopts.obsEndpoints(true))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "signal received, draining…")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("draining cluster replicas: %w", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("closing http server: %w", err)
	}
	fmt.Fprintln(stdout, "drained cleanly")
	return nil
}
