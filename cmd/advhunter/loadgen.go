package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"advhunter/internal/cluster"
	"advhunter/internal/detect"
	"advhunter/internal/experiments"
	"advhunter/internal/serve"
	"advhunter/internal/workload"
)

// parseCohorts turns a "clean=6,fgsm=2,repeat=2" spec into a workload mix,
// crafting the adversarial pools through the scenario's attack cache. hot is
// the repeat cohort's hot-set size, eps the adversarial strength.
func parseCohorts(env *experiments.Env, spec string, hot int, eps float64) (workload.Mix, error) {
	var mix workload.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cohort %q is not name=weight", part)
		}
		weight, err := strconv.ParseFloat(weightStr, 64)
		if err != nil {
			return nil, fmt.Errorf("cohort %q: %w", part, err)
		}
		c := workload.Cohort{Name: name, Weight: weight}
		switch name {
		case "clean":
			c.Pool = env.DS.Test
		case "repeat":
			c.Pool = env.DS.Test
			c.Hot = hot
		case "fgsm", "mim", "pgd":
			pool, err := env.CraftSamples(experiments.AttackSpec{Kind: name, Eps: eps, Targeted: true}, 60)
			if err != nil {
				return nil, fmt.Errorf("crafting %s cohort: %w", name, err)
			}
			if len(pool) == 0 {
				return nil, fmt.Errorf("%s cohort: attack produced no successful examples", name)
			}
			c.Pool = pool
		default:
			return nil, fmt.Errorf("unknown cohort %q (have clean, repeat, fgsm, mim, pgd)", name)
		}
		mix = append(mix, c)
	}
	return mix, nil
}

// sweepResult is the JSON envelope scripts/bench.sh appends to BENCH_8.json.
type sweepResult struct {
	Scenario string             `json:"scenario"`
	Runs     []*workload.Report `json:"runs"`
	Batch    *batchSection      `json:"batch,omitempty"`
	Cluster  *clusterSection    `json:"cluster,omitempty"`
}

// batchSection is the sweep document's batch-width block: the same closed-loop
// request stream replayed against a micro-batch linger × width grid on the
// twin tier, recording throughput against the batch width actually realized.
type batchSection struct {
	Tier     string       `json:"tier"`
	Clients  int          `json:"clients"`
	Requests int          `json:"requests"`
	Points   []batchPoint `json:"points"`
}

// batchPoint is one grid point. RealizedBatch is the mean drained batch width
// read off advhunter_batch_size_sum/_count — the knob settings cap the width,
// the queue depth at drain time decides it. FusedBatches counts how many of
// those batches went through the fused measure-and-score path (zero when Fuse
// is false or every drain found a single request).
type batchPoint struct {
	MaxBatch      int     `json:"max_batch"`
	BatchWaitMs   float64 `json:"batch_wait_ms"`
	Fuse          bool    `json:"fuse"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	RealizedBatch float64 `json:"realized_batch"`
	FusedBatches  float64 `json:"fused_batches"`
}

// clusterSection is the sweep document's cluster block: the saturation
// sweeps (knee per policy × replica count) and the truth-cache locality
// comparison between routing policies.
type clusterSection struct {
	SaturationTier string                      `json:"saturation_tier"`
	Rates          []float64                   `json:"rates"`
	Saturation     []*cluster.SaturationResult `json:"saturation"`
	LocalityTier   string                      `json:"locality_tier"`
	Locality       []localityPoint             `json:"locality"`
}

// localityPoint is one policy's fleet-wide truth-cache outcome under the
// repeat-heavy locality workload (identical request stream per policy).
type localityPoint struct {
	Policy       string  `json:"policy"`
	Replicas     int     `json:"replicas"`
	TruthHits    float64 `json:"truth_hits"`
	TruthMisses  float64 `json:"truth_misses"`
	TruthHitRate float64 `json:"truth_hit_rate"`
}

func cmdLoadgen(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "S1", "scenario id: the cohorts' sample source and the self-booted server's model (must match -target's model when targeting)")
	target := fs.String("target", "", "base URL of a running advhunter serve (empty boots one in-process on 127.0.0.1:0)")
	shape := fs.String("shape", workload.Poisson, fmt.Sprintf("arrival process: %v", workload.Kinds()))
	rate := fs.Float64("rate", 50, "open-loop mean offered load, requests/second")
	duration := fs.Duration("duration", 2*time.Second, "open-loop run horizon")
	requests := fs.Int("requests", 128, "closed-loop request count")
	clients := fs.Int("clients", 4, "closed-loop client count (also the open-loop in-flight socket cap)")
	think := fs.Duration("think", 0, "closed-loop think time between a response and the next request")
	burst := fs.Float64("burst", 8, "bursty on-phase rate multiplier")
	onFraction := fs.Float64("on", 0.25, "bursty on-phase fraction of each period")
	period := fs.Duration("period", time.Second, "bursty on/off cycle length")
	cycles := fs.Int("cycles", 2, "diurnal sinusoid cycles across the horizon")
	cohorts := fs.String("cohorts", "clean=6,fgsm=2,repeat=2", "cohort=weight list (cohorts: clean, fgsm, mim, pgd, repeat)")
	hot := fs.Int("hot", 2, "repeat cohort hot-set size (distinct inputs it cycles through)")
	eps := fs.Float64("eps", 0.5, "attack strength for the adversarial cohorts")
	loadSeed := fs.Uint64("load-seed", 1, "workload generation seed (equal seeds generate byte-identical traces)")
	record := fs.String("record", "", "write the generated trace to this file for later -replay")
	replay := fs.String("replay", "", "replay a recorded trace instead of generating one")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request client budget")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	expo := fs.String("expo", "", "write the client-side metrics exposition to this file")
	sweep := fs.Bool("sweep", false, "run the bench sweep — shapes {poisson,bursty,closed} × tiers {exact,twin,auto}, then the batch-width and cluster saturation/locality sweeps — self-booting each server; ignores -target/-shape/-tier")
	sweepBatch := fs.Bool("sweep-batch", false, "run only the batch-width sweep (micro-batch linger × max-batch grid on the twin tier); writes its JSON to -out (default stdout)")
	out := fs.String("out", "", "with -sweep/-sweep-batch: write the sweep JSON to this file (default stdout)")
	clusterOut := fs.String("cluster-out", "", "with -sweep: also write just the cluster section to this file (for bench-script inlining)")
	batchOut := fs.String("batch-out", "", "with -sweep: also write just the batch-width section to this file (for bench-script inlining)")
	sopts := serveFlags(fs)
	dopts := detectorFlags(fs)
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := copts.logger(stderr)
	if err != nil {
		return err
	}
	if err := sopts.validate(); err != nil {
		return err
	}
	// Cheap structural checks before any model loads.
	if err := (workload.ArrivalSpec{Kind: *shape, Rate: *rate}).Validate(); err != nil && *replay == "" && !*sweep && !*sweepBatch {
		return err
	}
	env, err := experiments.LoadEnv(*scenario, copts.options())
	if err != nil {
		return err
	}
	mix, err := parseCohorts(env, *cohorts, *hot, *eps)
	if err != nil {
		return err
	}

	if *sweep || *sweepBatch {
		p := sweepParams{
			rate: *rate, duration: *duration, requests: *requests, clients: *clients,
			seed: *loadSeed, timeout: *reqTimeout, out: *out,
			clusterOut: *clusterOut, batchOut: *batchOut,
		}
		if *sweepBatch {
			det, err := loadOrFitDetector(env, dopts)
			if err != nil {
				return err
			}
			sec, err := runBatchSweep(env, dopts, sopts, det, logger, p, stderr)
			if err != nil {
				return err
			}
			return writeJSON(p.out, stdout, sec)
		}
		return runSweep(env, dopts, sopts, copts, mix, logger, p, stdout, stderr)
	}

	// One trace: replayed from disk or generated from the flags.
	var tr *workload.Trace
	if *replay != "" {
		loaded, ok := workload.TryLoadTrace(*replay)
		if !ok {
			return fmt.Errorf("trace %s is missing, corrupt, or stale-schema", *replay)
		}
		tr = loaded
	} else {
		tr, err = workload.Generate(workload.Config{
			Name: *scenario + "-" + *shape,
			Seed: *loadSeed,
			Arrival: workload.ArrivalSpec{
				Kind: *shape, Rate: *rate,
				Burst: *burst, OnFraction: *onFraction, Period: *period,
				Cycles:  *cycles,
				Clients: *clients, Think: *think,
			},
			Mix:      mix,
			Horizon:  *duration,
			Requests: *requests,
		})
		if err != nil {
			return err
		}
	}
	if *record != "" {
		if err := workload.SaveTrace(*record, tr); err != nil {
			return fmt.Errorf("recording trace to %s: %w", *record, err)
		}
		fmt.Fprintf(stderr, "recorded %d events to %s\n", len(tr.Events), *record)
	}

	base := *target
	if base == "" {
		det, cfg, err := buildServeStack(env, dopts, sopts, copts, logger, "")
		if err != nil {
			return err
		}
		booted, err := bootServer(env, det, cfg)
		if err != nil {
			return err
		}
		defer booted.shutdown()
		base = booted.base
		fmt.Fprintf(stderr, "booted %s (tier %s) on %s\n", env.Scn.ID, *sopts.tier, base)
	}

	res, err := workload.Run(context.Background(), base, tr, workload.RunOptions{
		Clients: *clients, Timeout: *reqTimeout,
	})
	if err != nil {
		return err
	}
	if *expo != "" {
		f, err := os.Create(*expo)
		if err != nil {
			return err
		}
		if err := res.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Report)
	}
	res.Report.Render(stdout)
	return nil
}

// sweepParams carries the sweep's sizing knobs.
type sweepParams struct {
	rate       float64
	duration   time.Duration
	requests   int
	clients    int
	seed       uint64
	timeout    time.Duration
	out        string
	clusterOut string
	batchOut   string
}

// writeJSON writes v indented to path, or to fallback when path is empty.
func writeJSON(path string, fallback io.Writer, v any) error {
	w := fallback
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// runSweep is the serve-level bench harness: for each tier it boots a fresh
// server and drives it with each traffic shape, then runs the cluster
// saturation and locality sweeps — one JSON document with every report, the
// "serve" section of BENCH_8.json.
func runSweep(env *experiments.Env, dopts detectorOpts, sopts serveOpts, copts commonOpts,
	mix workload.Mix, logger *slog.Logger, p sweepParams, stdout, stderr io.Writer) error {
	det, err := loadOrFitDetector(env, dopts)
	if err != nil {
		return err
	}
	shapes := []workload.ArrivalSpec{
		{Kind: workload.Poisson, Rate: p.rate},
		{Kind: workload.Bursty, Rate: p.rate / 2, Period: p.duration / 4},
		{Kind: workload.Closed, Clients: p.clients},
	}
	result := sweepResult{Scenario: env.Scn.ID}
	for ti, tier := range []string{serve.TierExact, serve.TierTwin, serve.TierAuto} {
		cfg, err := sopts.config(env, dopts, det, *copts.workers, logger, tier)
		if err != nil {
			return err
		}
		booted, err := bootServer(env, det, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sweep: tier %s on %s\n", tier, booted.base)
		for si, spec := range shapes {
			tr, err := workload.Generate(workload.Config{
				Name:     fmt.Sprintf("%s-%s-%s", env.Scn.ID, tier, spec.Kind),
				Seed:     p.seed + uint64(ti*len(shapes)+si),
				Arrival:  spec,
				Mix:      mix,
				Horizon:  p.duration,
				Requests: p.requests,
			})
			if err != nil {
				booted.shutdown()
				return err
			}
			res, err := workload.Run(context.Background(), booted.base, tr,
				workload.RunOptions{Clients: p.clients, Timeout: p.timeout})
			if err != nil {
				booted.shutdown()
				return fmt.Errorf("sweep %s/%s: %w", tier, spec.Kind, err)
			}
			rep := res.Report
			rep.Tier = tier // label even if a shape completed nothing
			result.Runs = append(result.Runs, rep)
			fmt.Fprintf(stderr, "sweep: %s/%s — %d req, p50 %.2fms p99 %.2fms, %.1f req/s, 429 %.3f, truth-hit %.3f\n",
				tier, spec.Kind, rep.Requests, rep.Latency.P50Ms, rep.Latency.P99Ms,
				rep.ThroughputRPS, rep.Rate429, rep.Server.TruthHitRate)
		}
		booted.shutdown()
	}

	result.Batch, err = runBatchSweep(env, dopts, sopts, det, logger, p, stderr)
	if err != nil {
		return err
	}
	if p.batchOut != "" {
		if err := writeJSON(p.batchOut, nil, result.Batch); err != nil {
			return err
		}
	}

	result.Cluster, err = runClusterSweep(env, dopts, sopts, det, logger, p, stderr)
	if err != nil {
		return err
	}
	if p.clusterOut != "" {
		if err := writeJSON(p.clusterOut, nil, result.Cluster); err != nil {
			return err
		}
	}

	return writeJSON(p.out, stdout, result)
}

// runBatchSweep measures throughput against realized micro-batch width on the
// twin tier: one closed-loop clean request stream is replayed byte-identically
// against a linger × max-batch grid, plus a fusion-off control at the same
// batching knobs, so every throughput delta is attributable to batch width or
// to the fused measure-and-score path alone. The truth cache is disabled so
// each request pays the forward pass whose fusion is under test, and the
// single worker turns every drained batch into one fused unit. Realized width
// is read off advhunter_batch_size_sum/_count; advhunter_fused_batches_total
// confirms which points actually took the fused path.
func runBatchSweep(env *experiments.Env, dopts detectorOpts, sopts serveOpts,
	det *detect.Fitted, logger *slog.Logger, p sweepParams, stderr io.Writer) (*batchSection, error) {
	const clients = 16
	sec := &batchSection{Tier: serve.TierTwin, Clients: clients, Requests: p.requests}
	cleanMix := workload.Mix{{Name: "clean", Weight: 1, Pool: env.DS.Test}}
	tr, err := workload.Generate(workload.Config{
		Name:     env.Scn.ID + "-batch-width",
		Seed:     p.seed + 3000,
		Arrival:  workload.ArrivalSpec{Kind: workload.Closed, Clients: clients},
		Mix:      cleanMix,
		Horizon:  p.duration,
		Requests: p.requests,
	})
	if err != nil {
		return nil, err
	}
	grid := []struct {
		maxBatch int
		wait     time.Duration
		fuse     bool
	}{
		{1, time.Millisecond, true},      // per-sample baseline: width-1 batches never fuse
		{8, 2 * time.Millisecond, false}, // same batching knobs, fusion off: the A/B control
		{4, 2 * time.Millisecond, true},
		{8, 2 * time.Millisecond, true},
		{8, 5 * time.Millisecond, true},
		{16, 5 * time.Millisecond, true},
	}
	for _, g := range grid {
		cfg, err := sopts.config(env, dopts, det, 1, logger, serve.TierTwin)
		if err != nil {
			return nil, err
		}
		cfg.Workers = 1
		cfg.QueueSize = p.requests + clients
		cfg.MaxBatch = g.maxBatch
		cfg.BatchWait = g.wait
		cfg.DisableBatchFuse = !g.fuse
		cfg.TruthCacheSize = -1
		booted, err := bootServer(env, det, cfg)
		if err != nil {
			return nil, err
		}
		res, err := workload.Run(context.Background(), booted.base, tr,
			workload.RunOptions{Clients: clients, Timeout: p.timeout})
		if err != nil {
			booted.shutdown()
			return nil, fmt.Errorf("batch sweep max-batch %d: %w", g.maxBatch, err)
		}
		snap, err := workload.Scrape(nil, booted.base)
		booted.shutdown()
		if err != nil {
			return nil, fmt.Errorf("batch sweep max-batch %d: scraping: %w", g.maxBatch, err)
		}
		pt := batchPoint{
			MaxBatch:      g.maxBatch,
			BatchWaitMs:   float64(g.wait) / float64(time.Millisecond),
			Fuse:          g.fuse,
			ThroughputRPS: res.Report.ThroughputRPS,
			P50Ms:         res.Report.Latency.P50Ms,
			P99Ms:         res.Report.Latency.P99Ms,
			FusedBatches:  snap.Sum("advhunter_fused_batches_total"),
		}
		if c := snap.Sum("advhunter_batch_size_count"); c > 0 {
			pt.RealizedBatch = snap.Sum("advhunter_batch_size_sum") / c
		}
		sec.Points = append(sec.Points, pt)
		fmt.Fprintf(stderr, "batch sweep: max-batch %d linger %s fuse=%v — %.1f req/s, p50 %.2fms p99 %.2fms, realized batch %.2f (%g fused)\n",
			g.maxBatch, g.wait, g.fuse, pt.ThroughputRPS, pt.P50Ms, pt.P99Ms, pt.RealizedBatch, pt.FusedBatches)
	}
	return sec, nil
}

// runClusterSweep measures the cluster tier two ways.
//
// Saturation runs on the twin tier with a deliberately small per-replica
// in-flight cap and a long micro-batch linger: the twin's µs-scale scoring
// keeps the shared CPU idle, so the knee measures provisioned concurrency —
// the thing a fleet planner scales by adding replicas — rather than a CPU
// ceiling that in-process replicas on one host could never move. Each
// replica's ceiling is MaxInflight requests per linger window, so doubling
// the replica count should roughly double the knee rate.
//
// Locality runs on the exact tier, where the truth cache is the asset: a
// repeat-heavy stream is replayed byte-identically against round-robin and
// fingerprint-affinity routing, and the fleet-wide truth-cache hit rate is
// read off the merged /metrics page.
func runClusterSweep(env *experiments.Env, dopts detectorOpts, sopts serveOpts,
	det *detect.Fitted, logger *slog.Logger, p sweepParams, stderr io.Writer) (*clusterSection, error) {
	sec := &clusterSection{
		SaturationTier: serve.TierTwin,
		Rates:          []float64{60, 120, 240, 480, 960},
		LocalityTier:   serve.TierExact,
	}

	scfg, err := sopts.config(env, dopts, det, 1, logger, serve.TierTwin)
	if err != nil {
		return nil, err
	}
	scfg.Workers = 1
	scfg.MaxInflight = 4
	scfg.BatchWait = 10 * time.Millisecond

	// Clean-only traffic: saturation measures capacity, so the mix must not
	// skew the affinity policy's load balance with a tiny hot set (locality
	// has its own run below).
	cleanMix := workload.Mix{{Name: "clean", Weight: 1, Pool: env.DS.Test}}

	sweeps := []struct {
		policy   string
		replicas int
	}{
		{cluster.PolicyRoundRobin, 1},
		{cluster.PolicyRoundRobin, 2},
		{cluster.PolicyLeastLoaded, 2},
		{cluster.PolicyAffinity, 2},
	}
	for ci, cc := range sweeps {
		booted, err := bootCluster(env, det, scfg, cluster.Config{
			Replicas: cc.replicas, Policy: cc.policy, Logger: logger,
		})
		if err != nil {
			return nil, err
		}
		an := &cluster.SaturationAnalyzer{
			Base: booted.base,
			MakeTrace: func(rate float64) (*workload.Trace, error) {
				return workload.Generate(workload.Config{
					Name:    fmt.Sprintf("%s-cluster-%s-x%d-r%g", env.Scn.ID, cc.policy, cc.replicas, rate),
					Seed:    p.seed + 1000 + uint64(ci),
					Arrival: workload.ArrivalSpec{Kind: workload.Poisson, Rate: rate},
					Mix:     cleanMix,
					Horizon: p.duration,
				})
			},
			Run: workload.RunOptions{Clients: 64, Timeout: p.timeout},
		}
		res, err := an.Sweep(context.Background(), sec.Rates)
		booted.shutdown()
		if err != nil {
			return nil, fmt.Errorf("cluster sweep %s ×%d: %w", cc.policy, cc.replicas, err)
		}
		res.Policy, res.Replicas, res.Tier = cc.policy, cc.replicas, serve.TierTwin
		sec.Saturation = append(sec.Saturation, res)
		fmt.Fprintf(stderr, "cluster sweep: %s ×%d — knee %.0f req/s (goodput %.1f qps, p99 %.2fms)\n",
			cc.policy, cc.replicas, res.KneeRate, res.KneeQPS, res.P99AtKneeMs)
	}

	lcfg, err := sopts.config(env, dopts, det, 1, logger, serve.TierExact)
	if err != nil {
		return nil, err
	}
	lcfg.Workers = 1
	// Repeat-only, hot set of 8: every query recurs ~8 times, so first-visit
	// misses are the only misses affinity pays, while round-robin pays one
	// miss per replica a query happens to land on.
	locMix := workload.Mix{{Name: "repeat", Weight: 1, Pool: env.DS.Test, Hot: 8}}
	for _, policy := range []string{cluster.PolicyRoundRobin, cluster.PolicyAffinity} {
		booted, err := bootCluster(env, det, lcfg, cluster.Config{
			Replicas: 2, Policy: policy, Logger: logger,
		})
		if err != nil {
			return nil, err
		}
		// One seed for every policy: the comparison replays the identical
		// request stream, so the hit-rate delta is pure routing.
		tr, err := workload.Generate(workload.Config{
			Name:     env.Scn.ID + "-cluster-locality-" + policy,
			Seed:     p.seed + 2000,
			Arrival:  workload.ArrivalSpec{Kind: workload.Closed, Clients: 2},
			Mix:      locMix,
			Horizon:  p.duration,
			Requests: 64,
		})
		if err != nil {
			booted.shutdown()
			return nil, err
		}
		if _, err := workload.Run(context.Background(), booted.base, tr,
			workload.RunOptions{Clients: 2, Timeout: p.timeout}); err != nil {
			booted.shutdown()
			return nil, fmt.Errorf("cluster locality %s: %w", policy, err)
		}
		snap, err := workload.Scrape(nil, booted.base)
		booted.shutdown()
		if err != nil {
			return nil, fmt.Errorf("cluster locality %s: scraping: %w", policy, err)
		}
		hits := snap.Sum("advhunter_truth_cache_hits_total")
		misses := snap.Sum("advhunter_truth_cache_misses_total")
		pt := localityPoint{Policy: policy, Replicas: 2, TruthHits: hits, TruthMisses: misses}
		if hits+misses > 0 {
			pt.TruthHitRate = hits / (hits + misses)
		}
		sec.Locality = append(sec.Locality, pt)
		fmt.Fprintf(stderr, "cluster locality: %s ×2 — truth-cache hit rate %.3f (%g hits, %g misses)\n",
			policy, pt.TruthHitRate, hits, misses)
	}
	return sec, nil
}
