package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/experiments"
	"advhunter/internal/serve"
	"advhunter/internal/twin"
	"advhunter/internal/uarch/hpc"
	"advhunter/internal/workload"
)

// serveOpts holds the serving-stack flags shared by `serve` and the load
// generator's self-boot path — one registration point, so a server booted by
// `loadgen` is configured exactly like one booted by `serve`.
type serveOpts struct {
	queue       *int
	maxBatch    *int
	batchWait   *time.Duration
	timeout     *time.Duration
	event       *string
	truthCache  *int
	maxInflight *int
	tier        *string
	twinDir     *string
	margin      *float64
}

func serveFlags(fs *flag.FlagSet) serveOpts {
	return serveOpts{
		queue:       fs.Int("queue", 64, "admission queue capacity (full queue answers 429)"),
		maxBatch:    fs.Int("max-batch", 8, "micro-batch size cap"),
		batchWait:   fs.Duration("batch-wait", 2*time.Millisecond, "micro-batcher linger after the first queued request"),
		timeout:     fs.Duration("timeout", 10*time.Second, "per-request budget including queueing"),
		event:       fs.String("event", hpc.CacheMisses.String(), "perf event driving the adversarial verdict"),
		truthCache:  fs.Int("truth-cache", 512, "truth-count memoisation cache entries (0 disables)"),
		maxInflight: fs.Int("max-inflight", 0, "cap on concurrently admitted requests, independent of -queue (0 = unlimited)"),
		tier:        fs.String("tier", serve.TierExact, "serving tier: exact, twin (analytical twin only), or auto (twin screens, uncertain verdicts escalate to exact)"),
		twinDir:     fs.String("twin-dir", "artifacts/twin", "precomputed twin-table directory (tables are profiled on a miss; used when -tier is twin or auto)"),
		margin:      fs.Float64("margin", 0.15, "auto-tier escalation band around the detector threshold (0 = default, negative = never escalate)"),
	}
}

// validate rejects bad tier and decision-event selections — cheap checks run
// before any model loads, so a typo fails in milliseconds, not after
// training.
func (o serveOpts) validate() error {
	switch *o.tier {
	case serve.TierExact, serve.TierTwin, serve.TierAuto:
	default:
		return fmt.Errorf("unknown tier %q (have %s, %s, %s)", *o.tier, serve.TierExact, serve.TierTwin, serve.TierAuto)
	}
	_, err := hpc.ParseEvent(*o.event)
	return err
}

// config builds the serve.Config, loading the twin stack when the tier needs
// it. tier overrides the -tier flag when non-empty (the sweep boots one
// server per tier). Call validate first.
func (o serveOpts) config(env *experiments.Env, dopts detectorOpts, det *detect.Fitted,
	workers int, logger *slog.Logger, tier string) (serve.Config, error) {
	if tier == "" {
		tier = *o.tier
	}
	decision, err := hpc.ParseEvent(*o.event)
	if err != nil {
		return serve.Config{}, err
	}
	// The flag's 0 means "off"; the Config's 0 means "default" and negative
	// means "off" (so the zero Config still serves with memoisation on).
	truthSize := *o.truthCache
	if truthSize <= 0 {
		truthSize = -1
	}
	dataset := env.Scn.Dataset
	cfg := serve.Config{
		QueueSize:      *o.queue,
		Workers:        workers,
		MaxBatch:       *o.maxBatch,
		BatchWait:      *o.batchWait,
		Timeout:        *o.timeout,
		DecisionEvent:  decision,
		ClassName:      func(c int) string { return data.ClassName(dataset, c) },
		Logger:         logger,
		TruthCacheSize: truthSize,
		MaxInflight:    *o.maxInflight,
	}
	if tier != serve.TierExact {
		dcfg, err := dopts.config()
		if err != nil {
			return serve.Config{}, err
		}
		// The twin screens with a detector of the same backend as the exact
		// tier's, recalibrated on twin-measured counts (TwinBackend explains
		// why thresholds fitted on exact counts would misfire on twin
		// readings). The table loads from -twin-dir when fresh — write it
		// ahead of time with `advhunter twin-profile` — and is silently
		// re-profiled on any model/machine hash mismatch.
		tm, tdet, _, err := env.TwinBackend(filepath.Join(*o.twinDir, env.Scn.ID+".gob"), twin.DefaultKnots, det.Kind(), dcfg)
		if err != nil {
			return serve.Config{}, err
		}
		cfg.Tier = tier
		cfg.Twin = tm
		cfg.TwinDetector = tdet
		cfg.EscalationMargin = *o.margin
	}
	return cfg, nil
}

// bootedServer is one in-process serve instance the load generator drives
// when no -target is given.
type bootedServer struct {
	base string
	srv  *serve.Server
	http *http.Server
	ln   net.Listener
}

// bootServer starts a serve instance on a kernel-picked loopback port.
func bootServer(env *experiments.Env, det *detect.Fitted, cfg serve.Config) (*bootedServer, error) {
	srv := serve.New(env.Meas.Clone(), det, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("loadgen server", slog.String("err", err.Error()))
		}
	}()
	return &bootedServer{base: "http://" + ln.Addr().String(), srv: srv, http: hs, ln: ln}, nil
}

func (b *bootedServer) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	b.srv.Shutdown(ctx)
	b.http.Shutdown(ctx)
}

// parseCohorts turns a "clean=6,fgsm=2,repeat=2" spec into a workload mix,
// crafting the adversarial pools through the scenario's attack cache. hot is
// the repeat cohort's hot-set size, eps the adversarial strength.
func parseCohorts(env *experiments.Env, spec string, hot int, eps float64) (workload.Mix, error) {
	var mix workload.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cohort %q is not name=weight", part)
		}
		weight, err := strconv.ParseFloat(weightStr, 64)
		if err != nil {
			return nil, fmt.Errorf("cohort %q: %w", part, err)
		}
		c := workload.Cohort{Name: name, Weight: weight}
		switch name {
		case "clean":
			c.Pool = env.DS.Test
		case "repeat":
			c.Pool = env.DS.Test
			c.Hot = hot
		case "fgsm", "mim", "pgd":
			pool, err := env.CraftSamples(experiments.AttackSpec{Kind: name, Eps: eps, Targeted: true}, 60)
			if err != nil {
				return nil, fmt.Errorf("crafting %s cohort: %w", name, err)
			}
			if len(pool) == 0 {
				return nil, fmt.Errorf("%s cohort: attack produced no successful examples", name)
			}
			c.Pool = pool
		default:
			return nil, fmt.Errorf("unknown cohort %q (have clean, repeat, fgsm, mim, pgd)", name)
		}
		mix = append(mix, c)
	}
	return mix, nil
}

// sweepResult is the JSON envelope scripts/bench.sh appends to BENCH_7.json.
type sweepResult struct {
	Scenario string             `json:"scenario"`
	Runs     []*workload.Report `json:"runs"`
}

func cmdLoadgen(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "S1", "scenario id: the cohorts' sample source and the self-booted server's model (must match -target's model when targeting)")
	target := fs.String("target", "", "base URL of a running advhunter serve (empty boots one in-process on 127.0.0.1:0)")
	shape := fs.String("shape", workload.Poisson, fmt.Sprintf("arrival process: %v", workload.Kinds()))
	rate := fs.Float64("rate", 50, "open-loop mean offered load, requests/second")
	duration := fs.Duration("duration", 2*time.Second, "open-loop run horizon")
	requests := fs.Int("requests", 128, "closed-loop request count")
	clients := fs.Int("clients", 4, "closed-loop client count (also the open-loop in-flight socket cap)")
	think := fs.Duration("think", 0, "closed-loop think time between a response and the next request")
	burst := fs.Float64("burst", 8, "bursty on-phase rate multiplier")
	onFraction := fs.Float64("on", 0.25, "bursty on-phase fraction of each period")
	period := fs.Duration("period", time.Second, "bursty on/off cycle length")
	cycles := fs.Int("cycles", 2, "diurnal sinusoid cycles across the horizon")
	cohorts := fs.String("cohorts", "clean=6,fgsm=2,repeat=2", "cohort=weight list (cohorts: clean, fgsm, mim, pgd, repeat)")
	hot := fs.Int("hot", 2, "repeat cohort hot-set size (distinct inputs it cycles through)")
	eps := fs.Float64("eps", 0.5, "attack strength for the adversarial cohorts")
	loadSeed := fs.Uint64("load-seed", 1, "workload generation seed (equal seeds generate byte-identical traces)")
	record := fs.String("record", "", "write the generated trace to this file for later -replay")
	replay := fs.String("replay", "", "replay a recorded trace instead of generating one")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request client budget")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	expo := fs.String("expo", "", "write the client-side metrics exposition to this file")
	sweep := fs.Bool("sweep", false, "run the bench sweep — shapes {poisson,bursty,closed} × tiers {exact,twin,auto} — self-booting one server per tier; ignores -target/-shape/-tier")
	out := fs.String("out", "", "with -sweep: write the sweep JSON to this file (default stdout)")
	sopts := serveFlags(fs)
	dopts := detectorFlags(fs)
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := copts.logger(stderr)
	if err != nil {
		return err
	}
	if err := sopts.validate(); err != nil {
		return err
	}
	// Cheap structural checks before any model loads.
	if err := (workload.ArrivalSpec{Kind: *shape, Rate: *rate}).Validate(); err != nil && *replay == "" && !*sweep {
		return err
	}
	env, err := experiments.LoadEnv(*scenario, copts.options())
	if err != nil {
		return err
	}
	mix, err := parseCohorts(env, *cohorts, *hot, *eps)
	if err != nil {
		return err
	}

	if *sweep {
		return runSweep(env, dopts, sopts, copts, mix, logger, sweepParams{
			rate: *rate, duration: *duration, requests: *requests, clients: *clients,
			seed: *loadSeed, timeout: *reqTimeout, out: *out,
		}, stdout, stderr)
	}

	// One trace: replayed from disk or generated from the flags.
	var tr *workload.Trace
	if *replay != "" {
		loaded, ok := workload.TryLoadTrace(*replay)
		if !ok {
			return fmt.Errorf("trace %s is missing, corrupt, or stale-schema", *replay)
		}
		tr = loaded
	} else {
		tr, err = workload.Generate(workload.Config{
			Name: *scenario + "-" + *shape,
			Seed: *loadSeed,
			Arrival: workload.ArrivalSpec{
				Kind: *shape, Rate: *rate,
				Burst: *burst, OnFraction: *onFraction, Period: *period,
				Cycles:  *cycles,
				Clients: *clients, Think: *think,
			},
			Mix:      mix,
			Horizon:  *duration,
			Requests: *requests,
		})
		if err != nil {
			return err
		}
	}
	if *record != "" {
		if err := workload.SaveTrace(*record, tr); err != nil {
			return fmt.Errorf("recording trace to %s: %w", *record, err)
		}
		fmt.Fprintf(stderr, "recorded %d events to %s\n", len(tr.Events), *record)
	}

	base := *target
	if base == "" {
		det, err := loadOrFitDetector(env, dopts)
		if err != nil {
			return err
		}
		cfg, err := sopts.config(env, dopts, det, *copts.workers, logger, "")
		if err != nil {
			return err
		}
		booted, err := bootServer(env, det, cfg)
		if err != nil {
			return err
		}
		defer booted.shutdown()
		base = booted.base
		fmt.Fprintf(stderr, "booted %s (tier %s) on %s\n", env.Scn.ID, *sopts.tier, base)
	}

	res, err := workload.Run(context.Background(), base, tr, workload.RunOptions{
		Clients: *clients, Timeout: *reqTimeout,
	})
	if err != nil {
		return err
	}
	if *expo != "" {
		f, err := os.Create(*expo)
		if err != nil {
			return err
		}
		if err := res.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Report)
	}
	res.Report.Render(stdout)
	return nil
}

// sweepParams carries the sweep's sizing knobs.
type sweepParams struct {
	rate     float64
	duration time.Duration
	requests int
	clients  int
	seed     uint64
	timeout  time.Duration
	out      string
}

// runSweep is the serve-level bench harness: for each tier it boots a fresh
// server and drives it with each traffic shape, emitting one JSON document
// with every report — the "serve" section of BENCH_7.json.
func runSweep(env *experiments.Env, dopts detectorOpts, sopts serveOpts, copts commonOpts,
	mix workload.Mix, logger *slog.Logger, p sweepParams, stdout, stderr io.Writer) error {
	det, err := loadOrFitDetector(env, dopts)
	if err != nil {
		return err
	}
	shapes := []workload.ArrivalSpec{
		{Kind: workload.Poisson, Rate: p.rate},
		{Kind: workload.Bursty, Rate: p.rate / 2, Period: p.duration / 4},
		{Kind: workload.Closed, Clients: p.clients},
	}
	result := sweepResult{Scenario: env.Scn.ID}
	for ti, tier := range []string{serve.TierExact, serve.TierTwin, serve.TierAuto} {
		cfg, err := sopts.config(env, dopts, det, *copts.workers, logger, tier)
		if err != nil {
			return err
		}
		booted, err := bootServer(env, det, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "sweep: tier %s on %s\n", tier, booted.base)
		for si, spec := range shapes {
			tr, err := workload.Generate(workload.Config{
				Name:     fmt.Sprintf("%s-%s-%s", env.Scn.ID, tier, spec.Kind),
				Seed:     p.seed + uint64(ti*len(shapes)+si),
				Arrival:  spec,
				Mix:      mix,
				Horizon:  p.duration,
				Requests: p.requests,
			})
			if err != nil {
				booted.shutdown()
				return err
			}
			res, err := workload.Run(context.Background(), booted.base, tr,
				workload.RunOptions{Clients: p.clients, Timeout: p.timeout})
			if err != nil {
				booted.shutdown()
				return fmt.Errorf("sweep %s/%s: %w", tier, spec.Kind, err)
			}
			rep := res.Report
			rep.Tier = tier // label even if a shape completed nothing
			result.Runs = append(result.Runs, rep)
			fmt.Fprintf(stderr, "sweep: %s/%s — %d req, p50 %.2fms p99 %.2fms, %.1f req/s, 429 %.3f, truth-hit %.3f\n",
				tier, spec.Kind, rep.Requests, rep.Latency.P50Ms, rep.Latency.P99Ms,
				rep.ThroughputRPS, rep.Rate429, rep.Server.TruthHitRate)
		}
		booted.shutdown()
	}
	w := stdout
	if p.out != "" {
		f, err := os.Create(p.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}
