package main

// The serving-stack construction shared by `serve`, `loadgen`, and `cluster`:
// one flag surface (serveOpts), one detector+config assembly (buildServeStack),
// one replica factory (replicaBuilder), and the loopback boot helpers the load
// generator uses when no -target is given. Keeping all three subcommands on
// this file means a server booted by any of them is configured identically.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"advhunter/internal/cluster"
	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/experiments"
	"advhunter/internal/obs"
	"advhunter/internal/serve"
	"advhunter/internal/twin"
	"advhunter/internal/uarch/hpc"
)

// serveOpts holds the serving-stack flags shared by `serve`, `cluster`, and
// the load generator's self-boot path — one registration point, so a server
// booted by `loadgen` is configured exactly like one booted by `serve`.
type serveOpts struct {
	queue       *int
	maxBatch    *int
	batchWait   *time.Duration
	timeout     *time.Duration
	event       *string
	truthCache  *int
	maxInflight *int
	tier        *string
	twinDir     *string
	margin      *float64

	// Observability: the flight recorder, request traces, and alerting are
	// all opt-in so the default boot stays byte-for-byte what it was.
	flight        *time.Duration
	flightSamples *int
	traceRing     *int
	traceLog      *string
	alerts        *bool
	alertInterval *time.Duration
	alertFor      *time.Duration
}

func serveFlags(fs *flag.FlagSet) serveOpts {
	return serveOpts{
		queue:       fs.Int("queue", 64, "admission queue capacity (full queue answers 429)"),
		maxBatch:    fs.Int("max-batch", 8, "micro-batch size cap"),
		batchWait:   fs.Duration("batch-wait", 2*time.Millisecond, "micro-batcher linger after the first queued request"),
		timeout:     fs.Duration("timeout", 10*time.Second, "per-request budget including queueing"),
		event:       fs.String("event", hpc.CacheMisses.String(), "perf event driving the adversarial verdict"),
		truthCache:  fs.Int("truth-cache", 512, "truth-count memoisation cache entries (0 disables)"),
		maxInflight: fs.Int("max-inflight", 0, "cap on concurrently admitted requests, independent of -queue (0 = unlimited)"),
		tier:        fs.String("tier", serve.TierExact, "serving tier: exact, twin (analytical twin only), or auto (twin screens, uncertain verdicts escalate to exact)"),
		twinDir:     fs.String("twin-dir", "artifacts/twin", "precomputed twin-table directory (tables are profiled on a miss; used when -tier is twin or auto)"),
		margin:      fs.Float64("margin", 0.15, "auto-tier escalation band around the detector threshold (0 = default, negative = never escalate)"),

		flight:        fs.Duration("flight", 0, "flight-recorder sampling interval (0 disables; negative = manual mode, sampled only when /debug/flight is queried)"),
		flightSamples: fs.Int("flight-samples", 0, "flight-recorder ring depth per series (0 = default 256)"),
		traceRing:     fs.Int("trace-ring", 0, "request-trace ring capacity; enables /debug/trace (0 disables)"),
		traceLog:      fs.String("trace-log", "", "append finished request traces as JSONL to this file (implies a trace ring)"),
		alerts:        fs.Bool("alerts", false, "run the stock alert rules (latency-p99, error-rate, detect-drift) and expose /alerts"),
		alertInterval: fs.Duration("alert-interval", 0, "background alert-evaluation cadence (0 = evaluate on each /alerts request instead)"),
		alertFor:      fs.Duration("alert-for", 0, "how long a rule must breach before it fires (0 = immediately)"),
	}
}

// validate rejects bad tier and decision-event selections — cheap checks run
// before any model loads, so a typo fails in milliseconds, not after
// training.
func (o serveOpts) validate() error {
	switch *o.tier {
	case serve.TierExact, serve.TierTwin, serve.TierAuto:
	default:
		return fmt.Errorf("unknown tier %q (have %s, %s, %s)", *o.tier, serve.TierExact, serve.TierTwin, serve.TierAuto)
	}
	_, err := hpc.ParseEvent(*o.event)
	return err
}

// config builds the serve.Config, loading the twin stack when the tier needs
// it. tier overrides the -tier flag when non-empty (the sweep boots one
// server per tier). Call validate first.
func (o serveOpts) config(env *experiments.Env, dopts detectorOpts, det *detect.Fitted,
	workers int, logger *slog.Logger, tier string) (serve.Config, error) {
	if tier == "" {
		tier = *o.tier
	}
	decision, err := hpc.ParseEvent(*o.event)
	if err != nil {
		return serve.Config{}, err
	}
	// The flag's 0 means "off"; the Config's 0 means "default" and negative
	// means "off" (so the zero Config still serves with memoisation on).
	truthSize := *o.truthCache
	if truthSize <= 0 {
		truthSize = -1
	}
	dataset := env.Scn.Dataset
	cfg := serve.Config{
		QueueSize:      *o.queue,
		Workers:        workers,
		MaxBatch:       *o.maxBatch,
		BatchWait:      *o.batchWait,
		Timeout:        *o.timeout,
		DecisionEvent:  decision,
		ClassName:      func(c int) string { return data.ClassName(dataset, c) },
		Logger:         logger,
		TruthCacheSize: truthSize,
		MaxInflight:    *o.maxInflight,
		FlightInterval: *o.flight,
		FlightSamples:  *o.flightSamples,
		TraceRing:      *o.traceRing,
		AlertRules:     o.alertRules(),
		AlertInterval:  *o.alertInterval,
		AlertFor:       *o.alertFor,
	}
	if *o.traceLog != "" {
		f, err := os.OpenFile(*o.traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return serve.Config{}, fmt.Errorf("opening trace log: %w", err)
		}
		// The file stays open for the process lifetime: traces stream until
		// shutdown, and O_APPEND keeps concurrent replica writes whole lines.
		cfg.TraceLog = f
	}
	if tier != serve.TierExact {
		dcfg, err := dopts.config()
		if err != nil {
			return serve.Config{}, err
		}
		// The twin screens with a detector of the same backend as the exact
		// tier's, recalibrated on twin-measured counts (TwinBackend explains
		// why thresholds fitted on exact counts would misfire on twin
		// readings). The table loads from -twin-dir when fresh — write it
		// ahead of time with `advhunter twin-profile` — and is silently
		// re-profiled on any model/machine hash mismatch.
		tm, tdet, _, err := env.TwinBackend(filepath.Join(*o.twinDir, env.Scn.ID+".gob"), twin.DefaultKnots, det.Kind(), dcfg)
		if err != nil {
			return serve.Config{}, err
		}
		cfg.Tier = tier
		cfg.Twin = tm
		cfg.TwinDetector = tdet
		cfg.EscalationMargin = *o.margin
	}
	return cfg, nil
}

// alertRules returns a fresh stock rule set when -alerts is on, nil
// otherwise. Rules are stateful, so every engine (each replica, or the
// cluster router) must get its own set — hence a constructor, not a field.
func (o serveOpts) alertRules() []obs.Rule {
	if o.alerts == nil || !*o.alerts {
		return nil
	}
	return serve.DefaultAlertRules()
}

// obsEndpoints renders the observability endpoints the current flags turn on,
// for the boot announcement line. alwaysTrace is the cluster router, whose
// merged /debug/trace is registered unconditionally.
func (o serveOpts) obsEndpoints(alwaysTrace bool) string {
	var s string
	if *o.flight != 0 || *o.alerts {
		s += " /debug/flight"
	}
	if alwaysTrace || *o.traceRing > 0 || *o.traceLog != "" {
		s += " /debug/trace"
	}
	if *o.alerts {
		s += " /alerts"
	}
	return s
}

// clusterObs copies the observability selections to the cluster router's
// config, where the flight recorder spans the router and every replica
// registry and the alert engine judges fleet-wide aggregates. The per-replica
// serve.Config keeps its own recorder and rules too: fleet totals answer "is
// the service healthy", per-replica history answers "which replica isn't".
func (o serveOpts) clusterObs(ccfg cluster.Config) cluster.Config {
	ccfg.FlightInterval = *o.flight
	ccfg.FlightSamples = *o.flightSamples
	ccfg.AlertRules = o.alertRules()
	ccfg.AlertInterval = *o.alertInterval
	ccfg.AlertFor = *o.alertFor
	return ccfg
}

// buildServeStack is the one construction path behind `serve`, `cluster`, and
// the load generator's self-boot: load (or fit) the detector, then assemble
// the serve.Config from the shared flag surface. tier overrides the -tier
// flag when non-empty.
func buildServeStack(env *experiments.Env, dopts detectorOpts, sopts serveOpts, copts commonOpts,
	logger *slog.Logger, tier string) (*detect.Fitted, serve.Config, error) {
	det, err := loadOrFitDetector(env, dopts)
	if err != nil {
		return nil, serve.Config{}, err
	}
	cfg, err := sopts.config(env, dopts, det, *copts.workers, logger, tier)
	if err != nil {
		return nil, serve.Config{}, err
	}
	return det, cfg, nil
}

// replicaBuilder returns the cluster replica factory. serve.New takes
// ownership of the measurer and the twin backend it is handed, so each
// replica must get its own clones — sharing either across replicas is a data
// race. The fitted detector is read-only and safely shared, exactly as the
// single-server path shares it across its worker pool.
func replicaBuilder(env *experiments.Env, det *detect.Fitted, cfg serve.Config) func(replica int) *serve.Server {
	return func(int) *serve.Server {
		rcfg := cfg
		if rcfg.Twin != nil {
			rcfg.Twin = cfg.Twin.Clone()
		}
		return serve.New(env.Meas.Clone(), det, rcfg)
	}
}

// validPolicy reports whether p names a known routing policy — checked up
// front so a typo returns a usage error instead of cluster.New's panic.
func validPolicy(p string) bool {
	for _, q := range cluster.Policies {
		if q == p {
			return true
		}
	}
	return false
}

// bootedServer is one in-process serve instance the load generator drives
// when no -target is given.
type bootedServer struct {
	base string
	srv  *serve.Server
	http *http.Server
	ln   net.Listener
}

// bootServer starts a serve instance on a kernel-picked loopback port.
func bootServer(env *experiments.Env, det *detect.Fitted, cfg serve.Config) (*bootedServer, error) {
	srv := serve.New(env.Meas.Clone(), det, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("loadgen server", slog.String("err", err.Error()))
		}
	}()
	return &bootedServer{base: "http://" + ln.Addr().String(), srv: srv, http: hs, ln: ln}, nil
}

func (b *bootedServer) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	b.srv.Shutdown(ctx)
	b.http.Shutdown(ctx)
}

// bootedCluster is an in-process cluster tier on a loopback port, for the
// load generator's cluster sweep.
type bootedCluster struct {
	base string
	c    *cluster.Cluster
	http *http.Server
}

// bootCluster starts a cluster of replicas on a kernel-picked loopback port.
func bootCluster(env *experiments.Env, det *detect.Fitted, cfg serve.Config, ccfg cluster.Config) (*bootedCluster, error) {
	c := cluster.New(ccfg, replicaBuilder(env, det, cfg))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: c.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("loadgen cluster", slog.String("err", err.Error()))
		}
	}()
	return &bootedCluster{base: "http://" + ln.Addr().String(), c: c, http: hs}, nil
}

func (b *bootedCluster) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	b.c.Shutdown(ctx)
	b.http.Shutdown(ctx)
}
