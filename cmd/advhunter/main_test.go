package main

import (
	"strings"
	"testing"
)

// TestDispatch drives the subcommand switch table-style: each invocation
// must hit the right handler, produce the right exit code, and route its
// output to the right stream — without os.Exit, which run exists to avoid.
func TestDispatch(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string // substring, "" means no requirement
		wantStderr string
	}{
		{
			name:     "no arguments is a usage error",
			args:     nil,
			wantCode: 2, wantStderr: "commands:",
		},
		{
			name:     "list",
			args:     []string{"list"},
			wantCode: 0, wantStdout: "experiments:",
		},
		{
			name:     "list names every scenario",
			args:     []string{"list"},
			wantCode: 0, wantStdout: "S3",
		},
		{
			name:     "version prints build metadata",
			args:     []string{"version"},
			wantCode: 0, wantStdout: "advhunter ",
		},
		{
			name:     "bad log level is a command failure",
			args:     []string{"train", "-log-level", "loud", "-cache", ""},
			wantCode: 1, wantStderr: "unknown log level",
		},
		{
			name:     "bad log format is a command failure",
			args:     []string{"scan", "-log-format", "xml", "-cache", ""},
			wantCode: 1, wantStderr: "unknown log format",
		},
		{
			name:     "help goes to stdout",
			args:     []string{"help"},
			wantCode: 0, wantStdout: "run 'advhunter <command> -h' for flags.",
		},
		{
			name:     "-h alias",
			args:     []string{"-h"},
			wantCode: 0, wantStdout: "serve",
		},
		{
			name:     "--help alias",
			args:     []string{"--help"},
			wantCode: 0, wantStdout: "commands:",
		},
		{
			name:     "unknown command",
			args:     []string{"frobnicate"},
			wantCode: 2, wantStderr: `unknown command "frobnicate"`,
		},
		{
			name:     "experiment without id fails",
			args:     []string{"experiment"},
			wantCode: 1, wantStderr: "missing -id",
		},
		{
			name:     "experiment with unknown id fails",
			args:     []string{"experiment", "-id", "nope", "-cache", ""},
			wantCode: 1, wantStderr: "nope",
		},
		{
			name:     "subcommand -h exits cleanly",
			args:     []string{"serve", "-h"},
			wantCode: 0, wantStderr: "-detector",
		},
		{
			name:     "bad flag is a command failure",
			args:     []string{"scan", "-definitely-not-a-flag"},
			wantCode: 1, wantStderr: "",
		},
		{
			name:     "serve rejects unknown event",
			args:     []string{"serve", "-event", "not-an-event"},
			wantCode: 1, wantStderr: "unknown event",
		},
		{
			name:     "serve rejects unknown tier",
			args:     []string{"serve", "-tier", "warp"},
			wantCode: 1, wantStderr: `unknown tier "warp"`,
		},
		{
			name:     "twin-profile -h lists its flags",
			args:     []string{"twin-profile", "-h"},
			wantCode: 0, wantStderr: "-knots",
		},
		{
			name:     "twin-profile rejects unknown scenario",
			args:     []string{"twin-profile", "-scenario", "S9", "-cache", ""},
			wantCode: 1, wantStderr: "unknown scenario",
		},
		{
			name:     "train rejects unknown scenario",
			args:     []string{"train", "-scenario", "S9", "-cache", ""},
			wantCode: 1, wantStderr: "unknown scenario",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}
