// Command advhunter drives the AdvHunter reproduction: train scenario
// models, craft adversarial examples, measure simulated HPC readings, run
// the detector, serve it as a long-lived detection service, and regenerate
// every table and figure of the paper.
//
// Usage:
//
//	advhunter list
//	advhunter experiment -id table2 [-cache DIR] [-quick] [-v]
//	advhunter train -scenario S2 [-cache DIR]
//	advhunter attack -scenario S2 -kind fgsm -eps 0.5 -targeted [-n 60]
//	advhunter fit -scenario S2 -detector FILE [-backend kde]
//	advhunter scan -scenario S2 [-n 20] [-detector FILE] [-backend gmm]
//	advhunter twin-profile -scenario S2 [-dir artifacts/twin] [-knots 16] [-force]
//	advhunter serve -scenario S2 -addr :8080 [-detector FILE] [-backend gmm] [-tier auto]
//	advhunter loadgen -scenario S1 [-target URL] [-shape poisson] [-rate 50] [-sweep]
//	advhunter watch -target http://host:8080 [-interval 2s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/experiments"
	"advhunter/internal/obs"
	"advhunter/internal/parallel"
	"advhunter/internal/serve"
	"advhunter/internal/twin"
	"advhunter/internal/uarch/hpc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches one invocation; it is main minus os.Exit so the dispatch
// table is testable. Exit codes: 0 ok, 1 command failed, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	obs.RegisterBuildInfo(obs.Default) // advhunter_build_info on every scrape
	var err error
	switch args[0] {
	case "list":
		err = cmdList(stdout)
	case "version":
		err = cmdVersion(stdout)
	case "experiment":
		err = cmdExperiment(args[1:], stdout, stderr)
	case "train":
		err = cmdTrain(args[1:], stdout, stderr)
	case "attack":
		err = cmdAttack(args[1:], stdout, stderr)
	case "fit":
		err = cmdFit(args[1:], stdout, stderr)
	case "scan":
		err = cmdScan(args[1:], stdout, stderr)
	case "twin-profile":
		err = cmdTwinProfile(args[1:], stdout, stderr)
	case "serve":
		err = cmdServe(args[1:], stdout, stderr)
	case "cluster":
		err = cmdCluster(args[1:], stdout, stderr)
	case "loadgen":
		err = cmdLoadgen(args[1:], stdout, stderr)
	case "watch":
		err = cmdWatch(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "advhunter: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		fmt.Fprintf(stderr, "advhunter: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `advhunter — HPC side-channel adversarial-example detection (DAC'24 reproduction)

commands:
  list        list experiments and scenarios
  version     print build metadata (version, go version, vcs revision)
  experiment  run one experiment by id (-id table2)
  train       train or load one scenario model (-scenario S2)
  attack      craft adversarial examples and report attack statistics
  fit         fit a detector backend and save the artifact (-detector FILE)
  scan        run the deployed pipeline on test images and print decisions
  twin-profile  precompute the analytical-twin count tables for a scenario
  serve       run the online detection service (HTTP JSON, /detect)
  cluster     run the multi-replica serving tier (N replicas behind a routing policy, merged /metrics)
  loadgen     drive a serve instance with synthetic traffic and report latency, throughput, and backpressure
  watch       live terminal dashboard over a running serve or cluster (-target URL)

run 'advhunter <command> -h' for flags.`)
}

// commonOpts holds the flags every subcommand shares: cache location,
// workload sizing, worker-pool width, and the structured-logging knobs.
type commonOpts struct {
	cache     *string
	quick     *bool
	verbose   *bool
	workers   *int
	logLevel  *string
	logFormat *string
}

// commonFlags registers the flags every subcommand shares.
func commonFlags(fs *flag.FlagSet) commonOpts {
	return commonOpts{
		cache:     fs.String("cache", "artifacts/cache", "cache directory for models and measurements (empty disables)"),
		quick:     fs.Bool("quick", false, "reduced workload sizes (for smoke tests)"),
		verbose:   fs.Bool("v", false, "log progress to stderr"),
		workers:   fs.Int("workers", 0, "worker goroutines for measurement/attack fan-out (0 = GOMAXPROCS, 1 = serial; results are identical for any value)"),
		logLevel:  fs.String("log-level", "info", "structured-log level: debug, info, warn, error"),
		logFormat: fs.String("log-format", "json", "structured-log format: json or text"),
	}
}

func (c commonOpts) options() experiments.Options {
	var log io.Writer
	if *c.verbose {
		log = os.Stderr
	}
	return experiments.Options{CacheDir: *c.cache, Quick: *c.quick, Log: log, Workers: *c.workers}
}

// logger builds the process logger from the logging flags and installs it as
// slog's default, so library code logging through slog.Default() follows the
// same -log-level/-log-format settings.
func (c commonOpts) logger(stderr io.Writer) (*slog.Logger, error) {
	level, err := obs.ParseLevel(*c.logLevel)
	if err != nil {
		return nil, err
	}
	logger, err := obs.NewLogger(stderr, level, *c.logFormat)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}

// detectorOpts holds the detector-selection flags shared by fit, scan and
// serve — one registration point instead of three diverging copies.
type detectorOpts struct {
	path    *string
	backend *string
	seed    *uint64
}

func detectorFlags(fs *flag.FlagSet) detectorOpts {
	return detectorOpts{
		path:    fs.String("detector", "", "fitted-detector file: loaded if valid (any backend), refitted and saved on a miss"),
		backend: fs.String("backend", "gmm", fmt.Sprintf("detector backend to fit on a miss (%v)", detect.Kinds())),
		seed:    fs.Uint64("seed", 1, "mixture-fitting seed used when refitting"),
	}
}

// config validates the selected backend and builds the fit configuration.
func (o detectorOpts) config() (detect.Config, error) {
	if _, ok := detect.Lookup(*o.backend); !ok {
		return detect.Config{}, fmt.Errorf("unknown backend %q (have %v)", *o.backend, detect.Kinds())
	}
	cfg := detect.DefaultConfig()
	cfg.GMM.Seed = *o.seed
	return cfg, nil
}

// loadOrFitDetector implements the "fit once, serve many" workflow: a valid
// artifact at path is loaded (whatever backend wrote it); a missing, corrupt
// or stale-schema file is a miss — the selected backend is refitted from the
// scenario's validation template and the artifact is (re)written for the
// next process.
func loadOrFitDetector(env *experiments.Env, o detectorOpts) (*detect.Fitted, error) {
	logf := func(format string, args ...any) {
		if env.Opts.Log != nil {
			fmt.Fprintf(env.Opts.Log, format+"\n", args...)
		}
	}
	path := *o.path
	if path != "" {
		if det, ok := detect.TryLoad(path); ok {
			logf("[%s] loaded %s detector from %s", env.Scn.ID, det.Kind(), path)
			if det.Kind() != *o.backend {
				logf("[%s] note: artifact backend %q overrides -backend %q", env.Scn.ID, det.Kind(), *o.backend)
			}
			return det, nil
		}
	}
	cfg, err := o.config()
	if err != nil {
		return nil, err
	}
	det, err := env.DetectorKind(*o.backend, cfg)
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := detect.Save(path, det); err != nil {
			return nil, fmt.Errorf("saving detector to %s: %w", path, err)
		}
		logf("[%s] fitted %s detector and saved it to %s", env.Scn.ID, *o.backend, path)
	}
	return det, nil
}

func cmdVersion(stdout io.Writer) error {
	info := obs.Build()
	fmt.Fprintf(stdout, "advhunter %s (%s)\n", info.Version, info.GoVersion)
	if info.Revision != "" {
		dirty := ""
		if info.Modified {
			dirty = " (modified)"
		}
		fmt.Fprintf(stdout, "commit %s%s\n", info.Revision, dirty)
	}
	return nil
}

func cmdList(stdout io.Writer) error {
	fmt.Fprintln(stdout, "experiments:")
	for _, id := range experiments.IDs() {
		fmt.Fprintf(stdout, "  %-22s %s\n", id, experiments.Registry[id].Description)
	}
	fmt.Fprintln(stdout, "\nscenarios:")
	for _, id := range []string{"S1", "S2", "S3", "CS"} {
		s := experiments.Scenarios[id]
		fmt.Fprintf(stdout, "  %-3s %s × %s (%d classes, target %q)\n",
			id, s.Dataset, s.Arch, classesOf(s.Dataset), data.ClassName(s.Dataset, s.TargetClass))
	}
	return nil
}

func classesOf(dataset string) int {
	if dataset == "gtsrb" {
		return 43
	}
	return 10
}

func cmdExperiment(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("id", "", "experiment id (see 'advhunter list'), or 'all'")
	asJSON := fs.Bool("json", false, "emit the result as JSON instead of a table")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := copts.logger(stderr)
	if err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("creating cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "advhunter: creating mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "advhunter: writing mem profile: %v\n", err)
			}
		}()
	}
	opts := copts.options()
	runFn := experiments.Run
	if *asJSON {
		runFn = experiments.RunJSON
	}
	// runOne wraps one experiment with a structured run summary: wall time,
	// worker-pool width, and the process-lifetime cache counters.
	runOne := func(eid string) error {
		start := time.Now()
		if err := runFn(eid, opts, stdout); err != nil {
			return err
		}
		hits, misses, writes := experiments.CacheStats()
		logger.Info("experiment complete",
			slog.String("id", eid),
			slog.Duration("wall_time", time.Since(start)),
			slog.Int("workers", parallel.Workers(*copts.workers, 0)),
			slog.Uint64("cache_hits", hits),
			slog.Uint64("cache_misses", misses),
			slog.Uint64("cache_writes", writes))
		return nil
	}
	if *id == "all" {
		for _, eid := range experiments.IDs() {
			if err := runOne(eid); err != nil {
				return fmt.Errorf("experiment %s: %w", eid, err)
			}
		}
		return nil
	}
	if *id == "" {
		return fmt.Errorf("missing -id (see 'advhunter list')")
	}
	return runOne(*id)
}

func cmdTrain(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "S2", "scenario id (S1, S2, S3, CS)")
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := copts.logger(stderr); err != nil {
		return err
	}
	env, err := experiments.LoadEnv(*scenario, copts.options())
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "scenario %s: %s × %s\n", env.Scn.ID, env.Scn.Dataset, env.Scn.Arch)
	fmt.Fprintf(stdout, "clean test accuracy: %.2f%%\n", 100*env.CleanAcc)
	fmt.Fprintf(stdout, "parameters: %d\n", env.Model.ParamCount())
	return nil
}

func cmdAttack(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "S2", "scenario id")
	kind := fs.String("kind", "fgsm", "attack kind: fgsm, pgd, deepfool")
	eps := fs.Float64("eps", 0.1, "attack strength (L∞); ignored by deepfool")
	targeted := fs.Bool("targeted", false, "targeted variant (toward the scenario target class)")
	n := fs.Int("n", 60, "number of source images")
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := copts.logger(stderr); err != nil {
		return err
	}
	env, err := experiments.LoadEnv(*scenario, copts.options())
	if err != nil {
		return err
	}
	spec := experiments.AttackSpec{Kind: *kind, Eps: *eps, Targeted: *targeted}
	ar, err := env.Attack(spec, *n)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "attack: %s on %s\n", spec, *scenario)
	fmt.Fprintf(stdout, "success rate: %.2f%%   model accuracy under attack: %.2f%%\n",
		100*ar.SuccessRate, 100*ar.ModelAccuracy)
	fmt.Fprintf(stdout, "successful adversarial examples measured: %d\n", len(ar.Meas))
	return nil
}

func cmdFit(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "S2", "scenario id")
	dopts := detectorFlags(fs)
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := copts.logger(stderr); err != nil {
		return err
	}
	if *dopts.path == "" {
		return fmt.Errorf("missing -detector (the artifact file to write)")
	}
	cfg, err := dopts.config()
	if err != nil {
		return err
	}
	env, err := experiments.LoadEnv(*scenario, copts.options())
	if err != nil {
		return err
	}
	det, err := env.DetectorKind(*dopts.backend, cfg)
	if err != nil {
		return err
	}
	if err := detect.Save(*dopts.path, det); err != nil {
		return fmt.Errorf("saving detector to %s: %w", *dopts.path, err)
	}
	fmt.Fprintf(stdout, "fitted %s detector for %s: %d channels, %d/%d classes modelled\n",
		det.Kind(), env.Scn.ID, len(det.Channels()), det.ModelledClasses(), det.Classes())
	fmt.Fprintf(stdout, "saved to %s\n", *dopts.path)
	return nil
}

func cmdScan(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("scan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "S2", "scenario id")
	n := fs.Int("n", 10, "number of test images to scan (clean + adversarial)")
	eps := fs.Float64("eps", 0.5, "strength of the demonstration attack")
	dopts := detectorFlags(fs)
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := copts.logger(stderr); err != nil {
		return err
	}
	env, err := experiments.LoadEnv(*scenario, copts.options())
	if err != nil {
		return err
	}
	det, err := loadOrFitDetector(env, dopts)
	if err != nil {
		return err
	}
	pipe := &detect.Pipeline{M: env.Meas, D: det}

	fmt.Fprintf(stdout, "scanning %d clean test images (%s backend):\n", *n, det.Kind())
	for i := 0; i < *n && i < len(env.DS.Test); i++ {
		s := env.DS.Test[i]
		res := pipe.Scan(s.X)
		fmt.Fprintf(stdout, "  image %2d (true %q): predicted %q, adversarial=%v\n",
			i, data.ClassName(env.Scn.Dataset, s.Label),
			data.ClassName(env.Scn.Dataset, res.PredictedClass), res.Fused)
	}

	spec := experiments.AttackSpec{Kind: "fgsm", Eps: *eps, Targeted: true}
	ar, err := env.Attack(spec, *n)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "scanning %d adversarial images (%s):\n", len(ar.Meas), spec)
	for i, m := range ar.Meas {
		res := det.Detect(m)
		fmt.Fprintf(stdout, "  AE %2d (from %q): predicted %q, adversarial=%v\n",
			i, data.ClassName(env.Scn.Dataset, m.TrueLabel),
			data.ClassName(env.Scn.Dataset, m.Pred), res.Fused)
	}
	return nil
}

// cmdTwinProfile precomputes the analytical-twin count tables for one
// scenario and writes them where tiered serving looks first, so a later
// `serve -tier twin|auto` boots without paying the profiling sweep. The
// probe workload is Env.TwinProbes — identical to what serve would profile
// on a miss — so the precomputed table and an on-demand one are the same
// table.
func cmdTwinProfile(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("twin-profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "S2", "scenario id (defines the profiled model)")
	dir := fs.String("dir", "artifacts/twin", "table directory (one <scenario>.gob per scenario)")
	knots := fs.Int("knots", twin.DefaultKnots, "sparsity buckets per layer curve")
	force := fs.Bool("force", false, "re-profile even when a fresh table exists")
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := copts.logger(stderr); err != nil {
		return err
	}
	env, err := experiments.LoadEnv(*scenario, copts.options())
	if err != nil {
		return err
	}
	path := filepath.Join(*dir, env.Scn.ID+".gob")
	if *force {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	tab, loaded, err := twin.LoadOrProfile(path, env.Meas.Engine.Clone(), env.TwinProbes, *knots, env.Opts.Workers)
	if err != nil {
		return err
	}
	verb := "profiled"
	if loaded {
		verb = "already fresh"
	}
	fmt.Fprintf(stdout, "twin table for %s %s at %s\n", env.Scn.ID, verb, path)
	fmt.Fprintf(stdout, "%d layers × %d knots from %d probes (%d bytes)\n",
		len(tab.Layers), tab.Knots, tab.Probes, tab.Bytes())

	// Self-check: predict a few held-out validation inputs and compare
	// against the exact simulator, so a bad table is caught at build time
	// rather than at serve time.
	tm, err := twin.FromMeasurer(env.Meas, tab)
	if err != nil {
		return err
	}
	pool := env.ValidationPool()
	n := 16
	if n > len(pool) {
		n = len(pool)
	}
	var worst float64
	worstEv := hpc.Instructions
	for _, s := range pool[:n] {
		pred := tm.Truth(s.X)
		_, truth := env.Meas.Engine.Infer(s.X)
		for _, ev := range hpc.CoreEvents() {
			rel := math.Abs(pred.Counts.Get(ev)-truth.Get(ev)) / math.Max(truth.Get(ev), 1)
			if rel > worst {
				worst, worstEv = rel, ev
			}
		}
	}
	fmt.Fprintf(stdout, "self-check vs exact on %d validation inputs: worst relative error %.4f (%s)\n",
		n, worst, worstEv)
	return nil
}

func cmdServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "S2", "scenario id (defines the served model)")
	addr := fs.String("addr", ":8080", "listen address")
	dopts := detectorFlags(fs)
	sopts := serveFlags(fs)
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof profiling endpoints")
	copts := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := copts.logger(stderr)
	if err != nil {
		return err
	}
	if err := sopts.validate(); err != nil {
		return err
	}
	env, err := experiments.LoadEnv(*scenario, copts.options())
	if err != nil {
		return err
	}
	det, cfg, err := buildServeStack(env, dopts, sopts, copts, logger, "")
	if err != nil {
		return err
	}
	srv := serve.New(env.Meas, det, cfg)
	handler := http.Handler(srv.Handler())
	if *pprofOn {
		// Profiling endpoints are opt-in: the detection service faces query
		// traffic, and pprof exposes process internals.
		outer := http.NewServeMux()
		outer.Handle("/", srv.Handler())
		outer.HandleFunc("/debug/pprof/", httppprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		handler = outer
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}

	// Graceful drain on SIGTERM/SIGINT: stop accepting, finish queued work,
	// then close the listener.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	// Print the listener's actual address: with ":0" the kernel picks the
	// port, and scripted callers (scripts/servesmoke) parse this line.
	fmt.Fprintf(stdout, "serving %s (%s × %s, tier %s) on %s — POST /detect, GET /healthz /readyz /metrics%s\n",
		env.Scn.ID, env.Scn.Dataset, env.Scn.Arch, *sopts.tier, ln.Addr(), sopts.obsEndpoints(false))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "signal received, draining…")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("draining detection queue: %w", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("closing http server: %w", err)
	}
	fmt.Fprintln(stdout, "drained cleanly")
	return nil
}
