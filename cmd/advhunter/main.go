// Command advhunter drives the AdvHunter reproduction: train scenario
// models, craft adversarial examples, measure simulated HPC readings, run
// the detector, and regenerate every table and figure of the paper.
//
// Usage:
//
//	advhunter list
//	advhunter experiment -id table2 [-cache DIR] [-quick] [-v]
//	advhunter train -scenario S2 [-cache DIR]
//	advhunter attack -scenario S2 -kind fgsm -eps 0.5 -targeted [-n 60]
//	advhunter scan -scenario S2 [-n 20]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/experiments"
	"advhunter/internal/uarch/hpc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "scan":
		err = cmdScan(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "advhunter: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "advhunter: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `advhunter — HPC side-channel adversarial-example detection (DAC'24 reproduction)

commands:
  list        list experiments and scenarios
  experiment  run one experiment by id (-id table2)
  train       train or load one scenario model (-scenario S2)
  attack      craft adversarial examples and report attack statistics
  scan        run the deployed pipeline on test images and print decisions

run 'advhunter <command> -h' for flags.`)
}

// commonFlags registers the flags every subcommand shares.
func commonFlags(fs *flag.FlagSet) (cache *string, quick *bool, verbose *bool, workers *int) {
	cache = fs.String("cache", "artifacts/cache", "cache directory for models and measurements (empty disables)")
	quick = fs.Bool("quick", false, "reduced workload sizes (for smoke tests)")
	verbose = fs.Bool("v", false, "log progress to stderr")
	workers = fs.Int("workers", 0, "worker goroutines for measurement/attack fan-out (0 = GOMAXPROCS, 1 = serial; results are identical for any value)")
	return
}

func optionsFrom(cache string, quick, verbose bool, workers int) experiments.Options {
	var log io.Writer
	if verbose {
		log = os.Stderr
	}
	return experiments.Options{CacheDir: cache, Quick: quick, Log: log, Workers: workers}
}

func cmdList() error {
	fmt.Println("experiments:")
	for _, id := range experiments.IDs() {
		fmt.Printf("  %-22s %s\n", id, experiments.Registry[id].Description)
	}
	fmt.Println("\nscenarios:")
	for _, id := range []string{"S1", "S2", "S3", "CS"} {
		s := experiments.Scenarios[id]
		fmt.Printf("  %-3s %s × %s (%d classes, target %q)\n",
			id, s.Dataset, s.Arch, classesOf(s.Dataset), data.ClassName(s.Dataset, s.TargetClass))
	}
	return nil
}

func classesOf(dataset string) int {
	if dataset == "gtsrb" {
		return 43
	}
	return 10
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	id := fs.String("id", "", "experiment id (see 'advhunter list'), or 'all'")
	asJSON := fs.Bool("json", false, "emit the result as JSON instead of a table")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	cache, quick, verbose, workers := commonFlags(fs)
	fs.Parse(args)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("creating cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "advhunter: creating mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "advhunter: writing mem profile: %v\n", err)
			}
		}()
	}
	opts := optionsFrom(*cache, *quick, *verbose, *workers)
	run := experiments.Run
	if *asJSON {
		run = experiments.RunJSON
	}
	if *id == "all" {
		for _, eid := range experiments.IDs() {
			if err := run(eid, opts, os.Stdout); err != nil {
				return fmt.Errorf("experiment %s: %w", eid, err)
			}
		}
		return nil
	}
	if *id == "" {
		return fmt.Errorf("missing -id (see 'advhunter list')")
	}
	return run(*id, opts, os.Stdout)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	scenario := fs.String("scenario", "S2", "scenario id (S1, S2, S3, CS)")
	cache, quick, verbose, workers := commonFlags(fs)
	fs.Parse(args)
	env, err := experiments.LoadEnv(*scenario, optionsFrom(*cache, *quick, *verbose, *workers))
	if err != nil {
		return err
	}
	fmt.Printf("scenario %s: %s × %s\n", env.Scn.ID, env.Scn.Dataset, env.Scn.Arch)
	fmt.Printf("clean test accuracy: %.2f%%\n", 100*env.CleanAcc)
	fmt.Printf("parameters: %d\n", env.Model.ParamCount())
	return nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	scenario := fs.String("scenario", "S2", "scenario id")
	kind := fs.String("kind", "fgsm", "attack kind: fgsm, pgd, deepfool")
	eps := fs.Float64("eps", 0.1, "attack strength (L∞); ignored by deepfool")
	targeted := fs.Bool("targeted", false, "targeted variant (toward the scenario target class)")
	n := fs.Int("n", 60, "number of source images")
	cache, quick, verbose, workers := commonFlags(fs)
	fs.Parse(args)
	env, err := experiments.LoadEnv(*scenario, optionsFrom(*cache, *quick, *verbose, *workers))
	if err != nil {
		return err
	}
	spec := experiments.AttackSpec{Kind: *kind, Eps: *eps, Targeted: *targeted}
	ar, err := env.Attack(spec, *n)
	if err != nil {
		return err
	}
	fmt.Printf("attack: %s on %s\n", spec, *scenario)
	fmt.Printf("success rate: %.2f%%   model accuracy under attack: %.2f%%\n",
		100*ar.SuccessRate, 100*ar.ModelAccuracy)
	fmt.Printf("successful adversarial examples measured: %d\n", len(ar.Meas))
	return nil
}

func cmdScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	scenario := fs.String("scenario", "S2", "scenario id")
	n := fs.Int("n", 10, "number of test images to scan (clean + adversarial)")
	eps := fs.Float64("eps", 0.5, "strength of the demonstration attack")
	cache, quick, verbose, workers := commonFlags(fs)
	fs.Parse(args)
	opts := optionsFrom(*cache, *quick, *verbose, *workers)
	env, err := experiments.LoadEnv(*scenario, opts)
	if err != nil {
		return err
	}
	det, err := env.Detector()
	if err != nil {
		return err
	}
	pipe := &core.Pipeline{M: env.Meas, D: det}
	cmIdx := det.EventIndex(hpc.CacheMisses)

	fmt.Printf("scanning %d clean test images:\n", *n)
	for i := 0; i < *n && i < len(env.DS.Test); i++ {
		s := env.DS.Test[i]
		res := pipe.Scan(s.X)
		fmt.Printf("  image %2d (true %q): predicted %q, adversarial=%v\n",
			i, data.ClassName(env.Scn.Dataset, s.Label),
			data.ClassName(env.Scn.Dataset, res.PredictedClass), res.Flags[cmIdx])
	}

	spec := experiments.AttackSpec{Kind: "fgsm", Eps: *eps, Targeted: true}
	ar, err := env.Attack(spec, *n)
	if err != nil {
		return err
	}
	fmt.Printf("scanning %d adversarial images (%s):\n", len(ar.Meas), spec)
	for i, m := range ar.Meas {
		res := det.Detect(m.Pred, m.Counts)
		fmt.Printf("  AE %2d (from %q): predicted %q, adversarial=%v\n",
			i, data.ClassName(env.Scn.Dataset, m.TrueLabel),
			data.ClassName(env.Scn.Dataset, m.Pred), res.Flags[cmIdx])
	}
	return nil
}
