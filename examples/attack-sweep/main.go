// Attack sweep: how attack strength trades off against detectability.
// For a grid of FGSM and PGD strengths the sweep reports the model's
// accuracy under attack and AdvHunter's detection rate over the successful
// adversarial examples — the tension the paper's Figure 4 visualises:
// stronger attacks break the model harder but light up the side channel
// brighter.
//
// Run with:
//
//	go run ./examples/attack-sweep
package main

import (
	"fmt"
	"log"

	"advhunter/internal/attack"
	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/engine"
	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/train"
	"advhunter/internal/uarch/hpc"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training CIFAR10-like ResNet18…")
	ds := data.MustSynth("cifar10", 11, 40, 12)
	model := models.MustBuild("resnet18", ds.C, ds.H, ds.W, ds.Classes, 4)
	cfg := train.DefaultConfig()
	cfg.Epochs = 12
	cfg.TargetAccuracy = 0.999
	res := train.SGD(model, ds, cfg)
	fmt.Printf("clean accuracy: %.1f%%\n\n", 100*res.TestAccuracy)

	meas := core.NewMeasurer(engine.NewDefault(model), 13)
	fmt.Println("offline phase: fitting per-category GMM templates…")
	val := data.MustSynth("cifar10", 12, 50, 0).Train
	tpl := core.BuildTemplate(meas, val, ds.Classes, hpc.CoreEvents())
	det, err := detect.Fit("gmm", tpl, detect.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	var sources []data.Sample
	for _, s := range ds.Test {
		if model.Predict(s.X) == s.Label {
			sources = append(sources, s)
		}
		if len(sources) == 40 {
			break
		}
	}

	fmt.Printf("\n%-22s %-18s %-14s %s\n", "attack", "model accuracy", "successful AEs", "detection rate")
	for _, row := range []struct {
		name string
		atk  attack.Attack
	}{
		{"FGSM ε=0.05", attack.NewFGSM(0.05)},
		{"FGSM ε=0.10", attack.NewFGSM(0.10)},
		{"FGSM ε=0.20", attack.NewFGSM(0.20)},
		{"PGD  ε=0.05", attack.NewPGD(0.05, rng.New(1))},
		{"PGD  ε=0.10", attack.NewPGD(0.10, rng.New(2))},
		{"PGD  ε=0.20", attack.NewPGD(0.20, rng.New(3))},
	} {
		crafted := attack.Craft(model, row.atk, sources)
		advs := attack.Successful(row.atk, crafted)
		caught := 0
		for _, s := range advs {
			if det.Detect(meas.Measure(s.X)).FlaggedBy(hpc.CacheMisses) {
				caught++
			}
		}
		rate := 0.0
		if len(advs) > 0 {
			rate = float64(caught) / float64(len(advs))
		}
		fmt.Printf("%-22s %-18s %-14d %.0f%% (%d/%d)\n",
			row.name, fmt.Sprintf("%.1f%%", 100*crafted.ModelAccuracy), len(advs),
			100*rate, caught, len(advs))
	}
	fmt.Println("\nStronger perturbations defeat the model more often and, for a given attack")
	fmt.Println("family, deviate further from the benign data-flow template. Iterative attacks")
	fmt.Println("(PGD) break the model with subtler data-flow changes than single-step FGSM —")
	fmt.Println("the detector's hardest case.")
}
