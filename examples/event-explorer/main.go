// Event explorer: which hardware events leak the data-flow side channel?
// For every modelled HPC event the explorer prints clean-vs-adversarial
// reading statistics and the per-event detection score — an interactive
// version of the paper's Figures 3 and 5 in one table.
//
// Run with:
//
//	go run ./examples/event-explorer
package main

import (
	"fmt"
	"log"

	"advhunter/internal/attack"
	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/engine"
	"advhunter/internal/metrics"
	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/train"
	"advhunter/internal/uarch/hpc"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training FashionMNIST-like EfficientNet…")
	ds := data.MustSynth("fashionmnist", 33, 40, 15)
	model := models.MustBuild("efficientnet", ds.C, ds.H, ds.W, ds.Classes, 8)
	cfg := train.DefaultConfig()
	cfg.Epochs = 10
	cfg.TargetAccuracy = 0.999
	train.SGD(model, ds, cfg)

	meas := core.NewMeasurer(engine.NewDefault(model), 21)
	val := data.MustSynth("fashionmnist", 34, 50, 0).Train
	tpl := core.BuildTemplate(meas, val, ds.Classes, hpc.AllEvents())
	det, err := detect.Fit("gmm", tpl, detect.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	const target = 6 // shirt
	atk := attack.NewTargetedPGD(0.4, target, rng.New(3))
	var sources []data.Sample
	for _, s := range ds.Test {
		if s.Label != target && len(sources) < 50 {
			sources = append(sources, s)
		}
	}
	advs := attack.Successful(atk, attack.Craft(model, atk, sources))
	if len(advs) == 0 {
		log.Fatal("the attack produced no successful adversarial examples; nothing to explore")
	}
	var cleanSamples []data.Sample
	for _, s := range ds.Test {
		if s.Label == target {
			cleanSamples = append(cleanSamples, s)
		}
	}
	clean := core.MeasureSet(meas, cleanSamples)
	adv := core.MeasureSet(meas, advs)

	fmt.Printf("\nworkload: %d clean %q images vs %d targeted-PGD AEs\n\n",
		len(clean), data.ClassName("fashionmnist", target), len(adv))
	fmt.Printf("%-22s %16s %16s %8s %8s\n", "event", "clean mean±std", "AE mean±std", "overlap", "F1")
	for _, e := range hpc.AllEvents() {
		var cv, av []float64
		for _, m := range clean {
			cv = append(cv, m.Counts.Get(e))
		}
		for _, m := range adv {
			av = append(av, m.Counts.Get(e))
		}
		cs, as := metrics.Summarize(cv), metrics.Summarize(av)
		conf := detect.EvaluateEvent(det, e, clean, adv, 0)
		fmt.Printf("%-22s %9.0f±%-6.0f %9.0f±%-6.0f %8.3f %8.3f\n",
			e, cs.Mean, cs.Std, as.Mean, as.Std,
			metrics.OverlapCoefficient(cv, av, 24), conf.F1())
	}
	fmt.Println("\nThe instruction-side events read the same for both input types — the executed")
	fmt.Println("program is identical. Only the data-flow events expose the adversarial inputs.")
}
