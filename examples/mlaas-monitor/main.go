// MLaaS monitor: AdvHunter deployed as a guard in front of a simulated
// cloud inference service — now through the real serving stack. The guard
// is fitted once and persisted (detect.Save), reloaded the way a
// fresh serving process would load it, and exposed as the HTTP JSON service
// (internal/serve) with micro-batching and a replica pool. A stream of
// queries — mostly legitimate, with adversarial probing mixed in — is fired
// by eight concurrent clients, and every decision comes back over the wire.
// Because each query carries an explicit noise index, the verdicts are
// identical no matter how the clients interleave.
//
// Run with:
//
//	go run ./examples/mlaas-monitor
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"

	"advhunter/internal/attack"
	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/engine"
	"advhunter/internal/metrics"
	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/serve"
	"advhunter/internal/train"
	"advhunter/internal/uarch/hpc"
)

// query is one inference request entering the service.
type query struct {
	sample      data.Sample
	adversarial bool
}

func main() {
	log.SetFlags(0)

	// Service setup: an image-classification endpoint (CIFAR10-like ResNet).
	fmt.Println("bootstrapping service: training the classification model…")
	ds := data.MustSynth("cifar10", 9, 40, 12)
	model := models.MustBuild("resnet18", ds.C, ds.H, ds.W, ds.Classes, 3)
	cfg := train.DefaultConfig()
	cfg.Epochs = 12
	cfg.TargetAccuracy = 0.999
	res := train.SGD(model, ds, cfg)
	fmt.Printf("model ready (%.1f%% clean accuracy)\n", 100*res.TestAccuracy)

	// Guard setup: offline phase on clean validation traffic, then persist —
	// fit once, serve many. A serving process only needs the artifact.
	meas := core.NewMeasurer(engine.NewDefault(model), 77)
	fmt.Println("guard: measuring clean validation traffic (offline phase)…")
	val := data.MustSynth("cifar10", 10, 60, 0).Train
	tpl := core.BuildTemplate(meas.Clone(), val, ds.Classes, hpc.CoreEvents())
	fitted, err := detect.Fit("gmm", tpl, detect.DefaultConfig())
	if err != nil {
		log.Fatalf("guard: %v", err)
	}
	dir, err := os.MkdirTemp("", "advhunter-monitor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	artifact := filepath.Join(dir, "detector.gob")
	if err := detect.Save(artifact, fitted); err != nil {
		log.Fatalf("guard: persisting detector: %v", err)
	}
	det, ok := detect.TryLoad(artifact)
	if !ok {
		log.Fatal("guard: persisted detector failed to load")
	}
	fmt.Printf("guard: detector persisted to and reloaded from %s\n", filepath.Base(artifact))

	// Online phase: the detection service, exactly as `advhunter serve`
	// runs it — bounded queue, micro-batching, engine-replica pool.
	srv := serve.New(meas, det, serve.Config{
		Workers:   4,
		MaxBatch:  8,
		ClassName: func(c int) string { return data.ClassName("cifar10", c) },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	fmt.Printf("guard: service up at %s (POST /detect)\n\n", ts.URL)

	// The attacker probes the service with images steered toward 'frog'.
	const target = 6 // "frog"
	fmt.Printf("adversary: preparing targeted FGSM examples toward %q…\n",
		data.ClassName("cifar10", target))
	atk := attack.NewTargetedFGSM(0.5, target)
	var sources []data.Sample
	for _, s := range ds.Test {
		if s.Label != target && len(sources) < 80 {
			sources = append(sources, s)
		}
	}
	advs := attack.Successful(atk, attack.Craft(model, atk, sources))

	// Build the query stream: legitimate traffic with adversarial bursts.
	r := rng.New(2024)
	var stream []query
	for _, s := range ds.Test {
		stream = append(stream, query{sample: s})
	}
	for _, s := range advs {
		stream = append(stream, query{sample: s, adversarial: true})
	}
	r.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	if len(stream) > 150 {
		stream = stream[:150]
	}

	// Serve the stream through 8 concurrent clients. Verdicts land in
	// stream order because each query carries its stream position as the
	// noise index and the response echoes it back.
	fmt.Printf("serving %d queries through 8 concurrent clients…\n", len(stream))
	verdicts := make([]serve.Response, len(stream))
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				verdicts[i] = postDetect(ts.URL, serve.NewRequest(stream[i].sample.X, uint64(i)))
			}
		}()
	}
	for i := range stream {
		work <- i
	}
	close(work)
	wg.Wait()

	var conf metrics.Confusion
	alerts := 0
	for i, q := range stream {
		v := verdicts[i]
		conf.Add(q.adversarial, v.Adversarial)
		if v.Adversarial {
			alerts++
			kind := "FALSE ALARM"
			if q.adversarial {
				kind = "ATTACK CAUGHT"
			}
			fmt.Printf("  query %3d: predicted %-28q  ⚠ ALERT (%s)\n", i, v.ClassName, kind)
		}
	}

	fmt.Printf("\nshift report: %d alerts over %d queries\n", alerts, len(stream))
	fmt.Printf("  adversarial queries: %d (caught %d, missed %d)\n",
		conf.TP+conf.FN, conf.TP, conf.FN)
	fmt.Printf("  legitimate queries:  %d (false alarms %d)\n", conf.TN+conf.FP, conf.FP)
	fmt.Printf("  precision %.2f  recall %.2f  F1 %.3f\n",
		conf.Precision(), conf.Recall(), conf.F1())

	// The service's own view of the traffic, from /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatalf("scraping metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nservice metrics (excerpt):")
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("advhunter_scans_total")) ||
			bytes.HasPrefix(line, []byte("advhunter_flagged_total")) ||
			bytes.HasPrefix(line, []byte("advhunter_requests_total")) {
			fmt.Printf("  %s\n", line)
		}
	}
}

// postDetect posts one query and decodes the verdict; any service error is
// fatal (this is a demo stream, not production retry logic).
func postDetect(url string, req serve.Request) serve.Response {
	raw, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url+"/detect", "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatalf("detect: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("detect: reading response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("detect: status %d: %s", resp.StatusCode, body)
	}
	var v serve.Response
	if err := json.Unmarshal(body, &v); err != nil {
		log.Fatalf("detect: decoding verdict: %v", err)
	}
	return v
}
