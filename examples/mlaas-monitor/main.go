// MLaaS monitor: AdvHunter deployed as a guard in front of a simulated
// cloud inference service. A stream of queries arrives — mostly legitimate,
// with bursts of adversarial probing — and the monitor decides per query,
// from the hard label and the HPC reading of that inference, whether to
// raise an alert. This is the deployment the paper motivates: no model
// internals, no confidence scores, no physical access — just counters.
//
// Run with:
//
//	go run ./examples/mlaas-monitor
package main

import (
	"fmt"
	"log"

	"advhunter/internal/attack"
	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/engine"
	"advhunter/internal/metrics"
	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/train"
	"advhunter/internal/uarch/hpc"
)

// query is one inference request entering the service.
type query struct {
	sample      data.Sample
	adversarial bool
}

func main() {
	log.SetFlags(0)

	// Service setup: an image-classification endpoint (CIFAR10-like ResNet).
	fmt.Println("bootstrapping service: training the classification model…")
	ds := data.MustSynth("cifar10", 9, 40, 12)
	model := models.MustBuild("resnet18", ds.C, ds.H, ds.W, ds.Classes, 3)
	cfg := train.DefaultConfig()
	cfg.Epochs = 12
	cfg.TargetAccuracy = 0.999
	res := train.SGD(model, ds, cfg)
	fmt.Printf("model ready (%.1f%% clean accuracy)\n", 100*res.TestAccuracy)

	// Guard setup: offline phase on clean validation traffic.
	meas := core.NewMeasurer(engine.NewDefault(model), 77)
	fmt.Println("guard: measuring clean validation traffic (offline phase)…")
	val := data.MustSynth("cifar10", 10, 60, 0).Train
	tpl := core.BuildTemplate(meas, val, ds.Classes, hpc.CoreEvents())
	det, err := core.Fit(tpl, core.DefaultConfig())
	if err != nil {
		log.Fatalf("guard: %v", err)
	}
	pipe := &core.Pipeline{M: meas, D: det}
	cm := det.EventIndex(hpc.CacheMisses)

	// The attacker probes the service with images steered toward 'frog'.
	const target = 6 // "frog"
	fmt.Printf("adversary: preparing targeted FGSM examples toward %q…\n\n",
		data.ClassName("cifar10", target))
	atk := attack.NewTargetedFGSM(0.5, target)
	var sources []data.Sample
	for _, s := range ds.Test {
		if s.Label != target && len(sources) < 80 {
			sources = append(sources, s)
		}
	}
	advs := attack.Successful(atk, attack.Craft(model, atk, sources))

	// Build the query stream: legitimate traffic with adversarial bursts.
	r := rng.New(2024)
	var stream []query
	for _, s := range ds.Test {
		stream = append(stream, query{sample: s})
	}
	for _, s := range advs {
		stream = append(stream, query{sample: s, adversarial: true})
	}
	r.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	if len(stream) > 150 {
		stream = stream[:150]
	}

	// Serve.
	fmt.Printf("serving %d queries…\n", len(stream))
	var conf metrics.Confusion
	alerts := 0
	for i, q := range stream {
		res := pipe.Scan(q.sample.X)
		flagged := res.Flags[cm]
		conf.Add(q.adversarial, flagged)
		if flagged {
			alerts++
			kind := "FALSE ALARM"
			if q.adversarial {
				kind = "ATTACK CAUGHT"
			}
			fmt.Printf("  query %3d: predicted %-28q  ⚠ ALERT (%s)\n",
				i, data.ClassName("cifar10", res.PredictedClass), kind)
		}
	}

	fmt.Printf("\nshift report: %d alerts over %d queries\n", alerts, len(stream))
	fmt.Printf("  adversarial queries: %d (caught %d, missed %d)\n",
		conf.TP+conf.FN, conf.TP, conf.FN)
	fmt.Printf("  legitimate queries:  %d (false alarms %d)\n", conf.TN+conf.FP, conf.FP)
	fmt.Printf("  precision %.2f  recall %.2f  F1 %.3f\n",
		conf.Precision(), conf.Recall(), conf.F1())
}
