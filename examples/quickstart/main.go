// Quickstart: the complete AdvHunter pipeline on one small scenario —
// train a CNN, craft adversarial examples against it, build the defender's
// HPC template (offline phase), then detect adversarial inputs from
// hard-label predictions plus simulated performance-counter readings
// (online phase).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"advhunter/internal/attack"
	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/engine"
	"advhunter/internal/models"
	"advhunter/internal/train"
	"advhunter/internal/uarch/hpc"
)

func main() {
	log.SetFlags(0)

	// 1. The vendor's proprietary model: a CNN trained on FashionMNIST-like
	// data. The defender will only ever see its hard labels.
	fmt.Println("== 1. training the target model ==")
	ds := data.MustSynth("fashionmnist", 42, 40, 10)
	model := models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 7)
	cfg := train.DefaultConfig()
	cfg.LearningRate = 0.02
	cfg.Epochs = 20
	cfg.TargetAccuracy = 0.999
	cfg.Log = os.Stdout
	res := train.SGD(model, ds, cfg)
	fmt.Printf("clean test accuracy: %.1f%%\n\n", 100*res.TestAccuracy)

	// 2. The defender's measurement stack: the model deployed on a machine
	// whose hardware performance counters we can read (simulated here), each
	// reading repeated R=10 times as in the paper.
	meas := core.NewMeasurer(engine.NewDefault(model), 1)

	// 3. Offline phase: measure clean validation images, fit one GMM per
	// (category, event), derive 3σ thresholds.
	fmt.Println("== 2. offline phase: building the benign template ==")
	tpl := core.BuildTemplate(meas, ds.Train, ds.Classes, hpc.CoreEvents())
	det, err := detect.Fit("gmm", tpl, detect.DefaultConfig())
	if err != nil {
		log.Fatalf("fitting detector: %v", err)
	}
	fmt.Printf("fitted GMMs for %d events × %d categories\n\n", len(det.Events()), ds.Classes)

	// 4. The adversary: white-box targeted FGSM steering images into class
	// 'shirt'.
	const target = 6 // shirt
	fmt.Println("== 3. adversary crafts targeted FGSM examples ==")
	atk := attack.NewTargetedFGSM(0.5, target)
	var sources []data.Sample
	for _, s := range ds.Test {
		if s.Label != target && len(sources) < 40 {
			sources = append(sources, s)
		}
	}
	crafted := attack.Craft(model, atk, sources)
	advs := attack.Successful(atk, crafted)
	fmt.Printf("attack success rate: %.0f%% (%d usable AEs)\n\n", 100*crafted.SuccessRate, len(advs))

	// 5. Online phase: scan unknown inputs. The defender sees only the
	// hard label and the counter reading.
	fmt.Println("== 4. online phase: scanning unknown inputs ==")
	pipe := &detect.Pipeline{M: meas, D: det}

	cleanFlagged, cleanTotal := 0, 0
	for _, s := range ds.Test[:40] {
		if pipe.Scan(s.X).FlaggedBy(hpc.CacheMisses) {
			cleanFlagged++
		}
		cleanTotal++
	}
	advFlagged := 0
	for _, s := range advs {
		if pipe.Scan(s.X).FlaggedBy(hpc.CacheMisses) {
			advFlagged++
		}
	}
	fmt.Printf("clean inputs flagged:       %d / %d\n", cleanFlagged, cleanTotal)
	fmt.Printf("adversarial inputs flagged: %d / %d\n", advFlagged, len(advs))
	fmt.Println("\nAdvHunter detected the adversarial inputs from hard labels + HPC readings alone.")
}
