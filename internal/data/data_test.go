package data

import (
	"testing"
	"testing/quick"

	"advhunter/internal/tensor"
)

func TestSynthShapesAndRange(t *testing.T) {
	for _, name := range Names() {
		d := MustSynth(name, 1, 2, 1)
		if len(d.Train) != 2*d.Classes || len(d.Test) != d.Classes {
			t.Fatalf("%s: split sizes %d/%d", name, len(d.Train), len(d.Test))
		}
		for _, s := range append(append([]Sample{}, d.Train...), d.Test...) {
			if s.X.Dim(0) != d.C || s.X.Dim(1) != d.H || s.X.Dim(2) != d.W {
				t.Fatalf("%s: sample shape %v", name, s.X.Shape())
			}
			if s.X.Min() < 0 || s.X.Max() > 1 {
				t.Fatalf("%s: pixel range [%v, %v]", name, s.X.Min(), s.X.Max())
			}
			if s.Label < 0 || s.Label >= d.Classes {
				t.Fatalf("%s: label %d", name, s.Label)
			}
		}
	}
}

func TestSynthDeterministic(t *testing.T) {
	a := MustSynth("cifar10", 7, 3, 2)
	b := MustSynth("cifar10", 7, 3, 2)
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label || !tensor.Equal(a.Train[i].X, b.Train[i].X, 0) {
			t.Fatalf("equal seeds diverged at train sample %d", i)
		}
	}
	c := MustSynth("cifar10", 8, 3, 2)
	same := true
	for i := range a.Test {
		if !tensor.Equal(a.Test[i].X, c.Test[i].X, 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSynthUnknownName(t *testing.T) {
	if _, err := Synth("imagenet", 1, 1, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrainSetIsShuffled(t *testing.T) {
	d := MustSynth("fashionmnist", 3, 10, 1)
	// If unshuffled, the first 10 train labels would all be class 0.
	first := d.Train[0].Label
	allSame := true
	for _, s := range d.Train[:10] {
		if s.Label != first {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("training set does not appear shuffled")
	}
}

func TestInstancesOfSameClassDiffer(t *testing.T) {
	d := MustSynth("gtsrb", 4, 3, 0)
	buckets := ByClass(d.Train, d.Classes)
	for class, ss := range buckets {
		if len(ss) < 2 {
			continue
		}
		if tensor.Equal(ss[0].X, ss[1].X, 1e-9) {
			t.Fatalf("class %d instances are identical", class)
		}
	}
}

func TestClassSeparation(t *testing.T) {
	// Mean intra-class L2 distance must be clearly below inter-class
	// distance, otherwise nothing is learnable.
	d := MustSynth("cifar10", 5, 6, 0)
	buckets := ByClass(d.Train, d.Classes)
	dist := func(a, b *tensor.Tensor) float64 { return tensor.Sub(a, b).L2Norm() }
	var intra, inter float64
	var nIntra, nInter int
	for c := 0; c < d.Classes; c++ {
		for i := 0; i < len(buckets[c]); i++ {
			for j := i + 1; j < len(buckets[c]); j++ {
				intra += dist(buckets[c][i].X, buckets[c][j].X)
				nIntra++
			}
		}
		for c2 := c + 1; c2 < d.Classes; c2++ {
			inter += dist(buckets[c][0].X, buckets[c2][0].X)
			nInter++
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if inter < 1.3*intra {
		t.Fatalf("classes poorly separated: intra %.3f vs inter %.3f", intra, inter)
	}
}

func TestByClassPartition(t *testing.T) {
	f := func(seed uint64) bool {
		d := MustSynth("fashionmnist", seed, 3, 0)
		buckets := ByClass(d.Train, d.Classes)
		total := 0
		for c, ss := range buckets {
			total += len(ss)
			for _, s := range ss {
				if s.Label != c {
					return false
				}
			}
		}
		return total == len(d.Train)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestStack(t *testing.T) {
	d := MustSynth("cifar10", 2, 1, 0)
	x, labels := Stack(d.Train[:4])
	if x.Dim(0) != 4 || x.Dim(1) != 3 || x.Dim(2) != 32 || x.Dim(3) != 32 {
		t.Fatalf("stacked shape %v", x.Shape())
	}
	if len(labels) != 4 {
		t.Fatal("label count")
	}
	// Row 2 must equal sample 2.
	row := tensor.FromSlice(x.Data()[2*3*32*32:3*3*32*32], 3, 32, 32)
	if !tensor.Equal(row, d.Train[2].X, 0) {
		t.Fatal("Stack copied wrong data")
	}
}

func TestClassNames(t *testing.T) {
	if ClassName("cifar10", 6) != "frog" {
		t.Fatalf("cifar10[6] = %q, want frog", ClassName("cifar10", 6))
	}
	if ClassName("fashionmnist", 6) != "shirt" {
		t.Fatalf("fashionmnist[6] = %q", ClassName("fashionmnist", 6))
	}
	if ClassName("gtsrb", 1) != "speed limit (30km/h)" {
		t.Fatalf("gtsrb[1] = %q", ClassName("gtsrb", 1))
	}
	if ClassIndex("cifar10", "frog") != 6 {
		t.Fatal("ClassIndex frog")
	}
	if ClassIndex("cifar10", "zebra") != -1 {
		t.Fatal("ClassIndex unknown")
	}
	if ClassName("gtsrb", 99) != "class-99" {
		t.Fatal("out-of-range class name")
	}
}
