package data

import (
	"math"

	"advhunter/internal/rng"
	"advhunter/internal/tensor"
)

// classParams derives the deterministic pattern parameters of a class from
// its index. Classes are spread over orientation × frequency × phase space so
// that neighbouring indices still produce visually distinct patterns.
type classParams struct {
	theta  float64 // grating orientation
	freq   float64 // grating spatial frequency
	phase  float64
	blobX  float64 // attractor blob centre in [0,1]²
	blobY  float64
	blobS  float64 // blob radius
	colorR float64 // channel gains (used by RGB datasets)
	colorG float64
	colorB float64
	shape  int // sign silhouette family (GTSRB)
}

// paramsFor mixes the class index through a fixed hash so parameters look
// arbitrary but are stable across runs.
func paramsFor(class int, classes int) classParams {
	h := rng.New(uint64(class)*0x9e3779b97f4a7c15 + 0xabcdef)
	frac := float64(class) / float64(classes)
	return classParams{
		theta:  math.Pi * frac * 2.7,
		freq:   1.5 + 3.5*h.Float64(),
		phase:  2 * math.Pi * h.Float64(),
		blobX:  0.2 + 0.6*h.Float64(),
		blobY:  0.2 + 0.6*h.Float64(),
		blobS:  0.10 + 0.15*h.Float64(),
		colorR: 0.3 + 0.7*h.Float64(),
		colorG: 0.3 + 0.7*h.Float64(),
		colorB: 0.3 + 0.7*h.Float64(),
		shape:  class % 3,
	}
}

// instance describes per-image jitter shared by all generators.
type instance struct {
	dx, dy    float64 // sub-pixel translation in pixel units
	amplitude float64
	noise     float64
}

func drawInstance(r *rng.Rand) instance {
	return instance{
		dx:        r.Normal(0, 0.5),
		dy:        r.Normal(0, 0.5),
		amplitude: 0.9 + 0.2*r.Float64(),
		noise:     0.04 + 0.03*r.Float64(),
	}
}

// grating evaluates the class's oriented sinusoid at pixel (x, y) of an h×w
// grid, with instance jitter applied.
func grating(p classParams, in instance, x, y, h, w int) float64 {
	u := (float64(x) + in.dx) / float64(w)
	v := (float64(y) + in.dy) / float64(h)
	t := u*math.Cos(p.theta) + v*math.Sin(p.theta)
	return 0.5 + 0.5*math.Sin(2*math.Pi*p.freq*t+p.phase)
}

// blob evaluates the class's Gaussian attractor at pixel (x, y).
func blob(p classParams, in instance, x, y, h, w int) float64 {
	u := (float64(x)+in.dx)/float64(w) - p.blobX
	v := (float64(y)+in.dy)/float64(h) - p.blobY
	return math.Exp(-(u*u + v*v) / (2 * p.blobS * p.blobS))
}

// genFashionMNIST produces a 1×28×28 grayscale pattern: grating + blob with
// instance jitter and pixel noise.
func genFashionMNIST(class int, r *rng.Rand) *tensor.Tensor {
	const h, w = 28, 28
	p := paramsFor(class, 10)
	in := drawInstance(r)
	img := tensor.New(1, h, w)
	d := img.Data()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.55*grating(p, in, x, y, h, w) + 0.45*blob(p, in, x, y, h, w)
			d[y*w+x] = in.amplitude*v + r.Normal(0, in.noise)
		}
	}
	img.ClampInPlace(0, 1)
	return img
}

// genCIFAR10 produces a 3×32×32 colour pattern: the class grating and blob
// modulated by class-specific channel gains, plus a second harmonic so
// classes are not linearly separable from raw pixels.
func genCIFAR10(class int, r *rng.Rand) *tensor.Tensor {
	const h, w = 32, 32
	p := paramsFor(class, 10)
	in := drawInstance(r)
	img := tensor.New(3, h, w)
	d := img.Data()
	gains := [3]float64{p.colorR, p.colorG, p.colorB}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g := grating(p, in, x, y, h, w)
			b := blob(p, in, x, y, h, w)
			h2 := 0.5 + 0.5*math.Sin(4*math.Pi*p.freq*(float64(x+y)+in.dx)/float64(h+w)+p.phase)
			base := 0.45*g + 0.35*b + 0.20*h2
			for c := 0; c < 3; c++ {
				d[c*h*w+y*w+x] = in.amplitude*gains[c]*base + r.Normal(0, in.noise)
			}
		}
	}
	img.ClampInPlace(0, 1)
	return img
}

// genGTSRB produces a 3×32×32 traffic-sign-like pattern: a silhouette
// (disc / triangle / diamond by class family) whose border and interior carry
// class-specific hue and stripe frequency.
func genGTSRB(class int, r *rng.Rand) *tensor.Tensor {
	const h, w = 32, 32
	p := paramsFor(class, 43)
	in := drawInstance(r)
	img := tensor.New(3, h, w)
	d := img.Data()
	cx, cy := 0.5+in.dx/float64(w), 0.5+in.dy/float64(h)
	gains := [3]float64{p.colorR, p.colorG, p.colorB}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := float64(x)/float64(w) - cx
			v := float64(y)/float64(h) - cy
			var dist float64
			switch p.shape {
			case 0: // disc
				dist = math.Sqrt(u*u+v*v) / 0.38
			case 1: // triangle (infinity-norm-ish wedge)
				dist = (math.Abs(u) + math.Max(-v, 0.0) + 0.4*math.Max(v, 0)) / 0.34
			default: // diamond
				dist = (math.Abs(u) + math.Abs(v)) / 0.40
			}
			inside := 0.0
			if dist < 1 {
				inside = 1
			}
			border := math.Exp(-math.Abs(dist-1) * 12)
			stripe := 0.5 + 0.5*math.Sin(2*math.Pi*p.freq*(u*math.Cos(p.theta)+v*math.Sin(p.theta))+p.phase)
			for c := 0; c < 3; c++ {
				val := 0.15 + 0.55*inside*stripe*gains[c] + 0.5*border*gains[(c+1)%3]
				d[c*h*w+y*w+x] = in.amplitude*val + r.Normal(0, in.noise)
			}
		}
	}
	img.ClampInPlace(0, 1)
	return img
}
