// Package data provides the three evaluation datasets as seeded procedural
// generators. The real FashionMNIST / CIFAR-10 / GTSRB files are not
// available offline, and the detector under study never inspects pixels —
// it needs (a) classifiers trainable to paper-comparable clean accuracy and
// (b) class-conditional structure so that adversarial examples crossing a
// class boundary excite atypical neuron activations. Each synthetic class is
// therefore a distinct parametric pattern (oriented gratings, Gaussian
// blobs, sign-like shapes) with per-instance jitter, amplitude variation and
// pixel noise, matching the original datasets' shapes and class counts.
package data

import (
	"fmt"

	"advhunter/internal/rng"
	"advhunter/internal/tensor"
)

// Sample is one labelled image with values in [0, 1].
type Sample struct {
	X     *tensor.Tensor // shape [C, H, W]
	Label int
}

// Dataset is a named train/test split.
type Dataset struct {
	Name    string
	Classes int
	C, H, W int
	Train   []Sample
	Test    []Sample
}

// generator synthesises one image of the given class.
type generator func(class int, r *rng.Rand) *tensor.Tensor

// spec ties a dataset name to its geometry, class count and generator.
type spec struct {
	classes, c, h, w int
	gen              generator
	classNames       []string
}

var specs = map[string]spec{
	"fashionmnist": {10, 1, 28, 28, genFashionMNIST, fashionMNISTNames},
	"cifar10":      {10, 3, 32, 32, genCIFAR10, cifar10Names},
	"gtsrb":        {43, 3, 32, 32, genGTSRB, gtsrbNames},
}

// Names returns the available dataset names.
func Names() []string { return []string{"fashionmnist", "cifar10", "gtsrb"} }

// Synth generates a dataset with the given per-class sample counts. The seed
// fully determines every pixel.
func Synth(name string, seed uint64, trainPerClass, testPerClass int) (*Dataset, error) {
	sp, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("data: unknown dataset %q (have %v)", name, Names())
	}
	root := rng.New(seed)
	d := &Dataset{Name: name, Classes: sp.classes, C: sp.c, H: sp.h, W: sp.w}
	trainRand := root.Split(1)
	testRand := root.Split(2)
	for class := 0; class < sp.classes; class++ {
		for i := 0; i < trainPerClass; i++ {
			d.Train = append(d.Train, Sample{X: sp.gen(class, trainRand), Label: class})
		}
		for i := 0; i < testPerClass; i++ {
			d.Test = append(d.Test, Sample{X: sp.gen(class, testRand), Label: class})
		}
	}
	// Shuffle the training set once so mini-batches mix classes.
	trainRand.Shuffle(len(d.Train), func(i, j int) { d.Train[i], d.Train[j] = d.Train[j], d.Train[i] })
	return d, nil
}

// MustSynth is Synth for static dataset names; it panics on error.
func MustSynth(name string, seed uint64, trainPerClass, testPerClass int) *Dataset {
	d, err := Synth(name, seed, trainPerClass, testPerClass)
	if err != nil {
		panic(err)
	}
	return d
}

// ClassName returns the human-readable label of a class, mirroring the real
// datasets' vocabularies (the paper's target classes 'shirt', 'frog' and
// 'speed limit (30km/h)' keep their canonical indices).
func ClassName(dataset string, class int) string {
	sp, ok := specs[dataset]
	if !ok || class < 0 || class >= sp.classes {
		return fmt.Sprintf("class-%d", class)
	}
	if class < len(sp.classNames) {
		return sp.classNames[class]
	}
	return fmt.Sprintf("class-%d", class)
}

// ClassIndex returns the index of a named class, or -1 if unknown.
func ClassIndex(dataset, name string) int {
	sp, ok := specs[dataset]
	if !ok {
		return -1
	}
	for i, n := range sp.classNames {
		if n == name {
			return i
		}
	}
	return -1
}

// ByClass buckets samples per label.
func ByClass(samples []Sample, classes int) [][]Sample {
	out := make([][]Sample, classes)
	for _, s := range samples {
		out[s.Label] = append(out[s.Label], s)
	}
	return out
}

// Stack copies samples into one batched tensor plus a label slice.
func Stack(samples []Sample) (*tensor.Tensor, []int) {
	if len(samples) == 0 {
		panic("data: Stack of empty sample list")
	}
	c, h, w := samples[0].X.Dim(0), samples[0].X.Dim(1), samples[0].X.Dim(2)
	x := tensor.New(len(samples), c, h, w)
	labels := make([]int, len(samples))
	sz := c * h * w
	for i, s := range samples {
		copy(x.Data()[i*sz:(i+1)*sz], s.X.Data())
		labels[i] = s.Label
	}
	return x, labels
}

var fashionMNISTNames = []string{
	"t-shirt/top", "trouser", "pullover", "dress", "coat",
	"sandal", "shirt", "sneaker", "bag", "ankle boot",
}

var cifar10Names = []string{
	"airplane", "automobile", "bird", "cat", "deer",
	"dog", "frog", "horse", "ship", "truck",
}

// gtsrbNames lists the 43 GTSRB categories (official ordering).
var gtsrbNames = []string{
	"speed limit (20km/h)", "speed limit (30km/h)", "speed limit (50km/h)",
	"speed limit (60km/h)", "speed limit (70km/h)", "speed limit (80km/h)",
	"end of speed limit (80km/h)", "speed limit (100km/h)", "speed limit (120km/h)",
	"no passing", "no passing for vehicles over 3.5t", "right-of-way at next intersection",
	"priority road", "yield", "stop", "no vehicles", "vehicles over 3.5t prohibited",
	"no entry", "general caution", "dangerous curve to the left",
	"dangerous curve to the right", "double curve", "bumpy road", "slippery road",
	"road narrows on the right", "road work", "traffic signals", "pedestrians",
	"children crossing", "bicycles crossing", "beware of ice/snow",
	"wild animals crossing", "end of all speed and passing limits",
	"turn right ahead", "turn left ahead", "ahead only", "go straight or right",
	"go straight or left", "keep right", "keep left", "roundabout mandatory",
	"end of no passing", "end of no passing for vehicles over 3.5t",
}
