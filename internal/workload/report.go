package workload

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Quantiles summarise a latency distribution in milliseconds, computed
// nearest-rank over the client-observed per-request latencies.
type Quantiles struct {
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// quantilesOf computes nearest-rank quantiles; a nil input yields zeros.
func quantilesOf(lat []time.Duration) Quantiles {
	var q Quantiles
	if len(lat) == 0 {
		return q
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	q.P50Ms = at(0.50)
	q.P99Ms = at(0.99)
	q.P999Ms = at(0.999)
	q.MaxMs = float64(sorted[len(sorted)-1]) / float64(time.Millisecond)
	q.MeanMs = float64(sum) / float64(len(sorted)) / float64(time.Millisecond)
	return q
}

// CohortStats summarise one cohort's slice of the run.
type CohortStats struct {
	Requests int       `json:"requests"`
	OK       int       `json:"ok"`
	Flagged  int       `json:"flagged"`
	FlagRate float64   `json:"flag_rate"` // flagged / ok
	Latency  Quantiles `json:"latency"`
}

// ServerStats carry the server-side /metrics delta across the run: what the
// server did while the trace played, as distinct from what clients observed.
type ServerStats struct {
	TruthHits       float64 `json:"truth_hits"`
	TruthMisses     float64 `json:"truth_misses"`
	TruthHitRate    float64 `json:"truth_hit_rate"`
	TwinTruthHits   float64 `json:"twin_truth_hits"`
	TwinTruthMisses float64 `json:"twin_truth_misses"`
	Screened        float64 `json:"screened"`
	Escalations     float64 `json:"escalations"`
	EscalationRate  float64 `json:"escalation_rate"` // escalations / screened
	Rejected429     float64 `json:"rejected_429"`
	Timeouts504     float64 `json:"timeouts_504"`
	QueueCapacity   float64 `json:"queue_capacity"`
	QueueDepthPeak  float64 `json:"queue_depth_peak"`
	QueueDepthMean  float64 `json:"queue_depth_mean"`
	InflightPeak    float64 `json:"inflight_peak"`
	InflightMean    float64 `json:"inflight_mean"`
	GaugeSamples    int     `json:"gauge_samples"`
	AlertsFired     float64 `json:"alerts_fired"`  // alert transitions to firing during the run
	AlertsActive    float64 `json:"alerts_active"` // rules still firing when the run ended
}

// Report is the distilled result of one run: client-side rates and latency
// quantiles per traffic shape, per-cohort breakdowns, and the server-side
// counter deltas. It is the unit scripts/bench.sh records into BENCH_7.json.
type Report struct {
	Name          string                  `json:"name"`
	Shape         string                  `json:"shape"`
	Tier          string                  `json:"tier"` // dominant verdict tier ("" when responses carry none — exact-only serving)
	Seed          uint64                  `json:"seed"`
	Requests      int                     `json:"requests"`
	Completed     int                     `json:"completed"` // 200s
	Status        map[string]int          `json:"status"`
	Rate429       float64                 `json:"rate_429"`
	TimeoutRate   float64                 `json:"timeout_rate"`
	ErrorRate     float64                 `json:"error_rate"` // transport errors
	WallSeconds   float64                 `json:"wall_seconds"`
	ThroughputRPS float64                 `json:"throughput_rps"` // completed / wall
	Latency       Quantiles               `json:"latency"`        // over 200s
	Cohorts       map[string]*CohortStats `json:"cohorts"`
	Server        ServerStats             `json:"server"`
}

// buildReport distils outcomes plus the surrounding /metrics snapshots.
func buildReport(tr *Trace, outcomes []Outcome, before, after Snapshot, samples *gaugeSamples, wall time.Duration) *Report {
	rep := &Report{
		Name:     tr.Name,
		Shape:    string(tr.Arrival.Kind),
		Seed:     tr.Seed,
		Requests: len(outcomes),
		Status:   make(map[string]int),
		Cohorts:  make(map[string]*CohortStats),
	}

	var okLat []time.Duration
	tiers := make(map[string]int)
	for i := range outcomes {
		o := &outcomes[i]
		cs := rep.Cohorts[tr.Events[i].Cohort]
		if cs == nil {
			cs = &CohortStats{}
			rep.Cohorts[tr.Events[i].Cohort] = cs
		}
		cs.Requests++
		if o.Status == 0 {
			rep.Status["err"]++
			continue
		}
		rep.Status[fmt.Sprintf("%d", o.Status)]++
		if o.Status != 200 {
			continue
		}
		rep.Completed++
		okLat = append(okLat, o.Latency)
		cs.OK++
		if o.Adversarial {
			cs.Flagged++
		}
		if o.Tier != "" {
			tiers[o.Tier]++
		}
	}
	// Guard the empty run: a trace that completed zero requests (a saturated
	// sweep point, a cancelled run) must report zero rates, not NaN — NaN is
	// unencodable as JSON and would poison the whole report file.
	if n := float64(len(outcomes)); n > 0 {
		rep.Rate429 = float64(rep.Status["429"]) / n
		rep.TimeoutRate = float64(rep.Status["504"]) / n
		rep.ErrorRate = float64(rep.Status["err"]) / n
	}
	rep.WallSeconds = wall.Seconds()
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.Completed) / wall.Seconds()
	}
	rep.Latency = quantilesOf(okLat)
	for name, cs := range rep.Cohorts {
		if cs.OK > 0 {
			cs.FlagRate = float64(cs.Flagged) / float64(cs.OK)
		}
		var lat []time.Duration
		for i := range outcomes {
			if tr.Events[i].Cohort == name && outcomes[i].Status == 200 {
				lat = append(lat, outcomes[i].Latency)
			}
		}
		cs.Latency = quantilesOf(lat)
	}
	for t, c := range tiers {
		if c > tiers[rep.Tier] || rep.Tier == "" {
			rep.Tier = t
		}
	}

	// Server-side series are summed per family rather than fetched by exact
	// key: a single server renders one series per family (Sum == Get), while
	// a cluster scrape repeats each family under per-replica labels and the
	// report wants fleet totals.
	d := after.DeltaFrom(before)
	s := &rep.Server
	s.TruthHits = d.Sum("advhunter_truth_cache_hits_total")
	s.TruthMisses = d.Sum("advhunter_truth_cache_misses_total")
	if tot := s.TruthHits + s.TruthMisses; tot > 0 {
		s.TruthHitRate = s.TruthHits / tot
	}
	s.TwinTruthHits = d.Sum("advhunter_twin_truth_cache_hits_total")
	s.TwinTruthMisses = d.Sum("advhunter_twin_truth_cache_misses_total")
	s.Screened = d.Sum("advhunter_tier_screened_total")
	s.Escalations = d.Sum("advhunter_tier_escalations_total")
	if s.Screened > 0 {
		s.EscalationRate = s.Escalations / s.Screened
	}
	s.Rejected429 = d.SumMatch("advhunter_requests_total", "code", "429")
	s.Timeouts504 = d.SumMatch("advhunter_requests_total", "code", "504")
	s.QueueCapacity = after.Sum("advhunter_queue_capacity")
	s.QueueDepthPeak = samples.queuePeak
	s.InflightPeak = samples.inflightPeak
	s.GaugeSamples = samples.n
	if samples.n > 0 {
		s.QueueDepthMean = samples.queueSum / float64(samples.n)
		s.InflightMean = samples.inflightSum / float64(samples.n)
	}
	// Alert families exist only when the target runs an alert engine; on a
	// plain server both sums are 0 and the report simply carries zeros.
	s.AlertsFired = d.Sum("advhunter_alert_fired_total")
	s.AlertsActive = after.Sum("advhunter_alert_active")
	return rep
}

// Render writes the human-readable report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "workload %s: shape=%s tier=%s seed=%d\n", r.Name, r.Shape, r.Tier, r.Seed)
	fmt.Fprintf(w, "  requests %d, completed %d in %.2fs (%.1f req/s)\n",
		r.Requests, r.Completed, r.WallSeconds, r.ThroughputRPS)
	fmt.Fprintf(w, "  latency ms: p50 %.2f  p99 %.2f  p999 %.2f  max %.2f  mean %.2f\n",
		r.Latency.P50Ms, r.Latency.P99Ms, r.Latency.P999Ms, r.Latency.MaxMs, r.Latency.MeanMs)
	fmt.Fprintf(w, "  rates: 429 %.3f  timeout %.3f  transport-error %.3f\n",
		r.Rate429, r.TimeoutRate, r.ErrorRate)
	names := make([]string, 0, len(r.Cohorts))
	for n := range r.Cohorts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cs := r.Cohorts[n]
		fmt.Fprintf(w, "  cohort %-8s %4d req, %4d ok, flagged %.3f, p99 %.2fms\n",
			n, cs.Requests, cs.OK, cs.FlagRate, cs.Latency.P99Ms)
	}
	s := r.Server
	fmt.Fprintf(w, "  server: truth-cache hit rate %.3f (%g/%g)  escalation rate %.3f (%g/%g)\n",
		s.TruthHitRate, s.TruthHits, s.TruthHits+s.TruthMisses, s.EscalationRate, s.Escalations, s.Screened)
	fmt.Fprintf(w, "  server: 429s %g  504s %g  queue depth peak %g / cap %g  inflight peak %g\n",
		s.Rejected429, s.Timeouts504, s.QueueDepthPeak, s.QueueCapacity, s.InflightPeak)
	if s.AlertsFired > 0 || s.AlertsActive > 0 {
		fmt.Fprintf(w, "  server: alerts fired %g, still active %g\n", s.AlertsFired, s.AlertsActive)
	}
}
