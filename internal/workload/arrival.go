package workload

import (
	"fmt"
	"math"
	"time"

	"advhunter/internal/rng"
)

// Arrival-process kinds. The open-loop kinds (Poisson, Bursty, Diurnal)
// schedule request *offsets* ahead of time and fire them regardless of how
// the server responds — offered load is an input. The closed-loop kind
// (Closed) has no schedule at all: a fixed set of clients each issue their
// next request when the previous response arrives, so offered load is an
// output of server latency, the shape that exposes capacity knees.
const (
	Poisson = "poisson"
	Bursty  = "bursty"
	Diurnal = "diurnal"
	Closed  = "closed"
)

// Kinds lists the arrival-process kinds.
func Kinds() []string { return []string{Poisson, Bursty, Diurnal, Closed} }

// ArrivalSpec configures one arrival process. The zero value of every knob
// selects a sensible default; Kind and (for open-loop kinds) Rate are the
// only required fields. The spec is recorded in the trace header, so a
// replayed trace documents the shape that produced it.
type ArrivalSpec struct {
	// Kind is one of Poisson, Bursty, Diurnal, Closed.
	Kind string
	// Rate is the mean offered load in requests/second for the open-loop
	// kinds (the baseline rate for bursty and diurnal modulation).
	Rate float64

	// Burst is the bursty on-phase rate multiplier (default 8): during the
	// on window the instantaneous rate is Rate·Burst.
	Burst float64
	// OnFraction is the fraction of each Period spent in the on phase
	// (default 0.25). Off-phase rate is Rate·Idle.
	OnFraction float64
	// Idle is the bursty off-phase rate multiplier (default 0.1).
	Idle float64
	// Period is the bursty on/off cycle length (default 1s).
	Period time.Duration

	// Cycles is the number of full diurnal sinusoid cycles across the run
	// horizon (default 2) — a compressed multi-day rate curve.
	Cycles int
	// Depth is the diurnal modulation depth in [0, 1) (default 0.8):
	// rate(t) = Rate·(1 + Depth·sin(2π·Cycles·t/horizon)).
	Depth float64

	// Clients is the closed-loop concurrency (default 4).
	Clients int
	// Think is the closed-loop pause between receiving a response and
	// issuing the next request (default 0).
	Think time.Duration
}

// withDefaults fills the zero-valued knobs.
func (a ArrivalSpec) withDefaults() ArrivalSpec {
	if a.Burst <= 0 {
		a.Burst = 8
	}
	if a.OnFraction <= 0 || a.OnFraction >= 1 {
		a.OnFraction = 0.25
	}
	if a.Idle <= 0 {
		a.Idle = 0.1
	}
	if a.Period <= 0 {
		a.Period = time.Second
	}
	if a.Cycles <= 0 {
		a.Cycles = 2
	}
	if a.Depth <= 0 || a.Depth >= 1 {
		a.Depth = 0.8
	}
	if a.Clients <= 0 {
		a.Clients = 4
	}
	return a
}

// Validate rejects malformed specs: an unknown kind, or an open-loop kind
// without a positive rate.
func (a ArrivalSpec) Validate() error {
	switch a.Kind {
	case Poisson, Bursty, Diurnal:
		if a.Rate <= 0 {
			return fmt.Errorf("workload: arrival kind %q needs Rate > 0, got %g", a.Kind, a.Rate)
		}
		return nil
	case Closed:
		return nil
	default:
		return fmt.Errorf("workload: unknown arrival kind %q (have %v)", a.Kind, Kinds())
	}
}

// rateAt returns the instantaneous target rate (requests/second) at offset t
// of a run with the given horizon. Only meaningful for open-loop kinds.
func (a ArrivalSpec) rateAt(t, horizon float64) float64 {
	switch a.Kind {
	case Bursty:
		p := a.Period.Seconds()
		if math.Mod(t, p)/p < a.OnFraction {
			return a.Rate * a.Burst
		}
		return a.Rate * a.Idle
	case Diurnal:
		return a.Rate * (1 + a.Depth*math.Sin(2*math.Pi*float64(a.Cycles)*t/horizon))
	default: // Poisson
		return a.Rate
	}
}

// peakRate returns a majorant of rateAt over the whole horizon — the
// thinning envelope.
func (a ArrivalSpec) peakRate() float64 {
	switch a.Kind {
	case Bursty:
		return a.Rate * a.Burst
	case Diurnal:
		return a.Rate * (1 + a.Depth)
	default:
		return a.Rate
	}
}

// Schedule generates the deterministic request offsets of one open-loop run
// over the horizon, drawing from r (Lewis thinning over the kind's
// instantaneous rate curve: exponential gaps at the peak rate, acceptance
// with probability rate(t)/peak). Equal (spec, rng state, horizon) yield
// identical schedules. Closed-loop specs have no schedule and return nil.
func (a ArrivalSpec) Schedule(r *rng.Rand, horizon time.Duration) []time.Duration {
	a = a.withDefaults()
	if a.Kind == Closed {
		return nil
	}
	peak := a.peakRate()
	h := horizon.Seconds()
	var out []time.Duration
	for t := 0.0; ; {
		// Inverse-CDF exponential gap; Log1p(-u) is finite for u in [0, 1).
		t += -math.Log1p(-r.Float64()) / peak
		if t >= h {
			return out
		}
		if r.Float64()*peak <= a.rateAt(t, h) {
			out = append(out, time.Duration(t*float64(time.Second)))
		}
	}
}

// String renders the spec for report headers.
func (a ArrivalSpec) String() string {
	a = a.withDefaults()
	switch a.Kind {
	case Bursty:
		return fmt.Sprintf("bursty(rate=%g,burst=%g,on=%g,period=%s)", a.Rate, a.Burst, a.OnFraction, a.Period)
	case Diurnal:
		return fmt.Sprintf("diurnal(rate=%g,cycles=%d,depth=%g)", a.Rate, a.Cycles, a.Depth)
	case Closed:
		return fmt.Sprintf("closed(clients=%d,think=%s)", a.Clients, a.Think)
	default:
		return fmt.Sprintf("poisson(rate=%g)", a.Rate)
	}
}
