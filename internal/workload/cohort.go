package workload

import (
	"fmt"

	"advhunter/internal/data"
	"advhunter/internal/rng"
)

// Cohort is one client population with a distinct query mix: a weight (its
// share of the traffic) and a sample pool it draws queries from. The
// canonical cohorts are clean test images, FGSM and MIM adversarial
// examples, and a repeated-query cohort — the Blacklight-shaped traffic of
// an iterative black-box attacker, which re-issues a tiny hot set of inputs
// and is what exercises the serve tier's fingerprint-keyed truth cache.
type Cohort struct {
	// Name labels the cohort in traces and reports ("clean", "fgsm", …).
	Name string
	// Weight is the cohort's share of the traffic, relative to the other
	// cohorts' weights (any positive scale).
	Weight float64
	// Pool holds the samples the cohort draws from, uniformly at random.
	Pool []data.Sample
	// Hot, when > 0, restricts draws to the first Hot pool entries — the
	// repeated-query cohort: byte-identical inputs recur every few requests,
	// so the server's truth cache should absorb their simulation cost.
	Hot int
}

// draw picks one sample from the cohort's (possibly Hot-restricted) pool.
func (c Cohort) draw(r *rng.Rand) data.Sample {
	n := len(c.Pool)
	if c.Hot > 0 && c.Hot < n {
		n = c.Hot
	}
	return c.Pool[r.Intn(n)]
}

// Mix is a weighted set of cohorts.
type Mix []Cohort

// validate rejects empty mixes, non-positive weights, empty pools, and
// duplicate cohort names (reports key per-cohort stats by name).
func (m Mix) validate() error {
	if len(m) == 0 {
		return fmt.Errorf("workload: empty cohort mix")
	}
	seen := make(map[string]bool, len(m))
	for _, c := range m {
		if c.Name == "" {
			return fmt.Errorf("workload: cohort with empty name")
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: duplicate cohort %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight <= 0 {
			return fmt.Errorf("workload: cohort %q has non-positive weight %g", c.Name, c.Weight)
		}
		if len(c.Pool) == 0 {
			return fmt.Errorf("workload: cohort %q has an empty sample pool", c.Name)
		}
		if c.Hot < 0 {
			return fmt.Errorf("workload: cohort %q has negative Hot %d", c.Name, c.Hot)
		}
	}
	return nil
}

// weights returns the mix's weight vector for rng.Choice.
func (m Mix) weights() []float64 {
	w := make([]float64, len(m))
	for i, c := range m {
		w[i] = c.Weight
	}
	return w
}
