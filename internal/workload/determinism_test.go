package workload

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"advhunter/internal/serve"
)

// TestTraceRecordReplayRoundTrip: a recorded trace survives the disk round
// trip byte-identically — SaveTrace then TryLoadTrace yields a trace whose
// re-encoding equals the original's.
func TestTraceRecordReplayRoundTrip(t *testing.T) {
	tr, err := Generate(Config{
		Name: "roundtrip", Seed: 23,
		Arrival:  ArrivalSpec{Kind: Closed, Clients: 2},
		Mix:      Mix{{Name: "clean", Weight: 1, Pool: tinySamples(6, 0.3)}},
		Requests: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.gob")
	if err := SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	loaded, ok := TryLoadTrace(path)
	if !ok {
		t.Fatal("TryLoadTrace missed a fresh recording")
	}
	got, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("trace changed across the disk round trip")
	}
	if len(loaded.Events) != len(tr.Events) {
		t.Fatalf("loaded %d events, recorded %d", len(loaded.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if !bytes.Equal(loaded.Events[i].Body, tr.Events[i].Body) {
			t.Fatalf("event %d body diverged across the round trip", i)
		}
	}
}

// TestReplayConcurrencyDeterminism: replaying one trace serially and with 8
// concurrent clients yields byte-identical per-request responses — the
// serving layer's (input, index)-purity carried through the harness. The two
// replays share one server, which also pins that truth-cache warm-up never
// changes a response byte.
func TestReplayConcurrencyDeterminism(t *testing.T) {
	f := getFixture(t)
	ts := newServer(t, f, serve.Config{Workers: 2, MaxBatch: 4})
	tr, err := Generate(Config{
		Name: "replay", Seed: 29,
		Arrival:  ArrivalSpec{Kind: Closed, Clients: 8},
		Mix:      standardMix(f),
		Requests: 32,
	})
	if err != nil {
		t.Fatal(err)
	}

	serial, err := Run(context.Background(), ts.URL, tr, RunOptions{Clients: 1, KeepBodies: true})
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := Run(context.Background(), ts.URL, tr, RunOptions{Clients: 8, KeepBodies: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*RunResult{serial, concurrent} {
		if res.Report.Completed != res.Report.Requests {
			t.Fatalf("replay dropped requests: %v", res.Report.Status)
		}
	}
	for i := range serial.Outcomes {
		a, b := serial.Outcomes[i], concurrent.Outcomes[i]
		if !bytes.Equal(a.Body, b.Body) {
			t.Fatalf("request %d diverged under concurrency:\nserial:     %s\nconcurrent: %s", i, a.Body, b.Body)
		}
		if a.Adversarial != b.Adversarial || a.Tier != b.Tier {
			t.Fatalf("request %d verdict diverged: serial %+v, concurrent %+v", i, a, b)
		}
	}
}
