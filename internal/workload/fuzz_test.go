package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"advhunter/internal/persist"
)

// fuzzTrace builds a small valid trace for seeding the corpus.
func fuzzTrace(t testing.TB) *Trace {
	t.Helper()
	tr, err := Generate(Config{
		Name: "fuzz-seed", Seed: 31,
		Arrival: ArrivalSpec{Kind: Poisson, Rate: 200},
		Mix:     Mix{{Name: "clean", Weight: 1, Pool: tinySamples(3, 0.4)}},
		Horizon: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// FuzzTraceDecode: no input bytes may panic the decoder, and every
// successfully decoded trace must round-trip (re-encode, re-decode, and
// re-encode to the same bytes).
func FuzzTraceDecode(f *testing.F) {
	valid, err := fuzzTrace(f).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("not a gob envelope at all"))
	if stale, err := persist.Encode(TraceSchema+1, fuzzTrace(f)); err == nil {
		f.Add(stale)
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := DecodeTrace(raw)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		enc, err := tr.Encode()
		if err != nil {
			t.Fatalf("decoded trace failed to re-encode: %v", err)
		}
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		enc2, err := tr2.Encode()
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("decode/encode round trip is not a fixed point")
		}
	})
}

// TestTryLoadTraceMisses: corrupt bytes, stale schemas, structural damage,
// and absent files all read as cache misses, never as errors or panics.
func TestTryLoadTraceMisses(t *testing.T) {
	dir := t.TempDir()
	tr := fuzzTrace(t)

	write := func(name string, raw []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if _, ok := TryLoadTrace(filepath.Join(dir, "absent.gob")); ok {
		t.Fatal("absent file loaded")
	}

	valid, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := TryLoadTrace(write("truncated.gob", valid[:len(valid)-7])); ok {
		t.Fatal("truncated trace loaded")
	}
	if _, ok := TryLoadTrace(write("garbage.gob", []byte("witch's brew"))); ok {
		t.Fatal("garbage loaded")
	}

	stale, err := persist.Encode(TraceSchema+1, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := TryLoadTrace(write("stale.gob", stale)); ok {
		t.Fatal("stale-schema trace loaded")
	}

	// Structurally broken: an empty body slips past gob but not validate.
	broken := *tr
	broken.Events = append([]Event(nil), tr.Events...)
	broken.Events[0].Body = nil
	raw, err := broken.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := TryLoadTrace(write("broken.gob", raw)); ok {
		t.Fatal("structurally broken trace loaded")
	}

	// The valid recording still loads — the misses above are not a general
	// refusal.
	if _, ok := TryLoadTrace(write("valid.gob", valid)); !ok {
		t.Fatal("valid trace failed to load")
	}
}
