package workload

import (
	"bytes"
	"math"
	"testing"
	"time"

	"advhunter/internal/data"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
)

// tinySamples builds n distinct labelled 1×2×2 images — enough structure for
// trace-generation tests without touching a real dataset.
func tinySamples(n int, base float64) []data.Sample {
	out := make([]data.Sample, n)
	for i := range out {
		v := base + float64(i)/float64(n)
		out[i] = data.Sample{X: tensor.FromSlice([]float64{v, v / 2, v / 3, v / 4}, 1, 2, 2), Label: i % 2}
	}
	return out
}

func TestScheduleDeterministic(t *testing.T) {
	for _, kind := range []string{Poisson, Bursty, Diurnal} {
		spec := ArrivalSpec{Kind: kind, Rate: 200}
		a := spec.Schedule(rng.New(7), time.Second)
		b := spec.Schedule(rng.New(7), time.Second)
		if len(a) == 0 {
			t.Fatalf("%s: empty schedule", kind)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: schedules differ in length: %d vs %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: offset %d differs: %s vs %s", kind, i, a[i], b[i])
			}
		}
		c := spec.Schedule(rng.New(8), time.Second)
		same := len(a) == len(c)
		for i := 0; same && i < len(a); i++ {
			same = a[i] == c[i]
		}
		if same {
			t.Fatalf("%s: different seeds produced identical schedules", kind)
		}
	}
}

func TestScheduleOffsetsOrderedWithinHorizon(t *testing.T) {
	horizon := 2 * time.Second
	for _, kind := range []string{Poisson, Bursty, Diurnal} {
		offs := ArrivalSpec{Kind: kind, Rate: 300}.Schedule(rng.New(3), horizon)
		var prev time.Duration
		for i, o := range offs {
			if o < prev {
				t.Fatalf("%s: offset %d (%s) precedes offset %d (%s)", kind, i, o, i-1, prev)
			}
			if o >= horizon {
				t.Fatalf("%s: offset %d (%s) beyond horizon %s", kind, i, o, horizon)
			}
			prev = o
		}
	}
}

// TestPoissonRateMatchesTarget: the thinning construction must deliver the
// configured mean rate (a degenerate thinning for the flat Poisson curve).
func TestPoissonRateMatchesTarget(t *testing.T) {
	offs := ArrivalSpec{Kind: Poisson, Rate: 500}.Schedule(rng.New(11), 4*time.Second)
	got := float64(len(offs)) / 4
	if got < 400 || got > 600 {
		t.Fatalf("poisson at 500/s delivered %.0f/s", got)
	}
}

// TestBurstyConcentratesInOnPhase: most arrivals must land inside the on
// window (with Burst=8, Idle=0.1 and OnFraction=0.25 the on-phase carries
// ~96%% of the mass).
func TestBurstyConcentratesInOnPhase(t *testing.T) {
	spec := ArrivalSpec{Kind: Bursty, Rate: 100, Period: 500 * time.Millisecond}
	offs := spec.Schedule(rng.New(5), 4*time.Second)
	if len(offs) < 50 {
		t.Fatalf("bursty schedule too sparse: %d arrivals", len(offs))
	}
	on := 0
	period := 500 * time.Millisecond
	for _, o := range offs {
		if math.Mod(o.Seconds(), period.Seconds())/period.Seconds() < 0.25 {
			on++
		}
	}
	if frac := float64(on) / float64(len(offs)); frac < 0.75 {
		t.Fatalf("only %.2f of bursty arrivals in the on phase", frac)
	}
}

// TestDiurnalFollowsSinusoid: with one cycle the first half-horizon carries
// the positive half of the sinusoid and must receive more arrivals.
func TestDiurnalFollowsSinusoid(t *testing.T) {
	spec := ArrivalSpec{Kind: Diurnal, Rate: 200, Cycles: 1}
	horizon := 4 * time.Second
	offs := spec.Schedule(rng.New(9), horizon)
	first := 0
	for _, o := range offs {
		if o < horizon/2 {
			first++
		}
	}
	second := len(offs) - first
	if first <= second {
		t.Fatalf("diurnal cycle=1: first half %d arrivals, second half %d — rate curve not followed", first, second)
	}
}

func TestArrivalValidate(t *testing.T) {
	if err := (ArrivalSpec{Kind: "thundering-herd"}).Validate(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := (ArrivalSpec{Kind: Poisson}).Validate(); err == nil {
		t.Fatal("open-loop kind without a rate accepted")
	}
	if err := (ArrivalSpec{Kind: Closed}).Validate(); err != nil {
		t.Fatalf("closed-loop spec rejected: %v", err)
	}
}

// TestGenerateMixProportions: cohort draws must follow the configured
// weights, and Hot must restrict the repeated-query cohort to its hot set.
func TestGenerateMixProportions(t *testing.T) {
	mix := Mix{
		{Name: "clean", Weight: 3, Pool: tinySamples(8, 0.1)},
		{Name: "repeat", Weight: 1, Pool: tinySamples(8, 0.5), Hot: 2},
	}
	tr, err := Generate(Config{
		Name: "mix", Seed: 42,
		Arrival:  ArrivalSpec{Kind: Closed},
		Mix:      mix,
		Requests: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	bodies := map[string]map[string]bool{}
	for _, e := range tr.Events {
		counts[e.Cohort]++
		if bodies[e.Cohort] == nil {
			bodies[e.Cohort] = map[string]bool{}
		}
		// Distinct-input counting must ignore the per-event index field.
		cut := bytes.LastIndex(e.Body, []byte(`,"index"`))
		if cut < 0 {
			t.Fatalf("event body missing index field: %s", e.Body)
		}
		bodies[e.Cohort][string(e.Body[:cut])] = true
	}
	frac := float64(counts["clean"]) / 800
	if frac < 0.68 || frac > 0.82 {
		t.Fatalf("clean cohort drew %.2f of traffic, want ~0.75", frac)
	}
	if n := len(bodies["repeat"]); n > 2 {
		t.Fatalf("repeat cohort (Hot=2) drew %d distinct inputs", n)
	}
	if n := len(bodies["clean"]); n < 4 {
		t.Fatalf("clean cohort drew only %d distinct inputs from a pool of 8", n)
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	good := Mix{{Name: "clean", Weight: 1, Pool: tinySamples(2, 0.1)}}
	cases := []Config{
		{Arrival: ArrivalSpec{Kind: "nope"}, Mix: good, Requests: 1},
		{Arrival: ArrivalSpec{Kind: Closed}, Mix: good},               // no Requests
		{Arrival: ArrivalSpec{Kind: Closed}, Mix: Mix{}, Requests: 1}, // empty mix
		{Arrival: ArrivalSpec{Kind: Closed}, Requests: 1,
			Mix: Mix{{Name: "c", Weight: 0, Pool: tinySamples(1, 0)}}},
		{Arrival: ArrivalSpec{Kind: Closed}, Requests: 1,
			Mix: Mix{{Name: "c", Weight: 1, Pool: nil}}},
		{Arrival: ArrivalSpec{Kind: Closed}, Requests: 1,
			Mix: Mix{{Name: "c", Weight: 1, Pool: tinySamples(1, 0)}, {Name: "c", Weight: 1, Pool: tinySamples(1, 0)}}},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
}

func TestParseMetrics(t *testing.T) {
	text := []byte(`# HELP advhunter_requests_total HTTP requests by status code.
# TYPE advhunter_requests_total counter
advhunter_requests_total{code="200"} 40
advhunter_requests_total{code="429"} 3
advhunter_queue_depth 2
advhunter_queue_capacity 64
advhunter_tier_duration_seconds_bucket{tier="twin",le="+Inf"} 12
advhunter_tier_duration_seconds_sum{tier="twin"} 0.25
garbage line without a float tail
`)
	s := ParseMetrics(text)
	if got := s.Get(`advhunter_requests_total{code="200"}`); got != 40 {
		t.Fatalf("200 count = %g, want 40", got)
	}
	if got := s.Get("advhunter_queue_capacity"); got != 64 {
		t.Fatalf("queue capacity = %g, want 64", got)
	}
	if got := s.Get(`advhunter_tier_duration_seconds_sum{tier="twin"}`); got != 0.25 {
		t.Fatalf("histogram sum = %g, want 0.25", got)
	}
	if got := s.Get("missing_series"); got != 0 {
		t.Fatalf("missing series = %g, want 0", got)
	}

	before := Snapshot{`advhunter_requests_total{code="200"}`: 30, "advhunter_queue_depth": 5}
	d := s.DeltaFrom(before)
	if got := d.Get(`advhunter_requests_total{code="200"}`); got != 10 {
		t.Fatalf("delta = %g, want 10", got)
	}
	if got := d.Get("advhunter_queue_depth"); got != 0 {
		t.Fatalf("negative delta not clamped: %g", got)
	}
}

// TestQuantiles pins the nearest-rank arithmetic on a known distribution.
func TestQuantiles(t *testing.T) {
	lat := make([]time.Duration, 1000)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	q := quantilesOf(lat)
	if q.P50Ms != 500 {
		t.Fatalf("p50 = %g, want 500", q.P50Ms)
	}
	if q.P99Ms != 990 {
		t.Fatalf("p99 = %g, want 990", q.P99Ms)
	}
	if q.P999Ms != 999 {
		t.Fatalf("p999 = %g, want 999", q.P999Ms)
	}
	if q.MaxMs != 1000 {
		t.Fatalf("max = %g, want 1000", q.MaxMs)
	}
	if q.MeanMs != 500.5 {
		t.Fatalf("mean = %g, want 500.5", q.MeanMs)
	}
	if zero := quantilesOf(nil); zero != (Quantiles{}) {
		t.Fatalf("empty quantiles = %+v, want zeros", zero)
	}
}

// TestTraceEncodeStable: equal traces encode to byte-identical envelopes.
func TestTraceEncodeStable(t *testing.T) {
	cfg := Config{
		Name: "stable", Seed: 99,
		Arrival: ArrivalSpec{Kind: Poisson, Rate: 400},
		Mix:     Mix{{Name: "clean", Weight: 1, Pool: tinySamples(4, 0.2)}},
		Horizon: 500 * time.Millisecond,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("equal configs produced different trace bytes")
	}
}
