package workload

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Snapshot is one parsed /metrics scrape: full series key (metric name plus
// its rendered label block) → value. Histograms contribute their _bucket,
// _sum and _count series individually.
type Snapshot map[string]float64

// ParseMetrics parses Prometheus text exposition (the subset internal/obs
// renders: "name{labels} value" lines plus # comments) into a Snapshot.
// Unparsable lines are skipped — the collector degrades, it does not fail.
func ParseMetrics(text []byte) Snapshot {
	s := make(Snapshot)
	sc := bufio.NewScanner(bytes.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Label values may contain escaped spaces only inside quotes; the
		// exposition format puts the value after the LAST space.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			continue
		}
		s[line[:cut]] = v
	}
	return s
}

// Scrape fetches and parses one /metrics page.
func Scrape(client *http.Client, base string) (Snapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workload: GET %s/metrics: status %d", base, resp.StatusCode)
	}
	return ParseMetrics(body), nil
}

// Get returns the value of one series, 0 when absent.
func (s Snapshot) Get(series string) float64 { return s[series] }

// Sum totals every series of one metric family, whatever labels its series
// carry. Against a single server it equals Get on the bare name; against a
// cluster scrape, where each replica repeats the family under its own
// replica label, it aggregates the fleet.
func (s Snapshot) Sum(name string) float64 {
	var total float64
	prefix := name + "{"
	for k, v := range s {
		if k == name || strings.HasPrefix(k, prefix) {
			total += v
		}
	}
	return total
}

// SumMatch totals the series of one family whose label block carries every
// given name/value pair, ignoring any extra labels (a replica label, say).
// Pairs are matched textually against the rendered block, which is exact for
// the label values this package deals in (status codes, tier names).
func (s Snapshot) SumMatch(name string, pairs ...string) float64 {
	if len(pairs)%2 != 0 {
		panic("workload: SumMatch needs name/value pairs")
	}
	want := make([]string, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		want = append(want, pairs[i]+`="`+pairs[i+1]+`"`)
	}
	var total float64
	prefix := name + "{"
series:
	for k, v := range s {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		labels := k[len(prefix)-1:]
		for _, w := range want {
			if !strings.Contains(labels, w) {
				continue series
			}
		}
		total += v
	}
	return total
}

// DeltaFrom returns after−before per series, clamped at 0 (counters only
// move up; a series absent before counts from 0). Series present only in
// before are dropped.
func (s Snapshot) DeltaFrom(before Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for k, v := range s {
		dv := v - before[k]
		if dv < 0 {
			dv = 0
		}
		d[k] = dv
	}
	return d
}
