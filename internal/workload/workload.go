// Package workload is the synthetic traffic generator and closed-loop load
// harness for the serving stack: it turns a seed, an arrival process, and a
// weighted mix of client cohorts into a replayable request trace, drives a
// live `advhunter serve` instance with it (open-loop paced or closed-loop
// fixed-concurrency), and distils the run into a structured report —
// latency quantiles, throughput, backpressure and timeout rates, and the
// server-side deltas (truth-cache hits, tier escalations, queue depth)
// scraped from /metrics before, during, and after the run.
//
// Everything stochastic draws from internal/rng keyed by the configuration
// seed, so a generated trace is a pure function of its Config: record once,
// replay byte-identically, and get the same per-request verdict sequence
// whatever the client concurrency — the serving layer already guarantees
// verdicts are pure functions of (input, noise index), and the trace pins
// both. This package is the measurement substrate the scaling roadmap items
// are judged against (BENCH_7.json carries its serve-level numbers).
package workload

import (
	"encoding/json"
	"fmt"
	"time"

	"advhunter/internal/rng"
	"advhunter/internal/serve"
)

// Config describes one workload: who sends (Mix), when (Arrival), for how
// long, under which seed.
type Config struct {
	// Name labels the workload in traces and reports.
	Name string
	// Seed determines every stochastic choice (schedule, cohort picks,
	// sample draws). Equal Configs generate byte-identical traces.
	Seed uint64
	// Arrival is the arrival process.
	Arrival ArrivalSpec
	// Mix is the weighted cohort mix.
	Mix Mix
	// Horizon is the open-loop schedule length (default 2s). Ignored by
	// closed-loop workloads.
	Horizon time.Duration
	// Requests is the closed-loop request count (default 64·Clients is NOT
	// assumed — it must be set for closed-loop workloads). Ignored by
	// open-loop workloads, whose count follows from Rate and Horizon.
	Requests int
}

// Generate builds the deterministic request trace for one workload: the
// arrival process lays out the offsets, then each event independently picks
// a cohort (weighted) and a sample (uniform in the cohort's pool) from an
// rng stream forked by event position — so the i-th event's identity never
// depends on how many events precede it being inspected, only on (Seed, i).
// Request bodies are encoded once, here; replay posts the recorded bytes.
func Generate(cfg Config) (*Trace, error) {
	if err := cfg.Arrival.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Mix.validate(); err != nil {
		return nil, err
	}
	cfg.Arrival = cfg.Arrival.withDefaults()
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2 * time.Second
	}

	root := rng.New(cfg.Seed)
	schedRand := root.Split(1)
	eventRand := root.Split(2)

	var offsets []time.Duration
	n := cfg.Requests
	if cfg.Arrival.Kind != Closed {
		offsets = cfg.Arrival.Schedule(schedRand, cfg.Horizon)
		n = len(offsets)
		if n == 0 {
			return nil, fmt.Errorf("workload: %s over %s produced an empty schedule", cfg.Arrival, cfg.Horizon)
		}
	} else if n <= 0 {
		return nil, fmt.Errorf("workload: closed-loop workload needs Requests > 0")
	}

	weights := cfg.Mix.weights()
	events := make([]Event, n)
	for i := 0; i < n; i++ {
		er := eventRand.Fork(uint64(i))
		c := cfg.Mix[er.Choice(weights)]
		s := c.draw(er)
		body, err := json.Marshal(serve.NewRequest(s.X, uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("workload: encoding event %d: %w", i, err)
		}
		events[i] = Event{Cohort: c.Name, Index: uint64(i), Body: body}
		if offsets != nil {
			events[i].At = offsets[i]
		}
	}
	return &Trace{Name: cfg.Name, Seed: cfg.Seed, Arrival: cfg.Arrival, Events: events}, nil
}
