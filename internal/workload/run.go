package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"advhunter/internal/obs"
)

// RunOptions tune trace replay against a live server.
type RunOptions struct {
	// Clients overrides the concurrency: the closed-loop client count, and
	// the open-loop in-flight socket cap (default: the trace's own Clients
	// for closed loops, 64 for open loops). Replaying one trace with 1 and
	// with 8 clients yields identical per-request responses — the
	// determinism suite pins that.
	Clients int
	// Timeout is the per-request client budget (default 30s).
	Timeout time.Duration
	// Think overrides the closed-loop think time (negative: none; 0: the
	// trace's own).
	Think time.Duration
	// KeepBodies retains every response body in the outcomes — the
	// determinism tests compare them byte-for-byte; load sweeps leave this
	// off to keep memory flat.
	KeepBodies bool
	// SampleEvery is the cadence at which the collector scrapes /metrics
	// during the run to track queue-depth and in-flight gauges (0 selects
	// 25ms; negative disables sampling).
	SampleEvery time.Duration
}

func (o RunOptions) withDefaults(tr *Trace) RunOptions {
	if o.Clients <= 0 {
		if tr.Arrival.Kind == Closed {
			o.Clients = tr.Arrival.withDefaults().Clients
		} else {
			o.Clients = 64
		}
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Think == 0 {
		o.Think = tr.Arrival.Think
	} else if o.Think < 0 {
		o.Think = 0
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 25 * time.Millisecond
	}
	return o
}

// Outcome is one replayed request's result, indexed like the trace events.
type Outcome struct {
	// Status is the HTTP status, or 0 on a transport error.
	Status int `json:"status"`
	// Latency spans issue to body-fully-read.
	Latency time.Duration `json:"latency_ns"`
	// Adversarial and Tier echo the 200-response verdict fields.
	Adversarial bool   `json:"adversarial,omitempty"`
	Tier        string `json:"tier,omitempty"`
	// Err carries the transport error text (Status 0).
	Err string `json:"err,omitempty"`
	// Body is the full response body; retained only under KeepBodies.
	Body []byte `json:"-"`
}

// RunResult bundles one replay: the per-event outcomes, the distilled
// report, and the client-side metrics registry (rendered by WriteMetrics).
type RunResult struct {
	Trace    *Trace
	Outcomes []Outcome
	Report   *Report

	reg *obs.Registry
}

// WriteMetrics renders the client-side load metrics (request counts by
// status, per-cohort latency histograms and flag counters) in Prometheus
// text exposition format — the same registry machinery the server exports
// through, so the output passes obs.Lint by construction.
func (r *RunResult) WriteMetrics(w io.Writer) error {
	_, err := r.reg.WriteTo(w)
	return err
}

// loadMetrics is the client-side instrumentation of one run.
type loadMetrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec   // by status code ("err" for transport errors)
	seconds  *obs.HistogramVec // by cohort
	flagged  *obs.CounterVec   // by cohort
}

func newLoadMetrics() *loadMetrics {
	reg := obs.NewRegistry()
	return &loadMetrics{
		reg: reg,
		requests: reg.Counter("advhunter_loadgen_requests_total",
			"Load-generator requests by response status code.", "code"),
		seconds: reg.Histogram("advhunter_loadgen_request_duration_seconds",
			"Client-observed request latency by cohort.",
			[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}, "cohort"),
		flagged: reg.Counter("advhunter_loadgen_flagged_total",
			"Responses answered adversarial, by cohort.", "cohort"),
	}
}

// verdictBody is the slice of serve.Response the collector reads back.
type verdictBody struct {
	Adversarial bool   `json:"adversarial"`
	Tier        string `json:"tier"`
}

// Run replays a trace against the server at base (e.g. "http://127.0.0.1:8080"),
// open-loop paced by the recorded offsets or closed-loop over a fixed client
// pool, and returns the outcomes plus a report built from the client-side
// observations and the /metrics delta around the run.
func Run(ctx context.Context, base string, tr *Trace, opts RunOptions) (*RunResult, error) {
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if err := tr.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(tr)

	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = opts.Clients
	transport.MaxIdleConnsPerHost = opts.Clients
	client := &http.Client{Transport: transport, Timeout: opts.Timeout}
	defer transport.CloseIdleConnections()

	lm := newLoadMetrics()
	outcomes := make([]Outcome, len(tr.Events))
	issue := func(i int) {
		ev := &tr.Events[i]
		o := &outcomes[i]
		start := time.Now()
		resp, err := client.Post(base+"/detect", "application/json", bytes.NewReader(ev.Body))
		if err != nil {
			o.Latency = time.Since(start)
			o.Err = err.Error()
			lm.requests.With("err").Inc()
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		o.Latency = time.Since(start)
		if err != nil {
			o.Err = err.Error()
			lm.requests.With("err").Inc()
			return
		}
		o.Status = resp.StatusCode
		lm.requests.With(fmt.Sprintf("%d", resp.StatusCode)).Inc()
		lm.seconds.With(ev.Cohort).Observe(o.Latency.Seconds())
		if resp.StatusCode == http.StatusOK {
			var v verdictBody
			if json.Unmarshal(body, &v) == nil {
				o.Adversarial = v.Adversarial
				o.Tier = v.Tier
				if v.Adversarial {
					lm.flagged.With(ev.Cohort).Inc()
				}
			}
		}
		if opts.KeepBodies {
			o.Body = body
		}
	}

	before, err := Scrape(client, base)
	if err != nil {
		return nil, fmt.Errorf("workload: pre-run scrape: %w", err)
	}
	sampler := startSampler(client, base, opts.SampleEvery)

	start := time.Now()
	if tr.Arrival.Kind == Closed {
		runClosed(ctx, tr, opts, issue)
	} else {
		runOpen(ctx, tr, opts, issue)
	}
	wall := time.Since(start)

	samples := sampler.stop()
	after, err := Scrape(client, base)
	if err != nil {
		return nil, fmt.Errorf("workload: post-run scrape: %w", err)
	}

	res := &RunResult{Trace: tr, Outcomes: outcomes, reg: lm.reg}
	res.Report = buildReport(tr, outcomes, before, after, samples, wall)
	return res, nil
}

// runClosed drives the fixed-concurrency loop: each client repeatedly claims
// the next unissued event, posts it, waits for the response, thinks, and
// goes again — offered load follows server latency.
func runClosed(ctx context.Context, tr *Trace, opts RunOptions, issue func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(tr.Events) || ctx.Err() != nil {
					return
				}
				issue(i)
				if opts.Think > 0 {
					select {
					case <-time.After(opts.Think):
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// runOpen fires each event at its recorded offset regardless of responses
// (offered load is an input). Concurrency is bounded only by the socket cap:
// a saturated cap delays dispatch, which shows up as latency — the honest
// open-loop failure mode, not silent load shedding.
func runOpen(ctx context.Context, tr *Trace, opts RunOptions, issue func(int)) {
	sem := make(chan struct{}, opts.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range tr.Events {
		if d := tr.Events[i].At - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			issue(i)
		}(i)
	}
	wg.Wait()
}

// gaugeSamples aggregates the mid-run gauge scrapes.
type gaugeSamples struct {
	n                         int
	queuePeak, queueSum       float64
	inflightPeak, inflightSum float64
}

type sampler struct {
	stopc chan struct{}
	donec chan *gaugeSamples
}

// startSampler scrapes /metrics every interval, tracking queue-depth and
// in-flight gauges. A nil sampler (interval < 0) is a no-op.
func startSampler(client *http.Client, base string, every time.Duration) *sampler {
	if every < 0 {
		return nil
	}
	s := &sampler{stopc: make(chan struct{}), donec: make(chan *gaugeSamples, 1)}
	go func() {
		agg := &gaugeSamples{}
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-s.stopc:
				s.donec <- agg
				return
			case <-ticker.C:
				snap, err := Scrape(client, base)
				if err != nil {
					continue
				}
				// Summed per family: a cluster scrape carries one queue-depth
				// series per replica and the sampler wants fleet occupancy.
				q := snap.Sum("advhunter_queue_depth")
				in := snap.Sum("advhunter_inflight_requests")
				agg.n++
				agg.queueSum += q
				agg.inflightSum += in
				if q > agg.queuePeak {
					agg.queuePeak = q
				}
				if in > agg.inflightPeak {
					agg.inflightPeak = in
				}
			}
		}
	}()
	return s
}

func (s *sampler) stop() *gaugeSamples {
	if s == nil {
		return &gaugeSamples{}
	}
	close(s.stopc)
	return <-s.donec
}
