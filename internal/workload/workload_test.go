package workload

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"advhunter/internal/attack"
	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/engine"
	"advhunter/internal/models"
	"advhunter/internal/obs"
	"advhunter/internal/serve"
	"advhunter/internal/train"
	"advhunter/internal/twin"
	"advhunter/internal/uarch/hpc"
)

// fixture mirrors the serve package's: a trained classifier, a fitted
// detector, clean plus FGSM and MIM adversarial pools, and the analytical
// twin stack — everything a realistic cohort mix needs. Built once per
// package run (training dominates).
type fixture struct {
	ds      *data.Dataset
	meas    *core.Measurer
	det     *detect.Fitted
	clean   []data.Sample
	fgsm    []data.Sample
	mim     []data.Sample
	twin    *twin.Measurer
	twinDet *detect.Fitted
}

var (
	fixOnce sync.Once
	fix     *fixture
)

const fixTarget = 6

func getFixture(t testing.TB) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		ds := data.MustSynth("fashionmnist", 77, 40, 20)
		m := models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 9)
		cfg := train.DefaultConfig()
		cfg.Epochs = 30
		cfg.LearningRate = 0.02
		cfg.TargetAccuracy = 0.999
		if res := train.SGD(m, ds, cfg); res.TestAccuracy < 0.85 {
			return
		}
		meas := core.NewMeasurer(engine.NewDefault(m), 1234)
		tpl := core.BuildTemplate(meas.Clone(), ds.Train, ds.Classes, hpc.CoreEvents())
		det, err := detect.Fit("gmm", tpl, detect.DefaultConfig())
		if err != nil {
			return
		}
		var sources []data.Sample
		for _, s := range ds.Test {
			if s.Label != fixTarget && len(sources) < 60 {
				sources = append(sources, s)
			}
		}
		atkF := attack.NewTargetedFGSM(0.5, fixTarget)
		fgsm := attack.Successful(atkF, attack.Craft(m, atkF, sources))
		atkM := attack.NewTargetedMIM(0.5, fixTarget)
		mim := attack.Successful(atkM, attack.Craft(m, atkM, sources))
		if len(fgsm) < 10 || len(mim) < 10 {
			return
		}
		tab, err := twin.Profile(engine.NewDefault(m), twin.Probes(ds.Train, 1, 0.1, 11), 12, 0)
		if err != nil {
			return
		}
		tm, err := twin.FromMeasurer(meas, tab)
		if err != nil {
			return
		}
		twinTpl := core.NewTemplate(ds.Classes, hpc.CoreEvents())
		for _, mm := range twin.MeasureSet(tm.Clone(), ds.Train, 0) {
			twinTpl.Add(mm.Pred, mm.Counts, mm.Conf)
		}
		twinDet, err := detect.Fit("gmm", twinTpl, detect.DefaultConfig())
		if err != nil {
			return
		}
		fix = &fixture{ds: ds, meas: meas, det: det, clean: ds.Test,
			fgsm: fgsm, mim: mim, twin: tm, twinDet: twinDet}
	})
	if fix == nil {
		t.Fatal("workload fixture failed to build (training or attack collapsed)")
	}
	return fix
}

// newServer boots an httptest serve instance for the tier (with the twin
// stack plugged in when the tier needs it) and tears it down on cleanup.
func newServer(t *testing.T, f *fixture, cfg serve.Config) *httptest.Server {
	t.Helper()
	if cfg.Tier == serve.TierTwin || cfg.Tier == serve.TierAuto {
		cfg.Twin = f.twin.Clone()
		cfg.TwinDetector = f.twinDet
	}
	s := serve.New(f.meas.Clone(), f.det, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return ts
}

// standardMix is the canonical four-cohort traffic: clean queries, FGSM and
// MIM adversarial examples, and the repeated-query cohort hammering a hot
// set of two clean inputs (the truth cache's workload).
func standardMix(f *fixture) Mix {
	return Mix{
		{Name: "clean", Weight: 5, Pool: f.clean},
		{Name: "fgsm", Weight: 3, Pool: f.fgsm},
		{Name: "mim", Weight: 1, Pool: f.mim},
		{Name: "repeat", Weight: 3, Pool: f.clean, Hot: 2},
	}
}

// TestWorkloadEndToEndTiers drives each serving tier with the standard
// cohort mix closed-loop and checks the report's core claims: every request
// completes (no backpressure at this load), the FGSM cohort is flagged well
// above the clean cohort, and the repeated-query cohort lands in the tier's
// truth cache.
func TestWorkloadEndToEndTiers(t *testing.T) {
	f := getFixture(t)
	for _, tier := range []string{serve.TierExact, serve.TierTwin, serve.TierAuto} {
		tier := tier
		t.Run(tier, func(t *testing.T) {
			ts := newServer(t, f, serve.Config{Workers: 2, Tier: tier})
			tr, err := Generate(Config{
				Name: "e2e-" + tier, Seed: 7,
				Arrival:  ArrivalSpec{Kind: Closed, Clients: 4},
				Mix:      standardMix(f),
				Requests: 60,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), ts.URL, tr, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Report
			var buf bytes.Buffer
			rep.Render(&buf)
			t.Logf("\n%s", buf.String())

			if rep.Completed != rep.Requests {
				t.Fatalf("completed %d of %d (status %v)", rep.Completed, rep.Requests, rep.Status)
			}
			if rep.Rate429 != 0 {
				t.Fatalf("429s at modest closed-loop load: %v", rep.Status)
			}
			// Exact-tier responses carry no tier field; auto responses are
			// labelled by whichever tier decided them (mostly the twin).
			switch tier {
			case serve.TierExact:
				if rep.Tier != "" {
					t.Fatalf("exact serving reported tier %q", rep.Tier)
				}
			case serve.TierTwin:
				if rep.Tier != serve.TierTwin {
					t.Fatalf("dominant tier %q, want %q", rep.Tier, serve.TierTwin)
				}
			case serve.TierAuto:
				if rep.Tier == "" {
					t.Fatal("auto serving reported no tier labels")
				}
			}
			clean, fgsm := rep.Cohorts["clean"], rep.Cohorts["fgsm"]
			if clean == nil || fgsm == nil || clean.OK == 0 || fgsm.OK == 0 {
				t.Fatalf("cohorts missing from report: %+v", rep.Cohorts)
			}
			if fgsm.FlagRate <= clean.FlagRate {
				t.Fatalf("fgsm flag rate %.2f must exceed clean %.2f", fgsm.FlagRate, clean.FlagRate)
			}
			if tier == serve.TierExact && fgsm.FlagRate < 0.5 {
				t.Fatalf("exact-tier fgsm flag rate %.2f too weak", fgsm.FlagRate)
			}
			if mim := rep.Cohorts["mim"]; mim == nil || mim.Requests == 0 {
				t.Fatal("mim cohort absent from the mix")
			}
			// The repeated-query cohort must land in the tier's truth cache
			// (the twin tier uses its own cache; auto runs both).
			hits := rep.Server.TruthHits
			if tier == serve.TierTwin {
				hits = rep.Server.TwinTruthHits
			}
			if hits == 0 {
				t.Fatalf("repeated-query cohort produced no truth-cache hits: %+v", rep.Server)
			}
			if rep.ThroughputRPS <= 0 || rep.Latency.P50Ms <= 0 || rep.Latency.P99Ms < rep.Latency.P50Ms {
				t.Fatalf("degenerate latency/throughput stats: %+v %+v", rep.Latency, rep.ThroughputRPS)
			}
			if tier == serve.TierAuto && rep.Server.Screened == 0 {
				t.Fatalf("auto tier screened nothing: %+v", rep.Server)
			}
		})
	}
}

// TestWorkloadArrivalShapes replays each open-loop arrival process against
// one exact-tier server: every scheduled request must complete without
// backpressure when capacity comfortably exceeds offered load.
func TestWorkloadArrivalShapes(t *testing.T) {
	f := getFixture(t)
	ts := newServer(t, f, serve.Config{Workers: 2, QueueSize: 256})
	specs := []ArrivalSpec{
		{Kind: Poisson, Rate: 60},
		{Kind: Bursty, Rate: 15, Period: 250 * time.Millisecond},
		{Kind: Diurnal, Rate: 60, Cycles: 1},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Kind, func(t *testing.T) {
			tr, err := Generate(Config{
				Name: "shape-" + spec.Kind, Seed: 11,
				Arrival: spec,
				Mix:     standardMix(f),
				Horizon: 500 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), ts.URL, tr, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Report
			if rep.Completed != rep.Requests || rep.Rate429 != 0 || rep.ErrorRate != 0 {
				t.Fatalf("%s: completed %d/%d, status %v", spec.Kind, rep.Completed, rep.Requests, rep.Status)
			}
			if rep.Shape != spec.Kind {
				t.Fatalf("report shape %q, want %q", rep.Shape, spec.Kind)
			}
		})
	}
}

// TestWorkloadBackpressure: 429s appear only once offered load exceeds what
// the queue can hold — open-loop traffic offered far above the single
// worker's service rate piles onto a tiny queue and sheds, and the
// server-side counter delta agrees with the client view. (Open-loop, not
// closed-loop: recorded offsets fire regardless of responses, so the
// overload is real even when a starved CI host serialises goroutines —
// modest rates staying 429-free is TestWorkloadArrivalShapes' half of the
// claim.)
func TestWorkloadBackpressure(t *testing.T) {
	f := getFixture(t)
	ts := newServer(t, f, serve.Config{QueueSize: 1, Workers: 1, MaxBatch: 1})
	tr, err := Generate(Config{
		Name: "overload", Seed: 13,
		Arrival: ArrivalSpec{Kind: Poisson, Rate: 2000},
		Mix:     Mix{{Name: "clean", Weight: 1, Pool: f.clean}},
		Horizon: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), ts.URL, tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Rate429 == 0 {
		t.Fatalf("2000 req/s against a queue of 1 shed nothing: %v", rep.Status)
	}
	if rep.Completed == 0 {
		t.Fatalf("overload completed nothing: %v", rep.Status)
	}
	if got, want := rep.Server.Rejected429, float64(rep.Status["429"]); got != want {
		t.Fatalf("server counted %g rejections, clients saw %g", got, want)
	}
}

// TestWorkloadMaxInflight: the connection-level cap sheds load even when the
// queue never fills — backpressure independent of QueueSize, observed end to
// end through the harness.
func TestWorkloadMaxInflight(t *testing.T) {
	f := getFixture(t)
	ts := newServer(t, f, serve.Config{QueueSize: 256, Workers: 1, MaxBatch: 1, MaxInflight: 1})
	tr, err := Generate(Config{
		Name: "inflight-cap", Seed: 17,
		Arrival: ArrivalSpec{Kind: Poisson, Rate: 2000},
		Mix:     Mix{{Name: "clean", Weight: 1, Pool: f.clean}},
		Horizon: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), ts.URL, tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Rate429 == 0 {
		t.Fatal("MaxInflight=1 under 2000 req/s shed nothing — the cap is not enforced")
	}
	// The queue (capacity 256) never saw enough waiting jobs to overflow:
	// every rejection is the in-flight cap's.
	if rep.Server.QueueDepthPeak > 2 {
		t.Fatalf("queue depth peaked at %g — rejections are not the in-flight cap's", rep.Server.QueueDepthPeak)
	}
}

// TestWorkloadClientMetricsLint: the harness's own exposition must hold the
// same format line the server's does.
func TestWorkloadClientMetricsLint(t *testing.T) {
	f := getFixture(t)
	ts := newServer(t, f, serve.Config{Workers: 1})
	tr, err := Generate(Config{
		Name: "lint", Seed: 19,
		Arrival:  ArrivalSpec{Kind: Closed, Clients: 2},
		Mix:      standardMix(f),
		Requests: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), ts.URL, tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `advhunter_loadgen_requests_total{code="200"} 12`) {
		t.Fatalf("exposition missing the 200 counter:\n%s", text)
	}
	if !strings.Contains(text, "advhunter_loadgen_request_duration_seconds_bucket") {
		t.Fatalf("exposition missing the latency histogram:\n%s", text)
	}
	if err := obs.Lint(buf.Bytes()); err != nil {
		t.Fatalf("loadgen exposition fails lint: %v", err)
	}
}
