package workload

import (
	"fmt"
	"os"
	"time"

	"advhunter/internal/persist"
)

// TraceSchema versions the recorded-trace wire format. Decoding a trace
// written under a different schema (or corrupt bytes) fails, which file
// callers uniformly treat as a miss — the same envelope protocol every other
// artifact class in the repository uses (internal/persist).
const TraceSchema = 1

// Event is one recorded request: when to fire it, which cohort drew it, the
// noise index it carries, and the exact JSON body to POST to /detect. The
// body is recorded byte-for-byte (not re-encoded at replay time), so a
// replayed trace reproduces the original request sequence exactly — the
// property the determinism suite pins.
type Event struct {
	// At is the offset from run start at which an open-loop replay fires
	// this event. Closed-loop traces carry zero offsets: events are issued
	// in order, as fast as the client pool allows.
	At time.Duration
	// Cohort names the cohort that drew this event's sample.
	Cohort string
	// Index is the measurement-noise index sent with the request (the
	// event's position in the trace), making every replayed verdict a pure
	// function of the trace.
	Index uint64
	// Body is the exact request body bytes.
	Body []byte
}

// Trace is one recorded request sequence plus the generator configuration
// that produced it.
type Trace struct {
	// Name labels the trace in reports.
	Name string
	// Seed is the generator seed the trace was recorded under.
	Seed uint64
	// Arrival is the arrival process that scheduled the events.
	Arrival ArrivalSpec
	// Events are the recorded requests, in issue order.
	Events []Event
}

// Encode renders the trace as schema-tagged envelope bytes. Equal traces
// encode to identical bytes (record twice under one seed ⇒ byte-identical
// recordings).
func (t *Trace) Encode() ([]byte, error) {
	return persist.Encode(TraceSchema, t)
}

// DecodeTrace parses envelope bytes produced by Encode. Corrupt bytes and
// foreign schemas return an error; no input may panic (FuzzTraceDecode holds
// that line).
func DecodeTrace(raw []byte) (*Trace, error) {
	var t Trace
	if err := persist.Decode(raw, TraceSchema, &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// SaveTrace atomically writes the trace to path (directories created).
func SaveTrace(path string, t *Trace) error {
	return persist.Save(path, TraceSchema, t)
}

// TryLoadTrace loads a recorded trace, with miss-not-error semantics:
// a missing, corrupt, or stale-schema file returns (nil, false).
func TryLoadTrace(path string) (*Trace, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	t, err := DecodeTrace(raw)
	if err != nil || t.validate() != nil {
		return nil, false
	}
	return t, true
}

// validate rejects structurally broken traces (whatever their origin): an
// unknown arrival kind, out-of-order open-loop offsets, or an empty body.
func (t *Trace) validate() error {
	if err := t.Arrival.Validate(); err != nil {
		return err
	}
	var prev time.Duration
	for i := range t.Events {
		e := &t.Events[i]
		if e.At < prev {
			return fmt.Errorf("workload: trace event %d fires at %s, before event %d at %s", i, e.At, i-1, prev)
		}
		prev = e.At
		if len(e.Body) == 0 {
			return fmt.Errorf("workload: trace event %d has an empty body", i)
		}
	}
	return nil
}
