package workload

import (
	"encoding/json"
	"math"
	"testing"
)

// TestBuildReportEmptyOutcomes: a run that completed nothing — a saturated
// sweep point — must produce finite zero rates and encode cleanly as JSON,
// not NaN.
func TestBuildReportEmptyOutcomes(t *testing.T) {
	tr := &Trace{Name: "empty", Seed: 1, Arrival: ArrivalSpec{Kind: Poisson, Rate: 1}}
	rep := buildReport(tr, nil, Snapshot{}, Snapshot{}, &gaugeSamples{}, 0)
	for name, v := range map[string]float64{
		"rate_429":       rep.Rate429,
		"timeout_rate":   rep.TimeoutRate,
		"error_rate":     rep.ErrorRate,
		"throughput_rps": rep.ThroughputRPS,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v != 0 {
			t.Errorf("%s = %g, want 0", name, v)
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("empty report does not marshal: %v", err)
	}
}

// TestSnapshotSum: family sums aggregate across label variants — the shape a
// cluster scrape produces, one series per replica — while staying equal to
// Get for a bare single-server series.
func TestSnapshotSum(t *testing.T) {
	s := Snapshot{
		"advhunter_queue_depth":                            3,
		`advhunter_truth_cache_hits_total{replica="0"}`:    10,
		`advhunter_truth_cache_hits_total{replica="1"}`:    4,
		`advhunter_requests_total{code="429",replica="0"}`: 2,
		`advhunter_requests_total{code="429",replica="1"}`: 5,
		`advhunter_requests_total{code="200",replica="1"}`: 90,
		"advhunter_truth_cache_hits_total_other_family":    99, // prefix but not this family
		`advhunter_queue_depth_peak{replica="0"}`:          7,  // likewise
	}
	if got := s.Sum("advhunter_queue_depth"); got != 3 {
		t.Fatalf("bare-series sum = %g, want 3", got)
	}
	if got := s.Sum("advhunter_truth_cache_hits_total"); got != 14 {
		t.Fatalf("replica sum = %g, want 14", got)
	}
	if got := s.SumMatch("advhunter_requests_total", "code", "429"); got != 7 {
		t.Fatalf("SumMatch 429 = %g, want 7", got)
	}
	if got := s.SumMatch("advhunter_requests_total", "code", "200"); got != 90 {
		t.Fatalf("SumMatch 200 = %g, want 90", got)
	}
	if got := s.SumMatch("advhunter_requests_total", "code", "404"); got != 0 {
		t.Fatalf("SumMatch absent code = %g, want 0", got)
	}
}
