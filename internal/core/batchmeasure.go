package core

import (
	"time"

	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// batchScratch holds the reusable buffers of MeasureBatchCached so a
// steady-state batched measurement allocates nothing. Like the measurer's
// other scratch state it is single-goroutine; Clone gives replicas fresh
// (lazily grown) buffers.
type batchScratch struct {
	fps    []uint64
	src    []int // per sample: -1 = cache hit (truth in tr), else miss slot
	tr     []Truth
	mtr    []Truth
	mxs    []*tensor.Tensor
	midx   []int
	preds  []int
	confs  []float64
	counts []hpc.Counts
}

func (b *batchScratch) grow(n int) {
	if cap(b.fps) < n {
		b.fps = make([]uint64, n)
		b.src = make([]int, n)
		b.tr = make([]Truth, n)
		b.mtr = make([]Truth, n)
		b.mxs = make([]*tensor.Tensor, n)
		b.midx = make([]int, n)
		b.preds = make([]int, n)
		b.confs = make([]float64, n)
		b.counts = make([]hpc.Counts, n)
	}
	b.fps = b.fps[:n]
	b.src = b.src[:n]
	b.tr = b.tr[:n]
	b.mtr = b.mtr[:n]
	b.mxs = b.mxs[:n]
	b.midx = b.midx[:n]
	b.preds = b.preds[:n]
	b.confs = b.confs[:n]
	b.counts = b.counts[:n]
}

// MeasureBatchCached measures a micro-batch in one fused pass: cache misses
// are gathered (deduplicated by fingerprint, so a repeated input in one batch
// pays the inference once), run through the engine's batched forward path,
// inserted into the cache, and every sample's noisy reading is then drawn
// from its own index stream exactly as MeasureAtCached draws it. out[i] is
// bit-identical to MeasureAtCached(cache, idxs[i], xs[i]) processed in order
// — the truth is a pure function of the input and the noise is keyed by
// idxs[i] alone. hits, when non-nil, records per sample whether the truth
// was served from the cache (an in-batch duplicate counts as a hit, exactly
// as sequential in-order processing would report it). The Observe hook fires
// once per sample with an equal share of the batch's wall-clock duration, so
// duration sums stay comparable with the per-sample path. Like MeasureAt,
// the method is single-goroutine; concurrent serving uses replicas.
func (m *Measurer) MeasureBatchCached(cache *TruthCache, idxs []uint64, xs []*tensor.Tensor, out []Measurement, hits []bool) {
	n := len(xs)
	if len(idxs) < n || len(out) < n || (hits != nil && len(hits) < n) {
		panic("core: MeasureBatchCached slices shorter than batch")
	}
	if n == 0 {
		return
	}
	var start time.Time
	if m.Observe != nil {
		start = time.Now()
	}
	b := &m.batch
	b.grow(n)

	nm := 0 // unique cache misses
	if cache == nil {
		for i, x := range xs {
			b.src[i] = i
			b.mxs[i] = x
			b.midx[i] = i
			if hits != nil {
				hits[i] = false
			}
		}
		nm = n
	} else {
		for i, x := range xs {
			fp := Fingerprint(x)
			b.fps[i] = fp
			if t, ok := cache.Get(fp); ok {
				b.tr[i] = t
				b.src[i] = -1
				if hits != nil {
					hits[i] = true
				}
				continue
			}
			dup := -1
			for j := 0; j < nm; j++ {
				if b.fps[b.midx[j]] == fp {
					dup = j
					break
				}
			}
			if dup >= 0 {
				// Sequential processing would have found this fingerprint in
				// the cache by now, so it reports as a hit.
				b.src[i] = dup
				if hits != nil {
					hits[i] = true
				}
				continue
			}
			b.src[i] = nm
			b.midx[nm] = i
			b.mxs[nm] = x
			if hits != nil {
				hits[i] = false
			}
			nm++
		}
	}

	if nm > 0 {
		m.Engine.InferConfBatch(b.mxs[:nm], b.preds, b.confs, b.counts)
		for j := 0; j < nm; j++ {
			t := Truth{Pred: b.preds[j], Conf: b.confs[j], Counts: b.counts[j]}
			b.mtr[j] = t
			if cache != nil {
				cache.Put(b.fps[b.midx[j]], t)
			}
			b.mxs[j] = nil // don't pin request tensors across batches
		}
	}

	var share time.Duration
	if m.Observe != nil {
		share = time.Since(start) / time.Duration(n)
	}
	for i := range xs {
		t := b.tr[i]
		if b.src[i] >= 0 {
			t = b.mtr[b.src[i]]
		}
		out[i] = Measurement{
			Pred:      t.Pred,
			TrueLabel: -1,
			Counts:    m.noiseAt(idxs[i]).MeasureMean(t.Counts, m.R),
			Conf:      t.Conf,
		}
		if m.Observe != nil {
			m.Observe(share, out[i])
		}
	}
}
