package core

import (
	"bytes"
	"encoding/gob"
	"sync"
	"testing"

	"advhunter/internal/data"
	"advhunter/internal/engine"
	"advhunter/internal/models"
)

// The determinism fixture deliberately skips training: an untrained model
// still exercises the full measurement path (inference, counters, noise) and
// builds in milliseconds.
var (
	detOnce    sync.Once
	detSamples []data.Sample
	detModel   *models.Model
)

func detFixture() ([]data.Sample, *models.Model) {
	detOnce.Do(func() {
		ds := data.MustSynth("fashionmnist", 555, 6, 0)
		detSamples = ds.Train[:40]
		detModel = models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 5)
	})
	return detSamples, detModel
}

func measureWith(workers int) []Measurement {
	samples, m := detFixture()
	meas := NewMeasurer(engine.NewDefault(m.Clone()), 42)
	meas.Workers = workers
	return MeasureSet(meas, samples)
}

func encode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMeasureSetDeterministicAcrossWorkers is the tentpole regression test:
// the measured set must be byte-identical whether it was produced serially or
// by a pool of workers, and across repeated parallel runs.
func TestMeasureSetDeterministicAcrossWorkers(t *testing.T) {
	serial := encode(t, measureWith(1))
	for _, w := range []int{2, 8} {
		if !bytes.Equal(serial, encode(t, measureWith(w))) {
			t.Fatalf("Workers=%d produced different bytes than Workers=1", w)
		}
	}
	if !bytes.Equal(encode(t, measureWith(8)), encode(t, measureWith(8))) {
		t.Fatal("two 8-worker runs disagree")
	}
}

// TestMeasureAtIndependentOfOrder checks per-sample noise re-keying directly:
// measuring sample i must give the same counts whether or not other samples
// were measured first.
func TestMeasureAtIndependentOfOrder(t *testing.T) {
	samples, m := detFixture()
	fresh := func() *Measurer { return NewMeasurer(engine.NewDefault(m.Clone()), 42) }

	a := fresh()
	direct := a.MeasureAt(3, samples[3].X)

	b := fresh()
	for i := 0; i <= 3; i++ { // sequential scan reaching index 3
		got := b.Measure(samples[i].X)
		if i == 3 && got.Counts != direct.Counts {
			t.Fatal("sequential Measure at index 3 differs from direct MeasureAt(3)")
		}
	}
}

// TestEngineCloneIdenticalCounts checks the replica contract: a cloned engine
// must report identical predictions and identical true counter values.
func TestEngineCloneIdenticalCounts(t *testing.T) {
	samples, m := detFixture()
	e := engine.NewDefault(m.Clone())
	c := e.Clone()
	for _, s := range samples[:8] {
		p1, t1 := e.Infer(s.X)
		p2, t2 := c.Infer(s.X)
		if p1 != p2 || t1 != t2 {
			t.Fatal("clone diverged from original engine")
		}
	}
}

// BenchmarkMeasureSet reports measurement throughput per worker count; the
// parallel speedup claim in the PR is checked against these sub-benchmarks.
func BenchmarkMeasureSet(b *testing.B) {
	samples, m := detFixture()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4", 8: "workers=8"}[w], func(b *testing.B) {
			meas := NewMeasurer(engine.NewDefault(m.Clone()), 42)
			meas.Workers = w
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MeasureSet(meas, samples)
			}
		})
	}
}
