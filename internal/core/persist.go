package core

import (
	"fmt"

	"advhunter/internal/gmm"
	"advhunter/internal/persist"
	"advhunter/internal/uarch/hpc"
)

// DetectorSchema versions the fitted-detector file format so "fit once,
// serve many" survives format evolution: a serving process pointed at a file
// written under an older schema (or a corrupted one) gets a load failure,
// which every caller treats as a miss — refit and overwrite — never as a
// fatal error and never as silently misread parameters.
//
// History:
//
//	1 — per-(category, event) univariate GMMs + 3σ thresholds (Detector),
//	    and the diagonal multivariate fusion variant (FusionDetector).
const DetectorSchema = 1

// detectorCatDTO is one category of a serialised Detector. Unmodelled
// categories (too few template rows) carry Modelled == false instead of the
// in-memory nil model pointers, which gob cannot encode.
type detectorCatDTO struct {
	Modelled   bool
	Models     []gmm.Model // by value; one per event, empty when !Modelled
	Thresholds []float64
}

// detectorDTO is the serialisable form of Detector. The fit-time config is
// deliberately not persisted: a loaded detector is a frozen online-phase
// artifact (models + thresholds); refitting requires the template anyway.
type detectorDTO struct {
	Events []hpc.Event
	Cats   []detectorCatDTO
}

// fusionCatDTO is one category of a serialised FusionDetector, including the
// unexported per-category standardisation that scoring needs online.
type fusionCatDTO struct {
	Modelled  bool
	Model     gmm.MultiModel
	Threshold float64
	Mean, Std []float64
}

// fusionDTO is the serialisable form of FusionDetector.
type fusionDTO struct {
	Events []hpc.Event
	Sigma  float64
	Cats   []fusionCatDTO
}

// modelled reports whether category c of the detector has fitted models
// (Fit leaves the whole row nil otherwise).
func (d *Detector) modelled(c int) bool {
	return len(d.Models[c]) > 0 && d.Models[c][0] != nil
}

// SaveDetector atomically writes the fitted detector to path.
func SaveDetector(path string, d *Detector) error {
	dto := detectorDTO{Events: d.Events, Cats: make([]detectorCatDTO, len(d.Models))}
	for c := range d.Models {
		if !d.modelled(c) {
			continue
		}
		cat := detectorCatDTO{
			Modelled:   true,
			Models:     make([]gmm.Model, len(d.Events)),
			Thresholds: append([]float64(nil), d.Thresholds[c]...),
		}
		for n := range d.Events {
			cat.Models[n] = *d.Models[c][n]
		}
		dto.Cats[c] = cat
	}
	return persist.Save(path, DetectorSchema, dto)
}

// LoadDetector reads a fitted detector from path. Corrupt, truncated, and
// stale-schema files return an error; use TryLoadDetector for miss
// semantics.
func LoadDetector(path string) (*Detector, error) {
	var dto detectorDTO
	if err := persist.Load(path, DetectorSchema, &dto); err != nil {
		return nil, err
	}
	if len(dto.Events) == 0 || len(dto.Cats) == 0 {
		return nil, fmt.Errorf("core: detector file %s is structurally empty", path)
	}
	d := &Detector{
		Events:     dto.Events,
		Models:     make([][]*gmm.Model, len(dto.Cats)),
		Thresholds: make([][]float64, len(dto.Cats)),
	}
	for c, cat := range dto.Cats {
		d.Models[c] = make([]*gmm.Model, len(dto.Events))
		d.Thresholds[c] = make([]float64, len(dto.Events))
		if !cat.Modelled {
			continue
		}
		if len(cat.Models) != len(dto.Events) || len(cat.Thresholds) != len(dto.Events) {
			return nil, fmt.Errorf("core: detector file %s: category %d has %d models for %d events",
				path, c, len(cat.Models), len(dto.Events))
		}
		for n := range dto.Events {
			m := cat.Models[n]
			if m.K() == 0 || len(m.Means) != m.K() || len(m.Vars) != m.K() {
				return nil, fmt.Errorf("core: detector file %s: category %d event %d model is malformed", path, c, n)
			}
			d.Models[c][n] = &m
			d.Thresholds[c][n] = cat.Thresholds[n]
		}
	}
	return d, nil
}

// TryLoadDetector loads a fitted detector, treating every failure — missing
// file, corruption, stale schema — as a miss (ok == false). This is the
// load path serving and scanning use: a miss means "fit from the template
// and overwrite", mirroring how the experiment caches regenerate.
func TryLoadDetector(path string) (d *Detector, ok bool) {
	d, err := LoadDetector(path)
	return d, err == nil
}

// SaveFusion atomically writes the fitted fusion detector to path.
func SaveFusion(path string, f *FusionDetector) error {
	dto := fusionDTO{Events: f.Events, Sigma: f.sigma, Cats: make([]fusionCatDTO, len(f.Models))}
	for c := range f.Models {
		if f.Models[c] == nil {
			continue
		}
		dto.Cats[c] = fusionCatDTO{
			Modelled:  true,
			Model:     *f.Models[c],
			Threshold: f.Thresholds[c],
			Mean:      append([]float64(nil), f.mean[c]...),
			Std:       append([]float64(nil), f.std[c]...),
		}
	}
	return persist.Save(path, DetectorSchema, dto)
}

// LoadFusion reads a fitted fusion detector from path.
func LoadFusion(path string) (*FusionDetector, error) {
	var dto fusionDTO
	if err := persist.Load(path, DetectorSchema, &dto); err != nil {
		return nil, err
	}
	if len(dto.Events) == 0 || len(dto.Cats) == 0 {
		return nil, fmt.Errorf("core: fusion file %s is structurally empty", path)
	}
	f := &FusionDetector{
		Events:     dto.Events,
		Models:     make([]*gmm.MultiModel, len(dto.Cats)),
		Thresholds: make([]float64, len(dto.Cats)),
		mean:       make([][]float64, len(dto.Cats)),
		std:        make([][]float64, len(dto.Cats)),
		sigma:      dto.Sigma,
	}
	for c, cat := range dto.Cats {
		if !cat.Modelled {
			continue
		}
		if len(cat.Mean) != len(dto.Events) || len(cat.Std) != len(dto.Events) || cat.Model.D != len(dto.Events) {
			return nil, fmt.Errorf("core: fusion file %s: category %d standardisation is malformed", path, c)
		}
		m := cat.Model
		f.Models[c] = &m
		f.Thresholds[c] = cat.Threshold
		f.mean[c] = cat.Mean
		f.std[c] = cat.Std
	}
	return f, nil
}

// TryLoadFusion loads a fitted fusion detector with miss semantics.
func TryLoadFusion(path string) (f *FusionDetector, ok bool) {
	f, err := LoadFusion(path)
	return f, err == nil
}
