package core

import (
	"math"
	"sync"
	"time"

	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// Fingerprint hashes a tensor's shape and exact float64 contents (FNV-1a over
// the raw bit patterns, so -0/+0 and NaN payloads are distinguished exactly
// like the engine would distinguish them). Two tensors share a fingerprint
// only if they would produce the identical inference trace, which is what
// makes truth-count memoisation sound: the simulated engine is deterministic,
// so equal inputs imply equal (pred, conf, counts).
func Fingerprint(x *tensor.Tensor) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(x.Rank())
	h *= prime
	for _, d := range x.Shape() {
		h ^= uint64(d)
		h *= prime
	}
	for _, v := range x.Data() {
		h ^= math.Float64bits(v)
		h *= prime
	}
	return h
}

// Truth is the noise-free outcome of one simulated inference: the hard-label
// prediction, its softmax confidence, and the true HPC counts. It is the part
// of a measurement that is a pure function of the input — everything the
// noise protocol adds on top is keyed by the sample index, not the input.
type Truth struct {
	Pred   int
	Conf   float64
	Counts hpc.Counts
}

// TruthCacheStats reports cache effectiveness.
type TruthCacheStats struct {
	Hits   uint64
	Misses uint64
}

// TruthCache memoises Truth values by input fingerprint with LRU eviction.
// It is safe for concurrent use — serve workers measuring on separate engine
// replicas share one cache, so a repeated query pays the simulated inference
// only once regardless of which worker sees it.
type TruthCache struct {
	mu    sync.Mutex
	cap   int
	index map[uint64]int
	slots []truthSlot
	head  int // most recently used; -1 when empty
	tail  int // least recently used; -1 when empty
	stats TruthCacheStats
}

type truthSlot struct {
	fp         uint64
	truth      Truth
	prev, next int
}

// NewTruthCache builds a cache holding up to capacity entries. A capacity
// <= 0 returns nil, and a nil *TruthCache is a valid "always miss, never
// store" cache for every method, so callers can thread an optional cache
// without branching.
func NewTruthCache(capacity int) *TruthCache {
	if capacity <= 0 {
		return nil
	}
	return &TruthCache{
		cap:   capacity,
		index: make(map[uint64]int, capacity),
		head:  -1,
		tail:  -1,
	}
}

// Get returns the memoised truth for fp, marking the entry most recently
// used.
func (c *TruthCache) Get(fp uint64) (Truth, bool) {
	if c == nil {
		return Truth{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[fp]
	if !ok {
		c.stats.Misses++
		return Truth{}, false
	}
	c.stats.Hits++
	c.moveFront(i)
	return c.slots[i].truth, true
}

// Put stores the truth for fp, evicting the least recently used entry at
// capacity. Storing an existing fingerprint refreshes its recency (the truth
// is identical by construction — it is a pure function of the input).
func (c *TruthCache) Put(fp uint64, t Truth) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[fp]; ok {
		c.slots[i].truth = t
		c.moveFront(i)
		return
	}
	var i int
	if len(c.slots) < c.cap {
		i = len(c.slots)
		c.slots = append(c.slots, truthSlot{})
	} else {
		i = c.tail
		c.unlink(i)
		delete(c.index, c.slots[i].fp)
	}
	c.slots[i] = truthSlot{fp: fp, truth: t, prev: -1, next: -1}
	c.pushFront(i)
	c.index[fp] = i
}

// Len returns the number of resident entries.
func (c *TruthCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Bytes reports the cache's approximate resident size: the slot array
// (fingerprint, truth, recency links) plus a per-entry share of the index
// map. It is an accounting estimate for capacity planning — the
// advhunter_*_cache_bytes gauges — not an exact heap measurement.
func (c *TruthCache) Bytes() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// One slot: fp (8) + Truth{Pred, Conf, Counts} (16 + 8·NumEvents) +
	// prev/next (16). One index entry: key + value + bucket overhead ≈ 48.
	const slotBytes = 8 + 16 + 8*int(hpc.NumEvents) + 16
	const indexBytes = 48
	return len(c.slots)*slotBytes + len(c.index)*indexBytes
}

// Stats returns a snapshot of the hit/miss counters.
func (c *TruthCache) Stats() TruthCacheStats {
	if c == nil {
		return TruthCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// unlink removes slot i from the recency list.
func (c *TruthCache) unlink(i int) {
	s := &c.slots[i]
	if s.prev >= 0 {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
	s.prev, s.next = -1, -1
}

// pushFront links slot i (currently unlinked) as most recently used.
func (c *TruthCache) pushFront(i int) {
	c.slots[i].prev = -1
	c.slots[i].next = c.head
	if c.head >= 0 {
		c.slots[c.head].prev = i
	} else {
		c.tail = i
	}
	c.head = i
}

// moveFront marks slot i most recently used.
func (c *TruthCache) moveFront(i int) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}

// MeasureAtCached is MeasureAt with truth-count memoisation: the noise-free
// inference outcome is looked up in (or inserted into) cache by input
// fingerprint, and the R noisy readings are then drawn from sample index i's
// stream exactly as MeasureAt would draw them. Because the noise is keyed by
// i — never by the truth's provenance — the returned Measurement is
// bit-identical to an uncached MeasureAt(i, x) on both hit and miss paths.
// The second return reports whether the truth came from the cache. A nil
// cache degrades to plain MeasureAt.
func (m *Measurer) MeasureAtCached(cache *TruthCache, i uint64, x *tensor.Tensor) (Measurement, bool) {
	if cache == nil {
		return m.MeasureAt(i, x), false
	}
	var start time.Time
	if m.Observe != nil {
		start = time.Now()
	}
	fp := Fingerprint(x)
	t, hit := cache.Get(fp)
	if !hit {
		pred, conf, truth := m.Engine.InferConf(x)
		t = Truth{Pred: pred, Conf: conf, Counts: truth}
		cache.Put(fp, t)
	}
	meas := Measurement{
		Pred:      t.Pred,
		TrueLabel: -1,
		Counts:    m.noiseAt(i).MeasureMean(t.Counts, m.R),
		Conf:      t.Conf,
	}
	if m.Observe != nil {
		m.Observe(time.Since(start), meas)
	}
	return meas, hit
}
