package core

import (
	"testing"

	"advhunter/internal/engine"
	"advhunter/internal/rng"
	"advhunter/internal/uarch/hpc"
)

// TestMeasurerCloneAgrees checks the serving contract: a cloned measurer
// answers MeasureAt(i, x) exactly like the original for any shared index.
func TestMeasurerCloneAgrees(t *testing.T) {
	samples, m := detFixture()
	orig := NewMeasurer(engine.NewDefault(m.Clone()), 42)
	clone := orig.Clone()
	for i, s := range samples[:6] {
		a := orig.MeasureAt(uint64(i), s.X)
		b := clone.MeasureAt(uint64(i), s.X)
		if a.Pred != b.Pred || a.Counts != b.Counts || a.Conf != b.Conf {
			t.Fatalf("clone diverged at index %d", i)
		}
	}
}

// TestMeasurementCarriesConfidence checks that the measured confidence is a
// valid softmax probability of the predicted class.
func TestMeasurementCarriesConfidence(t *testing.T) {
	samples, m := detFixture()
	meas := NewMeasurer(engine.NewDefault(m.Clone()), 42)
	mm := meas.Measure(samples[0].X)
	if mm.Conf <= 0 || mm.Conf > 1 {
		t.Fatalf("confidence %v outside (0, 1]", mm.Conf)
	}
	if mm.TrueLabel != -1 {
		t.Fatalf("online Measure should report TrueLabel -1, got %d", mm.TrueLabel)
	}
}

// TestTemplateColumn checks the 𝒟_c^n extraction used by every per-event
// scorer.
func TestTemplateColumn(t *testing.T) {
	tpl := NewTemplate(2, []hpc.Event{hpc.CacheMisses, hpc.Instructions})
	var a, b hpc.Counts
	a[hpc.CacheMisses], a[hpc.Instructions] = 10, 100
	b[hpc.CacheMisses], b[hpc.Instructions] = 20, 200
	tpl.Add(1, a, 0.9)
	tpl.Add(1, b, 0.8)
	col := tpl.Column(1, 0)
	if len(col) != 2 || col[0] != 10 || col[1] != 20 {
		t.Fatalf("cache-miss column = %v", col)
	}
	col = tpl.Column(1, 1)
	if col[0] != 100 || col[1] != 200 {
		t.Fatalf("instructions column = %v", col)
	}
	if len(tpl.Rows[0]) != 0 {
		t.Fatal("class 0 should be empty")
	}
}

// TestTemplateMeasurements checks the row→Measurement reconstruction that
// detector fitting scores thresholds through.
func TestTemplateMeasurements(t *testing.T) {
	events := []hpc.Event{hpc.CacheMisses, hpc.Branches}
	tpl := NewTemplate(3, events)
	r := rng.New(7)
	var want []Measurement
	for i := 0; i < 5; i++ {
		var c hpc.Counts
		c[hpc.CacheMisses] = r.Normal(1000, 10)
		c[hpc.Branches] = r.Normal(5000, 50)
		conf := 0.5 + 0.1*float64(i%3)
		tpl.Add(2, c, conf)
		want = append(want, Measurement{Pred: 2, TrueLabel: 2, Counts: c, Conf: conf})
	}
	got := tpl.Measurements(2)
	if len(got) != len(want) {
		t.Fatalf("got %d measurements, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Pred != 2 || got[i].Conf != want[i].Conf {
			t.Fatalf("measurement %d: %+v", i, got[i])
		}
		for _, e := range events {
			if got[i].Counts.Get(e) != want[i].Counts.Get(e) {
				t.Fatalf("measurement %d event %v: got %v want %v",
					i, e, got[i].Counts.Get(e), want[i].Counts.Get(e))
			}
		}
	}
	if len(tpl.Measurements(0)) != 0 {
		t.Fatal("empty class should reconstruct no measurements")
	}
}
