package core

import (
	"testing"

	"advhunter/internal/gmm"
	"advhunter/internal/rng"
	"advhunter/internal/uarch/hpc"
)

// syntheticTemplate builds a template where event 0 (CacheMisses-like) is
// class-separable and event 1 (Instructions-like) is identical across
// classes — the paper's observed structure, in miniature.
func syntheticTemplate(seed uint64, classes, perClass int) *Template {
	events := []hpc.Event{hpc.CacheMisses, hpc.Instructions}
	t := NewTemplate(classes, events)
	r := rng.New(seed)
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			var counts hpc.Counts
			counts[hpc.CacheMisses] = r.Normal(1000+200*float64(c), 10)
			counts[hpc.Instructions] = r.Normal(5e6, 5e4)
			t.Add(c, counts)
		}
	}
	return t
}

func TestFitAndDetectSeparableEvent(t *testing.T) {
	tpl := syntheticTemplate(1, 3, 40)
	det, err := Fit(tpl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A reading matching class 1's clean profile must pass.
	var clean hpc.Counts
	clean[hpc.CacheMisses] = 1205
	clean[hpc.Instructions] = 5e6
	res := det.Detect(1, clean)
	if !res.Modelled {
		t.Fatal("class 1 unmodelled")
	}
	if res.FlaggedBy(hpc.CacheMisses, det.Events) {
		t.Fatal("clean-profile reading flagged")
	}
	// A reading with class-0-like cache misses predicted as class 2 must
	// flag on cache-misses.
	var adv hpc.Counts
	adv[hpc.CacheMisses] = 1000
	adv[hpc.Instructions] = 5e6
	res = det.Detect(2, adv)
	if !res.FlaggedBy(hpc.CacheMisses, det.Events) {
		t.Fatal("anomalous cache-miss reading not flagged")
	}
	// Instructions carry no signal, so they must not flag either reading.
	if res.FlaggedBy(hpc.Instructions, det.Events) {
		t.Fatal("instructions flagged despite being class-independent")
	}
}

func TestDetectUnmodelledClassNeverFlags(t *testing.T) {
	tpl := syntheticTemplate(2, 3, 40)
	tpl.Rows[2] = tpl.Rows[2][:1] // starve class 2 below MinSamples
	det, err := Fit(tpl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var reading hpc.Counts
	reading[hpc.CacheMisses] = 99999
	res := det.Detect(2, reading)
	if res.Modelled || res.AnyFlag() {
		t.Fatal("unmodelled class produced a decision")
	}
	// Out-of-range prediction is also safe.
	res = det.Detect(-1, reading)
	if res.Modelled || res.AnyFlag() {
		t.Fatal("out-of-range class produced a decision")
	}
}

func TestFitRejectsEmptyTemplate(t *testing.T) {
	tpl := NewTemplate(3, []hpc.Event{hpc.CacheMisses})
	if _, err := Fit(tpl, DefaultConfig()); err == nil {
		t.Fatal("expected error for empty template")
	}
}

func TestFitRejectsBadConfig(t *testing.T) {
	tpl := syntheticTemplate(3, 2, 10)
	cfg := DefaultConfig()
	cfg.SigmaFactor = 0
	if _, err := Fit(tpl, cfg); err == nil {
		t.Fatal("expected config error")
	}
}

func TestSigmaFactorMonotone(t *testing.T) {
	// Larger sigma ⇒ fewer flags. Score a borderline reading under both.
	tpl := syntheticTemplate(4, 2, 60)
	loose := DefaultConfig()
	loose.SigmaFactor = 6
	tight := DefaultConfig()
	tight.SigmaFactor = 0.5
	dLoose, err := Fit(tpl, loose)
	if err != nil {
		t.Fatal(err)
	}
	dTight, err := Fit(tpl, tight)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	flagsLoose, flagsTight := 0, 0
	for i := 0; i < 200; i++ {
		var reading hpc.Counts
		reading[hpc.CacheMisses] = r.Normal(1000, 25) // wider than template
		reading[hpc.Instructions] = r.Normal(5e6, 5e4)
		if dLoose.Detect(0, reading).AnyFlag() {
			flagsLoose++
		}
		if dTight.Detect(0, reading).AnyFlag() {
			flagsTight++
		}
	}
	if flagsLoose >= flagsTight {
		t.Fatalf("σ=6 flagged %d ≥ σ=0.5 flagged %d", flagsLoose, flagsTight)
	}
}

func TestThreeSigmaFalsePositiveRateLow(t *testing.T) {
	// Clean in-distribution readings should rarely exceed the 3σ rule.
	tpl := syntheticTemplate(6, 2, 80)
	det, err := Fit(tpl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	fp := 0
	const n = 500
	for i := 0; i < n; i++ {
		var reading hpc.Counts
		reading[hpc.CacheMisses] = r.Normal(1000, 10)
		reading[hpc.Instructions] = r.Normal(5e6, 5e4)
		if det.Detect(0, reading).FlaggedBy(hpc.CacheMisses, det.Events) {
			fp++
		}
	}
	if rate := float64(fp) / n; rate > 0.05 {
		t.Fatalf("clean false-positive rate %.3f too high", rate)
	}
}

func TestForceKSingleGaussianBaseline(t *testing.T) {
	tpl := syntheticTemplate(8, 2, 50)
	cfg := DefaultConfig()
	cfg.ForceK = 1
	det, err := Fit(tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		for n := range det.Events {
			if det.Models[c][n].K() != 1 {
				t.Fatalf("ForceK=1 produced K=%d", det.Models[c][n].K())
			}
		}
	}
}

func TestEvaluateEventScoring(t *testing.T) {
	tpl := syntheticTemplate(9, 2, 60)
	det, err := Fit(tpl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	var clean, adv []Measurement
	for i := 0; i < 50; i++ {
		var c hpc.Counts
		c[hpc.CacheMisses] = r.Normal(1000, 10)
		c[hpc.Instructions] = r.Normal(5e6, 5e4)
		clean = append(clean, Measurement{Pred: 0, Counts: c})
		var a hpc.Counts
		a[hpc.CacheMisses] = r.Normal(1600, 10) // far outside class 0
		a[hpc.Instructions] = r.Normal(5e6, 5e4)
		adv = append(adv, Measurement{Pred: 0, Counts: a})
	}
	conf := EvaluateEvent(det, hpc.CacheMisses, clean, adv, 0)
	if conf.Total() != 100 {
		t.Fatalf("total %d", conf.Total())
	}
	if conf.F1() < 0.9 {
		t.Fatalf("separable synthetic case F1 = %.3f", conf.F1())
	}
	confI := EvaluateEvent(det, hpc.Instructions, clean, adv, 0)
	if confI.F1() > 0.3 {
		t.Fatalf("uninformative event F1 = %.3f, want low", confI.F1())
	}
}

func TestFusionDetector(t *testing.T) {
	tpl := syntheticTemplate(11, 2, 60)
	cfg := DefaultConfig()
	f, err := FitFusion(tpl, []hpc.Event{hpc.CacheMisses, hpc.Instructions}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var clean hpc.Counts
	clean[hpc.CacheMisses] = 1000
	clean[hpc.Instructions] = 5e6
	if _, flagged := f.Detect(0, clean); flagged {
		t.Fatal("fusion flagged a clean-profile reading")
	}
	var adv hpc.Counts
	adv[hpc.CacheMisses] = 1700
	adv[hpc.Instructions] = 5e6
	if _, flagged := f.Detect(0, adv); !flagged {
		t.Fatal("fusion missed a far-out reading")
	}
}

func TestFusionRejectsUnknownEvent(t *testing.T) {
	tpl := syntheticTemplate(12, 2, 30)
	if _, err := FitFusion(tpl, []hpc.Event{hpc.LLCStoreMisses}, DefaultConfig()); err == nil {
		t.Fatal("expected error for event absent from template")
	}
}

func TestTemplateColumn(t *testing.T) {
	tpl := NewTemplate(1, []hpc.Event{hpc.CacheMisses, hpc.Branches})
	var a, b hpc.Counts
	a[hpc.CacheMisses], a[hpc.Branches] = 10, 20
	b[hpc.CacheMisses], b[hpc.Branches] = 30, 40
	tpl.Add(0, a)
	tpl.Add(0, b)
	col := tpl.Column(0, 1)
	if len(col) != 2 || col[0] != 20 || col[1] != 40 {
		t.Fatalf("column = %v", col)
	}
}

func TestGMMConfigPropagates(t *testing.T) {
	// Determinism end-to-end: equal seeds give equal thresholds.
	tpl := syntheticTemplate(13, 2, 40)
	cfg := DefaultConfig()
	cfg.GMM = gmm.DefaultConfig()
	a, err := Fit(tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Thresholds {
		for n := range a.Thresholds[c] {
			if a.Thresholds[c][n] != b.Thresholds[c][n] {
				t.Fatal("thresholds not deterministic")
			}
		}
	}
}
