package core

import (
	"testing"

	"advhunter/internal/engine"
)

// TestNoiseStreamMatchesMeasurer pins the exported noise protocol: a backend
// that computes its own truth counts and draws readings through a
// NoiseStream must reproduce Measurer.MeasureAt bit for bit.
func TestNoiseStreamMatchesMeasurer(t *testing.T) {
	samples, model := detFixture()
	m := NewMeasurer(engine.NewDefault(model.Clone()), 42)
	eng := engine.NewDefault(model.Clone())
	var ns NoiseStream
	for i, s := range samples[:6] {
		want := m.MeasureAt(uint64(i), s.X)
		pred, conf, truth := eng.InferConf(s.X)
		got := Measurement{
			Pred:      pred,
			TrueLabel: -1,
			Counts:    ns.SamplerAt(m.Noise, m.Seed, uint64(i)).MeasureMean(truth, m.R),
			Conf:      conf,
		}
		if got != want {
			t.Fatalf("sample %d: NoiseStream measurement %+v, MeasureAt %+v", i, got, want)
		}
	}
}
