package core

import (
	"fmt"
	"math"

	"advhunter/internal/data"
	"advhunter/internal/metrics"
	"advhunter/internal/models"
	"advhunter/internal/nn"
	"advhunter/internal/tensor"
)

// ConfidenceDetector is the soft-label baseline the paper argues real
// vendors cannot offer (confidence scores enable model stealing, Section 2):
// it flags inputs whose top-1 softmax confidence is anomalously low for the
// predicted category, using the same per-category 3σ rule as AdvHunter.
// It exists here to quantify what hard-label-only access costs.
type ConfidenceDetector struct {
	model      *models.Model
	thresholds []float64 // per category, on −log(max prob)
	modelled   []bool
	sigma      float64
}

// FitConfidence calibrates the baseline on clean validation images.
func FitConfidence(m *models.Model, validation []data.Sample, sigma float64, minSamples int) (*ConfidenceDetector, error) {
	classes := m.Meta.Classes
	scores := make([][]float64, classes)
	for _, s := range validation {
		pred, score := confidenceScore(m, s.X)
		scores[pred] = append(scores[pred], score)
	}
	d := &ConfidenceDetector{
		model:      m,
		thresholds: make([]float64, classes),
		modelled:   make([]bool, classes),
		sigma:      sigma,
	}
	fitted := 0
	for c := 0; c < classes; c++ {
		if len(scores[c]) < minSamples {
			continue
		}
		mu, sd := metrics.MeanStd(scores[c])
		d.thresholds[c] = mu + sigma*sd
		d.modelled[c] = true
		fitted++
	}
	if fitted == 0 {
		return nil, fmt.Errorf("core: confidence baseline has no modelled category")
	}
	return d, nil
}

// confidenceScore returns the prediction and −log(max softmax probability).
func confidenceScore(m *models.Model, x *tensor.Tensor) (int, float64) {
	batch := x.Clone().Reshape(1, m.Meta.InC, m.Meta.InH, m.Meta.InW)
	probs := nn.Softmax(m.Logits(batch))
	best, bestV := 0, probs.At(0, 0)
	for j := 1; j < probs.Dim(1); j++ {
		if v := probs.At(0, j); v > bestV {
			best, bestV = j, v
		}
	}
	return best, -math.Log(math.Max(bestV, 1e-300))
}

// Detect flags one image.
func (d *ConfidenceDetector) Detect(x *tensor.Tensor) (pred int, flagged bool) {
	pred, score := confidenceScore(d.model, x)
	if !d.modelled[pred] {
		return pred, false
	}
	return pred, score > d.thresholds[pred]
}
