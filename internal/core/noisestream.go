package core

import "advhunter/internal/uarch/hpc"

// NoiseStream replays the measurement protocol's per-sample noise re-keying
// for measurement backends outside this package (the analytical twin): the
// sampler it returns for index i is positioned on exactly the stream
// Measurer.MeasureAt(i, ·) draws from, so a backend that pairs it with its
// own truth counts follows the protocol reading for reading. Like the
// scratch a Measurer embeds, a NoiseStream is single-goroutine; give each
// worker its own. The zero value is ready to use.
type NoiseStream struct {
	scratch noiseScratch
}

// SamplerAt rewinds the stream to sample index i's noise — a pure function
// of (model, seed, i) — and returns the positioned sampler. The sampler is
// reused across calls; steady-state use allocates nothing.
func (s *NoiseStream) SamplerAt(model hpc.NoiseModel, seed, i uint64) *hpc.Sampler {
	return s.scratch.at(model, seed, i)
}
