package core

import (
	"math"
	"testing"

	"advhunter/internal/engine"
	"advhunter/internal/tensor"
)

func TestFingerprintSensitivity(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if Fingerprint(a) != Fingerprint(a.Clone()) {
		t.Fatal("equal tensors must share a fingerprint")
	}
	b := a.Clone()
	b.Data()[3] = 4.0000001
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("a one-ulp-ish data change must change the fingerprint")
	}
	if Fingerprint(a) == Fingerprint(a.Reshape(4, 1)) {
		t.Fatal("same data under a different shape must change the fingerprint")
	}
	z := tensor.FromSlice([]float64{0}, 1)
	nz := tensor.FromSlice([]float64{math.Copysign(0, -1)}, 1)
	if Fingerprint(z) == Fingerprint(nz) {
		t.Fatal("fingerprint must distinguish -0 from +0 like the engine's bit patterns would")
	}
}

func TestTruthCacheLRU(t *testing.T) {
	c := NewTruthCache(2)
	c.Put(1, Truth{Pred: 1})
	c.Put(2, Truth{Pred: 2})
	if _, ok := c.Get(1); !ok { // refresh 1 → 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	c.Put(3, Truth{Pred: 3}) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("entry 2 should have been evicted as LRU")
	}
	if got, ok := c.Get(1); !ok || got.Pred != 1 {
		t.Fatal("entry 1 should have survived via recency refresh")
	}
	if got, ok := c.Get(3); !ok || got.Pred != 3 {
		t.Fatal("entry 3 should be resident")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 3 hits / 1 miss", st)
	}
}

func TestTruthCacheNilIsDisabled(t *testing.T) {
	var c *TruthCache // also what NewTruthCache(0) returns
	if NewTruthCache(0) != nil || NewTruthCache(-5) != nil {
		t.Fatal("non-positive capacity must disable the cache")
	}
	c.Put(1, Truth{})
	if _, ok := c.Get(1); ok {
		t.Fatal("nil cache must always miss")
	}
	if c.Len() != 0 || c.Stats() != (TruthCacheStats{}) {
		t.Fatal("nil cache must report empty state")
	}
}

// TestMeasureAtCachedMatchesUncached is the memoisation soundness test: on
// miss, on hit, and through a nil cache, MeasureAtCached must return exactly
// what MeasureAt returns for the same (index, input) — the noise is keyed by
// index, never by cache state.
func TestMeasureAtCachedMatchesUncached(t *testing.T) {
	samples, m := detFixture()
	ref := NewMeasurer(engine.NewDefault(m.Clone()), 42)
	cached := NewMeasurer(engine.NewDefault(m.Clone()), 42)
	cache := NewTruthCache(8)
	// Indices deliberately revisit inputs: 0,1,0,2,1,0 with fresh indices.
	order := []int{0, 1, 0, 2, 1, 0}
	hits := 0
	for i, si := range order {
		want := ref.MeasureAt(uint64(i), samples[si].X)
		got, hit := cached.MeasureAtCached(cache, uint64(i), samples[si].X)
		if hit {
			hits++
		}
		if got != want {
			t.Fatalf("step %d (sample %d, hit=%v): cached measurement diverged", i, si, hit)
		}
	}
	if hits != 3 {
		t.Fatalf("hits = %d, want 3 (every revisit)", hits)
	}
	if st := cache.Stats(); st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("cache stats %+v", st)
	}
	// nil cache degrades to MeasureAt.
	want := ref.MeasureAt(99, samples[0].X)
	got, hit := cached.MeasureAtCached(nil, 99, samples[0].X)
	if hit || got != want {
		t.Fatal("nil-cache MeasureAtCached must equal MeasureAt")
	}
}

// TestMeasureAtSteadyStateAllocs gates the measurement path's allocation
// behaviour: after warm-up, MeasureAt must not allocate (the Measurement is
// returned by value; noise sampling reuses the measurer's scratch stream).
func TestMeasureAtSteadyStateAllocs(t *testing.T) {
	samples, m := detFixture()
	meas := NewMeasurer(engine.NewDefault(m.Clone()), 42)
	x := samples[0].X
	var sink Measurement
	probe := func() { sink = meas.MeasureAt(7, x) }
	probe()
	probe()
	if allocs := testing.AllocsPerRun(10, probe); allocs != 0 {
		t.Fatalf("MeasureAt allocs/run = %v, want 0", allocs)
	}
	_ = sink
}
