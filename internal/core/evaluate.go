package core

import (
	"advhunter/internal/data"
	"advhunter/internal/engine"
	"advhunter/internal/metrics"
	"advhunter/internal/parallel"
	"advhunter/internal/uarch/hpc"
)

// Measurement is one measured image: the hard-label prediction plus the
// R-averaged counter reading. Experiments measure once and evaluate many
// detector variants against the cached measurements.
type Measurement struct {
	Pred int
	// TrueLabel is the ground-truth class (for clean images) or the
	// original class (for adversarial ones); bookkeeping only.
	TrueLabel int
	Counts    hpc.Counts
}

// MeasureSet measures every sample, fanning out over m.Workers goroutines.
// Each worker beyond the first runs its own engine replica (Engine.Clone —
// shared weights, private μarch state), and every sample draws noise from its
// index-keyed stream, so the returned slice is bit-identical for any worker
// count and any scheduling.
func MeasureSet(m *Measurer, samples []data.Sample) []Measurement {
	workers := parallel.Workers(m.Workers, len(samples))
	engines := make([]*engine.Engine, workers)
	engines[0] = m.Engine
	for w := 1; w < workers; w++ {
		engines[w] = m.Engine.Clone()
	}
	return parallel.MapWorkers(workers, samples, func(worker, i int, s data.Sample) Measurement {
		pred, truth := engines[worker].Infer(s.X)
		counts := m.noiseAt(uint64(i)).MeasureMean(truth, m.R)
		return Measurement{Pred: pred, TrueLabel: s.Label, Counts: counts}
	})
}

// EvaluateEvent scores the per-event decision rule over clean (negative) and
// adversarial (positive) measurement sets, mirroring the paper's Table 2
// protocol. Detection is pure (the detector is read-only online), so scoring
// fans out over the given worker count; the confusion matrix is accumulated
// in input order.
func EvaluateEvent(d *Detector, event hpc.Event, clean, adv []Measurement, workers int) metrics.Confusion {
	n := d.EventIndex(event)
	flag := func(_ int, m Measurement) bool {
		return d.Detect(m.Pred, m.Counts).Flags[n]
	}
	var c metrics.Confusion
	for _, flagged := range parallel.Map(workers, clean, flag) {
		c.Add(false, flagged)
	}
	for _, flagged := range parallel.Map(workers, adv, flag) {
		c.Add(true, flagged)
	}
	return c
}

// EvaluateFusion scores the joint-model extension the same way.
func EvaluateFusion(f *FusionDetector, clean, adv []Measurement, workers int) metrics.Confusion {
	flag := func(_ int, m Measurement) bool {
		_, flagged := f.Detect(m.Pred, m.Counts)
		return flagged
	}
	var c metrics.Confusion
	for _, flagged := range parallel.Map(workers, clean, flag) {
		c.Add(false, flagged)
	}
	for _, flagged := range parallel.Map(workers, adv, flag) {
		c.Add(true, flagged)
	}
	return c
}
