package core

import (
	"advhunter/internal/data"
	"advhunter/internal/metrics"
	"advhunter/internal/uarch/hpc"
)

// Measurement is one measured image: the hard-label prediction plus the
// R-averaged counter reading. Experiments measure once and evaluate many
// detector variants against the cached measurements.
type Measurement struct {
	Pred int
	// TrueLabel is the ground-truth class (for clean images) or the
	// original class (for adversarial ones); bookkeeping only.
	TrueLabel int
	Counts    hpc.Counts
}

// MeasureSet measures every sample.
func MeasureSet(m *Measurer, samples []data.Sample) []Measurement {
	out := make([]Measurement, len(samples))
	for i, s := range samples {
		pred, counts := m.Measure(s.X)
		out[i] = Measurement{Pred: pred, TrueLabel: s.Label, Counts: counts}
	}
	return out
}

// EvaluateEvent scores the per-event decision rule over clean (negative) and
// adversarial (positive) measurement sets, mirroring the paper's Table 2
// protocol.
func EvaluateEvent(d *Detector, event hpc.Event, clean, adv []Measurement) metrics.Confusion {
	n := d.EventIndex(event)
	var c metrics.Confusion
	for _, m := range clean {
		res := d.Detect(m.Pred, m.Counts)
		c.Add(false, res.Flags[n])
	}
	for _, m := range adv {
		res := d.Detect(m.Pred, m.Counts)
		c.Add(true, res.Flags[n])
	}
	return c
}

// EvaluateFusion scores the joint-model extension the same way.
func EvaluateFusion(f *FusionDetector, clean, adv []Measurement) metrics.Confusion {
	var c metrics.Confusion
	for _, m := range clean {
		_, flagged := f.Detect(m.Pred, m.Counts)
		c.Add(false, flagged)
	}
	for _, m := range adv {
		_, flagged := f.Detect(m.Pred, m.Counts)
		c.Add(true, flagged)
	}
	return c
}
