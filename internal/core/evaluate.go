package core

import (
	"advhunter/internal/data"
	"advhunter/internal/engine"
	"advhunter/internal/parallel"
	"advhunter/internal/uarch/hpc"
)

// Measurement is one measured image: the hard-label prediction plus the
// R-averaged counter reading. Experiments measure once and evaluate many
// detector variants against the cached measurements.
type Measurement struct {
	Pred int
	// TrueLabel is the ground-truth class (for clean images) or the
	// original class (for adversarial ones); bookkeeping only. Online
	// queries carry -1.
	TrueLabel int
	Counts    hpc.Counts
	// Conf is the softmax confidence of the predicted class. The black-box
	// threat model forbids detectors from using it; it feeds only the
	// soft-label confidence baseline the paper compares against.
	Conf float64
}

// MeasureSet measures every sample, fanning out over m.Workers goroutines.
// Each worker beyond the first runs its own engine replica (Engine.Clone —
// shared weights, private μarch state), and every sample draws noise from its
// index-keyed stream, so the returned slice is bit-identical for any worker
// count and any scheduling.
func MeasureSet(m *Measurer, samples []data.Sample) []Measurement {
	workers := parallel.Workers(m.Workers, len(samples))
	engines := make([]*engine.Engine, workers)
	engines[0] = m.Engine
	for w := 1; w < workers; w++ {
		engines[w] = m.Engine.Clone()
	}
	// Per-worker noise scratch: the sampler state is mutable, so workers
	// must not share the measurer's own.
	scratches := make([]noiseScratch, workers)
	return parallel.MapWorkers(workers, samples, func(worker, i int, s data.Sample) Measurement {
		pred, conf, truth := engines[worker].InferConf(s.X)
		counts := scratches[worker].at(m.Noise, m.Seed, uint64(i)).MeasureMean(truth, m.R)
		return Measurement{Pred: pred, TrueLabel: s.Label, Counts: counts, Conf: conf}
	})
}
