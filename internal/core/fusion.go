package core

import (
	"fmt"

	"advhunter/internal/gmm"
	"advhunter/internal/metrics"
	"advhunter/internal/uarch/hpc"
)

// FusionDetector is the multi-event extension (beyond the paper, flagged as
// such in DESIGN.md): instead of one univariate GMM per event, it fits one
// diagonal multivariate GMM per category over a chosen event subset, scoring
// the joint reading. Events with wildly different magnitudes are
// standardised per category before fitting.
type FusionDetector struct {
	Events     []hpc.Event
	eventIdx   []int // indices of Events within the template's event list
	Models     []*gmm.MultiModel
	Thresholds []float64
	mean, std  [][]float64 // per category per event standardisation
	sigma      float64
}

// FitFusion fits the fusion detector on a measured template over the given
// event subset (which must be contained in the template's events).
func FitFusion(t *Template, events []hpc.Event, cfg Config) (*FusionDetector, error) {
	idx := make([]int, len(events))
	for i, e := range events {
		idx[i] = -1
		for n, te := range t.Events {
			if te == e {
				idx[i] = n
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("core: event %v not in template", e)
		}
	}
	f := &FusionDetector{
		Events:     events,
		eventIdx:   idx,
		Models:     make([]*gmm.MultiModel, t.Classes),
		Thresholds: make([]float64, t.Classes),
		mean:       make([][]float64, t.Classes),
		std:        make([][]float64, t.Classes),
		sigma:      cfg.SigmaFactor,
	}
	fitted := 0
	for c := 0; c < t.Classes; c++ {
		rows := t.Rows[c]
		if len(rows) < cfg.MinSamples {
			continue
		}
		f.mean[c] = make([]float64, len(events))
		f.std[c] = make([]float64, len(events))
		for i, n := range idx {
			mu, sd := metrics.MeanStd(t.Column(c, n))
			if sd == 0 {
				sd = 1
			}
			f.mean[c][i], f.std[c][i] = mu, sd
		}
		pts := make([][]float64, len(rows))
		for i, row := range rows {
			p := make([]float64, len(events))
			for j, n := range idx {
				p[j] = (row[n] - f.mean[c][j]) / f.std[c][j]
			}
			pts[i] = p
		}
		sub := cfg.GMM
		sub.Seed = cfg.GMM.Seed ^ (uint64(c) << 16) ^ 0xf0f0
		model, err := gmm.FitBestMulti(pts, cfg.MaxK, sub)
		if err != nil {
			return nil, fmt.Errorf("core: fusion fit class %d: %w", c, err)
		}
		nll := make([]float64, len(pts))
		for i, p := range pts {
			nll[i] = model.NegLogLikelihood(p)
		}
		mu, sd := metrics.MeanStd(nll)
		f.Models[c] = model
		f.Thresholds[c] = mu + cfg.SigmaFactor*sd
		fitted++
	}
	if fitted == 0 {
		return nil, fmt.Errorf("core: fusion detector has no modelled category")
	}
	return f, nil
}

// Detect scores one measured reading against the predicted category's joint
// model; unmodelled categories never flag.
func (f *FusionDetector) Detect(pred int, counts hpc.Counts) (score float64, flagged bool) {
	if pred < 0 || pred >= len(f.Models) || f.Models[pred] == nil {
		return 0, false
	}
	p := make([]float64, len(f.Events))
	for j, e := range f.Events {
		p[j] = (counts.Get(e) - f.mean[pred][j]) / f.std[pred][j]
	}
	score = f.Models[pred].NegLogLikelihood(p)
	return score, score > f.Thresholds[pred]
}
