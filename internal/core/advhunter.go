// Package core implements AdvHunter, the paper's contribution: a hard-label
// black-box adversarial-example detector driven by Hardware Performance
// Counter side channels.
//
// Offline phase (Section 5.2–5.3): for each output category c the defender
// measures M clean validation images, each HPC event repeated R times and
// averaged, building the template 𝒟_c; a univariate GMM (components chosen
// by BIC) is fitted per (category, event), and a three-sigma threshold Δ_c^n
// is derived from the negative log-likelihood distribution of the template.
//
// Online phase (Section 5.4): an unknown input is measured the same way;
// its NLL under the GMM of the *predicted* category is compared against the
// threshold, and the input is flagged as adversarial if the score exceeds it.
package core

import (
	"fmt"

	"advhunter/internal/data"
	"advhunter/internal/engine"
	"advhunter/internal/gmm"
	"advhunter/internal/metrics"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// Measurer performs the paper's measurement protocol: run one inference on
// the instrumented engine, read the HPC bank R times under measurement
// noise, and keep the per-event mean.
//
// Noise is re-keyed per sample: measurement i draws from the stream
// rng.New(Seed).Split(i), so its counts are a pure function of
// (model, input, Seed, i) — independent of measurement order and of which
// worker performs it. That is what lets MeasureSet fan out over engine
// replicas and still return bit-identical results for any worker count.
type Measurer struct {
	Engine *engine.Engine
	// Noise is the measurement-disturbance model applied to true counts.
	Noise hpc.NoiseModel
	// Seed keys the per-sample noise streams.
	Seed uint64
	// R is the repetition count (the paper uses R = 10).
	R int
	// Workers bounds MeasureSet's concurrency: <= 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the serial path. Sequential Measure
	// calls are unaffected.
	Workers int

	// next indexes sequential Measure calls so that a scan sequence is as
	// deterministic as a batch measurement. Not synchronised: a Measurer's
	// sequential API is single-goroutine, like the engine it owns.
	next uint64
}

// NewMeasurer builds a measurer with the paper's defaults (R=10, default
// noise model).
func NewMeasurer(e *engine.Engine, noiseSeed uint64) *Measurer {
	return &Measurer{
		Engine: e,
		Noise:  hpc.DefaultNoise(),
		Seed:   noiseSeed,
		R:      10,
	}
}

// Clone returns an independent measurer replica for concurrent serving: the
// engine is cloned (shared weights, private μarch state) and the noise model,
// seed and repetition count are copied, so MeasureAt(i, x) on a replica
// returns exactly what the original would return for the same (i, x). The
// sequential-call counter starts fresh; replica users must key measurements
// explicitly through MeasureAt.
func (m *Measurer) Clone() *Measurer {
	return &Measurer{
		Engine:  m.Engine.Clone(),
		Noise:   m.Noise,
		Seed:    m.Seed,
		R:       m.R,
		Workers: m.Workers,
	}
}

// noiseAt builds the sampler for sample index i: a pure function of
// (m.Noise, m.Seed, i).
func (m *Measurer) noiseAt(i uint64) *hpc.Sampler {
	return hpc.NewSamplerFrom(m.Noise, rng.New(m.Seed).Split(i))
}

// MeasureAt measures one image under the noise stream of sample index i.
func (m *Measurer) MeasureAt(i uint64, x *tensor.Tensor) (int, hpc.Counts) {
	pred, truth := m.Engine.Infer(x)
	return pred, m.noiseAt(i).MeasureMean(truth, m.R)
}

// Measure returns the hard-label prediction and the R-averaged counter
// reading for one image, assigning sample indices in call order.
func (m *Measurer) Measure(x *tensor.Tensor) (int, hpc.Counts) {
	i := m.next
	m.next++
	return m.MeasureAt(i, x)
}

// Template is the offline dataset 𝒟: per predicted category, one row of
// per-event means for each measured validation image.
type Template struct {
	Events  []hpc.Event
	Classes int
	// Rows[c][i][n] is the mean of event Events[n] for the i-th validation
	// image whose (hard-label) prediction was c.
	Rows [][][]float64
}

// NewTemplate allocates an empty template.
func NewTemplate(classes int, events []hpc.Event) *Template {
	return &Template{Events: events, Classes: classes, Rows: make([][][]float64, classes)}
}

// Add appends one measured image to category c.
func (t *Template) Add(c int, counts hpc.Counts) {
	row := make([]float64, len(t.Events))
	for n, e := range t.Events {
		row[n] = counts.Get(e)
	}
	t.Rows[c] = append(t.Rows[c], row)
}

// Column extracts 𝒟_c^n, the per-image means of one event in one category.
func (t *Template) Column(c, n int) []float64 {
	col := make([]float64, len(t.Rows[c]))
	for i, row := range t.Rows[c] {
		col[i] = row[n]
	}
	return col
}

// BuildTemplate measures every validation image and buckets it under its
// *predicted* category — the only label a hard-label defender observes.
// Measurement fans out over m.Workers; template rows keep input order.
func BuildTemplate(m *Measurer, validation []data.Sample, classes int, events []hpc.Event) *Template {
	t := NewTemplate(classes, events)
	for _, mm := range MeasureSet(m, validation) {
		t.Add(mm.Pred, mm.Counts)
	}
	return t
}

// Config controls detector fitting.
type Config struct {
	// MaxK caps the BIC search over GMM component counts (paper: small).
	MaxK int
	// SigmaFactor is the threshold multiplier (paper: 3, the 3σ rule).
	SigmaFactor float64
	// MinSamples is the smallest per-category template size accepted.
	MinSamples int
	// GMM configures the EM fits.
	GMM gmm.Config
	// ForceK, when positive, disables BIC selection and fits exactly K
	// components (the single-Gaussian baseline uses ForceK = 1).
	ForceK int
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{MaxK: 5, SigmaFactor: 3, MinSamples: 4, GMM: gmm.DefaultConfig()}
}

// Detector is the fitted AdvHunter model: one GMM and one threshold per
// (category, event).
type Detector struct {
	Events []hpc.Event
	// Models[c][n] may be nil when category c had too few template rows;
	// such categories never flag (the defender cannot model them).
	Models     [][]*gmm.Model
	Thresholds [][]float64
	cfg        Config
}

// Fit performs the offline phase on a measured template.
func Fit(t *Template, cfg Config) (*Detector, error) {
	if cfg.SigmaFactor <= 0 || cfg.MaxK <= 0 {
		return nil, fmt.Errorf("core: invalid config %+v", cfg)
	}
	d := &Detector{
		Events:     t.Events,
		Models:     make([][]*gmm.Model, t.Classes),
		Thresholds: make([][]float64, t.Classes),
		cfg:        cfg,
	}
	fitted := 0
	for c := 0; c < t.Classes; c++ {
		d.Models[c] = make([]*gmm.Model, len(t.Events))
		d.Thresholds[c] = make([]float64, len(t.Events))
		if len(t.Rows[c]) < cfg.MinSamples {
			continue
		}
		for n := range t.Events {
			col := t.Column(c, n)
			sub := cfg.GMM
			sub.Seed = cfg.GMM.Seed ^ (uint64(c)<<32 | uint64(n))
			var model *gmm.Model
			var err error
			if cfg.ForceK > 0 {
				model, err = gmm.Fit(col, cfg.ForceK, sub)
			} else {
				model, err = gmm.FitBest(col, cfg.MaxK, sub)
			}
			if err != nil {
				return nil, fmt.Errorf("core: fitting class %d event %v: %w", c, t.Events[n], err)
			}
			nll := make([]float64, len(col))
			for i, x := range col {
				nll[i] = model.NegLogLikelihood(x)
			}
			mu, sigma := metrics.MeanStd(nll)
			d.Models[c][n] = model
			d.Thresholds[c][n] = mu + cfg.SigmaFactor*sigma
		}
		fitted++
	}
	if fitted == 0 {
		return nil, fmt.Errorf("core: no category had %d or more template rows", cfg.MinSamples)
	}
	return d, nil
}

// Result is one online-phase decision.
type Result struct {
	PredictedClass int
	// Scores[n] is ℓ_n, the NLL of the measurement under the predicted
	// category's GMM for event n; NaN-free (unmodelled categories score 0).
	Scores []float64
	// Flags[n] reports ℓ_n > Δ_ĉ^n for event n.
	Flags []bool
	// Modelled reports whether the predicted category had a template.
	Modelled bool
}

// FlaggedBy reports whether the named event flagged the input.
func (r Result) FlaggedBy(e hpc.Event, events []hpc.Event) bool {
	for n, ev := range events {
		if ev == e {
			return r.Flags[n]
		}
	}
	return false
}

// AnyFlag reports whether any event flagged the input (OR fusion).
func (r Result) AnyFlag() bool {
	for _, f := range r.Flags {
		if f {
			return true
		}
	}
	return false
}

// Detect runs the online phase on a measured reading.
func (d *Detector) Detect(pred int, counts hpc.Counts) Result {
	res := Result{
		PredictedClass: pred,
		Scores:         make([]float64, len(d.Events)),
		Flags:          make([]bool, len(d.Events)),
	}
	if pred < 0 || pred >= len(d.Models) || d.Models[pred][0] == nil {
		return res
	}
	res.Modelled = true
	for n, e := range d.Events {
		score := d.Models[pred][n].NegLogLikelihood(counts.Get(e))
		res.Scores[n] = score
		res.Flags[n] = score > d.Thresholds[pred][n]
	}
	return res
}

// EventIndex locates an event in the detector's event list (-1 if absent).
func (d *Detector) EventIndex(e hpc.Event) int {
	for n, ev := range d.Events {
		if ev == e {
			return n
		}
	}
	return -1
}

// Pipeline couples measurement and detection: the full deployed AdvHunter.
type Pipeline struct {
	M *Measurer
	D *Detector
}

// Scan classifies an unknown image and reports the detection result.
func (p *Pipeline) Scan(x *tensor.Tensor) Result {
	pred, counts := p.M.Measure(x)
	return p.D.Detect(pred, counts)
}
