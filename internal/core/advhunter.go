// Package core implements AdvHunter's measurement protocol: run one
// inference on the instrumented engine, read the HPC bank R times under
// measurement noise, and keep the per-event mean (Section 5.2). The offline
// template 𝒟 — per predicted category, one row of per-event means for each
// measured validation image — also lives here.
//
// Scoring and thresholding (the detector proper) live in internal/detect,
// which consumes the Measurement and Template types defined here through a
// pluggable Scorer/Detector abstraction.
package core

import (
	"time"

	"advhunter/internal/data"
	"advhunter/internal/engine"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// Measurer performs the paper's measurement protocol: run one inference on
// the instrumented engine, read the HPC bank R times under measurement
// noise, and keep the per-event mean.
//
// Noise is re-keyed per sample: measurement i draws from the stream
// rng.New(Seed).Split(i), so its counts are a pure function of
// (model, input, Seed, i) — independent of measurement order and of which
// worker performs it. That is what lets MeasureSet fan out over engine
// replicas and still return bit-identical results for any worker count.
type Measurer struct {
	Engine *engine.Engine
	// Noise is the measurement-disturbance model applied to true counts.
	Noise hpc.NoiseModel
	// Seed keys the per-sample noise streams.
	Seed uint64
	// R is the repetition count (the paper uses R = 10).
	R int
	// Workers bounds MeasureSet's concurrency: <= 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the serial path. Sequential Measure
	// calls are unaffected.
	Workers int

	// Observe, when set, receives every completed measurement and its
	// wall-clock duration (simulated inference plus the R noisy readings).
	// It is observe-only instrumentation: it must not mutate the measurement
	// or feed anything back into the pipeline, so results are identical with
	// or without it. The serve layer points it at its metrics registry
	// (inference-duration histogram, per-event HPC gauges). Replicas share
	// the hook (Clone copies it), so it must be safe for concurrent calls.
	Observe func(d time.Duration, m Measurement)

	// next indexes sequential Measure calls so that a scan sequence is as
	// deterministic as a batch measurement. Not synchronised: a Measurer's
	// sequential API is single-goroutine, like the engine it owns.
	next uint64

	// scratch is the reusable noise rng+sampler, so steady-state measurement
	// does not allocate per sample. Like the engine, a Measurer's measuring
	// methods are single-goroutine; replicas own their scratch, and MeasureSet
	// gives each worker a private one.
	scratch noiseScratch

	// batch holds MeasureBatchCached's reusable gather/scatter buffers
	// (batchmeasure.go). Single-goroutine like scratch; lazily grown.
	batch batchScratch
}

// NewMeasurer builds a measurer with the paper's defaults (R=10, default
// noise model).
func NewMeasurer(e *engine.Engine, noiseSeed uint64) *Measurer {
	return &Measurer{
		Engine: e,
		Noise:  hpc.DefaultNoise(),
		Seed:   noiseSeed,
		R:      10,
	}
}

// Clone returns an independent measurer replica for concurrent serving: the
// engine is cloned (shared weights, private μarch state) and the noise model,
// seed and repetition count are copied, so MeasureAt(i, x) on a replica
// returns exactly what the original would return for the same (i, x). The
// sequential-call counter starts fresh; replica users must key measurements
// explicitly through MeasureAt.
func (m *Measurer) Clone() *Measurer {
	return &Measurer{
		Engine:  m.Engine.Clone(),
		Noise:   m.Noise,
		Seed:    m.Seed,
		R:       m.R,
		Workers: m.Workers,
		Observe: m.Observe,
	}
}

// noiseScratch is a reusable noise rng+sampler pair. It is deliberately a
// standalone type: a Measurer embeds one for its single-goroutine measuring
// methods, and MeasureSet allocates one per worker so concurrent workers
// never share mutable sampler state.
type noiseScratch struct {
	rand    rng.Rand
	sampler *hpc.Sampler
}

// at rewinds the scratch sampler to sample index i's noise stream: a pure
// function of (model, seed, i). The reseed sequence replicates
// rng.New(seed).Split(i) in place — Split draws one word from the parent
// stream and xors it with the label spread across the golden-ratio constant —
// so the stream is identical to the allocating construction.
func (ns *noiseScratch) at(model hpc.NoiseModel, seed, i uint64) *hpc.Sampler {
	ns.rand.Reseed(seed)
	ns.rand.Reseed(ns.rand.Uint64() ^ (i * 0x9e3779b97f4a7c15))
	if ns.sampler == nil {
		ns.sampler = hpc.NewSamplerFrom(model, &ns.rand)
	}
	ns.sampler.Model = model
	return ns.sampler
}

func (m *Measurer) noiseAt(i uint64) *hpc.Sampler {
	return m.scratch.at(m.Noise, m.Seed, i)
}

// MeasureAt measures one image under the noise stream of sample index i.
// TrueLabel is -1: the measurer has no ground truth for an unknown input.
func (m *Measurer) MeasureAt(i uint64, x *tensor.Tensor) Measurement {
	var start time.Time
	if m.Observe != nil {
		start = time.Now()
	}
	pred, conf, truth := m.Engine.InferConf(x)
	meas := Measurement{
		Pred:      pred,
		TrueLabel: -1,
		Counts:    m.noiseAt(i).MeasureMean(truth, m.R),
		Conf:      conf,
	}
	if m.Observe != nil {
		m.Observe(time.Since(start), meas)
	}
	return meas
}

// Measure returns the measurement for one image, assigning sample indices
// in call order.
func (m *Measurer) Measure(x *tensor.Tensor) Measurement {
	i := m.next
	m.next++
	return m.MeasureAt(i, x)
}

// Template is the offline dataset 𝒟: per predicted category, one row of
// per-event means for each measured validation image.
type Template struct {
	Events  []hpc.Event
	Classes int
	// Rows[c][i][n] is the mean of event Events[n] for the i-th validation
	// image whose (hard-label) prediction was c.
	Rows [][][]float64
	// Confs[c][i] is the softmax confidence of the i-th image's prediction.
	// Black-box scorers ignore it; the soft-label confidence baseline
	// thresholds on it.
	Confs [][]float64
}

// NewTemplate allocates an empty template.
func NewTemplate(classes int, events []hpc.Event) *Template {
	return &Template{
		Events:  events,
		Classes: classes,
		Rows:    make([][][]float64, classes),
		Confs:   make([][]float64, classes),
	}
}

// Add appends one measured image to category c.
func (t *Template) Add(c int, counts hpc.Counts, conf float64) {
	row := make([]float64, len(t.Events))
	for n, e := range t.Events {
		row[n] = counts.Get(e)
	}
	t.Rows[c] = append(t.Rows[c], row)
	t.Confs[c] = append(t.Confs[c], conf)
}

// Column extracts 𝒟_c^n, the per-image means of one event in one category.
func (t *Template) Column(c, n int) []float64 {
	col := make([]float64, len(t.Rows[c]))
	for i, row := range t.Rows[c] {
		col[i] = row[n]
	}
	return col
}

// Measurements reconstructs category c's template rows as Measurement
// values, letting detector fitting score template data through the same
// code path as online queries.
func (t *Template) Measurements(c int) []Measurement {
	ms := make([]Measurement, len(t.Rows[c]))
	for i, row := range t.Rows[c] {
		var counts hpc.Counts
		for n, e := range t.Events {
			counts[e] = row[n]
		}
		conf := 0.0
		if i < len(t.Confs[c]) {
			conf = t.Confs[c][i]
		}
		ms[i] = Measurement{Pred: c, TrueLabel: c, Counts: counts, Conf: conf}
	}
	return ms
}

// BuildTemplate measures every validation image and buckets it under its
// *predicted* category — the only label a hard-label defender observes.
// Measurement fans out over m.Workers; template rows keep input order.
func BuildTemplate(m *Measurer, validation []data.Sample, classes int, events []hpc.Event) *Template {
	t := NewTemplate(classes, events)
	for _, mm := range MeasureSet(m, validation) {
		t.Add(mm.Pred, mm.Counts, mm.Conf)
	}
	return t
}
