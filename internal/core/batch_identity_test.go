package core

import (
	"testing"

	"advhunter/internal/engine"
	"advhunter/internal/tensor"
)

// TestBatchIdentityMeasureCore pins the batched measurement contract: for the
// same (index, input) stream, MeasureBatchCached must return exactly what a
// sequential MeasureAtCached loop returns — measurement by measurement, hit
// flag by hit flag — including in-batch revisits of the same input (the
// sequential loop hits the cache on a revisit because the first occurrence's
// Put lands before the second's Get; the batched dedupe reproduces that).
func TestBatchIdentityMeasureCore(t *testing.T) {
	samples, m := detFixture()
	ref := NewMeasurer(engine.NewDefault(m.Clone()), 42)
	bat := NewMeasurer(engine.NewDefault(m.Clone()), 42)

	// Revisit-heavy stream: sample order 0,1,0,2,1,0,3,2 under fresh indices.
	order := []int{0, 1, 0, 2, 1, 0, 3, 2}
	n := len(order)
	idxs := make([]uint64, n)
	xs := make([]*tensor.Tensor, n)
	for i, si := range order {
		idxs[i] = uint64(i)
		xs[i] = samples[si].X
	}

	refCache := NewTruthCache(8)
	batCache := NewTruthCache(8)
	wantM := make([]Measurement, n)
	wantH := make([]bool, n)
	for i := range order {
		wantM[i], wantH[i] = ref.MeasureAtCached(refCache, idxs[i], xs[i])
	}
	gotM := make([]Measurement, n)
	gotH := make([]bool, n)
	bat.MeasureBatchCached(batCache, idxs, xs, gotM, gotH)
	for i := range order {
		if gotM[i] != wantM[i] {
			t.Fatalf("step %d (sample %d): batched measurement diverged:\nbatch:      %+v\nsequential: %+v",
				i, order[i], gotM[i], wantM[i])
		}
		if gotH[i] != wantH[i] {
			t.Fatalf("step %d: batched hit %v, sequential %v", i, gotH[i], wantH[i])
		}
	}
	// The caches must hold the same working set afterwards (the internal
	// Get/Put stats may differ: the batched dedupe answers in-batch revisits
	// without a cache round-trip, which is exactly why the hit flags above —
	// what the serve counters observe — are the contract, not Stats).
	if rl, bl := refCache.Len(), batCache.Len(); rl != bl {
		t.Fatalf("cache residency diverged: batch %d entries, sequential %d", bl, rl)
	}

	// Second batch over a warm cache: every entry must hit and still match.
	for i := range idxs {
		idxs[i] += 100
		wantM[i], wantH[i] = ref.MeasureAtCached(refCache, idxs[i], xs[i])
	}
	bat.MeasureBatchCached(batCache, idxs, xs, gotM, gotH)
	for i := range order {
		if !gotH[i] {
			t.Fatalf("step %d: warm-cache batch missed", i)
		}
		if gotM[i] != wantM[i] {
			t.Fatalf("step %d: warm-cache batched measurement diverged", i)
		}
	}

	// nil cache disables memoisation but not batching: results still match the
	// sequential nil-cache loop, and nothing reports a hit.
	for i := range idxs {
		idxs[i] += 100
		wantM[i], _ = ref.MeasureAtCached(nil, idxs[i], xs[i])
	}
	bat.MeasureBatchCached(nil, idxs, xs, gotM, gotH)
	for i := range order {
		if gotH[i] {
			t.Fatalf("step %d: nil-cache batch reported a hit", i)
		}
		if gotM[i] != wantM[i] {
			t.Fatalf("step %d: nil-cache batched measurement diverged", i)
		}
	}
}

// TestBatchIdentityMeasureCoreWidths sweeps batch widths (including the
// width-1 degenerate case) against the sequential path on one shared cache
// per measurer, interleaving widths so scratch reuse across differently-sized
// batches is exercised.
func TestBatchIdentityMeasureCoreWidths(t *testing.T) {
	samples, m := detFixture()
	ref := NewMeasurer(engine.NewDefault(m.Clone()), 42)
	bat := NewMeasurer(engine.NewDefault(m.Clone()), 42)
	refCache := NewTruthCache(16)
	batCache := NewTruthCache(16)

	next := uint64(0)
	for _, n := range []int{3, 1, 8, 3, 5} {
		idxs := make([]uint64, n)
		xs := make([]*tensor.Tensor, n)
		for i := 0; i < n; i++ {
			idxs[i] = next
			xs[i] = samples[int(next)%len(samples)].X
			next++
		}
		want := make([]Measurement, n)
		wantH := make([]bool, n)
		for i := range idxs {
			want[i], wantH[i] = ref.MeasureAtCached(refCache, idxs[i], xs[i])
		}
		got := make([]Measurement, n)
		gotH := make([]bool, n)
		bat.MeasureBatchCached(batCache, idxs, xs, got, gotH)
		for i := range idxs {
			if got[i] != want[i] || gotH[i] != wantH[i] {
				t.Fatalf("width %d, index %d: batched (%+v, %v), sequential (%+v, %v)",
					n, idxs[i], got[i], gotH[i], want[i], wantH[i])
			}
		}
	}
}
