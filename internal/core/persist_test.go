package core

import (
	"os"
	"path/filepath"
	"testing"

	"advhunter/internal/persist"
	"advhunter/internal/uarch/hpc"
)

// TestDetectorRoundTrip: a saved-then-loaded detector must agree exactly
// with the in-memory one on every clean and adversarial measurement — same
// scores bit-for-bit, same flags — because serving loads the artifact
// instead of refitting.
func TestDetectorRoundTrip(t *testing.T) {
	f := getE2E(t)
	path := filepath.Join(t.TempDir(), "detector.gob")
	if err := SaveDetector(path, f.det); err != nil {
		t.Fatalf("SaveDetector: %v", err)
	}
	loaded, err := LoadDetector(path)
	if err != nil {
		t.Fatalf("LoadDetector: %v", err)
	}
	if len(loaded.Events) != len(f.det.Events) {
		t.Fatalf("loaded %d events, want %d", len(loaded.Events), len(f.det.Events))
	}
	for _, set := range [][]Measurement{f.clean, f.adv} {
		for i, m := range set {
			want := f.det.Detect(m.Pred, m.Counts)
			got := loaded.Detect(m.Pred, m.Counts)
			if want.Modelled != got.Modelled || want.PredictedClass != got.PredictedClass {
				t.Fatalf("measurement %d: modelled/class mismatch: %+v vs %+v", i, got, want)
			}
			for n := range want.Scores {
				if want.Scores[n] != got.Scores[n] {
					t.Fatalf("measurement %d event %d: score %v vs %v", i, n, got.Scores[n], want.Scores[n])
				}
				if want.Flags[n] != got.Flags[n] {
					t.Fatalf("measurement %d event %d: flag %v vs %v", i, n, got.Flags[n], want.Flags[n])
				}
			}
		}
	}
}

// TestDetectorLoadMissSemantics: missing, corrupted and stale-schema files
// must be misses (TryLoadDetector ok == false), never panics and never
// half-loaded detectors.
func TestDetectorLoadMissSemantics(t *testing.T) {
	dir := t.TempDir()

	if _, ok := TryLoadDetector(filepath.Join(dir, "absent.gob")); ok {
		t.Fatal("missing file must be a miss")
	}

	corrupt := filepath.Join(dir, "corrupt.gob")
	if err := os.WriteFile(corrupt, []byte("garbage bytes, not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := TryLoadDetector(corrupt); ok {
		t.Fatal("corrupt file must be a miss")
	}

	// A well-formed envelope written under a different schema number.
	stale := filepath.Join(dir, "stale.gob")
	if err := persist.Save(stale, DetectorSchema+1, detectorDTO{Events: hpc.CoreEvents()}); err != nil {
		t.Fatal(err)
	}
	if _, ok := TryLoadDetector(stale); ok {
		t.Fatal("stale-schema file must be a miss")
	}

	// A current-schema envelope whose payload is a different artifact class.
	foreign := filepath.Join(dir, "foreign.gob")
	if err := persist.Save(foreign, DetectorSchema, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := TryLoadDetector(foreign); ok {
		t.Fatal("foreign payload must be a miss")
	}
}

// TestDetectorTruncatedFileIsMiss: a torn write (simulated by truncation)
// must also read as a miss.
func TestDetectorTruncatedFileIsMiss(t *testing.T) {
	f := getE2E(t)
	path := filepath.Join(t.TempDir(), "detector.gob")
	if err := SaveDetector(path, f.det); err != nil {
		t.Fatalf("SaveDetector: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := TryLoadDetector(path); ok {
		t.Fatal("truncated file must be a miss")
	}
}

// TestFusionRoundTrip mirrors the scalar round trip for the fusion variant:
// scores and flags from a reloaded FusionDetector match exactly.
func TestFusionRoundTrip(t *testing.T) {
	f := getE2E(t)
	tpl := BuildTemplate(f.meas.Clone(), f.ds.Train, f.ds.Classes, hpc.CoreEvents())
	fus, err := FitFusion(tpl, []hpc.Event{hpc.CacheMisses, hpc.CacheReferences}, DefaultConfig())
	if err != nil {
		t.Fatalf("FitFusion: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fusion.gob")
	if err := SaveFusion(path, fus); err != nil {
		t.Fatalf("SaveFusion: %v", err)
	}
	loaded, ok := TryLoadFusion(path)
	if !ok {
		t.Fatal("TryLoadFusion missed a freshly saved file")
	}
	for i, m := range append(append([]Measurement(nil), f.clean...), f.adv...) {
		wantScore, wantFlag := fus.Detect(m.Pred, m.Counts)
		gotScore, gotFlag := loaded.Detect(m.Pred, m.Counts)
		if wantScore != gotScore || wantFlag != gotFlag {
			t.Fatalf("measurement %d: (%v,%v) vs (%v,%v)", i, gotScore, gotFlag, wantScore, wantFlag)
		}
	}
}

// TestMeasurerCloneAgrees: a cloned measurer must reproduce the original's
// MeasureAt exactly for the same sample index — the property serving's
// worker replicas rely on.
func TestMeasurerCloneAgrees(t *testing.T) {
	f := getE2E(t)
	clone := f.meas.Clone()
	for i := 0; i < 5 && i < len(f.ds.Test); i++ {
		x := f.ds.Test[i].X
		p1, c1 := f.meas.MeasureAt(uint64(i), x)
		p2, c2 := clone.MeasureAt(uint64(i), x)
		if p1 != p2 || c1 != c2 {
			t.Fatalf("sample %d: clone diverged: (%d,%v) vs (%d,%v)", i, p2, c2, p1, c1)
		}
	}
}
