// Package obs is the repository's observability layer: a dependency-free
// metrics registry rendered in Prometheus text exposition format, structured
// logging on log/slog with per-request id propagation, and lightweight
// tracing spans that turn pipeline-stage durations into histograms and debug
// log records.
//
// The registry is built for hot paths: metric handles are resolved once
// (a single map access under an RWMutex read lock) and then recorded with
// atomics only, so instrumenting a request costs a few uncontended atomic
// adds — no mutex is taken per observation, and scraping never blocks
// recording. The trade-off is the usual Prometheus-client one: a scrape is
// not a point-in-time snapshot across series, which monitoring tolerates by
// design (counters are monotone, rates smooth the skew).
//
// Two registry scopes are used across the repository: long-lived components
// with an HTTP surface (the serve layer) own a private Registry so tests and
// multiple instances never share series, while process-wide concerns — the
// experiment cache, build info — live on Default, which serving handlers
// chain onto their own exposition.
package obs

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Registry is a concurrent collection of metric families. The zero value is
// not usable; build with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	// constNames/constValues are appended to every rendered series — the
	// registry-scope identity labels (a cluster replica's "replica" label).
	// Render-time only: metric handles and hot-path recording never see them.
	constNames  []string
	constValues []string
}

// Default is the process-wide registry for series that are not owned by one
// component instance: experiment-cache traffic, build info. Servers render
// it after their own registry so one scrape sees both scopes.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// SetConstLabels attaches name/value pairs rendered on every series of the
// registry — the identity of a registry scope when several instances of the
// same component are scraped through one page (each cluster replica's serve
// registry carries replica="<i>"). It must be called before the first scrape
// and panics on malformed names or a dangling value, like registration does.
// Recording handles are unaffected: the pairs exist only in the exposition.
func (r *Registry) SetConstLabels(pairs ...string) {
	if len(pairs)%2 != 0 {
		panic("obs: SetConstLabels needs name/value pairs")
	}
	names := make([]string, 0, len(pairs)/2)
	values := make([]string, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if err := checkLabelName(pairs[i]); err != nil {
			panic(fmt.Sprintf("obs: %v", err))
		}
		names = append(names, pairs[i])
		values = append(values, pairs[i+1])
	}
	r.mu.Lock()
	r.constNames, r.constValues = names, values
	r.mu.Unlock()
}

// metric family kinds, in exposition-format spelling.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric family and its children (one per label-value
// combination).
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
	sampled  func() float64 // gauge families registered via GaugeFunc
}

// child is one series: a concrete label-value assignment and its value cells.
// Exactly one of the value groups is used, per the family kind.
type child struct {
	labelValues []string

	count counterCell // counters; histogram _count
	gauge gaugeCell
	bins  []counterCell // histogram per-bucket (non-cumulative) counts
	sum   gaugeCell     // histogram _sum
}

// register returns the family for name, creating it on first use. Re-registering
// an existing name with a different kind, help, label set or bucket layout is a
// programming error and panics — silent divergence would corrupt the exposition.
func (r *Registry) register(name, help, kind string, labels []string, buckets []float64) *family {
	if err := checkMetricName(name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	for _, l := range labels {
		if err := checkLabelName(l); err != nil {
			panic(fmt.Sprintf("obs: metric %s: %v", name, err))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.help != help || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different definition", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// childFor resolves (creating if needed) the series for one label-value
// assignment. The fast path is a read-locked map hit; callers are expected to
// cache the returned handle when instrumenting hot paths.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		c.bins = make([]counterCell, len(f.buckets))
	}
	f.children[key] = c
	return c
}

// Counter registers (or retrieves) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or retrieves) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// GaugeFunc registers an unlabelled gauge whose value is sampled by fn at
// scrape time — the natural shape for instantaneous properties owned by the
// instrumented component (queue depth, pool size).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.sampled = fn
	f.mu.Unlock()
}

// Histogram registers (or retrieves) a histogram family with the given
// upper bucket bounds (an implicit +Inf bucket is always rendered).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: metric %s: buckets must be strictly increasing", name))
		}
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// Handler returns an http.Handler that renders each registry in order under
// the Prometheus text content type. Passing a registry twice (or Default
// alongside itself) renders it once.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		seen := make(map[*Registry]bool, len(regs))
		for _, r := range regs {
			if r == nil || seen[r] {
				continue
			}
			seen[r] = true
			r.WriteTo(w)
		}
	})
}

// MergedHandler returns an http.Handler rendering WriteMerged over the
// registries — the cluster-tier /metrics surface, where each replica's
// registry repeats the serve families under its own replica label and the
// exposition still needs one family block per name.
func MergedHandler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteMerged(w, regs...)
	})
}

// DurationBuckets is the default histogram layout for pipeline-stage and
// task durations: roughly logarithmic from 100 µs to 10 s.
var DurationBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
