package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ctxKey keys the values this package threads through contexts.
type ctxKey int

const (
	requestIDKey ctxKey = iota
	tracerKey
	traceKey
)

// WithRequestID returns a context carrying a request id. Every log record
// emitted through a logger built by NewLogger with that context attaches it
// as the request_id attribute, and spans started under it tag their debug
// records the same way — one grep (or jq filter) follows a request across
// layers.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom extracts the request id, if any.
func RequestIDFrom(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(requestIDKey).(string)
	return id, ok
}

// ValidRequestID reports whether s is acceptable as a caller-supplied
// X-Request-ID: 1–128 characters from [0-9A-Za-z._-]. Anything else — empty,
// oversized, or carrying header-hostile bytes — is rejected and the server
// generates its own id instead.
func ValidRequestID(s string) bool {
	if len(s) == 0 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z',
			c == '-', c == '.', c == '_':
		default:
			return false
		}
	}
	return true
}

// ctxHandler decorates an slog.Handler with context-carried attributes.
type ctxHandler struct{ slog.Handler }

func (h ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if id, ok := RequestIDFrom(ctx); ok {
		r.AddAttrs(slog.String("request_id", id))
	}
	return h.Handler.Handle(ctx, r)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{h.Handler.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{h.Handler.WithGroup(name)}
}

// ParseLevel maps a -log-level flag value onto an slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a structured logger writing to w. format is "json"
// (machine-readable, the operational default) or "text" (human-readable
// key=value). The handler is context-aware: records carry request_id when
// the logging context has one.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "json", "":
		h = slog.NewJSONHandler(w, opts)
	case "text":
		h = slog.NewTextHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want json or text)", format)
	}
	return slog.New(ctxHandler{h}), nil
}
