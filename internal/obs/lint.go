package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Lint is a strict line-level validator for Prometheus text exposition
// format (version 0.0.4). It enforces, beyond bare parseability:
//
//   - metric and label names match the exposition grammar;
//   - at most one # HELP and one # TYPE per family, both before its series,
//     with a known type;
//   - all series of a family are contiguous (a family never restarts after
//     another family's lines);
//   - no duplicate series (same name and label set);
//   - label values are well-formed quoted strings with only the legal
//     escapes (\\, \", \n);
//   - histogram families expose only _bucket/_sum/_count series, bucket
//     counts are cumulative (non-decreasing in le order), the +Inf bucket is
//     present and equals _count, and every le value parses as a float.
//
// It returns nil for valid output and a line-numbered error otherwise. The
// registry's WriteTo output passes by construction; the serve tests run it
// over the full /metrics body.
func Lint(data []byte) error {
	l := &linter{
		families: make(map[string]*lintFamily),
		series:   make(map[string]bool),
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if err := l.line(line); err != nil {
			return fmt.Errorf("line %d: %w (%q)", lineNo, err, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return l.finish()
}

type lintFamily struct {
	name     string
	typ      string // "" until # TYPE seen
	help     bool
	series   bool // any series line seen
	closed   bool // another family's series started after this one's
	hist     map[string]*histSeries
	histDone bool
}

// histSeries accumulates one histogram child (labels minus le) for the
// cumulative-bucket and +Inf checks.
type histSeries struct {
	buckets  []histBucket
	infCount uint64
	infSeen  bool
	count    uint64
	countOK  bool
	sumOK    bool
}

type histBucket struct {
	le    float64
	count uint64
}

type linter struct {
	families map[string]*lintFamily
	series   map[string]bool
	current  string // family of the most recent series line
}

func (l *linter) family(name string) *lintFamily {
	f, ok := l.families[name]
	if !ok {
		f = &lintFamily{name: name, hist: make(map[string]*histSeries)}
		l.families[name] = f
	}
	return f
}

func (l *linter) line(line string) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return l.comment(line)
	}
	return l.sample(line)
}

// comment handles # HELP / # TYPE / free comments.
func (l *linter) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // "#" alone or "#foo": a plain comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("HELP without a metric name")
		}
		name := fields[2]
		if err := checkMetricName(name); err != nil {
			return err
		}
		f := l.family(name)
		if f.help {
			return fmt.Errorf("second HELP for %s", name)
		}
		if f.series {
			return fmt.Errorf("HELP for %s after its series", name)
		}
		f.help = true
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE needs a metric name and a type")
		}
		name, typ := fields[2], fields[3]
		if err := checkMetricName(name); err != nil {
			return err
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q for %s", typ, name)
		}
		f := l.family(name)
		if f.typ != "" {
			return fmt.Errorf("second TYPE for %s", name)
		}
		if f.series {
			return fmt.Errorf("TYPE for %s after its series", name)
		}
		f.typ = typ
	}
	return nil
}

// sample parses one series line: name[{labels}] value [timestamp].
func (l *linter) sample(line string) error {
	name, rest, err := splitName(line)
	if err != nil {
		return err
	}
	labels, rest, err := parseLabels(rest)
	if err != nil {
		return err
	}
	rest = strings.TrimLeft(rest, " ")
	valueField, tsField, _ := strings.Cut(rest, " ")
	if valueField == "" {
		return fmt.Errorf("missing value")
	}
	value, err := parseValue(valueField)
	if err != nil {
		return err
	}
	if tsField != "" {
		if _, err := strconv.ParseInt(strings.TrimSpace(tsField), 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", tsField)
		}
	}

	famName := name
	suffix := ""
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base == name {
			continue
		}
		if f, ok := l.families[base]; ok && f.typ == "histogram" {
			famName, suffix = base, s
		}
		break
	}
	f := l.family(famName)
	if f.closed {
		return fmt.Errorf("family %s reappears after other families' series", famName)
	}
	if l.current != "" && l.current != famName {
		l.families[l.current].closed = true
	}
	l.current = famName
	f.series = true

	if f.typ == "histogram" && suffix == "" {
		return fmt.Errorf("histogram %s exposes a bare series (want _bucket/_sum/_count)", famName)
	}

	// Duplicate detection over the canonical (sorted) label set.
	canon := make([]string, 0, len(labels))
	seenLabel := make(map[string]bool, len(labels))
	for _, kv := range labels {
		if seenLabel[kv[0]] {
			return fmt.Errorf("duplicate label %q", kv[0])
		}
		seenLabel[kv[0]] = true
		canon = append(canon, kv[0]+"="+kv[1])
	}
	sortStrings(canon)
	key := name + "{" + strings.Join(canon, ",") + "}"
	if l.series[key] {
		return fmt.Errorf("duplicate series %s", key)
	}
	l.series[key] = true

	if f.typ == "histogram" {
		return l.histSample(f, suffix, labels, value)
	}
	return nil
}

// histSample folds one _bucket/_sum/_count line into its child accumulator.
func (l *linter) histSample(f *lintFamily, suffix string, labels [][2]string, value float64) error {
	var le string
	rest := make([]string, 0, len(labels))
	for _, kv := range labels {
		if kv[0] == "le" {
			le = kv[1]
			continue
		}
		rest = append(rest, kv[0]+"="+kv[1])
	}
	sortStrings(rest)
	child := strings.Join(rest, ",")
	hs, ok := f.hist[child]
	if !ok {
		hs = &histSeries{}
		f.hist[child] = hs
	}
	switch suffix {
	case "_bucket":
		if le == "" {
			return fmt.Errorf("histogram %s bucket without le label", f.name)
		}
		if value < 0 || value != float64(uint64(value)) {
			return fmt.Errorf("histogram %s bucket count %g is not a non-negative integer", f.name, value)
		}
		if le == "+Inf" {
			hs.infSeen = true
			hs.infCount = uint64(value)
			return nil
		}
		ub, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("histogram %s: bad le %q", f.name, le)
		}
		hs.buckets = append(hs.buckets, histBucket{le: ub, count: uint64(value)})
	case "_sum":
		hs.sumOK = true
	case "_count":
		if value < 0 || value != float64(uint64(value)) {
			return fmt.Errorf("histogram %s count %g is not a non-negative integer", f.name, value)
		}
		hs.count = uint64(value)
		hs.countOK = true
	}
	return nil
}

// finish runs the whole-family checks that need the full input.
func (l *linter) finish() error {
	for name, f := range l.families {
		if f.typ != "histogram" {
			continue
		}
		for child, hs := range f.hist {
			where := name
			if child != "" {
				where = name + "{" + child + "}"
			}
			if !hs.infSeen {
				return fmt.Errorf("histogram %s: missing +Inf bucket", where)
			}
			if !hs.countOK || !hs.sumOK {
				return fmt.Errorf("histogram %s: missing _sum or _count", where)
			}
			prev := uint64(0)
			prevLe := ""
			for _, b := range hs.buckets {
				if b.count < prev {
					return fmt.Errorf("histogram %s: bucket le=%g count %d below previous bucket %s (%d) — not cumulative",
						where, b.le, b.count, prevLe, prev)
				}
				prev = b.count
				prevLe = strconv.FormatFloat(b.le, 'g', -1, 64)
			}
			if hs.infCount < prev {
				return fmt.Errorf("histogram %s: +Inf bucket %d below last bucket %d", where, hs.infCount, prev)
			}
			if hs.infCount != hs.count {
				return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", where, hs.infCount, hs.count)
			}
		}
	}
	return nil
}

// splitName splits a series line into the metric name and the remainder.
func splitName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("series line without a value")
	}
	name = line[:i]
	if err := checkMetricName(name); err != nil {
		return "", "", err
	}
	return name, line[i:], nil
}

// parseLabels parses an optional {k="v",...} block, returning pairs in input
// order and the remainder of the line.
func parseLabels(s string) ([][2]string, string, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, nil
	}
	s = s[1:]
	var out [][2]string
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return out, s[1:], nil
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		lname := strings.TrimSpace(s[:eq])
		if err := checkLabelName(lname); err != nil {
			return nil, "", err
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: unquoted value", lname)
		}
		val, rest, err := parseQuoted(s)
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", lname, err)
		}
		out = append(out, [2]string{lname, val})
		s = rest
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if !strings.HasPrefix(s, "}") {
			return nil, "", fmt.Errorf("label %s: expected ',' or '}'", lname)
		}
	}
}

// parseQuoted consumes a double-quoted string with \\, \" and \n escapes.
func parseQuoted(s string) (val, rest string, err error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("illegal escape \\%c", s[i+1])
			}
			i += 2
		case '"':
			return b.String(), s[i+1:], nil
		case '\n':
			return "", "", fmt.Errorf("newline inside label value")
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// parseValue parses a sample value, accepting the Prometheus special floats.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN", "Nan":
		return strconv.ParseFloat("NaN", 64)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// checkMetricName enforces [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabelName enforces [a-zA-Z_][a-zA-Z0-9_]*.
func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid label name %q", name)
		}
	}
	return nil
}

// sortStrings is a tiny insertion sort — label sets are short, and keeping
// the linter free of sort.* keeps its allocations predictable.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
