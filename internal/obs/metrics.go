package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// counterCell is a monotone integer cell.
type counterCell struct{ v atomic.Uint64 }

// gaugeCell is a float64 cell stored as IEEE-754 bits; Add is a CAS loop.
type gaugeCell struct{ bits atomic.Uint64 }

func (g *gaugeCell) load() float64   { return math.Float64frombits(g.bits.Load()) }
func (g *gaugeCell) store(v float64) { g.bits.Store(math.Float64bits(v)) }
func (g *gaugeCell) add(d float64) {
	for {
		old := g.bits.Load()
		nu := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nu) {
			return
		}
	}
}

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With resolves the counter for one label-value assignment. Hot paths should
// resolve once and keep the handle.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{c: v.f.childFor(labelValues)}
}

// Counter is one monotonically increasing series.
type Counter struct{ c *child }

// Inc adds one.
func (c *Counter) Inc() { c.c.count.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.c.count.v.Add(n) }

// Value returns the current count — for run summaries and tests, not for
// exposition (WriteTo renders the whole registry).
func (c *Counter) Value() uint64 { return c.c.count.v.Load() }

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With resolves the gauge for one label-value assignment.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{c: v.f.childFor(labelValues)}
}

// Gauge is one series that can go up and down.
type Gauge struct{ c *child }

// Set stores v.
func (g *Gauge) Set(v float64) { g.c.gauge.store(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) { g.c.gauge.add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.c.gauge.add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.c.gauge.add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.c.gauge.load() }

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With resolves the histogram for one label-value assignment.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{buckets: v.f.buckets, c: v.f.childFor(labelValues)}
}

// Histogram is one series of bucketed observations.
type Histogram struct {
	buckets []float64
	c       *child
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~16); linear scan beats binary search at this size
	// and keeps the loop branch-predictable.
	for i, ub := range h.buckets {
		if v <= ub {
			h.c.bins[i].v.Add(1)
			break
		}
	}
	h.c.count.v.Add(1)
	h.c.sum.add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.c.count.v.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.c.sum.load() }
