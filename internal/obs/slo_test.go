package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestLatencyBurnRule: not ready without observations; breaches when the
// windowed quantile crosses the threshold.
func TestLatencyBurnRule(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("advhunter_request_duration_seconds", "lat.", []float64{0.01, 0.1, 1}).With()
	rec := NewRecorder(RecorderConfig{}, reg)
	defer rec.Stop()

	rule := &LatencyBurnRule{RuleName: "latency-p99", Family: "advhunter_request_duration_seconds",
		Q: 0.99, Threshold: 0.05}

	if st := rule.Eval(rec, time.Now()); st.Ready {
		t.Fatalf("ready with no observations: %+v", st)
	}

	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 20; i++ {
		h.Observe(0.005) // all under 0.01: p99 ≈ 0.0099 < 0.05
	}
	rec.Sample()
	if st := rule.Eval(rec, time.Now()); !st.Ready || st.Breach {
		t.Fatalf("fast traffic judged breaching: %+v", st)
	}

	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 200; i++ {
		h.Observe(0.5) // p99 lands in (0.1, 1]
	}
	rec.Sample()
	if st := rule.Eval(rec, time.Now()); !st.Ready || !st.Breach {
		t.Fatalf("slow traffic not breaching: %+v", st)
	}
}

// TestErrorRateRule: the 429/5xx fraction judges deterministically (both
// rates share the window), respects MinRate gating and custom classifiers.
func TestErrorRateRule(t *testing.T) {
	reg := NewRegistry()
	req := reg.Counter("advhunter_requests_total", "reqs.", "code")
	// Materialise the children before the recorder's first sample: a series
	// needs two samples in the window before it contributes a rate.
	for _, code := range []string{"200", "429", "503", "418"} {
		req.With(code)
	}
	rec := NewRecorder(RecorderConfig{}, reg)
	defer rec.Stop()

	rule := &ErrorRateRule{RuleName: "error-rate", Family: "advhunter_requests_total",
		Threshold: 0.1, MinRate: 0.001}

	if st := rule.Eval(rec, time.Now()); st.Ready {
		t.Fatalf("ready with no traffic: %+v", st)
	}

	time.Sleep(2 * time.Millisecond)
	req.With("200").Add(95)
	req.With("429").Add(3)
	req.With("503").Add(2)
	rec.Sample()
	st := rule.Eval(rec, time.Now())
	if !st.Ready || st.Breach {
		t.Fatalf("5%% errors judged breaching: %+v", st)
	}
	if st.Value < 0.049 || st.Value > 0.051 {
		t.Fatalf("error fraction = %v, want 0.05", st.Value)
	}

	time.Sleep(2 * time.Millisecond)
	req.With("429").Add(100)
	rec.Sample()
	if st := rule.Eval(rec, time.Now()); !st.Ready || !st.Breach {
		t.Fatalf("429 flood not breaching: %+v", st)
	}

	// A custom classifier changes what counts as an error.
	benign := &ErrorRateRule{RuleName: "teapots", Family: "advhunter_requests_total",
		Threshold: 0.5, MinRate: 0.001, ErrorCode: func(code string) bool { return code == "418" }}
	if st := benign.Eval(rec, time.Now()); !st.Ready || st.Breach {
		t.Fatalf("custom classifier misjudged: %+v", st)
	}
}

// TestDriftRule: the attack signal — fits a clean baseline over the first
// qualifying evaluations, fires when the flag rate ramps, resolves when
// traffic cleans up, and refuses to judge starved evaluations.
func TestDriftRule(t *testing.T) {
	reg := NewRegistry()
	scans := reg.Counter("advhunter_scans_total", "scans.", "backend").With("gmm")
	flagged := reg.Counter("advhunter_flagged_total", "flagged.", "backend").With("gmm")
	rec := NewRecorder(RecorderConfig{}, reg)
	defer rec.Stop()

	rule := &DriftRule{RuleName: "detect-drift",
		Scans: "advhunter_scans_total", Flagged: "advhunter_flagged_total",
		FitEvals: 3, Sigma: 3, StdFloor: 0.02, MinScans: 20}
	now := time.Now()

	// First eval only anchors the cursors.
	if st := rule.Eval(rec, now); st.Ready {
		t.Fatalf("first eval judged: %+v", st)
	}

	// Starved eval: 5 new scans < MinScans — no judgement, no cursor move.
	scans.Add(5)
	rec.Sample()
	if st := rule.Eval(rec, now); st.Ready {
		t.Fatalf("starved eval judged: %+v", st)
	}

	// Three clean rounds at a 5% flag rate fit the baseline.
	for i := 0; i < 3; i++ {
		scans.Add(100)
		flagged.Add(5)
		rec.Sample()
		if st := rule.Eval(rec, now); st.Ready {
			t.Fatalf("fit round %d judged: %+v", i, st)
		}
	}
	mean, std, ok := rule.Baseline()
	if !ok {
		t.Fatal("baseline not frozen after FitEvals rounds")
	}
	// Round 1 includes the 5 unflagged starved scans: 5/105 ≈ 0.0476; the
	// rest are exactly 0.05. Mean sits just under 0.05, std near zero.
	if mean < 0.04 || mean > 0.06 || std > 0.01 {
		t.Fatalf("baseline = %v ± %v", mean, std)
	}

	// Clean traffic after the fit: within mean + 3·max(std, 0.02).
	scans.Add(100)
	flagged.Add(6)
	rec.Sample()
	if st := rule.Eval(rec, now); !st.Ready || st.Breach {
		t.Fatalf("clean round judged breaching: %+v", st)
	}

	// Attack ramp: 40% flag rate, far above the band.
	scans.Add(100)
	flagged.Add(40)
	rec.Sample()
	if st := rule.Eval(rec, now); !st.Ready || !st.Breach {
		t.Fatalf("attack ramp not breaching: %+v", st)
	}

	// Back to clean: resolves.
	scans.Add(100)
	flagged.Add(5)
	rec.Sample()
	if st := rule.Eval(rec, now); !st.Ready || st.Breach {
		t.Fatalf("post-attack clean round still breaching: %+v", st)
	}
}

// TestDriftRuleExplicitBaseline: a given CleanRate/CleanStd skips fitting.
func TestDriftRuleExplicitBaseline(t *testing.T) {
	reg := NewRegistry()
	scans := reg.Counter("s_total", "s.").With()
	flagged := reg.Counter("f_total", "f.").With()
	rec := NewRecorder(RecorderConfig{}, reg)
	defer rec.Stop()

	rule := &DriftRule{RuleName: "d", Scans: "s_total", Flagged: "f_total",
		CleanRate: 0.05, CleanStd: 0.01, MinScans: 10}
	now := time.Now()
	rule.Eval(rec, now) // anchor cursors

	scans.Add(100)
	flagged.Add(30)
	rec.Sample()
	st := rule.Eval(rec, now)
	if !st.Ready || !st.Breach {
		t.Fatalf("explicit baseline did not judge immediately: %+v", st)
	}
	// Threshold = 0.05 + 3·max(0.01, 0.02) = 0.11.
	if st.Threshold < 0.109 || st.Threshold > 0.111 {
		t.Fatalf("threshold = %v, want 0.11", st.Threshold)
	}
}

// fakeRule drives the engine deterministically.
type fakeRule struct {
	name   string
	status RuleStatus
}

func (r *fakeRule) Name() string                         { return r.name }
func (r *fakeRule) Describe() string                     { return "fake" }
func (r *fakeRule) Eval(*Recorder, time.Time) RuleStatus { return r.status }
func (r *fakeRule) set(breach, ready bool, v, thr float64) {
	r.status = RuleStatus{Value: v, Threshold: thr, Breach: breach, Ready: ready}
}

// TestAlertEngineTransitions: ok → pending → firing with For hysteresis,
// resolve on recovery, gauge/counter/log side effects, and not-ready holds.
func TestAlertEngineTransitions(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(RecorderConfig{}, NewRegistry())
	defer rec.Stop()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	rule := &fakeRule{name: "r1"}
	eng := NewAlertEngine(reg, rec, []Rule{rule}, AlertConfig{For: 10 * time.Millisecond, Logger: logger})
	defer eng.Stop()

	now := time.Now()
	rule.set(true, true, 0.5, 0.1)
	eng.EvalOnce(now)
	if eng.Firing("r1") {
		t.Fatal("fired before For elapsed")
	}
	views := eng.Snapshot()
	if views[0].State != AlertPending {
		t.Fatalf("state = %q, want pending", views[0].State)
	}

	// Not-ready mid-pending holds the state rather than resetting it.
	rule.set(false, false, 0, 0)
	eng.EvalOnce(now.Add(5 * time.Millisecond))
	if eng.Snapshot()[0].State != AlertPending {
		t.Fatal("not-ready eval reset pending")
	}

	rule.set(true, true, 0.5, 0.1)
	eng.EvalOnce(now.Add(15 * time.Millisecond))
	if !eng.Firing("r1") {
		t.Fatal("did not fire after For elapsed")
	}
	if !strings.Contains(logBuf.String(), "alert firing") {
		t.Fatalf("no firing transition log:\n%s", logBuf.String())
	}

	var b strings.Builder
	reg.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`advhunter_alert_active{rule="r1"} 1`,
		`advhunter_alert_fired_total{rule="r1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	rule.set(false, true, 0.01, 0.1)
	eng.EvalOnce(now.Add(20 * time.Millisecond))
	if eng.Firing("r1") {
		t.Fatal("did not resolve")
	}
	if !strings.Contains(logBuf.String(), "alert resolved") {
		t.Fatalf("no resolved transition log:\n%s", logBuf.String())
	}
	b.Reset()
	reg.WriteTo(&b)
	if !strings.Contains(b.String(), `advhunter_alert_active{rule="r1"} 0`) {
		t.Fatalf("active gauge not cleared:\n%s", b.String())
	}
}

// TestAlertEngineImmediateFire: For = 0 fires on the first breaching eval.
func TestAlertEngineImmediateFire(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(RecorderConfig{}, NewRegistry())
	defer rec.Stop()
	rule := &fakeRule{name: "fast"}
	eng := NewAlertEngine(reg, rec, []Rule{rule}, AlertConfig{})
	defer eng.Stop()
	rule.set(true, true, 1, 0.1)
	eng.EvalOnce(time.Now())
	if !eng.Firing("fast") {
		t.Fatal("For=0 did not fire immediately")
	}
}

// TestAlertsHandler: a manual engine evaluates on GET and serves the rule
// states as JSON.
func TestAlertsHandler(t *testing.T) {
	reg := NewRegistry()
	scans := reg.Counter("s_total", "s.").With()
	flagged := reg.Counter("f_total", "f.").With()
	rec := NewRecorder(RecorderConfig{}, reg)
	defer rec.Stop()
	rule := &DriftRule{RuleName: "drift", Scans: "s_total", Flagged: "f_total",
		CleanRate: 0.05, CleanStd: 0.01, MinScans: 10}
	eng := NewAlertEngine(reg, rec, []Rule{rule}, AlertConfig{})
	defer eng.Stop()

	get := func() []AlertView {
		t.Helper()
		rr := httptest.NewRecorder()
		eng.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/alerts", nil))
		var page struct {
			Alerts []AlertView `json:"alerts"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
			t.Fatalf("alerts page not JSON: %v\n%s", err, rr.Body.String())
		}
		return page.Alerts
	}

	if alerts := get(); len(alerts) != 1 || alerts[0].State != AlertOK {
		t.Fatalf("initial page = %+v", alerts)
	}
	scans.Add(100)
	flagged.Add(40)
	// The manual handler samples and evaluates per GET — no test-side Sample.
	alerts := get()
	if alerts[0].State != AlertFiring || alerts[0].FiredTotal != 1 {
		t.Fatalf("after ramp = %+v", alerts)
	}
	if alerts[0].Describe == "" {
		t.Fatal("rule description missing from page")
	}
}
