package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestEachSeriesMatchesRender: the programmatic walk and the text renderer
// agree on series identity — every EachSeries key appears verbatim in the
// rendered exposition, const labels included. The flight recorder depends on
// this: its keys must be the keys workload.ParseMetrics would produce.
func TestEachSeriesMatchesRender(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plain_total", "plain.").With().Add(3)
	reg.Counter("coded_total", "labelled.", "code").With("200").Add(7)
	reg.Gauge("depth", "gauge.").With().Set(2)
	reg.GaugeFunc("sampled", "sampled gauge.", func() float64 { return 5 })
	reg.Histogram("lat_seconds", "hist.", []float64{0.1, 1}).With().Observe(0.5)
	reg.SetConstLabels("replica", "3")

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	var n int
	reg.EachSeries(func(s SeriesSample) {
		n++
		if !strings.Contains(out, s.Key+" ") {
			t.Errorf("EachSeries key %q not in rendered exposition:\n%s", s.Key, out)
		}
		if s.Key == `coded_total{code="200",replica="3"}` && s.Value != 7 {
			t.Errorf("coded_total value = %v, want 7", s.Value)
		}
	})
	// 1 plain + 1 coded + 1 gauge + 1 sampled + (2 finite + Inf buckets + sum + count) = 9
	if n != 9 {
		t.Fatalf("EachSeries visited %d series, want 9", n)
	}
}

// TestEachSeriesHistogramShape: histogram component samples share a group,
// buckets are cumulative, and the +Inf bucket equals the count.
func TestEachSeriesHistogramShape(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "hist.", []float64{0.1, 1}).With()
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	got := map[float64]float64{}
	var sum, count float64
	reg.EachSeries(func(s SeriesSample) {
		switch s.Suffix {
		case "bucket":
			got[s.Le] = s.Value
		case "sum":
			sum = s.Value
		case "count":
			count = s.Value
		}
		if s.Group != "h_seconds" {
			t.Errorf("group = %q, want h_seconds", s.Group)
		}
	})
	if got[0.1] != 1 || got[1] != 2 || got[math.Inf(1)] != 3 {
		t.Fatalf("cumulative buckets = %v", got)
	}
	if count != 3 || sum != 99.55 {
		t.Fatalf("sum/count = %v/%v", sum, count)
	}
}

// TestRecorderManualMode: with Interval <= 0 no goroutine runs; explicit
// Sample calls build the rings and Latest/LatestFamily read them back.
func TestRecorderManualMode(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("advhunter_scans_total", "scans.", "backend").With("gmm")
	c.Add(10)

	rec := NewRecorder(RecorderConfig{}, reg, nil, reg) // nil and dup skipped
	defer rec.Stop()

	if v, ok := rec.Latest(`advhunter_scans_total{backend="gmm"}`); !ok || v != 10 {
		t.Fatalf("Latest after construction = %v,%v; want 10,true", v, ok)
	}
	c.Add(5)
	rec.Sample()
	if v := rec.LatestFamily("advhunter_scans_total"); v != 15 {
		t.Fatalf("LatestFamily = %v, want 15", v)
	}
}

// TestRecorderRate: windowed counter rates difference first/last samples in
// the window; the error fraction (bad/total) is timing-free.
func TestRecorderRate(t *testing.T) {
	reg := NewRegistry()
	req := reg.Counter("advhunter_requests_total", "reqs.", "code")
	ok200 := req.With("200")
	bad429 := req.With("429")
	ok200.Add(10)

	rec := NewRecorder(RecorderConfig{}, reg)
	defer rec.Stop()

	time.Sleep(5 * time.Millisecond)
	ok200.Add(30) // +30
	bad429.Add(10)
	rec.Sample()
	time.Sleep(5 * time.Millisecond)
	bad429.Add(10) // +20 total bad
	rec.Sample()

	total := rec.RateFamily("advhunter_requests_total", time.Minute)
	if total <= 0 {
		t.Fatalf("total rate = %v, want > 0", total)
	}
	bad := rec.Rate(time.Minute, func(key string) bool {
		return strings.Contains(key, `code="429"`)
	})
	// Both rates cover the same elapsed span, so the fraction is exact:
	// 20 new 429s out of 50 new requests.
	if frac := bad / total; math.Abs(frac-0.4) > 1e-9 {
		t.Fatalf("error fraction = %v, want 0.4", frac)
	}
	// Outside any window: no rate.
	if v := rec.RateFamily("advhunter_requests_total", time.Nanosecond); v != 0 {
		t.Fatalf("rate over empty window = %v, want 0", v)
	}
}

// TestRecorderQuantile: bucket-delta quantiles interpolate inside the
// holding bucket, merge multiple groups, and return NaN with no data.
func TestRecorderQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "hist.", []float64{0.1, 0.5, 1}, "replica")
	h0 := h.With("0")
	h1 := h.With("1")

	rec := NewRecorder(RecorderConfig{}, reg)
	defer rec.Stop()

	if !math.IsNaN(rec.Quantile("lat_seconds", 0.5, time.Minute)) {
		t.Fatal("quantile with no observations should be NaN")
	}

	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 5; i++ {
		h0.Observe(0.05) // le=0.1 bucket
		h1.Observe(0.05)
	}
	rec.Sample()

	// 10 observations all inside (0, 0.1]; p50 rank=5 of 10 → 0.05.
	if got := rec.Quantile("lat_seconds", 0.5, time.Minute); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.05", got)
	}

	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 10; i++ {
		h0.Observe(5) // past the last finite bound
	}
	rec.Sample()
	// 20 observations, 10 past the widest bound: p99 lands in +Inf, reported
	// as the last finite bound.
	if got := rec.Quantile("lat_seconds", 0.99, time.Minute); got != 1 {
		t.Fatalf("p99 with tail past last bound = %v, want 1", got)
	}
}

// TestRecorderBackground: a positive interval runs the sampler; Stop halts
// it and is idempotent.
func TestRecorderBackground(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ticks_total", "ticks.").With()
	rec := NewRecorder(RecorderConfig{Interval: time.Millisecond, Samples: 8}, reg)
	c.Add(1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := rec.Latest("ticks_total"); ok && v == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background sampler never observed the increment")
		}
		time.Sleep(time.Millisecond)
	}
	rec.Stop()
	rec.Stop() // idempotent
}

// TestRecorderRingWrap: rings hold the last Samples points and the oldest
// fall off.
func TestRecorderRingWrap(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("w_total", "w.").With()
	rec := NewRecorder(RecorderConfig{Samples: 4}, reg)
	defer rec.Stop()
	for i := 0; i < 10; i++ {
		c.Inc()
		rec.Sample()
	}
	rec.mu.RLock()
	rs := rec.series["w_total"]
	rec.mu.RUnlock()
	if rs.size != 4 {
		t.Fatalf("ring size = %d, want 4", rs.size)
	}
	if _, v := rs.at(rs.size - 1); v != 10 {
		t.Fatalf("newest = %v, want 10", v)
	}
	if _, v := rs.at(0); v != 7 {
		t.Fatalf("oldest = %v, want 7", v)
	}
}

// TestRecorderKeep: the Keep filter drops families at sampling time.
func TestRecorderKeep(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("keep_total", "k.").With().Inc()
	reg.Counter("drop_total", "d.").With().Inc()
	rec := NewRecorder(RecorderConfig{
		Keep: func(family string) bool { return family == "keep_total" },
	}, reg)
	defer rec.Stop()
	if _, ok := rec.Latest("keep_total"); !ok {
		t.Fatal("kept family missing")
	}
	if _, ok := rec.Latest("drop_total"); ok {
		t.Fatal("dropped family recorded")
	}
}

// TestFlightHandler: /debug/flight renders rates, quantiles and series, and
// honours the series filter and points parameters.
func TestFlightHandler(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("advhunter_requests_total", "reqs.", "code").With("200")
	h := reg.Histogram("advhunter_request_duration_seconds", "lat.", []float64{0.1, 1}).With()
	c.Add(2)
	h.Observe(0.05)

	rec := NewRecorder(RecorderConfig{}, reg)
	defer rec.Stop()
	time.Sleep(2 * time.Millisecond)
	c.Add(8)
	h.Observe(0.05)
	rec.Sample()

	rr := httptest.NewRecorder()
	rec.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight?window=30s&points=2", nil))
	var page struct {
		WindowSecs  float64                       `json:"window_seconds"`
		SeriesCount int                           `json:"series_count"`
		Rates       map[string]float64            `json:"rates"`
		Quantiles   map[string]map[string]float64 `json:"quantiles"`
		Series      []struct {
			Key    string      `json:"key"`
			Points [][2]string `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("flight page not JSON: %v\n%s", err, rr.Body.String())
	}
	if page.WindowSecs != 30 {
		t.Fatalf("window = %v, want 30", page.WindowSecs)
	}
	if page.Rates["advhunter_requests_total"] <= 0 {
		t.Fatalf("no request rate on flight page: %v", page.Rates)
	}
	if _, ok := page.Quantiles["advhunter_request_duration_seconds"]["p50"]; !ok {
		t.Fatalf("no p50 on flight page: %v", page.Quantiles)
	}
	if len(page.Series) == 0 || len(page.Series[0].Points) == 0 {
		t.Fatal("series points missing with ?points=2")
	}

	rr = httptest.NewRecorder()
	rec.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight?series=duration", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	for _, s := range page.Series {
		if !strings.Contains(s.Key, "duration") {
			t.Fatalf("filter leaked series %q", s.Key)
		}
	}
}
