package obs

import (
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"
)

// RuleStatus is one rule evaluation's outcome.
type RuleStatus struct {
	// Value is the measured quantity (a latency quantile in seconds, an
	// error fraction, a flag rate).
	Value float64
	// Threshold is the level Value is judged against at this evaluation.
	Threshold float64
	// Breach reports Value beyond Threshold.
	Breach bool
	// Ready reports the rule had enough data to judge. A not-ready
	// evaluation leaves the alert state unchanged — short history is not
	// evidence of health.
	Ready bool
}

// Rule is one declarative alert condition evaluated against the flight
// recorder. Rules may carry evaluation state (a drift baseline, delta
// cursors), so one Rule value belongs to exactly one AlertEngine.
type Rule interface {
	// Name labels the rule in gauges, logs and /alerts ("latency-p99").
	Name() string
	// Describe is the human-readable condition for /alerts.
	Describe() string
	// Eval judges the rule against the recorder's history now.
	Eval(rec *Recorder, now time.Time) RuleStatus
}

// LatencyBurnRule fires when a latency quantile over the window exceeds a
// threshold — the burn-rate shape of a latency SLO: not one slow request,
// but a window's worth of them.
type LatencyBurnRule struct {
	RuleName  string
	Family    string        // histogram family (advhunter_request_duration_seconds)
	Q         float64       // quantile in (0,1), e.g. 0.99
	Threshold float64       // seconds
	Window    time.Duration // evaluation window (default 1m)
}

// Name implements Rule.
func (r *LatencyBurnRule) Name() string { return r.RuleName }

// Describe implements Rule.
func (r *LatencyBurnRule) Describe() string {
	return "p" + trimFloat(r.Q*100) + "(" + r.Family + ") > " + trimFloat(r.Threshold) + "s over " + r.window().String()
}

func (r *LatencyBurnRule) window() time.Duration {
	if r.Window > 0 {
		return r.Window
	}
	return time.Minute
}

// Eval implements Rule.
func (r *LatencyBurnRule) Eval(rec *Recorder, _ time.Time) RuleStatus {
	v := rec.Quantile(r.Family, r.Q, r.window())
	if math.IsNaN(v) {
		return RuleStatus{Threshold: r.Threshold}
	}
	return RuleStatus{Value: v, Threshold: r.Threshold, Breach: v > r.Threshold, Ready: true}
}

// ErrorRateRule fires when the rejected-or-failed fraction of requests over
// the window exceeds a threshold. By default it counts 429s and every 5xx —
// backpressure and server faults — against the family's total rate.
type ErrorRateRule struct {
	RuleName  string
	Family    string        // counter family with a code label (advhunter_requests_total)
	Threshold float64       // error fraction in (0,1)
	Window    time.Duration // evaluation window (default 1m)
	// MinRate gates readiness: below this total req/s the fraction is too
	// noisy to judge (default 1).
	MinRate float64
	// ErrorCode classifies a code label value as an error; nil selects the
	// default (429 or any 5xx).
	ErrorCode func(code string) bool
}

// Name implements Rule.
func (r *ErrorRateRule) Name() string { return r.RuleName }

// Describe implements Rule.
func (r *ErrorRateRule) Describe() string {
	return "429/5xx fraction of " + r.Family + " > " + trimFloat(r.Threshold) + " over " + r.window().String()
}

func (r *ErrorRateRule) window() time.Duration {
	if r.Window > 0 {
		return r.Window
	}
	return time.Minute
}

func (r *ErrorRateRule) isError(code string) bool {
	if r.ErrorCode != nil {
		return r.ErrorCode(code)
	}
	return code == "429" || strings.HasPrefix(code, "5")
}

// Eval implements Rule.
func (r *ErrorRateRule) Eval(rec *Recorder, _ time.Time) RuleStatus {
	w := r.window()
	total := rec.RateFamily(r.Family, w)
	minRate := r.MinRate
	if minRate <= 0 {
		minRate = 1
	}
	if total < minRate {
		return RuleStatus{Threshold: r.Threshold}
	}
	prefix := r.Family + "{"
	bad := rec.Rate(w, func(key string) bool {
		if !strings.HasPrefix(key, prefix) {
			return false
		}
		code, ok := labelValue(key, "code")
		return ok && r.isError(code)
	})
	frac := bad / total
	return RuleStatus{Value: frac, Threshold: r.Threshold, Breach: frac > r.Threshold, Ready: true}
}

// DriftRule is the attack-campaign signal: it watches the flag rate —
// flagged decisions over total decisions — per evaluation and fires when it
// deviates above a clean-traffic baseline. The baseline is either given
// (CleanRate/CleanStd from an offline calibration run) or fitted online from
// the first FitEvals qualifying evaluations, which must therefore see clean
// traffic — the same trust-on-first-use assumption every learned baseline
// makes.
//
// Each evaluation differences the recorder's latest cumulative totals
// against the previous evaluation's, so the judged window is the evaluation
// interval itself (a tumbling window) — timing-free and exact, where a
// wall-clock window would be sensitive to sampler phase. Evaluations seeing
// fewer than MinScans new decisions do not judge (and do not advance the
// cursors), so quiet periods accumulate instead of diluting.
type DriftRule struct {
	RuleName string
	Scans    string // counter family of total decisions (advhunter_scans_total)
	Flagged  string // counter family of adversarial decisions (advhunter_flagged_total)

	// CleanRate/CleanStd, when CleanStd > 0 or CleanRate > 0, give the
	// baseline explicitly and skip online fitting.
	CleanRate float64
	CleanStd  float64
	// FitEvals is the number of qualifying evaluations the online baseline
	// averages over before judging begins (default 3).
	FitEvals int
	// Sigma is the deviation multiplier: fire when the observed flag rate
	// exceeds mean + Sigma·max(std, StdFloor) (default 3).
	Sigma float64
	// StdFloor keeps the band open when clean traffic is so uniform its
	// fitted deviation collapses to ~0 (default 0.02).
	StdFloor float64
	// MinScans is the minimum new decisions per judged evaluation
	// (default 20).
	MinScans float64

	mu          sync.Mutex
	started     bool
	lastScans   float64
	lastFlagged float64
	fitN        int
	fitMean     float64
	fitM2       float64
	frozen      bool
}

// Name implements Rule.
func (r *DriftRule) Name() string { return r.RuleName }

// Describe implements Rule.
func (r *DriftRule) Describe() string {
	return "flag rate (" + r.Flagged + "/" + r.Scans + ") above clean baseline + " + trimFloat(r.sigma()) + "σ"
}

func (r *DriftRule) sigma() float64 {
	if r.Sigma > 0 {
		return r.Sigma
	}
	return 3
}

func (r *DriftRule) stdFloor() float64 {
	if r.StdFloor > 0 {
		return r.StdFloor
	}
	return 0.02
}

func (r *DriftRule) minScans() float64 {
	if r.MinScans > 0 {
		return r.MinScans
	}
	return 20
}

func (r *DriftRule) fitEvals() int {
	if r.FitEvals > 0 {
		return r.FitEvals
	}
	return 3
}

// Baseline returns the rule's current clean baseline (mean, std) and whether
// it is established yet.
func (r *DriftRule) Baseline() (mean, std float64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.baselineLocked()
}

func (r *DriftRule) baselineLocked() (mean, std float64, ok bool) {
	if r.CleanStd > 0 || r.CleanRate > 0 {
		return r.CleanRate, r.CleanStd, true
	}
	if !r.frozen {
		return 0, 0, false
	}
	variance := 0.0
	if r.fitN > 1 {
		variance = r.fitM2 / float64(r.fitN-1)
	}
	return r.fitMean, math.Sqrt(variance), true
}

// Eval implements Rule.
func (r *DriftRule) Eval(rec *Recorder, _ time.Time) RuleStatus {
	r.mu.Lock()
	defer r.mu.Unlock()

	scans := rec.LatestFamily(r.Scans)
	flagged := rec.LatestFamily(r.Flagged)
	if !r.started {
		r.started = true
		r.lastScans, r.lastFlagged = scans, flagged
		return RuleStatus{}
	}
	ds, df := scans-r.lastScans, flagged-r.lastFlagged
	if ds < r.minScans() {
		return RuleStatus{} // too few new decisions: accumulate, don't judge
	}
	r.lastScans, r.lastFlagged = scans, flagged
	rate := df / ds

	mean, std, ok := r.baselineLocked()
	if !ok {
		// Online fitting (Welford) over the first FitEvals qualifying
		// evaluations; judging starts once the baseline freezes.
		r.fitN++
		delta := rate - r.fitMean
		r.fitMean += delta / float64(r.fitN)
		r.fitM2 += delta * (rate - r.fitMean)
		if r.fitN >= r.fitEvals() {
			r.frozen = true
		}
		return RuleStatus{Value: rate}
	}
	thr := mean + r.sigma()*math.Max(std, r.stdFloor())
	return RuleStatus{Value: rate, Threshold: thr, Breach: rate > thr, Ready: true}
}

// labelValue extracts one label's value from a rendered series key
// ({name="value",...}). Good enough for the label values this package deals
// in (status codes, rule names) — none contain escaped quotes.
func labelValue(key, label string) (string, bool) {
	i := strings.Index(key, label+`="`)
	if i < 0 {
		return "", false
	}
	rest := key[i+len(label)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// trimFloat renders a float compactly for rule descriptions.
func trimFloat(v float64) string { return formatFloat(v) }

// Alert states.
const (
	AlertOK      = "ok"
	AlertPending = "pending" // breaching, waiting out the For hysteresis
	AlertFiring  = "firing"
)

// AlertConfig tunes an AlertEngine.
type AlertConfig struct {
	// Interval is the background evaluation cadence. > 0 starts an
	// evaluator goroutine; <= 0 disables it and every /alerts request
	// evaluates once first — the deterministic mode tests (and pull-based
	// setups) use.
	Interval time.Duration
	// For is the hysteresis: a rule must breach continuously this long
	// before it fires (0 fires on the first breach).
	For time.Duration
	// Logger receives alert transition records ("alert firing",
	// "alert resolved"). nil disables transition logging.
	Logger *slog.Logger
}

// alertState is one rule's lifecycle state inside the engine.
type alertState struct {
	rule    Rule
	state   string
	since   time.Time // entered current state
	last    RuleStatus
	lastAt  time.Time
	fired   uint64
	active  *Gauge
	firedCt *Counter
}

// AlertEngine evaluates rules against a flight recorder and owns their
// ok → pending → firing lifecycle. Active alerts surface as the
// advhunter_alert_active{rule} gauge (1 while firing), transitions as the
// advhunter_alert_fired_total{rule} counter and structured log records, and
// the full state as the /alerts JSON endpoint — so alerts are visible to a
// scraper, a log pipeline, and a human, from one evaluation path.
type AlertEngine struct {
	rec *Recorder
	cfg AlertConfig

	mu     sync.Mutex
	states []*alertState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewAlertEngine builds an engine over rec, registering its gauges on reg,
// and starts the background evaluator when cfg.Interval > 0.
func NewAlertEngine(reg *Registry, rec *Recorder, rules []Rule, cfg AlertConfig) *AlertEngine {
	e := &AlertEngine{
		rec:  rec,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	activeVec := reg.Gauge("advhunter_alert_active",
		"1 while the alert rule is firing, 0 otherwise.", "rule")
	firedVec := reg.Counter("advhunter_alert_fired_total",
		"Alert rule ok/pending→firing transitions.", "rule")
	for _, rule := range rules {
		st := &alertState{
			rule:    rule,
			state:   AlertOK,
			active:  activeVec.With(rule.Name()),
			firedCt: firedVec.With(rule.Name()),
		}
		st.active.Set(0)
		e.states = append(e.states, st)
	}
	if cfg.Interval > 0 {
		go e.loop()
	} else {
		close(e.done)
	}
	return e
}

func (e *AlertEngine) loop() {
	defer close(e.done)
	tick := time.NewTicker(e.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			e.EvalOnce(time.Now())
		case <-e.stop:
			return
		}
	}
}

// Stop halts the background evaluator (if any) and waits for it. Idempotent.
func (e *AlertEngine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

// EvalOnce evaluates every rule against the recorder at now and applies
// state transitions. The background loop calls it on its interval; manual
// engines evaluate on each /alerts request (and tests call it directly).
func (e *AlertEngine) EvalOnce(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.states {
		status := st.rule.Eval(e.rec, now)
		st.last, st.lastAt = status, now
		if !status.Ready {
			continue // not enough data: hold the current state
		}
		switch {
		case status.Breach && st.state == AlertOK:
			if e.cfg.For > 0 {
				st.state, st.since = AlertPending, now
				continue
			}
			e.fire(st, now)
		case status.Breach && st.state == AlertPending:
			if now.Sub(st.since) >= e.cfg.For {
				e.fire(st, now)
			}
		case !status.Breach && st.state != AlertOK:
			prev := st.state
			st.state, st.since = AlertOK, now
			st.active.Set(0)
			if e.cfg.Logger != nil && prev == AlertFiring {
				e.cfg.Logger.Info("alert resolved",
					slog.String("rule", st.rule.Name()),
					slog.Float64("value", status.Value),
					slog.Float64("threshold", status.Threshold))
			}
		}
	}
}

// fire transitions one rule to firing. Caller holds e.mu.
func (e *AlertEngine) fire(st *alertState, now time.Time) {
	st.state, st.since = AlertFiring, now
	st.fired++
	st.active.Set(1)
	st.firedCt.Inc()
	if e.cfg.Logger != nil {
		e.cfg.Logger.Warn("alert firing",
			slog.String("rule", st.rule.Name()),
			slog.Float64("value", st.last.Value),
			slog.Float64("threshold", st.last.Threshold))
	}
}

// AlertView is one rule's state on the /alerts page.
type AlertView struct {
	Rule       string    `json:"rule"`
	Describe   string    `json:"describe"`
	State      string    `json:"state"`
	Value      float64   `json:"value"`
	Threshold  float64   `json:"threshold"`
	Ready      bool      `json:"ready"`
	Since      time.Time `json:"since,omitempty"`
	FiredTotal uint64    `json:"fired_total"`
}

// Snapshot returns every rule's current state.
func (e *AlertEngine) Snapshot() []AlertView {
	e.mu.Lock()
	defer e.mu.Unlock()
	views := make([]AlertView, len(e.states))
	for i, st := range e.states {
		views[i] = AlertView{
			Rule:       st.rule.Name(),
			Describe:   st.rule.Describe(),
			State:      st.state,
			Value:      st.last.Value,
			Threshold:  st.last.Threshold,
			Ready:      st.last.Ready,
			Since:      st.since,
			FiredTotal: st.fired,
		}
	}
	return views
}

// Firing reports whether the named rule is currently firing.
func (e *AlertEngine) Firing(rule string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.states {
		if st.rule.Name() == rule {
			return st.state == AlertFiring
		}
	}
	return false
}

// Handler serves the engine as /alerts JSON. A manual engine (Interval <= 0)
// takes a fresh recorder sample and evaluates once per request, so pulling
// /alerts is itself the evaluation cadence.
func (e *AlertEngine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if e.cfg.Interval <= 0 {
			e.rec.Sample()
			e.EvalOnce(time.Now())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(struct {
			Now    time.Time   `json:"now"`
			Alerts []AlertView `json:"alerts"`
		}{time.Now(), e.Snapshot()})
	})
}
