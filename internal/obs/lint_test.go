package obs

import (
	"strings"
	"testing"
)

// TestLintAcceptsValid holds the parser to realistic, fully valid exposition
// text, including escaped labels, timestamps and special float values.
func TestLintAcceptsValid(t *testing.T) {
	valid := strings.Join([]string{
		"# A free-form comment.",
		"# HELP http_requests_total Requests by code.",
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200"} 1027`,
		`http_requests_total{code="404",method="post"} 3 1395066363000`,
		"# HELP weird_gauge A value with escapes: \\\\ and \\n.",
		"# TYPE weird_gauge gauge",
		`weird_gauge{path="C:\\DIR\\",quote="say \"hi\""} +Inf`,
		"# TYPE rpc_duration_seconds histogram",
		`rpc_duration_seconds_bucket{le="0.05"} 2`,
		`rpc_duration_seconds_bucket{le="0.5"} 2`,
		`rpc_duration_seconds_bucket{le="+Inf"} 4`,
		"rpc_duration_seconds_sum 7.5",
		"rpc_duration_seconds_count 4",
		"untyped_metric 12.47",
		"",
	}, "\n")
	if err := Lint([]byte(valid)); err != nil {
		t.Fatalf("Lint rejected valid exposition: %v", err)
	}
}

// TestLintRejectsInvalid drives each validation rule with a minimal violation.
func TestLintRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // error substring
	}{
		{
			"bad metric name",
			"9bad_name 1\n",
			"invalid metric name",
		},
		{
			"bad label name",
			"m{9x=\"v\"} 1\n",
			"invalid label name",
		},
		{
			"unquoted label value",
			"m{x=v} 1\n",
			"unquoted value",
		},
		{
			"illegal escape",
			`m{x="a\t"} 1` + "\n",
			`illegal escape`,
		},
		{
			"unterminated label value",
			`m{x="a} 1` + "\n",
			"unterminated",
		},
		{
			"missing value",
			"m{x=\"v\"}\n",
			"missing value",
		},
		{
			"garbage value",
			"m nope\n",
			"bad value",
		},
		{
			"duplicate series",
			"m{a=\"1\",b=\"2\"} 1\nm{b=\"2\",a=\"1\"} 2\n",
			"duplicate series",
		},
		{
			"duplicate label",
			"m{a=\"1\",a=\"2\"} 1\n",
			`duplicate label "a"`,
		},
		{
			"second HELP",
			"# HELP m one\n# HELP m two\nm 1\n",
			"second HELP",
		},
		{
			"second TYPE",
			"# TYPE m counter\n# TYPE m counter\nm 1\n",
			"second TYPE",
		},
		{
			"unknown type",
			"# TYPE m widget\nm 1\n",
			"unknown type",
		},
		{
			"HELP after series",
			"m 1\n# HELP m too late\n",
			"after its series",
		},
		{
			"TYPE after series",
			"m 1\n# TYPE m counter\n",
			"after its series",
		},
		{
			"family restarts",
			"a 1\nb 2\na{x=\"1\"} 3\n",
			"reappears",
		},
		{
			"histogram bare series",
			"# TYPE h histogram\nh 1\n",
			"bare series",
		},
		{
			"histogram bucket without le",
			"# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
			"without le",
		},
		{
			"histogram missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"missing +Inf",
		},
		{
			"histogram missing sum/count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\n",
			"missing _sum or _count",
		},
		{
			"histogram not cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
			"not cumulative",
		},
		{
			"histogram +Inf below last bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n",
			"below last bucket",
		},
		{
			"histogram +Inf != count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n",
			"!= _count",
		},
		{
			"histogram fractional bucket count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1.5\nh_sum 9\nh_count 1.5\n",
			"not a non-negative integer",
		},
		{
			"histogram bad le",
			"# TYPE h histogram\nh_bucket{le=\"wide\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"bad le",
		},
		{
			"bad timestamp",
			"m 1 not-a-ts\n",
			"bad timestamp",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Lint([]byte(tc.text))
			if err == nil {
				t.Fatalf("Lint accepted invalid input:\n%s", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// TestLintHistogramPerChildChecks: cumulative checks are per label-set, not
// across children.
func TestLintHistogramPerChild(t *testing.T) {
	text := strings.Join([]string{
		"# TYPE h histogram",
		`h_bucket{stage="a",le="1"} 5`,
		`h_bucket{stage="a",le="+Inf"} 5`,
		`h_sum{stage="a"} 1`,
		`h_count{stage="a"} 5`,
		`h_bucket{stage="b",le="1"} 2`,
		`h_bucket{stage="b",le="+Inf"} 2`,
		`h_sum{stage="b"} 1`,
		`h_count{stage="b"} 2`,
		"",
	}, "\n")
	if err := Lint([]byte(text)); err != nil {
		t.Fatalf("per-child histogram rejected: %v", err)
	}
}
