package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.String()
}

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.", "code")
	c.With("200").Add(3)
	c.With("500").Inc()
	g := r.Gauge("test_temperature", "Degrees.")
	g.With().Set(-2.5)

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_requests_total Requests.\n# TYPE test_requests_total counter\n",
		`test_requests_total{code="200"} 3`,
		`test_requests_total{code="500"} 1`,
		"# TYPE test_temperature gauge",
		"test_temperature -2.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("Lint rejects registry output: %v", err)
	}
}

func TestFamiliesRenderSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "Last.").With().Inc()
	r.Counter("aaa_total", "First.").With().Inc()
	out := render(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram rendering missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("Sum = %g, want 56.05", h.Sum())
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("Lint rejects histogram output: %v", err)
	}
}

func TestLabelledHistogram(t *testing.T) {
	r := NewRegistry()
	v := r.Histogram("test_stage_seconds", "Stage durations.", []float64{1}, "stage")
	v.With("measure").Observe(0.5)
	v.With("score").Observe(2)
	out := render(t, r)
	for _, want := range []string{
		`test_stage_seconds_bucket{stage="measure",le="1"} 1`,
		`test_stage_seconds_bucket{stage="score",le="+Inf"} 1`,
		`test_stage_seconds_count{stage="score"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labelled histogram missing %q:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("Lint rejects labelled histogram: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_weird_total", "Help with \\ backslash\nand newline.", "path").
		With("a\"b\\c\nd").Inc()
	out := render(t, r)
	if !strings.Contains(out, `test_weird_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `Help with \\ backslash\nand newline.`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("Lint rejects escaped output: %v", err)
	}
}

func TestGaugeFuncSampledAtScrape(t *testing.T) {
	r := NewRegistry()
	depth := 0
	r.GaugeFunc("test_queue_depth", "Queue depth.", func() float64 { return float64(depth) })
	depth = 7
	if !strings.Contains(render(t, r), "test_queue_depth 7") {
		t.Fatal("GaugeFunc not sampled at scrape time")
	}
	depth = 3
	if !strings.Contains(render(t, r), "test_queue_depth 3") {
		t.Fatal("GaugeFunc not re-sampled")
	}
}

func TestReRegistrationIdempotentAndChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "Things.", "kind")
	a.With("x").Add(2)
	b := r.Counter("test_total", "Things.", "kind")
	if b.With("x").Value() != 2 {
		t.Fatal("re-registration did not resolve the same series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration must panic")
		}
	}()
	r.Gauge("test_total", "Things.", "kind")
}

func TestConcurrentRecordingAndScraping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hits_total", "Hits.", "worker")
	h := r.Histogram("test_dur_seconds", "Durations.", DurationBuckets).With()
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < per; i++ {
				c.With(lbl).Inc()
				h.Observe(float64(i) / per)
			}
		}()
	}
	// Scrape concurrently with recording; output must stay parseable.
	for i := 0; i < 20; i++ {
		if err := Lint([]byte(render(t, r))); err != nil {
			t.Fatalf("concurrent scrape failed lint: %v", err)
		}
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count %d, want %d", got, workers*per)
	}
	out := render(t, r)
	if !strings.Contains(out, `test_hits_total{worker="a"} 500`) {
		t.Fatalf("per-worker counts wrong:\n%s", out)
	}
}

func TestHandlerChainsRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("test_a_total", "A.").With().Inc()
	b.Counter("test_b_total", "B.").With().Inc()
	rec := httptest.NewRecorder()
	Handler(a, b, a, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "test_a_total 1") || !strings.Contains(body, "test_b_total 1") {
		t.Fatalf("chained handler missing a registry:\n%s", body)
	}
	if strings.Count(body, "test_a_total 1") != 1 {
		t.Fatalf("duplicate registry rendered twice:\n%s", body)
	}
	if err := Lint([]byte(body)); err != nil {
		t.Fatalf("chained exposition fails lint: %v", err)
	}
}

func TestTracerRecordsStages(t *testing.T) {
	r := NewRegistry()
	var logBuf bytes.Buffer
	logger, err := NewLogger(&logBuf, slog.LevelDebug, "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(r, logger)
	ctx := WithRequestID(WithTracer(context.Background(), tr), "r42")

	ctx2, sp := StartSpan(ctx, "measure")
	time.Sleep(time.Millisecond)
	sp.End()
	_, sp2 := StartSpan(ctx2, "score")
	sp2.End()

	out := render(t, r)
	if !strings.Contains(out, `advhunter_stage_duration_seconds_count{stage="measure"} 1`) {
		t.Fatalf("span did not land in stage histogram:\n%s", out)
	}
	if !strings.Contains(out, `advhunter_stage_duration_seconds_count{stage="score"} 1`) {
		t.Fatalf("second span missing:\n%s", out)
	}

	// Debug records are JSON, carry the stage and the propagated request id.
	dec := json.NewDecoder(&logBuf)
	var rec map[string]any
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("span log is not JSON: %v", err)
	}
	if rec["stage"] != "measure" || rec["request_id"] != "r42" {
		t.Fatalf("span record missing stage/request_id: %v", rec)
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	_, sp := StartSpan(context.Background(), "measure")
	sp.End() // must not panic
}

func TestParseLevelAndLoggerFormats(t *testing.T) {
	if _, err := ParseLevel("nope"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
	lv, err := ParseLevel("WARN")
	if err != nil || lv != slog.LevelWarn {
		t.Fatalf("ParseLevel(WARN) = %v, %v", lv, err)
	}
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, slog.LevelInfo, "text")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "k=v") {
		t.Fatalf("text logger output: %s", buf.String())
	}
	if _, err := NewLogger(&buf, slog.LevelInfo, "yaml"); err == nil {
		t.Fatal("NewLogger must reject unknown formats")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Fatal("Build() missing go version")
	}
	r := NewRegistry()
	RegisterBuildInfo(r)
	RegisterBuildInfo(r) // idempotent
	out := render(t, r)
	if !strings.Contains(out, `advhunter_build_info{version=`) {
		t.Fatalf("build info gauge missing:\n%s", out)
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("build info fails lint: %v", err)
	}

	rec := httptest.NewRecorder()
	BuildInfoHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/build", nil))
	var got BuildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/debug/build is not JSON: %v", err)
	}
	if got.GoVersion != b.GoVersion {
		t.Fatalf("handler go version %q != %q", got.GoVersion, b.GoVersion)
	}
}
