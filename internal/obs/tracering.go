package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceRecord is one request's wide event: everything the serving pipeline
// learned about a single request — identity, routing, verdict, cache
// behaviour, and per-stage timings — aggregated into one structured record
// instead of scattered across log lines. Records are pooled: a TraceRing
// hands them out in Start, takes them back in Finish, and recycles the ones
// its ring evicts, so the steady-state request path allocates nothing
// (TestTraceRingAllocs holds that line).
//
// A record is owned by its request handler between Start and Finish; the
// ctx-mediated writers (spans, the measure pool) go through TraceContext,
// whose generation check turns writes into recycled records into no-ops.
type TraceRecord struct {
	mu        sync.Mutex
	gen       uint64 // bumped on reset; TraceContext writes check it
	id        string
	start     time.Time
	status    int
	index     uint64
	tier      string
	backend   string
	verdict   string
	cacheHit  bool
	queueWait time.Duration
	total     time.Duration
	stages    []stageTiming // capacity reused across recycles
}

// stageTiming is one finished span inside a trace record.
type stageTiming struct {
	stage  string
	offset time.Duration // from record start
	dur    time.Duration
}

// reset prepares a (possibly recycled) record for a new request.
func (t *TraceRecord) reset(id string) {
	t.mu.Lock()
	t.gen++
	t.id = id
	t.start = time.Now()
	t.status = 0
	t.index = 0
	t.tier, t.backend, t.verdict = "", "", ""
	t.cacheHit = false
	t.queueWait, t.total = 0, 0
	t.stages = t.stages[:0]
	t.mu.Unlock()
}

// The typed setters below are nil-safe so instrumentation points never
// nil-check: with tracing off they cost one pointer compare.

// SetStatus records the HTTP status the request was answered with.
func (t *TraceRecord) SetStatus(code int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = code
	t.mu.Unlock()
}

// SetIndex records the request's measurement-noise index.
func (t *TraceRecord) SetIndex(idx uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.index = idx
	t.mu.Unlock()
}

// SetTier records the measurement tier that decided the request.
func (t *TraceRecord) SetTier(tier string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tier = tier
	t.mu.Unlock()
}

// SetBackend records the detector backend that scored the request.
func (t *TraceRecord) SetBackend(backend string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.backend = backend
	t.mu.Unlock()
}

// SetVerdict records the detection verdict ("adversarial" or "benign").
func (t *TraceRecord) SetVerdict(verdict string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.verdict = verdict
	t.mu.Unlock()
}

// SetCacheHit records whether the truth cache served the measurement.
func (t *TraceRecord) SetCacheHit(hit bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cacheHit = hit
	t.mu.Unlock()
}

// AddStage appends one finished stage timing. Spans call it through
// TraceContext; it is exported for direct owners (and the alloc gate).
func (t *TraceRecord) AddStage(stage string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, stageTiming{stage: stage, offset: start.Sub(t.start), dur: d})
	if stage == "queue" {
		t.queueWait = d
	}
	t.mu.Unlock()
}

// view renders the record for readers. Caller must not hold t.mu.
func (t *TraceRecord) view() TraceView {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{
		ID:          t.id,
		Start:       t.start,
		Status:      t.status,
		Index:       t.index,
		Tier:        t.tier,
		Backend:     t.backend,
		Verdict:     t.verdict,
		CacheHit:    t.cacheHit,
		QueueWaitMs: float64(t.queueWait) / float64(time.Millisecond),
		TotalMs:     float64(t.total) / float64(time.Millisecond),
		Stages:      make([]StageView, len(t.stages)),
	}
	for i, s := range t.stages {
		v.Stages[i] = StageView{
			Stage:      s.stage,
			OffsetMs:   float64(s.offset) / float64(time.Millisecond),
			DurationMs: float64(s.dur) / float64(time.Millisecond),
		}
	}
	return v
}

// TraceView is the serialisable form of one trace record — what
// /debug/trace and the JSONL sink emit.
type TraceView struct {
	ID          string      `json:"id"`
	Start       time.Time   `json:"start"`
	Status      int         `json:"status"`
	Index       uint64      `json:"index"`
	Tier        string      `json:"tier,omitempty"`
	Backend     string      `json:"backend,omitempty"`
	Verdict     string      `json:"verdict,omitempty"`
	CacheHit    bool        `json:"cache_hit"`
	QueueWaitMs float64     `json:"queue_wait_ms"`
	TotalMs     float64     `json:"total_ms"`
	Stages      []StageView `json:"stages"`
}

// StageView is one stage timing inside a TraceView.
type StageView struct {
	Stage      string  `json:"stage"`
	OffsetMs   float64 `json:"offset_ms"`
	DurationMs float64 `json:"duration_ms"`
}

// TraceContext is the ctx-carried handle instrumentation writes through: a
// record pointer plus the generation it was issued for. The zero value (no
// active trace) is a no-op, and a stale generation — the record was finished
// and recycled to another request — turns writes into no-ops too, so a late
// span (a queued job that timed out) can never corrupt a stranger's record.
type TraceContext struct {
	rec *TraceRecord
	gen uint64
}

// SetCacheHit records a truth-cache outcome on the active trace, if any.
func (tc TraceContext) SetCacheHit(hit bool) {
	if tc.rec == nil {
		return
	}
	tc.rec.mu.Lock()
	if tc.rec.gen == tc.gen {
		tc.rec.cacheHit = hit
	}
	tc.rec.mu.Unlock()
}

// stage appends a finished span to the active trace, if it is still live.
func (tc TraceContext) stage(name string, start time.Time, d time.Duration) {
	if tc.rec == nil {
		return
	}
	tc.rec.mu.Lock()
	if tc.rec.gen == tc.gen {
		tc.rec.stages = append(tc.rec.stages, stageTiming{stage: name, offset: start.Sub(tc.rec.start), dur: d})
		if name == "queue" {
			tc.rec.queueWait = d
		}
	}
	tc.rec.mu.Unlock()
}

// WithTrace returns a context carrying the record as the active trace, so
// spans ending anywhere under it (worker goroutines included) land their
// timings in the record.
func WithTrace(ctx context.Context, t *TraceRecord) context.Context {
	if t == nil {
		return ctx
	}
	t.mu.Lock()
	tc := TraceContext{rec: t, gen: t.gen}
	t.mu.Unlock()
	return context.WithValue(ctx, traceKey, tc)
}

// TraceFrom extracts the active trace handle; the zero TraceContext when the
// context carries none.
func TraceFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceKey).(TraceContext)
	return tc
}

// TraceRing is a bounded ring of the most recent finished trace records plus
// the pool recycling them. A nil *TraceRing is a valid no-op source: Start
// returns a nil record every setter accepts.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*TraceRecord
	next int // ring write cursor
	size int
	pool sync.Pool

	sinkMu sync.Mutex
	sink   io.Writer // optional JSONL sink; one TraceView per line
}

// NewTraceRing builds a ring holding the last n finished traces (minimum 1).
// sink, when non-nil, additionally receives every finished trace as one JSON
// line — the durable export path, at the cost of an encode per request.
func NewTraceRing(n int, sink io.Writer) *TraceRing {
	if n < 1 {
		n = 1
	}
	r := &TraceRing{buf: make([]*TraceRecord, n), sink: sink}
	r.pool.New = func() any { return &TraceRecord{} }
	return r
}

// Start issues a (recycled) record for one request. nil-safe: a nil ring
// hands out a nil record, so call sites need no tracing-enabled branch.
func (r *TraceRing) Start(id string) *TraceRecord {
	if r == nil {
		return nil
	}
	t := r.pool.Get().(*TraceRecord)
	t.reset(id)
	return t
}

// Finish stamps the record's total duration and publishes it into the ring;
// the record the ring slot previously held goes back to the pool. With a
// sink configured the finished trace is also encoded out as one JSON line.
func (r *TraceRing) Finish(t *TraceRecord) {
	if r == nil || t == nil {
		return
	}
	t.mu.Lock()
	t.total = time.Since(t.start)
	t.mu.Unlock()

	if r.sink != nil {
		v := t.view()
		r.sinkMu.Lock()
		enc := json.NewEncoder(r.sink)
		enc.Encode(v)
		r.sinkMu.Unlock()
	}

	r.mu.Lock()
	old := r.buf[r.next]
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.mu.Unlock()
	if old != nil {
		r.pool.Put(old)
	}
}

// Last returns views of the most recent min(n, held) finished traces, oldest
// first. nil-safe (empty).
func (r *TraceRing) Last(n int) []TraceView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if n > r.size {
		n = r.size
	}
	recs := make([]*TraceRecord, 0, n)
	for i := r.size - n; i < r.size; i++ {
		recs = append(recs, r.buf[(r.next-r.size+i+len(r.buf))%len(r.buf)])
	}
	r.mu.Unlock()
	views := make([]TraceView, len(recs))
	for i, t := range recs {
		views[i] = t.view()
	}
	return views
}

// TraceHandler serves /debug/trace over one or more rings (nil rings are
// skipped — a cluster page merges whatever replicas have tracing on):
// ?last=N (default 20) most recent traces across all rings, oldest first.
func TraceHandler(rings ...*TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 20
		if s := r.URL.Query().Get("last"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		var views []TraceView
		for _, ring := range rings {
			views = append(views, ring.Last(n)...)
		}
		sort.Slice(views, func(i, j int) bool { return views[i].Start.Before(views[j].Start) })
		if len(views) > n {
			views = views[len(views)-n:]
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(struct {
			Count  int         `json:"count"`
			Traces []TraceView `json:"traces"`
		}{len(views), views})
	})
}
