package obs

import (
	"context"
	"log/slog"
	"time"
)

// Tracer turns named pipeline stages into observations: every finished span
// lands in a per-stage duration histogram on the tracer's registry
// (advhunter_stage_duration_seconds{stage=...}) and, when a logger is
// attached, in a debug log record carrying the stage, the duration and the
// context's request_id. Tracing is observe-only by contract: a span never
// alters the traced computation, so verdicts and response bytes are
// identical with tracing on or off (internal/serve holds that line with a
// regression test).
type Tracer struct {
	stages *HistogramVec
	logger *slog.Logger
}

// NewTracer builds a tracer recording onto reg. logger may be nil (metrics
// only).
func NewTracer(reg *Registry, logger *slog.Logger) *Tracer {
	return &Tracer{
		stages: reg.Histogram("advhunter_stage_duration_seconds",
			"Detection-pipeline stage durations.", DurationBuckets, "stage"),
		logger: logger,
	}
}

// WithTracer returns a context carrying the tracer, for call sites that
// only see a context (the package-level StartSpan).
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom extracts the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// StartSpan opens a span on the context's tracer. With no tracer in ctx it
// returns a no-op span, so library code can instrument unconditionally.
func StartSpan(ctx context.Context, stage string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	return t.StartSpan(ctx, stage)
}

// StartSpan opens a span for one pipeline stage; close it with End.
func (t *Tracer) StartSpan(ctx context.Context, stage string) (context.Context, *Span) {
	return ctx, &Span{t: t, ctx: ctx, stage: stage, start: time.Now()}
}

// Span is one in-flight stage timing. A nil *Span is a valid no-op, so
// callers never nil-check the StartSpan result.
type Span struct {
	t     *Tracer
	ctx   context.Context
	stage string
	start time.Time
}

// End closes the span: the duration is recorded into the stage histogram,
// appended to the context's active trace record (if one is being built),
// and, if the tracer logs, emitted as a debug record.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.t.stages.With(s.stage).Observe(d.Seconds())
	TraceFrom(s.ctx).stage(s.stage, s.start, d)
	if s.t.logger != nil {
		s.t.logger.DebugContext(s.ctx, "span",
			slog.String("stage", s.stage),
			slog.Duration("duration", d))
	}
}
