package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestConstLabelsRender: const labels appear on every series — plain
// counters, labelled counters, sampled gauges, and histogram suffixes — and
// the output still passes the strict linter.
func TestConstLabelsRender(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "plain counter.").With().Inc()
	reg.Counter("coded_total", "labelled counter.", "code").With("200").Inc()
	reg.GaugeFunc("depth", "sampled gauge.", func() float64 { return 3 })
	reg.Histogram("h_seconds", "histogram.", []float64{1, 2}).With().Observe(1.5)
	reg.SetConstLabels("replica", "7")

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`c_total{replica="7"} 1`,
		`coded_total{code="200",replica="7"} 1`,
		`depth{replica="7"} 3`,
		`h_seconds_bucket{replica="7",le="2"} 1`,
		`h_seconds_bucket{replica="7",le="+Inf"} 1`,
		`h_seconds_sum{replica="7"} 1.5`,
		`h_seconds_count{replica="7"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("const-labelled exposition fails lint: %v\n%s", err, out)
	}
}

// TestConstLabelsValidation: malformed pairs panic like bad registrations.
func TestConstLabelsValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"dangling value": func() { NewRegistry().SetConstLabels("replica") },
		"bad label name": func() { NewRegistry().SetConstLabels("0replica", "1") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// newReplicaRegistry builds one replica-shaped registry: the same families
// everywhere, distinguished only by the const replica label.
func newReplicaRegistry(t *testing.T, replica string, requests uint64) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("advhunter_requests_total", "HTTP requests by status code.", "code").With("200").Add(requests)
	reg.GaugeFunc("advhunter_queue_depth", "Requests waiting.", func() float64 { return float64(requests) })
	reg.Histogram("advhunter_request_duration_seconds", "Latency.", []float64{0.1, 1}).With().Observe(0.5)
	reg.SetConstLabels("replica", replica)
	return reg
}

// TestWriteMerged: merging replica registries produces one HELP/TYPE block
// per family with every replica's series under it, passes the linter (no
// duplicate series, families contiguous), and skips nil/repeated registries.
func TestWriteMerged(t *testing.T) {
	r0 := newReplicaRegistry(t, "0", 5)
	r1 := newReplicaRegistry(t, "1", 9)
	other := NewRegistry()
	other.Counter("advhunter_cluster_routed_total", "Routed requests.", "policy").With("roundrobin").Inc()

	var b strings.Builder
	if _, err := WriteMerged(&b, other, r0, r1, nil, r0); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if got := strings.Count(out, "# TYPE advhunter_requests_total counter"); got != 1 {
		t.Fatalf("want exactly one TYPE line for the merged family, got %d:\n%s", got, out)
	}
	for _, want := range []string{
		`advhunter_requests_total{code="200",replica="0"} 5`,
		`advhunter_requests_total{code="200",replica="1"} 9`,
		`advhunter_queue_depth{replica="0"} 5`,
		`advhunter_queue_depth{replica="1"} 9`,
		`advhunter_cluster_routed_total{policy="roundrobin"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("merged exposition fails lint: %v\n%s", err, out)
	}
}

// TestWriteMergedZeroRegistries: merging nothing (or only nils) renders an
// empty, lint-clean exposition rather than erroring — a cluster with no
// replicas yet is a valid scrape target.
func TestWriteMergedZeroRegistries(t *testing.T) {
	var b strings.Builder
	n, err := WriteMerged(&b)
	if err != nil || n != 0 || b.String() != "" {
		t.Fatalf("WriteMerged() = %d,%v,%q; want 0,nil,empty", n, err, b.String())
	}
	if err := Lint([]byte(b.String())); err != nil {
		t.Fatalf("empty exposition fails lint: %v", err)
	}

	b.Reset()
	if _, err := WriteMerged(&b, nil, nil); err != nil || b.String() != "" {
		t.Fatalf("WriteMerged(nil, nil) = %v,%q; want nil,empty", err, b.String())
	}

	rr := httptest.NewRecorder()
	MergedHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 || rr.Body.Len() != 0 {
		t.Fatalf("empty MergedHandler = %d %q", rr.Code, rr.Body.String())
	}
}

// TestWriteMergedSingleRegistry: merging one registry degenerates to WriteTo
// byte for byte — the single-replica cluster must scrape like plain serve.
func TestWriteMergedSingleRegistry(t *testing.T) {
	reg := newReplicaRegistry(t, "0", 4)
	var solo, merged strings.Builder
	if _, err := reg.WriteTo(&solo); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteMerged(&merged, reg); err != nil {
		t.Fatal(err)
	}
	if solo.String() != merged.String() {
		t.Fatalf("single-registry merge diverges from WriteTo:\n--- WriteTo\n%s--- WriteMerged\n%s",
			solo.String(), merged.String())
	}
	if err := Lint([]byte(merged.String())); err != nil {
		t.Fatalf("single-registry merge fails lint: %v", err)
	}
}

// TestWriteMergedMixedConstLabels: a registry without const labels merging a
// family that labelled registries also export must stay lint-clean — the
// unlabelled series and the replica-labelled ones are distinct, and the
// family block stays contiguous.
func TestWriteMergedMixedConstLabels(t *testing.T) {
	plain := NewRegistry()
	plain.Counter("advhunter_requests_total", "HTTP requests by status code.", "code").With("200").Add(2)
	r0 := newReplicaRegistry(t, "0", 5)
	r1 := newReplicaRegistry(t, "1", 9)

	var b strings.Builder
	if _, err := WriteMerged(&b, plain, r0, r1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`advhunter_requests_total{code="200"} 2`,
		`advhunter_requests_total{code="200",replica="0"} 5`,
		`advhunter_requests_total{code="200",replica="1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE advhunter_requests_total counter"); got != 1 {
		t.Fatalf("family block split: %d TYPE lines:\n%s", got, out)
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("mixed const-label merge fails lint: %v\n%s", err, out)
	}
}

// TestWriteMergedDefinitionMismatch: the same name registered differently on
// two registries is a programming error, caught loudly at render.
func TestWriteMergedDefinitionMismatch(t *testing.T) {
	a := NewRegistry()
	a.Counter("x_total", "a.").With().Inc()
	b := NewRegistry()
	b.Gauge("x_total", "a.").With().Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	var sb strings.Builder
	WriteMerged(&sb, a, b)
}
