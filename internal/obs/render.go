package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteTo renders every family in Prometheus text exposition format (version
// 0.0.4): families sorted by name, each with its # HELP and # TYPE lines
// followed by its series sorted by label values; histograms render cumulative
// buckets with a trailing +Inf plus _sum and _count. The output passes Lint
// by construction.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	fams, cn, cv := r.snapshotFamilies()
	for _, f := range fams {
		f.writeMeta(cw)
		f.write(cw, cn, cv)
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// snapshotFamilies returns the registry's families sorted by name plus its
// const-label pairs, under one read lock.
func (r *Registry) snapshotFamilies() ([]*family, []string, []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	return fams, r.constNames, r.constValues
}

// WriteMerged renders several registries as one exposition page, merging
// families that share a name into a single HELP/TYPE block — the shape a
// multi-replica scrape needs, where every replica's registry exports the same
// families and only the registries' const labels (SetConstLabels) tell their
// series apart. Families merged under one name must agree on kind, help,
// label set and bucket layout; a mismatch panics, exactly like re-registering
// a name differently on one registry does. A nil or repeated registry is
// skipped.
func WriteMerged(w io.Writer, regs ...*Registry) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	type part struct {
		f      *family
		cn, cv []string
	}
	byName := make(map[string][]part)
	var order []string
	seen := make(map[*Registry]bool, len(regs))
	for _, r := range regs {
		if r == nil || seen[r] {
			continue
		}
		seen[r] = true
		fams, cn, cv := r.snapshotFamilies()
		for _, f := range fams {
			if len(byName[f.name]) == 0 {
				order = append(order, f.name)
			}
			byName[f.name] = append(byName[f.name], part{f: f, cn: cn, cv: cv})
		}
	}
	sort.Strings(order)

	for _, name := range order {
		parts := byName[name]
		first := parts[0].f
		for _, p := range parts[1:] {
			if p.f.kind != first.kind || p.f.help != first.help ||
				!equalStrings(p.f.labels, first.labels) || !equalFloats(p.f.buckets, first.buckets) {
				panic(fmt.Sprintf("obs: metric %s merged across registries with different definitions", name))
			}
		}
		first.writeMeta(cw)
		for _, p := range parts {
			p.f.write(cw, p.cn, p.cv)
			if cw.err != nil {
				return cw.n, cw.err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeMeta renders one family's HELP and TYPE lines.
func (f *family) writeMeta(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
}

// write renders one family's series, appending the owning registry's
// const-label pairs (cn/cv) to every label block.
func (f *family) write(w io.Writer, cn, cv []string) {
	f.mu.RLock()
	sampled := f.sampled
	kids := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	f.mu.RUnlock()
	sort.Slice(kids, func(i, j int) bool {
		return strings.Join(kids[i].labelValues, "\xff") < strings.Join(kids[j].labelValues, "\xff")
	})

	names := f.labels
	if len(cn) > 0 {
		names = append(append(make([]string, 0, len(f.labels)+len(cn)), f.labels...), cn...)
	}
	values := func(c *child) []string {
		if len(cv) == 0 {
			return c.labelValues
		}
		return append(append(make([]string, 0, len(c.labelValues)+len(cv)), c.labelValues...), cv...)
	}
	if sampled != nil {
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(cn, cv, "", ""), formatFloat(sampled()))
		return
	}
	for _, c := range kids {
		lv := values(c)
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(names, lv, "", ""), c.count.v.Load())
		case kindGauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(names, lv, "", ""), formatFloat(c.gauge.load()))
		case kindHistogram:
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += c.bins[i].v.Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(names, lv, "le", formatFloat(ub)), cum)
			}
			// The +Inf bucket equals the total count by definition; using the
			// count cell (not cum) keeps the line consistent with _count even
			// if observations land between the two loads.
			count := c.count.v.Load()
			if count < cum {
				count = cum
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(names, lv, "le", "+Inf"), count)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
				labelString(names, lv, "", ""), formatFloat(c.sum.load()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name,
				labelString(names, lv, "", ""), count)
		}
	}
}

// labelString renders a {name="value",...} block, appending one extra pair
// (the histogram's le) when extraName is non-empty. An empty set renders as
// the empty string, not "{}".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way the exposition format expects;
// strconv already spells the specials as +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabelValue escapes a label value (backslash, double quote, newline).
func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }

// countingWriter tracks bytes written and the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
