package obs

import "math"

// SeriesSample is one series value as EachSeries reports it — the
// programmatic twin of a rendered exposition line, so consumers (the flight
// recorder) key their stores exactly like a scraper parsing /metrics would.
type SeriesSample struct {
	// Family is the metric family name (advhunter_requests_total).
	Family string
	// Kind is the family kind: counter, gauge or histogram.
	Kind string
	// Key is the full rendered series key — family name plus any histogram
	// suffix plus the label block, const labels included — unique within one
	// registry and, when const labels identify the registry (a replica
	// label), across a merged fleet too.
	Key string
	// Group is the Key with any histogram le pair removed: the handle that
	// ties one histogram's buckets to its _sum and _count. Scalars have
	// Group == Key.
	Group string
	// Suffix is "" for counters and gauges, or "bucket", "sum", "count" for
	// histogram component series.
	Suffix string
	// Le is the bucket's upper bound for Suffix "bucket" (+Inf included).
	Le float64
	// Value is the series value at the walk. Histogram buckets are
	// cumulative, exactly as rendered.
	Value float64
}

// EachSeries walks every series of the registry in render order and calls fn
// with one SeriesSample per would-be exposition line (histograms contribute
// their buckets, _sum and _count individually). It takes the same snapshot
// locks as WriteTo, so walking is as safe against concurrent recording as
// scraping is, and the values fn sees are what a scrape at the same instant
// would have rendered.
func (r *Registry) EachSeries(fn func(SeriesSample)) {
	fams, cn, cv := r.snapshotFamilies()
	for _, f := range fams {
		f.each(cn, cv, fn)
	}
}

// each walks one family's series, appending the owning registry's const-label
// pairs to every key — the EachSeries counterpart of family.write.
func (f *family) each(cn, cv []string, fn func(SeriesSample)) {
	f.mu.RLock()
	sampled := f.sampled
	kids := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	f.mu.RUnlock()

	names := f.labels
	if len(cn) > 0 {
		names = append(append(make([]string, 0, len(f.labels)+len(cn)), f.labels...), cn...)
	}
	values := func(c *child) []string {
		if len(cv) == 0 {
			return c.labelValues
		}
		return append(append(make([]string, 0, len(c.labelValues)+len(cv)), c.labelValues...), cv...)
	}
	if sampled != nil {
		key := f.name + labelString(cn, cv, "", "")
		fn(SeriesSample{Family: f.name, Kind: f.kind, Key: key, Group: key, Value: sampled()})
		return
	}
	for _, c := range kids {
		lv := values(c)
		switch f.kind {
		case kindCounter:
			key := f.name + labelString(names, lv, "", "")
			fn(SeriesSample{Family: f.name, Kind: f.kind, Key: key, Group: key, Value: float64(c.count.v.Load())})
		case kindGauge:
			key := f.name + labelString(names, lv, "", "")
			fn(SeriesSample{Family: f.name, Kind: f.kind, Key: key, Group: key, Value: c.gauge.load()})
		case kindHistogram:
			group := f.name + labelString(names, lv, "", "")
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += c.bins[i].v.Load()
				fn(SeriesSample{
					Family: f.name, Kind: f.kind,
					Key:   f.name + "_bucket" + labelString(names, lv, "le", formatFloat(ub)),
					Group: group, Suffix: "bucket", Le: ub, Value: float64(cum),
				})
			}
			count := c.count.v.Load()
			if count < cum {
				count = cum
			}
			fn(SeriesSample{
				Family: f.name, Kind: f.kind,
				Key:   f.name + "_bucket" + labelString(names, lv, "le", "+Inf"),
				Group: group, Suffix: "bucket", Le: math.Inf(1), Value: float64(count),
			})
			fn(SeriesSample{
				Family: f.name, Kind: f.kind,
				Key:   f.name + "_sum" + labelString(names, lv, "", ""),
				Group: group, Suffix: "sum", Value: c.sum.load(),
			})
			fn(SeriesSample{
				Family: f.name, Kind: f.kind,
				Key:   f.name + "_count" + labelString(names, lv, "", ""),
				Group: group, Suffix: "count", Value: float64(count),
			})
		}
	}
}
