package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RecorderConfig tunes a flight recorder.
type RecorderConfig struct {
	// Interval is the background sampling cadence. > 0 starts a sampler
	// goroutine (stop it with Stop); <= 0 disables it — samples are taken
	// only on explicit Sample calls, the deterministic mode tests drive.
	Interval time.Duration
	// Samples caps each series ring (default 256). At the default 1 s
	// interval that is ~4 minutes of history per series.
	Samples int
	// Keep filters families by name; nil keeps everything the registries
	// export.
	Keep func(family string) bool
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Samples <= 0 {
		c.Samples = 256
	}
	return c
}

// Recorder is the flight recorder: a background sampler that snapshots every
// (kept) registry series into a fixed-size ring of timestamped values, giving
// the running process a queryable short-term history — windowed counter
// rates, histogram quantiles over the last N seconds — where a bare /metrics
// scrape only has the current point. It is strictly observe-only: sampling
// walks the registries exactly like a scrape does.
//
// Series keys are the rendered exposition keys (const labels included), so a
// recorder over a cluster's merged registry set holds per-replica series side
// by side and family-level queries aggregate the fleet for free.
type Recorder struct {
	cfg  RecorderConfig
	regs []*Registry

	mu     sync.RWMutex
	series map[string]*ringSeries
	order  []string // insertion order, for stable /debug/flight output

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// ringSeries is one series' history: a circular buffer of (time, value).
type ringSeries struct {
	info       SeriesSample // metadata; Value unused
	t          []int64      // unix nanos, len == cap == ring size
	v          []float64
	head, size int // head = next write slot
}

func (s *ringSeries) push(t int64, v float64) {
	s.t[s.head], s.v[s.head] = t, v
	s.head = (s.head + 1) % len(s.t)
	if s.size < len(s.t) {
		s.size++
	}
}

// at returns the i-th stored sample, 0 = oldest.
func (s *ringSeries) at(i int) (int64, float64) {
	j := (s.head - s.size + i + len(s.t)) % len(s.t)
	return s.t[j], s.v[j]
}

// window returns the first and last samples within [since, +inf), or ok=false
// when fewer than two samples fall inside — too little history for a rate.
func (s *ringSeries) window(since int64) (t0, t1 int64, v0, v1 float64, ok bool) {
	first := -1
	for i := 0; i < s.size; i++ {
		if t, _ := s.at(i); t >= since {
			first = i
			break
		}
	}
	if first < 0 || s.size-first < 2 {
		return 0, 0, 0, 0, false
	}
	t0, v0 = s.at(first)
	t1, v1 = s.at(s.size - 1)
	return t0, t1, v0, v1, true
}

// NewRecorder builds a recorder over the given registries (nil and repeated
// entries are skipped), takes one immediate sample so Latest works from the
// first instant, and starts the background sampler when cfg.Interval > 0.
func NewRecorder(cfg RecorderConfig, regs ...*Registry) *Recorder {
	cfg = cfg.withDefaults()
	rc := &Recorder{
		cfg:    cfg,
		series: make(map[string]*ringSeries),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	seen := make(map[*Registry]bool, len(regs))
	for _, r := range regs {
		if r == nil || seen[r] {
			continue
		}
		seen[r] = true
		rc.regs = append(rc.regs, r)
	}
	rc.Sample()
	if cfg.Interval > 0 {
		go rc.loop()
	} else {
		close(rc.done)
	}
	return rc
}

func (rc *Recorder) loop() {
	defer close(rc.done)
	tick := time.NewTicker(rc.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			rc.Sample()
		case <-rc.stop:
			return
		}
	}
}

// Stop halts the background sampler (if any) and waits for it to exit. The
// recorded history stays queryable; only sampling stops. Idempotent.
func (rc *Recorder) Stop() {
	rc.stopOnce.Do(func() { close(rc.stop) })
	<-rc.done
}

// Sample takes one sweep over every registry now. The background sampler
// calls it on its interval; tests call it directly for deterministic rings.
func (rc *Recorder) Sample() {
	now := time.Now().UnixNano()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, r := range rc.regs {
		r.EachSeries(func(s SeriesSample) {
			if rc.cfg.Keep != nil && !rc.cfg.Keep(s.Family) {
				return
			}
			rs, ok := rc.series[s.Key]
			if !ok {
				rs = &ringSeries{
					info: SeriesSample{Family: s.Family, Kind: s.Kind, Key: s.Key,
						Group: s.Group, Suffix: s.Suffix, Le: s.Le},
					t: make([]int64, rc.cfg.Samples),
					v: make([]float64, rc.cfg.Samples),
				}
				rc.series[s.Key] = rs
				rc.order = append(rc.order, s.Key)
			}
			rs.push(now, s.Value)
		})
	}
}

// Latest returns a series' most recent sampled value by exact key.
func (rc *Recorder) Latest(key string) (float64, bool) {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	rs, ok := rc.series[key]
	if !ok || rs.size == 0 {
		return 0, false
	}
	_, v := rs.at(rs.size - 1)
	return v, true
}

// LatestFamily sums the most recent sampled value of every scalar series of
// one family (counters, gauges — histogram component series are excluded).
// Against a merged cluster recorder this is the fleet total.
func (rc *Recorder) LatestFamily(family string) float64 {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	var total float64
	for _, rs := range rc.series {
		if rs.info.Family != family || rs.info.Suffix != "" || rs.size == 0 {
			continue
		}
		_, v := rs.at(rs.size - 1)
		total += v
	}
	return total
}

// Rate sums the per-second rate over the last window of every counter series
// the predicate keeps (match receives the series key). Series with fewer than
// two samples in the window contribute nothing.
func (rc *Recorder) Rate(window time.Duration, match func(key string) bool) float64 {
	since := time.Now().Add(-window).UnixNano()
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	var total float64
	for _, rs := range rc.series {
		if rs.info.Kind != kindCounter || rs.info.Suffix != "" {
			continue
		}
		if match != nil && !match(rs.info.Key) {
			continue
		}
		t0, t1, v0, v1, ok := rs.window(since)
		if !ok || t1 == t0 {
			continue
		}
		if d := v1 - v0; d > 0 {
			total += d / (float64(t1-t0) / float64(time.Second))
		}
	}
	return total
}

// RateFamily sums the windowed per-second rate of one counter family's
// series — the fleet-wide family rate on a merged recorder.
func (rc *Recorder) RateFamily(family string, window time.Duration) float64 {
	prefix := family + "{"
	return rc.Rate(window, func(key string) bool {
		return key == family || strings.HasPrefix(key, prefix)
	})
}

// Quantile estimates the q-quantile (0 < q < 1) of one histogram family's
// observations over the last window, merging every series of the family
// (per-replica groups on a cluster recorder sum into one distribution).
// It differences each bucket's cumulative count across the window, then
// interpolates linearly inside the bucket holding the q-th observation —
// standard histogram_quantile semantics. NaN means no observations landed in
// the window (or too little history), which callers treat as "not ready".
func (rc *Recorder) Quantile(family string, q float64, window time.Duration) float64 {
	since := time.Now().Add(-window).UnixNano()
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	// Window delta per upper bound, summed across groups.
	deltas := make(map[float64]float64)
	for _, rs := range rc.series {
		if rs.info.Family != family || rs.info.Suffix != "bucket" {
			continue
		}
		_, _, v0, v1, ok := rs.window(since)
		if !ok {
			continue
		}
		if d := v1 - v0; d > 0 {
			deltas[rs.info.Le] += d
		}
	}
	if len(deltas) == 0 {
		return math.NaN()
	}
	bounds := make([]float64, 0, len(deltas))
	for le := range deltas {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	total := deltas[bounds[len(bounds)-1]] // the +Inf (or widest) bucket is cumulative
	if total <= 0 {
		return math.NaN()
	}
	rank := q * total
	lower := 0.0
	for i, le := range bounds {
		count := deltas[le]
		if count < rank {
			lower = le
			continue
		}
		if math.IsInf(le, 1) {
			// The observation sits past the last finite bound; report that
			// bound — the honest answer a bounded layout can give.
			return lower
		}
		prev := 0.0
		if i > 0 {
			prev = deltas[bounds[i-1]]
		}
		if count == prev {
			return le
		}
		return lower + (le-lower)*(rank-prev)/(count-prev)
	}
	return lower
}

// flightSeries is one series' summary on the /debug/flight page.
type flightSeries struct {
	Key     string      `json:"key"`
	Kind    string      `json:"kind"`
	Samples int         `json:"samples"`
	First   time.Time   `json:"first"`
	Last    time.Time   `json:"last"`
	Latest  float64     `json:"latest"`
	Points  [][2]string `json:"points,omitempty"` // [RFC3339, value]
}

// flightPage is the /debug/flight JSON document.
type flightPage struct {
	Now           time.Time                     `json:"now"`
	IntervalSecs  float64                       `json:"interval_seconds"`
	WindowSecs    float64                       `json:"window_seconds"`
	SeriesCount   int                           `json:"series_count"`
	Rates         map[string]float64            `json:"rates"`     // counter family → req/s over window
	Quantiles     map[string]map[string]float64 `json:"quantiles"` // histogram family → p50/p90/p99
	Series        []flightSeries                `json:"series"`
	FilterApplied string                        `json:"filter,omitempty"`
}

// Handler serves the recorder as /debug/flight JSON: windowed per-family
// counter rates and histogram quantiles up front (?window=30s, default 60s),
// then every series' ring summary. ?series=substr filters the series list,
// ?points=N inlines each listed series' last N raw samples.
func (rc *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		window := time.Minute
		if s := r.URL.Query().Get("window"); s != "" {
			if d, err := time.ParseDuration(s); err == nil && d > 0 {
				window = d
			}
		}
		filter := r.URL.Query().Get("series")
		points, _ := strconv.Atoi(r.URL.Query().Get("points"))

		page := flightPage{
			Now:           time.Now(),
			IntervalSecs:  rc.cfg.Interval.Seconds(),
			WindowSecs:    window.Seconds(),
			Rates:         make(map[string]float64),
			Quantiles:     make(map[string]map[string]float64),
			FilterApplied: filter,
		}

		rc.mu.RLock()
		counterFams := make(map[string]bool)
		histFams := make(map[string]bool)
		for _, rs := range rc.series {
			switch rs.info.Kind {
			case kindCounter:
				counterFams[rs.info.Family] = true
			case kindHistogram:
				histFams[rs.info.Family] = true
			}
		}
		page.SeriesCount = len(rc.series)
		keys := append([]string(nil), rc.order...)
		rc.mu.RUnlock()

		for fam := range counterFams {
			page.Rates[fam] = rc.RateFamily(fam, window)
		}
		for fam := range histFams {
			qs := make(map[string]float64, 3)
			for _, q := range []struct {
				name string
				q    float64
			}{{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}} {
				if v := rc.Quantile(fam, q.q, window); !math.IsNaN(v) {
					qs[q.name] = v
				}
			}
			if len(qs) > 0 {
				page.Quantiles[fam] = qs
			}
		}

		rc.mu.RLock()
		for _, key := range keys {
			if filter != "" && !strings.Contains(key, filter) {
				continue
			}
			rs := rc.series[key]
			if rs == nil || rs.size == 0 {
				continue
			}
			t0, _ := rs.at(0)
			t1, v1 := rs.at(rs.size - 1)
			fs := flightSeries{
				Key: key, Kind: rs.info.Kind, Samples: rs.size,
				First: time.Unix(0, t0), Last: time.Unix(0, t1), Latest: v1,
			}
			if points > 0 {
				start := rs.size - points
				if start < 0 {
					start = 0
				}
				for i := start; i < rs.size; i++ {
					t, v := rs.at(i)
					fs.Points = append(fs.Points, [2]string{
						time.Unix(0, t).Format(time.RFC3339Nano),
						strconv.FormatFloat(v, 'g', -1, 64),
					})
				}
			}
			page.Series = append(page.Series, fs)
		}
		rc.mu.RUnlock()

		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(page)
	})
}
