package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the process's identity, for the version subcommand, the
// build-info gauge and the /debug/build endpoint.
type BuildInfo struct {
	// Version is the main module's version ("(devel)" for plain go build).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision and Modified come from embedded VCS stamps when present.
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

// Build reads the binary's build information. It degrades gracefully when
// debug.ReadBuildInfo is unavailable (e.g. some test binaries).
func Build() BuildInfo {
	info := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// RegisterBuildInfo publishes the advhunter_build_info gauge (constant 1,
// identity in the labels — the standard Prometheus build-info idiom) on the
// registry. Idempotent: re-registration resolves the same series.
func RegisterBuildInfo(r *Registry) {
	b := Build()
	r.Gauge("advhunter_build_info",
		"Build identity; value is constant 1, the identity lives in the labels.",
		"version", "go_version").With(b.Version, b.GoVersion).Set(1)
}

// BuildInfoHandler serves the build identity as JSON — the /debug/vars-style
// endpoint the serve command mounts at /debug/build.
func BuildInfoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Build())
	})
}
