package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestTraceRecordLifecycle: a record built through the public surface renders
// the full wide event — id, status, routing fields, cache bit, stage timings
// with the queue stage feeding queue_wait.
func TestTraceRecordLifecycle(t *testing.T) {
	ring := NewTraceRing(4, nil)
	rec := ring.Start("r1")
	rec.SetStatus(200)
	rec.SetIndex(42)
	rec.SetTier("twin")
	rec.SetBackend("gmm")
	rec.SetVerdict("benign")
	rec.SetCacheHit(true)
	now := time.Now()
	rec.AddStage("decode", now, time.Millisecond)
	rec.AddStage("queue", now, 2*time.Millisecond)
	ring.Finish(rec)

	views := ring.Last(10)
	if len(views) != 1 {
		t.Fatalf("Last = %d views, want 1", len(views))
	}
	v := views[0]
	if v.ID != "r1" || v.Status != 200 || v.Index != 42 || v.Tier != "twin" ||
		v.Backend != "gmm" || v.Verdict != "benign" || !v.CacheHit {
		t.Fatalf("view = %+v", v)
	}
	if v.QueueWaitMs != 2 {
		t.Fatalf("queue_wait_ms = %v, want 2", v.QueueWaitMs)
	}
	if len(v.Stages) != 2 || v.Stages[0].Stage != "decode" || v.Stages[1].DurationMs != 2 {
		t.Fatalf("stages = %+v", v.Stages)
	}
	if v.TotalMs < 0 {
		t.Fatalf("total_ms = %v", v.TotalMs)
	}
}

// TestTraceNilSafety: a nil ring hands out nil records and the zero
// TraceContext swallows writes — tracing-off costs no branches at call sites.
func TestTraceNilSafety(t *testing.T) {
	var ring *TraceRing
	rec := ring.Start("x")
	if rec != nil {
		t.Fatal("nil ring issued a record")
	}
	rec.SetStatus(500)
	rec.AddStage("s", time.Now(), time.Second)
	ring.Finish(rec)
	if got := ring.Last(5); len(got) != 0 {
		t.Fatalf("nil ring Last = %v", got)
	}

	ctx := WithTrace(context.Background(), nil)
	tc := TraceFrom(ctx)
	tc.SetCacheHit(true)
	tc.stage("s", time.Now(), time.Second)
}

// TestTraceGenerationGuard: a TraceContext issued for one request cannot
// write into the record after it has been recycled to a later request — the
// late-span hazard (a queued job timing out after the handler answered).
func TestTraceGenerationGuard(t *testing.T) {
	ring := NewTraceRing(1, nil)
	first := ring.Start("first")
	stale := TraceFrom(WithTrace(context.Background(), first))
	ring.Finish(first)
	// Ring size 1: starting two more requests recycles "first"'s record.
	second := ring.Start("second")
	ring.Finish(second)
	third := ring.Start("third")

	stale.SetCacheHit(true)
	stale.stage("ghost", time.Now(), time.Second)

	ring.Finish(third)
	views := ring.Last(1)
	if len(views) != 1 || views[0].ID != "third" {
		t.Fatalf("views = %+v", views)
	}
	if views[0].CacheHit || len(views[0].Stages) != 0 {
		t.Fatalf("stale write leaked into recycled record: %+v", views[0])
	}
}

// TestSpanFeedsTrace: a span ended under a traced context lands its timing in
// the record, alongside the stage histogram it always fed.
func TestSpanFeedsTrace(t *testing.T) {
	reg := NewRegistry()
	tracer := NewTracer(reg, nil)
	ring := NewTraceRing(2, nil)

	rec := ring.Start("r1")
	ctx := WithTrace(WithTracer(context.Background(), tracer), rec)
	_, span := StartSpan(ctx, "measure")
	span.End()
	ring.Finish(rec)

	views := ring.Last(1)
	if len(views) != 1 || len(views[0].Stages) != 1 || views[0].Stages[0].Stage != "measure" {
		t.Fatalf("span did not reach the trace record: %+v", views)
	}
	var b strings.Builder
	reg.WriteTo(&b)
	if !strings.Contains(b.String(), `advhunter_stage_duration_seconds_count{stage="measure"} 1`) {
		t.Fatal("span missed the stage histogram")
	}
}

// TestTraceRingEvictionOrder: the ring keeps the newest n records, oldest
// first in Last, and Last(n) clamps to what is held.
func TestTraceRingEvictionOrder(t *testing.T) {
	ring := NewTraceRing(3, nil)
	for i := 1; i <= 5; i++ {
		rec := ring.Start("r" + strconv.Itoa(i))
		ring.Finish(rec)
	}
	views := ring.Last(10)
	if len(views) != 3 {
		t.Fatalf("Last = %d, want 3", len(views))
	}
	for i, want := range []string{"r3", "r4", "r5"} {
		if views[i].ID != want {
			t.Fatalf("views[%d].ID = %q, want %q (all: %+v)", i, views[i].ID, want, views)
		}
	}
	if got := ring.Last(2); len(got) != 2 || got[0].ID != "r4" {
		t.Fatalf("Last(2) = %+v", got)
	}
}

// TestTraceSink: with a sink every finished trace leaves as one JSON line.
func TestTraceSink(t *testing.T) {
	var buf bytes.Buffer
	ring := NewTraceRing(2, &buf)
	for _, id := range []string{"a", "b"} {
		rec := ring.Start(id)
		rec.SetStatus(200)
		ring.Finish(rec)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var v TraceView
	if err := json.Unmarshal([]byte(lines[1]), &v); err != nil || v.ID != "b" {
		t.Fatalf("sink line not a TraceView: %v %q", err, lines[1])
	}
}

// TestTraceHandler: /debug/trace merges rings (skipping nil ones), sorts by
// start time, and honours ?last.
func TestTraceHandler(t *testing.T) {
	r1 := NewTraceRing(4, nil)
	r2 := NewTraceRing(4, nil)
	for i := 0; i < 3; i++ {
		ring := r1
		if i%2 == 1 {
			ring = r2
		}
		rec := ring.Start("t" + strconv.Itoa(i))
		ring.Finish(rec)
		time.Sleep(time.Millisecond)
	}

	rr := httptest.NewRecorder()
	TraceHandler(r1, nil, r2).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?last=2", nil))
	var page struct {
		Count  int         `json:"count"`
		Traces []TraceView `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("trace page not JSON: %v\n%s", err, rr.Body.String())
	}
	if page.Count != 2 || len(page.Traces) != 2 {
		t.Fatalf("page = %+v", page)
	}
	if page.Traces[0].ID != "t1" || page.Traces[1].ID != "t2" {
		t.Fatalf("merge order wrong: %+v", page.Traces)
	}
}

// TestTraceRingAllocs: the steady-state record lifecycle — issue, annotate,
// stage, finish — allocates nothing once the pool is warm. This is the
// observe-only hot-path budget the serve pipeline relies on.
func TestTraceRingAllocs(t *testing.T) {
	ring := NewTraceRing(8, nil)
	now := time.Now()
	run := func() {
		rec := ring.Start("warm")
		rec.SetStatus(200)
		rec.SetTier("exact")
		rec.SetBackend("gmm")
		rec.SetVerdict("benign")
		rec.SetCacheHit(true)
		rec.AddStage("decode", now, time.Millisecond)
		rec.AddStage("queue", now, time.Millisecond)
		rec.AddStage("measure", now, time.Millisecond)
		ring.Finish(rec)
	}
	// Warm the pool and grow every record's stage slice to capacity.
	for i := 0; i < 32; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("trace lifecycle allocates %v per request, want 0", allocs)
	}
}

// TestValidRequestID: the header acceptance predicate.
func TestValidRequestID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc-123_X.z":            true,
		"r7":                     true,
		"":                       false,
		"has space":              false,
		"bad\nheader":            false,
		strings.Repeat("a", 128): true,
		strings.Repeat("a", 129): false,
	} {
		if got := ValidRequestID(id); got != want {
			t.Errorf("ValidRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}
