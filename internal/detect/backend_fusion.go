package detect

import (
	"encoding/gob"
	"fmt"

	"advhunter/internal/core"
	"advhunter/internal/gmm"
	"advhunter/internal/metrics"
	"advhunter/internal/uarch/hpc"
)

func init() {
	gob.RegisterName("detect.fusionScorer", &fusionScorer{})
	Register(Backend{
		Kind:        "fusion",
		Description: "one diagonal multivariate GMM per category over a joint event subset (single fused channel)",
		New: func(t *core.Template, cfg Config) ([]Scorer, error) {
			events := cfg.FusionEvents
			if len(events) == 0 {
				events = t.Events
			}
			cols := make([]int, len(events))
			for i, e := range events {
				n, err := eventColumn(t.Events, e)
				if err != nil {
					return nil, err
				}
				cols[i] = n
			}
			return []Scorer{&fusionScorer{Events: events, cols: cols}}, nil
		},
	})
}

// fusionScorer is the joint-model combinator: instead of one scorer per
// event it standardises a subset of events per category and fits one
// diagonal multivariate GMM over the joint readings, scored by negative
// log-likelihood. The whole detector has a single "fusion" channel.
type fusionScorer struct {
	// Events is the fused subset, in model-dimension order.
	Events []hpc.Event
	// Models[c] is category c's joint mixture (zero value when unmodelled;
	// K() == 0 marks it). Mean/Std hold the per-(category, dimension)
	// standardisation fitted on the template.
	Models []gmm.MultiModel
	Mean   [][]float64
	Std    [][]float64

	// cols maps model dimensions to template columns (fit-time only).
	cols []int
}

func (s *fusionScorer) Channel() string { return "fusion" }

func (s *fusionScorer) Fit(t *core.Template, cfg Config) error {
	s.Models = make([]gmm.MultiModel, t.Classes)
	s.Mean = make([][]float64, t.Classes)
	s.Std = make([][]float64, t.Classes)
	for c := 0; c < t.Classes; c++ {
		rows := t.Rows[c]
		if len(rows) < cfg.MinSamples {
			continue
		}
		mean := make([]float64, len(s.Events))
		std := make([]float64, len(s.Events))
		for i, n := range s.cols {
			mu, sd := metrics.MeanStd(t.Column(c, n))
			if sd == 0 {
				sd = 1
			}
			mean[i], std[i] = mu, sd
		}
		pts := make([][]float64, len(rows))
		for r, row := range rows {
			p := make([]float64, len(s.Events))
			for i, n := range s.cols {
				p[i] = (row[n] - mean[i]) / std[i]
			}
			pts[r] = p
		}
		sub := cfg.GMM
		sub.Seed = cfg.GMM.Seed ^ (uint64(c) << 16) ^ 0xf0f0
		model, err := gmm.FitBestMulti(pts, cfg.MaxK, sub)
		if err != nil {
			return fmt.Errorf("detect: fitting fusion class %d: %w", c, err)
		}
		s.Models[c] = *model
		s.Mean[c], s.Std[c] = mean, std
	}
	return nil
}

func (s *fusionScorer) Score(q core.Measurement) (float64, bool) {
	if q.Pred < 0 || q.Pred >= len(s.Models) || s.Models[q.Pred].K() == 0 {
		return 0, false
	}
	mean, std := s.Mean[q.Pred], s.Std[q.Pred]
	p := make([]float64, len(s.Events))
	for i, e := range s.Events {
		p[i] = (q.Counts.Get(e) - mean[i]) / std[i]
	}
	return s.Models[q.Pred].NegLogLikelihood(p), true
}

func (s *fusionScorer) validate(classes int, _ []hpc.Event) error {
	if len(s.Events) == 0 {
		return fmt.Errorf("detect: fusion scorer has no events")
	}
	for _, e := range s.Events {
		if e < 0 || e >= hpc.NumEvents {
			return fmt.Errorf("detect: fusion scorer has invalid event %d", int(e))
		}
	}
	if len(s.Models) != classes || len(s.Mean) != classes || len(s.Std) != classes {
		return fmt.Errorf("detect: fusion scorer has inconsistent category count")
	}
	for c := range s.Models {
		m := &s.Models[c]
		k := m.K()
		if k == 0 {
			continue
		}
		// MultiModel.LogLikelihood indexes x by the model dimension, so a
		// dimension mismatch here would panic Detect — reject it at load.
		if m.D != len(s.Events) || len(m.Means) != k || len(m.Vars) != k {
			return fmt.Errorf("detect: fusion scorer category %d is inconsistent", c)
		}
		for ki := 0; ki < k; ki++ {
			if len(m.Means[ki]) != m.D || len(m.Vars[ki]) != m.D {
				return fmt.Errorf("detect: fusion scorer category %d is ragged", c)
			}
			for _, v := range m.Vars[ki] {
				if !(v > 0) {
					return fmt.Errorf("detect: fusion scorer category %d has non-positive variance", c)
				}
			}
		}
		if len(s.Mean[c]) != len(s.Events) || len(s.Std[c]) != len(s.Events) {
			return fmt.Errorf("detect: fusion scorer category %d standardisation is inconsistent", c)
		}
		for _, sd := range s.Std[c] {
			if !(sd > 0) {
				return fmt.Errorf("detect: fusion scorer category %d has non-positive std", c)
			}
		}
	}
	return nil
}

// ScoreBatch delegates to the per-sample Score — this backend's model has no
// profitable batch form.
func (s *fusionScorer) ScoreBatch(qs []core.Measurement, out []float64, ok []bool) {
	scoreLoop(s, qs, out, ok)
}
