package detect

import "math"

// Uncertainty is the optional escalation interface of tiered serving: a
// detector that implements it can report whether a verdict's deciding score
// fell close enough to its threshold that a cheaper measurement tier should
// not be trusted with the final decision. Detectors without it are treated
// as always uncertain — every query escalates.
type Uncertainty interface {
	// Uncertain reports whether v's score on the given channel lies within
	// margin·(1+|threshold|) of the decision threshold for v's predicted
	// category. channel < 0 selects the detector's own decision rule: the
	// configured decision channel, or — when the decision is an OR over all
	// channels — uncertainty on any channel.
	Uncertain(v Verdict, channel int, margin float64) bool
}

// Uncertain implements Uncertainty for every fitted backend. An unmodelled
// verdict is never uncertain: no tier has a template for its category, so
// every tier returns the identical (empty) verdict and escalating buys
// nothing. The margin is relative with a unit floor — margin·(1+|Δ|) — so it
// reads as "within margin×" for the large thresholds of count channels and
// stays meaningful for thresholds near zero (log-likelihood channels).
func (d *Fitted) Uncertain(v Verdict, channel int, margin float64) bool {
	if !v.Modelled {
		return false
	}
	if channel < 0 {
		channel = d.decision
	}
	if channel >= 0 && channel < len(d.scorers) {
		return d.nearThreshold(v, channel, margin)
	}
	for si := range d.scorers {
		if d.nearThreshold(v, si, margin) {
			return true
		}
	}
	return false
}

func (d *Fitted) nearThreshold(v Verdict, si int, margin float64) bool {
	thr := d.thresholds[si][v.PredictedClass]
	return math.Abs(v.Scores[si]-thr) <= margin*(1+math.Abs(thr))
}
