package detect

import (
	"math"
	"testing"

	"advhunter/internal/core"
	"advhunter/internal/rng"
	"advhunter/internal/uarch/hpc"
)

// TestUncertainBand verifies the escalation predicate's geometry: scores far
// below or far above the decision threshold are certain, scores inside the
// margin band on either side are not, and widening the margin only adds
// uncertainty.
func TestUncertainBand(t *testing.T) {
	tpl := synthTemplate(3, 60, 7)
	d := mustFit(t, "gmm", tpl, DefaultConfig())
	ci := d.Detect(synthMeasurement(rng.New(1), 0, 1000)).ChannelIndex(hpc.CacheMisses)
	if ci < 0 {
		t.Fatal("gmm detector has no cache-misses channel")
	}
	thr := d.thresholds[ci][0]

	// Build verdicts with a pinned score on the decision channel.
	at := func(score float64) Verdict {
		v := d.Detect(synthMeasurement(rng.New(1), 0, 1000))
		v.Scores[ci] = score
		return v
	}
	band := 0.1 * (1 + math.Abs(thr))
	cases := []struct {
		score float64
		want  bool
	}{
		{thr - 10*band, false},
		{thr - 0.5*band, true},
		{thr, true},
		{thr + 0.5*band, true},
		{thr + 10*band, false},
	}
	for _, tc := range cases {
		if got := d.Uncertain(at(tc.score), ci, 0.1); got != tc.want {
			t.Errorf("Uncertain(score=%v, thr=%v, margin=0.1) = %v, want %v", tc.score, thr, got, tc.want)
		}
	}
	// Monotone in the margin: anything uncertain at 0.1 stays uncertain at 0.5.
	for _, tc := range cases {
		if d.Uncertain(at(tc.score), ci, 0.1) && !d.Uncertain(at(tc.score), ci, 0.5) {
			t.Errorf("score %v uncertain at margin 0.1 but certain at 0.5", tc.score)
		}
	}
}

// TestUncertainUnmodelledAndChannelSelection covers the two special cases:
// unmodelled verdicts are never uncertain (every tier returns the identical
// empty verdict), and channel -1 follows the detector's own decision rule.
func TestUncertainUnmodelledAndChannelSelection(t *testing.T) {
	tpl := synthTemplate(3, 60, 7)
	// Class 2 gets too few rows to be modelled.
	tpl.Rows[2] = tpl.Rows[2][:2]
	tpl.Confs[2] = tpl.Confs[2][:2]
	d := mustFit(t, "gmm", tpl, DefaultConfig())

	un := d.Detect(core.Measurement{Pred: 2, TrueLabel: 2, Conf: 0.9})
	if un.Modelled {
		t.Fatal("class 2 unexpectedly modelled")
	}
	if d.Uncertain(un, -1, 1e9) {
		t.Error("unmodelled verdict reported uncertain")
	}

	v := d.Detect(synthMeasurement(rng.New(2), 0, 1000))
	ci := v.ChannelIndex(hpc.CacheMisses)
	// Channel -1 resolves to the configured decision channel (cache-misses
	// under DefaultConfig), so the two calls must agree for any margin.
	for _, margin := range []float64{0.01, 0.1, 1, 10} {
		if d.Uncertain(v, -1, margin) != d.Uncertain(v, ci, margin) {
			t.Errorf("margin %v: Uncertain(-1) disagrees with Uncertain(decision channel)", margin)
		}
	}
}
