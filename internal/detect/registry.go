package detect

import (
	"fmt"
	"sort"

	"advhunter/internal/core"
)

// Backend is one registered detector family: a name, a one-line description
// for CLI listings, and a factory producing the family's unfitted scorers
// for a given template. The factory pairs with a gob codec: each backend's
// init registers its concrete scorer types under stable names, which is
// what lets persist write one self-describing envelope for any backend.
type Backend struct {
	Kind        string
	Description string
	// New builds the backend's scorers for a template; Fit is called on
	// each by the generic fitting path.
	New func(t *core.Template, cfg Config) ([]Scorer, error)
}

var backends = map[string]Backend{}

// Register adds a backend to the registry. It panics on duplicate names —
// registration happens in package init, where a duplicate is a programming
// error, not a runtime condition.
func Register(b Backend) {
	if b.Kind == "" || b.New == nil {
		panic("detect: Register needs a kind and a factory")
	}
	if _, dup := backends[b.Kind]; dup {
		panic(fmt.Sprintf("detect: backend %q registered twice", b.Kind))
	}
	backends[b.Kind] = b
}

// Lookup resolves a backend by name.
func Lookup(kind string) (Backend, bool) {
	b, ok := backends[kind]
	return b, ok
}

// Kinds lists the registered backend names, sorted.
func Kinds() []string {
	ks := make([]string, 0, len(backends))
	for k := range backends {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Describe returns a backend's one-line description ("" if unknown).
func Describe(kind string) string {
	return backends[kind].Description
}
