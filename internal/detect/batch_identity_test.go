package detect

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"advhunter/internal/core"
	"advhunter/internal/rng"
)

// batchSizes are the micro-batch widths the identity tests sweep: the width-1
// degenerate case, odd widths, and widths past the serving default.
var batchSizes = []int{1, 3, 8, 17}

// batchQueries builds a query mix that exercises every branch of the batched
// scorers: modelled classes at benign and anomalous levels, in-batch repeats
// of the same level, and out-of-range / negative predictions.
func batchQueries(classes, n int, seed uint64) []core.Measurement {
	r := rng.New(seed)
	qs := make([]core.Measurement, 0, n)
	for i := 0; i < n; i++ {
		c := i % classes
		switch {
		case i%7 == 5:
			q := synthMeasurement(r, c, 1000+200*float64(c))
			q.Pred = classes + 3 // out of range: unmodelled everywhere
			qs = append(qs, q)
		case i%7 == 6:
			q := synthMeasurement(r, c, 1000+200*float64(c))
			q.Pred = -1
			qs = append(qs, q)
		case i%3 == 0:
			qs = append(qs, synthMeasurement(r, c, 5000)) // anomalous level
		default:
			qs = append(qs, synthMeasurement(r, c, 1000+200*float64(c)))
		}
	}
	return qs
}

// requireVerdictIdentity compares a batched verdict against the per-sample
// one field by field, bitwise on the scores.
func requireVerdictIdentity(t *testing.T, kind string, i int, got, want Verdict) {
	t.Helper()
	if got.PredictedClass != want.PredictedClass || got.Modelled != want.Modelled || got.Fused != want.Fused {
		t.Fatalf("%s: query %d: batched verdict %+v, per-sample %+v", kind, i, got, want)
	}
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("%s: query %d: %d scores, want %d", kind, i, len(got.Scores), len(want.Scores))
	}
	for si := range want.Scores {
		if math.Float64bits(got.Scores[si]) != math.Float64bits(want.Scores[si]) {
			t.Fatalf("%s: query %d channel %d: batched score %v (bits %x), per-sample %v (bits %x)",
				kind, i, si, got.Scores[si], math.Float64bits(got.Scores[si]),
				want.Scores[si], math.Float64bits(want.Scores[si]))
		}
		if got.Flags[si] != want.Flags[si] {
			t.Fatalf("%s: query %d channel %d: batched flag %v, per-sample %v", kind, i, si, got.Flags[si], want.Flags[si])
		}
	}
}

// TestBatchIdentityScoreBatch pins the Scorer contract: for every registered
// backend, ScoreBatch fills exactly what Score returns, bit for bit, across
// batch widths and the full query mix (modelled, anomalous, unmodelled,
// out-of-range predictions).
func TestBatchIdentityScoreBatch(t *testing.T) {
	const classes = 3
	tpl := synthTemplate(classes, 60, 21)
	for _, kind := range Kinds() {
		d := mustFit(t, kind, tpl, DefaultConfig())
		for _, n := range batchSizes {
			qs := batchQueries(classes, n, uint64(100*n+len(kind)))
			for _, s := range d.scorers {
				out := make([]float64, n)
				oks := make([]bool, n)
				s.ScoreBatch(qs, out, oks)
				for i, q := range qs {
					want, wok := s.Score(q)
					if oks[i] != wok || math.Float64bits(out[i]) != math.Float64bits(want) {
						t.Fatalf("%s/%s: n=%d query %d: ScoreBatch (%v, %v), Score (%v, %v)",
							kind, s.Channel(), n, i, out[i], oks[i], want, wok)
					}
				}
			}
		}
	}
}

// TestBatchIdentityDetectBatch pins the Detector contract: DetectBatch fills
// verdicts identical to Detect across every backend and batch width, and the
// batched verdicts carry independently mutable Scores/Flags state.
func TestBatchIdentityDetectBatch(t *testing.T) {
	const classes = 3
	tpl := synthTemplate(classes, 60, 33)
	for _, kind := range Kinds() {
		d := mustFit(t, kind, tpl, DefaultConfig())
		for _, n := range batchSizes {
			qs := batchQueries(classes, n, uint64(200*n+len(kind)))
			vs := make([]Verdict, n)
			d.DetectBatch(qs, vs)
			for i, q := range qs {
				requireVerdictIdentity(t, kind, i, vs[i], d.Detect(q))
			}
			// Verdicts are response state: mutating one must not alias another.
			if n >= 2 && len(vs[0].Scores) > 0 {
				before := vs[1].Scores[0]
				vs[0].Scores[0] = math.Inf(1)
				if vs[1].Scores[0] != before {
					t.Fatalf("%s: verdict scores alias across batch entries", kind)
				}
			}
		}
	}
}

// TestBatchIdentityDetectPersisted covers the load path: a detector that went
// through Save → TryLoad rebuilds its hoisted batch constants in validate, so
// its ScoreBatch must stay bit-identical to the freshly fitted one.
func TestBatchIdentityDetectPersisted(t *testing.T) {
	const classes = 3
	tpl := synthTemplate(classes, 60, 47)
	for _, kind := range []string{"gmm", "gauss", "fusion"} {
		d := mustFit(t, kind, tpl, DefaultConfig())
		path := filepath.Join(t.TempDir(), kind+".gob")
		if err := Save(path, d); err != nil {
			t.Fatalf("Save(%q): %v", kind, err)
		}
		loaded, ok := TryLoad(path)
		if !ok {
			t.Fatalf("TryLoad(%q) missed a fresh artifact", kind)
		}
		qs := batchQueries(classes, 17, 61)
		vs := make([]Verdict, len(qs))
		loaded.DetectBatch(qs, vs)
		for i, q := range qs {
			requireVerdictIdentity(t, kind+"/persisted", i, vs[i], d.Detect(q))
		}
	}
}

// TestBatchDetectorInterface: Fitted satisfies BatchDetector, which is what
// the serve layer type-asserts for before fusing a batch.
func TestBatchDetectorInterface(t *testing.T) {
	tpl := synthTemplate(2, 30, 9)
	var det Detector = mustFit(t, "gauss", tpl, DefaultConfig())
	bd, ok := det.(BatchDetector)
	if !ok {
		t.Fatal("*Fitted must implement BatchDetector")
	}
	if !reflect.DeepEqual(bd.Channels(), det.Channels()) {
		t.Fatal("BatchDetector view must expose the same channels")
	}
}
