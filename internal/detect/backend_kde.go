package detect

import (
	"encoding/gob"
	"fmt"
	"math"

	"advhunter/internal/core"
	"advhunter/internal/metrics"
	"advhunter/internal/uarch/hpc"
)

func init() {
	gob.RegisterName("detect.kdeScorer", &kdeScorer{})
	Register(Backend{
		Kind:        "kde",
		Description: "per-(category, event) Gaussian kernel density estimate scored by negative log-density",
		New: func(t *core.Template, cfg Config) ([]Scorer, error) {
			scorers := make([]Scorer, len(t.Events))
			for n, e := range t.Events {
				scorers[n] = &kdeScorer{Event: e, Index: n}
			}
			return scorers, nil
		},
	})
}

// kdeScorer is the non-parametric density backend: the template column
// itself is the model, smoothed by a Gaussian kernel with Silverman's
// rule-of-thumb bandwidth, and scored by negative log-density — no
// component-count selection at all, the opposite end of the modelling
// spectrum from the BIC-searched GMM.
type kdeScorer struct {
	Event hpc.Event
	Index int
	// Samples[c] is category c's template column (nil when unmodelled);
	// Bandwidth[c] is its Silverman bandwidth.
	Samples   [][]float64
	Bandwidth []float64
}

func (s *kdeScorer) Channel() string { return s.Event.String() }

func (s *kdeScorer) Fit(t *core.Template, cfg Config) error {
	s.Samples = make([][]float64, t.Classes)
	s.Bandwidth = make([]float64, t.Classes)
	for c := 0; c < t.Classes; c++ {
		if len(t.Rows[c]) < cfg.MinSamples {
			continue
		}
		col := t.Column(c, s.Index)
		_, sd := metrics.MeanStd(col)
		h := 1.06 * sd * math.Pow(float64(len(col)), -0.2)
		if h <= 0 {
			h = 1 // degenerate column: fall back to a unit kernel
		}
		s.Samples[c], s.Bandwidth[c] = col, h
	}
	return nil
}

func (s *kdeScorer) Score(q core.Measurement) (float64, bool) {
	if q.Pred < 0 || q.Pred >= len(s.Samples) || len(s.Samples[q.Pred]) == 0 {
		return 0, false
	}
	pts, h := s.Samples[q.Pred], s.Bandwidth[q.Pred]
	x := q.Counts.Get(s.Event)
	sum := 0.0
	for _, p := range pts {
		z := (x - p) / h
		sum += math.Exp(-0.5 * z * z)
	}
	density := sum / (float64(len(pts)) * h * math.Sqrt(2*math.Pi))
	return -math.Log(math.Max(density, 1e-300)), true
}

func (s *kdeScorer) validate(classes int, _ []hpc.Event) error {
	if s.Event < 0 || s.Event >= hpc.NumEvents {
		return fmt.Errorf("detect: kde scorer has invalid event %d", int(s.Event))
	}
	if len(s.Samples) != classes || len(s.Bandwidth) != classes {
		return fmt.Errorf("detect: kde scorer has inconsistent category count")
	}
	for c, pts := range s.Samples {
		if len(pts) > 0 && !(s.Bandwidth[c] > 0) {
			return fmt.Errorf("detect: kde scorer category %d has non-positive bandwidth", c)
		}
	}
	return nil
}

// ScoreBatch delegates to the per-sample Score — this backend's model has no
// profitable batch form.
func (s *kdeScorer) ScoreBatch(qs []core.Measurement, out []float64, ok []bool) {
	scoreLoop(s, qs, out, ok)
}
