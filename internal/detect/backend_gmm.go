package detect

import (
	"encoding/gob"
	"fmt"

	"advhunter/internal/core"
	"advhunter/internal/gmm"
	"advhunter/internal/uarch/hpc"
)

func init() {
	gob.RegisterName("detect.gmmScorer", &gmmScorer{})
	Register(Backend{
		Kind:        "gmm",
		Description: "per-(category, event) univariate GMM with BIC-selected components (the paper's detector)",
		New: func(t *core.Template, cfg Config) ([]Scorer, error) {
			scorers := make([]Scorer, len(t.Events))
			for n, e := range t.Events {
				scorers[n] = &gmmScorer{Event: e, Index: n}
			}
			return scorers, nil
		},
	})
}

// gmmScorer is the paper's detector for one event: a univariate GMM per
// category, scored by negative log-likelihood. Models are stored by value
// (gob cannot encode nil pointers); K() == 0 marks an unmodelled category.
type gmmScorer struct {
	Event hpc.Event
	// Index is the event's position in the template, which keys the
	// per-(category, event) fit seed.
	Index int
	// Models[c] is category c's mixture; the zero Model when unmodelled.
	Models []gmm.Model
}

func (s *gmmScorer) Channel() string { return s.Event.String() }

func (s *gmmScorer) Fit(t *core.Template, cfg Config) error {
	s.Models = make([]gmm.Model, t.Classes)
	for c := 0; c < t.Classes; c++ {
		if len(t.Rows[c]) < cfg.MinSamples {
			continue
		}
		col := t.Column(c, s.Index)
		sub := cfg.GMM
		sub.Seed = cfg.GMM.Seed ^ (uint64(c)<<32 | uint64(s.Index))
		var model *gmm.Model
		var err error
		if cfg.ForceK > 0 {
			model, err = gmm.Fit(col, cfg.ForceK, sub)
		} else {
			model, err = gmm.FitBest(col, cfg.MaxK, sub)
		}
		if err != nil {
			return fmt.Errorf("detect: fitting class %d event %v: %w", c, s.Event, err)
		}
		s.Models[c] = *model
	}
	return nil
}

func (s *gmmScorer) Score(q core.Measurement) (float64, bool) {
	if q.Pred < 0 || q.Pred >= len(s.Models) || s.Models[q.Pred].K() == 0 {
		return 0, false
	}
	return s.Models[q.Pred].NegLogLikelihood(q.Counts.Get(s.Event)), true
}

func (s *gmmScorer) validate(classes int, _ []hpc.Event) error {
	if s.Event < 0 || s.Event >= hpc.NumEvents {
		return fmt.Errorf("detect: gmm scorer has invalid event %d", int(s.Event))
	}
	if len(s.Models) != classes {
		return fmt.Errorf("detect: gmm scorer has %d categories, want %d", len(s.Models), classes)
	}
	for c, m := range s.Models {
		k := m.K()
		if k == 0 {
			continue
		}
		if len(m.Means) != k || len(m.Vars) != k {
			return fmt.Errorf("detect: gmm scorer category %d is inconsistent", c)
		}
		for _, v := range m.Vars {
			if !(v > 0) {
				return fmt.Errorf("detect: gmm scorer category %d has non-positive variance", c)
			}
		}
	}
	return nil
}
