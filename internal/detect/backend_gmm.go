package detect

import (
	"encoding/gob"
	"fmt"
	"math"

	"advhunter/internal/core"
	"advhunter/internal/gmm"
	"advhunter/internal/uarch/hpc"
)

func init() {
	gob.RegisterName("detect.gmmScorer", &gmmScorer{})
	Register(Backend{
		Kind:        "gmm",
		Description: "per-(category, event) univariate GMM with BIC-selected components (the paper's detector)",
		New: func(t *core.Template, cfg Config) ([]Scorer, error) {
			scorers := make([]Scorer, len(t.Events))
			for n, e := range t.Events {
				scorers[n] = &gmmScorer{Event: e, Index: n}
			}
			return scorers, nil
		},
	})
}

// gmmScorer is the paper's detector for one event: a univariate GMM per
// category, scored by negative log-likelihood. Models are stored by value
// (gob cannot encode nil pointers); K() == 0 marks an unmodelled category.
type gmmScorer struct {
	Event hpc.Event
	// Index is the event's position in the template, which keys the
	// per-(category, event) fit seed.
	Index int
	// Models[c] is category c's mixture; the zero Model when unmodelled.
	Models []gmm.Model

	// pre[c] holds category c's hoisted per-component constants for the
	// vectorized ScoreBatch. Built by Fit and by validate (the load path) and
	// immutable afterwards, so concurrent serve workers can share the scorer.
	// Unexported: never persisted, always rebuilt from Models.
	pre []gmmPre
}

// gmmPre caches the input-independent parts of one mixture's log-likelihood
// terms: LogW[k] = ln π_k and Base[k] = ln2π + ln σ²_k.
type gmmPre struct {
	logW []float64
	base []float64
}

// buildPre refreshes the hoisted constants from Models.
func (s *gmmScorer) buildPre() {
	s.pre = make([]gmmPre, len(s.Models))
	for c := range s.Models {
		m := &s.Models[c]
		k := m.K()
		if k == 0 {
			continue
		}
		p := gmmPre{logW: make([]float64, k), base: make([]float64, k)}
		for j := 0; j < k; j++ {
			p.logW[j] = math.Log(m.Weights[j])
			p.base[j] = gmm.Log2Pi + math.Log(m.Vars[j])
		}
		s.pre[c] = p
	}
}

func (s *gmmScorer) Channel() string { return s.Event.String() }

func (s *gmmScorer) Fit(t *core.Template, cfg Config) error {
	s.Models = make([]gmm.Model, t.Classes)
	for c := 0; c < t.Classes; c++ {
		if len(t.Rows[c]) < cfg.MinSamples {
			continue
		}
		col := t.Column(c, s.Index)
		sub := cfg.GMM
		sub.Seed = cfg.GMM.Seed ^ (uint64(c)<<32 | uint64(s.Index))
		var model *gmm.Model
		var err error
		if cfg.ForceK > 0 {
			model, err = gmm.Fit(col, cfg.ForceK, sub)
		} else {
			model, err = gmm.FitBest(col, cfg.MaxK, sub)
		}
		if err != nil {
			return fmt.Errorf("detect: fitting class %d event %v: %w", c, s.Event, err)
		}
		s.Models[c] = *model
	}
	s.buildPre()
	return nil
}

func (s *gmmScorer) Score(q core.Measurement) (float64, bool) {
	if q.Pred < 0 || q.Pred >= len(s.Models) || s.Models[q.Pred].K() == 0 {
		return 0, false
	}
	return s.Models[q.Pred].NegLogLikelihood(q.Counts.Get(s.Event)), true
}

// ScoreBatch evaluates the mixture likelihoods with the per-component
// constants hoisted out of the sample loop. Per term it computes
// logW + (−0.5·(base + d²/σ²)) with base = ln2π + lnσ² — the grouping
// LogLikelihood's left-associative expression produces — and reduces with
// the same LogSumExp, so every score is bit-identical to Score. The terms
// scratch is allocated once per call (never shared), keeping the scorer
// safe for concurrent batches.
func (s *gmmScorer) ScoreBatch(qs []core.Measurement, out []float64, ok []bool) {
	if s.pre == nil {
		// A hand-built scorer that skipped Fit/validate: stay correct.
		scoreLoop(s, qs, out, ok)
		return
	}
	maxK := 0
	for c := range s.Models {
		if k := s.Models[c].K(); k > maxK {
			maxK = k
		}
	}
	terms := make([]float64, maxK)
	for i := range qs {
		q := &qs[i]
		if q.Pred < 0 || q.Pred >= len(s.Models) || s.Models[q.Pred].K() == 0 {
			out[i], ok[i] = 0, false
			continue
		}
		m := &s.Models[q.Pred]
		p := &s.pre[q.Pred]
		x := q.Counts.Get(s.Event)
		t := terms[:m.K()]
		for k := range t {
			d := x - m.Means[k]
			t[k] = p.logW[k] + -0.5*(p.base[k]+d*d/m.Vars[k])
		}
		out[i], ok[i] = -gmm.LogSumExp(t), true
	}
}

func (s *gmmScorer) validate(classes int, _ []hpc.Event) error {
	if s.Event < 0 || s.Event >= hpc.NumEvents {
		return fmt.Errorf("detect: gmm scorer has invalid event %d", int(s.Event))
	}
	if len(s.Models) != classes {
		return fmt.Errorf("detect: gmm scorer has %d categories, want %d", len(s.Models), classes)
	}
	for c, m := range s.Models {
		k := m.K()
		if k == 0 {
			continue
		}
		if len(m.Means) != k || len(m.Vars) != k {
			return fmt.Errorf("detect: gmm scorer category %d is inconsistent", c)
		}
		for _, v := range m.Vars {
			if !(v > 0) {
				return fmt.Errorf("detect: gmm scorer category %d has non-positive variance", c)
			}
		}
	}
	// validate is the load path's rebuild hook: the hoisted ScoreBatch
	// constants are unexported (never persisted), so refresh them here.
	s.buildPre()
	return nil
}
