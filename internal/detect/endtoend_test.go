package detect

import (
	"sync"
	"testing"

	"advhunter/internal/attack"
	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/engine"
	"advhunter/internal/models"
	"advhunter/internal/train"
	"advhunter/internal/uarch/hpc"
)

// e2e holds the shared end-to-end fixture: a trained classifier, its
// instrumented engine, a fitted detector and measured clean/adversarial
// sets.
type e2e struct {
	ds    *data.Dataset
	meas  *core.Measurer
	tpl   *core.Template
	det   *Fitted
	clean []core.Measurement // clean test images predicted as the target class
	adv   []core.Measurement // successful targeted AEs (predicted target class)
}

var (
	e2eOnce sync.Once
	e2eFix  *e2e
)

const e2eTarget = 6 // 'shirt'

func getE2E(t *testing.T) *e2e {
	t.Helper()
	e2eOnce.Do(func() {
		ds := data.MustSynth("fashionmnist", 77, 40, 20)
		m := models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 9)
		cfg := train.DefaultConfig()
		cfg.Epochs = 30
		cfg.LearningRate = 0.02
		cfg.TargetAccuracy = 0.999
		res := train.SGD(m, ds, cfg)
		if res.TestAccuracy < 0.85 {
			return
		}
		meas := core.NewMeasurer(engine.NewDefault(m), 1234)

		// Offline phase: template from the training split (defender's
		// clean validation set), M = 40 per class.
		tpl := core.BuildTemplate(meas, ds.Train, ds.Classes, hpc.CoreEvents())
		det, err := Fit("gmm", tpl, DefaultConfig())
		if err != nil {
			return
		}

		// Clean negatives: test images of the target class.
		var cleanSamples []data.Sample
		for _, s := range ds.Test {
			if s.Label == e2eTarget {
				cleanSamples = append(cleanSamples, s)
			}
		}
		// Positives: targeted FGSM AEs from other classes, successful only.
		atk := attack.NewTargetedFGSM(0.5, e2eTarget)
		var sources []data.Sample
		for _, s := range ds.Test {
			if s.Label != e2eTarget && len(sources) < 60 {
				sources = append(sources, s)
			}
		}
		crafted := attack.Craft(m, atk, sources)
		advSamples := attack.Successful(atk, crafted)
		if len(advSamples) < 20 {
			return
		}
		e2eFix = &e2e{
			ds:    ds,
			meas:  meas,
			tpl:   tpl,
			det:   det,
			clean: core.MeasureSet(meas, cleanSamples),
			adv:   core.MeasureSet(meas, advSamples),
		}
	})
	if e2eFix == nil {
		t.Fatal("end-to-end fixture failed to build (training or attack collapsed)")
	}
	return e2eFix
}

// TestEndToEndCacheMissesDetect is the repository's headline assertion: on
// the full pipeline, the cache-misses event separates clean inputs from
// adversarial ones (the paper reports F1 ≈ 0.99 for this configuration).
func TestEndToEndCacheMissesDetect(t *testing.T) {
	f := getE2E(t)
	conf := EvaluateEvent(f.det, hpc.CacheMisses, f.clean, f.adv, 0)
	t.Logf("cache-misses: %v acc=%.3f F1=%.3f (clean=%d adv=%d)",
		conf, conf.Accuracy(), conf.F1(), len(f.clean), len(f.adv))
	if conf.F1() < 0.9 {
		t.Fatalf("cache-misses F1 = %.3f, expected strong separation", conf.F1())
	}
}

// TestEndToEndWeakEvents verifies the paper's negative result: instruction
// and branch counts carry (almost) no signal.
func TestEndToEndWeakEvents(t *testing.T) {
	f := getE2E(t)
	for _, e := range []hpc.Event{hpc.Instructions, hpc.Branches} {
		conf := EvaluateEvent(f.det, e, f.clean, f.adv, 0)
		t.Logf("%v: acc=%.3f F1=%.3f", e, conf.Accuracy(), conf.F1())
		if conf.Recall() > 0.5 {
			t.Fatalf("%v detected %.0f%% of AEs; it should be uninformative",
				e, 100*conf.Recall())
		}
	}
}

// TestEndToEndOrdering: cache-misses must dominate the weak events, the
// paper's central comparative claim (Table 2's last row).
func TestEndToEndOrdering(t *testing.T) {
	f := getE2E(t)
	cm := EvaluateEvent(f.det, hpc.CacheMisses, f.clean, f.adv, 0).F1()
	instr := EvaluateEvent(f.det, hpc.Instructions, f.clean, f.adv, 0).F1()
	br := EvaluateEvent(f.det, hpc.Branches, f.clean, f.adv, 0).F1()
	if cm <= instr || cm <= br {
		t.Fatalf("event ordering violated: cache-misses %.3f vs instructions %.3f, branches %.3f", cm, instr, br)
	}
}

// TestEndToEndPipelineScan exercises the deployed-shape API.
func TestEndToEndPipelineScan(t *testing.T) {
	f := getE2E(t)
	p := &Pipeline{M: f.meas, D: f.det}
	res := p.Scan(f.ds.Test[0].X)
	if len(res.Scores) != len(hpc.CoreEvents()) {
		t.Fatalf("scan returned %d scores", len(res.Scores))
	}
}

// TestEndToEndFalsePositiveRate: clean inputs of *all* classes should rarely
// trip the cache-misses rule (the 3σ rule bounds false positives).
func TestEndToEndFalsePositiveRate(t *testing.T) {
	f := getE2E(t)
	flags := 0
	all := core.MeasureSet(f.meas, f.ds.Test[:80])
	for _, m := range all {
		if f.det.Detect(m).FlaggedBy(hpc.CacheMisses) {
			flags++
		}
	}
	if rate := float64(flags) / float64(len(all)); rate > 0.15 {
		t.Fatalf("clean false-positive rate %.2f too high", rate)
	}
}

// TestEndToEndAlternativeBackends: the new density backends must hold up on
// the real pipeline too, not just on synthetic columns — each reaches the
// same qualitative separation on cache-misses through the unified API.
func TestEndToEndAlternativeBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("fits every backend on the full fixture; skipped in -short mode")
	}
	f := getE2E(t)
	for _, kind := range []string{"gauss", "kde", "knn"} {
		det, err := Fit(kind, f.tpl, DefaultConfig())
		if err != nil {
			t.Fatalf("Fit(%q): %v", kind, err)
		}
		conf := EvaluateEvent(det, hpc.CacheMisses, f.clean, f.adv, 0)
		t.Logf("%s cache-misses: acc=%.3f F1=%.3f", kind, conf.Accuracy(), conf.F1())
		if conf.F1() < 0.8 {
			t.Fatalf("%s: cache-misses F1 = %.3f on the end-to-end fixture", kind, conf.F1())
		}
	}
}
