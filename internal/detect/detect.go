// Package detect is the pluggable detection stack on top of core's
// measurement protocol. A detector is a set of Scorers — one anomaly score
// per decision channel — plus per-(channel, category) thresholds derived
// from the clean template by the paper's kσ rule. Every detector family
// (the per-event GMMs of the paper, the multivariate fusion extension, the
// soft-label confidence baseline, and the Mahalanobis/KDE/k-NN variants)
// is a registered backend behind the same Fit / Detect / Evaluate / persist
// code path, selected by name.
package detect

import (
	"fmt"

	"advhunter/internal/core"
	"advhunter/internal/gmm"
	"advhunter/internal/uarch/hpc"
)

// Config controls detector fitting, across all backends. Backends ignore
// the knobs that do not apply to them.
type Config struct {
	// MaxK caps the BIC search over GMM component counts (paper: small).
	MaxK int
	// SigmaFactor is the threshold multiplier (paper: 3, the 3σ rule).
	SigmaFactor float64
	// MinSamples is the smallest per-category template size accepted.
	MinSamples int
	// GMM configures the EM fits (gmm and fusion backends).
	GMM gmm.Config
	// ForceK, when positive, disables BIC selection and fits exactly K
	// components (the single-Gaussian ablation uses ForceK = 1).
	ForceK int
	// K is the neighbour count of the k-NN backend.
	K int
	// DecisionEvent names the channel that decides Verdict.Fused for
	// per-event backends (paper: cache-misses). If the fitted detector has
	// no such channel, the fused decision is the OR over all channels.
	DecisionEvent hpc.Event
	// FusionEvents is the event subset the fusion backend models jointly;
	// empty means every template event.
	FusionEvents []hpc.Event
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{
		MaxK:          5,
		SigmaFactor:   3,
		MinSamples:    4,
		GMM:           gmm.DefaultConfig(),
		K:             5,
		DecisionEvent: hpc.CacheMisses,
	}
}

// Scorer is one decision channel of a detector: an anomaly score over
// measurements, fitted per predicted category on the clean template.
// Implementations live in this package (the unexported validate method,
// which guards deserialized state, seals the interface); new scorers are
// added by registering a backend.
type Scorer interface {
	// Channel names the score stream (an event name for per-event scorers,
	// "fusion" or "confidence" for the combinators).
	Channel() string
	// Fit estimates the scorer's per-category parameters from the template,
	// skipping categories with fewer than cfg.MinSamples rows.
	Fit(t *core.Template, cfg Config) error
	// Score returns the anomaly score of a measurement under the model of
	// its predicted category; ok is false when that category is unmodelled
	// by this scorer.
	Score(q core.Measurement) (float64, bool)
	// ScoreBatch scores a micro-batch: out[i], ok[i] receive exactly what
	// Score(qs[i]) returns, bit for bit. Vectorized backends hoist their
	// per-category constants out of the sample loop; the rest delegate to
	// Score per sample. Implementations are read-only, so one fitted scorer
	// may serve concurrent batches.
	ScoreBatch(qs []core.Measurement, out []float64, ok []bool)
	// validate checks structural invariants of (possibly deserialized)
	// scorer state, so a corrupt artifact can never panic Detect.
	validate(classes int, events []hpc.Event) error
}

// scoreLoop is the per-sample ScoreBatch fallback for scorers whose models
// have no profitable batch form (neighbour scans, kernel sums).
func scoreLoop(s Scorer, qs []core.Measurement, out []float64, ok []bool) {
	for i := range qs {
		out[i], ok[i] = s.Score(qs[i])
	}
}

// Detector is a fitted detector: Detect maps one measurement to a Verdict.
type Detector interface {
	// Kind is the backend name the detector was fitted under.
	Kind() string
	// Events lists the template events the detector was fitted on.
	Events() []hpc.Event
	// Channels names the score streams, aligned with Verdict.Scores/Flags.
	Channels() []string
	// Detect runs the online phase on one measured reading.
	Detect(q core.Measurement) Verdict
}

// BatchDetector is implemented by detectors that can score a drained
// micro-batch in one channel-major pass; Fitted implements it, and the serve
// layer type-asserts for it to fuse measure→score per batch. DetectBatch
// fills vs[i] with exactly what Detect(qs[i]) returns.
type BatchDetector interface {
	Detector
	DetectBatch(qs []core.Measurement, vs []Verdict)
}

// Verdict is one online-phase decision: the per-channel scores and flags,
// and the fused decision.
type Verdict struct {
	PredictedClass int
	// Channels names each score stream (shared, read-only).
	Channels []string
	// Scores[i] is the anomaly score of channel i (0 when unmodelled).
	Scores []float64
	// Flags[i] reports Scores[i] > threshold for the predicted category.
	Flags []bool
	// Modelled reports whether the predicted category had a template.
	Modelled bool
	// Fused is the detector's single decision: the configured decision
	// channel's flag, or the OR over all channels when none is configured.
	Fused bool

	// eventIdx maps events to channel indices (shared with the detector,
	// read-only) so FlaggedBy is O(1) instead of a scan per call.
	eventIdx map[hpc.Event]int
}

// FlaggedBy reports whether the named event's channel flagged the input;
// false when the detector has no such channel.
func (v Verdict) FlaggedBy(e hpc.Event) bool {
	if i, ok := v.eventIdx[e]; ok {
		return v.Flags[i]
	}
	return false
}

// ChannelIndex locates an event's channel (-1 if the detector has none).
func (v Verdict) ChannelIndex(e hpc.Event) int {
	if i, ok := v.eventIdx[e]; ok {
		return i
	}
	return -1
}

// AnyFlag reports whether any channel flagged the input (OR fusion).
func (v Verdict) AnyFlag() bool {
	for _, f := range v.Flags {
		if f {
			return true
		}
	}
	return false
}

// eventColumn maps an event to its index in the template's event list.
func eventColumn(events []hpc.Event, e hpc.Event) (int, error) {
	for n, ev := range events {
		if ev == e {
			return n, nil
		}
	}
	return 0, fmt.Errorf("detect: event %v not in template", e)
}
