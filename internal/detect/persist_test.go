package detect

import (
	"os"
	"path/filepath"
	"testing"

	"advhunter/internal/core"
	"advhunter/internal/gmm"
	"advhunter/internal/metrics"
	"advhunter/internal/persist"
	"advhunter/internal/rng"
	"advhunter/internal/uarch/hpc"
)

// TestSaveLoadRoundTripEveryBackend: every registered backend survives the
// one envelope format with bit-exact scoring after reload.
func TestSaveLoadRoundTripEveryBackend(t *testing.T) {
	tpl := synthTemplate(3, 40, 101)
	dir := t.TempDir()
	r := rng.New(103)
	var queries []core.Measurement
	for i := 0; i < 20; i++ {
		queries = append(queries, synthMeasurement(r, i%3, 1000+400*float64(i%2)))
	}
	for _, kind := range Kinds() {
		d := mustFit(t, kind, tpl, DefaultConfig())
		path := filepath.Join(dir, kind+".gob")
		if err := Save(path, d); err != nil {
			t.Fatalf("Save(%s): %v", kind, err)
		}
		back, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", kind, err)
		}
		if back.Kind() != kind {
			t.Fatalf("reloaded kind %q, want %q", back.Kind(), kind)
		}
		if got, want := back.Channels(), d.Channels(); len(got) != len(want) {
			t.Fatalf("%s: channels %v -> %v", kind, want, got)
		}
		for qi, q := range queries {
			a, b := d.Detect(q), back.Detect(q)
			if a.Fused != b.Fused || a.Modelled != b.Modelled {
				t.Fatalf("%s: query %d decisions diverge after reload: %+v vs %+v", kind, qi, a, b)
			}
			for si := range a.Scores {
				if a.Scores[si] != b.Scores[si] {
					t.Fatalf("%s: query %d score %d not bit-exact: %g vs %g", kind, qi, si, a.Scores[si], b.Scores[si])
				}
			}
		}
	}
}

// TestTryLoadMissSemantics: every broken input is a miss, never an error
// surface and never a panic.
func TestTryLoadMissSemantics(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]func(path string) error{
		"empty path":    nil, // handled below with ""
		"absent file":   func(string) error { return nil },
		"empty file":    func(p string) error { return os.WriteFile(p, nil, 0o644) },
		"garbage bytes": func(p string) error { return os.WriteFile(p, []byte("not a gob stream at all"), 0o644) },
		"foreign schema": func(p string) error {
			return persist.Save(p, 9, &struct{ X int }{42})
		},
		"wrong payload type": func(p string) error {
			return persist.Save(p, DetectorSchema, &struct{ Y string }{"nope"})
		},
	}
	if d, ok := TryLoad(""); ok || d != nil {
		t.Fatal("empty path was not a miss")
	}
	for name, write := range cases {
		if write == nil {
			continue
		}
		p := filepath.Join(dir, name+".gob")
		if name == "absent file" {
			p = filepath.Join(dir, "never-written.gob")
		} else if err := write(p); err != nil {
			t.Fatalf("%s: setup: %v", name, err)
		}
		if d, ok := TryLoad(p); ok || d != nil {
			t.Fatalf("%s: loaded a detector from a broken artifact", name)
		}
	}
	// Truncated valid artifact.
	tpl := synthTemplate(2, 20, 107)
	d := mustFit(t, "gmm", tpl, DefaultConfig())
	full := filepath.Join(dir, "full.gob")
	if err := Save(full, d); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, len(raw) / 2, len(raw) - 1} {
		p := filepath.Join(dir, "trunc.gob")
		if err := os.WriteFile(p, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := TryLoad(p); ok {
			t.Fatalf("loaded from %d of %d bytes", n, len(raw))
		}
	}
	// The intact artifact still loads — the misses above were the file's fault.
	if _, ok := TryLoad(full); !ok {
		t.Fatal("intact artifact missed")
	}
}

// TestLoadRejectsUnknownBackendArtifact: a schema-2 envelope naming a
// backend this binary does not register is a miss, not an error or panic.
func TestLoadRejectsUnknownBackendArtifact(t *testing.T) {
	tpl := synthTemplate(2, 20, 109)
	d := mustFit(t, "gmm", tpl, DefaultConfig())
	dto := fittedDTO{
		Kind:       "from-the-future",
		Events:     d.events,
		Classes:    d.classes,
		Decision:   hpc.CacheMisses,
		Modelled:   d.modelled,
		Thresholds: d.thresholds,
		Scorers:    d.scorers,
	}
	p := filepath.Join(t.TempDir(), "future.gob")
	if err := persist.Save(p, DetectorSchema, &dto); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(p); err == nil {
		t.Fatal("Load accepted an unknown backend")
	}
	if _, ok := TryLoad(p); ok {
		t.Fatal("TryLoad treated an unknown backend as a hit")
	}
}

// TestLegacyDetectorStillLoads writes a pre-registry schema-1 artifact
// (the exact layout core.SaveDetector used) and proves the shim lifts it
// into a working gmm-backend detector with the same scores a fresh schema-2
// fit produces on the same template and seed.
func TestLegacyDetectorStillLoads(t *testing.T) {
	tpl := synthTemplate(3, 40, 113)
	cfg := DefaultConfig()

	// Hand-build the legacy DTO the way the old per-event GMM trainer did:
	// per (category, event) mixture with the same derived seed, threshold
	// mean + 3σ over the template's own scores.
	dto := legacyDTO{Events: append([]hpc.Event{}, synthEvents...)}
	for c := 0; c < tpl.Classes; c++ {
		cat := legacyCatDTO{Modelled: true}
		for idx := range synthEvents {
			col := tpl.Column(c, idx)
			sub := cfg.GMM
			sub.Seed = cfg.GMM.Seed ^ (uint64(c)<<32 | uint64(idx))
			model, err := gmm.FitBest(col, cfg.MaxK, sub)
			if err != nil {
				t.Fatal(err)
			}
			scores := make([]float64, len(col))
			for i, x := range col {
				scores[i] = model.NegLogLikelihood(x)
			}
			mean, std := metrics.MeanStd(scores)
			cat.Models = append(cat.Models, *model)
			cat.Thresholds = append(cat.Thresholds, mean+cfg.SigmaFactor*std)
		}
		dto.Cats = append(dto.Cats, cat)
	}
	p := filepath.Join(t.TempDir(), "legacy.gob")
	if err := persist.Save(p, legacySchema, &dto); err != nil {
		t.Fatal(err)
	}

	legacy, ok := TryLoad(p)
	if !ok {
		t.Fatal("legacy schema-1 artifact did not load")
	}
	if legacy.Kind() != "gmm" {
		t.Fatalf("legacy artifact lifted to kind %q", legacy.Kind())
	}
	fresh := mustFit(t, "gmm", tpl, cfg)
	r := rng.New(127)
	for i := 0; i < 30; i++ {
		q := synthMeasurement(r, i%3, 1000+300*float64(i%3))
		a, b := legacy.Detect(q), fresh.Detect(q)
		if a.Fused != b.Fused {
			t.Fatalf("legacy and fresh detectors disagree on query %d", i)
		}
		for si := range a.Scores {
			if a.Scores[si] != b.Scores[si] {
				t.Fatalf("query %d score %d differs: legacy %g, fresh %g", i, si, a.Scores[si], b.Scores[si])
			}
		}
		if legacy.Detect(q).FlaggedBy(hpc.CacheMisses) != b.FlaggedBy(hpc.CacheMisses) {
			t.Fatalf("legacy FlaggedBy diverges on query %d", i)
		}
	}
	// A far-out query must flag through the shimmed detector.
	if !legacy.Detect(synthMeasurement(r, 0, 1e6)).FlaggedBy(hpc.CacheMisses) {
		t.Fatal("legacy detector missed an extreme anomaly")
	}
}

func TestLegacyArtifactValidation(t *testing.T) {
	dir := t.TempDir()
	save := func(name string, dto legacyDTO) string {
		p := filepath.Join(dir, name+".gob")
		if err := persist.Save(p, legacySchema, &dto); err != nil {
			t.Fatal(err)
		}
		return p
	}
	empty := save("empty", legacyDTO{})
	badEvent := save("bad-event", legacyDTO{
		Events: []hpc.Event{hpc.Event(255)},
		Cats:   []legacyCatDTO{{Modelled: false}},
	})
	lopsided := save("lopsided", legacyDTO{
		Events: []hpc.Event{hpc.CacheMisses},
		Cats:   []legacyCatDTO{{Modelled: true, Models: nil, Thresholds: []float64{1, 2}}},
	})
	unmodelled := save("unmodelled", legacyDTO{
		Events: []hpc.Event{hpc.CacheMisses},
		Cats:   []legacyCatDTO{{Modelled: false}},
	})
	for _, p := range []string{empty, badEvent, lopsided, unmodelled} {
		if _, ok := TryLoad(p); ok {
			t.Fatalf("invalid legacy artifact %s loaded", filepath.Base(p))
		}
	}
}

// FuzzTryLoad is the crash gate on the artifact loader: no byte sequence —
// valid envelope, legacy envelope, mutation, or noise — may panic it.
// Unknown backends and corrupt payloads are misses, not errors.
func FuzzTryLoad(f *testing.F) {
	tpl := synthTemplate(2, 20, 131)
	dir := f.TempDir()
	for _, kind := range []string{"gmm", "fusion", "confidence"} {
		d, err := Fit(kind, tpl, DefaultConfig())
		if err != nil {
			f.Fatal(err)
		}
		p := filepath.Join(dir, kind+".gob")
		if err := Save(p, d); err != nil {
			f.Fatal(err)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	legacy := filepath.Join(dir, "legacy.gob")
	if err := persist.Save(legacy, legacySchema, &legacyDTO{
		Events: []hpc.Event{hpc.CacheMisses},
		Cats:   []legacyCatDTO{{Modelled: true, Models: make([]gmm.Model, 1), Thresholds: []float64{1}}},
	}); err != nil {
		f.Fatal(err)
	}
	rawLegacy, err := os.ReadFile(legacy)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rawLegacy)
	f.Add([]byte{})
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.gob")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		d, ok := TryLoad(p)
		if ok && d == nil {
			t.Fatal("TryLoad reported a hit with a nil detector")
		}
		if ok {
			// A loaded detector must be scorable without panicking.
			d.Detect(synthMeasurement(rng.New(1), 0, 1000))
		}
	})
}
