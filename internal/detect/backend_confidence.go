package detect

import (
	"encoding/gob"
	"fmt"
	"math"

	"advhunter/internal/core"
	"advhunter/internal/uarch/hpc"
)

func init() {
	gob.RegisterName("detect.confidenceScorer", &confidenceScorer{})
	Register(Backend{
		Kind:        "confidence",
		Description: "soft-label baseline: −log softmax confidence of the predicted class (needs white-box scores)",
		New: func(t *core.Template, cfg Config) ([]Scorer, error) {
			return []Scorer{&confidenceScorer{Classes: t.Classes}}, nil
		},
	})
}

// confidenceScorer is the soft-label baseline the paper compares against:
// it ignores the side channel entirely and scores −log(confidence) of the
// predicted class. It exists to show what AdvHunter achieves *without*
// breaking the hard-label threat model; its thresholds come from the
// template's recorded confidences through the same generic kσ rule.
type confidenceScorer struct {
	// Classes is the category count (also keeps the struct non-empty,
	// which gob requires of interface-encoded values).
	Classes int
}

func (s *confidenceScorer) Channel() string { return "confidence" }

func (s *confidenceScorer) Fit(t *core.Template, cfg Config) error {
	s.Classes = t.Classes
	return nil
}

func (s *confidenceScorer) Score(q core.Measurement) (float64, bool) {
	if q.Pred < 0 || q.Pred >= s.Classes {
		return 0, false
	}
	return -math.Log(math.Max(q.Conf, 1e-300)), true
}

func (s *confidenceScorer) validate(classes int, _ []hpc.Event) error {
	if s.Classes != classes {
		return fmt.Errorf("detect: confidence scorer has %d categories, want %d", s.Classes, classes)
	}
	return nil
}

// ScoreBatch delegates to the per-sample Score — this backend's model has no
// profitable batch form.
func (s *confidenceScorer) ScoreBatch(qs []core.Measurement, out []float64, ok []bool) {
	scoreLoop(s, qs, out, ok)
}
