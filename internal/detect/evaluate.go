package detect

import (
	"advhunter/internal/core"
	"advhunter/internal/metrics"
	"advhunter/internal/parallel"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// EvaluateBy scores an arbitrary decision rule over clean (negative) and
// adversarial (positive) measurement sets. Detection is pure (the detector
// is read-only online), so scoring fans out over the given worker count;
// the confusion matrix is accumulated in input order.
func EvaluateBy(d Detector, decide func(Verdict) bool, clean, adv []core.Measurement, workers int) metrics.Confusion {
	flag := func(_ int, m core.Measurement) bool {
		return decide(d.Detect(m))
	}
	var c metrics.Confusion
	for _, flagged := range parallel.Map(workers, clean, flag) {
		c.Add(false, flagged)
	}
	for _, flagged := range parallel.Map(workers, adv, flag) {
		c.Add(true, flagged)
	}
	return c
}

// Evaluate scores the detector's fused decision — the generic replacement
// for the per-family evaluate functions each detector type used to carry.
func Evaluate(d Detector, clean, adv []core.Measurement, workers int) metrics.Confusion {
	return EvaluateBy(d, func(v Verdict) bool { return v.Fused }, clean, adv, workers)
}

// EvaluateEvent scores one event channel's decision rule, mirroring the
// paper's Table 2 protocol. Measurements never flag under a detector that
// has no such channel.
func EvaluateEvent(d Detector, event hpc.Event, clean, adv []core.Measurement, workers int) metrics.Confusion {
	return EvaluateBy(d, func(v Verdict) bool { return v.FlaggedBy(event) }, clean, adv, workers)
}

// Pipeline couples measurement and detection: the full deployed AdvHunter.
type Pipeline struct {
	M *core.Measurer
	D Detector
}

// Scan classifies an unknown image and reports the detection verdict.
func (p *Pipeline) Scan(x *tensor.Tensor) Verdict {
	return p.D.Detect(p.M.Measure(x))
}
