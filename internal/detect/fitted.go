package detect

import (
	"fmt"

	"advhunter/internal/core"
	"advhunter/internal/metrics"
	"advhunter/internal/uarch/hpc"
)

// Fitted is the generic fitted detector every backend produces: the
// backend's scorers plus per-(channel, category) thresholds derived from
// the template scores by the kσ rule. It is the only Detector
// implementation; backends differ purely in the scorers they contribute.
type Fitted struct {
	kind     string
	events   []hpc.Event
	channels []string
	scorers  []Scorer
	// thresholds[ch][c] is Δ_c for channel ch (0 for unmodelled categories).
	thresholds [][]float64
	// modelled[c] reports whether category c met cfg.MinSamples.
	modelled []bool
	classes  int
	// decision is the channel deciding Verdict.Fused (-1 = OR over all).
	decision int
	// eventIdx maps events to channel indices, shared with every Verdict.
	eventIdx map[hpc.Event]int
}

// Fit runs the offline phase of the named backend on a measured template:
// the backend fits its scorers, then every (channel, category) threshold is
// derived the same way — mean + SigmaFactor·std of the channel's scores
// over the category's own template rows.
func Fit(kind string, t *core.Template, cfg Config) (*Fitted, error) {
	if cfg.SigmaFactor <= 0 || cfg.MaxK <= 0 {
		return nil, fmt.Errorf("detect: invalid config %+v", cfg)
	}
	b, ok := Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("detect: unknown backend %q (have %v)", kind, Kinds())
	}
	scorers, err := b.New(t, cfg)
	if err != nil {
		return nil, err
	}
	if len(scorers) == 0 {
		return nil, fmt.Errorf("detect: backend %q produced no scorers", kind)
	}
	for _, s := range scorers {
		if err := s.Fit(t, cfg); err != nil {
			return nil, err
		}
	}

	modelled := make([]bool, t.Classes)
	fitted := 0
	for c := 0; c < t.Classes; c++ {
		if len(t.Rows[c]) >= cfg.MinSamples {
			modelled[c] = true
			fitted++
		}
	}
	if fitted == 0 {
		return nil, fmt.Errorf("detect: no category had %d or more template rows", cfg.MinSamples)
	}

	thresholds := make([][]float64, len(scorers))
	for si := range scorers {
		thresholds[si] = make([]float64, t.Classes)
	}
	for c := 0; c < t.Classes; c++ {
		if !modelled[c] {
			continue
		}
		ms := t.Measurements(c)
		for si, s := range scorers {
			scores := make([]float64, 0, len(ms))
			for _, q := range ms {
				if score, ok := s.Score(q); ok {
					scores = append(scores, score)
				}
			}
			if len(scores) == 0 {
				continue
			}
			mu, sigma := metrics.MeanStd(scores)
			thresholds[si][c] = mu + cfg.SigmaFactor*sigma
		}
	}

	d := &Fitted{
		kind:       kind,
		events:     t.Events,
		scorers:    scorers,
		thresholds: thresholds,
		modelled:   modelled,
		classes:    t.Classes,
	}
	d.finish(cfg.DecisionEvent)
	return d, nil
}

// finish derives the channel names, event index and decision channel from
// the scorers — shared by Fit and the persistence loaders.
func (d *Fitted) finish(decisionEvent hpc.Event) {
	d.channels = make([]string, len(d.scorers))
	d.eventIdx = make(map[hpc.Event]int, len(d.scorers))
	for si, s := range d.scorers {
		d.channels[si] = s.Channel()
		if e, err := hpc.ParseEvent(s.Channel()); err == nil {
			d.eventIdx[e] = si
		}
	}
	d.decision = -1
	if len(d.channels) == 1 {
		d.decision = 0
	}
	if si, ok := d.eventIdx[decisionEvent]; ok {
		d.decision = si
	}
}

// Kind is the backend name the detector was fitted under.
func (d *Fitted) Kind() string { return d.kind }

// Events lists the template events the detector was fitted on.
func (d *Fitted) Events() []hpc.Event { return d.events }

// Channels names the score streams, aligned with Verdict.Scores/Flags.
func (d *Fitted) Channels() []string { return d.channels }

// Classes is the number of output categories of the guarded model.
func (d *Fitted) Classes() int { return d.classes }

// ModelledClasses counts the categories with a fitted template.
func (d *Fitted) ModelledClasses() int {
	n := 0
	for _, m := range d.modelled {
		if m {
			n++
		}
	}
	return n
}

// Detect runs the online phase on a measured reading.
func (d *Fitted) Detect(q core.Measurement) Verdict {
	v := Verdict{
		PredictedClass: q.Pred,
		Channels:       d.channels,
		Scores:         make([]float64, len(d.scorers)),
		Flags:          make([]bool, len(d.scorers)),
		eventIdx:       d.eventIdx,
	}
	if q.Pred < 0 || q.Pred >= d.classes || !d.modelled[q.Pred] {
		return v
	}
	v.Modelled = true
	for si, s := range d.scorers {
		score, ok := s.Score(q)
		if !ok {
			continue
		}
		v.Scores[si] = score
		v.Flags[si] = score > d.thresholds[si][q.Pred]
	}
	if d.decision >= 0 {
		v.Fused = v.Flags[d.decision]
	} else {
		v.Fused = v.AnyFlag()
	}
	return v
}

// DetectBatch runs the online phase over a micro-batch, channel-major: each
// scorer's ScoreBatch sweeps the whole batch (reusing its hoisted constants
// across samples) before the next channel runs. vs[i] is identical to
// Detect(qs[i]) — same Scores, Flags, Modelled and Fused, with per-verdict
// Scores/Flags freshly allocated exactly as Detect allocates them, so
// verdicts stay independently mutable response state. The detector is
// read-only throughout; concurrent workers may share it.
func (d *Fitted) DetectBatch(qs []core.Measurement, vs []Verdict) {
	n := len(qs)
	if len(vs) < n {
		panic("detect: DetectBatch verdict slice shorter than batch")
	}
	for i := range qs[:n] {
		vs[i] = Verdict{
			PredictedClass: qs[i].Pred,
			Channels:       d.channels,
			Scores:         make([]float64, len(d.scorers)),
			Flags:          make([]bool, len(d.scorers)),
			eventIdx:       d.eventIdx,
		}
		vs[i].Modelled = qs[i].Pred >= 0 && qs[i].Pred < d.classes && d.modelled[qs[i].Pred]
	}
	scores := make([]float64, n)
	oks := make([]bool, n)
	for si, s := range d.scorers {
		s.ScoreBatch(qs, scores, oks)
		th := d.thresholds[si]
		for i := range qs[:n] {
			if !vs[i].Modelled || !oks[i] {
				continue
			}
			vs[i].Scores[si] = scores[i]
			vs[i].Flags[si] = scores[i] > th[qs[i].Pred]
		}
	}
	for i := range vs[:n] {
		if !vs[i].Modelled {
			continue
		}
		if d.decision >= 0 {
			vs[i].Fused = vs[i].Flags[d.decision]
		} else {
			vs[i].Fused = vs[i].AnyFlag()
		}
	}
}
