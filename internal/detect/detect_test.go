package detect

import (
	"math"
	"strings"
	"testing"

	"advhunter/internal/core"
	"advhunter/internal/rng"
	"advhunter/internal/uarch/hpc"
)

// synthEvents are the two channels of the synthetic fixtures: cache-misses
// separates the classes, instructions does not.
var synthEvents = []hpc.Event{hpc.CacheMisses, hpc.Instructions}

// synthTemplate builds a clean template with per-class cache-miss levels
// 1000, 1200, 1400, … (σ=10) and a class-independent instruction count.
func synthTemplate(classes, perClass int, seed uint64) *core.Template {
	r := rng.New(seed)
	t := core.NewTemplate(classes, synthEvents)
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			var counts hpc.Counts
			counts[hpc.CacheMisses] = r.Normal(1000+200*float64(c), 10)
			counts[hpc.Instructions] = r.Normal(5e6, 5e4)
			t.Add(c, counts, 0.9)
		}
	}
	return t
}

// synthMeasurement builds one query for class c with the given cache-miss
// level; instructions stay at the benign level.
func synthMeasurement(r *rng.Rand, c int, cmMean float64) core.Measurement {
	var counts hpc.Counts
	counts[hpc.CacheMisses] = r.Normal(cmMean, 10)
	counts[hpc.Instructions] = r.Normal(5e6, 5e4)
	return core.Measurement{Pred: c, TrueLabel: c, Counts: counts, Conf: 0.9}
}

func mustFit(t *testing.T, kind string, tpl *core.Template, cfg Config) *Fitted {
	t.Helper()
	d, err := Fit(kind, tpl, cfg)
	if err != nil {
		t.Fatalf("Fit(%q): %v", kind, err)
	}
	return d
}

func TestRegistryHasAllBackends(t *testing.T) {
	want := []string{"confidence", "fusion", "gauss", "gmm", "kde", "knn"}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds() = %v, want %v", got, want)
		}
	}
	for _, k := range want {
		if Describe(k) == "" {
			t.Fatalf("backend %q has no description", k)
		}
		if _, ok := Lookup(k); !ok {
			t.Fatalf("Lookup(%q) missed", k)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown backend succeeded")
	}
}

func TestFitUnknownBackend(t *testing.T) {
	tpl := synthTemplate(2, 20, 1)
	if _, err := Fit("nope", tpl, DefaultConfig()); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("err = %v, want unknown-backend error", err)
	}
}

func TestFitRejectsBadConfig(t *testing.T) {
	tpl := synthTemplate(2, 20, 1)
	bad := DefaultConfig()
	bad.SigmaFactor = 0
	if _, err := Fit("gmm", tpl, bad); err == nil {
		t.Fatal("expected error for zero sigma factor")
	}
	bad = DefaultConfig()
	bad.MaxK = 0
	if _, err := Fit("gmm", tpl, bad); err == nil {
		t.Fatal("expected error for zero MaxK")
	}
}

func TestFitRejectsEmptyTemplate(t *testing.T) {
	tpl := core.NewTemplate(3, synthEvents)
	for _, kind := range Kinds() {
		if _, err := Fit(kind, tpl, DefaultConfig()); err == nil {
			t.Fatalf("backend %q fitted an empty template", kind)
		}
	}
}

// TestEveryBackendSeparatesTheSyntheticWorkload: each backend, through the
// same Fit/Detect path, must flag far-off cache-miss readings and pass
// benign ones on its own fused decision. The confidence backend is exempt
// from the separation requirement — its channel never sees the counters —
// but must still run and stay silent on benign confidences.
func TestEveryBackendSeparatesTheSyntheticWorkload(t *testing.T) {
	tpl := synthTemplate(3, 60, 7)
	r := rng.New(99)
	var clean, adv []core.Measurement
	for i := 0; i < 50; i++ {
		clean = append(clean, synthMeasurement(r, 1, 1200))
		adv = append(adv, synthMeasurement(r, 1, 1800))
	}
	for _, kind := range Kinds() {
		d := mustFit(t, kind, tpl, DefaultConfig())
		if d.Kind() != kind {
			t.Fatalf("Kind() = %q, want %q", d.Kind(), kind)
		}
		conf := Evaluate(d, clean, adv, 0)
		if conf.Total() != len(clean)+len(adv) {
			t.Fatalf("%s: scored %d of %d", kind, conf.Total(), len(clean)+len(adv))
		}
		if kind == "confidence" {
			if conf.FPR() > 0.1 {
				t.Fatalf("confidence: FPR %.2f on identical benign confidences", conf.FPR())
			}
			continue
		}
		if f1 := conf.F1(); f1 < 0.9 {
			t.Fatalf("%s: F1 %.3f < 0.9 on a trivially separable workload (%v)", kind, f1, conf)
		}
	}
}

// TestEvaluateEventPerChannel: the discriminative event scores high, the
// uninformative one low — the Table 2 protocol on synthetic data.
func TestEvaluateEventPerChannel(t *testing.T) {
	tpl := synthTemplate(2, 60, 3)
	d := mustFit(t, "gmm", tpl, DefaultConfig())
	r := rng.New(5)
	var clean, adv []core.Measurement
	for i := 0; i < 50; i++ {
		clean = append(clean, synthMeasurement(r, 0, 1000))
		adv = append(adv, synthMeasurement(r, 0, 1600))
	}
	cm := EvaluateEvent(d, hpc.CacheMisses, clean, adv, 0)
	if cm.Total() != 100 {
		t.Fatalf("cache-misses evaluation scored %d decisions", cm.Total())
	}
	if cm.F1() < 0.9 {
		t.Fatalf("cache-misses F1 %.3f, want >= 0.9 (%v)", cm.F1(), cm)
	}
	ins := EvaluateEvent(d, hpc.Instructions, clean, adv, 0)
	if ins.F1() > 0.3 {
		t.Fatalf("instructions F1 %.3f, want <= 0.3 — it carries no signal", ins.F1())
	}
	// Events outside the detector never flag.
	none := EvaluateEvent(d, hpc.BranchMisses, clean, adv, 0)
	if none.TP != 0 || none.FP != 0 {
		t.Fatalf("absent channel flagged: %v", none)
	}
}

func TestDetectUnmodelledClassNeverFlags(t *testing.T) {
	tpl := synthTemplate(3, 30, 11)
	// Class 2 gets too few rows to model.
	tpl.Rows[2] = tpl.Rows[2][:2]
	tpl.Confs[2] = tpl.Confs[2][:2]
	for _, kind := range Kinds() {
		d := mustFit(t, kind, tpl, DefaultConfig())
		r := rng.New(1)
		v := d.Detect(synthMeasurement(r, 2, 1e9))
		if v.Modelled || v.Fused || v.AnyFlag() {
			t.Fatalf("%s: unmodelled class flagged: %+v", kind, v)
		}
		// Out-of-range predictions are equally silent.
		for _, pred := range []int{-1, 3, 99} {
			q := synthMeasurement(r, 0, 1e9)
			q.Pred = pred
			if v := d.Detect(q); v.Modelled || v.Fused {
				t.Fatalf("%s: out-of-range class %d flagged", kind, pred)
			}
		}
	}
}

func TestSigmaFactorMonotone(t *testing.T) {
	tpl := synthTemplate(2, 60, 17)
	r := rng.New(23)
	var clean, adv []core.Measurement
	for i := 0; i < 60; i++ {
		clean = append(clean, synthMeasurement(r, 0, 1030)) // slightly off-center
		adv = append(adv, synthMeasurement(r, 0, 1500))
	}
	var prevFlags = math.MaxInt
	for _, k := range []float64{1, 3, 6} {
		cfg := DefaultConfig()
		cfg.SigmaFactor = k
		d := mustFit(t, "gmm", tpl, cfg)
		flags := 0
		for _, m := range append(append([]core.Measurement{}, clean...), adv...) {
			if d.Detect(m).FlaggedBy(hpc.CacheMisses) {
				flags++
			}
		}
		if flags > prevFlags {
			t.Fatalf("flag count grew from %d to %d as σ-factor rose to %g", prevFlags, flags, k)
		}
		prevFlags = flags
	}
}

func TestThreeSigmaFalsePositiveRateLow(t *testing.T) {
	tpl := synthTemplate(2, 80, 29)
	d := mustFit(t, "gmm", tpl, DefaultConfig())
	r := rng.New(31)
	flagged := 0
	const n = 200
	for i := 0; i < n; i++ {
		if d.Detect(synthMeasurement(r, 0, 1000)).FlaggedBy(hpc.CacheMisses) {
			flagged++
		}
	}
	if rate := float64(flagged) / n; rate > 0.1 {
		t.Fatalf("3σ false-positive rate %.2f on in-distribution queries", rate)
	}
}

// TestForceKMatchesGaussBaseline: a ForceK=1 GMM and the gauss backend model
// the same distribution, so their decisions agree on a clearly separable
// workload even though their score scales differ.
func TestForceKMatchesGaussBaseline(t *testing.T) {
	tpl := synthTemplate(2, 60, 41)
	cfg := DefaultConfig()
	cfg.ForceK = 1
	g1 := mustFit(t, "gmm", tpl, cfg)
	ga := mustFit(t, "gauss", tpl, DefaultConfig())
	r := rng.New(43)
	agree, total := 0, 0
	for i := 0; i < 60; i++ {
		for _, level := range []float64{1000, 1700} {
			q := synthMeasurement(r, 0, level)
			a := g1.Detect(q).FlaggedBy(hpc.CacheMisses)
			b := ga.Detect(q).FlaggedBy(hpc.CacheMisses)
			total++
			if a == b {
				agree++
			}
		}
	}
	// Score scales differ (EM-fit NLL vs closed-form Mahalanobis), so
	// thresholds land at slightly different quantiles; demand near-total
	// agreement rather than bit-exactness.
	if rate := float64(agree) / float64(total); rate < 0.9 {
		t.Fatalf("ForceK=1 gmm and gauss agree on only %.0f%% of queries", 100*rate)
	}
}

func TestGMMConfigPropagates(t *testing.T) {
	tpl := synthTemplate(2, 40, 47)
	a := mustFit(t, "gmm", tpl, DefaultConfig())
	cfg := DefaultConfig()
	cfg.GMM.Seed = 999
	b := mustFit(t, "gmm", tpl, cfg)
	// Different EM seeds may land different local optima; the detectors must
	// at least be independently usable. Same seed → identical scores.
	c := mustFit(t, "gmm", tpl, DefaultConfig())
	q := synthMeasurement(rng.New(1), 0, 1100)
	va, vb, vc := a.Detect(q), b.Detect(q), c.Detect(q)
	if va.Scores[0] != vc.Scores[0] {
		t.Fatalf("same config produced different scores: %g vs %g", va.Scores[0], vc.Scores[0])
	}
	_ = vb // the reseeded fit just has to complete
}

func TestFusionBackendRespectsEventSubset(t *testing.T) {
	tpl := synthTemplate(2, 60, 53)
	cfg := DefaultConfig()
	cfg.FusionEvents = []hpc.Event{hpc.CacheMisses}
	d := mustFit(t, "fusion", tpl, cfg)
	if got := d.Channels(); len(got) != 1 || got[0] != "fusion" {
		t.Fatalf("fusion channels = %v", got)
	}
	r := rng.New(59)
	var clean, adv []core.Measurement
	for i := 0; i < 50; i++ {
		clean = append(clean, synthMeasurement(r, 0, 1000))
		adv = append(adv, synthMeasurement(r, 0, 1700))
	}
	if f1 := Evaluate(d, clean, adv, 0).F1(); f1 < 0.9 {
		t.Fatalf("fusion-on-subset F1 %.3f", f1)
	}
	// An event absent from the template is a fit error, not a panic.
	bad := DefaultConfig()
	bad.FusionEvents = []hpc.Event{hpc.BranchMisses}
	if _, err := Fit("fusion", tpl, bad); err == nil {
		t.Fatal("expected error for fusion event missing from template")
	}
}

func TestConfidenceBackendFlagsLowConfidence(t *testing.T) {
	tpl := synthTemplate(2, 60, 61)
	d := mustFit(t, "confidence", tpl, DefaultConfig())
	r := rng.New(67)
	sure := synthMeasurement(r, 0, 1000)
	sure.Conf = 0.9
	unsure := synthMeasurement(r, 0, 1000)
	unsure.Conf = 1e-6
	if d.Detect(sure).Fused {
		t.Fatal("confidence backend flagged a high-confidence input")
	}
	if !d.Detect(unsure).Fused {
		t.Fatal("confidence backend passed a near-zero-confidence input")
	}
}

func TestVerdictHelpers(t *testing.T) {
	tpl := synthTemplate(2, 40, 71)
	d := mustFit(t, "gmm", tpl, DefaultConfig())
	v := d.Detect(synthMeasurement(rng.New(73), 0, 1000))
	if idx := v.ChannelIndex(hpc.CacheMisses); idx != 0 {
		t.Fatalf("ChannelIndex(cache-misses) = %d", idx)
	}
	if idx := v.ChannelIndex(hpc.BranchMisses); idx != -1 {
		t.Fatalf("ChannelIndex(absent) = %d", idx)
	}
	if v.FlaggedBy(hpc.BranchMisses) {
		t.Fatal("FlaggedBy on an absent channel")
	}
	if len(v.Channels) != len(synthEvents) {
		t.Fatalf("verdict channels %v", v.Channels)
	}
	// The decision channel follows the config.
	cfg := DefaultConfig()
	cfg.DecisionEvent = hpc.Instructions
	d2 := mustFit(t, "gmm", tpl, cfg)
	var q core.Measurement
	q = synthMeasurement(rng.New(79), 0, 1000)
	q.Counts[hpc.Instructions] = 9e9 // wildly anomalous instructions only
	v2 := d2.Detect(q)
	if !v2.FlaggedBy(hpc.Instructions) || !v2.Fused {
		t.Fatalf("decision-event override ignored: %+v", v2)
	}
}

func TestEvaluateWorkerIndependence(t *testing.T) {
	tpl := synthTemplate(3, 50, 83)
	d := mustFit(t, "gmm", tpl, DefaultConfig())
	r := rng.New(89)
	var clean, adv []core.Measurement
	for i := 0; i < 40; i++ {
		clean = append(clean, synthMeasurement(r, i%3, 1000+200*float64(i%3)))
		adv = append(adv, synthMeasurement(r, i%3, 1900))
	}
	base := Evaluate(d, clean, adv, 1)
	for _, workers := range []int{2, 8} {
		if got := Evaluate(d, clean, adv, workers); got != base {
			t.Fatalf("workers=%d changed the confusion: %v vs %v", workers, got, base)
		}
	}
}
