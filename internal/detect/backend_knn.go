package detect

import (
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"advhunter/internal/core"
	"advhunter/internal/uarch/hpc"
)

func init() {
	gob.RegisterName("detect.knnScorer", &knnScorer{})
	Register(Backend{
		Kind:        "knn",
		Description: "per-(category, event) k-nearest-neighbour distance to the clean template",
		New: func(t *core.Template, cfg Config) ([]Scorer, error) {
			scorers := make([]Scorer, len(t.Events))
			for n, e := range t.Events {
				scorers[n] = &knnScorer{Event: e, Index: n}
			}
			return scorers, nil
		},
	})
}

// knnScorer scores a reading by its mean distance to the k nearest template
// readings of the predicted category — a purely instance-based backend with
// no distributional assumption at all.
type knnScorer struct {
	Event hpc.Event
	Index int
	// K is the neighbour count (clamped per category to the template size).
	K int
	// Samples[c] is category c's template column, sorted ascending
	// (nil when unmodelled).
	Samples [][]float64
}

func (s *knnScorer) Channel() string { return s.Event.String() }

func (s *knnScorer) Fit(t *core.Template, cfg Config) error {
	s.K = cfg.K
	if s.K <= 0 {
		s.K = 5
	}
	s.Samples = make([][]float64, t.Classes)
	for c := 0; c < t.Classes; c++ {
		if len(t.Rows[c]) < cfg.MinSamples {
			continue
		}
		col := t.Column(c, s.Index)
		sort.Float64s(col)
		s.Samples[c] = col
	}
	return nil
}

func (s *knnScorer) Score(q core.Measurement) (float64, bool) {
	if q.Pred < 0 || q.Pred >= len(s.Samples) || len(s.Samples[q.Pred]) == 0 {
		return 0, false
	}
	pts := s.Samples[q.Pred]
	x := q.Counts.Get(s.Event)
	k := s.K
	if k > len(pts) {
		k = len(pts)
	}
	// The k nearest values in a sorted column form a contiguous window;
	// slide it from the insertion point instead of sorting all distances.
	lo := sort.SearchFloat64s(pts, x)
	hi := lo
	sum := 0.0
	for n := 0; n < k; n++ {
		left, right := math.Inf(1), math.Inf(1)
		if lo > 0 {
			left = x - pts[lo-1]
		}
		if hi < len(pts) {
			right = pts[hi] - x
		}
		if left <= right {
			sum += left
			lo--
		} else {
			sum += right
			hi++
		}
	}
	return sum / float64(k), true
}

func (s *knnScorer) validate(classes int, _ []hpc.Event) error {
	if s.Event < 0 || s.Event >= hpc.NumEvents {
		return fmt.Errorf("detect: knn scorer has invalid event %d", int(s.Event))
	}
	if s.K <= 0 {
		return fmt.Errorf("detect: knn scorer has non-positive k %d", s.K)
	}
	if len(s.Samples) != classes {
		return fmt.Errorf("detect: knn scorer has %d categories, want %d", len(s.Samples), classes)
	}
	for c, pts := range s.Samples {
		if !sort.Float64sAreSorted(pts) {
			return fmt.Errorf("detect: knn scorer category %d is not sorted", c)
		}
		for _, p := range pts {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return fmt.Errorf("detect: knn scorer category %d has non-finite sample", c)
			}
		}
	}
	return nil
}

// ScoreBatch delegates to the per-sample Score — this backend's model has no
// profitable batch form.
func (s *knnScorer) ScoreBatch(qs []core.Measurement, out []float64, ok []bool) {
	scoreLoop(s, qs, out, ok)
}
