package detect

import (
	"encoding/gob"
	"fmt"
	"math"

	"advhunter/internal/core"
	"advhunter/internal/metrics"
	"advhunter/internal/uarch/hpc"
)

func init() {
	gob.RegisterName("detect.gaussScorer", &gaussScorer{})
	Register(Backend{
		Kind:        "gauss",
		Description: "per-(category, event) single Gaussian scored by Mahalanobis distance |x−μ|/σ",
		New: func(t *core.Template, cfg Config) ([]Scorer, error) {
			scorers := make([]Scorer, len(t.Events))
			for n, e := range t.Events {
				scorers[n] = &gaussScorer{Event: e, Index: n}
			}
			return scorers, nil
		},
	})
}

// gaussScorer models one event per category as a single Gaussian and scores
// by the (one-dimensional) Mahalanobis distance — the cheapest parametric
// backend, and the closed-form cousin of the ForceK=1 GMM ablation.
type gaussScorer struct {
	Event hpc.Event
	Index int
	// Mean and Std are per category; degenerate columns get Std 1 so the
	// distance stays finite. Ok marks modelled categories.
	Mean []float64
	Std  []float64
	Ok   []bool
}

func (s *gaussScorer) Channel() string { return s.Event.String() }

func (s *gaussScorer) Fit(t *core.Template, cfg Config) error {
	s.Mean = make([]float64, t.Classes)
	s.Std = make([]float64, t.Classes)
	s.Ok = make([]bool, t.Classes)
	for c := 0; c < t.Classes; c++ {
		if len(t.Rows[c]) < cfg.MinSamples {
			continue
		}
		mu, sd := metrics.MeanStd(t.Column(c, s.Index))
		if sd == 0 {
			sd = 1
		}
		s.Mean[c], s.Std[c], s.Ok[c] = mu, sd, true
	}
	return nil
}

func (s *gaussScorer) Score(q core.Measurement) (float64, bool) {
	if q.Pred < 0 || q.Pred >= len(s.Ok) || !s.Ok[q.Pred] {
		return 0, false
	}
	return math.Abs(q.Counts.Get(s.Event)-s.Mean[q.Pred]) / s.Std[q.Pred], true
}

// ScoreBatch sweeps the batch with the category tables held in locals; each
// sample evaluates the exact Mahalanobis expression Score uses, so results
// are bit-identical to the per-sample loop.
func (s *gaussScorer) ScoreBatch(qs []core.Measurement, out []float64, ok []bool) {
	mean, std, okc := s.Mean, s.Std, s.Ok
	for i := range qs {
		q := &qs[i]
		if q.Pred < 0 || q.Pred >= len(okc) || !okc[q.Pred] {
			out[i], ok[i] = 0, false
			continue
		}
		out[i] = math.Abs(q.Counts.Get(s.Event)-mean[q.Pred]) / std[q.Pred]
		ok[i] = true
	}
}

func (s *gaussScorer) validate(classes int, _ []hpc.Event) error {
	if s.Event < 0 || s.Event >= hpc.NumEvents {
		return fmt.Errorf("detect: gauss scorer has invalid event %d", int(s.Event))
	}
	if len(s.Ok) != classes || len(s.Mean) != classes || len(s.Std) != classes {
		return fmt.Errorf("detect: gauss scorer has inconsistent category count")
	}
	for c, ok := range s.Ok {
		if ok && !(s.Std[c] > 0) {
			return fmt.Errorf("detect: gauss scorer category %d has non-positive std", c)
		}
	}
	return nil
}
