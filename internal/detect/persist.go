package detect

import (
	"fmt"

	"advhunter/internal/gmm"
	"advhunter/internal/persist"
	"advhunter/internal/uarch/hpc"
)

// DetectorSchema versions the detector artifact layout.
//
// History:
//  1. per-event GMM detector only (core.SaveDetector): events + per-category
//     model/threshold DTOs. Readable through the legacy shim below.
//  2. self-describing backend envelope: any registered backend's scorers are
//     gob-encoded polymorphically, so one artifact format serves every kind.
const DetectorSchema = 2

// fittedDTO is the schema-2 artifact: a self-describing envelope for any
// backend. Scorers are encoded as interface values; each backend's init
// registers its concrete types under stable names with encoding/gob.
type fittedDTO struct {
	Kind       string
	Events     []hpc.Event
	Classes    int
	Decision   hpc.Event
	Modelled   []bool
	Thresholds [][]float64
	Scorers    []Scorer
}

// Save atomically writes a fitted detector of any backend.
func Save(path string, d *Fitted) error {
	decision := hpc.CacheMisses
	if d.decision >= 0 {
		if e, err := hpc.ParseEvent(d.channels[d.decision]); err == nil {
			decision = e
		}
	}
	dto := fittedDTO{
		Kind:       d.kind,
		Events:     d.events,
		Classes:    d.classes,
		Decision:   decision,
		Modelled:   d.modelled,
		Thresholds: d.thresholds,
		Scorers:    d.scorers,
	}
	return persist.Save(path, DetectorSchema, &dto)
}

// Load reads a schema-2 artifact and validates it structurally: a corrupt
// or hand-crafted file yields an error, never a detector that can panic.
func Load(path string) (*Fitted, error) {
	var dto fittedDTO
	if err := persist.Load(path, DetectorSchema, &dto); err != nil {
		return nil, err
	}
	if _, ok := Lookup(dto.Kind); !ok {
		return nil, fmt.Errorf("detect: artifact has unknown backend %q", dto.Kind)
	}
	if dto.Classes <= 0 || len(dto.Modelled) != dto.Classes {
		return nil, fmt.Errorf("detect: artifact has inconsistent category count")
	}
	if len(dto.Events) == 0 || len(dto.Scorers) == 0 {
		return nil, fmt.Errorf("detect: artifact has no events or scorers")
	}
	if len(dto.Thresholds) != len(dto.Scorers) {
		return nil, fmt.Errorf("detect: artifact thresholds do not match scorers")
	}
	for _, e := range dto.Events {
		if e < 0 || e >= hpc.NumEvents {
			return nil, fmt.Errorf("detect: artifact has invalid event %d", int(e))
		}
	}
	for si, s := range dto.Scorers {
		if s == nil {
			return nil, fmt.Errorf("detect: artifact scorer %d is nil", si)
		}
		if err := s.validate(dto.Classes, dto.Events); err != nil {
			return nil, err
		}
		if len(dto.Thresholds[si]) != dto.Classes {
			return nil, fmt.Errorf("detect: artifact scorer %d thresholds are inconsistent", si)
		}
	}
	modelledAny := false
	for _, m := range dto.Modelled {
		modelledAny = modelledAny || m
	}
	if !modelledAny {
		return nil, fmt.Errorf("detect: artifact models no category")
	}
	d := &Fitted{
		kind:       dto.Kind,
		events:     dto.Events,
		scorers:    dto.Scorers,
		thresholds: dto.Thresholds,
		modelled:   dto.Modelled,
		classes:    dto.Classes,
	}
	d.finish(dto.Decision)
	return d, nil
}

// legacyCatDTO and legacyDTO replicate the pre-registry schema-1 layout
// written by core.SaveDetector (gob matches struct fields by name, so the
// field names must stay exactly as they were).
type legacyCatDTO struct {
	Modelled   bool
	Models     []gmm.Model
	Thresholds []float64
}

type legacyDTO struct {
	Events []hpc.Event
	Cats   []legacyCatDTO
}

// legacySchema is the schema number core.SaveDetector wrote.
const legacySchema = 1

// loadLegacy reads a schema-1 per-event GMM artifact and lifts it into a
// gmm-backend Fitted, so detectors saved before the registry existed keep
// loading.
func loadLegacy(path string) (*Fitted, error) {
	var dto legacyDTO
	if err := persist.Load(path, legacySchema, &dto); err != nil {
		return nil, err
	}
	if len(dto.Events) == 0 || len(dto.Cats) == 0 {
		return nil, fmt.Errorf("detect: legacy artifact is empty")
	}
	for _, e := range dto.Events {
		if e < 0 || e >= hpc.NumEvents {
			return nil, fmt.Errorf("detect: legacy artifact has invalid event %d", int(e))
		}
	}
	classes := len(dto.Cats)
	scorers := make([]Scorer, len(dto.Events))
	thresholds := make([][]float64, len(dto.Events))
	for n, e := range dto.Events {
		scorers[n] = &gmmScorer{Event: e, Index: n, Models: make([]gmm.Model, classes)}
		thresholds[n] = make([]float64, classes)
	}
	modelled := make([]bool, classes)
	modelledAny := false
	for c, cat := range dto.Cats {
		if !cat.Modelled {
			continue
		}
		if len(cat.Models) != len(dto.Events) || len(cat.Thresholds) != len(dto.Events) {
			return nil, fmt.Errorf("detect: legacy artifact category %d is inconsistent", c)
		}
		for n := range dto.Events {
			scorers[n].(*gmmScorer).Models[c] = cat.Models[n]
			thresholds[n][c] = cat.Thresholds[n]
		}
		modelled[c] = true
		modelledAny = true
	}
	if !modelledAny {
		return nil, fmt.Errorf("detect: legacy artifact models no category")
	}
	for _, s := range scorers {
		if err := s.validate(classes, dto.Events); err != nil {
			return nil, err
		}
	}
	d := &Fitted{
		kind:       "gmm",
		events:     dto.Events,
		scorers:    scorers,
		thresholds: thresholds,
		modelled:   modelled,
		classes:    classes,
	}
	d.finish(hpc.CacheMisses)
	return d, nil
}

// TryLoad loads a detector artifact with miss-not-error semantics: a
// missing, corrupt, truncated, stale-schema or unknown-backend file is a
// cache miss (fit again and overwrite), never a failure and never a panic.
// Schema-2 artifacts are tried first, then the schema-1 legacy layout.
func TryLoad(path string) (*Fitted, bool) {
	if path == "" {
		return nil, false
	}
	if d, err := Load(path); err == nil {
		return d, true
	}
	if d, err := loadLegacy(path); err == nil {
		return d, true
	}
	return nil, false
}
