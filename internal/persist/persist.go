// Package persist is the repository's on-disk artifact format: gob payloads
// wrapped in a schema-tagged envelope and written atomically. Experiment
// caches and fitted-detector files share it, so every artifact class gets
// the same guarantees — a reader never sees a torn file, and a file written
// under an older (or foreign) schema fails to load instead of being misread,
// which callers uniformly treat as a cache miss and regenerate.
package persist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// envelope wraps every persisted payload with its schema tag. Decoding a
// pre-envelope or foreign file fails, which callers treat as a miss.
type envelope struct {
	Schema  int
	Payload []byte
}

// Encode renders v as a schema-tagged gob envelope — exactly the bytes Save
// writes to disk. It is exposed for artifact classes whose transport is not
// a file (recorded load-generator traces travel as bytes before they are
// saved), so every envelope in the repository has one wire format. Encoding
// is deterministic: equal values yield byte-identical envelopes.
func Encode(schema int, v any) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("persist: encoding: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{Schema: schema, Payload: payload.Bytes()}); err != nil {
		return nil, fmt.Errorf("persist: enveloping: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses a schema-tagged envelope produced by Encode (or read back
// from a file Save wrote) into v. Corrupt bytes, pre-envelope data and
// foreign schemas all return an error — callers uniformly treat any error
// as a miss.
func Decode(raw []byte, schema int, v any) error {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return fmt.Errorf("persist: decoding envelope: %w", err)
	}
	if env.Schema != schema {
		return fmt.Errorf("persist: envelope has schema %d, want %d", env.Schema, schema)
	}
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(v); err != nil {
		return fmt.Errorf("persist: decoding payload: %w", err)
	}
	return nil
}

// Save atomically writes v (gob-encoded, tagged with schema) to path,
// creating directories. The temporary file gets a unique name so concurrent
// writers targeting different paths in one directory never collide.
func Save(path string, schema int, v any) error {
	buf, err := Encode(schema, v)
	if err != nil {
		return fmt.Errorf("%w (writing %s)", err, path)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads a schema-tagged gob file into v. Corrupt files, pre-envelope
// files, and files written under a different schema all return an error —
// callers treat any error as a cache miss and regenerate.
func Load(path string, schema int, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := Decode(raw, schema, v); err != nil {
		return fmt.Errorf("%w (reading %s)", err, path)
	}
	return nil
}
