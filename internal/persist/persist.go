// Package persist is the repository's on-disk artifact format: gob payloads
// wrapped in a schema-tagged envelope and written atomically. Experiment
// caches and fitted-detector files share it, so every artifact class gets
// the same guarantees — a reader never sees a torn file, and a file written
// under an older (or foreign) schema fails to load instead of being misread,
// which callers uniformly treat as a cache miss and regenerate.
package persist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// envelope wraps every persisted payload with its schema tag. Decoding a
// pre-envelope or foreign file fails, which callers treat as a miss.
type envelope struct {
	Schema  int
	Payload []byte
}

// Save atomically writes v (gob-encoded, tagged with schema) to path,
// creating directories. The temporary file gets a unique name so concurrent
// writers targeting different paths in one directory never collide.
func Save(path string, schema int, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("persist: encoding %s: %w", path, err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{Schema: schema, Payload: payload.Bytes()}); err != nil {
		return fmt.Errorf("persist: enveloping %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads a schema-tagged gob file into v. Corrupt files, pre-envelope
// files, and files written under a different schema all return an error —
// callers treat any error as a cache miss and regenerate.
func Load(path string, schema int, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return fmt.Errorf("persist: decoding %s: %w", path, err)
	}
	if env.Schema != schema {
		return fmt.Errorf("persist: %s has schema %d, want %d", path, env.Schema, schema)
	}
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(v); err != nil {
		return fmt.Errorf("persist: decoding %s payload: %w", path, err)
	}
	return nil
}
