package persist

import (
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name string
	Vals []float64
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "dir", "artifact.gob")
	want := payload{Name: "x", Vals: []float64{1, 2.5, -3}}
	if err := Save(path, 7, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var got payload
	if err := Load(path, 7, &got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != want.Name || len(got.Vals) != len(want.Vals) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Vals {
		if got.Vals[i] != want.Vals[i] {
			t.Fatalf("value %d: %v vs %v", i, got.Vals[i], want.Vals[i])
		}
	}
}

func TestSchemaMismatchFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.gob")
	if err := Save(path, 1, payload{Name: "old"}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var got payload
	if err := Load(path, 2, &got); err == nil {
		t.Fatal("Load under a different schema should fail")
	}
}

func TestCorruptFileFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.gob")
	if err := os.WriteFile(path, []byte("not a gob envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, 1, &got); err == nil {
		t.Fatal("Load of a corrupt file should fail")
	}
}

func TestTruncatedFileFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.gob")
	if err := Save(path, 1, payload{Name: "x", Vals: []float64{1, 2, 3}}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, 1, &got); err == nil {
		t.Fatal("Load of a truncated file should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := payload{Name: "bytes", Vals: []float64{4, 5, 6}}
	raw, err := Encode(3, want)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var got payload
	if err := Decode(raw, 3, &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Name != want.Name || len(got.Vals) != 3 {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	if err := Decode(raw, 4, &got); err == nil {
		t.Fatal("Decode under a different schema should fail")
	}
	if err := Decode(raw[:len(raw)/2], 3, &got); err == nil {
		t.Fatal("Decode of truncated bytes should fail")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	v := payload{Name: "same", Vals: []float64{1, 2, 3}}
	a, err := Encode(9, v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(9, v)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("Encode of equal values produced different bytes")
	}
}

func TestFileAndByteFormsAgree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.gob")
	want := payload{Name: "shared", Vals: []float64{7}}
	if err := Save(path, 5, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Decode(raw, 5, &got); err != nil {
		t.Fatalf("Decode of a Save'd file: %v", err)
	}
	if got.Name != want.Name {
		t.Fatalf("file/byte mismatch: %+v vs %+v", got, want)
	}
}

func TestMissingFileFails(t *testing.T) {
	var got payload
	if err := Load(filepath.Join(t.TempDir(), "absent.gob"), 1, &got); err == nil {
		t.Fatal("Load of a missing file should fail")
	}
}
