// Package metrics provides the binary-classification and distribution
// statistics the evaluation reports: accuracy, precision/recall/F1 (the
// paper's per-category scores), confusion counts, and distribution summaries
// (mean/std, overlap coefficient) used to render the figure data.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Confusion tallies binary detection outcomes. Convention: "positive" means
// adversarial.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one labelled decision.
func (c *Confusion) Add(actualPositive, predictedPositive bool) {
	switch {
	case actualPositive && predictedPositive:
		c.TP++
	case actualPositive && !predictedPositive:
		c.FN++
	case !actualPositive && predictedPositive:
		c.FP++
	default:
		c.TN++
	}
}

// Total returns the number of recorded decisions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision returns TP/(TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// TPR returns the true-positive rate — an alias of Recall under the name the
// detection tables use.
func (c Confusion) TPR() float64 { return c.Recall() }

// FPR returns FP/(FP+TN), the fraction of clean inputs wrongly flagged.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the counts compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d", c.TP, c.FP, c.TN, c.FN)
}

// Merge sums another confusion matrix into c.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Summary holds distribution statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes the sample statistics.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return Summary{}
	}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(xs)))
	return s
}

// MeanStd returns the mean and standard deviation of xs.
func MeanStd(xs []float64) (float64, float64) {
	s := Summarize(xs)
	return s.Mean, s.Std
}

// OverlapCoefficient estimates the overlap of two empirical distributions by
// histogram intersection over a common grid: 1 means indistinguishable,
// 0 means disjoint support. This quantifies the figures' visual overlap.
func OverlapCoefficient(a, b []float64, bins int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range append(append([]float64(nil), a...), b...) {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return 1
	}
	if bins <= 0 {
		bins = 32
	}
	ha := make([]float64, bins)
	hb := make([]float64, bins)
	w := (hi - lo) / float64(bins)
	bucket := func(x float64) int {
		i := int((x - lo) / w)
		if i >= bins {
			i = bins - 1
		}
		return i
	}
	for _, x := range a {
		ha[bucket(x)] += 1 / float64(len(a))
	}
	for _, x := range b {
		hb[bucket(x)] += 1 / float64(len(b))
	}
	ov := 0.0
	for i := 0; i < bins; i++ {
		ov += math.Min(ha[i], hb[i])
	}
	return ov
}

// Percentile returns the p-th percentile (0..100) by linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
