package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"advhunter/internal/rng"
)

func TestConfusionCountsAndScores(t *testing.T) {
	var c Confusion
	// 8 adversarial: 6 caught, 2 missed. 12 clean: 11 passed, 1 flagged.
	for i := 0; i < 6; i++ {
		c.Add(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Add(true, false)
	}
	for i := 0; i < 11; i++ {
		c.Add(false, false)
	}
	c.Add(false, true)
	if c.TP != 6 || c.FN != 2 || c.TN != 11 || c.FP != 1 {
		t.Fatalf("counts: %v", c)
	}
	if math.Abs(c.Accuracy()-17.0/20) > 1e-12 {
		t.Fatal("accuracy")
	}
	if math.Abs(c.Precision()-6.0/7) > 1e-12 {
		t.Fatal("precision")
	}
	if math.Abs(c.Recall()-6.0/8) > 1e-12 {
		t.Fatal("recall")
	}
	wantF1 := 2 * (6.0 / 7) * (6.0 / 8) / ((6.0 / 7) + (6.0 / 8))
	if math.Abs(c.F1()-wantF1) > 1e-12 {
		t.Fatal("f1")
	}
}

func TestConfusionEmptyIsZero(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must score zero, not NaN")
	}
}

func TestConfusionMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Fatalf("merge: %v", a)
	}
}

// Property: F1 is always within [0,1] and 1 iff perfect.
func TestF1Bounds(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		f1 := c.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		if tp > 0 && fp == 0 && fn == 0 && f1 != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("summary: %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max: %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
}

func TestOverlapCoefficientExtremes(t *testing.T) {
	r := rng.New(1)
	var a, b, c []float64
	for i := 0; i < 3000; i++ {
		a = append(a, r.Normal(0, 1))
		b = append(b, r.Normal(0, 1))
		c = append(c, r.Normal(40, 1))
	}
	same := OverlapCoefficient(a, b, 40)
	if same < 0.8 {
		t.Fatalf("identical distributions overlap %.2f", same)
	}
	disjoint := OverlapCoefficient(a, c, 40)
	if disjoint > 0.05 {
		t.Fatalf("disjoint distributions overlap %.2f", disjoint)
	}
}

// Property: overlap is symmetric and within [0,1].
func TestOverlapProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var a, b []float64
		for i := 0; i < 100; i++ {
			a = append(a, r.Normal(0, 2))
			b = append(b, r.Normal(1, 2))
		}
		ab := OverlapCoefficient(a, b, 16)
		ba := OverlapCoefficient(b, a, 16)
		return ab >= 0 && ab <= 1 && math.Abs(ab-ba) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatal("median")
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{1, 1, 1})
	if mean != 1 || std != 0 {
		t.Fatal("constant data")
	}
}
