package gmm

import (
	"math"
	"testing"
	"testing/quick"

	"advhunter/internal/rng"
)

// sampleMixture draws n points from the given mixture.
func sampleMixture(seed uint64, n int, weights, means, stds []float64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		k := r.Choice(weights)
		out[i] = r.Normal(means[k], stds[k])
	}
	return out
}

func TestFitSingleGaussian(t *testing.T) {
	data := sampleMixture(1, 4000, []float64{1}, []float64{5}, []float64{2})
	m, err := Fit(data, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Means[0]-5) > 0.15 {
		t.Fatalf("mean %v, want ~5", m.Means[0])
	}
	if math.Abs(math.Sqrt(m.Vars[0])-2) > 0.15 {
		t.Fatalf("std %v, want ~2", math.Sqrt(m.Vars[0]))
	}
}

func TestFitBimodal(t *testing.T) {
	data := sampleMixture(2, 4000, []float64{0.4, 0.6}, []float64{-4, 6}, []float64{1, 1.5})
	m, err := Fit(data, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Means[0], m.Means[1]
	wLo, wHi := m.Weights[0], m.Weights[1]
	if lo > hi {
		lo, hi = hi, lo
		wLo, wHi = wHi, wLo
	}
	if math.Abs(lo+4) > 0.3 || math.Abs(hi-6) > 0.3 {
		t.Fatalf("means %v/%v, want ~-4/6", lo, hi)
	}
	if math.Abs(wLo-0.4) > 0.05 || math.Abs(wHi-0.6) > 0.05 {
		t.Fatalf("weights %v/%v, want ~0.4/0.6", wLo, wHi)
	}
}

func TestBICSelectsComponentCount(t *testing.T) {
	uni := sampleMixture(3, 2000, []float64{1}, []float64{0}, []float64{1})
	m1, err := FitBest(uni, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m1.K() != 1 {
		t.Fatalf("BIC chose K=%d for unimodal data", m1.K())
	}
	bi := sampleMixture(4, 2000, []float64{0.5, 0.5}, []float64{-6, 6}, []float64{1, 1})
	m2, err := FitBest(bi, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m2.K() != 2 {
		t.Fatalf("BIC chose K=%d for clearly bimodal data", m2.K())
	}
}

// Property: fitted weights form a distribution and variances stay positive.
func TestFitInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		data := sampleMixture(seed, 300, []float64{0.3, 0.7}, []float64{0, 8}, []float64{1, 2})
		cfg := DefaultConfig()
		cfg.Seed = seed
		m, err := Fit(data, 2, cfg)
		if err != nil {
			return false
		}
		sum := 0.0
		for k := range m.Weights {
			if m.Weights[k] < 0 || m.Vars[k] <= 0 {
				return false
			}
			sum += m.Weights[k]
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: EM never decreases data likelihood relative to its seeding —
// verified indirectly: the fitted model explains the data at least as well
// as the best single-Gaussian fit minus tolerance.
func TestFitBeatsOrMatchesSingleGaussian(t *testing.T) {
	data := sampleMixture(5, 1500, []float64{0.5, 0.5}, []float64{-3, 3}, []float64{1, 1})
	m1, err := Fit(data, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(data, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m2.TotalLogLikelihood(data) < m1.TotalLogLikelihood(data)-1e-6 {
		t.Fatal("richer mixture explains data worse than single Gaussian")
	}
}

func TestFitDeterministicBySeed(t *testing.T) {
	data := sampleMixture(6, 500, []float64{0.5, 0.5}, []float64{0, 10}, []float64{1, 1})
	cfg := DefaultConfig()
	a, _ := Fit(data, 2, cfg)
	b, _ := Fit(data, 2, cfg)
	for k := range a.Weights {
		if a.Means[k] != b.Means[k] || a.Vars[k] != b.Vars[k] || a.Weights[k] != b.Weights[k] {
			t.Fatal("equal seeds produced different fits")
		}
	}
}

func TestFitConstantData(t *testing.T) {
	data := make([]float64, 50)
	for i := range data {
		data[i] = 42
	}
	m, err := Fit(data, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Means[0]-42) > 1e-9 {
		t.Fatalf("constant-data mean %v", m.Means[0])
	}
	if ll := m.LogLikelihood(42); math.IsNaN(ll) || math.IsInf(ll, -1) {
		t.Fatalf("degenerate likelihood %v", ll)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2}, 5, DefaultConfig()); err == nil {
		t.Fatal("expected error: more components than points")
	}
	if _, err := Fit([]float64{1, 2, 3}, 0, DefaultConfig()); err == nil {
		t.Fatal("expected error: zero components")
	}
}

func TestNegLogLikelihoodOrdersAnomalies(t *testing.T) {
	data := sampleMixture(7, 2000, []float64{1}, []float64{0}, []float64{1})
	m, err := Fit(data, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NegLogLikelihood(0) >= m.NegLogLikelihood(5) {
		t.Fatal("in-distribution point scored more anomalous than outlier")
	}
	if m.NegLogLikelihood(5) >= m.NegLogLikelihood(20) {
		t.Fatal("NLL not monotone in distance from the mode")
	}
}

func TestLogSumExpStability(t *testing.T) {
	v := []float64{-1e308, -1e308, -1e308}
	if got := logSumExp(v); math.IsNaN(got) {
		t.Fatal("logSumExp NaN on tiny terms")
	}
	v2 := []float64{700, 710, 705}
	if got := logSumExp(v2); math.IsInf(got, 1) || got < 710 {
		t.Fatalf("logSumExp large terms: %v", got)
	}
}

func TestMultiFitRecoversClusters(t *testing.T) {
	r := rng.New(8)
	var pts [][]float64
	for i := 0; i < 1500; i++ {
		if r.Float64() < 0.5 {
			pts = append(pts, []float64{r.Normal(0, 1), r.Normal(0, 1)})
		} else {
			pts = append(pts, []float64{r.Normal(10, 1), r.Normal(-5, 1)})
		}
	}
	m, err := FitMulti(pts, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One mean near (0,0), the other near (10,-5).
	near := func(mu []float64, x, y float64) bool {
		return math.Abs(mu[0]-x) < 0.5 && math.Abs(mu[1]-y) < 0.5
	}
	ok := (near(m.Means[0], 0, 0) && near(m.Means[1], 10, -5)) ||
		(near(m.Means[1], 0, 0) && near(m.Means[0], 10, -5))
	if !ok {
		t.Fatalf("means %v", m.Means)
	}
}

func TestMultiBICSelection(t *testing.T) {
	r := rng.New(9)
	var pts [][]float64
	for i := 0; i < 1000; i++ {
		pts = append(pts, []float64{r.Normal(3, 1), r.Normal(3, 1), r.Normal(3, 1)})
	}
	m, err := FitBestMulti(pts, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 1 {
		t.Fatalf("BIC chose K=%d for one 3-D cluster", m.K())
	}
}

func TestMultiRejectsRaggedData(t *testing.T) {
	if _, err := FitMulti([][]float64{{1, 2}, {3}}, 1, DefaultConfig()); err == nil {
		t.Fatal("expected error on ragged data")
	}
	if _, err := FitMulti(nil, 1, DefaultConfig()); err == nil {
		t.Fatal("expected error on empty data")
	}
}

func TestMultiNLLOrdersAnomalies(t *testing.T) {
	r := rng.New(10)
	var pts [][]float64
	for i := 0; i < 800; i++ {
		pts = append(pts, []float64{r.Normal(0, 1), r.Normal(0, 1)})
	}
	m, err := FitMulti(pts, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NegLogLikelihood([]float64{0, 0}) >= m.NegLogLikelihood([]float64{8, 8}) {
		t.Fatal("multivariate NLL ordering broken")
	}
}

func BenchmarkFitK2(b *testing.B) {
	data := sampleMixture(1, 200, []float64{0.5, 0.5}, []float64{0, 10}, []float64{1, 1})
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Fit(data, 2, cfg)
	}
}

func BenchmarkFitBest(b *testing.B) {
	data := sampleMixture(1, 100, []float64{0.5, 0.5}, []float64{0, 10}, []float64{1, 1})
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = FitBest(data, 5, cfg)
	}
}
