// Package gmm implements Gaussian Mixture Models fitted by
// Expectation-Maximisation (the paper's Algorithm 1), with k-means++-style
// seeding, multiple restarts, and Bayesian Information Criterion model
// selection for the number of components. The univariate form models one
// HPC event's template (Section 5.3); a diagonal multivariate form supports
// the multi-event fusion extension.
package gmm

import (
	"errors"
	"fmt"
	"math"

	"advhunter/internal/rng"
)

// Model is a univariate Gaussian mixture.
type Model struct {
	Weights []float64 // mixing coefficients π_k, sum to 1
	Means   []float64 // μ_k
	Vars    []float64 // σ²_k
}

// K returns the number of components.
func (m *Model) K() int { return len(m.Weights) }

const log2Pi = 1.8378770664093453 // ln(2π)

// Log2Pi exposes ln(2π) for callers that evaluate mixture terms with hoisted
// per-component constants (vectorized detector scoring): a term computed as
// lnπ_k + (−0.5·((Log2Pi + lnσ²_k) + d²/σ²_k)) reproduces LogLikelihood's
// per-term expression bit for bit, because Go's left-associative addition
// makes (log2Pi + ln σ²) + d²/σ² the grouping both forms evaluate.
const Log2Pi = log2Pi

// LogSumExp computes ln Σ exp(v_i) stably — the exported form of the reducer
// LogLikelihood uses, so batched scorers can finish hoisted term vectors with
// bit-identical results.
func LogSumExp(v []float64) float64 { return logSumExp(v) }

// logGauss returns ln N(x | mean, variance).
func logGauss(x, mean, variance float64) float64 {
	d := x - mean
	return -0.5 * (log2Pi + math.Log(variance) + d*d/variance)
}

// logSumExp computes ln Σ exp(v_i) stably.
func logSumExp(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, x := range v {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// LogLikelihood returns ln p(x) under the mixture.
func (m *Model) LogLikelihood(x float64) float64 {
	terms := make([]float64, m.K())
	for k := range terms {
		terms[k] = math.Log(m.Weights[k]) + logGauss(x, m.Means[k], m.Vars[k])
	}
	return logSumExp(terms)
}

// NegLogLikelihood returns −ln p(x), the paper's anomaly score ℓ.
func (m *Model) NegLogLikelihood(x float64) float64 { return -m.LogLikelihood(x) }

// TotalLogLikelihood sums ln p(x) over a dataset.
func (m *Model) TotalLogLikelihood(data []float64) float64 {
	s := 0.0
	for _, x := range data {
		s += m.LogLikelihood(x)
	}
	return s
}

// BIC returns the Bayesian Information Criterion of the model on the data:
// −2·lnL + p·ln n with p = 3K−1 free parameters. Lower is better.
func (m *Model) BIC(data []float64) float64 {
	p := float64(3*m.K() - 1)
	return -2*m.TotalLogLikelihood(data) + p*math.Log(float64(len(data)))
}

// Config controls the EM fit.
type Config struct {
	// MaxIter bounds EM iterations per restart.
	MaxIter int
	// Tol stops EM when the log-likelihood improves by less than Tol.
	Tol float64
	// Restarts runs EM from that many seedings and keeps the best fit.
	Restarts int
	// Seed drives the seeding; equal seeds give identical fits.
	Seed uint64
	// MinVarScale floors component variances at MinVarScale times the data
	// variance, preventing singular collapse onto single points.
	MinVarScale float64
}

// DefaultConfig returns the settings used throughout the evaluation.
func DefaultConfig() Config {
	return Config{MaxIter: 100, Tol: 1e-6, Restarts: 3, Seed: 1, MinVarScale: 1e-4}
}

// meanVar returns the sample mean and (biased) variance.
func meanVar(data []float64) (float64, float64) {
	n := float64(len(data))
	mu := 0.0
	for _, x := range data {
		mu += x
	}
	mu /= n
	v := 0.0
	for _, x := range data {
		d := x - mu
		v += d * d
	}
	return mu, v / n
}

// Fit runs EM with k components.
func Fit(data []float64, k int, cfg Config) (*Model, error) {
	if k <= 0 {
		return nil, fmt.Errorf("gmm: non-positive component count %d", k)
	}
	if len(data) < k {
		return nil, fmt.Errorf("gmm: %d points cannot support %d components", len(data), k)
	}
	dataMu, dataVar := meanVar(data)
	minVar := cfg.MinVarScale * dataVar
	if minVar <= 0 {
		// Constant data: a single (near-)degenerate Gaussian describes it.
		minVar = math.Max(1e-12, 1e-12*math.Abs(dataMu))
	}
	r := rng.New(cfg.Seed)
	restarts := cfg.Restarts
	if restarts < 1 {
		restarts = 1
	}
	var best *Model
	bestLL := math.Inf(-1)
	for attempt := 0; attempt < restarts; attempt++ {
		m := initModel(data, k, dataVar, minVar, r)
		ll, err := em(m, data, cfg, minVar)
		if err != nil {
			continue
		}
		if ll > bestLL {
			best, bestLL = m, ll
		}
	}
	if best == nil {
		return nil, errors.New("gmm: every EM restart failed")
	}
	return best, nil
}

// initModel seeds means k-means++-style (far-apart data points), with the
// pooled variance as every component's starting spread.
func initModel(data []float64, k int, dataVar, minVar float64, r *rng.Rand) *Model {
	m := &Model{
		Weights: make([]float64, k),
		Means:   make([]float64, k),
		Vars:    make([]float64, k),
	}
	startVar := math.Max(dataVar, minVar)
	for i := range m.Weights {
		m.Weights[i] = 1 / float64(k)
		m.Vars[i] = startVar
	}
	// First mean uniform; subsequent means weighted by squared distance to
	// the nearest chosen mean.
	m.Means[0] = data[r.Intn(len(data))]
	dist := make([]float64, len(data))
	for c := 1; c < k; c++ {
		for i, x := range data {
			d := math.Inf(1)
			for _, mu := range m.Means[:c] {
				if dd := (x - mu) * (x - mu); dd < d {
					d = dd
				}
			}
			dist[i] = d
		}
		m.Means[c] = data[r.Choice(dist)]
	}
	return m
}

// em runs the Expectation-Maximisation loop (Algorithm 1) and returns the
// final total log-likelihood.
func em(m *Model, data []float64, cfg Config, minVar float64) (float64, error) {
	n := len(data)
	k := m.K()
	resp := make([]float64, n*k) // responsibilities γ_ik
	terms := make([]float64, k)
	// Per-component constants of ln(π_k N(x|μ_k,σ²_k)), refreshed per
	// iteration: lnπ_k − ½ln(2πσ²_k) and −1/(2σ²_k).
	logConst := make([]float64, k)
	negHalfInvVar := make([]float64, k)
	prevLL := math.Inf(-1)
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	for iter := 0; iter < maxIter; iter++ {
		for j := 0; j < k; j++ {
			logConst[j] = math.Log(m.Weights[j]) - 0.5*(log2Pi+math.Log(m.Vars[j]))
			negHalfInvVar[j] = -0.5 / m.Vars[j]
		}
		// E step: γ_ik = π_k N(x_i|θ_k) / Σ_j π_j N(x_i|θ_j).
		ll := 0.0
		for i, x := range data {
			for j := 0; j < k; j++ {
				d := x - m.Means[j]
				terms[j] = logConst[j] + negHalfInvVar[j]*d*d
			}
			lse := logSumExp(terms)
			ll += lse
			for j := 0; j < k; j++ {
				resp[i*k+j] = math.Exp(terms[j] - lse)
			}
		}
		if math.IsNaN(ll) || math.IsInf(ll, 1) {
			return 0, errors.New("gmm: log-likelihood diverged")
		}
		// M step.
		for j := 0; j < k; j++ {
			var nk, muNum float64
			for i, x := range data {
				nk += resp[i*k+j]
				muNum += resp[i*k+j] * x
			}
			if nk < 1e-10 {
				// Dead component: re-seed on the worst-explained point.
				worst, worstLL := 0, math.Inf(1)
				for i, x := range data {
					if l := m.LogLikelihood(x); l < worstLL {
						worst, worstLL = i, l
					}
				}
				m.Means[j] = data[worst]
				m.Vars[j] = math.Max(minVar, 1e-3)
				m.Weights[j] = 1.0 / float64(n)
				continue
			}
			mu := muNum / nk
			var varNum float64
			for i, x := range data {
				d := x - mu
				varNum += resp[i*k+j] * d * d
			}
			m.Means[j] = mu
			m.Vars[j] = math.Max(varNum/nk, minVar)
			m.Weights[j] = nk / float64(n)
		}
		normalizeWeights(m.Weights)
		// Relative convergence: scale the tolerance with the likelihood
		// magnitude so large datasets do not spin for marginal gains.
		if iter > 0 && ll-prevLL < cfg.Tol*(1+math.Abs(ll)) {
			return ll, nil
		}
		prevLL = ll
	}
	return prevLL, nil
}

// normalizeWeights rescales weights to sum to exactly 1.
func normalizeWeights(w []float64) {
	s := 0.0
	for _, v := range w {
		s += v
	}
	for i := range w {
		w[i] /= s
	}
}

// FitBest fits k = 1..maxK and returns the model with the lowest BIC — the
// paper's model-selection rule.
func FitBest(data []float64, maxK int, cfg Config) (*Model, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("gmm: maxK %d", maxK)
	}
	var best *Model
	bestBIC := math.Inf(1)
	var lastErr error
	for k := 1; k <= maxK && k <= len(data); k++ {
		sub := cfg
		sub.Seed = cfg.Seed + uint64(k)*0x9e37
		m, err := Fit(data, k, sub)
		if err != nil {
			lastErr = err
			continue
		}
		if bic := m.BIC(data); bic < bestBIC {
			best, bestBIC = m, bic
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = errors.New("gmm: no model fitted")
		}
		return nil, lastErr
	}
	return best, nil
}
