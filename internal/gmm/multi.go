package gmm

import (
	"errors"
	"fmt"
	"math"

	"advhunter/internal/rng"
)

// MultiModel is a diagonal-covariance multivariate Gaussian mixture, used by
// the multi-event fusion extension (the paper's per-event models are the
// univariate Model).
type MultiModel struct {
	D       int
	Weights []float64
	Means   [][]float64 // [k][d]
	Vars    [][]float64 // [k][d]
}

// K returns the number of components.
func (m *MultiModel) K() int { return len(m.Weights) }

// logGaussDiag returns ln N(x | mean, diag(vars)).
func logGaussDiag(x, mean, vars []float64) float64 {
	s := 0.0
	for d := range x {
		dd := x[d] - mean[d]
		s += log2Pi + math.Log(vars[d]) + dd*dd/vars[d]
	}
	return -0.5 * s
}

// LogLikelihood returns ln p(x) under the mixture.
func (m *MultiModel) LogLikelihood(x []float64) float64 {
	if len(x) != m.D {
		panic(fmt.Sprintf("gmm: point dimension %d, model dimension %d", len(x), m.D))
	}
	terms := make([]float64, m.K())
	for k := range terms {
		terms[k] = math.Log(m.Weights[k]) + logGaussDiag(x, m.Means[k], m.Vars[k])
	}
	return logSumExp(terms)
}

// NegLogLikelihood returns −ln p(x).
func (m *MultiModel) NegLogLikelihood(x []float64) float64 { return -m.LogLikelihood(x) }

// TotalLogLikelihood sums ln p(x) over the dataset.
func (m *MultiModel) TotalLogLikelihood(data [][]float64) float64 {
	s := 0.0
	for _, x := range data {
		s += m.LogLikelihood(x)
	}
	return s
}

// BIC returns the information criterion with p = K(2D+1)−1 free parameters.
func (m *MultiModel) BIC(data [][]float64) float64 {
	p := float64(m.K()*(2*m.D+1) - 1)
	return -2*m.TotalLogLikelihood(data) + p*math.Log(float64(len(data)))
}

// FitMulti runs diagonal EM with k components on D-dimensional data.
func FitMulti(data [][]float64, k int, cfg Config) (*MultiModel, error) {
	if len(data) == 0 {
		return nil, errors.New("gmm: empty dataset")
	}
	if k <= 0 || len(data) < k {
		return nil, fmt.Errorf("gmm: %d points cannot support %d components", len(data), k)
	}
	dim := len(data[0])
	for _, x := range data {
		if len(x) != dim {
			return nil, errors.New("gmm: ragged dataset")
		}
	}
	// Per-dimension pooled variance, for variance floors and seeding.
	poolVar := make([]float64, dim)
	poolMu := make([]float64, dim)
	for d := 0; d < dim; d++ {
		col := make([]float64, len(data))
		for i, x := range data {
			col[i] = x[d]
		}
		poolMu[d], poolVar[d] = meanVar(col)
	}
	minVar := make([]float64, dim)
	for d := range minVar {
		minVar[d] = math.Max(cfg.MinVarScale*poolVar[d], 1e-12)
	}
	r := rng.New(cfg.Seed ^ 0x5bd1e995)
	restarts := cfg.Restarts
	if restarts < 1 {
		restarts = 1
	}
	var best *MultiModel
	bestLL := math.Inf(-1)
	for attempt := 0; attempt < restarts; attempt++ {
		m := initMulti(data, k, dim, poolVar, minVar, r)
		ll, err := emMulti(m, data, cfg, minVar)
		if err != nil {
			continue
		}
		if ll > bestLL {
			best, bestLL = m, ll
		}
	}
	if best == nil {
		return nil, errors.New("gmm: every multivariate EM restart failed")
	}
	return best, nil
}

// initMulti seeds component means on far-apart data points.
func initMulti(data [][]float64, k, dim int, poolVar, minVar []float64, r *rng.Rand) *MultiModel {
	m := &MultiModel{
		D:       dim,
		Weights: make([]float64, k),
		Means:   make([][]float64, k),
		Vars:    make([][]float64, k),
	}
	for j := 0; j < k; j++ {
		m.Weights[j] = 1 / float64(k)
		m.Vars[j] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			m.Vars[j][d] = math.Max(poolVar[d], minVar[d])
		}
	}
	m.Means[0] = append([]float64(nil), data[r.Intn(len(data))]...)
	dist := make([]float64, len(data))
	for c := 1; c < k; c++ {
		for i, x := range data {
			d := math.Inf(1)
			for _, mu := range m.Means[:c] {
				dd := 0.0
				for t := range x {
					diff := (x[t] - mu[t]) / math.Sqrt(math.Max(poolVar[t], 1e-12))
					dd += diff * diff
				}
				if dd < d {
					d = dd
				}
			}
			dist[i] = d
		}
		m.Means[c] = append([]float64(nil), data[r.Choice(dist)]...)
	}
	return m
}

// emMulti is the diagonal-covariance EM loop.
func emMulti(m *MultiModel, data [][]float64, cfg Config, minVar []float64) (float64, error) {
	n := len(data)
	k := m.K()
	dim := m.D
	resp := make([]float64, n*k)
	terms := make([]float64, k)
	prevLL := math.Inf(-1)
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	for iter := 0; iter < maxIter; iter++ {
		ll := 0.0
		for i, x := range data {
			for j := 0; j < k; j++ {
				terms[j] = math.Log(m.Weights[j]) + logGaussDiag(x, m.Means[j], m.Vars[j])
			}
			lse := logSumExp(terms)
			ll += lse
			for j := 0; j < k; j++ {
				resp[i*k+j] = math.Exp(terms[j] - lse)
			}
		}
		if math.IsNaN(ll) || math.IsInf(ll, 1) {
			return 0, errors.New("gmm: multivariate log-likelihood diverged")
		}
		for j := 0; j < k; j++ {
			nk := 0.0
			for i := range data {
				nk += resp[i*k+j]
			}
			if nk < 1e-10 {
				m.Weights[j] = 1.0 / float64(n)
				continue
			}
			for d := 0; d < dim; d++ {
				mu := 0.0
				for i, x := range data {
					mu += resp[i*k+j] * x[d]
				}
				mu /= nk
				va := 0.0
				for i, x := range data {
					diff := x[d] - mu
					va += resp[i*k+j] * diff * diff
				}
				m.Means[j][d] = mu
				m.Vars[j][d] = math.Max(va/nk, minVar[d])
			}
			m.Weights[j] = nk / float64(n)
		}
		normalizeWeights(m.Weights)
		if iter > 0 && ll-prevLL < cfg.Tol*(1+math.Abs(ll)) {
			return ll, nil
		}
		prevLL = ll
	}
	return prevLL, nil
}

// FitBestMulti selects the component count by BIC.
func FitBestMulti(data [][]float64, maxK int, cfg Config) (*MultiModel, error) {
	var best *MultiModel
	bestBIC := math.Inf(1)
	var lastErr error
	for k := 1; k <= maxK && k <= len(data); k++ {
		sub := cfg
		sub.Seed = cfg.Seed + uint64(k)*0x85eb
		m, err := FitMulti(data, k, sub)
		if err != nil {
			lastErr = err
			continue
		}
		if bic := m.BIC(data); bic < bestBIC {
			best, bestBIC = m, bic
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = errors.New("gmm: no multivariate model fitted")
		}
		return nil, lastErr
	}
	return best, nil
}
