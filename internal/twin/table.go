// Package twin is the analytical twin of the exact μarch simulator: per-leaf
// HPC count tables, profiled offline through the exact engine across
// activation-sparsity buckets, that predict a whole inference's counter
// reading at serve time by table lookup with linear interpolation — no cache
// hierarchy, no branch predictor, no replay on the hot path.
//
// The twin rests on the property the engine's differential tests pin down:
// instruction and branch counts are input-independent, and memory traffic
// varies with the input only through which lines and row groups are
// storage-zero. Each leaf layer's count contribution is therefore (nearly) a
// function of its input's zero-line fraction, which the profiler sweeps and
// the serve-time backend recomputes with one machine-free forward pass.
package twin

import (
	"errors"
	"fmt"
	"math"

	"advhunter/internal/engine"
	"advhunter/internal/parallel"
	"advhunter/internal/persist"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// Schema versions the persisted table envelope (bumped on layout changes,
// like the detector and measurement-cache schemas).
const Schema = 1

// DefaultKnots is the default sparsity-bucket count. Leaf sparsities cluster
// tightly per layer, so a modest uniform grid plus linear interpolation
// reconstructs the count curves to well under the noise floor.
const DefaultKnots = 16

// LayerTable holds one leaf layer's count curves.
type LayerTable struct {
	// Name is the layer's display name (diagnostic only; matching is
	// positional, guarded by the model hash).
	Name string
	// Values[e][k] is event e's predicted count contribution at sparsity
	// knot k; knot k sits at sparsity k/(Knots-1).
	Values [hpc.NumEvents][]float64
}

// Table is the analytical twin of one (model, machine config) pair: per-leaf
// count curves over input sparsity, plus the hashes that tie it to the exact
// configuration it was profiled from.
type Table struct {
	// ModelHash and MachineHash identify the profiled configuration; TryLoad
	// treats any mismatch as a miss, forcing silent regeneration.
	ModelHash   uint64
	MachineHash uint64
	// Knots is the number of uniform sparsity buckets per curve (≥ 2).
	Knots int
	// Probes is the number of inferences the profile swept (provenance).
	Probes int
	// Layers holds one curve set per leaf, in trace order.
	Layers []LayerTable
}

// Profile sweeps the probe inputs through the exact engine with per-leaf
// attribution and builds the count tables. Each observed (sparsity, delta)
// pair is spread over its two neighbouring knots with linear-binning
// weights; knots no probe touched are filled by interpolating between (or
// extending) the nearest observed neighbours. Probes fan out over engine
// replicas, but accumulation runs serially in probe order, so the table is
// bit-identical for any worker count.
func Profile(e *engine.Engine, probes []*tensor.Tensor, knots, workers int) (*Table, error) {
	if knots < 2 {
		knots = DefaultKnots
	}
	if len(probes) == 0 {
		return nil, errors.New("twin: no probe inputs")
	}
	leaves := e.NumLeaves()
	workers = parallel.Workers(workers, len(probes))
	reps := make([]*engine.Engine, workers)
	reps[0] = e
	for w := 1; w < workers; w++ {
		reps[w] = e.Clone()
	}
	profiles := parallel.MapWorkers(workers, probes, func(worker, _ int, x *tensor.Tensor) []engine.LeafProfile {
		_, _, lp := reps[worker].InferProfile(x)
		return lp
	})

	wsum := make([][]float64, leaves)
	vsum := make([][]hpc.Counts, leaves)
	for li := range wsum {
		wsum[li] = make([]float64, knots)
		vsum[li] = make([]hpc.Counts, knots)
	}
	for _, lp := range profiles {
		if len(lp) != leaves {
			return nil, fmt.Errorf("twin: probe produced %d leaf profiles, model has %d leaves", len(lp), leaves)
		}
		for li := range lp {
			leaf := &lp[li]
			pos := leaf.Sparsity * float64(knots-1)
			if pos < 0 {
				pos = 0
			} else if pos > float64(knots-1) {
				pos = float64(knots - 1)
			}
			k0 := int(pos)
			if k0 > knots-2 {
				k0 = knots - 2
			}
			frac := pos - float64(k0)
			accumulate(wsum[li], vsum[li], k0, 1-frac, leaf.Delta)
			accumulate(wsum[li], vsum[li], k0+1, frac, leaf.Delta)
		}
	}

	names := e.LeafNames()
	t := &Table{
		ModelHash:   ModelHash(e.Model),
		MachineHash: MachineHash(e.Config()),
		Knots:       knots,
		Probes:      len(probes),
		Layers:      make([]LayerTable, leaves),
	}
	for li := range t.Layers {
		lt := &t.Layers[li]
		lt.Name = names[li]
		for ev := range lt.Values {
			lt.Values[ev] = make([]float64, knots)
		}
		fillLayer(lt, wsum[li], vsum[li])
	}
	return t, nil
}

// accumulate adds one linear-binning contribution to a knot.
func accumulate(wsum []float64, vsum []hpc.Counts, k int, w float64, delta hpc.Counts) {
	if w == 0 {
		return
	}
	wsum[k] += w
	for ev := range delta {
		vsum[k][ev] += w * delta[ev]
	}
}

// fillLayer converts accumulated weights into knot values: observed knots
// take the weighted mean of their contributions; unobserved knots linearly
// interpolate between the nearest observed neighbours, or copy the nearest
// one when they sit outside the observed range (flat extension).
func fillLayer(lt *LayerTable, wsum []float64, vsum []hpc.Counts) {
	knots := len(wsum)
	observed := make([]int, 0, knots)
	for k := 0; k < knots; k++ {
		if wsum[k] > 0 {
			observed = append(observed, k)
			for ev := range lt.Values {
				lt.Values[ev][k] = vsum[k][ev] / wsum[k]
			}
		}
	}
	if len(observed) == 0 {
		return // all-zero curves; Profile never produces this with probes
	}
	for k := 0; k < knots; k++ {
		if wsum[k] > 0 {
			continue
		}
		lo, hi := -1, -1
		for _, o := range observed {
			if o < k {
				lo = o
			}
			if o > k && hi < 0 {
				hi = o
			}
		}
		for ev := range lt.Values {
			v := lt.Values[ev]
			switch {
			case lo < 0:
				v[k] = v[hi]
			case hi < 0:
				v[k] = v[lo]
			default:
				alpha := float64(k-lo) / float64(hi-lo)
				v[k] = v[lo] + alpha*(v[hi]-v[lo])
			}
		}
	}
}

// Predict sums the per-leaf interpolated contributions into out, which is
// zeroed first. sp holds one input sparsity per leaf in trace order (the
// vector engine.ForwardStats fills). The lookup allocates nothing.
func (t *Table) Predict(sp []float64, out *hpc.Counts) {
	for ev := range out {
		out[ev] = 0
	}
	kmax := t.Knots - 1
	for li := range t.Layers {
		s := sp[li]
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
		pos := s * float64(kmax)
		k0 := int(pos)
		if k0 > kmax-1 {
			k0 = kmax - 1
		}
		frac := pos - float64(k0)
		lt := &t.Layers[li]
		for ev := range lt.Values {
			v := lt.Values[ev]
			out[ev] += v[k0] + frac*(v[k0+1]-v[k0])
		}
	}
}

// PredictBatch is Predict over a micro-batch: outs[i] receives the predicted
// counts for sparsity vector sp[i]. The loop runs layers outer and samples
// inner so each layer's knot curves are reused across the whole batch while
// they are cache-hot; per sample the contributions still accumulate in layer
// order with the exact expression Predict evaluates, so every outs[i] is
// bit-identical to Predict(sp[i], &outs[i]). Allocates nothing.
func (t *Table) PredictBatch(sp [][]float64, outs []hpc.Counts) {
	if len(outs) < len(sp) {
		panic("twin: PredictBatch outs shorter than sp")
	}
	for i := range sp {
		for ev := range outs[i] {
			outs[i][ev] = 0
		}
	}
	kmax := t.Knots - 1
	for li := range t.Layers {
		lt := &t.Layers[li]
		for i := range sp {
			s := sp[i][li]
			if s < 0 {
				s = 0
			} else if s > 1 {
				s = 1
			}
			pos := s * float64(kmax)
			k0 := int(pos)
			if k0 > kmax-1 {
				k0 = kmax - 1
			}
			frac := pos - float64(k0)
			out := &outs[i]
			for ev := range lt.Values {
				v := lt.Values[ev]
				out[ev] += v[k0] + frac*(v[k0+1]-v[k0])
			}
		}
	}
}

// Bytes reports the table's approximate resident size (curve storage plus
// per-layer bookkeeping) for the advhunter_twin_table_bytes gauge.
func (t *Table) Bytes() int {
	if t == nil {
		return 0
	}
	b := 64 // Table header fields
	for i := range t.Layers {
		b += len(t.Layers[i].Name) + 16 + int(hpc.NumEvents)*(t.Knots*8+24)
	}
	return b
}

// validate guards deserialized state so a corrupt artifact can never panic
// Predict.
func (t *Table) validate() error {
	if t.Knots < 2 {
		return fmt.Errorf("twin: table has %d knots, need at least 2", t.Knots)
	}
	if len(t.Layers) == 0 {
		return errors.New("twin: table has no layers")
	}
	for li := range t.Layers {
		for ev := range t.Layers[li].Values {
			v := t.Layers[li].Values[ev]
			if len(v) != t.Knots {
				return fmt.Errorf("twin: layer %d event %d has %d knots, table says %d", li, ev, len(v), t.Knots)
			}
			for _, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return fmt.Errorf("twin: layer %d event %d holds a non-finite value", li, ev)
				}
			}
		}
	}
	return nil
}

// Save writes the table atomically under the twin schema envelope.
func (t *Table) Save(path string) error {
	return persist.Save(path, Schema, t)
}

// TryLoad loads a table artifact if — and only if — it is usable as-is: the
// file exists, carries the twin schema, decodes into a structurally valid
// table, and its model/machine hashes match the configuration the caller
// will serve. Every failure mode is a miss, not an error: a stale or corrupt
// artifact means the caller re-profiles and overwrites, exactly like the
// measurement-cache loaders.
func TryLoad(path string, modelHash, machineHash uint64) (*Table, bool) {
	var t Table
	if err := persist.Load(path, Schema, &t); err != nil {
		return nil, false
	}
	if t.validate() != nil {
		return nil, false
	}
	if t.ModelHash != modelHash || t.MachineHash != machineHash {
		return nil, false
	}
	return &t, true
}

// LoadOrProfile returns the table at path when it is valid for the engine's
// model and machine configuration, and otherwise profiles a fresh one over
// probes() and writes it back — the detector stack's load-or-refit workflow
// applied to twin tables. probes is a constructor so a successful load skips
// building the sweep entirely. An empty path skips persistence. The boolean
// reports whether the table came from disk.
func LoadOrProfile(path string, e *engine.Engine, probes func() []*tensor.Tensor, knots, workers int) (*Table, bool, error) {
	if path != "" {
		if t, ok := TryLoad(path, ModelHash(e.Model), MachineHash(e.Config())); ok {
			return t, true, nil
		}
	}
	t, err := Profile(e, probes(), knots, workers)
	if err != nil {
		return nil, false, err
	}
	if path != "" {
		if err := t.Save(path); err != nil {
			return nil, false, err
		}
	}
	return t, false, nil
}
