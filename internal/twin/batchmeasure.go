package twin

import (
	"advhunter/internal/core"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// twinBatchScratch holds MeasureBatchCached's reusable buffers. The sparsity
// rows share one backing array sized batch×leaves so growth is a single
// allocation per high-water batch width.
type twinBatchScratch struct {
	fps    []uint64
	src    []int // per sample: -1 = cache hit (truth in tr), else miss slot
	tr     []core.Truth
	mtr    []core.Truth
	mxs    []*tensor.Tensor
	midx   []int
	sp     [][]float64
	spBuf  []float64
	preds  []int
	confs  []float64
	counts []hpc.Counts
}

func (b *twinBatchScratch) grow(n, leaves int) {
	if cap(b.fps) < n {
		b.fps = make([]uint64, n)
		b.src = make([]int, n)
		b.tr = make([]core.Truth, n)
		b.mtr = make([]core.Truth, n)
		b.mxs = make([]*tensor.Tensor, n)
		b.midx = make([]int, n)
		b.sp = make([][]float64, n)
		b.spBuf = make([]float64, n*leaves)
		for i := range b.sp {
			b.sp[i] = b.spBuf[i*leaves : (i+1)*leaves]
		}
		b.preds = make([]int, n)
		b.confs = make([]float64, n)
		b.counts = make([]hpc.Counts, n)
	}
	b.fps = b.fps[:n]
	b.src = b.src[:n]
	b.tr = b.tr[:n]
	b.mtr = b.mtr[:n]
	b.mxs = b.mxs[:n]
	b.midx = b.midx[:n]
	b.preds = b.preds[:n]
	b.confs = b.confs[:n]
	b.counts = b.counts[:n]
}

// MeasureBatchCached is the twin analogue of core.Measurer.MeasureBatchCached:
// unique cache misses run through one batched machine-free stats pass and one
// batched table lookup, then every sample's noisy reading is drawn from its
// own index stream. out[i] is bit-identical to a sequential
// MeasureAtCached(cache, idxs[i], xs[i]) loop — ForwardStatsBatch and
// PredictBatch are pinned bit-identical to their per-sample forms, and the
// noise is keyed by idxs[i] alone. hits, when non-nil, reports per-sample
// cache hits with in-batch duplicates counting as hits, matching sequential
// in-order semantics. Single-goroutine, like the measurer's other methods.
func (m *Measurer) MeasureBatchCached(cache *core.TruthCache, idxs []uint64, xs []*tensor.Tensor, out []core.Measurement, hits []bool) {
	n := len(xs)
	if len(idxs) < n || len(out) < n || (hits != nil && len(hits) < n) {
		panic("twin: MeasureBatchCached slices shorter than batch")
	}
	if n == 0 {
		return
	}
	b := &m.batch
	b.grow(n, len(m.sp))

	nm := 0
	if cache == nil {
		for i, x := range xs {
			b.src[i] = i
			b.mxs[i] = x
			b.midx[i] = i
			if hits != nil {
				hits[i] = false
			}
		}
		nm = n
	} else {
		for i, x := range xs {
			fp := core.Fingerprint(x)
			b.fps[i] = fp
			if t, ok := cache.Get(fp); ok {
				b.tr[i] = t
				b.src[i] = -1
				if hits != nil {
					hits[i] = true
				}
				continue
			}
			dup := -1
			for j := 0; j < nm; j++ {
				if b.fps[b.midx[j]] == fp {
					dup = j
					break
				}
			}
			if dup >= 0 {
				b.src[i] = dup
				if hits != nil {
					hits[i] = true
				}
				continue
			}
			b.src[i] = nm
			b.midx[nm] = i
			b.mxs[nm] = x
			if hits != nil {
				hits[i] = false
			}
			nm++
		}
	}

	if nm > 0 {
		m.Engine.ForwardStatsBatch(b.mxs[:nm], b.sp[:nm], b.preds, b.confs)
		m.Table.PredictBatch(b.sp[:nm], b.counts)
		for j := 0; j < nm; j++ {
			t := core.Truth{Pred: b.preds[j], Conf: b.confs[j], Counts: b.counts[j]}
			b.mtr[j] = t
			if cache != nil {
				cache.Put(b.fps[b.midx[j]], t)
			}
			b.mxs[j] = nil
		}
	}

	for i := range xs {
		t := b.tr[i]
		if b.src[i] >= 0 {
			t = b.mtr[b.src[i]]
		}
		out[i] = core.Measurement{
			Pred:      t.Pred,
			TrueLabel: -1,
			Counts:    m.ns.SamplerAt(m.Noise, m.Seed, idxs[i]).MeasureMean(t.Counts, m.R),
			Conf:      t.Conf,
		}
	}
}
