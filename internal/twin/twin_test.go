package twin

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/engine"
	"advhunter/internal/models"
	"advhunter/internal/uarch/hpc"
)

// The fixture skips training: an untrained model exercises the full profile
// → predict path, and the twin's accuracy against the trained exact path is
// validated end to end by the twin-accuracy experiment.
var (
	twinOnce    sync.Once
	twinSamples []data.Sample
	twinModel   *models.Model
)

func fixture(t testing.TB) ([]data.Sample, *models.Model) {
	t.Helper()
	twinOnce.Do(func() {
		ds := data.MustSynth("fashionmnist", 909, 5, 0)
		twinSamples = ds.Train
		twinModel = models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 4)
	})
	return twinSamples, twinModel
}

func mustProfile(t testing.TB, e *engine.Engine, samples []data.Sample, knots, workers int) *Table {
	t.Helper()
	tab, err := Profile(e, Probes(samples, 1, 0.1, 11), knots, workers)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	return tab
}

// TestProfileDeterministicAcrossWorkers: the accumulation runs serially in
// probe order, so the table must be bit-identical for any worker count.
func TestProfileDeterministicAcrossWorkers(t *testing.T) {
	samples, model := fixture(t)
	want := mustProfile(t, engine.NewDefault(model), samples, 8, 1)
	for _, workers := range []int{2, 4, 8} {
		got := mustProfile(t, engine.NewDefault(model), samples, 8, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: table differs from serial profile", workers)
		}
	}
}

// TestRoundTripBitStable: profile → Save → TryLoad → Predict must reproduce
// the in-memory table's predictions bit for bit (gob encodes float64
// exactly).
func TestRoundTripBitStable(t *testing.T) {
	samples, model := fixture(t)
	eng := engine.NewDefault(model)
	tab := mustProfile(t, eng, samples, 8, 0)
	path := filepath.Join(t.TempDir(), "twin", "table.gob")
	if err := tab.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, ok := TryLoad(path, ModelHash(model), MachineHash(eng.Config()))
	if !ok {
		t.Fatal("TryLoad missed a table that was just saved for the same configuration")
	}
	if !reflect.DeepEqual(loaded, tab) {
		t.Fatal("loaded table differs from the profiled one")
	}
	sp := make([]float64, eng.NumLeaves())
	for i, s := range samples[:5] {
		eng.ForwardStats(s.X, sp)
		var want, got hpc.Counts
		tab.Predict(sp, &want)
		loaded.Predict(sp, &got)
		if want != got {
			t.Fatalf("sample %d: prediction drifted across the round trip: %v vs %v", i, got, want)
		}
	}
}

// TestTryLoadMissNotError: every broken-artifact mode — missing file,
// corrupt bytes, truncation, foreign schema, stale model hash, stale
// machine hash — must read as a miss, never a panic or a false hit.
func TestTryLoadMissNotError(t *testing.T) {
	samples, model := fixture(t)
	eng := engine.NewDefault(model)
	tab := mustProfile(t, eng, samples, 8, 0)
	dir := t.TempDir()
	path := filepath.Join(dir, "table.gob")
	if err := tab.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	mh, ch := ModelHash(model), MachineHash(eng.Config())

	if _, ok := TryLoad(filepath.Join(dir, "absent.gob"), mh, ch); ok {
		t.Error("missing file loaded")
	}
	if _, ok := TryLoad(path, mh+1, ch); ok {
		t.Error("stale model hash loaded")
	}
	if _, ok := TryLoad(path, mh, ch+1); ok {
		t.Error("stale machine hash loaded")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.gob")
	if err := os.WriteFile(trunc, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := TryLoad(trunc, mh, ch); ok {
		t.Error("truncated file loaded")
	}
	corrupt := filepath.Join(dir, "corrupt.gob")
	if err := os.WriteFile(corrupt, []byte("not a gob envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := TryLoad(corrupt, mh, ch); ok {
		t.Error("corrupt file loaded")
	}
}

// TestHashesDiscriminate: retrained weights and changed machine geometry
// must change the respective hashes.
func TestHashesDiscriminate(t *testing.T) {
	_, model := fixture(t)
	other := models.MustBuild("simplecnn", 1, 28, 28, 10, 99)
	if ModelHash(model) == ModelHash(other) {
		t.Error("differently seeded models share a model hash")
	}
	cfg := engine.DefaultMachineConfig()
	cfg2 := cfg
	cfg2.QuantLevels++
	if MachineHash(cfg) == MachineHash(cfg2) {
		t.Error("different quantization levels share a machine hash")
	}
	cfg3 := cfg
	cfg3.Hierarchy.LLC.SizeB *= 2
	if MachineHash(cfg) == MachineHash(cfg3) {
		t.Error("different LLC sizes share a machine hash")
	}
}

// TestMeasureAtMatchesProtocol: the twin reading must differ from the exact
// reading only through the truth counts — prediction, confidence and the
// per-index noise stream are shared. Verified by feeding the twin's own
// truth through core's protocol manually.
func TestMeasureAtMatchesProtocol(t *testing.T) {
	samples, model := fixture(t)
	eng := engine.NewDefault(model)
	tab := mustProfile(t, eng, samples, 8, 0)
	exact := core.NewMeasurer(engine.NewDefault(model), 42)
	tm, err := FromMeasurer(exact, tab)
	if err != nil {
		t.Fatalf("FromMeasurer: %v", err)
	}
	var ns core.NoiseStream
	for i, s := range samples[:6] {
		got := tm.MeasureAt(uint64(i), s.X)
		truth := tm.Clone().Truth(s.X)
		want := core.Measurement{
			Pred:      truth.Pred,
			TrueLabel: -1,
			Counts:    ns.SamplerAt(exact.Noise, exact.Seed, uint64(i)).MeasureMean(truth.Counts, exact.R),
			Conf:      truth.Conf,
		}
		if got != want {
			t.Fatalf("sample %d: twin measurement %+v, protocol says %+v", i, got, want)
		}
		// Prediction and confidence must be bit-identical to the exact path.
		pred, conf, _ := exact.Engine.InferConf(s.X)
		if got.Pred != pred || got.Conf != conf {
			t.Fatalf("sample %d: twin (pred %d, conf %v) differs from exact (pred %d, conf %v)",
				i, got.Pred, got.Conf, pred, conf)
		}
	}
}

// TestMeasureAtCachedMatchesUncached mirrors core's cache-soundness test for
// the twin backend.
func TestMeasureAtCachedMatchesUncached(t *testing.T) {
	samples, model := fixture(t)
	eng := engine.NewDefault(model)
	tab := mustProfile(t, eng, samples, 8, 0)
	tm, err := NewMeasurer(engine.NewDefault(model), tab, hpc.DefaultNoise(), 42, 10)
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewTruthCache(8)
	for round := 0; round < 2; round++ {
		for i, s := range samples[:6] {
			want := tm.Clone().MeasureAt(uint64(i), s.X)
			got, hit := tm.MeasureAtCached(cache, uint64(i), s.X)
			if got != want {
				t.Fatalf("round %d sample %d: cached %+v, uncached %+v", round, i, got, want)
			}
			if hit != (round > 0) {
				t.Fatalf("round %d sample %d: hit = %v", round, i, hit)
			}
		}
	}
}

// TestMeasureSetDeterministicAcrossWorkers mirrors core's tentpole
// regression for the twin fan-out.
func TestMeasureSetDeterministicAcrossWorkers(t *testing.T) {
	samples, model := fixture(t)
	eng := engine.NewDefault(model)
	tab := mustProfile(t, eng, samples, 8, 0)
	fresh := func() *Measurer {
		tm, err := NewMeasurer(engine.NewDefault(model), tab, hpc.DefaultNoise(), 42, 10)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	want := MeasureSet(fresh(), samples, 1)
	for _, workers := range []int{2, 4, 8} {
		got := MeasureSet(fresh(), samples, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: measurements differ from serial", workers)
		}
	}
}

// TestMeasureAtZeroAlloc gates the serve-time promise: the twin lookup path
// — forward stats, table predict, noise draw — must not allocate once warm.
func TestMeasureAtZeroAlloc(t *testing.T) {
	samples, model := fixture(t)
	eng := engine.NewDefault(model)
	tab := mustProfile(t, eng, samples, 8, 0)
	tm, err := NewMeasurer(engine.NewDefault(model), tab, hpc.DefaultNoise(), 42, 10)
	if err != nil {
		t.Fatal(err)
	}
	x := samples[0].X
	for i := 0; i < 3; i++ {
		tm.MeasureAt(uint64(i), x)
	}
	if n := testing.AllocsPerRun(10, func() { tm.MeasureAt(7, x) }); n != 0 {
		t.Fatalf("MeasureAt allocs/op = %v, want 0", n)
	}
}

// TestPredictTracksExactCounts is the in-package accuracy smoke test: on the
// probe distribution itself, per-event relative error of the memory-traffic
// channels should sit well under the noise the detector already tolerates.
// (The trained-model, adversarial-workload validation is the twin-accuracy
// experiment.)
func TestPredictTracksExactCounts(t *testing.T) {
	samples, model := fixture(t)
	eng := engine.NewDefault(model)
	tab := mustProfile(t, eng, samples, DefaultKnots, 0)
	sp := make([]float64, eng.NumLeaves())
	for _, ev := range []hpc.Event{hpc.Instructions, hpc.Branches, hpc.CacheReferences, hpc.CacheMisses} {
		mean, worst := 0.0, 0.0
		for _, s := range samples {
			_, truth := eng.Infer(s.X)
			eng.ForwardStats(s.X, sp)
			var pred hpc.Counts
			tab.Predict(sp, &pred)
			rel := math.Abs(pred[ev]-truth[ev]) / math.Max(truth[ev], 1)
			mean += rel
			if rel > worst {
				worst = rel
			}
		}
		mean /= float64(len(samples))
		t.Logf("%v: mean relative error %.4f, worst %.4f", ev, mean, worst)
		if mean > 0.03 {
			t.Errorf("%v: mean relative error %.4f over the probe pool, want <= 0.03", ev, mean)
		}
		if worst > 0.15 {
			t.Errorf("%v: worst relative error %.4f over the probe pool, want <= 0.15", ev, worst)
		}
	}
}
