package twin

import (
	"fmt"

	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/engine"
	"advhunter/internal/parallel"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// Measurer is the twin measurement backend: the same shape as core.Measurer
// — MeasureAt(i, x) yields one Measurement whose noise stream is keyed by
// the sample index — but the truth counts come from table lookup over a
// machine-free forward pass instead of cache simulation. Prediction and
// confidence are bit-identical to the exact path (the forward numerics are
// shared); only the counts are approximate.
//
// Like core.Measurer, the measuring methods are single-goroutine; Clone
// builds independent replicas for concurrent serving.
type Measurer struct {
	Engine *engine.Engine
	Table  *Table
	// Noise, Seed and R follow the exact measurer's protocol so that a twin
	// reading for (i, x) differs from the exact reading only through the
	// predicted truth counts, never through the noise draw.
	Noise hpc.NoiseModel
	Seed  uint64
	R     int

	sp []float64
	ns core.NoiseStream

	// batch holds MeasureBatchCached's reusable buffers (batchmeasure.go).
	batch twinBatchScratch
}

// NewMeasurer builds a twin backend around an engine (used only for its
// machine-free forward pass) and a profiled table for the same model.
func NewMeasurer(e *engine.Engine, t *Table, noise hpc.NoiseModel, seed uint64, r int) (*Measurer, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	if n := e.NumLeaves(); n != len(t.Layers) {
		return nil, fmt.Errorf("twin: table has %d layers, model has %d leaves", len(t.Layers), n)
	}
	return &Measurer{
		Engine: e,
		Table:  t,
		Noise:  noise,
		Seed:   seed,
		R:      r,
		sp:     make([]float64, len(t.Layers)),
	}, nil
}

// FromMeasurer derives the twin backend shadowing an exact measurer: a
// fresh engine replica plus the identical noise protocol (model, seed,
// repetition count).
func FromMeasurer(m *core.Measurer, t *Table) (*Measurer, error) {
	return NewMeasurer(m.Engine.Clone(), t, m.Noise, m.Seed, m.R)
}

// Clone returns an independent replica: private engine and scratch, shared
// (read-only) table.
func (m *Measurer) Clone() *Measurer {
	return &Measurer{
		Engine: m.Engine.Clone(),
		Table:  m.Table,
		Noise:  m.Noise,
		Seed:   m.Seed,
		R:      m.R,
		sp:     make([]float64, len(m.sp)),
	}
}

// Truth computes the twin's noise-free inference outcome: exact prediction
// and confidence from the machine-free forward pass, predicted counts from
// the table. Steady-state calls allocate nothing.
func (m *Measurer) Truth(x *tensor.Tensor) core.Truth {
	pred, conf := m.Engine.ForwardStats(x, m.sp)
	t := core.Truth{Pred: pred, Conf: conf}
	m.Table.Predict(m.sp, &t.Counts)
	return t
}

// MeasureAt measures one image under the noise stream of sample index i,
// following core.Measurer's protocol with twin truth counts.
func (m *Measurer) MeasureAt(i uint64, x *tensor.Tensor) core.Measurement {
	t := m.Truth(x)
	return core.Measurement{
		Pred:      t.Pred,
		TrueLabel: -1,
		Counts:    m.ns.SamplerAt(m.Noise, m.Seed, i).MeasureMean(t.Counts, m.R),
		Conf:      t.Conf,
	}
}

// MeasureAtCached is MeasureAt with twin-truth memoisation, mirroring
// core.Measurer.MeasureAtCached: bit-identical results on hit and miss, with
// the hit skipping even the machine-free forward pass. The cache must be
// dedicated to twin truths — twin and exact counts for the same input
// differ, so the caches must never be shared across tiers.
func (m *Measurer) MeasureAtCached(cache *core.TruthCache, i uint64, x *tensor.Tensor) (core.Measurement, bool) {
	if cache == nil {
		return m.MeasureAt(i, x), false
	}
	fp := core.Fingerprint(x)
	t, hit := cache.Get(fp)
	if !hit {
		t = m.Truth(x)
		cache.Put(fp, t)
	}
	return core.Measurement{
		Pred:      t.Pred,
		TrueLabel: -1,
		Counts:    m.ns.SamplerAt(m.Noise, m.Seed, i).MeasureMean(t.Counts, m.R),
		Conf:      t.Conf,
	}, hit
}

// MeasureSet measures a slice of samples with per-index noise keying,
// mirroring core.MeasureSet: results are bit-identical for any worker count
// (<= 0 selects GOMAXPROCS), and TrueLabel carries the sample's label.
func MeasureSet(m *Measurer, samples []data.Sample, workers int) []core.Measurement {
	workers = parallel.Workers(workers, len(samples))
	reps := make([]*Measurer, workers)
	reps[0] = m
	for w := 1; w < workers; w++ {
		reps[w] = m.Clone()
	}
	return parallel.MapWorkers(workers, samples, func(worker, i int, s data.Sample) core.Measurement {
		mm := reps[worker].MeasureAt(uint64(i), s.X)
		mm.TrueLabel = s.Label
		return mm
	})
}
