package twin

import (
	"math"
	"testing"

	"advhunter/internal/core"
	"advhunter/internal/engine"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// TestBatchIdentityPredictBatch pins the table contract: PredictBatch fills
// exactly what Predict returns per sparsity row, bit for bit, including
// clamped out-of-range sparsities.
func TestBatchIdentityPredictBatch(t *testing.T) {
	samples, model := fixture(t)
	tab := mustProfile(t, engine.NewDefault(model), samples, 8, 0)
	leaves := len(tab.Layers)
	rows := [][]float64{
		make([]float64, leaves), // all zero
		make([]float64, leaves),
		make([]float64, leaves),
		make([]float64, leaves),
	}
	for j := range rows[1] {
		rows[1][j] = float64(j%10) / 10
	}
	for j := range rows[2] {
		rows[2][j] = 1.5 // clamps to 1
	}
	for j := range rows[3] {
		rows[3][j] = -0.25 // clamps to 0
	}
	outs := make([]hpc.Counts, len(rows))
	tab.PredictBatch(rows, outs)
	for i, sp := range rows {
		var want hpc.Counts
		tab.Predict(sp, &want)
		for ev := hpc.Event(0); ev < hpc.NumEvents; ev++ {
			if math.Float64bits(outs[i][ev]) != math.Float64bits(want[ev]) {
				t.Fatalf("row %d event %v: PredictBatch %v, Predict %v", i, ev, outs[i][ev], want[ev])
			}
		}
	}
}

// TestBatchIdentityMeasureTwin is the twin-tier form of the batched
// measurement contract: MeasureBatchCached must match a sequential
// MeasureAtCached loop measurement for measurement — hit flags, in-batch
// revisits, warm caches, nil cache — across interleaved batch widths.
func TestBatchIdentityMeasureTwin(t *testing.T) {
	samples, model := fixture(t)
	tab := mustProfile(t, engine.NewDefault(model), samples, 8, 0)
	ref, err := NewMeasurer(engine.NewDefault(model), tab, hpc.DefaultNoise(), 42, 10)
	if err != nil {
		t.Fatalf("NewMeasurer: %v", err)
	}
	bat, err := NewMeasurer(engine.NewDefault(model), tab, hpc.DefaultNoise(), 42, 10)
	if err != nil {
		t.Fatalf("NewMeasurer: %v", err)
	}
	refCache := core.NewTruthCache(16)
	batCache := core.NewTruthCache(16)

	// Revisit-heavy first batch, then interleaved widths over the warm cache.
	orders := [][]int{
		{0, 1, 0, 2, 1, 0, 3, 2},
		{4},
		{0, 4, 3},
		{2, 1, 4, 0, 3, 2, 1, 0},
	}
	next := uint64(0)
	for _, order := range orders {
		n := len(order)
		idxs := make([]uint64, n)
		xs := make([]*tensor.Tensor, n)
		for i, si := range order {
			idxs[i] = next
			xs[i] = samples[si%len(samples)].X
			next++
		}
		want := make([]core.Measurement, n)
		wantH := make([]bool, n)
		for i := range idxs {
			want[i], wantH[i] = ref.MeasureAtCached(refCache, idxs[i], xs[i])
		}
		got := make([]core.Measurement, n)
		gotH := make([]bool, n)
		bat.MeasureBatchCached(batCache, idxs, xs, got, gotH)
		for i := range idxs {
			if got[i] != want[i] {
				t.Fatalf("width %d, index %d: batched twin measurement diverged:\nbatch:      %+v\nsequential: %+v",
					n, idxs[i], got[i], want[i])
			}
			if gotH[i] != wantH[i] {
				t.Fatalf("width %d, index %d: batched hit %v, sequential %v", n, idxs[i], gotH[i], wantH[i])
			}
		}
	}
	// Same working set either way; the hit flags above are the contract (the
	// batched dedupe answers in-batch revisits without a cache round-trip).
	if rl, bl := refCache.Len(), batCache.Len(); rl != bl {
		t.Fatalf("twin cache residency diverged: batch %d entries, sequential %d", bl, rl)
	}

	// nil cache: no memoisation, identical readings.
	idxs := []uint64{next, next + 1, next + 2}
	xs := []*tensor.Tensor{samples[0].X, samples[1].X, samples[0].X}
	want := make([]core.Measurement, len(idxs))
	for i := range idxs {
		want[i], _ = ref.MeasureAtCached(nil, idxs[i], xs[i])
	}
	got := make([]core.Measurement, len(idxs))
	gotH := make([]bool, len(idxs))
	bat.MeasureBatchCached(nil, idxs, xs, got, gotH)
	for i := range idxs {
		if gotH[i] {
			t.Fatalf("index %d: nil-cache twin batch reported a hit", idxs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("index %d: nil-cache twin batched measurement diverged", idxs[i])
		}
	}
}
