package twin

import (
	"advhunter/internal/data"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
)

// Probes assembles a profiling sweep from a sample pool: every clean image
// plus extra perturbed copies per image — uniform noise of amplitude eps,
// clamped to [0,1] — so the sparsity grid covers the perturbed neighbourhood
// adversarial queries live in, not just the clean manifold. Deterministic in
// (samples, extra, eps, seed).
func Probes(samples []data.Sample, extra int, eps float64, seed uint64) []*tensor.Tensor {
	r := rng.New(seed)
	out := make([]*tensor.Tensor, 0, len(samples)*(1+extra))
	for _, s := range samples {
		out = append(out, s.X)
		for k := 0; k < extra; k++ {
			p := s.X.Clone()
			d := p.Data()
			for j := range d {
				v := d[j] + eps*(2*r.Float64()-1)
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				d[j] = v
			}
			out = append(out, p)
		}
	}
	return out
}
