package twin

import (
	"fmt"
	"math"

	"advhunter/internal/engine"
	"advhunter/internal/models"
	"advhunter/internal/nn"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) word(v uint64) {
	*h ^= fnv64(v)
	*h *= fnvPrime
}

func (h *fnv64) str(s string) {
	h.word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.word(uint64(s[i]))
	}
}

// ModelHash fingerprints a model's architecture and parameters: FNV-1a over
// the input/output metadata, every layer name in walk order, and each
// parameter's name, shape and exact float64 bits. A retrained, rebuilt or
// differently-shaped model changes the hash, silently invalidating any twin
// table profiled from the old one.
func ModelHash(m *models.Model) uint64 {
	h := fnv64(fnvOffset)
	h.str(m.Meta.Arch)
	h.word(uint64(m.Meta.InC))
	h.word(uint64(m.Meta.InH))
	h.word(uint64(m.Meta.InW))
	h.word(uint64(m.Meta.Classes))
	m.Net.Walk(func(l nn.Layer) {
		h.str(l.Name())
		for _, p := range l.Params() {
			h.str(p.Name)
			for _, d := range p.Value.Shape() {
				h.word(uint64(d))
			}
			for _, v := range p.Value.Data() {
				h.word(math.Float64bits(v))
			}
		}
	})
	return uint64(h)
}

// MachineHash fingerprints a machine configuration. Value-typed parts
// (cache geometries, TLB, quantization, co-runner, replay mode) hash by
// content; the pluggable prefetcher and branch predictor hash by dynamic
// type, which is what distinguishes configurations in practice — their
// tuning fields are fixed per type in this codebase.
func MachineHash(cfg engine.MachineConfig) uint64 {
	h := fnv64(fnvOffset)
	h.str(fmt.Sprintf("l1i=%#v l1d=%#v l2=%#v llc=%#v dtlb=%#v pf=%T bp=%T branchy=%v q=%d co=%#v scalar=%v",
		cfg.Hierarchy.L1I, cfg.Hierarchy.L1D, cfg.Hierarchy.L2, cfg.Hierarchy.LLC,
		cfg.Hierarchy.DTLB, cfg.Hierarchy.L1DPrefetcher, cfg.Predictor,
		cfg.BranchyKernels, cfg.QuantLevels, cfg.CoRunner, cfg.ScalarReplay))
	return uint64(h)
}
