// Package train implements minibatch SGD with momentum and weight decay, an
// epoch loop with step-decayed learning rate, accuracy evaluation, and
// disk-cached training so experiments re-use converged models across runs.
package train

import (
	"fmt"
	"io"
	"os"

	"advhunter/internal/data"
	"advhunter/internal/models"
	"advhunter/internal/nn"
	"advhunter/internal/rng"
)

// Config controls the SGD loop.
type Config struct {
	Epochs       int
	BatchSize    int
	LearningRate float64
	Momentum     float64
	WeightDecay  float64
	// LRDecayEvery halves the learning rate after this many epochs
	// (0 disables decay).
	LRDecayEvery int
	// Seed drives batch shuffling.
	Seed uint64
	// TargetAccuracy stops training early once test accuracy reaches this
	// value (0 disables early stopping). Checked after each epoch.
	TargetAccuracy float64
	// Log receives progress lines; nil silences output.
	Log io.Writer
}

// DefaultConfig returns the settings used by the paper-scale scenarios.
func DefaultConfig() Config {
	return Config{
		Epochs:       12,
		BatchSize:    16,
		LearningRate: 0.05,
		Momentum:     0.9,
		WeightDecay:  1e-4,
		LRDecayEvery: 5,
		Seed:         1,
	}
}

// Result summarises a training run.
type Result struct {
	Epochs        int
	FinalLoss     float64
	TrainAccuracy float64
	TestAccuracy  float64
}

// SGD trains the model in place on the dataset's training split.
func SGD(m *models.Model, ds *data.Dataset, cfg Config) Result {
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		panic("train: non-positive batch size or epoch count")
	}
	r := rng.New(cfg.Seed)
	params := m.Net.Params()
	velocity := make([][]float64, len(params))
	for i, p := range params {
		velocity[i] = make([]float64, p.Value.Len())
	}
	lr := cfg.LearningRate
	var res Result
	n := len(ds.Train)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRDecayEvery > 0 && epoch > 0 && epoch%cfg.LRDecayEvery == 0 {
			lr /= 2
		}
		order := r.Perm(n)
		totalLoss, seen := 0.0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			batch := make([]data.Sample, 0, end-start)
			for _, idx := range order[start:end] {
				batch = append(batch, ds.Train[idx])
			}
			x, labels := data.Stack(batch)
			nn.ZeroGrads(m.Net)
			logits := m.Net.Forward(x, true)
			loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
			m.Net.Backward(grad)
			totalLoss += loss * float64(len(batch))
			seen += len(batch)
			for i, p := range params {
				v, g, w := velocity[i], p.Grad.Data(), p.Value.Data()
				for j := range w {
					v[j] = cfg.Momentum*v[j] + g[j] + cfg.WeightDecay*w[j]
					w[j] -= lr * v[j]
				}
			}
		}
		res.Epochs = epoch + 1
		res.FinalLoss = totalLoss / float64(seen)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %2d: loss %.4f lr %.4f\n", epoch+1, res.FinalLoss, lr)
		}
		if cfg.TargetAccuracy > 0 {
			acc := Evaluate(m, ds.Test)
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "          test accuracy %.2f%%\n", 100*acc)
			}
			if acc >= cfg.TargetAccuracy {
				break
			}
		}
	}
	res.TrainAccuracy = Evaluate(m, ds.Train)
	res.TestAccuracy = Evaluate(m, ds.Test)
	return res
}

// Evaluate returns the model's accuracy over the samples.
func Evaluate(m *models.Model, samples []data.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	const chunk = 32
	for start := 0; start < len(samples); start += chunk {
		end := start + chunk
		if end > len(samples) {
			end = len(samples)
		}
		x, labels := data.Stack(samples[start:end])
		preds := m.PredictBatch(x)
		for i, p := range preds {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(samples))
}

// Cached trains the model unless a checkpoint exists at path, in which case
// the checkpoint is loaded instead. It returns whether training ran.
func Cached(m *models.Model, ds *data.Dataset, cfg Config, path string) (Result, bool, error) {
	if _, err := os.Stat(path); err == nil {
		if err := m.Load(path); err != nil {
			return Result{}, false, fmt.Errorf("train: stale checkpoint %s: %w", path, err)
		}
		return Result{TestAccuracy: Evaluate(m, ds.Test), TrainAccuracy: -1}, false, nil
	}
	res := SGD(m, ds, cfg)
	if err := m.Save(path); err != nil {
		return res, true, err
	}
	return res, true, nil
}
