package train

import (
	"path/filepath"
	"strings"
	"testing"

	"advhunter/internal/data"
	"advhunter/internal/models"
	"advhunter/internal/tensor"
)

// tinyRun trains a small model briefly and returns the result.
func tinyRun(t *testing.T, epochs int, seed uint64) (*models.Model, *data.Dataset, Result) {
	t.Helper()
	ds := data.MustSynth("fashionmnist", 5, 12, 4)
	m := models.MustBuild("efficientnet", ds.C, ds.H, ds.W, ds.Classes, seed)
	cfg := DefaultConfig()
	cfg.Epochs = epochs
	cfg.Seed = seed
	return m, ds, SGD(m, ds, cfg)
}

func TestSGDReducesLossAndLearns(t *testing.T) {
	_, _, res := tinyRun(t, 4, 1)
	if res.FinalLoss > 1.5 {
		t.Fatalf("loss after 4 epochs: %v", res.FinalLoss)
	}
	if res.TestAccuracy < 0.5 {
		t.Fatalf("test accuracy after 4 epochs: %v", res.TestAccuracy)
	}
}

func TestSGDDeterministic(t *testing.T) {
	m1, _, _ := tinyRun(t, 1, 7)
	m2, _, _ := tinyRun(t, 1, 7)
	p1, p2 := m1.Net.Params(), m2.Net.Params()
	for i := range p1 {
		if !tensor.Equal(p1[i].Value, p2[i].Value, 0) {
			t.Fatalf("parameter %s differs between identical runs", p1[i].Name)
		}
	}
}

func TestEarlyStop(t *testing.T) {
	ds := data.MustSynth("fashionmnist", 6, 15, 5)
	m := models.MustBuild("efficientnet", ds.C, ds.H, ds.W, ds.Classes, 2)
	cfg := DefaultConfig()
	cfg.Epochs = 50
	cfg.TargetAccuracy = 0.5 // trivially reachable
	res := SGD(m, ds, cfg)
	if res.Epochs == 50 {
		t.Fatal("early stop never triggered")
	}
}

func TestEvaluateBounds(t *testing.T) {
	ds := data.MustSynth("cifar10", 7, 2, 1)
	m := models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 3)
	acc := Evaluate(m, ds.Test)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
	if Evaluate(m, nil) != 0 {
		t.Fatal("empty evaluation")
	}
}

func TestLogOutput(t *testing.T) {
	ds := data.MustSynth("fashionmnist", 8, 4, 2)
	m := models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 4)
	var sb strings.Builder
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.Log = &sb
	SGD(m, ds, cfg)
	if !strings.Contains(sb.String(), "epoch") {
		t.Fatalf("log output missing: %q", sb.String())
	}
}

func TestCachedTrainsOnceThenLoads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	ds := data.MustSynth("fashionmnist", 9, 8, 4)
	cfg := DefaultConfig()
	cfg.Epochs = 2

	m1 := models.MustBuild("efficientnet", ds.C, ds.H, ds.W, ds.Classes, 5)
	_, trained, err := Cached(m1, ds, cfg, path)
	if err != nil || !trained {
		t.Fatalf("first call: trained=%v err=%v", trained, err)
	}
	m2 := models.MustBuild("efficientnet", ds.C, ds.H, ds.W, ds.Classes, 99)
	_, trained, err = Cached(m2, ds, cfg, path)
	if err != nil || trained {
		t.Fatalf("second call: trained=%v err=%v", trained, err)
	}
	x, _ := data.Stack(ds.Test[:2])
	if !tensor.Equal(m1.Logits(x.Clone()), m2.Logits(x.Clone()), 1e-12) {
		t.Fatal("cached model differs from trained model")
	}
}

func TestCachedRejectsIncompatibleCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	ds := data.MustSynth("fashionmnist", 10, 6, 2)
	cfg := DefaultConfig()
	cfg.Epochs = 1
	m := models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 5)
	if _, _, err := Cached(m, ds, cfg, path); err != nil {
		t.Fatal(err)
	}
	other := models.MustBuild("efficientnet", ds.C, ds.H, ds.W, ds.Classes, 5)
	if _, _, err := Cached(other, ds, cfg, path); err == nil {
		t.Fatal("expected error loading a checkpoint of another architecture")
	}
}

func TestSGDPanicsOnBadConfig(t *testing.T) {
	ds := data.MustSynth("fashionmnist", 11, 2, 1)
	m := models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SGD(m, ds, Config{Epochs: 0, BatchSize: 8})
}
