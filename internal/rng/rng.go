// Package rng provides a small, fully deterministic pseudo-random number
// generator used by every stochastic component in the repository (data
// synthesis, weight initialisation, attack random starts, measurement noise,
// GMM restarts, experiment resampling).
//
// The generator is xoshiro256**, seeded through SplitMix64 so that any uint64
// seed — including 0 — yields a well-mixed state. Unlike math/rand, the
// sequence produced here is under our control and therefore stable across Go
// releases, which keeps every experiment in EXPERIMENTS.md bit-reproducible.
package rng

import "math"

// Rand is a deterministic source of pseudo-random values. It is NOT safe for
// concurrent use; derive independent streams with Split instead of sharing.
type Rand struct {
	s [4]uint64
	// cached second normal variate from the Box-Muller transform
	hasGauss bool
	gauss    float64
}

// splitmix64 advances *x and returns the next SplitMix64 output. It is used
// only for seeding and stream splitting.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds give
// independent-looking streams; equal seeds give identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// Reseed reinitialises r in place from the given seed, exactly as if it had
// been freshly created with New(seed). It lets long-lived components reuse a
// single generator value across deterministic restarts without allocating.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	r.hasGauss = false
	r.gauss = 0
}

// Split derives a new independent generator from r, keyed by label. Splitting
// with distinct labels yields decorrelated streams, so components can be
// seeded hierarchically (e.g. per-image noise streams) without coordination.
// Split advances r; use Fork when the receiver must stay untouched.
func (r *Rand) Split(label uint64) *Rand {
	seed := r.Uint64() ^ (label * 0x9e3779b97f4a7c15)
	return New(seed)
}

// Fork derives a new independent generator keyed by label WITHOUT advancing
// the receiver: the result is a pure function of (r's current state, label).
// Distinct labels give decorrelated streams, so concurrent workers can each
// fork the same base generator by item index and produce output that does not
// depend on scheduling order.
func (r *Rand) Fork(label uint64) *Rand {
	tmp := *r // copy the state so the receiver is left untouched
	tmp.hasGauss = false
	return tmp.Split(label)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free bound is overkill here; modulo bias is
	// negligible for the n used in this repo (n << 2^32), but we still use
	// the high bits for quality.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *Rand) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place using the provided swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// FillNormal fills dst with independent Normal(mean, std) variates.
func (r *Rand) FillNormal(dst []float64, mean, std float64) {
	for i := range dst {
		dst[i] = r.Normal(mean, std)
	}
}

// FillUniform fills dst with independent uniform variates in [lo, hi).
func (r *Rand) FillUniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = lo + (hi-lo)*r.Float64()
	}
}

// Choice returns a random index in [0, len(weights)) drawn proportionally to
// the non-negative weights. If all weights are zero it returns a uniform
// index.
func (r *Rand) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}
