package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams from distinct seeds collided %d/100 times", same)
	}
}

func TestZeroSeedWellMixed(t *testing.T) {
	r := New(0)
	// A naive xoshiro seeded with all-zero state would emit zeros forever.
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 0 {
		t.Fatalf("zero seed produced %d zero outputs", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Fatalf("Normal(5,2) mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%50) + 1
		p := New(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(3)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(100)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(5)
	w := []float64{0, 3, 1}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Choice(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight bin chosen %d times", counts[0])
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoiceAllZeroUniform(t *testing.T) {
	r := New(6)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[r.Choice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 1600 || c > 2400 {
			t.Fatalf("bin %d count %d not ~uniform", i, c)
		}
	}
}

func TestFillHelpers(t *testing.T) {
	r := New(8)
	buf := make([]float64, 1000)
	r.FillUniform(buf, -2, 2)
	for _, v := range buf {
		if v < -2 || v >= 2 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
	r.FillNormal(buf, 0, 1)
	nonzero := 0
	for _, v := range buf {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 990 {
		t.Fatalf("FillNormal left too many zeros: %d", 1000-nonzero)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
