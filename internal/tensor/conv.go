package tensor

import "fmt"

// ConvGeom describes the spatial geometry of a 2-D convolution or pooling
// window applied to a single-image CHW tensor.
type ConvGeom struct {
	InC, InH, InW int
	Kernel        int // square kernel side
	Stride        int
	Pad           int
}

// OutH returns the output height of the window sweep.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.Kernel)/g.Stride + 1 }

// OutW returns the output width of the window sweep.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.Kernel)/g.Stride + 1 }

// Validate panics if the geometry is degenerate.
func (g ConvGeom) Validate() {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.Kernel <= 0 || g.Stride <= 0 || g.Pad < 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry %+v", g))
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v yields empty output", g))
	}
}

// Im2Col unrolls the x tensor (shape [C,H,W]) into a matrix of shape
// [C*Kernel*Kernel, OutH*OutW] so that convolution becomes a single matmul
// with the weight matrix [outC, C*Kernel*Kernel]. Out-of-bounds (padding)
// positions contribute zeros.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	g.Validate()
	if x.Rank() != 3 || x.Dim(0) != g.InC || x.Dim(1) != g.InH || x.Dim(2) != g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match geometry %+v", x.Shape(), g))
	}
	oh, ow := g.OutH(), g.OutW()
	k := g.Kernel
	cols := New(g.InC*k*k, oh*ow)
	xd := x.data
	cd := cols.data
	colW := oh * ow
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := ((c*k + ky) * k) + kx
				dst := cd[row*colW : (row+1)*colW]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue // leave zeros
					}
					srcRow := chanOff + iy*g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dst[oy*ow+ox] = xd[srcRow+ix]
					}
				}
			}
		}
	}
	return cols
}

// Col2Im scatters a column matrix (as produced by Im2Col, shape
// [C*Kernel*Kernel, OutH*OutW]) back to an image of shape [C,H,W],
// accumulating overlapping contributions. It is the adjoint of Im2Col and is
// used for convolution input gradients.
func Col2Im(cols *Tensor, g ConvGeom) *Tensor {
	g.Validate()
	oh, ow := g.OutH(), g.OutW()
	k := g.Kernel
	if cols.Rank() != 2 || cols.Dim(0) != g.InC*k*k || cols.Dim(1) != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match geometry %+v", cols.Shape(), g))
	}
	img := New(g.InC, g.InH, g.InW)
	xd := img.data
	cd := cols.data
	colW := oh * ow
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := ((c*k + ky) * k) + kx
				src := cd[row*colW : (row+1)*colW]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					dstRow := chanOff + iy*g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						xd[dstRow+ix] += src[oy*ow+ox]
					}
				}
			}
		}
	}
	return img
}
