package tensor

import (
	"fmt"

	"advhunter/internal/parallel"
)

// Cache-blocked GEMM. The kernel tiles the output columns (matmulJC) and the
// k dimension (matmulKC) so one B panel is reused across every A row while it
// is hot, optionally staging that panel contiguously in a caller-owned pack
// buffer. The numerical contract is strict bit-identity with the naive ikj
// loop in MatMul/MatMulInto: for every output element dst[i,j] the
// k-contributions are applied in ascending k order with a single running
// accumulator, and the av == 0 skip fires on exactly the same terms. Tiling
// over i and j only changes *which element* is updated next, never the
// per-element operation sequence, so the results are identical floats — this
// is pinned by TestMatMulBlockedBitIdentical across shapes.
const (
	// matmulJC is the output-column tile: one dst row segment is
	// matmulJC*8 = 2KiB, small enough to stay in L1 across a k panel.
	matmulJC = 256
	// matmulKC is the k panel depth: a full panel is matmulKC*matmulJC
	// floats (512KiB), sized for the L2 of the shared-tenant hosts the
	// benches run on.
	matmulKC = 256
)

// MatMulPackLen returns the element count a pack buffer must have for
// MatMulPackedInto to stage B panels; shorter buffers make it fall back to
// reading B in place (still blocked, still bit-identical).
func MatMulPackLen() int { return matmulKC * matmulJC }

// matmulBlocked runs the blocked kernel over raw row-major storage:
// dd (m×n, already zeroed) += ad (m×k) · bd (k×n). pack may be nil.
func matmulBlocked(dd, ad, bd []float64, m, k, n int, pack []float64) {
	for jc := 0; jc < n; jc += matmulJC {
		jw := n - jc
		if jw > matmulJC {
			jw = matmulJC
		}
		for kc := 0; kc < k; kc += matmulKC {
			kw := k - kc
			if kw > matmulKC {
				kw = matmulKC
			}
			// Stage the B panel contiguously when a buffer is provided:
			// the copy changes memory layout only, never values, so the
			// accumulation below is unaffected.
			panel := pack
			packed := len(pack) >= kw*jw
			if packed {
				for p := 0; p < kw; p++ {
					off := (kc+p)*n + jc
					copy(panel[p*jw:(p+1)*jw], bd[off:off+jw])
				}
			}
			// brow fetches the p-th B row segment of this tile, from the
			// packed panel or from B in place.
			brow := func(p int) []float64 {
				if packed {
					return panel[p*jw : (p+1)*jw]
				}
				off := (kc+p)*n + jc
				return bd[off : off+jw]
			}
			for i := 0; i < m; i++ {
				arow := ad[i*k+kc : i*k+kc+kw]
				orow := dd[i*n+jc : i*n+jc+jw]
				// Fuse four k steps per pass over orow: per element the four
				// contributions are applied as sequential adds in ascending
				// p order, exactly matching four naive passes, while the
				// loads/stores of orow drop 4×. Groups containing a zero
				// term fall back to singles so the skip semantics (and with
				// them 0·Inf handling) stay identical.
				p := 0
				for ; p+3 < kw; p += 4 {
					a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
					if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
						axpy4(orow, brow(p), brow(p+1), brow(p+2), brow(p+3), a0, a1, a2, a3)
						continue
					}
					for q := p; q < p+4; q++ {
						if av := arow[q]; av != 0 {
							axpy1(orow, brow(q), av)
						}
					}
				}
				for ; p+1 < kw; p += 2 {
					a0, a1 := arow[p], arow[p+1]
					if a0 != 0 && a1 != 0 {
						axpy2(orow, brow(p), brow(p+1), a0, a1)
						continue
					}
					if a0 != 0 {
						axpy1(orow, brow(p), a0)
					}
					if a1 != 0 {
						axpy1(orow, brow(p+1), a1)
					}
				}
				if p < kw {
					if av := arow[p]; av != 0 {
						axpy1(orow, brow(p), av)
					}
				}
			}
		}
	}
}

// axpy1 computes o[j] += av*b[j] over the row segment, unrolled 4×. The
// unroll reorders across j (independent elements), never within one element.
func axpy1(o, b []float64, av float64) {
	n := len(o)
	b = b[:n]
	j := 0
	for ; j+3 < n; j += 4 {
		o[j] += av * b[j]
		o[j+1] += av * b[j+1]
		o[j+2] += av * b[j+2]
		o[j+3] += av * b[j+3]
	}
	for ; j < n; j++ {
		o[j] += av * b[j]
	}
}

// axpy4 fuses four consecutive k steps over one row segment. Per element j
// the order is (((o+a0*b0)+a1*b1)+a2*b2)+a3*b3 — the same four dependent
// adds the naive kernel performs on its p..p+3 passes — while cutting the
// loads and stores of o by 4×.
func axpy4(o, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	n := len(o)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	j := 0
	for ; j+3 < n; j += 4 {
		v0 := o[j] + a0*b0[j]
		v0 += a1 * b1[j]
		v0 += a2 * b2[j]
		o[j] = v0 + a3*b3[j]
		v1 := o[j+1] + a0*b0[j+1]
		v1 += a1 * b1[j+1]
		v1 += a2 * b2[j+1]
		o[j+1] = v1 + a3*b3[j+1]
		v2 := o[j+2] + a0*b0[j+2]
		v2 += a1 * b1[j+2]
		v2 += a2 * b2[j+2]
		o[j+2] = v2 + a3*b3[j+2]
		v3 := o[j+3] + a0*b0[j+3]
		v3 += a1 * b1[j+3]
		v3 += a2 * b2[j+3]
		o[j+3] = v3 + a3*b3[j+3]
	}
	for ; j < n; j++ {
		v := o[j] + a0*b0[j]
		v += a1 * b1[j]
		v += a2 * b2[j]
		o[j] = v + a3*b3[j]
	}
}

// axpy2 fuses two consecutive k steps over one row segment. Per element j
// the order is exactly (o+a0*b0)+a1*b1 — the same two dependent adds the
// naive kernel performs on its p-th and (p+1)-th pass — while halving the
// loads and stores of o.
func axpy2(o, b0, b1 []float64, a0, a1 float64) {
	n := len(o)
	b0 = b0[:n]
	b1 = b1[:n]
	j := 0
	for ; j+3 < n; j += 4 {
		v0 := o[j] + a0*b0[j]
		o[j] = v0 + a1*b1[j]
		v1 := o[j+1] + a0*b0[j+1]
		o[j+1] = v1 + a1*b1[j+1]
		v2 := o[j+2] + a0*b0[j+2]
		o[j+2] = v2 + a1*b1[j+2]
		v3 := o[j+3] + a0*b0[j+3]
		o[j+3] = v3 + a1*b1[j+3]
	}
	for ; j < n; j++ {
		v := o[j] + a0*b0[j]
		o[j] = v + a1*b1[j]
	}
}

// checkMatMulShapes validates one dst = a·b call and returns (m, k, n).
func checkMatMulShapes(dst, a, b *Tensor, fn string) (int, int, int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s needs rank-2 operands, got %v × %v", fn, a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dims %d vs %d", fn, k, k2))
	}
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s dst %v, want [%d %d]", fn, dst.shape, m, n))
	}
	return m, k, n
}

// MatMulPackedInto is MatMulInto with panel packing: B tiles are staged
// contiguously in pack (caller-owned, ideally MatMulPackLen() elements, e.g.
// a scratch-arena slot) so the inner loops stream a dense panel instead of
// strided rows of B. Results are bit-identical to MatMulInto; an undersized
// pack buffer only disables the staging.
func MatMulPackedInto(dst, a, b *Tensor, pack []float64) *Tensor {
	m, k, n := checkMatMulShapes(dst, a, b, "MatMulPackedInto")
	for i := range dst.data {
		dst.data[i] = 0
	}
	matmulBlocked(dst.data, a.data, b.data, m, k, n, pack)
	return dst
}

// MatMulParallelInto is MatMulInto with the row blocks fanned out over the
// parallel worker pool. Workers own disjoint dst row ranges and each range
// is computed by the same blocked kernel, so the output is bit-identical to
// the serial call for every worker count (parallel's determinism contract).
// workers <= 1 degenerates to the serial kernel on the calling goroutine.
func MatMulParallelInto(dst, a, b *Tensor, workers int) *Tensor {
	m, k, n := checkMatMulShapes(dst, a, b, "MatMulParallelInto")
	for i := range dst.data {
		dst.data[i] = 0
	}
	workers = parallel.Workers(workers, m)
	if workers == 1 {
		matmulBlocked(dst.data, a.data, b.data, m, k, n, nil)
		return dst
	}
	// Contiguous row chunks, remainder spread over the leading chunks.
	chunk, rem := m/workers, m%workers
	parallel.ForEach(workers, workers, func(w int) {
		lo := w*chunk + min(w, rem)
		hi := lo + chunk
		if w < rem {
			hi++
		}
		if lo >= hi {
			return
		}
		matmulBlocked(dst.data[lo*n:hi*n], a.data[lo*k:hi*k], b.data, hi-lo, k, n, nil)
	})
	return dst
}

// Im2ColBatchInto unrolls a batch x (shape [N,C,H,W]) into dst of shape
// [C*Kernel*Kernel, N*OutH*OutW]: sample s owns the contiguous column range
// [s*OutH*OutW, (s+1)*OutH*OutW), and within it each column is exactly the
// column Im2ColInto produces for that sample alone. One weight GEMM against
// dst therefore convolves the whole batch, and because the weights operand
// (and with it the zero-skip pattern and k order) is unchanged, every output
// element is bit-identical to the per-sample GEMM.
func Im2ColBatchInto(dst, x *Tensor, g ConvGeom) *Tensor {
	g.Validate()
	if x.Rank() != 4 || x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		panic(fmt.Sprintf("tensor: Im2ColBatchInto input %v does not match geometry %+v", x.Shape(), g))
	}
	batch := x.Dim(0)
	oh, ow := g.OutH(), g.OutW()
	k := g.Kernel
	plane := oh * ow
	if dst.Rank() != 2 || dst.Dim(0) != g.InC*k*k || dst.Dim(1) != batch*plane {
		panic(fmt.Sprintf("tensor: Im2ColBatchInto dst %v, want [%d %d]", dst.Shape(), g.InC*k*k, batch*plane))
	}
	cd := dst.data
	for i := range cd {
		cd[i] = 0
	}
	colW := batch * plane
	sample := g.InC * g.InH * g.InW
	for s := 0; s < batch; s++ {
		xd := x.data[s*sample : (s+1)*sample]
		colOff := s * plane
		for c := 0; c < g.InC; c++ {
			chanOff := c * g.InH * g.InW
			for ky := 0; ky < k; ky++ {
				for kx := 0; kx < k; kx++ {
					row := ((c*k + ky) * k) + kx
					d := cd[row*colW+colOff : row*colW+colOff+plane]
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.Stride + ky - g.Pad
						if iy < 0 || iy >= g.InH {
							continue // leave zeros
						}
						srcRow := chanOff + iy*g.InW
						for ox := 0; ox < ow; ox++ {
							ix := ox*g.Stride + kx - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							d[oy*ow+ox] = xd[srcRow+ix]
						}
					}
				}
			}
		}
	}
	return dst
}
