package tensor

import (
	"math"
	"testing"

	"advhunter/internal/rng"
)

// naiveMatMulInto is the historical ikj kernel, kept verbatim as the
// reference the blocked kernel must reproduce bit-for-bit.
func naiveMatMulInto(dst, a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := dst.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return dst
}

func sameBits(t *testing.T, label string, want, got *Tensor) {
	t.Helper()
	if !want.SameShape(got) {
		t.Fatalf("%s: shape %v vs %v", label, want.Shape(), got.Shape())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
			t.Fatalf("%s: element %d differs: %x vs %x (%g vs %g)",
				label, i, math.Float64bits(wd[i]), math.Float64bits(gd[i]), wd[i], gd[i])
		}
	}
}

// fillMixed fills d with normal deviates, then zeroes a fraction so the
// zero-skip path (and its interaction with pairing) is exercised.
func fillMixed(r *rng.Rand, d []float64, zeroFrac float64) {
	r.FillNormal(d, 0, 1)
	for i := range d {
		if r.Float64() < zeroFrac {
			d[i] = 0
		}
	}
}

// The blocked kernel (plain, packed, undersized-pack, parallel at several
// worker counts, and the allocating MatMul front end) must be bit-identical
// to the naive ikj loop across shapes that straddle every tile boundary.
func TestMatMulBlockedBitIdentical(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1},
		{3, 5, 7},
		{17, 33, 9},
		{64, 64, 64},
		{65, 257, 130},
		{2, 300, 513},
		{128, 259, 320},
		{5, 1, 600},
	}
	r := rng.New(7)
	pack := make([]float64, MatMulPackLen())
	small := make([]float64, 16) // undersized: staging must disable itself
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := New(m, k), New(k, n)
		fillMixed(r, a.Data(), 0.3)
		fillMixed(r, b.Data(), 0.1)
		want := naiveMatMulInto(New(m, n), a, b)

		sameBits(t, "MatMulInto", want, MatMulInto(New(m, n), a, b))
		sameBits(t, "MatMul", want, MatMul(a, b))
		sameBits(t, "MatMulPackedInto", want, MatMulPackedInto(New(m, n), a, b, pack))
		sameBits(t, "MatMulPackedInto/undersized", want, MatMulPackedInto(New(m, n), a, b, small))
		sameBits(t, "MatMulPackedInto/nil", want, MatMulPackedInto(New(m, n), a, b, nil))
		for _, w := range []int{1, 2, 3, 8} {
			sameBits(t, "MatMulParallelInto", want, MatMulParallelInto(New(m, n), a, b, w))
		}
	}
}

// An all-zero A row must leave dst zero even against non-finite B entries:
// the skip is semantic (0·Inf = NaN would otherwise leak in), so the blocked
// kernel has to preserve it exactly.
func TestMatMulBlockedZeroSkipSemantics(t *testing.T) {
	a := New(2, 3)
	b := New(3, 4)
	b.Data()[0] = math.Inf(1)
	b.Data()[5] = math.NaN()
	a.Data()[3] = 1 // second row: [1 0 0]
	want := naiveMatMulInto(New(2, 4), a, b)
	sameBits(t, "zero-skip", want, MatMulInto(New(2, 4), a, b))
	sameBits(t, "zero-skip/packed", want, MatMulPackedInto(New(2, 4), a, b, make([]float64, MatMulPackLen())))
}

// Im2ColBatchInto must lay sample s's columns at column offset s*OutH*OutW,
// each bit-identical to the per-sample Im2ColInto, so the batched weight GEMM
// equals the per-sample GEMMs column range by column range.
func TestIm2ColBatchMatchesPerSample(t *testing.T) {
	r := rng.New(11)
	for _, batch := range []int{1, 3, 8} {
		g := ConvGeom{InC: 3, InH: 9, InW: 7, Kernel: 3, Stride: 2, Pad: 1}
		sample := g.InC * g.InH * g.InW
		x := New(batch, g.InC, g.InH, g.InW)
		fillMixed(r, x.Data(), 0.2)
		oh, ow := g.OutH(), g.OutW()
		plane := oh * ow
		ckk := g.InC * g.Kernel * g.Kernel
		cols := Im2ColBatchInto(New(ckk, batch*plane), x, g)

		wm := New(5, ckk)
		fillMixed(r, wm.Data(), 0.3)
		y := MatMulInto(New(5, batch*plane), wm, cols)

		for s := 0; s < batch; s++ {
			xi := FromSlice(x.Data()[s*sample:(s+1)*sample], g.InC, g.InH, g.InW)
			ci := Im2ColInto(New(ckk, plane), xi, g)
			for row := 0; row < ckk; row++ {
				for j := 0; j < plane; j++ {
					got := cols.At(row, s*plane+j)
					want := ci.At(row, j)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("batch %d sample %d col (%d,%d): %g vs %g", batch, s, row, j, got, want)
					}
				}
			}
			yi := MatMulInto(New(5, plane), wm, ci)
			for oc := 0; oc < 5; oc++ {
				for j := 0; j < plane; j++ {
					got := y.At(oc, s*plane+j)
					want := yi.At(oc, j)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("batch %d sample %d gemm (%d,%d): %g vs %g", batch, s, oc, j, got, want)
					}
				}
			}
		}
	}
}

func benchMatMulInto(b *testing.B, size int) {
	r := rng.New(1)
	x, y := New(size, size), New(size, size)
	r.FillNormal(x.Data(), 0, 1)
	r.FillNormal(y.Data(), 0, 1)
	dst := New(size, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMulBlocked64(b *testing.B)  { benchMatMulInto(b, 64) }
func BenchmarkMatMulBlocked128(b *testing.B) { benchMatMulInto(b, 128) }
func BenchmarkMatMulBlocked256(b *testing.B) { benchMatMulInto(b, 256) }

func BenchmarkMatMulPacked256(b *testing.B) {
	r := rng.New(1)
	x, y := New(256, 256), New(256, 256)
	r.FillNormal(x.Data(), 0, 1)
	r.FillNormal(y.Data(), 0, 1)
	dst := New(256, 256)
	pack := make([]float64, MatMulPackLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulPackedInto(dst, x, y, pack)
	}
}

func BenchmarkIm2ColBatch8(b *testing.B) {
	g := ConvGeom{InC: 8, InH: 16, InW: 16, Kernel: 3, Stride: 1, Pad: 1}
	x := New(8, 8, 16, 16)
	rng.New(1).FillNormal(x.Data(), 0, 1)
	dst := New(8*9, 8*16*16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColBatchInto(dst, x, g)
	}
}
