// Package tensor implements the dense float64 n-dimensional arrays that every
// numerical component of the repository (layers, attacks, GMMs, the
// instrumented engine) is built on. It deliberately stays small: row-major
// storage, explicit shapes, and the handful of kernels a CNN stack needs
// (matmul, im2col, elementwise arithmetic, norms, reductions). All operations
// validate shapes and panic on misuse — shape bugs are programming errors,
// not runtime conditions.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major array of float64 with an explicit shape.
// The zero value is not useful; construct with New or FromSlice.
type Tensor struct {
	shape []int
	data  []float64
}

// shapeStr formats a shape for panic messages without leaking the slice:
// the copy (not the argument) escapes into the formatter, so hot callers can
// keep their variadic shape arguments on the stack.
func shapeStr(shape []int) string {
	cp := make([]int, len(shape))
	copy(cp, shape)
	return fmt.Sprint(cp)
}

// New allocates a zero-filled tensor of the given shape. Every dimension
// must be positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in shape " + shapeStr(shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data (without copying) in a tensor of the given shape.
// len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in shape " + shapeStr(shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %s (%d elements)", len(data), shapeStr(shape), n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data exposes the underlying storage in row-major order. Mutations are
// visible through the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// offset computes the flat index for the given multi-index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.data))
	copy(d, t.data)
	return FromSlice(d, t.shape...)
}

// Reshape returns a view (sharing storage) with a new shape of equal element
// count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %s", t.shape, shapeStr(shape)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s on mismatched shapes %v vs %v", op, t.shape, o.shape))
	}
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Zero sets every element to 0 and returns t.
func (t *Tensor) Zero() *Tensor { return t.Fill(0) }

// AddInPlace adds o element-wise into t and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "AddInPlace")
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return t
}

// SubInPlace subtracts o element-wise from t and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "SubInPlace")
	for i := range t.data {
		t.data[i] -= o.data[i]
	}
	return t
}

// MulInPlace multiplies t element-wise by o (Hadamard) and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "MulInPlace")
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
	return t
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScalarInPlace adds s to every element and returns t.
func (t *Tensor) AddScalarInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] += s
	}
	return t
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the Hadamard product t ⊙ o as a new tensor.
func Mul(t, o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// Scale returns s·t as a new tensor.
func Scale(t *Tensor, s float64) *Tensor { return t.Clone().ScaleInPlace(s) }

// AXPYInPlace computes t += alpha * o and returns t.
func (t *Tensor) AXPYInPlace(alpha float64, o *Tensor) *Tensor {
	t.mustSameShape(o, "AXPYInPlace")
	for i := range t.data {
		t.data[i] += alpha * o.data[i]
	}
	return t
}

// ClampInPlace clips every element to [lo, hi] and returns t.
func (t *Tensor) ClampInPlace(lo, hi float64) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

// Apply maps f over every element in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Max returns the maximum element value.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element value.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element (first on ties).
func (t *Tensor) Argmax() int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range t.data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// LinfNorm returns the maximum absolute element value.
func (t *Tensor) LinfNorm() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// CountIf returns the number of elements for which pred is true.
func (t *Tensor) CountIf(pred func(float64) bool) int {
	n := 0
	for _, v := range t.data {
		if pred(v) {
			n++
		}
	}
	return n
}

// Dot returns the inner product of t and o viewed as flat vectors.
func Dot(t, o *Tensor) float64 {
	t.mustSameShape(o, "Dot")
	s := 0.0
	for i := range t.data {
		s += t.data[i] * o.data[i]
	}
	return s
}

// MatMul multiplies a (m×k) by b (k×n) into a new (m×n) tensor.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	matmulBlocked(out.data, a.data, b.data, m, k, n, nil)
	return out
}

// Transpose2D returns the transpose of a rank-2 tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D needs rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// Equal reports whether t and o have the same shape and all elements within
// eps of each other.
func Equal(t, o *Tensor, eps float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if math.Abs(t.data[i]-o.data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values),
// suitable for debugging.
func (t *Tensor) String() string {
	n := len(t.data)
	if n > 6 {
		n = 6
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:n])
}
