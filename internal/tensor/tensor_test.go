package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"advhunter/internal/rng"
)

func TestNewShapeAndZero(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad tensor metadata: len=%d rank=%d", x.Len(), x.Rank())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0)
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if x.At(2, 1) != 7.5 {
		t.Fatal("At/Set mismatch")
	}
	if x.Data()[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 1)
	if x.At(0, 1) != 42 {
		t.Fatal("Reshape copied storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 4)
	b := FromSlice([]float64{10, 20, 30, 40}, 4)
	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub: %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul: %v", got)
	}
	if got := Scale(a, 0.5).Data(); got[1] != 1 {
		t.Fatalf("Scale: %v", got)
	}
	c := a.Clone().AXPYInPlace(2, b)
	if c.Data()[0] != 21 {
		t.Fatalf("AXPY: %v", c.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2, 2), New(4))
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float64{-1, 0.5, 2}, 3).ClampInPlace(0, 1)
	want := []float64{0, 0.5, 1}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("Clamp: %v", x.Data())
		}
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -5, 2, 0}, 4)
	if x.Sum() != 0 || x.Mean() != 0 {
		t.Fatal("Sum/Mean")
	}
	if x.Max() != 3 || x.Min() != -5 {
		t.Fatal("Max/Min")
	}
	if x.Argmax() != 0 {
		t.Fatal("Argmax")
	}
	if x.LinfNorm() != 5 {
		t.Fatal("LinfNorm")
	}
	if math.Abs(x.L2Norm()-math.Sqrt(38)) > 1e-12 {
		t.Fatal("L2Norm")
	}
	if x.CountIf(func(v float64) bool { return v > 0 }) != 2 {
		t.Fatal("CountIf")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := New(5, 5)
	r.FillNormal(a.Data(), 0, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	if !Equal(MatMul(a, id), a, 1e-12) || !Equal(MatMul(id, a), a, 1e-12) {
		t.Fatal("identity matmul failed")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := r.Intn(6)+1, r.Intn(6)+1, r.Intn(6)+1
		a, b := New(m, k), New(k, n)
		r.FillNormal(a.Data(), 0, 1)
		r.FillNormal(b.Data(), 0, 1)
		lhs := Transpose2D(MatMul(a, b))
		rhs := MatMul(Transpose2D(b), Transpose2D(a))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A·(B+C) = A·B + A·C.
func TestMatMulDistributes(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := r.Intn(5)+1, r.Intn(5)+1, r.Intn(5)+1
		a, b, c := New(m, k), New(k, n), New(k, n)
		r.FillNormal(a.Data(), 0, 1)
		r.FillNormal(b.Data(), 0, 1)
		r.FillNormal(c.Data(), 0, 1)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatal("Dot")
	}
}

func TestConvGeom(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, Kernel: 3, Stride: 2, Pad: 1}
	if g.OutH() != 16 || g.OutW() != 16 {
		t.Fatalf("geometry: %d×%d", g.OutH(), g.OutW())
	}
}

// naiveConv computes convolution directly from the definition.
func naiveConv(x *Tensor, w *Tensor, g ConvGeom, outC int) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	out := New(outC, oh, ow)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := 0.0
				for c := 0; c < g.InC; c++ {
					for ky := 0; ky < g.Kernel; ky++ {
						for kx := 0; kx < g.Kernel; kx++ {
							iy := oy*g.Stride + ky - g.Pad
							ix := ox*g.Stride + kx - g.Pad
							if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
								continue
							}
							sum += x.At(c, iy, ix) * w.At(oc, c, ky, kx)
						}
					}
				}
				out.Set(sum, oc, oy, ox)
			}
		}
	}
	return out
}

// Property: im2col+matmul convolution equals the naive definition.
func TestIm2ColConvMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := ConvGeom{
			InC:    r.Intn(3) + 1,
			InH:    r.Intn(6) + 4,
			InW:    r.Intn(6) + 4,
			Kernel: 3,
			Stride: r.Intn(2) + 1,
			Pad:    r.Intn(2),
		}
		if g.OutH() <= 0 || g.OutW() <= 0 {
			return true
		}
		outC := r.Intn(3) + 1
		x := New(g.InC, g.InH, g.InW)
		w := New(outC, g.InC, g.Kernel, g.Kernel)
		r.FillNormal(x.Data(), 0, 1)
		r.FillNormal(w.Data(), 0, 1)

		cols := Im2Col(x, g)
		wm := w.Reshape(outC, g.InC*g.Kernel*g.Kernel)
		got := MatMul(wm, cols).Reshape(outC, g.OutH(), g.OutW())
		want := naiveConv(x, w, g, outC)
		return Equal(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Col2Im is the adjoint of Im2Col: <Im2Col(x), y> = <x, Col2Im(y)>.
func TestCol2ImAdjoint(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := ConvGeom{
			InC:    r.Intn(2) + 1,
			InH:    r.Intn(5) + 4,
			InW:    r.Intn(5) + 4,
			Kernel: 3,
			Stride: r.Intn(2) + 1,
			Pad:    r.Intn(2),
		}
		x := New(g.InC, g.InH, g.InW)
		r.FillNormal(x.Data(), 0, 1)
		cols := Im2Col(x, g)
		y := New(cols.Dim(0), cols.Dim(1))
		r.FillNormal(y.Data(), 0, 1)
		lhs := Dot(cols, y)
		rhs := Dot(x, Col2Im(y, g))
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float64{-2, 3}, 2).Apply(math.Abs)
	if x.Data()[0] != 2 || x.Data()[1] != 3 {
		t.Fatal("Apply")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	a, c := New(64, 64), New(64, 64)
	r.FillNormal(a.Data(), 0, 1)
	r.FillNormal(c.Data(), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(a, c)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	g := ConvGeom{InC: 8, InH: 16, InW: 16, Kernel: 3, Stride: 1, Pad: 1}
	x := New(8, 16, 16)
	rng.New(1).FillNormal(x.Data(), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Im2Col(x, g)
	}
}
