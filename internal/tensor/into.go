package tensor

import "fmt"

// Alias repoints t at caller-owned storage with the given shape, without
// allocating a fresh Tensor. len(data) must equal the shape's element count.
// It exists for scratch-arena reuse (nn.Scratch): a view slot can be re-aimed
// at a new window of a backing buffer every inference without producing
// garbage. The previous shape slice is reused when capacity allows.
func (t *Tensor) Alias(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in shape " + shapeStr(shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %s (%d elements)", len(data), shapeStr(shape), n))
	}
	t.shape = append(t.shape[:0], shape...)
	t.data = data
	return t
}

// MatMulInto multiplies a (m×k) by b (k×n) into dst (m×n), which must have
// the exact output shape. dst is fully overwritten. The cache-blocked kernel
// preserves the naive per-element accumulation order (and the zero-term
// skip), so results are bit-identical to the historical ikj loop; see
// blocked.go for the blocking scheme and the identity argument.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := checkMatMulShapes(dst, a, b, "MatMulInto")
	for i := range dst.data {
		dst.data[i] = 0
	}
	matmulBlocked(dst.data, a.data, b.data, m, k, n, nil)
	return dst
}

// Transpose2DInto writes the transpose of a (m×n) into dst (n×m), fully
// overwriting it.
func Transpose2DInto(dst, a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2DInto needs rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	if dst.Rank() != 2 || dst.shape[0] != n || dst.shape[1] != m {
		panic(fmt.Sprintf("tensor: Transpose2DInto dst %v, want [%d %d]", dst.shape, n, m))
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst.data[j*m+i] = a.data[i*n+j]
		}
	}
	return dst
}

// Im2ColInto unrolls x (shape [C,H,W]) into dst, which must have the shape
// Im2Col would return ([C*Kernel*Kernel, OutH*OutW]). dst is fully
// overwritten; padding positions are written as zeros, exactly like the
// allocating variant.
func Im2ColInto(dst, x *Tensor, g ConvGeom) *Tensor {
	g.Validate()
	if x.Rank() != 3 || x.Dim(0) != g.InC || x.Dim(1) != g.InH || x.Dim(2) != g.InW {
		panic(fmt.Sprintf("tensor: Im2ColInto input %v does not match geometry %+v", x.Shape(), g))
	}
	oh, ow := g.OutH(), g.OutW()
	k := g.Kernel
	if dst.Rank() != 2 || dst.Dim(0) != g.InC*k*k || dst.Dim(1) != oh*ow {
		panic(fmt.Sprintf("tensor: Im2ColInto dst %v, want [%d %d]", dst.Shape(), g.InC*k*k, oh*ow))
	}
	cd := dst.data
	for i := range cd {
		cd[i] = 0
	}
	xd := x.data
	colW := oh * ow
	for c := 0; c < g.InC; c++ {
		chanOff := c * g.InH * g.InW
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := ((c*k + ky) * k) + kx
				d := cd[row*colW : (row+1)*colW]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue // leave zeros
					}
					srcRow := chanOff + iy*g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						d[oy*ow+ox] = xd[srcRow+ix]
					}
				}
			}
		}
	}
	return dst
}
