package attack

import (
	"advhunter/internal/data"
	"advhunter/internal/models"
	"advhunter/internal/parallel"
)

// samplable is implemented by attacks with internal randomness. forSample
// returns a replica whose random stream is keyed by the sample index and
// derived from the base stream WITHOUT advancing it (rng.Rand.Fork), so that
// the perturbation of sample i is a pure function of
// (model, input, base stream state, i) — independent of crafting order.
type samplable interface {
	forSample(i uint64) Attack
}

func (a *PGD) forSample(i uint64) Attack {
	if a.Rand == nil {
		return a
	}
	cp := *a
	cp.Rand = a.Rand.Fork(i)
	return &cp
}

func (a *RandomNoise) forSample(i uint64) Attack {
	if a.Rand == nil {
		return a
	}
	cp := *a
	cp.Rand = a.Rand.Fork(i)
	return &cp
}

// attackFor returns the attack instance to use for sample i: a per-sample
// fork for stochastic attacks, the attack itself for deterministic ones.
func attackFor(atk Attack, i uint64) Attack {
	if s, ok := atk.(samplable); ok {
		return s.forSample(i)
	}
	return atk
}

// CraftParallel applies the attack to every sample on a bounded worker pool
// and scores the outcome exactly like Craft. Each worker beyond the first
// perturbs against its own share-weights model replica, and stochastic
// attacks are forked per sample, so the result is bit-identical for any
// worker count — including workers == 1, which therefore differs from the
// sequential-stream Craft for attacks with internal randomness.
//
// The attack must touch the model only through the Perturb arguments;
// attacks holding private model references (e.g. the adaptive attacker) must
// go through the serial Craft instead.
func CraftParallel(m *models.Model, atk Attack, samples []data.Sample, workers int) CraftResult {
	workers = parallel.Workers(workers, len(samples))
	replicas := make([]*models.Model, workers)
	replicas[0] = m
	for w := 1; w < workers; w++ {
		replicas[w] = m.Clone()
	}
	type crafted struct {
		adv  data.Sample
		pred int
	}
	outs := parallel.MapWorkers(workers, samples, func(worker, i int, s data.Sample) crafted {
		rep := replicas[worker]
		adv := attackFor(atk, uint64(i)).Perturb(rep, s.X, s.Label)
		return crafted{adv: data.Sample{X: adv, Label: s.Label}, pred: rep.Predict(adv)}
	})
	res := CraftResult{}
	succ, correct := 0, 0
	for i, o := range outs {
		res.AEs = append(res.AEs, o.adv)
		res.Preds = append(res.Preds, o.pred)
		if atk.Targeted() {
			if o.pred == atk.TargetClass() {
				succ++
			}
		} else if o.pred != samples[i].Label {
			succ++
		}
		if o.pred == samples[i].Label {
			correct++
		}
	}
	if n := float64(len(samples)); n > 0 {
		res.SuccessRate = float64(succ) / n
		res.ModelAccuracy = float64(correct) / n
	}
	return res
}
