package attack

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"advhunter/internal/data"
	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
	"advhunter/internal/train"
)

// fixture trains one small model once and shares it across tests.
type fixture struct {
	ds  *data.Dataset
	m   *models.Model
	acc float64
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		ds := data.MustSynth("fashionmnist", 21, 40, 8)
		m := models.MustBuild("simplecnn", ds.C, ds.H, ds.W, ds.Classes, 9)
		cfg := train.DefaultConfig()
		cfg.Epochs = 15
		cfg.LearningRate = 0.02
		cfg.TargetAccuracy = 0.95
		res := train.SGD(m, ds, cfg)
		fix = fixture{ds: ds, m: m, acc: res.TestAccuracy}
	})
	if fix.acc < 0.85 {
		t.Fatalf("fixture model failed to train (accuracy %.2f)", fix.acc)
	}
	return fix
}

func TestFGSMRespectsLinfBound(t *testing.T) {
	f := getFixture(t)
	err := quick.Check(func(seed uint64, epsRaw uint8) bool {
		eps := 0.01 + float64(epsRaw%50)/100
		s := f.ds.Test[int(seed%uint64(len(f.ds.Test)))]
		adv := NewFGSM(eps).Perturb(f.m, s.X, s.Label)
		diff := tensor.Sub(adv, s.X)
		return diff.LinfNorm() <= eps+1e-12 && adv.Min() >= 0 && adv.Max() <= 1
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFGSMZeroEpsIsIdentity(t *testing.T) {
	f := getFixture(t)
	s := f.ds.Test[0]
	adv := NewFGSM(0).Perturb(f.m, s.X, s.Label)
	if !tensor.Equal(adv, s.X, 0) {
		t.Fatal("eps=0 FGSM changed the image")
	}
}

func TestFGSMDoesNotMutateInput(t *testing.T) {
	f := getFixture(t)
	s := f.ds.Test[1]
	before := s.X.Clone()
	_ = NewFGSM(0.2).Perturb(f.m, s.X, s.Label)
	if !tensor.Equal(before, s.X, 0) {
		t.Fatal("attack mutated the original image")
	}
}

func TestUntargetedFGSMDegradesAccuracy(t *testing.T) {
	f := getFixture(t)
	samples := f.ds.Test[:40]
	clean := train.Evaluate(f.m, samples)
	res := Craft(f.m, NewFGSM(0.15), samples)
	if res.ModelAccuracy >= clean {
		t.Fatalf("FGSM did not reduce accuracy: clean %.2f vs attacked %.2f", clean, res.ModelAccuracy)
	}
	if res.SuccessRate < 0.3 {
		t.Fatalf("FGSM success rate only %.2f", res.SuccessRate)
	}
}

func TestTargetedFGSMHitsTarget(t *testing.T) {
	f := getFixture(t)
	const target = 6 // 'shirt'
	var samples []data.Sample
	for _, s := range f.ds.Test {
		if s.Label != target {
			samples = append(samples, s)
		}
		if len(samples) == 30 {
			break
		}
	}
	res := Craft(f.m, NewTargetedFGSM(0.5, target), samples)
	if res.SuccessRate < 0.4 {
		t.Fatalf("targeted FGSM (eps=0.5) success only %.2f", res.SuccessRate)
	}
	for i, s := range Successful(NewTargetedFGSM(0.5, target), res) {
		if got := f.m.Predict(s.X); got != target {
			t.Fatalf("successful AE %d predicts %d, want %d", i, got, target)
		}
	}
}

func TestPGDStaysInBall(t *testing.T) {
	f := getFixture(t)
	err := quick.Check(func(seed uint64) bool {
		eps := 0.1
		s := f.ds.Test[int(seed%uint64(len(f.ds.Test)))]
		atk := NewPGD(eps, rng.New(seed))
		adv := atk.Perturb(f.m, s.X, s.Label)
		diff := tensor.Sub(adv, s.X)
		return diff.LinfNorm() <= eps+1e-12 && adv.Min() >= 0 && adv.Max() <= 1
	}, &quick.Config{MaxCount: 10})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPGDAtLeastAsStrongAsFGSM(t *testing.T) {
	f := getFixture(t)
	samples := f.ds.Test[:30]
	eps := 0.1
	fgsm := Craft(f.m, NewFGSM(eps), samples)
	pgd := Craft(f.m, NewPGD(eps, rng.New(5)), samples)
	if pgd.SuccessRate+0.15 < fgsm.SuccessRate {
		t.Fatalf("PGD (%.2f) much weaker than FGSM (%.2f)", pgd.SuccessRate, fgsm.SuccessRate)
	}
}

func TestTargetedPGD(t *testing.T) {
	f := getFixture(t)
	const target = 3
	var samples []data.Sample
	for _, s := range f.ds.Test {
		if s.Label != target {
			samples = append(samples, s)
		}
		if len(samples) == 20 {
			break
		}
	}
	res := Craft(f.m, NewTargetedPGD(0.3, target, rng.New(6)), samples)
	if res.SuccessRate < 0.4 {
		t.Fatalf("targeted PGD success only %.2f", res.SuccessRate)
	}
}

func TestDeepFoolFlipsWithSmallPerturbation(t *testing.T) {
	f := getFixture(t)
	samples := f.ds.Test[:15]
	res := Craft(f.m, NewDeepFool(), samples)
	if res.SuccessRate < 0.6 {
		t.Fatalf("DeepFool success only %.2f", res.SuccessRate)
	}
	// DeepFool's perturbations must be small in L2 relative to the images.
	var pertNorm, imgNorm float64
	for i, s := range samples {
		pertNorm += tensor.Sub(res.AEs[i].X, s.X).L2Norm()
		imgNorm += s.X.L2Norm()
	}
	if ratio := pertNorm / imgNorm; ratio > 0.5 {
		t.Fatalf("DeepFool perturbation ratio %.2f too large", ratio)
	}
}

func TestTargetedDeepFool(t *testing.T) {
	f := getFixture(t)
	const target = 8
	var samples []data.Sample
	for _, s := range f.ds.Test {
		if s.Label != target {
			samples = append(samples, s)
		}
		if len(samples) == 10 {
			break
		}
	}
	res := Craft(f.m, NewTargetedDeepFool(target), samples)
	if res.SuccessRate < 0.4 {
		t.Fatalf("targeted DeepFool success only %.2f", res.SuccessRate)
	}
}

func TestCraftAccounting(t *testing.T) {
	f := getFixture(t)
	samples := f.ds.Test[:20]
	atk := NewFGSM(0.1)
	res := Craft(f.m, atk, samples)
	if len(res.AEs) != len(samples) || len(res.Preds) != len(samples) {
		t.Fatal("craft result sizes")
	}
	succ, correct := 0, 0
	for i := range samples {
		if res.Preds[i] != samples[i].Label {
			succ++
		} else {
			correct++
		}
	}
	if math.Abs(res.SuccessRate-float64(succ)/20) > 1e-12 {
		t.Fatal("success rate accounting")
	}
	if math.Abs(res.ModelAccuracy-float64(correct)/20) > 1e-12 {
		t.Fatal("accuracy accounting")
	}
	if len(Successful(atk, res)) != succ {
		t.Fatal("Successful filter accounting")
	}
}

func TestAttackMetadata(t *testing.T) {
	if NewFGSM(0.1).Targeted() || !NewTargetedFGSM(0.1, 2).Targeted() {
		t.Fatal("FGSM targeted flags")
	}
	if NewTargetedPGD(0.1, 3, nil).TargetClass() != 3 {
		t.Fatal("PGD target class")
	}
	if NewDeepFool().Targeted() || NewTargetedDeepFool(1).TargetClass() != 1 {
		t.Fatal("DeepFool metadata")
	}
}
