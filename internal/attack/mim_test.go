package attack

import (
	"testing"
	"testing/quick"

	"advhunter/internal/data"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
	"advhunter/internal/train"
)

func TestMIMRespectsBall(t *testing.T) {
	f := getFixture(t)
	err := quick.Check(func(seed uint64) bool {
		eps := 0.12
		s := f.ds.Test[int(seed%uint64(len(f.ds.Test)))]
		adv := NewMIM(eps).Perturb(f.m, s.X, s.Label)
		diff := tensor.Sub(adv, s.X)
		return diff.LinfNorm() <= eps+1e-12 && adv.Min() >= 0 && adv.Max() <= 1
	}, &quick.Config{MaxCount: 8})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMIMAtLeastAsStrongAsFGSM(t *testing.T) {
	f := getFixture(t)
	samples := f.ds.Test[:30]
	eps := 0.1
	fgsm := Craft(f.m, NewFGSM(eps), samples)
	mim := Craft(f.m, NewMIM(eps), samples)
	if mim.SuccessRate+0.15 < fgsm.SuccessRate {
		t.Fatalf("MIM (%.2f) much weaker than FGSM (%.2f)", mim.SuccessRate, fgsm.SuccessRate)
	}
}

func TestTargetedMIM(t *testing.T) {
	f := getFixture(t)
	const target = 4
	var sources []data.Sample
	for _, s := range f.ds.Test {
		if s.Label != target {
			sources = append(sources, s)
		}
		if len(sources) == 20 {
			break
		}
	}
	res := Craft(f.m, NewTargetedMIM(0.4, target), sources)
	if res.SuccessRate < 0.4 {
		t.Fatalf("targeted MIM success only %.2f", res.SuccessRate)
	}
}

func TestMIMMetadata(t *testing.T) {
	if NewMIM(0.1).Targeted() {
		t.Fatal("untargeted MIM claims a target")
	}
	if NewTargetedMIM(0.1, 3).TargetClass() != 3 {
		t.Fatal("target class lost")
	}
	if NewMIM(0.1).Name() == "" {
		t.Fatal("empty name")
	}
}

func TestRandomNoiseRarelyFools(t *testing.T) {
	f := getFixture(t)
	samples := f.ds.Test[:40]
	clean := train.Evaluate(f.m, samples)
	res := Craft(f.m, NewRandomNoise(0.1, rng.New(9)), samples)
	// Random noise at the same budget must be far weaker than a gradient
	// attack at that budget.
	if clean-res.ModelAccuracy > 0.25 {
		t.Fatalf("random noise dropped accuracy %.2f→%.2f; generator too fragile",
			clean, res.ModelAccuracy)
	}
}

func TestRandomNoiseStaysInRange(t *testing.T) {
	f := getFixture(t)
	s := f.ds.Test[0]
	adv := NewRandomNoise(0.3, rng.New(4)).Perturb(f.m, s.X, s.Label)
	if adv.Min() < 0 || adv.Max() > 1 {
		t.Fatal("noise left pixel range")
	}
	if tensor.Equal(adv, s.X, 0) {
		t.Fatal("noise was a no-op")
	}
}

func TestAdaptivePGDBasics(t *testing.T) {
	f := getFixture(t)
	const target = 6
	var exemplars []*tensor.Tensor
	for _, s := range f.ds.Test {
		if s.Label == target {
			exemplars = append(exemplars, s.X)
		}
		if len(exemplars) == 5 {
			break
		}
	}
	atk, err := NewAdaptivePGD(f.m, 0.4, target, 1.0, exemplars)
	if err != nil {
		t.Fatal(err)
	}
	if !atk.Targeted() || atk.TargetClass() != target {
		t.Fatal("metadata")
	}
	var sources []data.Sample
	for _, s := range f.ds.Test {
		if s.Label != target {
			sources = append(sources, s)
		}
		if len(sources) == 10 {
			break
		}
	}
	res := Craft(f.m, atk, sources)
	if res.SuccessRate < 0.3 {
		t.Fatalf("adaptive attack success only %.2f", res.SuccessRate)
	}
	// The stealth term must actually reduce feature distance relative to a
	// plain targeted attack at equal budget.
	plain := NewTargetedPGD(0.4, target, nil)
	var dAdaptive, dPlain float64
	for _, s := range sources[:5] {
		dAdaptive += atk.FeatureDistance(atk.Perturb(f.m, s.X, s.Label))
		dPlain += atk.FeatureDistance(plain.Perturb(f.m, s.X, s.Label))
	}
	if dAdaptive >= dPlain {
		t.Fatalf("stealth term useless: adaptive distance %.3f vs plain %.3f", dAdaptive, dPlain)
	}
}

func TestAdaptivePGDRespectsBall(t *testing.T) {
	f := getFixture(t)
	var exemplars []*tensor.Tensor
	for _, s := range f.ds.Test {
		if s.Label == 6 {
			exemplars = append(exemplars, s.X)
		}
	}
	atk, err := NewAdaptivePGD(f.m, 0.15, 6, 2, exemplars[:3])
	if err != nil {
		t.Fatal(err)
	}
	s := f.ds.Test[1]
	adv := atk.Perturb(f.m, s.X, s.Label)
	if tensor.Sub(adv, s.X).LinfNorm() > 0.15+1e-12 {
		t.Fatal("adaptive attack left the ball")
	}
}

func TestAdaptivePGDErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := NewAdaptivePGD(f.m, 0.1, 1, 1, nil); err == nil {
		t.Fatal("expected error without exemplars")
	}
}
