package attack

import (
	"fmt"

	"advhunter/internal/models"
	"advhunter/internal/nn"
	"advhunter/internal/tensor"
)

// AdaptivePGD is an attacker that knows AdvHunter is watching. Besides
// steering the classifier toward the target class, each step also pulls the
// network's penultimate feature vector toward the *typical clean feature* of
// that class, trying to reproduce the data-flow pattern the detector's
// template considers benign. Lambda trades attack strength against stealth;
// the adaptive-attacker experiment sweeps it to chart the detector's limits.
//
// This goes beyond the paper, which assumes a detector-oblivious adversary.
type AdaptivePGD struct {
	Eps, Alpha float64
	Steps      int
	Target     int
	// Lambda weights the feature-matching (stealth) term against the
	// cross-entropy (attack) term.
	Lambda float64

	model    *models.Model
	features *nn.Sequential // all layers except the classification head
	head     nn.Layer
	// refFeature is the mean penultimate feature of clean target exemplars.
	refFeature *tensor.Tensor
}

// NewAdaptivePGD builds the attacker. exemplars are clean images of the
// target class whose mean feature defines "typical" data flow.
func NewAdaptivePGD(m *models.Model, eps float64, target int, lambda float64, exemplars []*tensor.Tensor) (*AdaptivePGD, error) {
	n := len(m.Net.Layers)
	if n < 2 {
		return nil, fmt.Errorf("attack: model too shallow for feature matching")
	}
	if len(exemplars) == 0 {
		return nil, fmt.Errorf("attack: adaptive attack needs target-class exemplars")
	}
	a := &AdaptivePGD{
		Eps: eps, Alpha: eps / 8, Steps: 20, Target: target, Lambda: lambda,
		model:    m,
		features: nn.NewSequential("features", m.Net.Layers[:n-1]...),
		head:     m.Net.Layers[n-1],
	}
	// Mean clean feature of the target class.
	var acc *tensor.Tensor
	for _, x := range exemplars {
		f := a.features.Forward(a.batch(x), false)
		if acc == nil {
			acc = f.Clone()
		} else {
			acc.AddInPlace(f)
		}
	}
	acc.ScaleInPlace(1 / float64(len(exemplars)))
	a.refFeature = acc
	return a, nil
}

// batch views an image as a single-sample batch.
func (a *AdaptivePGD) batch(x *tensor.Tensor) *tensor.Tensor {
	meta := a.model.Meta
	return x.Reshape(1, meta.InC, meta.InH, meta.InW)
}

// Name identifies the attack.
func (a *AdaptivePGD) Name() string {
	return fmt.Sprintf("adaptive-pgd(eps=%g,lambda=%g)", a.Eps, a.Lambda)
}

// Targeted reports true; the adaptive attack always has a target.
func (a *AdaptivePGD) Targeted() bool { return true }

// TargetClass returns the target class.
func (a *AdaptivePGD) TargetClass() int { return a.Target }

// Perturb runs the two-term projected descent.
func (a *AdaptivePGD) Perturb(m *models.Model, x *tensor.Tensor, trueLabel int) *tensor.Tensor {
	adv := x.Clone()
	for s := 0; s < a.Steps; s++ {
		// Attack term: descend CE toward the target through the full net.
		gAtk := lossGradient(m, asBatch(adv), a.Target)

		// Stealth term: descend ‖f(x) − f_ref‖² through the feature stack.
		feat := a.features.Forward(a.batch(adv), false)
		diff := tensor.Sub(feat, a.refFeature)
		gStealth := a.features.Backward(tensor.Scale(diff, 2))

		// Combined signed step (both terms are minimised).
		combined := gAtk.Reshape(adv.Shape()...).Clone()
		combined.AXPYInPlace(a.Lambda, gStealth.Reshape(adv.Shape()...))
		step := signInPlace(combined)
		adv.AXPYInPlace(-a.Alpha, step)

		// Project into the ε-ball ∩ [0,1].
		ad, xd := adv.Data(), x.Data()
		for i := range ad {
			lo, hi := xd[i]-a.Eps, xd[i]+a.Eps
			v := ad[i]
			if v < lo {
				v = lo
			} else if v > hi {
				v = hi
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			ad[i] = v
		}
	}
	return adv
}

// FeatureDistance reports ‖f(x) − f_ref‖, the attacker's stealth objective;
// exposed for analysis.
func (a *AdaptivePGD) FeatureDistance(x *tensor.Tensor) float64 {
	f := a.features.Forward(a.batch(x), false)
	return tensor.Sub(f, a.refFeature).L2Norm()
}
