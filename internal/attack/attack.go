// Package attack implements the three white-box adversarial-example crafting
// strategies the paper evaluates — FGSM and PGD under the L∞ norm and
// DeepFool under the L2 norm — each in untargeted and targeted variants.
// The adversary matches the paper's threat model: full access to the model
// and its gradients (internal/nn backward passes through the inference-mode
// network), producing inputs clipped to the valid pixel range [0, 1].
package attack

import (
	"fmt"
	"math"

	"advhunter/internal/data"
	"advhunter/internal/models"
	"advhunter/internal/nn"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
)

// Attack perturbs a single image [C,H,W] given its true label, returning the
// adversarial image (a new tensor; the input is not modified).
type Attack interface {
	Name() string
	// Targeted reports whether the attack drives inputs toward a specific
	// class rather than merely away from the true one.
	Targeted() bool
	// TargetClass returns the target class for targeted attacks (undefined
	// for untargeted ones).
	TargetClass() int
	Perturb(m *models.Model, x *tensor.Tensor, trueLabel int) *tensor.Tensor
}

// lossGradient returns ∇ₓ CE(f(x), class) through the inference-mode network
// for a single image batch x of shape [1,C,H,W].
func lossGradient(m *models.Model, x *tensor.Tensor, class int) *tensor.Tensor {
	logits := m.Net.Forward(x, false)
	_, g := nn.SoftmaxCrossEntropy(logits, []int{class})
	return m.Net.Backward(g)
}

// logitDiffGradient returns ∇ₓ (f_a(x) − f_b(x)) and the current logit
// difference, through the inference-mode network.
func logitDiffGradient(m *models.Model, x *tensor.Tensor, a, b int) (*tensor.Tensor, float64) {
	logits := m.Net.Forward(x, false)
	seed := tensor.New(logits.Shape()...)
	seed.Set(1, 0, a)
	seed.Set(-1, 0, b)
	return m.Net.Backward(seed), logits.At(0, a) - logits.At(0, b)
}

// asBatch views a [C,H,W] image as a [1,C,H,W] batch (shared storage).
func asBatch(x *tensor.Tensor) *tensor.Tensor {
	return x.Reshape(1, x.Dim(0), x.Dim(1), x.Dim(2))
}

// signInPlace replaces every element with its sign.
func signInPlace(t *tensor.Tensor) *tensor.Tensor {
	return t.Apply(func(v float64) float64 {
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		default:
			return 0
		}
	})
}

// FGSM is the Fast Gradient Sign Method (Goodfellow et al., ICLR'15): a
// single L∞ step of size Eps along (or against, when targeted) the loss
// gradient sign.
type FGSM struct {
	Eps    float64
	Target int // targeted when >= 0
}

// NewFGSM returns an untargeted FGSM attack of strength eps.
func NewFGSM(eps float64) *FGSM { return &FGSM{Eps: eps, Target: -1} }

// NewTargetedFGSM returns a targeted FGSM attack of strength eps.
func NewTargetedFGSM(eps float64, target int) *FGSM { return &FGSM{Eps: eps, Target: target} }

// Name identifies the attack and its strength.
func (a *FGSM) Name() string { return fmt.Sprintf("fgsm(eps=%g,targeted=%v)", a.Eps, a.Targeted()) }

// Targeted reports whether a target class is set.
func (a *FGSM) Targeted() bool { return a.Target >= 0 }

// TargetClass returns the configured target class.
func (a *FGSM) TargetClass() int { return a.Target }

// Perturb applies the single FGSM step.
func (a *FGSM) Perturb(m *models.Model, x *tensor.Tensor, trueLabel int) *tensor.Tensor {
	adv := x.Clone()
	batch := asBatch(adv)
	if a.Targeted() {
		// Descend the loss toward the target class.
		g := signInPlace(lossGradient(m, batch, a.Target))
		adv.AXPYInPlace(-a.Eps, g.Reshape(adv.Shape()...))
	} else {
		// Ascend the loss away from the true class.
		g := signInPlace(lossGradient(m, batch, trueLabel))
		adv.AXPYInPlace(a.Eps, g.Reshape(adv.Shape()...))
	}
	return adv.ClampInPlace(0, 1)
}

// PGD is projected gradient descent (the iterated FGSM of Madry et al., with
// the momentum-free formulation the paper cites): Steps steps of size Alpha,
// each projected back into the Eps L∞-ball around the original image, with
// an optional random start.
type PGD struct {
	Eps, Alpha float64
	Steps      int
	Target     int // targeted when >= 0
	// Rand enables a uniform random start inside the Eps-ball when non-nil.
	Rand *rng.Rand
}

// NewPGD returns an untargeted PGD attack (alpha = eps/4, 10 steps).
func NewPGD(eps float64, r *rng.Rand) *PGD {
	return &PGD{Eps: eps, Alpha: eps / 4, Steps: 10, Target: -1, Rand: r}
}

// NewTargetedPGD returns a targeted PGD attack (alpha = eps/4, 10 steps).
func NewTargetedPGD(eps float64, target int, r *rng.Rand) *PGD {
	return &PGD{Eps: eps, Alpha: eps / 4, Steps: 10, Target: target, Rand: r}
}

// Name identifies the attack and its strength.
func (a *PGD) Name() string { return fmt.Sprintf("pgd(eps=%g,targeted=%v)", a.Eps, a.Targeted()) }

// Targeted reports whether a target class is set.
func (a *PGD) Targeted() bool { return a.Target >= 0 }

// TargetClass returns the configured target class.
func (a *PGD) TargetClass() int { return a.Target }

// Perturb runs the projected iteration.
func (a *PGD) Perturb(m *models.Model, x *tensor.Tensor, trueLabel int) *tensor.Tensor {
	adv := x.Clone()
	if a.Rand != nil {
		for i, v := range adv.Data() {
			adv.Data()[i] = v + a.Eps*(2*a.Rand.Float64()-1)
		}
		a.project(adv, x)
	}
	for s := 0; s < a.Steps; s++ {
		batch := asBatch(adv)
		if a.Targeted() {
			g := signInPlace(lossGradient(m, batch, a.Target))
			adv.AXPYInPlace(-a.Alpha, g.Reshape(adv.Shape()...))
		} else {
			g := signInPlace(lossGradient(m, batch, trueLabel))
			adv.AXPYInPlace(a.Alpha, g.Reshape(adv.Shape()...))
		}
		a.project(adv, x)
	}
	return adv
}

// project clips adv into the Eps-ball around x intersected with [0,1].
func (a *PGD) project(adv, x *tensor.Tensor) {
	ad, xd := adv.Data(), x.Data()
	for i := range ad {
		lo, hi := xd[i]-a.Eps, xd[i]+a.Eps
		v := ad[i]
		if v < lo {
			v = lo
		} else if v > hi {
			v = hi
		}
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		ad[i] = v
	}
}

// DeepFool (Moosavi-Dezfooli et al., CVPR'16) takes minimal L2 steps toward
// the nearest (or the target's) decision boundary, linearising the
// classifier at each iterate and overshooting slightly to cross it.
type DeepFool struct {
	MaxIter   int
	Overshoot float64
	Target    int // targeted when >= 0
	// TopK bounds how many candidate classes are linearised per iteration
	// in the untargeted variant (0 means all classes).
	TopK int
}

// NewDeepFool returns the untargeted attack with the original paper's
// default parameters (50 iterations, 0.02 overshoot, top-10 classes).
func NewDeepFool() *DeepFool { return &DeepFool{MaxIter: 50, Overshoot: 0.02, Target: -1, TopK: 10} }

// NewTargetedDeepFool returns the targeted variant, which walks toward the
// target class's boundary only.
func NewTargetedDeepFool(target int) *DeepFool {
	return &DeepFool{MaxIter: 50, Overshoot: 0.02, Target: target}
}

// Name identifies the attack.
func (a *DeepFool) Name() string { return fmt.Sprintf("deepfool(targeted=%v)", a.Targeted()) }

// Targeted reports whether a target class is set.
func (a *DeepFool) Targeted() bool { return a.Target >= 0 }

// TargetClass returns the configured target class.
func (a *DeepFool) TargetClass() int { return a.Target }

// Perturb runs the iterative linearised-boundary walk.
func (a *DeepFool) Perturb(m *models.Model, x *tensor.Tensor, trueLabel int) *tensor.Tensor {
	adv := x.Clone()
	orig := m.Predict(adv)
	totalPert := tensor.New(x.Shape()...)
	for iter := 0; iter < a.MaxIter; iter++ {
		cur := m.Predict(adv)
		if a.Targeted() {
			if cur == a.Target {
				break
			}
		} else if cur != orig {
			break
		}
		var step *tensor.Tensor
		if a.Targeted() {
			g, diff := logitDiffGradient(m, asBatch(adv), a.Target, cur)
			// Move along +g until f_target − f_cur crosses zero.
			norm2 := g.L2Norm()
			if norm2 < 1e-12 {
				break
			}
			scale := (math.Abs(diff) + 1e-6) / (norm2 * norm2)
			step = tensor.Scale(g.Reshape(adv.Shape()...), scale)
		} else {
			step = a.nearestBoundaryStep(m, adv, cur)
			if step == nil {
				break
			}
		}
		totalPert.AddInPlace(step)
		adv = x.Clone().AXPYInPlace(1+a.Overshoot, totalPert).ClampInPlace(0, 1)
	}
	return adv
}

// nearestBoundaryStep linearises every candidate class boundary and returns
// the minimal step that crosses the closest one.
func (a *DeepFool) nearestBoundaryStep(m *models.Model, adv *tensor.Tensor, cur int) *tensor.Tensor {
	logits := m.Logits(asBatch(adv))
	classes := logits.Dim(1)
	// Candidate classes by descending logit (excluding the current one).
	type cand struct {
		class int
		logit float64
	}
	cands := make([]cand, 0, classes-1)
	for k := 0; k < classes; k++ {
		if k != cur {
			cands = append(cands, cand{k, logits.At(0, k)})
		}
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].logit > cands[i].logit {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	if a.TopK > 0 && len(cands) > a.TopK {
		cands = cands[:a.TopK]
	}
	bestDist := math.Inf(1)
	var bestStep *tensor.Tensor
	for _, c := range cands {
		g, diff := logitDiffGradient(m, asBatch(adv), c.class, cur) // diff = f_k − f_cur < 0
		norm := g.L2Norm()
		if norm < 1e-12 {
			continue
		}
		dist := math.Abs(diff) / norm
		if dist < bestDist {
			bestDist = dist
			scale := (math.Abs(diff) + 1e-6) / (norm * norm)
			bestStep = tensor.Scale(g.Reshape(adv.Shape()...), scale)
		}
	}
	return bestStep
}

// CraftResult summarises an attack over a sample set.
type CraftResult struct {
	// AEs holds the perturbed images; Label keeps the original true label.
	AEs []data.Sample
	// Preds is the model's prediction for each adversarial image.
	Preds []int
	// SuccessRate is the fraction of images for which the attack achieved
	// its goal (misclassification, or classification as the target).
	SuccessRate float64
	// ModelAccuracy is the model's accuracy on the perturbed images with
	// respect to the true labels — the "accuracy under attack" series of
	// the paper's Figure 4.
	ModelAccuracy float64
}

// Craft applies the attack to every sample and scores the outcome.
func Craft(m *models.Model, atk Attack, samples []data.Sample) CraftResult {
	res := CraftResult{}
	succ, correct := 0, 0
	for _, s := range samples {
		adv := atk.Perturb(m, s.X, s.Label)
		pred := m.Predict(adv)
		res.AEs = append(res.AEs, data.Sample{X: adv, Label: s.Label})
		res.Preds = append(res.Preds, pred)
		if atk.Targeted() {
			if pred == atk.TargetClass() {
				succ++
			}
		} else if pred != s.Label {
			succ++
		}
		if pred == s.Label {
			correct++
		}
	}
	n := float64(len(samples))
	if n > 0 {
		res.SuccessRate = float64(succ) / n
		res.ModelAccuracy = float64(correct) / n
	}
	return res
}

// Successful filters a craft result down to the adversarial images that
// achieved the attack goal — the inputs AdvHunter must flag.
func Successful(atk Attack, res CraftResult) []data.Sample {
	var out []data.Sample
	for i, s := range res.AEs {
		if atk.Targeted() {
			if res.Preds[i] == atk.TargetClass() {
				out = append(out, s)
			}
		} else if res.Preds[i] != s.Label {
			out = append(out, s)
		}
	}
	return out
}
