package attack

import (
	"fmt"
	"math"

	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
)

// MIM is the Momentum Iterative Method (MI-FGSM, Dong et al., CVPR'18 —
// the iterative attack the paper cites alongside FGSM): PGD-style steps
// whose direction is a decayed accumulation of normalised gradients, which
// stabilises the update and improves transferability.
type MIM struct {
	Eps, Alpha float64
	Steps      int
	// Decay is the momentum factor μ (1.0 in the original paper).
	Decay  float64
	Target int // targeted when >= 0
}

// NewMIM returns the untargeted momentum attack with the original paper's
// defaults (10 steps, μ=1, α=ε/steps).
func NewMIM(eps float64) *MIM {
	return &MIM{Eps: eps, Alpha: eps / 10, Steps: 10, Decay: 1.0, Target: -1}
}

// NewTargetedMIM returns the targeted momentum attack.
func NewTargetedMIM(eps float64, target int) *MIM {
	return &MIM{Eps: eps, Alpha: eps / 10, Steps: 10, Decay: 1.0, Target: target}
}

// Name identifies the attack and its strength.
func (a *MIM) Name() string { return fmt.Sprintf("mim(eps=%g,targeted=%v)", a.Eps, a.Targeted()) }

// Targeted reports whether a target class is set.
func (a *MIM) Targeted() bool { return a.Target >= 0 }

// TargetClass returns the configured target class.
func (a *MIM) TargetClass() int { return a.Target }

// Perturb runs the momentum iteration.
func (a *MIM) Perturb(m *models.Model, x *tensor.Tensor, trueLabel int) *tensor.Tensor {
	adv := x.Clone()
	velocity := tensor.New(x.Shape()...)
	for s := 0; s < a.Steps; s++ {
		var g *tensor.Tensor
		if a.Targeted() {
			g = lossGradient(m, asBatch(adv), a.Target).ScaleInPlace(-1)
		} else {
			g = lossGradient(m, asBatch(adv), trueLabel)
		}
		// Normalise by L1 norm, accumulate with decay.
		l1 := 0.0
		for _, v := range g.Data() {
			l1 += math.Abs(v)
		}
		if l1 < 1e-12 {
			break
		}
		velocity.ScaleInPlace(a.Decay).AXPYInPlace(1/l1, g.Reshape(adv.Shape()...))
		step := signInPlace(velocity.Clone())
		adv.AXPYInPlace(a.Alpha, step)
		// Project into the ε-ball ∩ [0,1].
		ad, xd := adv.Data(), x.Data()
		for i := range ad {
			lo, hi := xd[i]-a.Eps, xd[i]+a.Eps
			v := ad[i]
			if v < lo {
				v = lo
			} else if v > hi {
				v = hi
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			ad[i] = v
		}
	}
	return adv
}

// RandomNoise is a *control*, not an attack: it perturbs the image with
// uniform ±Eps noise and no gradient information. A sound detector must NOT
// flag such inputs at a high rate — they are merely noisy, not adversarial —
// and the attack itself should rarely change the prediction.
type RandomNoise struct {
	Eps  float64
	Rand *rng.Rand
}

// NewRandomNoise builds the control perturbation.
func NewRandomNoise(eps float64, r *rng.Rand) *RandomNoise {
	return &RandomNoise{Eps: eps, Rand: r}
}

// Name identifies the control.
func (a *RandomNoise) Name() string { return fmt.Sprintf("random-noise(eps=%g)", a.Eps) }

// Targeted reports false; noise has no goal.
func (a *RandomNoise) Targeted() bool { return false }

// TargetClass returns -1.
func (a *RandomNoise) TargetClass() int { return -1 }

// Perturb adds the bounded noise.
func (a *RandomNoise) Perturb(m *models.Model, x *tensor.Tensor, trueLabel int) *tensor.Tensor {
	adv := x.Clone()
	for i, v := range adv.Data() {
		adv.Data()[i] = v + a.Eps*(2*a.Rand.Float64()-1)
	}
	return adv.ClampInPlace(0, 1)
}
