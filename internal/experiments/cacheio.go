package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// saveGob atomically writes v (gob-encoded) to path, creating directories.
func saveGob(path string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("experiments: encoding %s: %w", path, err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadGob reads a gob file into v.
func loadGob(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(v); err != nil {
		return fmt.Errorf("experiments: decoding %s: %w", path, err)
	}
	return nil
}
