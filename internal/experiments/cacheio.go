package experiments

import (
	"fmt"

	"advhunter/internal/obs"
	"advhunter/internal/persist"
)

// cacheSchema identifies the byte layout and semantics of the experiment
// caches (measurements, crafted adversarial examples). Bump it whenever the
// meaning of cached bytes changes so stale files silently regenerate instead
// of being misread.
//
// History:
//
//	1 — sequential noise stream per measurer (implicit; unversioned files).
//	2 — per-sample noise re-keying (rng.New(seed).Split(i)) and per-sample
//	    attack-randomness forks; cached bytes are scheduling-independent.
//	3 — core.Measurement carries the classifier's softmax confidence (Conf);
//	    v2 files would decode with Conf=0 and silently break the
//	    confidence-baseline ablation.
const cacheSchema = 3

// cacheVersionDir is the cache subdirectory for the current schema, so old
// and new artifact sets can coexist during migration (v1 files are simply
// never read once the schema moves on).
var cacheVersionDir = fmt.Sprintf("v%d", cacheSchema)

// Cache I/O counters live on the process-wide registry so one scrape (or one
// experiment-run summary) sees cache behaviour regardless of which Env did
// the work: "hit" is a successful load, "miss" a failed one (absent, corrupt,
// or wrong schema — the caller regenerates), "write" a regeneration persisted.
var (
	cacheOps    = obs.Default.Counter("advhunter_cache_ops_total", "Experiment cache operations by outcome.", "op")
	cacheHits   = cacheOps.With("hit")
	cacheMisses = cacheOps.With("miss")
	cacheWrites = cacheOps.With("write")
)

// CacheStats reports the process-lifetime cache counters (hits, misses,
// writes) — the numbers behind `advhunter experiment`'s run summary.
func CacheStats() (hits, misses, writes uint64) {
	return cacheHits.Value(), cacheMisses.Value(), cacheWrites.Value()
}

// saveGob atomically writes v (gob-encoded, schema-tagged) to path, creating
// directories. The envelope and atomic-write machinery live in
// internal/persist, shared with detector persistence.
func saveGob(path string, v any) error {
	err := persist.Save(path, cacheSchema, v)
	if err == nil {
		cacheWrites.Inc()
	}
	return err
}

// loadGob reads a schema-tagged gob file into v. Corrupt files, pre-envelope
// files, and files written under a different schema all return an error —
// callers treat any error as a cache miss and regenerate.
func loadGob(path string, v any) error {
	err := persist.Load(path, cacheSchema, v)
	if err == nil {
		cacheHits.Inc()
	} else {
		cacheMisses.Inc()
	}
	return err
}
