package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// cacheSchema identifies the byte layout and semantics of the experiment
// caches (measurements, crafted adversarial examples). Bump it whenever the
// meaning of cached bytes changes so stale files silently regenerate instead
// of being misread.
//
// History:
//
//	1 — sequential noise stream per measurer (implicit; unversioned files).
//	2 — per-sample noise re-keying (rng.New(seed).Split(i)) and per-sample
//	    attack-randomness forks; cached bytes are scheduling-independent.
const cacheSchema = 2

// cacheVersionDir is the cache subdirectory for the current schema, so old
// and new artifact sets can coexist during migration (v1 files are simply
// never read once the schema moves on).
var cacheVersionDir = fmt.Sprintf("v%d", cacheSchema)

// cacheEnvelope wraps every cached payload with its schema tag. Decoding a
// pre-envelope or foreign file fails, which callers treat as a cache miss.
type cacheEnvelope struct {
	Schema  int
	Payload []byte
}

// saveGob atomically writes v (gob-encoded, schema-tagged) to path, creating
// directories. The temporary file gets a unique name so concurrent writers
// targeting different paths in one directory never collide.
func saveGob(path string, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("experiments: encoding %s: %w", path, err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cacheEnvelope{Schema: cacheSchema, Payload: payload.Bytes()}); err != nil {
		return fmt.Errorf("experiments: enveloping %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadGob reads a schema-tagged gob file into v. Corrupt files, pre-envelope
// files, and files written under a different schema all return an error —
// callers treat any error as a cache miss and regenerate.
func loadGob(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env cacheEnvelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return fmt.Errorf("experiments: decoding %s: %w", path, err)
	}
	if env.Schema != cacheSchema {
		return fmt.Errorf("experiments: %s has cache schema %d, want %d", path, env.Schema, cacheSchema)
	}
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(v); err != nil {
		return fmt.Errorf("experiments: decoding %s payload: %w", path, err)
	}
	return nil
}
