package experiments

import (
	"fmt"
	"io"

	"advhunter/internal/detect"
	"advhunter/internal/uarch/hpc"
)

// Table3Result reproduces Table 3: AdvHunter F1 for the four cache-miss
// sub-events in S2 under untargeted FGSM across attack strengths.
type Table3Result struct {
	Eps []float64
	// F1[event][i] corresponds to Eps[i].
	F1 map[hpc.Event][]float64
}

// Table3 runs the cache-event ablation.
func Table3(opts Options) (*Table3Result, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	det, err := env.Detector()
	if err != nil {
		return nil, err
	}
	clean, err := env.CorrectCleanMeasurements()
	if err != nil {
		return nil, err
	}
	n := 120
	if opts.Quick {
		n = 40
	}
	res := &Table3Result{Eps: untargetedEps, F1: map[hpc.Event][]float64{}}
	for _, eps := range untargetedEps {
		ar, err := env.Attack(AttackSpec{Kind: "fgsm", Eps: eps}, n)
		if err != nil {
			return nil, err
		}
		for _, e := range hpc.CacheAblationEvents() {
			f1 := 0.0
			if len(ar.Meas) > 0 {
				f1 = detect.EvaluateEvent(det, e, clean, ar.Meas, env.Opts.Workers).F1()
			}
			res.F1[e] = append(res.F1[e], f1)
		}
	}
	return res, nil
}

// Render writes the paper-style table.
func (r *Table3Result) Render(w io.Writer) {
	heading(w, "Table 3: F1 per cache-miss sub-event, S2, untargeted FGSM")
	header := []string{"event"}
	for _, eps := range r.Eps {
		header = append(header, fmt.Sprintf("ε=%g", eps))
	}
	t := newTable(header...)
	for _, e := range hpc.CacheAblationEvents() {
		cells := []string{e.String()}
		for _, v := range r.F1[e] {
			cells = append(cells, f4(v))
		}
		t.addf(cells...)
	}
	t.render(w)
	fmt.Fprintln(w, "Paper shape: L1-icache-load-misses ≈ 0 (instruction flow is input-independent);")
	fmt.Fprintln(w, "the data-cache events (L1-dcache, LLC-load, LLC-store) carry usable signal.")
}
