package experiments

import (
	"fmt"
	"io"

	"advhunter/internal/attack"
	"advhunter/internal/data"
	"advhunter/internal/metrics"
	"advhunter/internal/tensor"
)

// Fig1Layer summarises one activation layer's neuron-activation-frequency
// distributions for clean and adversarial batches.
type Fig1Layer struct {
	Layer string
	// MeanFreqClean/Adv is the average activation frequency over neurons.
	MeanFreqClean, MeanFreqAdv float64
	// Divergence is the mean absolute difference between the per-neuron
	// activation-frequency vectors — how differently the two input
	// populations drive the layer.
	Divergence float64
	// Overlap is the histogram overlap of the two frequency distributions
	// (1 = indistinguishable, as in the paper's visually identical panels).
	Overlap float64
}

// Fig1Result reproduces Figure 1: distributions of activated neurons per
// activation layer, clean 'bird' inputs versus inputs of other categories
// adversarially perturbed (targeted FGSM) to be classified 'bird', on the
// 4-conv/2-FC case-study CNN trained on CIFAR-10.
type Fig1Result struct {
	Eps         float64
	CleanBatch  int
	AdvBatch    int
	SuccessRate float64
	Layers      []Fig1Layer
}

// Figure1 runs the case study.
func Figure1(opts Options) (*Fig1Result, error) {
	env, err := LoadEnv("CS", opts)
	if err != nil {
		return nil, err
	}
	const eps = 0.1
	batch := 150
	if opts.Quick {
		batch = 40
	}
	target := env.Scn.TargetClass // 'bird'

	// Clean batch: generated bird images (the paper uses 1000; scaled).
	birdPool := data.MustSynth(env.Scn.Dataset, env.Scn.Seed^0x1111, 0, batch)
	var clean []data.Sample
	for _, s := range birdPool.Test {
		if s.Label == target {
			clean = append(clean, s)
		}
	}

	// Adversarial batch: other categories perturbed toward 'bird'.
	atk := attack.NewTargetedFGSM(eps, target)
	sources := env.attackSources(true, 3*batch)
	crafted := attack.Craft(env.Model, atk, sources)
	advs := attack.Successful(atk, crafted)
	if len(advs) > batch {
		advs = advs[:batch]
	}
	minAE := 10
	if opts.Quick {
		minAE = 4 // reduced workloads craft fewer AEs; the figure still renders
	}
	if len(advs) < minAE {
		return nil, fmt.Errorf("experiments: only %d successful AEs for Figure 1", len(advs))
	}

	freqsOf := func(samples []data.Sample) [][]float64 {
		relus := env.Model.ReLULayers()
		counts := make([][]float64, len(relus))
		for li, r := range relus {
			li, r := li, r
			r.Record = func(out *tensor.Tensor) {
				if counts[li] == nil {
					counts[li] = make([]float64, out.Len())
				}
				for i, v := range out.Data() {
					if v > 0 {
						counts[li][i]++
					}
				}
			}
		}
		defer func() {
			for _, r := range relus {
				r.Record = nil
			}
		}()
		for _, s := range samples {
			env.Model.Predict(s.X)
		}
		for li := range counts {
			for i := range counts[li] {
				counts[li][i] /= float64(len(samples))
			}
		}
		return counts
	}

	cleanFreq := freqsOf(clean)
	advFreq := freqsOf(advs)

	res := &Fig1Result{
		Eps:         eps,
		CleanBatch:  len(clean),
		AdvBatch:    len(advs),
		SuccessRate: crafted.SuccessRate,
	}
	relus := env.Model.ReLULayers()
	for li := range cleanFreq {
		cf, af := cleanFreq[li], advFreq[li]
		div := 0.0
		for i := range cf {
			d := cf[i] - af[i]
			if d < 0 {
				d = -d
			}
			div += d
		}
		div /= float64(len(cf))
		res.Layers = append(res.Layers, Fig1Layer{
			Layer:         fmt.Sprintf("activation #%d (%s)", li+1, relus[li].Name()),
			MeanFreqClean: metrics.Summarize(cf).Mean,
			MeanFreqAdv:   metrics.Summarize(af).Mean,
			Divergence:    div,
			Overlap:       metrics.OverlapCoefficient(cf, af, 20),
		})
	}
	return res, nil
}

// Render writes the per-layer summary.
func (r *Fig1Result) Render(w io.Writer) {
	heading(w, "Figure 1: Activated-neuron distributions, clean 'bird' vs targeted-FGSM AEs (ε=%g)", r.Eps)
	fmt.Fprintf(w, "clean batch %d, adversarial batch %d (attack success %.0f%%)\n",
		r.CleanBatch, r.AdvBatch, 100*r.SuccessRate)
	t := newTable("Activation layer", "mean freq (clean)", "mean freq (AE)", "per-neuron divergence", "distribution overlap")
	for _, l := range r.Layers {
		t.addf(l.Layer, fmt.Sprintf("%.3f", l.MeanFreqClean), fmt.Sprintf("%.3f", l.MeanFreqAdv),
			fmt.Sprintf("%.4f", l.Divergence), fmt.Sprintf("%.3f", l.Overlap))
	}
	t.render(w)
	fmt.Fprintln(w, "Reading: higher divergence / lower overlap = the layer's neurons fire in a")
	fmt.Fprintln(w, "distinctly different pattern for AEs than for clean inputs of the same class.")
}
