package experiments

import (
	"fmt"
	"io"

	"advhunter/internal/core"
	"advhunter/internal/metrics"
	"advhunter/internal/uarch/hpc"
)

// EventDistribution summarises one HPC event's clean and adversarial
// measurement distributions — the data behind the paper's histogram panels.
type EventDistribution struct {
	Event      hpc.Event
	Clean, Adv metrics.Summary
	Overlap    float64 // histogram overlap: 1 = indistinguishable
	SigmaGap   float64 // (adv mean − clean mean) / clean std
}

// distributionsOf computes per-event summaries for clean vs adversarial
// measurement sets.
func distributionsOf(events []hpc.Event, clean, adv []core.Measurement) []EventDistribution {
	out := make([]EventDistribution, 0, len(events))
	for _, e := range events {
		var cv, av []float64
		for _, m := range clean {
			cv = append(cv, m.Counts.Get(e))
		}
		for _, m := range adv {
			av = append(av, m.Counts.Get(e))
		}
		cs, as := metrics.Summarize(cv), metrics.Summarize(av)
		gap := 0.0
		if cs.Std > 0 {
			gap = (as.Mean - cs.Mean) / cs.Std
		}
		out = append(out, EventDistribution{
			Event:    e,
			Clean:    cs,
			Adv:      as,
			Overlap:  metrics.OverlapCoefficient(cv, av, 24),
			SigmaGap: gap,
		})
	}
	return out
}

// renderDistributions writes the shared distribution table.
func renderDistributions(w io.Writer, dists []EventDistribution) {
	t := newTable("HPC event", "clean mean±std", "AE mean±std", "overlap", "gap (σ)")
	for _, d := range dists {
		t.addf(d.Event.String(),
			fmt.Sprintf("%.0f ± %.0f", d.Clean.Mean, d.Clean.Std),
			fmt.Sprintf("%.0f ± %.0f", d.Adv.Mean, d.Adv.Std),
			fmt.Sprintf("%.3f", d.Overlap),
			fmt.Sprintf("%+.1f", d.SigmaGap))
	}
	t.render(w)
}

// Fig3Result reproduces Figure 3: distributions of branches, branch-misses,
// cache-references and cache-misses for clean inputs and corresponding AEs
// in scenario S2 under targeted FGSM with ε=0.5.
type Fig3Result struct {
	Spec          AttackSpec
	TargetedAcc   float64
	Distributions []EventDistribution
}

// Figure3 measures and summarises the four distributions.
func Figure3(opts Options) (*Fig3Result, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	spec := AttackSpec{Kind: "fgsm", Eps: 0.5, Targeted: true}
	n := 120
	if opts.Quick {
		n = 40
	}
	ar, err := env.Attack(spec, n)
	if err != nil {
		return nil, err
	}
	clean, err := env.CleanTargetMeasurements()
	if err != nil {
		return nil, err
	}
	events := []hpc.Event{hpc.Branches, hpc.BranchMisses, hpc.CacheReferences, hpc.CacheMisses}
	return &Fig3Result{
		Spec:          spec,
		TargetedAcc:   ar.SuccessRate,
		Distributions: distributionsOf(events, clean, ar.Meas),
	}, nil
}

// Render writes the summary.
func (r *Fig3Result) Render(w io.Writer) {
	heading(w, "Figure 3: HPC event distributions, S2, %s (targeted adversarial accuracy %.2f%%)",
		r.Spec, 100*r.TargetedAcc)
	renderDistributions(w, r.Distributions)
	fmt.Fprintln(w, "Paper shape: branches/branch-misses overlap almost completely; cache-references")
	fmt.Fprintln(w, "overlap slightly less; cache-misses separate clearly.")
}

// Fig5Result reproduces Figure 5: distributions of the four cache-miss
// sub-events in S2 under untargeted FGSM at the lowest attack strength.
type Fig5Result struct {
	Spec          AttackSpec
	Distributions []EventDistribution
}

// Figure5 measures and summarises the cache-event distributions.
func Figure5(opts Options) (*Fig5Result, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	spec := AttackSpec{Kind: "fgsm", Eps: untargetedEps[0], Targeted: false}
	n := 120
	if opts.Quick {
		n = 40
	}
	ar, err := env.Attack(spec, n)
	if err != nil {
		return nil, err
	}
	clean, err := env.CorrectCleanMeasurements()
	if err != nil {
		return nil, err
	}
	return &Fig5Result{
		Spec:          spec,
		Distributions: distributionsOf(hpc.CacheAblationEvents(), clean, ar.Meas),
	}, nil
}

// Render writes the summary.
func (r *Fig5Result) Render(w io.Writer) {
	heading(w, "Figure 5: cache-miss sub-event distributions, S2, %s", r.Spec)
	renderDistributions(w, r.Distributions)
	fmt.Fprintln(w, "Paper shape: L1-icache-load-misses overlap heavily (program flow is input-")
	fmt.Fprintln(w, "independent); the data-side events separate to varying degrees.")
}
