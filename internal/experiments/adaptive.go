package experiments

import (
	"fmt"
	"io"

	"advhunter/internal/attack"
	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// AdaptiveRow is one stealth-weight setting of the adaptive attacker.
type AdaptiveRow struct {
	Lambda      float64
	SuccessRate float64
	// FeatureDist is the mean distance of successful AEs from the target
	// class's typical feature (the attacker's stealth objective).
	FeatureDist float64
	F1          float64
	Recall      float64
}

// AdaptiveResult sweeps an AdvHunter-aware attacker that trades attack
// strength for data-flow stealth (beyond the paper, which assumes a
// detector-oblivious adversary). It charts the detector's limits: as λ
// grows the adversary imitates benign data flow and recall must fall —
// while the attack itself gets harder to land.
type AdaptiveResult struct {
	Eps  float64
	Rows []AdaptiveRow
}

// AblationAdaptive runs the sweep on S2.
func AblationAdaptive(opts Options) (*AdaptiveResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	det, err := env.Detector()
	if err != nil {
		return nil, err
	}
	clean, err := env.CleanTargetMeasurements()
	if err != nil {
		return nil, err
	}
	// Target-class exemplars (the attacker is white-box: it can source
	// clean target images).
	var exemplars []*tensor.Tensor
	for _, s := range env.DS.Train {
		if s.Label == env.Scn.TargetClass {
			exemplars = append(exemplars, s.X)
		}
		if len(exemplars) == 10 {
			break
		}
	}
	const eps = 0.5
	lambdas := []float64{0, 1, 5, 20}
	n := 80
	if opts.Quick {
		lambdas = []float64{0, 5}
		n = 24
	}
	res := &AdaptiveResult{Eps: eps}
	for _, lambda := range lambdas {
		atk, err := attack.NewAdaptivePGD(env.Model, eps, env.Scn.TargetClass, lambda, exemplars)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("adaptive-%g-n%d", lambda, n)
		var meas []core.Measurement
		var successRate, featDist float64
		// The crafted set is cached like any other attack workload.
		path := env.cachePath("aes-" + key + ".gob")
		var cached craftedSet
		if path != "" && loadGob(path, &cached) == nil {
			successRate = cached.SuccessRate
			succ := fromDTOs(cached.Successful)
			meas, err = env.measureCached(env.Meas, "ae-"+key, succ)
			if err != nil {
				return nil, err
			}
			featDist = meanFeatureDist(atk, succ)
		} else {
			sources := env.attackSources(true, n)
			env.Opts.logf("[%s] crafting adaptive PGD λ=%g on %d sources…", env.Scn.ID, lambda, len(sources))
			crafted := attack.Craft(env.Model, atk, sources)
			succ := attack.Successful(atk, crafted)
			successRate = crafted.SuccessRate
			if path != "" {
				set := craftedSet{Spec: AttackSpec{Kind: "adaptive", Eps: eps, Targeted: true},
					SuccessRate: crafted.SuccessRate, ModelAccuracy: crafted.ModelAccuracy,
					Successful: toDTOs(succ)}
				if err := saveGob(path, &set); err != nil {
					return nil, err
				}
			}
			meas, err = env.measureCached(env.Meas, "ae-"+key, succ)
			if err != nil {
				return nil, err
			}
			featDist = meanFeatureDist(atk, succ)
		}
		conf := detect.EvaluateEvent(det, hpc.CacheMisses, clean, meas, env.Opts.Workers)
		res.Rows = append(res.Rows, AdaptiveRow{
			Lambda:      lambda,
			SuccessRate: successRate,
			FeatureDist: featDist,
			F1:          conf.F1(),
			Recall:      conf.Recall(),
		})
	}
	return res, nil
}

// meanFeatureDist averages the attacker's stealth objective over images.
func meanFeatureDist(atk *attack.AdaptivePGD, samples []data.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		sum += atk.FeatureDistance(s.X)
	}
	return sum / float64(len(samples))
}

// Render writes the sweep.
func (r *AdaptiveResult) Render(w io.Writer) {
	heading(w, "Extension: AdvHunter-aware adaptive attacker (S2, PGD ε=%g + feature matching)", r.Eps)
	t := newTable("stealth weight λ", "attack success", "feature distance", "detector recall", "F1")
	for _, row := range r.Rows {
		t.addf(fmt.Sprintf("%g", row.Lambda), pct(row.SuccessRate),
			fmt.Sprintf("%.2f", row.FeatureDist), pct(row.Recall), f4(row.F1))
	}
	t.render(w)
	fmt.Fprintln(w, "λ=0 is a plain targeted PGD. The stealth term does shrink the feature distance,")
	fmt.Fprintln(w, "but matching the class centroid in penultimate-feature space does NOT reproduce")
	fmt.Fprintln(w, "the class's typical activation-sparsity pattern in earlier layers — data-flow")
	fmt.Fprintln(w, "detectability is not reduced. The detector's real weak spot is the λ=0 column:")
	fmt.Fprintln(w, "minimal-perturbation iterative attacks stay closer to benign data flow than")
	fmt.Fprintln(w, "single-step attacks, and recall drops accordingly.")
}
