package experiments

import (
	"fmt"
	"io"

	"advhunter/internal/detect"
	"advhunter/internal/uarch/hpc"
)

// Fig4Point is one (scenario, attack, strength) cell of Figure 4.
type Fig4Point struct {
	Scenario string
	Spec     AttackSpec
	// ModelAccuracy is the model's accuracy on the attacked inputs
	// (untargeted attacks drive it down); SuccessRate is the targeted
	// adversarial accuracy (targeted attacks drive it up).
	ModelAccuracy float64
	SuccessRate   float64
	// F1 is AdvHunter's detection score using cache-misses.
	F1 float64
	// AEs is the number of successful adversarial examples evaluated.
	AEs int
}

// Fig4Result reproduces Figure 4: attack effectiveness and AdvHunter F1
// (cache-misses) across FGSM/PGD/DeepFool × {untargeted, targeted} ×
// strengths × scenarios S1–S3.
type Fig4Result struct {
	Points []Fig4Point
}

// fig4Specs enumerates the attack grid of the figure.
func fig4Specs() []AttackSpec {
	var specs []AttackSpec
	for _, eps := range untargetedEps {
		specs = append(specs, AttackSpec{Kind: "fgsm", Eps: eps})
	}
	for _, eps := range targetedEps {
		specs = append(specs, AttackSpec{Kind: "fgsm", Eps: eps, Targeted: true})
	}
	for _, eps := range untargetedEps {
		specs = append(specs, AttackSpec{Kind: "pgd", Eps: eps})
	}
	for _, eps := range targetedEps {
		specs = append(specs, AttackSpec{Kind: "pgd", Eps: eps, Targeted: true})
	}
	specs = append(specs,
		AttackSpec{Kind: "deepfool"},
		AttackSpec{Kind: "deepfool", Targeted: true},
	)
	return specs
}

// Figure4 runs the full grid.
func Figure4(opts Options) (*Fig4Result, error) {
	scenarios := []string{"S1", "S2", "S3"}
	n := 60
	if opts.Quick {
		scenarios = []string{"S1"}
		n = 24
	}
	res := &Fig4Result{}
	for _, id := range scenarios {
		env, err := LoadEnv(id, opts)
		if err != nil {
			return nil, err
		}
		det, err := env.Detector()
		if err != nil {
			return nil, err
		}
		cleanTarget, err := env.CleanTargetMeasurements()
		if err != nil {
			return nil, err
		}
		cleanAll, err := env.CorrectCleanMeasurements()
		if err != nil {
			return nil, err
		}
		for _, spec := range fig4Specs() {
			ar, err := env.Attack(spec, n)
			if err != nil {
				return nil, err
			}
			clean := cleanAll
			if spec.Targeted {
				clean = cleanTarget
			}
			f1 := 0.0
			if len(ar.Meas) > 0 {
				f1 = detect.EvaluateEvent(det, hpc.CacheMisses, clean, ar.Meas, env.Opts.Workers).F1()
			}
			res.Points = append(res.Points, Fig4Point{
				Scenario:      id,
				Spec:          spec,
				ModelAccuracy: ar.ModelAccuracy,
				SuccessRate:   ar.SuccessRate,
				F1:            f1,
				AEs:           len(ar.Meas),
			})
		}
	}
	return res, nil
}

// Render writes the figure's series as a table.
func (r *Fig4Result) Render(w io.Writer) {
	heading(w, "Figure 4: attack effectiveness and AdvHunter F1 (cache-misses) across scenarios")
	t := newTable("scenario", "attack", "model acc under attack", "attack success", "AEs", "AdvHunter F1")
	for _, p := range r.Points {
		t.addf(p.Scenario, p.Spec.String(), pct(p.ModelAccuracy), pct(p.SuccessRate),
			fmt.Sprintf("%d", p.AEs), f4(p.F1))
	}
	t.render(w)
	fmt.Fprintln(w, "Paper shape: rising strength lowers accuracy (untargeted) or raises targeted")
	fmt.Fprintln(w, "success, while AdvHunter's F1 stays high for every attack type and scenario.")
}
