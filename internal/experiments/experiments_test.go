package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"advhunter/internal/core"
	"advhunter/internal/detect"
	"advhunter/internal/uarch/hpc"
)

// The TEST scenario is a miniature environment so the package tests run in
// seconds rather than minutes.
func init() {
	Scenarios["TEST"] = Scenario{
		ID: "TEST", Dataset: "fashionmnist", Arch: "simplecnn",
		TargetClass:   6,
		TemplateM:     10,
		TrainPerClass: 12, TestPerClass: 6, ValPerClass: 15,
		LearningRate: 0.02, Epochs: 8, TargetAccuracy: 0.97, Seed: 900,
	}
}

var (
	envOnce sync.Once
	envFix  *Env
	envErr  error
	envDir  string
)

// testEnv loads the TEST environment once, cached in a shared temp dir.
func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envDir = t.TempDir()
		envFix, envErr = LoadEnv("TEST", Options{CacheDir: envDir, Quick: true})
	})
	if envErr != nil {
		t.Fatalf("loading TEST env: %v", envErr)
	}
	return envFix
}

func TestLoadEnvUnknown(t *testing.T) {
	if _, err := LoadEnv("S9", Options{}); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

func TestLoadEnvTrainsAndCaches(t *testing.T) {
	env := testEnv(t)
	if env.CleanAcc < 0.7 {
		t.Fatalf("TEST model accuracy %.2f too low", env.CleanAcc)
	}
	// Second load must reuse the checkpoint and produce an equal model.
	env2, err := LoadEnv("TEST", Options{CacheDir: envDir})
	if err != nil {
		t.Fatal(err)
	}
	x := env.DS.Test[0].X
	if env.Model.Predict(x) != env2.Model.Predict(x) {
		t.Fatal("cached model predicts differently")
	}
}

func TestAttackSpecKeyAndString(t *testing.T) {
	a := AttackSpec{Kind: "fgsm", Eps: 0.5, Targeted: true}
	if a.Key() != "fgsm-t-0.5" {
		t.Fatalf("key %q", a.Key())
	}
	if !strings.Contains(a.String(), "FGSM") || !strings.Contains(a.String(), "targeted") {
		t.Fatalf("string %q", a.String())
	}
	d := AttackSpec{Kind: "deepfool"}
	if !strings.Contains(d.String(), "DeepFool") {
		t.Fatalf("string %q", d.String())
	}
	if _, err := (AttackSpec{Kind: "zoo"}).build(0, 1); err == nil {
		t.Fatal("expected error for unknown attack kind")
	}
}

func TestAttackSourcesBalancedAndExcludesTarget(t *testing.T) {
	env := testEnv(t)
	src := env.attackSources(true, 18)
	if len(src) == 0 {
		t.Fatal("no sources")
	}
	counts := map[int]int{}
	for _, s := range src {
		if s.Label == env.Scn.TargetClass {
			t.Fatal("target class used as source for targeted attack")
		}
		counts[s.Label]++
	}
	if len(counts) < 5 {
		t.Fatalf("sources cover only %d classes; want round-robin balance", len(counts))
	}
}

func TestCraftAndAttackCached(t *testing.T) {
	env := testEnv(t)
	spec := AttackSpec{Kind: "fgsm", Eps: 0.4, Targeted: true}
	a1, err := env.Attack(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := env.Attack(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Meas) != len(a2.Meas) || a1.SuccessRate != a2.SuccessRate {
		t.Fatal("cached attack differs from fresh attack")
	}
	for i := range a1.Meas {
		if a1.Meas[i].Counts != a2.Meas[i].Counts {
			t.Fatal("cached measurements differ")
		}
	}
}

func TestSampleDTORoundTrip(t *testing.T) {
	env := testEnv(t)
	orig := env.DS.Test[:3]
	back := fromDTOs(toDTOs(orig))
	for i := range orig {
		if back[i].Label != orig[i].Label {
			t.Fatal("label lost")
		}
		if back[i].X.At(0, 3, 4) != orig[i].X.At(0, 3, 4) {
			t.Fatal("pixels lost")
		}
	}
}

func TestTemplateFromMeasurementsCapsPerClass(t *testing.T) {
	var ms []core.Measurement
	for i := 0; i < 30; i++ {
		var c hpc.Counts
		c[hpc.CacheMisses] = float64(i)
		ms = append(ms, core.Measurement{Pred: i % 2, Counts: c})
	}
	tpl := TemplateFromMeasurements(ms, 2, 5, hpc.AllEvents())
	if len(tpl.Rows[0]) != 5 || len(tpl.Rows[1]) != 5 {
		t.Fatalf("per-class sizes %d/%d, want 5/5", len(tpl.Rows[0]), len(tpl.Rows[1]))
	}
}

func TestDetectorEndToEndOnTestEnv(t *testing.T) {
	env := testEnv(t)
	det, err := env.Detector()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := env.CorrectCleanMeasurements()
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 {
		t.Fatal("no correct clean measurements")
	}
	spec := AttackSpec{Kind: "fgsm", Eps: 0.4, Targeted: true}
	ar, err := env.Attack(spec, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Meas) == 0 {
		t.Skip("attack produced no successful AEs at this tiny scale")
	}
	conf := detect.EvaluateEvent(det, hpc.CacheMisses, clean, ar.Meas, 0)
	if conf.Total() != len(clean)+len(ar.Meas) {
		t.Fatal("evaluation accounting")
	}
}

func TestGobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/x.gob"
	in := map[string][]float64{"a": {1, 2, 3}}
	if err := saveGob(path, in); err != nil {
		t.Fatal(err)
	}
	var out map[string][]float64
	if err := loadGob(path, &out); err != nil {
		t.Fatal(err)
	}
	if out["a"][2] != 3 {
		t.Fatal("round trip lost data")
	}
	if err := loadGob(dir+"/missing.gob", &out); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestResampleNoiseDeterministic(t *testing.T) {
	var c hpc.Counts
	c[hpc.CacheMisses] = 1000
	truth := []core.Measurement{{Pred: 1, Counts: c}}
	a := resampleNoise(truth, hpc.DefaultNoise(), 5, 7, 1)
	b := resampleNoise(truth, hpc.DefaultNoise(), 5, 7, 4)
	if a[0].Counts != b[0].Counts {
		t.Fatal("resampling not deterministic")
	}
	d := resampleNoise(truth, hpc.DefaultNoise(), 5, 8, 1)
	if a[0].Counts == d[0].Counts {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("col-a", "b")
	tb.add("x", 1.5)
	tb.addf("yyyy", "z")
	tb.render(&buf)
	out := buf.String()
	for _, want := range []string{"col-a", "-----", "1.5000", "yyyy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artefact must be registered.
	for _, id := range []string{"table1", "table2", "table3", "fig1", "fig3", "fig4", "fig5", "fig6"} {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("registry missing %s", id)
		}
	}
	if err := Run("nonexistent", Options{}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestVariantEvaluationRuns(t *testing.T) {
	env := testEnv(t)
	v := DefaultVariant()
	v.Tag = "test-variant"
	v.Machine.QuantLevels = 15
	spec := AttackSpec{Kind: "fgsm", Eps: 0.4, Targeted: true}
	conf, err := env.VariantEvaluation(v, spec, 12, hpc.CacheMisses)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Total() == 0 {
		t.Fatal("variant evaluation scored nothing")
	}
}

func TestRunJSONUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunJSON("nope", Options{}, &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}
