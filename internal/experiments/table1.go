package experiments

import (
	"io"

	"advhunter/internal/data"
)

// Table1Row is one evaluation scenario with its clean accuracy.
type Table1Row struct {
	Scenario string
	Dataset  string
	Arch     string
	CleanAcc float64
}

// Table1Result reproduces Table 1: the three evaluation scenarios and the
// clean accuracy of each trained model.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 trains (or loads) every scenario model and reports clean accuracy.
// The paper's values are 92.34% / 88.59% / 96.67%; the synthetic datasets
// are easier than the originals, so ours land higher — what must hold is
// "well-trained classifier per scenario", which the detector experiments
// build on.
func Table1(opts Options) (*Table1Result, error) {
	res := &Table1Result{}
	for _, id := range []string{"S1", "S2", "S3"} {
		env, err := LoadEnv(id, opts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Scenario: id,
			Dataset:  env.Scn.Dataset,
			Arch:     env.Scn.Arch,
			CleanAcc: env.CleanAcc,
		})
	}
	return res, nil
}

// Render writes the paper-style table.
func (r *Table1Result) Render(w io.Writer) {
	heading(w, "Table 1: Evaluation scenarios and clean accuracies")
	t := newTable("Scenario", "Dataset", "CNN Architecture", "Clean Accuracy")
	for _, row := range r.Rows {
		t.addf(row.Scenario, row.Dataset+" (synthetic)", row.Arch+"-lite", pct(row.CleanAcc))
	}
	t.render(w)
}

// classNameOf is a small helper shared by the per-category tables.
func classNameOf(dataset string, c int) string { return data.ClassName(dataset, c) }
