package experiments

import (
	"fmt"
	"io"

	"advhunter/internal/core"
	"advhunter/internal/detect"
	"advhunter/internal/metrics"
	"advhunter/internal/parallel"
	"advhunter/internal/rng"
	"advhunter/internal/uarch/hpc"
)

// Fig6Point is one (scenario, M) cell: detection F1 over resampled
// validation sets of size M per category.
type Fig6Point struct {
	Scenario string
	M        int
	MeanF1   float64
	StdF1    float64
}

// Fig6Result reproduces Figure 6: AdvHunter F1 (cache-misses, untargeted
// FGSM at the middle strength of the sweep) as a function of the per-category validation
// size M, with mean and standard deviation over independently resampled
// validation sets.
type Fig6Result struct {
	Sizes    []int
	Resample int
	Points   []Fig6Point
}

// Figure6 runs the validation-size sweep. The paper reports saturation
// around M≈30 (S1), M≈40 (S2) and M≈60 (S3, more classes).
func Figure6(opts Options) (*Fig6Result, error) {
	scenarios := []string{"S1", "S2", "S3"}
	resamples := 30
	sizes := []int{5, 10, 20, 30, 40, 60, 80}
	nAE := 120
	if opts.Quick {
		scenarios = []string{"S1"}
		resamples = 6
		sizes = []int{5, 20, 40}
		nAE = 40
	}
	res := &Fig6Result{Sizes: sizes, Resample: resamples}
	for _, id := range scenarios {
		env, err := LoadEnv(id, opts)
		if err != nil {
			return nil, err
		}
		valMeas, err := env.ValidationMeasurements()
		if err != nil {
			return nil, err
		}
		clean, err := env.CorrectCleanMeasurements()
		if err != nil {
			return nil, err
		}
		ar, err := env.Attack(AttackSpec{Kind: "fgsm", Eps: untargetedEps[1]}, nAE)
		if err != nil {
			return nil, err
		}
		// Bucket validation measurements by predicted class once.
		byClass := make([][]core.Measurement, env.DS.Classes)
		for _, m := range valMeas {
			if m.Pred >= 0 && m.Pred < env.DS.Classes {
				byClass[m.Pred] = append(byClass[m.Pred], m)
			}
		}
		base := rng.New(env.Scn.Seed ^ 0xf16)
		for si, m := range sizes {
			// Each draw forks its own stream keyed by (size index, draw), so
			// the refits are pure per draw and fan out over the worker pool
			// without changing any number.
			f1s := make([]float64, resamples)
			fitted := make([]bool, resamples)
			parallel.ForEach(opts.Workers, resamples, func(draw int) {
				r := base.Fork(uint64(si)<<32 | uint64(draw))
				// Only the cache-misses GMMs are evaluated, so the template
				// carries just that event — a 10x fit-time saving per draw.
				tpl := core.NewTemplate(env.DS.Classes, []hpc.Event{hpc.CacheMisses})
				for c := 0; c < env.DS.Classes; c++ {
					pool := byClass[c]
					if len(pool) == 0 {
						continue
					}
					perm := r.Perm(len(pool))
					take := m
					if take > len(pool) {
						take = len(pool)
					}
					for _, idx := range perm[:take] {
						tpl.Add(c, pool[idx].Counts, pool[idx].Conf)
					}
				}
				cfg := detect.DefaultConfig()
				cfg.GMM.Seed = uint64(draw)*7919 + 13
				det, err := detect.Fit("gmm", tpl, cfg)
				if err != nil {
					return // tiny M can leave categories unmodelled
				}
				f1s[draw] = detect.EvaluateEvent(det, hpc.CacheMisses, clean, ar.Meas, 1).F1()
				fitted[draw] = true
			})
			var kept []float64
			for draw, ok := range fitted {
				if ok {
					kept = append(kept, f1s[draw])
				}
			}
			mean, std := metrics.MeanStd(kept)
			res.Points = append(res.Points, Fig6Point{Scenario: id, M: m, MeanF1: mean, StdF1: std})
		}
	}
	return res, nil
}

// Render writes the series.
func (r *Fig6Result) Render(w io.Writer) {
	heading(w, "Figure 6: F1 (cache-misses) vs per-category validation size M (%d resamples)", r.Resample)
	t := newTable("scenario", "M", "mean F1", "std")
	for _, p := range r.Points {
		t.addf(p.Scenario, fmt.Sprintf("%d", p.M), f4(p.MeanF1), f4(p.StdF1))
	}
	t.render(w)
	fmt.Fprintln(w, "Paper shape: F1 rises with M and saturates near M≈30 (S1), M≈40 (S2); the")
	fmt.Fprintln(w, "43-class S3 needs more (M≈60). Standard deviation shrinks as M grows.")
}
