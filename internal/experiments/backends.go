package experiments

import (
	"fmt"
	"io"

	"advhunter/internal/detect"
	"advhunter/internal/uarch/hpc"
)

// BackendRow is one detector backend's outcome on the shared workload.
type BackendRow struct {
	Backend     string
	Description string
	TPR         float64
	FPR         float64
	Acc         float64
	F1          float64
}

// BackendComparisonResult puts every registered detector backend through the
// identical fit-and-evaluate protocol: same template, same clean negatives,
// same adversarial positives, each backend's own fused decision. It is the
// registry's proof of uniformity — one detect.Fit + detect.Evaluate pair,
// parameterised only by the backend name.
type BackendComparisonResult struct {
	Scenario string
	Attack   string
	Rows     []BackendRow
}

// BackendComparison runs the sweep on the ablation workload (S2, untargeted
// FGSM at the ablation strength).
func BackendComparison(opts Options) (*BackendComparisonResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	clean, err := env.CorrectCleanMeasurements()
	if err != nil {
		return nil, err
	}
	ar, err := env.Attack(ablationSpec, ablationSources(opts))
	if err != nil {
		return nil, err
	}
	res := &BackendComparisonResult{Scenario: env.Scn.ID, Attack: ablationSpec.String()}
	cfg := detect.DefaultConfig()
	cfg.FusionEvents = []hpc.Event{hpc.CacheMisses, hpc.L1DLoadMisses, hpc.LLCLoadMisses}
	for _, kind := range detect.Kinds() {
		det, err := env.DetectorKind(kind, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: backend %q: %w", kind, err)
		}
		conf := detect.Evaluate(det, clean, ar.Meas, env.Opts.Workers)
		res.Rows = append(res.Rows, BackendRow{
			Backend:     kind,
			Description: detect.Describe(kind),
			TPR:         conf.TPR(),
			FPR:         conf.FPR(),
			Acc:         conf.Accuracy(),
			F1:          conf.F1(),
		})
	}
	return res, nil
}

// Render writes the comparison table.
func (r *BackendComparisonResult) Render(w io.Writer) {
	heading(w, "Backend comparison: every registered detector on %s, %s", r.Scenario, r.Attack)
	t := newTable("backend", "TPR", "FPR", "accuracy", "F1")
	for _, row := range r.Rows {
		t.addf(row.Backend, pct(row.TPR), pct(row.FPR), pct(row.Acc), f4(row.F1))
	}
	t.render(w)
	fmt.Fprintln(w, "All rows run through the same detect.Fit/detect.Evaluate path, selected only")
	fmt.Fprintln(w, "by backend name; each backend decides with its own fused rule.")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-12s %s\n", row.Backend, row.Description)
	}
}
