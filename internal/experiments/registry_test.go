package experiments

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"advhunter/internal/detect"
)

// TestIDsSortedAndComplete: IDs covers exactly the registry, sorted.
func TestIDsSortedAndComplete(t *testing.T) {
	ids := IDs()
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("IDs not sorted: %v", ids)
	}
	if len(ids) != len(Registry) {
		t.Fatalf("IDs has %d entries, registry %d", len(ids), len(Registry))
	}
	for _, id := range ids {
		e, ok := Registry[id]
		if !ok {
			t.Fatalf("IDs lists %q but the registry has no entry", id)
		}
		if e.ID != id {
			t.Fatalf("entry %q carries mismatched ID %q", id, e.ID)
		}
		if e.Description == "" || e.Run == nil {
			t.Fatalf("entry %q is missing a description or runner", id)
		}
	}
}

// TestEveryExperimentRunsAndRenders runs each registered experiment on the
// miniature TEST scenario (every internal LoadEnv is redirected there) and
// renders both the text table and the JSON form. The point is breadth: any
// experiment whose pipeline breaks under the unified detector stack fails
// here, not in a multi-hour full run.
func TestEveryExperimentRunsAndRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short mode")
	}
	env := testEnv(t) // train the TEST model once so every run shares the cache
	testScenarioID = "TEST"
	defer func() { testScenarioID = "" }()
	opts := Options{CacheDir: envDir, Quick: true, Workers: env.Opts.Workers}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(id, opts, &buf); err != nil {
				t.Fatalf("Run(%q): %v", id, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("Run(%q) rendered nothing", id)
			}
			var jbuf bytes.Buffer
			if err := RunJSON(id, opts, &jbuf); err != nil {
				t.Fatalf("RunJSON(%q): %v", id, err)
			}
			if !strings.Contains(jbuf.String(), `"experiment"`) {
				t.Fatalf("RunJSON(%q) missing envelope:\n%s", id, jbuf.String())
			}
		})
	}
}

// TestBackendComparisonOneRowPerBackend: the comparison table has exactly one
// row per registered backend, in registry order.
func TestBackendComparisonOneRowPerBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("fits every backend; skipped in -short mode")
	}
	env := testEnv(t)
	testScenarioID = "TEST"
	defer func() { testScenarioID = "" }()
	res, err := BackendComparison(Options{CacheDir: envDir, Quick: true, Workers: env.Opts.Workers})
	if err != nil {
		t.Fatal(err)
	}
	kinds := detect.Kinds()
	if len(res.Rows) != len(kinds) {
		t.Fatalf("comparison has %d rows, want one per backend (%v)", len(res.Rows), kinds)
	}
	for i, row := range res.Rows {
		if row.Backend != kinds[i] {
			t.Fatalf("row %d is %q, want %q", i, row.Backend, kinds[i])
		}
		if row.FPR < 0 || row.FPR > 1 || row.TPR < 0 || row.TPR > 1 {
			t.Fatalf("row %q has out-of-range rates: %+v", row.Backend, row)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	for _, k := range kinds {
		if !strings.Contains(buf.String(), k) {
			t.Fatalf("rendered comparison missing backend %q:\n%s", k, buf.String())
		}
	}
}
