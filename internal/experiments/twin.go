package experiments

import (
	"fmt"
	"io"
	"math"

	"advhunter/internal/core"
	"advhunter/internal/detect"
	"advhunter/internal/engine"
	"advhunter/internal/metrics"
	"advhunter/internal/parallel"
	"advhunter/internal/tensor"
	"advhunter/internal/twin"
	"advhunter/internal/uarch/hpc"
)

// twinMargin is the escalation band the two-tier evaluation uses — the same
// default as serve.Config.EscalationMargin, so the experiment validates the
// deployment configuration.
const twinMargin = 0.15

// TwinProbes is the canonical probe workload for profiling this scenario's
// twin table: the validation pool plus two perturbation rounds — the clean
// manifold's immediate neighbourhood (ε=0.1) and the adversarial-strength
// region (ε=0.5, where targeted FGSM/MIM inputs live). Without the second
// round the table extrapolates exactly where the twin screens hardest.
// TwinBackend and the twin-profile command both profile from this workload,
// so a precomputed table and an on-demand one are interchangeable.
func (e *Env) TwinProbes() []*tensor.Tensor {
	pool := e.ValidationPool()
	return append(twin.Probes(pool, 1, 0.1, e.Scn.Seed^0x7717),
		twin.Probes(pool, 1, 0.5, e.Scn.Seed^0x2ee7)...)
}

// TwinBackend assembles the analytical-twin stack for this scenario: the
// count tables (loaded from tablePath when fresh, profiled over the
// validation pool's perturbed neighbourhood otherwise), the twin measurer
// shadowing e.Meas, and a detector of the given kind calibrated on
// twin-measured validation counts. The twin-calibrated detector matters: the
// table predictions carry a small systematic bias relative to the exact
// simulator, so thresholds fitted on exact counts would misfire on twin
// readings.
func (e *Env) TwinBackend(tablePath string, knots int, kind string, cfg detect.Config) (*twin.Measurer, *detect.Fitted, bool, error) {
	tab, loaded, err := twin.LoadOrProfile(tablePath, e.Meas.Engine.Clone(), e.TwinProbes, knots, e.Opts.Workers)
	if err != nil {
		return nil, nil, false, err
	}
	if loaded {
		e.Opts.logf("[%s] twin table loaded (%d layers × %d knots)", e.Scn.ID, len(tab.Layers), tab.Knots)
	} else {
		e.Opts.logf("[%s] twin table profiled from %d probes (%d layers × %d knots)",
			e.Scn.ID, tab.Probes, len(tab.Layers), tab.Knots)
	}
	tm, err := twin.FromMeasurer(e.Meas, tab)
	if err != nil {
		return nil, nil, false, err
	}
	tms := twin.MeasureSet(tm.Clone(), e.ValidationPool(), e.Opts.Workers)
	tpl := TemplateFromMeasurements(tms, e.DS.Classes, e.Scn.TemplateM, hpc.AllEvents())
	tdet, err := detect.Fit(kind, tpl, cfg)
	if err != nil {
		return nil, nil, false, err
	}
	return tm, tdet, loaded, nil
}

// TwinEventError is the twin's count-prediction error for one event over the
// evaluation workload, relative to freshly simulated exact counts.
type TwinEventError struct {
	Event   string
	MeanRel float64
	MaxRel  float64
}

// TwinModeRow is the detection quality of one serving mode.
type TwinModeRow struct {
	Mode string
	TPR  float64
	FPR  float64
}

// TwinAccuracyResult validates the analytical twin end to end on scenario
// S2: per-event relative prediction error, and TPR/FPR of twin-only and
// two-tier serving against the exact-only reference on a clean + FGSM + MIM
// workload.
type TwinAccuracyResult struct {
	Scenario       string
	Knots          int
	TableLoaded    bool
	Margin         float64
	Positives      int
	Negatives      int
	Events         []TwinEventError
	Modes          []TwinModeRow
	EscalationRate float64
	// TPRDelta/FPRDelta are |two-tier − exact-only|, the deployment-accuracy
	// headline (acceptance: both within 0.01).
	TPRDelta float64
	FPRDelta float64
}

// twinItem is one evaluation input with its exact measurement and the noise
// index that produced it (so the twin reading shares the same noise draw).
type twinItem struct {
	x     *tensor.Tensor
	idx   uint64
	exact core.Measurement
	adv   bool
}

// TwinAccuracy runs the twin-accuracy experiment.
func TwinAccuracy(opts Options) (*TwinAccuracyResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	det, err := env.Detector()
	if err != nil {
		return nil, err
	}
	knots := twin.DefaultKnots
	tm, tdet, loaded, err := env.TwinBackend(
		env.cachePath(fmt.Sprintf("twin-k%d.gob", knots)), knots, "gmm", detect.DefaultConfig())
	if err != nil {
		return nil, err
	}

	// Negatives: clean test images predicted as the target class — measured
	// with noise index = position in the test split, exactly how
	// TestMeasurements keyed them, so the twin readings share the noise draw.
	testMs, err := env.TestMeasurements()
	if err != nil {
		return nil, err
	}
	var items []twinItem
	for i, s := range env.DS.Test {
		m := testMs[i]
		if m.Pred == env.Scn.TargetClass && m.TrueLabel == env.Scn.TargetClass {
			items = append(items, twinItem{x: s.X, idx: uint64(i), exact: m})
		}
	}
	negatives := len(items)

	// Positives: successful targeted FGSM and MIM examples, with the same
	// (position-keyed) noise indices the cached measurements used.
	n := 120
	if opts.Quick {
		n = 40
	}
	for _, spec := range []AttackSpec{
		{Kind: "fgsm", Eps: 0.5, Targeted: true},
		{Kind: "mim", Eps: 0.5, Targeted: true},
	} {
		set, err := env.Craft(spec, n)
		if err != nil {
			return nil, err
		}
		samples := fromDTOs(set.Successful)
		meas, err := env.measureCached(env.Meas, fmt.Sprintf("ae-%s-n%d", spec.Key(), n), samples)
		if err != nil {
			return nil, err
		}
		for j := range samples {
			items = append(items, twinItem{x: samples[j].X, idx: uint64(j), exact: meas[j], adv: true})
		}
	}
	if negatives == 0 || len(items) == negatives {
		return nil, fmt.Errorf("experiments: twin-accuracy workload degenerate (%d negatives, %d items)", negatives, len(items))
	}

	// Twin readings and fresh exact truths, in parallel over replicas.
	type evalOut struct {
		twinM     core.Measurement
		predicted hpc.Counts // twin's noise-free prediction
		truth     hpc.Counts // exact simulator's noise-free counts
	}
	workers := parallel.Workers(env.Opts.Workers, len(items))
	twins := make([]*twin.Measurer, workers)
	engines := make([]*engine.Engine, workers)
	twins[0] = tm
	engines[0] = env.Meas.Engine
	for w := 1; w < workers; w++ {
		twins[w] = tm.Clone()
		engines[w] = env.Meas.Engine.Clone()
	}
	env.Opts.logf("[%s] twin-measuring %d items (%d clean, %d adversarial)…",
		env.Scn.ID, len(items), negatives, len(items)-negatives)
	outs := parallel.MapWorkers(workers, items, func(w, _ int, it twinItem) evalOut {
		pred := twins[w].Truth(it.x)
		_, truth := engines[w].Infer(it.x)
		return evalOut{twinM: twins[w].MeasureAt(it.idx, it.x), predicted: pred.Counts, truth: truth}
	})

	res := &TwinAccuracyResult{
		Scenario:    env.Scn.ID,
		Knots:       knots,
		TableLoaded: loaded,
		Margin:      twinMargin,
		Positives:   len(items) - negatives,
		Negatives:   negatives,
	}
	for _, ev := range hpc.CoreEvents() {
		e := TwinEventError{Event: ev.String()}
		for _, o := range outs {
			rel := math.Abs(o.predicted.Get(ev)-o.truth.Get(ev)) / math.Max(o.truth.Get(ev), 1)
			e.MeanRel += rel
			if rel > e.MaxRel {
				e.MaxRel = rel
			}
		}
		e.MeanRel /= float64(len(outs))
		res.Events = append(res.Events, e)
	}

	// Verdicts per mode. The two-tier rule is the serve auto tier's: the
	// twin decides unless its verdict sits inside the uncertainty band, in
	// which case the exact verdict stands.
	var exactC, twinC, tierC metrics.Confusion
	escalated := 0
	for i, it := range items {
		exactV := det.Detect(it.exact)
		twinV := tdet.Detect(outs[i].twinM)
		tierV := twinV
		if tdet.Uncertain(twinV, -1, twinMargin) {
			tierV = exactV
			escalated++
		}
		exactC.Add(it.adv, exactV.Fused)
		twinC.Add(it.adv, twinV.Fused)
		tierC.Add(it.adv, tierV.Fused)
	}
	res.EscalationRate = float64(escalated) / float64(len(items))
	res.Modes = []TwinModeRow{
		{Mode: "exact-only", TPR: exactC.TPR(), FPR: exactC.FPR()},
		{Mode: "twin-only", TPR: twinC.TPR(), FPR: twinC.FPR()},
		{Mode: "two-tier", TPR: tierC.TPR(), FPR: tierC.FPR()},
	}
	res.TPRDelta = math.Abs(tierC.TPR() - exactC.TPR())
	res.FPRDelta = math.Abs(tierC.FPR() - exactC.FPR())
	return res, nil
}

// Render writes the twin-accuracy report.
func (r *TwinAccuracyResult) Render(w io.Writer) {
	heading(w, "Twin accuracy: analytical twin vs exact simulator, %s (%d knots, margin %.2f)",
		r.Scenario, r.Knots, r.Margin)
	fmt.Fprintf(w, "Workload: %d clean negatives, %d adversarial positives (targeted FGSM + MIM ε=0.5).\n",
		r.Negatives, r.Positives)
	et := newTable("event", "mean rel err", "max rel err")
	for _, e := range r.Events {
		et.addf(e.Event, f4(e.MeanRel), f4(e.MaxRel))
	}
	et.render(w)
	mt := newTable("mode", "TPR", "FPR")
	for _, m := range r.Modes {
		mt.addf(m.Mode, pct(m.TPR), pct(m.FPR))
	}
	mt.render(w)
	fmt.Fprintf(w, "Two-tier escalation rate %.1f%%; |two-tier − exact| TPR %.4f, FPR %.4f (acceptance: ≤ 0.01).\n",
		100*r.EscalationRate, r.TPRDelta, r.FPRDelta)
}
