package experiments

import (
	"fmt"

	"advhunter/internal/core"
	"advhunter/internal/detect"
	"advhunter/internal/engine"
	"advhunter/internal/metrics"
	"advhunter/internal/parallel"
	"advhunter/internal/rng"
	"advhunter/internal/uarch/hpc"
)

// Variant is an alternative measurement stack (machine model and/or noise
// protocol) used by the ablation experiments. Tag must uniquely identify the
// configuration — it keys the on-disk measurement caches.
type Variant struct {
	Tag     string
	Machine engine.MachineConfig
	Noise   hpc.NoiseModel
	R       int
}

// DefaultVariant mirrors the main experiments' stack.
func DefaultVariant() Variant {
	return Variant{
		Tag:     "default",
		Machine: engine.DefaultMachineConfig(),
		Noise:   hpc.DefaultNoise(),
		R:       10,
	}
}

// measurer builds the variant's measurement stack for the environment's
// model.
func (e *Env) variantMeasurer(v Variant) *core.Measurer {
	return &core.Measurer{
		Engine:  engine.New(e.Model.Clone(), v.Machine),
		Noise:   v.Noise,
		Seed:    e.Scn.Seed ^ 0xbeef,
		R:       v.R,
		Workers: e.Opts.Workers,
	}
}

// VariantEvaluation measures validation pool, clean test set and the given
// attack's AEs on the variant stack, fits a detector, and returns the
// confusion for the requested event. All measurement passes are cached under
// the variant tag.
func (e *Env) VariantEvaluation(v Variant, spec AttackSpec, nSources int, event hpc.Event) (metrics.Confusion, error) {
	meas := e.variantMeasurer(v)
	valMeas, err := e.measureCached(meas, "validation-"+v.Tag, e.ValidationPool())
	if err != nil {
		return metrics.Confusion{}, err
	}
	tpl := TemplateFromMeasurements(valMeas, e.DS.Classes, e.Scn.TemplateM, hpc.AllEvents())
	det, err := detect.Fit("gmm", tpl, detect.DefaultConfig())
	if err != nil {
		return metrics.Confusion{}, err
	}
	testMeas, err := e.measureCached(meas, "test-clean-"+v.Tag, e.DS.Test)
	if err != nil {
		return metrics.Confusion{}, err
	}
	var clean []core.Measurement
	for _, m := range testMeas {
		if spec.Targeted {
			if m.Pred == e.Scn.TargetClass && m.TrueLabel == e.Scn.TargetClass {
				clean = append(clean, m)
			}
		} else if m.Pred == m.TrueLabel {
			clean = append(clean, m)
		}
	}
	set, err := e.Craft(spec, nSources)
	if err != nil {
		return metrics.Confusion{}, err
	}
	aeMeas, err := e.measureCached(meas, fmt.Sprintf("ae-%s-n%d-%s", spec.Key(), nSources, v.Tag), fromDTOs(set.Successful))
	if err != nil {
		return metrics.Confusion{}, err
	}
	return detect.EvaluateEvent(det, event, clean, aeMeas, e.Opts.Workers), nil
}

// TruthMeasurements returns noise-free per-image counter snapshots for the
// named sample set ("validation", "test", or an attack key), used by the
// noise-protocol ablation to re-sample measurement noise without re-running
// the simulator.
func (e *Env) TruthMeasurements(which string, spec AttackSpec, nSources int) ([]core.Measurement, error) {
	truthMeas := &core.Measurer{
		Engine:  engine.NewDefault(e.Model.Clone()),
		Noise:   hpc.NoiseModel{},
		Seed:    0,
		R:       1,
		Workers: e.Opts.Workers,
	}
	switch which {
	case "validation":
		return e.measureCached(truthMeas, "validation-truth", e.ValidationPool())
	case "test":
		return e.measureCached(truthMeas, "test-clean-truth", e.DS.Test)
	case "attack":
		set, err := e.Craft(spec, nSources)
		if err != nil {
			return nil, err
		}
		return e.measureCached(truthMeas, fmt.Sprintf("ae-%s-n%d-truth", spec.Key(), nSources), fromDTOs(set.Successful))
	default:
		panic("experiments: unknown truth set " + which)
	}
}

// resampleNoise applies a measurement protocol (noise model + repeat count)
// to truth measurements, producing what a defender running that protocol
// would record. Noise is re-keyed per sample (rng.New(seed).Split(i)), so the
// resampled set is a pure function of (truth, noise, repeats, seed) for any
// worker count.
func resampleNoise(truth []core.Measurement, noise hpc.NoiseModel, repeats int, seed uint64, workers int) []core.Measurement {
	return parallel.Map(workers, truth, func(i int, m core.Measurement) core.Measurement {
		s := hpc.NewSamplerFrom(noise, rng.New(seed).Split(uint64(i)))
		return core.Measurement{Pred: m.Pred, TrueLabel: m.TrueLabel, Counts: s.MeasureMean(m.Counts, repeats), Conf: m.Conf}
	})
}

// engineCoRunner builds a co-runner config (helper for the ablation grids).
func engineCoRunner(everyN, burst int) engine.CoRunnerConfig {
	return engine.CoRunnerConfig{EveryN: everyN, Burst: burst, FootprintB: 1 << 20, Seed: 7}
}
