// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) plus the ablations listed in DESIGN.md. Each
// experiment is a function that assembles its workload from a Scenario
// environment, runs the AdvHunter pipeline, and renders the same rows or
// series the paper reports.
//
// Everything expensive — model training, adversarial-example crafting, and
// instrumented measurement — is cached on disk under the options' cache
// directory, keyed by scenario and workload, so iterating on an experiment
// re-uses prior work. All workloads are deterministic, which is what makes
// the cache sound.
package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"

	"advhunter/internal/attack"
	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/engine"
	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
	"advhunter/internal/train"
	"advhunter/internal/uarch/hpc"
)

// Scenario describes one evaluation setting of Table 1 (plus the Figure-1
// case study).
type Scenario struct {
	ID      string
	Dataset string
	Arch    string
	// TargetClass is the class targeted attacks steer toward (the paper's
	// 'shirt' / 'frog' / 'speed limit (30km/h)' choices).
	TargetClass int
	// TemplateM is the per-category validation size used by default
	// (Figure 6 reports where the F1 saturates; these match).
	TemplateM int
	// Sizing of the synthetic splits.
	TrainPerClass, TestPerClass, ValPerClass int
	// Training hyperparameters.
	LearningRate   float64
	Epochs         int
	TargetAccuracy float64
	Seed           uint64
}

// Scenarios lists the paper's three evaluation settings and the Figure-1
// case-study network.
var Scenarios = map[string]Scenario{
	"S1": {
		ID: "S1", Dataset: "fashionmnist", Arch: "efficientnet",
		TargetClass:   6, // shirt
		TemplateM:     30,
		TrainPerClass: 40, TestPerClass: 20, ValPerClass: 90,
		LearningRate: 0.05, Epochs: 12, TargetAccuracy: 0.9999, Seed: 101,
	},
	"S2": {
		ID: "S2", Dataset: "cifar10", Arch: "resnet18",
		TargetClass:   6, // frog
		TemplateM:     40,
		TrainPerClass: 40, TestPerClass: 20, ValPerClass: 90,
		LearningRate: 0.05, Epochs: 12, TargetAccuracy: 0.9999, Seed: 102,
	},
	"S3": {
		ID: "S3", Dataset: "gtsrb", Arch: "densenet",
		TargetClass:   1, // speed limit (30km/h)
		TemplateM:     60,
		TrainPerClass: 30, TestPerClass: 8, ValPerClass: 80,
		LearningRate: 0.05, Epochs: 10, TargetAccuracy: 0.9999, Seed: 103,
	},
	// CS is the Figure-1 case study: the 4-conv/2-FC CNN on CIFAR-10.
	"CS": {
		ID: "CS", Dataset: "cifar10", Arch: "simplecnn",
		TargetClass:   2, // bird
		TemplateM:     40,
		TrainPerClass: 40, TestPerClass: 20, ValPerClass: 90,
		LearningRate: 0.02, Epochs: 25, TargetAccuracy: 0.9999, Seed: 104,
	},
}

// Options configure an experiment run.
type Options struct {
	// CacheDir holds trained models and measurement caches. Empty disables
	// caching (everything is recomputed).
	CacheDir string
	// Quick shrinks workloads (fewer attack sources, fewer resamples) for
	// use in tests; published numbers use Quick=false.
	Quick bool
	// Workers bounds the concurrency of measurement, attack crafting,
	// evaluation, and variant sweeps: <= 0 selects runtime.GOMAXPROCS(0),
	// 1 forces serial execution. Results are identical for any value.
	Workers int
	// Log receives progress lines; nil silences them.
	Log io.Writer
}

// logf writes a progress line if a log sink is configured.
func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Env is a materialised scenario: data, a converged model, and the
// instrumented measurer.
type Env struct {
	Scn      Scenario
	Opts     Options
	DS       *data.Dataset
	Model    *models.Model
	Meas     *core.Measurer
	CleanAcc float64

	valOnce sync.Once
	valPool []data.Sample
}

// cachePath returns a path under the scenario's schema-versioned cache
// directory, or "" when caching is disabled.
func (e *Env) cachePath(name string) string {
	if e.Opts.CacheDir == "" {
		return ""
	}
	return filepath.Join(e.Opts.CacheDir, cacheVersionDir, e.Scn.ID, name)
}

// testScenarioID, when non-empty, redirects every LoadEnv call to the named
// scenario. The registry smoke test sets it so each registered experiment —
// most hard-code S1/S2/S3 — exercises its full pipeline on the miniature
// TEST scenario instead of training the real models.
var testScenarioID string

// LoadEnv builds (or restores from cache) the scenario environment.
func LoadEnv(id string, opts Options) (*Env, error) {
	if testScenarioID != "" {
		if _, ok := Scenarios[id]; ok {
			id = testScenarioID
		}
	}
	scn, ok := Scenarios[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q", id)
	}
	ds, err := data.Synth(scn.Dataset, scn.Seed, scn.TrainPerClass, scn.TestPerClass)
	if err != nil {
		return nil, err
	}
	m, err := models.Build(scn.Arch, ds.C, ds.H, ds.W, ds.Classes, scn.Seed)
	if err != nil {
		return nil, err
	}
	env := &Env{Scn: scn, Opts: opts, DS: ds, Model: m}

	cfg := train.DefaultConfig()
	cfg.Epochs = scn.Epochs
	cfg.LearningRate = scn.LearningRate
	cfg.TargetAccuracy = scn.TargetAccuracy
	cfg.Seed = scn.Seed

	ckpt := env.cachePath("model.gob")
	if ckpt != "" {
		res, trained, err := train.Cached(m, ds, cfg, ckpt)
		if err != nil {
			return nil, fmt.Errorf("experiments: training %s: %w", id, err)
		}
		if trained {
			opts.logf("[%s] trained %s/%s to %.2f%% test accuracy (%d epochs)",
				id, scn.Dataset, scn.Arch, 100*res.TestAccuracy, res.Epochs)
		} else {
			opts.logf("[%s] loaded cached model (%.2f%% test accuracy)", id, 100*res.TestAccuracy)
		}
		env.CleanAcc = res.TestAccuracy
	} else {
		res := train.SGD(m, ds, cfg)
		env.CleanAcc = res.TestAccuracy
	}

	env.Meas = core.NewMeasurer(engine.NewDefault(m), scn.Seed^0xbeef)
	env.Meas.Workers = opts.Workers
	return env, nil
}

// ValidationPool returns the defender's clean validation images —
// ValPerClass per category, generated independently of train and test.
// Safe to call from concurrent variant sweeps (initialised once).
func (e *Env) ValidationPool() []data.Sample {
	e.valOnce.Do(func() {
		pool := data.MustSynth(e.Scn.Dataset, e.Scn.Seed^0x5a5a, e.Scn.ValPerClass, 0)
		e.valPool = pool.Train
	})
	return e.valPool
}

// measureCached measures samples with the given measurer, caching under key.
func (e *Env) measureCached(meas *core.Measurer, key string, samples []data.Sample) ([]core.Measurement, error) {
	path := e.cachePath("meas-" + key + ".gob")
	if path != "" {
		var cached []core.Measurement
		if err := loadGob(path, &cached); err == nil && len(cached) == len(samples) {
			return cached, nil
		}
	}
	e.Opts.logf("[%s] measuring %d images (%s)…", e.Scn.ID, len(samples), key)
	ms := core.MeasureSet(meas, samples)
	if path != "" {
		if err := saveGob(path, ms); err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// ValidationMeasurements measures the full validation pool (cached).
func (e *Env) ValidationMeasurements() ([]core.Measurement, error) {
	return e.measureCached(e.Meas, "validation", e.ValidationPool())
}

// TestMeasurements measures the full clean test split (cached).
func (e *Env) TestMeasurements() ([]core.Measurement, error) {
	return e.measureCached(e.Meas, "test-clean", e.DS.Test)
}

// TemplateFromMeasurements assembles the offline template from the first m
// measurements bucketed under each predicted category.
func TemplateFromMeasurements(ms []core.Measurement, classes, m int, events []hpc.Event) *core.Template {
	t := core.NewTemplate(classes, events)
	taken := make([]int, classes)
	for _, meas := range ms {
		if meas.Pred < 0 || meas.Pred >= classes || taken[meas.Pred] >= m {
			continue
		}
		t.Add(meas.Pred, projectCounts(meas.Counts), meas.Conf)
		taken[meas.Pred]++
	}
	return t
}

// projectCounts is the identity today but gives a single point to narrow
// events later.
func projectCounts(c hpc.Counts) hpc.Counts { return c }

// Detector fits the default AdvHunter detector (the paper's per-event GMM
// backend) over all events with the scenario's template size.
func (e *Env) Detector() (*detect.Fitted, error) {
	return e.DetectorKind("gmm", detect.DefaultConfig())
}

// DetectorKind fits any registered detector backend over all events with the
// scenario's template size — the entry point of the backend-comparison
// experiment.
func (e *Env) DetectorKind(kind string, cfg detect.Config) (*detect.Fitted, error) {
	ms, err := e.ValidationMeasurements()
	if err != nil {
		return nil, err
	}
	tpl := TemplateFromMeasurements(ms, e.DS.Classes, e.Scn.TemplateM, hpc.AllEvents())
	return detect.Fit(kind, tpl, cfg)
}

// AttackSpec names a crafted adversarial workload.
type AttackSpec struct {
	// Kind is "fgsm", "pgd" or "deepfool".
	Kind string
	// Eps is the attack strength (ignored by deepfool).
	Eps float64
	// Targeted selects the targeted variant (toward the scenario target).
	Targeted bool
}

// Key renders a stable cache key.
func (a AttackSpec) Key() string {
	v := "u"
	if a.Targeted {
		v = "t"
	}
	return fmt.Sprintf("%s-%s-%g", a.Kind, v, a.Eps)
}

// String renders the paper-style description.
func (a AttackSpec) String() string {
	v := "untargeted"
	if a.Targeted {
		v = "targeted"
	}
	if a.Kind == "deepfool" {
		return fmt.Sprintf("DeepFool (%s)", v)
	}
	return fmt.Sprintf("%s %s ε=%g", kindName(a.Kind), v, a.Eps)
}

func kindName(k string) string {
	switch k {
	case "fgsm":
		return "FGSM"
	case "pgd":
		return "PGD"
	case "mim":
		return "MIM"
	case "deepfool":
		return "DeepFool"
	case "noise":
		return "random noise"
	}
	return k
}

// build constructs the attack object.
func (a AttackSpec) build(target int, seed uint64) (attack.Attack, error) {
	switch a.Kind {
	case "fgsm":
		if a.Targeted {
			return attack.NewTargetedFGSM(a.Eps, target), nil
		}
		return attack.NewFGSM(a.Eps), nil
	case "pgd":
		if a.Targeted {
			return attack.NewTargetedPGD(a.Eps, target, rng.New(seed)), nil
		}
		return attack.NewPGD(a.Eps, rng.New(seed)), nil
	case "mim":
		if a.Targeted {
			return attack.NewTargetedMIM(a.Eps, target), nil
		}
		return attack.NewMIM(a.Eps), nil
	case "deepfool":
		if a.Targeted {
			return attack.NewTargetedDeepFool(target), nil
		}
		return attack.NewDeepFool(), nil
	case "noise":
		// Control, not an attack: bounded random perturbation.
		return attack.NewRandomNoise(a.Eps, rng.New(seed)), nil
	default:
		return nil, fmt.Errorf("experiments: unknown attack kind %q", a.Kind)
	}
}

// AttackResult is a crafted-and-measured adversarial workload. Only
// successful adversarial examples (those achieving the attack goal) are
// measured — they are the inputs AdvHunter must flag.
type AttackResult struct {
	Spec AttackSpec
	// SuccessRate and ModelAccuracy summarise the attack itself (the
	// "effectiveness" series of Figure 4).
	SuccessRate   float64
	ModelAccuracy float64
	// Meas holds one measurement per successful adversarial example;
	// TrueLabel carries the source category.
	Meas []core.Measurement
}

// attackSources selects the attack's source images from the test split:
// correctly-classified images, excluding the target class for targeted
// attacks, capped at n and balanced across source categories (round-robin)
// so per-category evaluations like Table 2 see every class.
func (e *Env) attackSources(targeted bool, n int) []data.Sample {
	buckets := data.ByClass(e.DS.Test, e.DS.Classes)
	var out []data.Sample
	for depth := 0; len(out) < n; depth++ {
		found := false
		for c := 0; c < e.DS.Classes && len(out) < n; c++ {
			if targeted && c == e.Scn.TargetClass {
				continue
			}
			if depth >= len(buckets[c]) {
				continue
			}
			s := buckets[c][depth]
			found = true
			if e.Model.Predict(s.X) != s.Label {
				continue
			}
			out = append(out, s)
		}
		if !found {
			break // every bucket exhausted
		}
	}
	return out
}

// sampleDTO is the gob-serialisable form of a data.Sample.
type sampleDTO struct {
	Data  []float64
	Shape []int
	Label int
}

func toDTOs(ss []data.Sample) []sampleDTO {
	out := make([]sampleDTO, len(ss))
	for i, s := range ss {
		out[i] = sampleDTO{Data: append([]float64(nil), s.X.Data()...), Shape: s.X.Shape(), Label: s.Label}
	}
	return out
}

func fromDTOs(ds []sampleDTO) []data.Sample {
	out := make([]data.Sample, len(ds))
	for i, d := range ds {
		out[i] = data.Sample{X: tensor.FromSlice(d.Data, d.Shape...), Label: d.Label}
	}
	return out
}

// craftedSet is the cached form of one attack's crafted workload.
type craftedSet struct {
	Spec          AttackSpec
	SuccessRate   float64
	ModelAccuracy float64
	Successful    []sampleDTO
}

// Craft crafts (or loads) the successful adversarial examples for one attack
// spec. The images themselves are cached so machine-variant ablations can
// re-measure them without re-running the attacker.
func (e *Env) Craft(spec AttackSpec, nSources int) (*craftedSet, error) {
	path := e.cachePath(fmt.Sprintf("aes-%s-n%d.gob", spec.Key(), nSources))
	if path != "" {
		var cached craftedSet
		if err := loadGob(path, &cached); err == nil && cached.Spec == spec {
			return &cached, nil
		}
	}
	atk, err := spec.build(e.Scn.TargetClass, e.Scn.Seed^0x77)
	if err != nil {
		return nil, err
	}
	sources := e.attackSources(spec.Targeted, nSources)
	if len(sources) == 0 {
		return nil, fmt.Errorf("experiments: no attack sources for %s", spec.Key())
	}
	e.Opts.logf("[%s] crafting %s on %d sources…", e.Scn.ID, spec, len(sources))
	crafted := attack.CraftParallel(e.Model, atk, sources, e.Opts.Workers)
	set := &craftedSet{
		Spec:          spec,
		SuccessRate:   crafted.SuccessRate,
		ModelAccuracy: crafted.ModelAccuracy,
		Successful:    toDTOs(attack.Successful(atk, crafted)),
	}
	if path != "" {
		if err := saveGob(path, set); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// CraftSamples crafts (or loads) the successful adversarial examples for one
// attack spec and returns them as plain samples (Label carries the source
// category) WITHOUT measuring them — the load generator's adversarial
// cohorts draw inputs from these, and measurement happens inside the serving
// stack under test.
func (e *Env) CraftSamples(spec AttackSpec, nSources int) ([]data.Sample, error) {
	set, err := e.Craft(spec, nSources)
	if err != nil {
		return nil, err
	}
	return fromDTOs(set.Successful), nil
}

// Attack crafts (or loads) the workload for one attack spec and measures the
// successful adversarial examples on the default machine.
func (e *Env) Attack(spec AttackSpec, nSources int) (*AttackResult, error) {
	set, err := e.Craft(spec, nSources)
	if err != nil {
		return nil, err
	}
	meas, err := e.measureCached(e.Meas, fmt.Sprintf("ae-%s-n%d", spec.Key(), nSources), fromDTOs(set.Successful))
	if err != nil {
		return nil, err
	}
	return &AttackResult{
		Spec:          spec,
		SuccessRate:   set.SuccessRate,
		ModelAccuracy: set.ModelAccuracy,
		Meas:          meas,
	}, nil
}

// CleanTargetMeasurements returns measurements of clean test images whose
// prediction is the scenario's target class — the negatives of the targeted
// evaluation protocol.
func (e *Env) CleanTargetMeasurements() ([]core.Measurement, error) {
	all, err := e.TestMeasurements()
	if err != nil {
		return nil, err
	}
	var out []core.Measurement
	for _, m := range all {
		if m.Pred == e.Scn.TargetClass && m.TrueLabel == e.Scn.TargetClass {
			out = append(out, m)
		}
	}
	return out, nil
}

// CorrectCleanMeasurements returns measurements of correctly-classified
// clean test images — the negatives of the untargeted protocol.
func (e *Env) CorrectCleanMeasurements() ([]core.Measurement, error) {
	all, err := e.TestMeasurements()
	if err != nil {
		return nil, err
	}
	var out []core.Measurement
	for _, m := range all {
		if m.Pred == m.TrueLabel {
			out = append(out, m)
		}
	}
	return out, nil
}
