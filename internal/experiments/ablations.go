package experiments

import (
	"fmt"
	"io"

	"advhunter/internal/core"
	"advhunter/internal/data"
	"advhunter/internal/detect"
	"advhunter/internal/metrics"
	"advhunter/internal/parallel"
	"advhunter/internal/uarch/cache"
	"advhunter/internal/uarch/hpc"
)

// ablationSpec is the shared attack workload for the hardware ablations: a
// mid-strength untargeted FGSM on S2.
var ablationSpec = AttackSpec{Kind: "fgsm", Eps: 0.1}

// ablationSources returns the source-image budget for ablation workloads.
func ablationSources(opts Options) int {
	if opts.Quick {
		return 30
	}
	return 100
}

// AblationRow is one configuration's detection outcome.
type AblationRow struct {
	Config string
	Event  hpc.Event
	F1     float64
	Acc    float64
}

// AblationResult is a generic named list of configuration outcomes.
type AblationResult struct {
	Title string
	Note  string
	Rows  []AblationRow
}

// Render writes the ablation table.
func (r *AblationResult) Render(w io.Writer) {
	heading(w, "%s", r.Title)
	t := newTable("configuration", "event", "accuracy", "F1")
	for _, row := range r.Rows {
		t.addf(row.Config, row.Event.String(), pct(row.Acc), f4(row.F1))
	}
	t.render(w)
	if r.Note != "" {
		fmt.Fprintln(w, r.Note)
	}
}

// AblationReplacement sweeps the LLC replacement policy (beyond the paper:
// does the side channel survive non-LRU caches?).
func AblationReplacement(opts Options) (*AblationResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Title: "Ablation: LLC replacement policy vs detection (S2, " + ablationSpec.String() + ")",
		Note:  "The signal is traffic-volume driven, so it should survive any reasonable policy.",
	}
	for _, pol := range []cache.Policy{cache.LRU, cache.PLRU, cache.SRRIP, cache.Random} {
		v := DefaultVariant()
		v.Tag = "llc-" + pol.String()
		v.Machine.Hierarchy.LLC.Policy = pol
		v.Machine.Hierarchy.LLC.Seed = 42
		conf, err := env.VariantEvaluation(v, ablationSpec, ablationSources(opts), hpc.CacheMisses)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Config: "LLC policy " + pol.String(), Event: hpc.CacheMisses,
			F1: conf.F1(), Acc: conf.Accuracy(),
		})
	}
	return res, nil
}

// AblationPrefetch sweeps L1D prefetchers (beyond the paper: prefetching
// perturbs demand-miss counts — does it mask the channel?).
func AblationPrefetch(opts Options) (*AblationResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Title: "Ablation: L1D prefetcher vs detection (S2, " + ablationSpec.String() + ")",
		Note:  "Prefetchers move fills earlier but do not hide value-dependent traffic volume.",
	}
	type pf struct {
		name  string
		build func() cache.Prefetcher
	}
	for _, p := range []pf{
		{"none", func() cache.Prefetcher { return nil }},
		{"next-line", func() cache.Prefetcher { return &cache.NextLinePrefetcher{LineB: 64} }},
		{"stride(2)", func() cache.Prefetcher { return &cache.StridePrefetcher{LineB: 64, Degree: 2} }},
	} {
		v := DefaultVariant()
		v.Tag = "pf-" + p.name
		v.Machine.Hierarchy.L1DPrefetcher = p.build()
		conf, err := env.VariantEvaluation(v, ablationSpec, ablationSources(opts), hpc.CacheMisses)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Config: "prefetcher " + p.name, Event: hpc.CacheMisses,
			F1: conf.F1(), Acc: conf.Accuracy(),
		})
	}
	return res, nil
}

// AblationQuant sweeps the deployed storage precision (beyond the paper:
// how much sparsity must the runtime expose for the channel to work?).
func AblationQuant(opts Options) (*AblationResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Title: "Ablation: tensor storage precision vs detection (S2, " + ablationSpec.String() + ")",
		Note:  "Lower-precision storage zeroes more activations, widening the data-flow side channel.",
	}
	for _, q := range []struct {
		levels int
		name   string
	}{
		{0, "float (exact zeros only)"},
		{127, "int8"},
		{15, "int4"},
		{7, "int3 (default)"},
	} {
		v := DefaultVariant()
		v.Tag = fmt.Sprintf("quant-%d", q.levels)
		v.Machine.QuantLevels = q.levels
		conf, err := env.VariantEvaluation(v, ablationSpec, ablationSources(opts), hpc.CacheMisses)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Config: q.name, Event: hpc.CacheMisses,
			F1: conf.F1(), Acc: conf.Accuracy(),
		})
	}
	return res, nil
}

// AblationBranchy compares SIMD (branchless) kernels against naive scalar
// kernels: with per-element branches, branch-misses become a side channel of
// their own (beyond the paper).
func AblationBranchy(opts Options) (*AblationResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Title: "Ablation: kernel style vs branch-miss leakage (S2, " + ablationSpec.String() + ")",
		Note: "Production SIMD kernels leave branch-misses uninformative (the paper's finding);\n" +
			"naively compiled scalar kernels leak the activation pattern through the predictor too.",
	}
	for _, b := range []struct {
		branchy bool
		name    string
	}{
		{false, "SIMD kernels (default)"},
		{true, "scalar branchy kernels"},
	} {
		v := DefaultVariant()
		v.Tag = fmt.Sprintf("branchy-%v", b.branchy)
		v.Machine.BranchyKernels = b.branchy
		for _, ev := range []hpc.Event{hpc.BranchMisses, hpc.CacheMisses} {
			conf, err := env.VariantEvaluation(v, ablationSpec, ablationSources(opts), ev)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, AblationRow{
				Config: b.name, Event: ev, F1: conf.F1(), Acc: conf.Accuracy(),
			})
		}
	}
	return res, nil
}

// NoisePoint is one cell of the measurement-protocol sweep.
type NoisePoint struct {
	NoiseScale float64
	R          int
	F1         float64
}

// NoiseAblationResult sweeps background-noise intensity and the repetition
// count R, quantifying why the paper repeats each measurement (R=10).
type NoiseAblationResult struct {
	Points []NoisePoint
}

// AblationNoise runs the protocol sweep on cached noise-free counts.
func AblationNoise(opts Options) (*NoiseAblationResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	n := ablationSources(opts)
	valTruth, err := env.TruthMeasurements("validation", ablationSpec, n)
	if err != nil {
		return nil, err
	}
	testTruth, err := env.TruthMeasurements("test", ablationSpec, n)
	if err != nil {
		return nil, err
	}
	aeTruth, err := env.TruthMeasurements("attack", ablationSpec, n)
	if err != nil {
		return nil, err
	}
	scales := []float64{0.5, 1, 2, 4}
	repeats := []int{1, 5, 10, 20}
	if opts.Quick {
		scales = []float64{1, 4}
		repeats = []int{1, 10}
	}
	type cell struct {
		sc  float64
		rep int
	}
	var cells []cell
	for _, sc := range scales {
		for _, rep := range repeats {
			cells = append(cells, cell{sc, rep})
		}
	}
	// Every grid cell refits its own detector from independently resampled
	// truth, so the sweep fans out per cell; the inner passes stay serial.
	type outcome struct {
		p   NoisePoint
		err error
	}
	outs := parallel.Map(opts.Workers, cells, func(_ int, c cell) outcome {
		noise := hpc.DefaultNoise()
		noise.Rel *= c.sc
		for e := range noise.EventRel {
			noise.EventRel[e] *= c.sc
			noise.AbsFloor[e] *= c.sc
		}
		seed := uint64(c.sc*1000) ^ uint64(c.rep)<<8
		val := resampleNoise(valTruth, noise, c.rep, seed^1, 1)
		tpl := TemplateFromMeasurements(val, env.DS.Classes, env.Scn.TemplateM, hpc.AllEvents())
		det, err := detect.Fit("gmm", tpl, detect.DefaultConfig())
		if err != nil {
			return outcome{err: err}
		}
		test := resampleNoise(testTruth, noise, c.rep, seed^2, 1)
		var clean []core.Measurement
		for _, m := range test {
			if m.Pred == m.TrueLabel {
				clean = append(clean, m)
			}
		}
		adv := resampleNoise(aeTruth, noise, c.rep, seed^3, 1)
		conf := detect.EvaluateEvent(det, hpc.CacheMisses, clean, adv, 1)
		return outcome{p: NoisePoint{NoiseScale: c.sc, R: c.rep, F1: conf.F1()}}
	})
	res := &NoiseAblationResult{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		res.Points = append(res.Points, o.p)
	}
	return res, nil
}

// Render writes the grid.
func (r *NoiseAblationResult) Render(w io.Writer) {
	heading(w, "Ablation: measurement noise scale × repetition count R (S2, %s)", ablationSpec)
	t := newTable("noise scale", "R", "F1 (cache-misses)")
	for _, p := range r.Points {
		t.addf(fmt.Sprintf("%.1fx", p.NoiseScale), fmt.Sprintf("%d", p.R), f4(p.F1))
	}
	t.render(w)
	fmt.Fprintln(w, "Repeating measurements (the paper's R=10) recovers detection quality lost to")
	fmt.Fprintln(w, "background contamination; heavy noise with R=1 degrades the detector most.")
}

// DetectorComparisonResult compares detector variants on the same workload.
type DetectorComparisonResult struct {
	Rows []AblationRow
}

// AblationDetectors compares the paper's BIC-selected GMM against a
// single-Gaussian template, OR-fusion over all events, a joint multivariate
// GMM, and the soft-label confidence baseline the paper argues vendors
// cannot deploy.
func AblationDetectors(opts Options) (*DetectorComparisonResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	n := ablationSources(opts)
	valMeas, err := env.ValidationMeasurements()
	if err != nil {
		return nil, err
	}
	tpl := TemplateFromMeasurements(valMeas, env.DS.Classes, env.Scn.TemplateM, hpc.AllEvents())
	clean, err := env.CorrectCleanMeasurements()
	if err != nil {
		return nil, err
	}
	ar, err := env.Attack(ablationSpec, n)
	if err != nil {
		return nil, err
	}
	res := &DetectorComparisonResult{}
	add := func(name string, ev hpc.Event, conf metrics.Confusion) {
		res.Rows = append(res.Rows, AblationRow{Config: name, Event: ev, F1: conf.F1(), Acc: conf.Accuracy()})
	}

	// Paper detector: BIC-selected GMM on cache-misses.
	det, err := detect.Fit("gmm", tpl, detect.DefaultConfig())
	if err != nil {
		return nil, err
	}
	add("GMM + BIC (paper)", hpc.CacheMisses, detect.EvaluateEvent(det, hpc.CacheMisses, clean, ar.Meas, env.Opts.Workers))

	// Single-Gaussian template.
	cfg1 := detect.DefaultConfig()
	cfg1.ForceK = 1
	det1, err := detect.Fit("gmm", tpl, cfg1)
	if err != nil {
		return nil, err
	}
	add("single Gaussian (K=1)", hpc.CacheMisses, detect.EvaluateEvent(det1, hpc.CacheMisses, clean, ar.Meas, env.Opts.Workers))

	// OR-fusion across all events: the same per-event GMM detector, decided
	// by any channel exceeding its threshold.
	anyFlag := func(v detect.Verdict) bool { return v.AnyFlag() }
	add("OR over all events", hpc.NumEvents, detect.EvaluateBy(det, anyFlag, clean, ar.Meas, env.Opts.Workers))

	// Joint multivariate GMM over the data-cache events.
	cfgF := detect.DefaultConfig()
	cfgF.FusionEvents = []hpc.Event{hpc.CacheMisses, hpc.L1DLoadMisses, hpc.LLCLoadMisses}
	fus, err := detect.Fit("fusion", tpl, cfgF)
	if err != nil {
		return nil, err
	}
	add("multivariate GMM fusion", hpc.NumEvents, detect.Evaluate(fus, clean, ar.Meas, env.Opts.Workers))

	// Soft-label confidence baseline (requires access the threat model
	// forbids; shown to quantify the cost of hard-label-only detection).
	cd, err := detect.Fit("confidence", tpl, detect.DefaultConfig())
	if err != nil {
		return nil, err
	}
	add("confidence baseline (soft-label)", hpc.NumEvents, detect.Evaluate(cd, clean, ar.Meas, env.Opts.Workers))
	return res, nil
}

// Render writes the comparison.
func (r *DetectorComparisonResult) Render(w io.Writer) {
	heading(w, "Ablation: detector variants (S2, %s)", ablationSpec)
	t := newTable("detector", "signal", "accuracy", "F1")
	for _, row := range r.Rows {
		sig := row.Event.String()
		if row.Event == hpc.NumEvents {
			sig = "(multiple)"
		}
		t.addf(row.Config, sig, pct(row.Acc), f4(row.F1))
	}
	t.render(w)
}

// AblationCoRunner sweeps mechanically injected shared-LLC contention from a
// co-located process (beyond the paper: can a noisy neighbour mask the
// channel?). The detector's template is refitted under each contention
// level, as a real defender calibrating on the deployed machine would.
func AblationCoRunner(opts Options) (*AblationResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Title: "Ablation: co-runner LLC contention vs detection (S2, " + ablationSpec.String() + ")",
		Note: "Contention inflates and jitters the LLC counters; the template absorbs the mean\n" +
			"shift, so detection degrades only once the jitter rivals the class signal.",
	}
	for _, c := range []struct {
		name   string
		everyN int
		burst  int
	}{
		{"idle machine", 0, 0},
		{"light co-runner (1/64 accesses)", 64, 2},
		{"busy co-runner (1/16 accesses)", 16, 4},
		{"thrashing co-runner (1/4 accesses)", 4, 8},
	} {
		v := DefaultVariant()
		v.Tag = fmt.Sprintf("corun-%d-%d", c.everyN, c.burst)
		v.Machine.CoRunner = engineCoRunner(c.everyN, c.burst)
		conf, err := env.VariantEvaluation(v, ablationSpec, ablationSources(opts), hpc.CacheMisses)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Config: c.name, Event: hpc.CacheMisses, F1: conf.F1(), Acc: conf.Accuracy(),
		})
	}
	return res, nil
}

// ControlNoiseResult is the random-perturbation control: noisy-but-benign
// inputs must not trip the detector the way adversarial ones do.
type ControlNoiseResult struct {
	Eps            float64
	FlipRate       float64 // how often noise alone changes the prediction
	NoiseFlagRate  float64 // detector flag rate on noisy benign inputs
	CleanFlagRate  float64 // detector flag rate on unmodified clean inputs
	AttackFlagRate float64 // detector flag rate on real AEs (reference)
}

// ControlNoise runs the control experiment.
func ControlNoise(opts Options) (*ControlNoiseResult, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	det, err := env.Detector()
	if err != nil {
		return nil, err
	}
	n := ablationSources(opts)
	flagRate := func(ms []core.Measurement) float64 {
		if len(ms) == 0 {
			return 0
		}
		flags := 0
		for _, m := range ms {
			if det.Detect(m).FlaggedBy(hpc.CacheMisses) {
				flags++
			}
		}
		return float64(flags) / float64(len(ms))
	}

	eps := ablationSpec.Eps
	noiseSpec := AttackSpec{Kind: "noise", Eps: eps}
	noisySet, err := env.Craft(noiseSpec, n)
	if err != nil {
		return nil, err
	}
	// For the control we measure ALL noisy images (not just "successful"
	// ones — noise has no goal); re-craft the full set from sources.
	noisyAll, err := env.measureCached(env.Meas, fmt.Sprintf("noisy-all-%g-n%d", eps, n), noisyImages(env, eps, n))
	if err != nil {
		return nil, err
	}
	clean, err := env.CorrectCleanMeasurements()
	if err != nil {
		return nil, err
	}
	ar, err := env.Attack(ablationSpec, n)
	if err != nil {
		return nil, err
	}
	return &ControlNoiseResult{
		Eps:            eps,
		FlipRate:       noisySet.SuccessRate,
		NoiseFlagRate:  flagRate(noisyAll),
		CleanFlagRate:  flagRate(clean),
		AttackFlagRate: flagRate(ar.Meas),
	}, nil
}

// noisyImages perturbs n attack-source images with bounded uniform noise.
func noisyImages(env *Env, eps float64, n int) []data.Sample {
	atk, _ := AttackSpec{Kind: "noise", Eps: eps}.build(0, env.Scn.Seed^0x1234)
	var out []data.Sample
	for _, s := range env.attackSources(false, n) {
		out = append(out, data.Sample{X: atk.Perturb(env.Model, s.X, s.Label), Label: s.Label})
	}
	return out
}

// Render writes the control summary.
func (r *ControlNoiseResult) Render(w io.Writer) {
	heading(w, "Control: bounded random noise (ε=%g) vs the detector (S2)", r.Eps)
	t := newTable("input population", "detector flag rate")
	t.addf("clean test images", pct(r.CleanFlagRate))
	t.addf(fmt.Sprintf("clean + uniform ±%g noise", r.Eps), pct(r.NoiseFlagRate))
	t.addf("adversarial examples (FGSM)", pct(r.AttackFlagRate))
	t.render(w)
	fmt.Fprintf(w, "random noise changed the prediction on %.1f%% of images (vs a gradient attack)\n", 100*r.FlipRate)
	fmt.Fprintln(w, "A sound detector separates 'adversarial' from merely 'noisy': the noise flag")
	fmt.Fprintln(w, "rate should sit near the clean rate and far below the attack rate.")
}
