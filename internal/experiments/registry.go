package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Renderable is any experiment result that can print itself.
type Renderable interface {
	Render(w io.Writer)
}

// Entry describes one runnable experiment.
type Entry struct {
	ID          string
	Description string
	Run         func(opts Options) (Renderable, error)
}

// wrap adapts a typed experiment function to the registry signature.
func wrap[T Renderable](f func(Options) (T, error)) func(Options) (Renderable, error) {
	return func(opts Options) (Renderable, error) {
		r, err := f(opts)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// Registry maps experiment IDs to their runners — one per table/figure of
// the paper plus the beyond-the-paper ablations.
var Registry = map[string]Entry{
	"table1": {"table1", "Evaluation scenarios and clean accuracies (Table 1)", wrap(Table1)},
	"fig1":   {"fig1", "Activated-neuron distributions, clean vs AEs (Figure 1)", wrap(Figure1)},
	"fig3":   {"fig3", "Core HPC event distributions under targeted FGSM (Figure 3)", wrap(Figure3)},
	"table2": {"table2", "Per-category detection across core events (Table 2)", wrap(Table2)},
	"fig4":   {"fig4", "Attack effectiveness and detection across attacks/scenarios (Figure 4)", wrap(Figure4)},
	"fig5":   {"fig5", "Cache sub-event distributions under untargeted FGSM (Figure 5)", wrap(Figure5)},
	"table3": {"table3", "F1 per cache-miss sub-event vs attack strength (Table 3)", wrap(Table3)},
	"fig6":   {"fig6", "F1 vs validation-set size with resampling (Figure 6)", wrap(Figure6)},

	"ablation-replacement": {"ablation-replacement", "LLC replacement-policy sweep (extension)", wrap(AblationReplacement)},
	"ablation-prefetch":    {"ablation-prefetch", "L1D prefetcher sweep (extension)", wrap(AblationPrefetch)},
	"ablation-quant":       {"ablation-quant", "Tensor storage-precision sweep (extension)", wrap(AblationQuant)},
	"ablation-branchy":     {"ablation-branchy", "SIMD vs scalar kernels: branch-miss leakage (extension)", wrap(AblationBranchy)},
	"ablation-noise":       {"ablation-noise", "Measurement-noise × repetition-count sweep (extension)", wrap(AblationNoise)},
	"ablation-detectors":   {"ablation-detectors", "Detector variants and baselines (extension)", wrap(AblationDetectors)},
	"ablation-corunner":    {"ablation-corunner", "Shared-LLC co-runner contention sweep (extension)", wrap(AblationCoRunner)},
	"control-noise":        {"control-noise", "Random-noise control: noisy ≠ adversarial (extension)", wrap(ControlNoise)},
	"adaptive-attacker":    {"adaptive-attacker", "AdvHunter-aware adaptive attacker sweep (extension)", wrap(AblationAdaptive)},
	"backend-comparison":   {"backend-comparison", "Every registered detector backend on one workload (extension)", wrap(BackendComparison)},
	"twin-accuracy":        {"twin-accuracy", "Analytical twin vs exact simulator: prediction error and tiered TPR/FPR (extension)", wrap(TwinAccuracy)},
}

// IDs returns the registered experiment identifiers in stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID and renders it to w.
func Run(id string, opts Options, w io.Writer) error {
	e, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	res, err := e.Run(opts)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// RunJSON executes one experiment and writes its result as indented JSON —
// the machine-readable counterpart of Run.
func RunJSON(id string, opts Options, w io.Writer) error {
	e, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	res, err := e.Run(opts)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"experiment": id, "result": res})
}
