package experiments

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal fixed-width text-table renderer for experiment output.
type table struct {
	header []string
	rows   [][]string
}

// newTable starts a table with the given column headers.
func newTable(header ...string) *table { return &table{header: header} }

// add appends a row; cells are formatted with %v.
func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// addf appends a row of pre-formatted cells.
func (t *table) addf(cells ...string) { t.rows = append(t.rows, cells) }

// render writes the table.
func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// f4 formats a score with four decimals (the paper's F1 precision).
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// heading prints an underlined section heading.
func heading(w io.Writer, format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	fmt.Fprintf(w, "\n%s\n%s\n", s, strings.Repeat("=", len(s)))
}
