package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestHeadingUnderlinesTitle(t *testing.T) {
	var buf bytes.Buffer
	heading(&buf, "Table %d: %s", 2, "per-category detection")
	lines := strings.Split(strings.Trim(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("heading rendered %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "Table 2: per-category detection" {
		t.Fatalf("title %q", lines[0])
	}
	if lines[1] != strings.Repeat("=", len(lines[0])) {
		t.Fatalf("underline %q does not match title width %d", lines[1], len(lines[0]))
	}
}

func TestPctAndF4(t *testing.T) {
	if got := pct(0.1234); got != "12.34%" {
		t.Fatalf("pct: %q", got)
	}
	if got := pct(1); got != "100.00%" {
		t.Fatalf("pct(1): %q", got)
	}
	if got := f4(0.98765); got != "0.9877" {
		t.Fatalf("f4: %q", got)
	}
}

func TestTableColumnAlignment(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("ev", "value-with-long-header")
	tb.add("cache-misses", 0.5) // float64 cells format as %.4f
	tb.addf("x", "y")
	tb.render(&buf)
	lines := strings.Split(strings.Trim(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+rule+2 rows, got %d lines:\n%s", len(lines), buf.String())
	}
	// The rule matches each column's width.
	if lines[1] != "------------  ----------------------" {
		t.Fatalf("rule %q", lines[1])
	}
	if !strings.Contains(lines[2], "0.5000") {
		t.Fatalf("float cell not rendered with 4 decimals: %q", lines[2])
	}
	// Trailing whitespace is trimmed from short rows.
	if lines[3] != "x             y" {
		t.Fatalf("row %q", lines[3])
	}
}

func TestPadWidths(t *testing.T) {
	if got := pad("ab", 5); got != "ab   " {
		t.Fatalf("pad: %q", got)
	}
	if got := pad("abcdef", 3); got != "abcdef" {
		t.Fatalf("pad must not truncate: %q", got)
	}
}
