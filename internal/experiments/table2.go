package experiments

import (
	"fmt"
	"io"

	"advhunter/internal/core"
	"advhunter/internal/detect"
	"advhunter/internal/metrics"
	"advhunter/internal/uarch/hpc"
)

// Attack-strength grids. The paper's grids (FGSM/PGD ε up to 0.5 targeted,
// 0.01–0.1 untargeted on real CIFAR-10 models) are rescaled to our synthetic
// models' robustness so that the *attack effectiveness trend* of Figure 4 —
// rising success with rising strength — is preserved.
var (
	untargetedEps = []float64{0.05, 0.1, 0.2}
	targetedEps   = []float64{0.2, 0.35, 0.5}
)

// Table2Row is one source category's detection scores across the five core
// events.
type Table2Row struct {
	Category string
	// PerEvent maps each core event to (accuracy, F1).
	Acc map[hpc.Event]float64
	F1  map[hpc.Event]float64
	N   int // number of successful AEs from this category
}

// Table2Result reproduces Table 2: per-category accuracy and F1 of
// AdvHunter for the five core HPC events in scenario S2 under targeted FGSM
// ε=0.5 (clean 'frog' vs AEs misclassified to 'frog').
type Table2Result struct {
	Spec        AttackSpec
	Target      string
	TargetedAcc float64
	Rows        []Table2Row
	Overall     Table2Row
}

// Table2 runs the per-category evaluation.
func Table2(opts Options) (*Table2Result, error) {
	env, err := LoadEnv("S2", opts)
	if err != nil {
		return nil, err
	}
	spec := AttackSpec{Kind: "fgsm", Eps: 0.5, Targeted: true}
	n := 180
	if opts.Quick {
		n = 50
	}
	ar, err := env.Attack(spec, n)
	if err != nil {
		return nil, err
	}
	det, err := env.Detector()
	if err != nil {
		return nil, err
	}
	clean, err := env.CleanTargetMeasurements()
	if err != nil {
		return nil, err
	}
	events := hpc.CoreEvents()

	// Bucket the successful AEs by source category.
	bySource := map[int][]core.Measurement{}
	for _, m := range ar.Meas {
		bySource[m.TrueLabel] = append(bySource[m.TrueLabel], m)
	}

	res := &Table2Result{
		Spec:        spec,
		Target:      classNameOf(env.Scn.Dataset, env.Scn.TargetClass),
		TargetedAcc: ar.SuccessRate,
	}
	overall := map[hpc.Event]*metrics.Confusion{}
	for _, e := range events {
		overall[e] = &metrics.Confusion{}
	}
	for c := 0; c < env.DS.Classes; c++ {
		if c == env.Scn.TargetClass || len(bySource[c]) == 0 {
			continue
		}
		row := Table2Row{
			Category: classNameOf(env.Scn.Dataset, c),
			Acc:      map[hpc.Event]float64{},
			F1:       map[hpc.Event]float64{},
			N:        len(bySource[c]),
		}
		for _, e := range events {
			conf := detect.EvaluateEvent(det, e, clean, bySource[c], env.Opts.Workers)
			row.Acc[e] = conf.Accuracy()
			row.F1[e] = conf.F1()
			overall[e].Merge(conf)
		}
		res.Rows = append(res.Rows, row)
	}
	res.Overall = Table2Row{Category: "overall", Acc: map[hpc.Event]float64{}, F1: map[hpc.Event]float64{}}
	for _, e := range events {
		res.Overall.Acc[e] = overall[e].Accuracy()
		res.Overall.F1[e] = overall[e].F1()
	}
	return res, nil
}

// Render writes the paper-style per-category table.
func (r *Table2Result) Render(w io.Writer) {
	heading(w, "Table 2: AdvHunter per core HPC event, S2, %s → '%s' (targeted adversarial accuracy %.2f%%)",
		r.Spec, r.Target, 100*r.TargetedAcc)
	events := hpc.CoreEvents()
	header := []string{"category"}
	for _, e := range events {
		header = append(header, e.String()+" acc", "F1")
	}
	t := newTable(header...)
	addRow := func(row Table2Row) {
		cells := []string{row.Category}
		for _, e := range events {
			cells = append(cells, pct(row.Acc[e]), f4(row.F1[e]))
		}
		t.addf(cells...)
	}
	for _, row := range r.Rows {
		addRow(row)
	}
	addRow(r.Overall)
	t.render(w)
	fmt.Fprintln(w, "Paper shape: ~50% accuracy / near-zero F1 for instructions, branches and")
	fmt.Fprintln(w, "branch-misses; weak-to-moderate for cache-references; ≈99% / ≈0.99 for cache-misses.")
}
