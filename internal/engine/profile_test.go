package engine

import (
	"math"
	"testing"

	"advhunter/internal/models"
	"advhunter/internal/uarch/hpc"
)

// The architectures below cover every container the walker dispatches on:
// plain Sequential (simplecnn), Residual (resnet18), SqueezeExcite + Dropout
// (efficientnet), DenseBlock (densenet), and Parallel (googlenet).
var profileArchs = []string{"simplecnn", "resnet18", "efficientnet", "densenet", "googlenet"}

// TestInferProfileDeltasTelescope verifies the leaf decomposition is exact:
// per-leaf deltas sum bit-for-bit to the counts Infer reports, for every
// container shape in the zoo.
func TestInferProfileDeltasTelescope(t *testing.T) {
	for _, arch := range profileArchs {
		m := models.MustBuild(arch, 3, 32, 32, 10, 5)
		e := NewDefault(m)
		x := randomImage(2, 3, 32, 32)

		predWant, totalWant := e.Infer(x)
		pred, total, leaves := e.InferProfile(x)
		if pred != predWant || total != totalWant {
			t.Fatalf("%s: InferProfile (pred %d, counts %v) disagrees with Infer (pred %d, counts %v)",
				arch, pred, total, predWant, totalWant)
		}
		if len(leaves) != e.NumLeaves() {
			t.Fatalf("%s: %d leaf profiles, NumLeaves() = %d", arch, len(leaves), e.NumLeaves())
		}
		var sum hpc.Counts
		for _, lp := range leaves {
			if lp.Sparsity < 0 || lp.Sparsity > 1 {
				t.Fatalf("%s: leaf %d (%s) sparsity %v out of [0,1]", arch, lp.Index, lp.Name, lp.Sparsity)
			}
			for ev := range sum {
				sum[ev] += lp.Delta[ev]
			}
		}
		if sum != total {
			t.Fatalf("%s: leaf deltas sum to %v, Infer counts %v", arch, sum, total)
		}
	}
}

// TestInferProfileDoesNotPerturbInfer guards the hook in traceLayer: a
// profiled trace must leave the engine in a state where the next plain Infer
// returns exactly the same counts as an unprofiled engine.
func TestInferProfileDoesNotPerturbInfer(t *testing.T) {
	m := models.MustBuild("resnet18", 3, 32, 32, 10, 5)
	e := NewDefault(m)
	x := randomImage(3, 3, 32, 32)
	_, want := e.Infer(x)
	e.InferProfile(x)
	if _, got := e.Infer(x); got != want {
		t.Fatalf("Infer after InferProfile returned %v, want %v", got, want)
	}
}

// TestForwardStatsMatchesTrace pins the twin's front half to the exact path:
// prediction and confidence must equal InferConf's, and the recorded
// sparsities must equal the ones the profiled trace observed.
func TestForwardStatsMatchesTrace(t *testing.T) {
	for _, arch := range profileArchs {
		m := models.MustBuild(arch, 3, 32, 32, 10, 5)
		e := NewDefault(m)
		x := randomImage(4, 3, 32, 32)

		predWant, confWant, _ := e.InferConf(x)
		_, _, leaves := e.InferProfile(x)

		sp := make([]float64, e.NumLeaves())
		pred, conf := e.ForwardStats(x, sp)
		if pred != predWant || conf != confWant {
			t.Fatalf("%s: ForwardStats (pred %d, conf %v) disagrees with InferConf (pred %d, conf %v)",
				arch, pred, conf, predWant, confWant)
		}
		names := e.LeafNames()
		for i, lp := range leaves {
			if names[i] != lp.Name {
				t.Fatalf("%s: LeafNames()[%d] = %q, profiled trace saw %q", arch, i, names[i], lp.Name)
			}
			if math.Abs(sp[i]-lp.Sparsity) != 0 {
				t.Fatalf("%s: leaf %d (%s) ForwardStats sparsity %v, trace sparsity %v",
					arch, i, lp.Name, sp[i], lp.Sparsity)
			}
		}
	}
}

// TestForwardStatsZeroAlloc gates the serve-time promise: once scratch is
// warm, the machine-free forward pass must not touch the heap.
func TestForwardStatsZeroAlloc(t *testing.T) {
	for _, arch := range []string{"resnet18", "simplecnn"} {
		m := models.MustBuild(arch, 3, 32, 32, 10, 1)
		e := NewDefault(m)
		x := randomImage(1, 3, 32, 32)
		sp := make([]float64, e.NumLeaves())
		for i := 0; i < 3; i++ {
			e.ForwardStats(x, sp)
		}
		if n := testing.AllocsPerRun(10, func() { e.ForwardStats(x, sp) }); n != 0 {
			t.Fatalf("%s: ForwardStats allocs/op = %v, want 0", arch, n)
		}
	}
}
