package engine

import (
	"math"
	"testing"

	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

func makeCounts(n int) []hpc.Counts { return make([]hpc.Counts, n) }

// batchIdentityArchs spans every structural feature the batch walk must
// mirror: plain sequential (simplecnn), residual + squeeze-excite
// (efficientnet, scenario S1), residual with projection shortcuts (resnet18,
// scenario S2), dense concatenation growth (densenet) and parallel inception
// branches (googlenet).
var batchIdentityArchs = []struct {
	arch    string
	c, h, w int
}{
	{"simplecnn", 1, 28, 28},
	{"efficientnet", 1, 28, 28},
	{"resnet18", 3, 32, 32},
	{"densenet", 3, 32, 32},
	{"googlenet", 3, 32, 32},
}

func batchInputs(arch string, c, h, w, n int) []*tensor.Tensor {
	r := rng.New(uint64(1000*n) + uint64(len(arch)))
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		xs[i] = tensor.New(c, h, w)
		r.FillNormal(xs[i].Data(), 0, 1)
	}
	return xs
}

// TestBatchIdentityInfer pins the tentpole contract: InferConfBatch over a
// micro-batch returns, for every sample, bit-identical predictions,
// confidences and HPC counts to a standalone InferConf on a fresh engine.
func TestBatchIdentityInfer(t *testing.T) {
	for _, tc := range batchIdentityArchs {
		tc := tc
		t.Run(tc.arch, func(t *testing.T) {
			t.Parallel()
			m := models.MustBuild(tc.arch, tc.c, tc.h, tc.w, 10, 7)
			for _, n := range []int{1, 3, 8, 17} {
				xs := batchInputs(tc.arch, tc.c, tc.h, tc.w, n)
				be := NewDefault(m)
				preds := make([]int, n)
				confs := make([]float64, n)
				ctB := makeCounts(n)
				be.InferConfBatch(xs, preds, confs, ctB)
				for i, x := range xs {
					se := NewDefault(m)
					wp, wc, wct := se.InferConf(x)
					if preds[i] != wp {
						t.Fatalf("batch %d sample %d: pred %d, want %d", n, i, preds[i], wp)
					}
					if math.Float64bits(confs[i]) != math.Float64bits(wc) {
						t.Fatalf("batch %d sample %d: conf %v, want %v", n, i, confs[i], wc)
					}
					if ctB[i] != wct {
						t.Fatalf("batch %d sample %d: counts\n got %+v\nwant %+v", n, i, ctB[i], wct)
					}
				}
			}
		})
	}
}

// TestBatchIdentityInferReuse runs several batches of varying width through
// ONE engine, interleaved with per-sample calls, to pin that the replay tape
// and view pools reset correctly between modes.
func TestBatchIdentityInferReuse(t *testing.T) {
	m := models.MustBuild("resnet18", 3, 32, 32, 10, 7)
	e := NewDefault(m)
	for _, n := range []int{3, 1, 8, 3} {
		xs := batchInputs("resnet18", 3, 32, 32, n)
		preds := make([]int, n)
		counts := makeCounts(n)
		e.InferBatch(xs, preds, counts)
		for i, x := range xs {
			se := NewDefault(m)
			wp, wct := se.Infer(x)
			if preds[i] != wp || counts[i] != wct {
				t.Fatalf("width %d sample %d: (%d,%+v) want (%d,%+v)", n, i, preds[i], counts[i], wp, wct)
			}
			// The shared engine must also still produce identical results on
			// the per-sample path between batched calls.
			sp, sct := e.Infer(x)
			if sp != wp || sct != wct {
				t.Fatalf("width %d sample %d: interleaved per-sample Infer diverged", n, i)
			}
		}
	}
}

// TestBatchIdentityForwardStats pins the twin-tier front half: the batched
// stats walk must reproduce per-sample sparsities, predictions and
// confidences bit-for-bit.
func TestBatchIdentityForwardStats(t *testing.T) {
	for _, tc := range batchIdentityArchs {
		tc := tc
		t.Run(tc.arch, func(t *testing.T) {
			t.Parallel()
			m := models.MustBuild(tc.arch, tc.c, tc.h, tc.w, 10, 7)
			e := NewDefault(m)
			leaves := e.NumLeaves()
			for _, n := range []int{1, 3, 8, 17} {
				xs := batchInputs(tc.arch, tc.c, tc.h, tc.w, n)
				sp := make([][]float64, n)
				for i := range sp {
					sp[i] = make([]float64, leaves)
				}
				preds := make([]int, n)
				confs := make([]float64, n)
				e.ForwardStatsBatch(xs, sp, preds, confs)
				want := make([]float64, leaves)
				se := NewDefault(m)
				for i, x := range xs {
					wp, wc := se.ForwardStats(x, want)
					if preds[i] != wp {
						t.Fatalf("batch %d sample %d: pred %d, want %d", n, i, preds[i], wp)
					}
					if math.Float64bits(confs[i]) != math.Float64bits(wc) {
						t.Fatalf("batch %d sample %d: conf %v, want %v", n, i, confs[i], wc)
					}
					for li := range want {
						if math.Float64bits(sp[i][li]) != math.Float64bits(want[li]) {
							t.Fatalf("batch %d sample %d leaf %d: sparsity %v, want %v",
								n, i, li, sp[i][li], want[li])
						}
					}
				}
			}
		})
	}
}

// TestInferBatchSteadyStateZeroAlloc gates the batched fast path the same way
// the per-sample path is gated: after one warm-up batch, batched inference
// performs no allocations.
func TestInferBatchSteadyStateZeroAlloc(t *testing.T) {
	m := models.MustBuild("simplecnn", 1, 16, 16, 10, 7)
	e := NewDefault(m)
	const n = 4
	xs := batchInputs("simplecnn", 1, 16, 16, n)
	preds := make([]int, n)
	counts := makeCounts(n)
	e.InferBatch(xs, preds, counts) // warm pools and replay tape
	allocs := testing.AllocsPerRun(20, func() {
		e.InferBatch(xs, preds, counts)
	})
	if allocs != 0 {
		t.Fatalf("steady-state InferBatch allocates %v per run, want 0", allocs)
	}
}
