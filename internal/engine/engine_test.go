package engine

import (
	"testing"

	"advhunter/internal/data"
	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

func randomImage(seed uint64, c, h, w int) *tensor.Tensor {
	x := tensor.New(c, h, w)
	rng.New(seed).FillUniform(x.Data(), 0, 1)
	return x
}

// TestPredictionMatchesModel is the engine's core correctness contract: the
// instrumented run must classify exactly like the plain forward pass, for
// every architecture in the zoo.
func TestPredictionMatchesModel(t *testing.T) {
	for _, arch := range models.Architectures() {
		m := models.MustBuild(arch, 3, 32, 32, 10, 77)
		e := NewDefault(m)
		for i := uint64(0); i < 5; i++ {
			x := randomImage(100+i, 3, 32, 32)
			got, _ := e.Infer(x)
			want := m.Predict(x)
			if got != want {
				t.Fatalf("%s: engine predicted %d, model %d", arch, got, want)
			}
		}
	}
}

func TestCountsDeterministic(t *testing.T) {
	m := models.MustBuild("simplecnn", 1, 28, 28, 10, 3)
	e := NewDefault(m)
	x := randomImage(5, 1, 28, 28)
	_, a := e.Infer(x)
	_, b := e.Infer(x)
	if a != b {
		t.Fatalf("same input produced different counts:\n%v\n%v", a, b)
	}
}

// TestInstructionAndBranchCountsInputIndependent verifies the paper's
// premise: the executed instruction stream does not depend on input values
// (predicated execution), so `instructions` and `branches` carry no signal.
func TestInstructionAndBranchCountsInputIndependent(t *testing.T) {
	m := models.MustBuild("resnet18", 3, 32, 32, 10, 4)
	e := NewDefault(m)
	_, a := e.Infer(randomImage(1, 3, 32, 32))
	_, b := e.Infer(randomImage(2, 3, 32, 32))
	if a.Get(hpc.Instructions) != b.Get(hpc.Instructions) {
		t.Fatalf("instruction counts differ: %v vs %v", a.Get(hpc.Instructions), b.Get(hpc.Instructions))
	}
	if a.Get(hpc.Branches) != b.Get(hpc.Branches) {
		t.Fatalf("branch counts differ: %v vs %v", a.Get(hpc.Branches), b.Get(hpc.Branches))
	}
}

// TestICacheInputIndependent: the fetch stream is fixed, so icache misses
// cannot distinguish inputs (the paper's Table 3 finding).
func TestICacheInputIndependent(t *testing.T) {
	m := models.MustBuild("efficientnet", 1, 28, 28, 10, 8)
	e := NewDefault(m)
	_, a := e.Infer(randomImage(3, 1, 28, 28))
	_, b := e.Infer(randomImage(4, 1, 28, 28))
	if a.Get(hpc.L1ILoadMisses) != b.Get(hpc.L1ILoadMisses) {
		t.Fatalf("icache misses differ: %v vs %v", a.Get(hpc.L1ILoadMisses), b.Get(hpc.L1ILoadMisses))
	}
}

// TestCacheTrafficIsValueDependent: inputs with different activation
// patterns must move different amounts of data — the side channel itself.
func TestCacheTrafficIsValueDependent(t *testing.T) {
	m := models.MustBuild("resnet18", 3, 32, 32, 10, 4)
	e := NewDefault(m)
	_, a := e.Infer(randomImage(11, 3, 32, 32))
	_, b := e.Infer(tensor.New(3, 32, 32)) // all-zero image: maximal sparsity
	if a.Get(hpc.CacheMisses) == b.Get(hpc.CacheMisses) {
		t.Fatal("LLC misses identical for a random and an all-zero image")
	}
	if b.Get(hpc.L1DLoadMisses) >= a.Get(hpc.L1DLoadMisses) {
		t.Fatalf("zero image did not reduce data traffic: %v vs %v",
			b.Get(hpc.L1DLoadMisses), a.Get(hpc.L1DLoadMisses))
	}
}

// TestClassConditionalSignal is the end-to-end sanity check for AdvHunter's
// premise on synthetic data: same-class images must yield closer cache-miss
// counts than cross-class images, on average.
func TestClassConditionalSignal(t *testing.T) {
	ds := data.MustSynth("cifar10", 31, 6, 0)
	m := models.MustBuild("resnet18", 3, 32, 32, 10, 4)
	e := NewDefault(m)
	byClass := data.ByClass(ds.Train, ds.Classes)
	miss := func(x *tensor.Tensor) float64 {
		_, c := e.Infer(x)
		return c.Get(hpc.CacheMisses)
	}
	// Use two classes with 6 samples each.
	var c0, c1 []float64
	for _, s := range byClass[0] {
		c0 = append(c0, miss(s.X))
	}
	for _, s := range byClass[5] {
		c1 = append(c1, miss(s.X))
	}
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	spread := func(v []float64, mu float64) float64 {
		s := 0.0
		for _, x := range v {
			d := x - mu
			s += d * d
		}
		return s / float64(len(v))
	}
	m0, m1 := mean(c0), mean(c1)
	gap := (m0 - m1) * (m0 - m1)
	within := (spread(c0, m0) + spread(c1, m1)) / 2
	t.Logf("class means %.0f vs %.0f, within-class var %.0f", m0, m1, within)
	if gap < within/4 {
		t.Fatalf("cache-miss counts carry no class signal: gap² %.1f, within-var %.1f", gap, within)
	}
}

func TestArenaWraps(t *testing.T) {
	var a arena
	first := a.alloc(arenaSize - lineB)
	second := a.alloc(128) // must wrap
	if first != arenaBase || second != arenaBase {
		t.Fatalf("arena wrap: %x then %x", first, second)
	}
}

func TestMakeRefZeroMetadata(t *testing.T) {
	x := tensor.New(1, 1, 2, 16) // two rows of 16 → 4 lines
	for i := 0; i < 16; i++ {
		x.Set(1.0, 0, 0, 1, i) // second row nonzero
	}
	ref := makeRef(x, 0x1000, 0)
	if ref.lines() != 4 {
		t.Fatalf("lines = %d", ref.lines())
	}
	if !ref.lineZero[0] || !ref.lineZero[1] || ref.lineZero[2] || ref.lineZero[3] {
		t.Fatalf("lineZero = %v", ref.lineZero)
	}
	if !ref.rowZero[0][0] || ref.rowZero[0][1] {
		t.Fatalf("rowZero = %v", ref.rowZero)
	}
}

func TestLayoutDisjointAndDeterministic(t *testing.T) {
	m := models.MustBuild("googlenet", 3, 32, 32, 10, 2)
	lo1 := buildLayout(m.Net)
	lo2 := buildLayout(m.Net)
	seen := map[uint64]bool{}
	for l, addr := range lo1.code {
		if seen[addr] {
			t.Fatalf("duplicate code address %x", addr)
		}
		seen[addr] = true
		if lo2.code[l] != addr {
			t.Fatal("layout not deterministic")
		}
	}
	wseen := map[uint64]bool{}
	for _, addr := range lo1.weight {
		if wseen[addr] {
			t.Fatalf("duplicate weight address %x", addr)
		}
		wseen[addr] = true
	}
}

// The inference benchmarks warm the engine before the timed loop: the first
// few traces grow the scratch arena and tape pools to their high-water marks,
// and without the warm-up those one-time allocations amortise over b.N and
// report a spurious nonzero allocs/op at small N (the "alloc regression" is
// a measurement artifact, not a leak — TestInferSteadyStateZeroAlloc and the
// batched gate pin the real steady state at zero).
func BenchmarkEngineInferSimpleCNN(b *testing.B) {
	m := models.MustBuild("simplecnn", 3, 32, 32, 10, 1)
	e := NewDefault(m)
	x := randomImage(1, 3, 32, 32)
	for i := 0; i < 3; i++ {
		_, _ = e.Infer(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = e.Infer(x)
	}
}

func BenchmarkEngineInferResNet18(b *testing.B) {
	m := models.MustBuild("resnet18", 3, 32, 32, 10, 1)
	e := NewDefault(m)
	x := randomImage(1, 3, 32, 32)
	for i := 0; i < 3; i++ {
		_, _ = e.Infer(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = e.Infer(x)
	}
}

// BenchmarkEngineInferBatchResNet18 is the batched counterpart: one
// InferBatch of width 8 per iteration, so ns/op is directly comparable to
// 8× the per-sample benchmark. Steady state must stay allocation-free —
// the batch views, tapes and stat buffers are all pooled.
func BenchmarkEngineInferBatchResNet18(b *testing.B) {
	m := models.MustBuild("resnet18", 3, 32, 32, 10, 1)
	e := NewDefault(m)
	const n = 8
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		xs[i] = randomImage(uint64(i+1), 3, 32, 32)
	}
	preds := make([]int, n)
	counts := make([]hpc.Counts, n)
	e.InferBatch(xs, preds, counts)
	e.InferBatch(xs, preds, counts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.InferBatch(xs, preds, counts)
	}
}

// TestDTLBLessInputSensitiveThanCache: ZCA-absorbed accesses still translate
// (the zero tags are physically indexed), so translation misses react far
// less to input content than LLC misses do — only engine-level predicated
// weight-load elision (which skips the access entirely) moves them.
func TestDTLBLessInputSensitiveThanCache(t *testing.T) {
	m := models.MustBuild("resnet18", 3, 32, 32, 10, 4)
	e := NewDefault(m)
	_, a := e.Infer(randomImage(21, 3, 32, 32))
	_, b := e.Infer(tensor.New(3, 32, 32)) // extreme sparsity
	ta, tb := a.Get(hpc.DTLBLoadMisses), b.Get(hpc.DTLBLoadMisses)
	ca, cb := a.Get(hpc.CacheMisses), b.Get(hpc.CacheMisses)
	if ta == 0 {
		t.Fatal("dTLB never missed; model too small or TLB disabled")
	}
	rel := func(x, y float64) float64 {
		d := (x - y) / x
		if d < 0 {
			return -d
		}
		return d
	}
	if rel(ta, tb) >= rel(ca, cb) {
		t.Fatalf("dTLB misses (%.1f%%) vary as much as cache misses (%.1f%%)",
			100*rel(ta, tb), 100*rel(ca, cb))
	}
}
