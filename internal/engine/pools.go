package engine

// slicePool hands out reusable slices in call order. The engine's replay of a
// fixed model is a deterministic sequence of trace operations, so the i-th
// get() of one inference requests the same length as the i-th get() of the
// next; after the first inference every request is served from the recorded
// slot without allocating. Returned slices are NOT cleared — callers fully
// overwrite them.
type slicePool[T any] struct {
	slots [][]T
	i     int
}

// get returns a slice of length n from the next slot.
func (p *slicePool[T]) get(n int) []T {
	if p.i == len(p.slots) {
		p.slots = append(p.slots, make([]T, n))
	}
	s := p.slots[p.i]
	p.i++
	if cap(s) < n {
		s = make([]T, n)
		p.slots[p.i-1] = s
	}
	return s[:n]
}

// reset rewinds the pool for the next inference, keeping the slots.
func (p *slicePool[T]) reset() { p.i = 0 }
