package engine

import (
	"testing"

	"advhunter/internal/models"
)

// TestInferSteadyStateZeroAlloc gates the fast path's core promise: once the
// per-layer scratch arena and replay pools are warm, Infer must never touch
// the heap. Guarded for both the deepest architecture and the default one so
// a regression in either the conv or the dense replay path trips it.
func TestInferSteadyStateZeroAlloc(t *testing.T) {
	for _, arch := range []string{"resnet18", "simplecnn"} {
		m := models.MustBuild(arch, 3, 32, 32, 10, 1)
		e := NewDefault(m)
		x := randomImage(1, 3, 32, 32)
		for i := 0; i < 3; i++ { // warm pools and scratch
			e.Infer(x)
		}
		if n := testing.AllocsPerRun(10, func() { e.Infer(x) }); n != 0 {
			t.Fatalf("%s: Infer allocs/op = %v, want 0", arch, n)
		}
	}
}
