package engine

import (
	"advhunter/internal/nn"
	"advhunter/internal/tensor"
)

// ceilDiv rounds the quotient up.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// tref is a tensor placed in the simulated address space, with precomputed
// zero-content metadata.
type tref struct {
	t    *tensor.Tensor // batched [1, ...]
	addr uint64
	// lineZero[i] reports whether the i-th 64-byte line of the tensor's
	// storage holds only zeros (ZCA-eligible).
	lineZero []bool
	// rowZero[c][y], present for rank-4 tensors, reports whether spatial
	// row y of channel c is entirely zero (weight-load elision granule).
	rowZero [][]bool
}

// lines returns the number of cache lines the tensor occupies.
func (r tref) lines() int { return len(r.lineZero) }

// makeRef computes the zero metadata of t at the given address. tol is the
// magnitude below which a value is storage-zero: the engine models the
// deployment-standard quantized tensor format, where activations with
// |v| < maxAbs/levels quantize to the zero point exactly, so a line of small
// activations really is an all-zero line in memory. tol = 0 models exact
// float zeros (post-ReLU only).
func makeRef(t *tensor.Tensor, addr uint64, tol float64) tref {
	d := t.Data()
	lz := make([]bool, ceilDiv(len(d), floatsPerLine))
	var rz [][]bool
	if t.Rank() == 4 && t.Dim(0) == 1 {
		rz = make([][]bool, t.Dim(1))
		for ci := range rz {
			rz[ci] = make([]bool, t.Dim(2))
		}
	}
	return fillRef(t, addr, tol, lz, rz)
}

// fillRef is makeRef's core: it computes the zero metadata into the
// caller-provided buffers (lz sized to the line count; rz, when the tensor is
// rank-4 single-batch, sized [C][H]) and fully overwrites them. The fast path
// feeds it pooled buffers so steady-state inference builds refs without
// allocating.
func fillRef(t *tensor.Tensor, addr uint64, tol float64, lz []bool, rz [][]bool) tref {
	d := t.Data()
	isZero := func(v float64) bool {
		if v < 0 {
			v = -v
		}
		return v <= tol
	}
	nLines := len(lz)
	for li := 0; li < nLines; li++ {
		zero := true
		end := (li + 1) * floatsPerLine
		if end > len(d) {
			end = len(d)
		}
		for _, v := range d[li*floatsPerLine : end] {
			if !isZero(v) {
				zero = false
				break
			}
		}
		lz[li] = zero
	}
	ref := tref{t: t, addr: addr, lineZero: lz}
	if rz != nil {
		c, h, w := t.Dim(1), t.Dim(2), t.Dim(3)
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				off := (ci*h + y) * w
				zero := true
				for _, v := range d[off : off+w] {
					if !isZero(v) {
						zero = false
						break
					}
				}
				rz[ci][y] = zero
			}
		}
		ref.rowZero = rz
	}
	return ref
}

// quantTol returns the storage-zero threshold of a tensor under symmetric
// quantization with the given number of positive levels (127 for int8);
// levels <= 0 selects exact-zero semantics.
func quantTol(t *tensor.Tensor, levels int) float64 {
	return quantTolData(t.Data(), levels)
}

// quantTolData is quantTol over a raw storage slice; the batched stats walk
// uses it to derive each sample's own tolerance from its row of a batch
// activation, keeping the threshold identical to a standalone pass.
func quantTolData(d []float64, levels int) float64 {
	if levels <= 0 {
		return 0
	}
	maxAbs := 0.0
	for _, v := range d {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	return maxAbs / float64(levels)
}

// layout assigns simulated addresses to every layer's code region and
// parameter block. Addresses depend only on the model structure, never on
// inputs, so the memory map is identical across inferences.
type layout struct {
	code   map[nn.Layer]uint64
	weight map[nn.Layer]uint64
}

// buildLayout walks the model and places code and weights.
func buildLayout(root *nn.Sequential) *layout {
	lo := &layout{
		code:   make(map[nn.Layer]uint64),
		weight: make(map[nn.Layer]uint64),
	}
	nextCode := uint64(codeBase)
	nextWeight := uint64(weightBase)
	root.Walk(func(l nn.Layer) {
		lo.code[l] = nextCode
		nextCode += codeStride
		bytes := 0
		for _, p := range l.Params() {
			bytes += p.Value.Len() * 8
		}
		if bytes > 0 {
			lo.weight[l] = nextWeight
			nextWeight += uint64((bytes + lineB - 1) &^ (lineB - 1))
		}
	})
	// The root Sequential itself also gets a code region (dispatch loop).
	lo.code[root] = nextCode
	return lo
}

// arena is a bump allocator over the activation ring.
type arena struct {
	cur uint64
}

// alloc reserves bytes (line-aligned) and returns the base address, wrapping
// when the ring is exhausted — activation buffers are recycled exactly like
// a real inference runtime's workspace.
func (a *arena) alloc(bytes int) uint64 {
	need := uint64((bytes + lineB - 1) &^ (lineB - 1))
	if a.cur+need > arenaSize {
		a.cur = 0
	}
	addr := arenaBase + a.cur
	a.cur += need
	return addr
}

// reset starts the next inference with a fresh ring.
func (a *arena) reset() { a.cur = 0 }
