package engine

import (
	"fmt"
	"math"

	"advhunter/internal/nn"
	"advhunter/internal/tensor"
)

// ForwardStats runs one machine-free forward pass of the model — no cache
// hierarchy, no branch predictor, no replay — and fills sp with each leaf
// layer's input zero-line fraction, in trace order. It returns the hard-label
// prediction and the softmax confidence of the predicted class.
//
// The walk mirrors traceLayer's dispatch exactly (same leaf order, same
// scratch-arena numerics), so the prediction, the confidence, and every
// sparsity value are bit-identical to what InferConf/InferProfile compute for
// the same input: this is the serve-time front half of the analytical twin,
// which predicts the counter reading from these sparsities by table lookup.
//
// sp must have length NumLeaves(). On the fast path the pass allocates
// nothing in steady state.
func (e *Engine) ForwardStats(x *tensor.Tensor, sp []float64) (int, float64) {
	meta := e.Model.Meta
	var batch *tensor.Tensor
	if e.sc != nil {
		e.sc.Reset()
		e.touts.reset()
		batch = e.sc.Tensor(1, meta.InC, meta.InH, meta.InW)
		bd, xd := batch.Data(), x.Data()
		if len(bd) != len(xd) {
			panic(fmt.Sprintf("engine: input has %d elements, model expects %d", len(xd), len(bd)))
		}
		copy(bd, xd)
	} else {
		batch = x.Clone().Reshape(1, meta.InC, meta.InH, meta.InW)
	}
	e.statSp, e.statIdx = sp, 0
	out := e.statsLayer(e.Model.Net, batch)
	if e.statIdx != len(sp) {
		panic(fmt.Sprintf("engine: ForwardStats visited %d leaves, sp has %d entries (want NumLeaves)",
			e.statIdx, len(sp)))
	}
	e.statSp = nil

	logits := out.Data()
	lmax := logits[0]
	for _, v := range logits[1:] {
		if v > lmax {
			lmax = v
		}
	}
	sum := 0.0
	for _, v := range logits {
		sum += math.Exp(v - lmax)
	}
	return out.Argmax(), 1 / sum
}

// statsLayer is traceLayer without the machine: identical dispatch and
// forward calls, recording each leaf's input sparsity instead of replaying
// its memory traffic.
func (e *Engine) statsLayer(l nn.Layer, x *tensor.Tensor) *tensor.Tensor {
	switch l := l.(type) {
	case *nn.Sequential:
		for _, sub := range l.Layers {
			x = e.statsLayer(sub, x)
		}
		return x
	case *nn.Flatten:
		return e.forward(l, x)
	case *nn.Dropout:
		return x
	case *nn.Residual:
		body := e.statsLayer(l.Body, x)
		short := x
		if l.Shortcut != nil {
			short = e.statsLayer(l.Shortcut, x)
		}
		if e.sc != nil {
			sum := e.sc.Tensor(body.Shape()...)
			copy(sum.Data(), body.Data())
			sum.AddInPlace(short)
			return sum
		}
		return tensor.Add(body, short)
	case *nn.Parallel:
		var outs []*tensor.Tensor
		if e.sc != nil {
			outs = e.touts.get(len(l.Branches))
		} else {
			outs = make([]*tensor.Tensor, len(l.Branches))
		}
		for i, b := range l.Branches {
			outs[i] = e.statsLayer(b, x)
		}
		return e.concat(outs)
	case *nn.DenseBlock:
		cur := x
		for _, u := range l.Units {
			y := e.statsLayer(u, cur)
			e.pair[0], e.pair[1] = cur, y
			cur = e.concat(e.pair[:])
		}
		return cur
	default:
		e.statSp[e.statIdx] = lineSparsity(x, quantTol(x, e.qlevels))
		e.statIdx++
		return e.forward(l, x)
	}
}

// lineSparsity computes the zero-line fraction of a tensor's storage under
// the given storage-zero tolerance — the same per-line predicate fillRef
// evaluates, without materializing the bitmap.
func lineSparsity(t *tensor.Tensor, tol float64) float64 {
	return lineSparsityData(t.Data(), tol)
}

// lineSparsityData is lineSparsity over a raw storage slice, so the batched
// stats walk can score each sample's row of a batch tensor directly.
func lineSparsityData(d []float64, tol float64) float64 {
	nLines := ceilDiv(len(d), floatsPerLine)
	if nLines == 0 {
		return 0
	}
	zeros := 0
	for li := 0; li < nLines; li++ {
		end := (li + 1) * floatsPerLine
		if end > len(d) {
			end = len(d)
		}
		zero := true
		for _, v := range d[li*floatsPerLine : end] {
			if v < 0 {
				v = -v
			}
			if v > tol {
				zero = false
				break
			}
		}
		if zero {
			zeros++
		}
	}
	return float64(zeros) / float64(nLines)
}
