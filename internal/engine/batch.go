package engine

import (
	"fmt"
	"math"

	"advhunter/internal/nn"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// Batched inference runs in two phases.
//
// Phase A (batchForward) walks the network once with the whole micro-batch
// as the leading dimension, so every convolution becomes one fused GEMM and
// every element-wise layer one pass over B samples. At each point where the
// per-sample trace would materialize an activation — a leaf forward, a
// channel concatenation, a residual sum — the batch tensor is recorded in
// walk order. Every layer's arithmetic is per-sample independent (and the
// fused conv GEMM is pinned bit-identical to the per-sample GEMM), so row b
// of each recording holds exactly the floats a standalone pass over sample b
// would produce.
//
// Phase B replays traceLayer once per sample with bN > 0: forward, concat
// and the residual sum return the current sample's view of the next
// recording instead of recomputing, while the machine, the address arena and
// the ref pools are reset per sample exactly as Infer does. The μarch replay
// therefore consumes per-sample tensors identical to a standalone trace and
// produces byte-identical HPC counts — batching accelerates the arithmetic,
// never the measurement.

// brec is one recorded phase-A materialization: the batch tensor's storage
// (captured as a slice header, so later arena churn cannot re-aim it) and
// its batch-leading shape.
type brec struct {
	data  []float64
	shape []int
}

// recordB appends t to the replay tape, reusing tape slots across batches.
func (e *Engine) recordB(t *tensor.Tensor) *tensor.Tensor {
	if len(e.breps) < cap(e.breps) {
		e.breps = e.breps[:len(e.breps)+1]
	} else {
		e.breps = append(e.breps, brec{})
	}
	r := &e.breps[len(e.breps)-1]
	r.data = t.Data()
	r.shape = append(r.shape[:0], t.Shape()...)
	return t
}

// replayNext returns sample bsample's view of the next recorded tensor:
// shape [1, rest...] over the sample's contiguous row of the batch storage.
func (e *Engine) replayNext() *tensor.Tensor {
	r := &e.breps[e.bcur]
	e.bcur++
	stride := len(r.data) / e.bN
	e.bshape = append(e.bshape[:0], 1)
	e.bshape = append(e.bshape, r.shape[1:]...)
	if e.bvi == len(e.bviews) {
		e.bviews = append(e.bviews, &tensor.Tensor{})
	}
	v := e.bviews[e.bvi]
	e.bvi++
	return v.Alias(r.data[e.bsample*stride:(e.bsample+1)*stride], e.bshape...)
}

// packBatch copies the samples into one batch-leading scratch tensor.
func (e *Engine) packBatch(xs []*tensor.Tensor) *tensor.Tensor {
	meta := e.Model.Meta
	sample := meta.InC * meta.InH * meta.InW
	batch := e.sc.Tensor(len(xs), meta.InC, meta.InH, meta.InW)
	bd := batch.Data()
	for i, x := range xs {
		xd := x.Data()
		if len(xd) != sample {
			panic(fmt.Sprintf("engine: batch input %d has %d elements, model expects %d", i, len(xd), sample))
		}
		copy(bd[i*sample:(i+1)*sample], xd)
	}
	return batch
}

// batchForward is phase A: one batch-fused machine-free walk, recording the
// tensor at every materialization point the per-sample trace will consume.
func (e *Engine) batchForward(xs []*tensor.Tensor) {
	e.sc.Reset()
	e.touts.reset()
	e.breps = e.breps[:0]
	batch := e.packBatch(xs)
	e.recordB(batch) // the input is the first tape entry
	e.batchLayer(e.Model.Net, batch)
}

// batchLayer mirrors traceLayer's dispatch structure (so tape order matches
// phase-B consumption order exactly) without any machine interaction.
func (e *Engine) batchLayer(l nn.Layer, x *tensor.Tensor) *tensor.Tensor {
	switch l := l.(type) {
	case *nn.Sequential:
		for _, sub := range l.Layers {
			x = e.batchLayer(sub, x)
		}
		return x
	case *nn.Dropout:
		return x
	case *nn.Residual:
		body := e.batchLayer(l.Body, x)
		short := x
		if l.Shortcut != nil {
			short = e.batchLayer(l.Shortcut, x)
		}
		sum := e.sc.Tensor(body.Shape()...)
		copy(sum.Data(), body.Data())
		sum.AddInPlace(short)
		return e.recordB(sum)
	case *nn.Parallel:
		outs := e.touts.get(len(l.Branches))
		for i, b := range l.Branches {
			outs[i] = e.batchLayer(b, x)
		}
		return e.recordB(e.concat(outs))
	case *nn.DenseBlock:
		cur := x
		for _, u := range l.Units {
			y := e.batchLayer(u, cur)
			e.pair[0], e.pair[1] = cur, y
			cur = e.recordB(e.concat(e.pair[:]))
		}
		return cur
	default:
		// Every leaf (including Flatten) is one recorded forward.
		return e.recordB(e.forward(l, x))
	}
}

// softmaxConf returns the softmax probability of the argmax over logits,
// with the exact expression InferConf evaluates.
func softmaxConf(logits []float64) float64 {
	lmax := logits[0]
	for _, v := range logits[1:] {
		if v > lmax {
			lmax = v
		}
	}
	sum := 0.0
	for _, v := range logits {
		sum += math.Exp(v - lmax)
	}
	return 1 / sum
}

// InferConfBatch classifies a micro-batch: the forward arithmetic runs once,
// batch-fused through the blocked kernels, while the machine replay stays
// strictly per-sample from each sample's own activations. preds, counts and
// (when non-nil) confs receive sample i's results at index i and every value
// is byte-identical to a standalone InferConf(xs[i]) — pinned by the
// BatchIdentity suite. Scalar-replay engines, profiling runs and singleton
// batches fall back to the per-sample path. Steady-state batched inference
// allocates nothing.
func (e *Engine) InferConfBatch(xs []*tensor.Tensor, preds []int, confs []float64, counts []hpc.Counts) {
	if len(preds) < len(xs) || len(counts) < len(xs) || (confs != nil && len(confs) < len(xs)) {
		panic("engine: InferConfBatch result slices shorter than batch")
	}
	if e.sc == nil || e.prof != nil || len(xs) <= 1 {
		for i, x := range xs {
			p, c, ct := e.InferConf(x)
			preds[i] = p
			if confs != nil {
				confs[i] = c
			}
			counts[i] = ct
		}
		return
	}
	e.batchForward(xs)
	e.bN = len(xs)
	for b := range xs {
		e.bsample, e.bcur, e.bvi = b, 0, 0
		e.M.Reset()
		e.ar.reset()
		e.lzs.reset()
		e.rzs.reset()
		e.refs.reset()
		e.touts.reset()
		inView := e.replayNext()
		in := e.makeRef(inView, inputBase, quantTol(inView, e.qlevels))
		out := e.traceLayer(e.Model.Net, in)
		preds[b] = out.t.Argmax()
		if confs != nil {
			confs[b] = softmaxConf(out.t.Data())
		}
		counts[b] = e.M.Counts()
	}
	e.bN = 0
}

// InferBatch is InferConfBatch without the confidences — the batched form of
// Infer.
func (e *Engine) InferBatch(xs []*tensor.Tensor, preds []int, counts []hpc.Counts) {
	e.InferConfBatch(xs, preds, nil, counts)
}

// ForwardStatsBatch is ForwardStats over a micro-batch: one batch-fused
// machine-free walk fills sp[i] with sample i's per-leaf input zero-line
// fractions and preds[i]/confs[i] with its prediction and softmax
// confidence. Per-sample tolerances and sparsities are computed over each
// sample's row of the batch activations, whose values are bit-identical to a
// standalone pass, so every output matches ForwardStats(xs[i], sp[i])
// exactly. Each sp[i] must have length NumLeaves().
func (e *Engine) ForwardStatsBatch(xs []*tensor.Tensor, sp [][]float64, preds []int, confs []float64) {
	if len(sp) < len(xs) || len(preds) < len(xs) || len(confs) < len(xs) {
		panic("engine: ForwardStatsBatch result slices shorter than batch")
	}
	if e.sc == nil || len(xs) <= 1 {
		for i, x := range xs {
			preds[i], confs[i] = e.ForwardStats(x, sp[i])
		}
		return
	}
	e.sc.Reset()
	e.touts.reset()
	batch := e.packBatch(xs)
	e.bstatSp, e.bstatN, e.statIdx = sp, len(xs), 0
	out := e.bstatsLayer(e.Model.Net, batch)
	for i := range xs {
		if e.statIdx != len(sp[i]) {
			panic(fmt.Sprintf("engine: ForwardStatsBatch visited %d leaves, sp[%d] has %d entries (want NumLeaves)",
				e.statIdx, i, len(sp[i])))
		}
	}
	e.bstatSp, e.bstatN = nil, 0

	classes := out.Len() / len(xs)
	od := out.Data()
	for b := range xs {
		logits := od[b*classes : (b+1)*classes]
		best, bestV := 0, math.Inf(-1)
		for i, v := range logits {
			if v > bestV {
				best, bestV = i, v
			}
		}
		preds[b] = best
		confs[b] = softmaxConf(logits)
	}
}

// bstatsLayer is statsLayer with per-sample leaf recording: the walk is
// batch-fused, but each leaf's sparsity (and its quantization tolerance) is
// evaluated over each sample's own row of the input activations.
func (e *Engine) bstatsLayer(l nn.Layer, x *tensor.Tensor) *tensor.Tensor {
	switch l := l.(type) {
	case *nn.Sequential:
		for _, sub := range l.Layers {
			x = e.bstatsLayer(sub, x)
		}
		return x
	case *nn.Flatten:
		return e.forward(l, x)
	case *nn.Dropout:
		return x
	case *nn.Residual:
		body := e.bstatsLayer(l.Body, x)
		short := x
		if l.Shortcut != nil {
			short = e.bstatsLayer(l.Shortcut, x)
		}
		sum := e.sc.Tensor(body.Shape()...)
		copy(sum.Data(), body.Data())
		sum.AddInPlace(short)
		return sum
	case *nn.Parallel:
		outs := e.touts.get(len(l.Branches))
		for i, b := range l.Branches {
			outs[i] = e.bstatsLayer(b, x)
		}
		return e.concat(outs)
	case *nn.DenseBlock:
		cur := x
		for _, u := range l.Units {
			y := e.bstatsLayer(u, cur)
			e.pair[0], e.pair[1] = cur, y
			cur = e.concat(e.pair[:])
		}
		return cur
	default:
		d := x.Data()
		stride := len(d) / e.bstatN
		for b := 0; b < e.bstatN; b++ {
			seg := d[b*stride : (b+1)*stride]
			e.bstatSp[b][e.statIdx] = lineSparsityData(seg, quantTolData(seg, e.qlevels))
		}
		e.statIdx++
		return e.forward(l, x)
	}
}
