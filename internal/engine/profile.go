package engine

import (
	"advhunter/internal/nn"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// This file exports the per-layer view of an exact inference that the
// analytical twin (internal/twin) is built from: which leaf layers the
// tracer replays, in what order, with what input sparsity, and how much of
// the final counter reading each one contributed.
//
// A "leaf" is any layer the tracer models machine work for. Containers
// (Sequential, Residual, Parallel, DenseBlock) only route data — their own
// join traffic (residual add, concat copy) is attributed to the leaf that
// runs next, which keeps the decomposition exactly telescoping without a
// separate per-container table. Flatten (a view change) and Dropout
// (inference identity) move no data and are skipped the same way.

// LeafProfile describes one leaf layer's share of an inference.
type LeafProfile struct {
	// Index is the leaf's position in trace order.
	Index int
	// Name is the layer's display name.
	Name string
	// Sparsity is the fraction of the leaf's input cache lines that are
	// storage-zero (ZCA-eligible) — the quantity the twin tables are keyed by.
	Sparsity float64
	// Delta is the counter increment attributed to this leaf: the machine
	// snapshot at the next leaf's entry minus the snapshot at this leaf's
	// entry. Deltas over all leaves sum exactly to the inference's counts.
	Delta hpc.Counts
}

// leafSample is the raw per-leaf record captured during a profiled trace.
type leafSample struct {
	name     string
	sparsity float64
	snap     hpc.Counts // machine counters at leaf entry
}

// profObserve records a leaf-entry sample. Containers and data-free
// pass-through layers are not leaves.
func (e *Engine) profObserve(l nn.Layer, in tref) {
	switch l.(type) {
	case *nn.Sequential, *nn.Residual, *nn.Parallel, *nn.DenseBlock,
		*nn.Flatten, *nn.Dropout:
		return
	}
	e.prof = append(e.prof, leafSample{
		name:     l.Name(),
		sparsity: zeroFrac(in.lineZero),
		snap:     e.M.Counts(),
	})
}

// zeroFrac returns the fraction of true entries in a zero-line bitmap.
func zeroFrac(lz []bool) float64 {
	if len(lz) == 0 {
		return 0
	}
	zeros := 0
	for _, z := range lz {
		if z {
			zeros++
		}
	}
	return float64(zeros) / float64(len(lz))
}

// InferProfile is Infer with per-leaf attribution: it returns the hard-label
// prediction, the full noise-free counts, and one LeafProfile per leaf layer
// in trace order. The deltas telescope — counts before the first leaf's
// entry (the input placement) are folded into leaf 0, and the tail after the
// last leaf's entry belongs to the last leaf — so summing every Delta
// reproduces the total reading event for event, bit for bit.
func (e *Engine) InferProfile(x *tensor.Tensor) (int, hpc.Counts, []LeafProfile) {
	e.prof = make([]leafSample, 0, e.NumLeaves())
	out := e.trace(x)
	pred := out.t.Argmax()
	total := e.M.Counts()
	samples := e.prof
	e.prof = nil

	leaves := make([]LeafProfile, len(samples))
	for i, s := range samples {
		next := total
		if i+1 < len(samples) {
			next = samples[i+1].snap
		}
		var prev hpc.Counts // leaf 0 absorbs everything before its entry
		if i > 0 {
			prev = samples[i].snap
		}
		var delta hpc.Counts
		for ev := range delta {
			delta[ev] = next[ev] - prev[ev]
		}
		leaves[i] = LeafProfile{Index: i, Name: s.name, Sparsity: s.sparsity, Delta: delta}
	}
	return pred, total, leaves
}

// forEachLeaf visits every leaf layer in exactly the order the tracer
// replays them (and the order statsLayer walks them).
func forEachLeaf(l nn.Layer, f func(nn.Layer)) {
	switch c := l.(type) {
	case *nn.Sequential:
		for _, sub := range c.Layers {
			forEachLeaf(sub, f)
		}
	case *nn.Residual:
		forEachLeaf(c.Body, f)
		if c.Shortcut != nil {
			forEachLeaf(c.Shortcut, f)
		}
	case *nn.Parallel:
		for _, b := range c.Branches {
			forEachLeaf(b, f)
		}
	case *nn.DenseBlock:
		for _, u := range c.Units {
			forEachLeaf(u, f)
		}
	case *nn.Flatten, *nn.Dropout:
		// Pass-through: no machine work, no sample.
	default:
		f(l)
	}
}

// NumLeaves returns the number of leaf layers the tracer replays per
// inference — the length of every InferProfile result and of the sparsity
// vector ForwardStats fills.
func (e *Engine) NumLeaves() int {
	n := 0
	forEachLeaf(e.Model.Net, func(nn.Layer) { n++ })
	return n
}

// LeafNames returns the leaf layer names in trace order.
func (e *Engine) LeafNames() []string {
	names := make([]string, 0, e.NumLeaves())
	forEachLeaf(e.Model.Net, func(l nn.Layer) { names = append(names, l.Name()) })
	return names
}

// Config returns the machine configuration the engine was built with.
func (e *Engine) Config() MachineConfig { return e.cfg }
