package engine

import (
	"advhunter/internal/rng"
	"advhunter/internal/uarch/cache"
)

// CoRunnerConfig models a co-located process on another core. Private L1/L2
// are per-core, so the co-runner only touches the shared LLC — but there it
// both evicts the victim's lines and inflates the LLC reference/miss
// counters, which is the physical mechanism behind measurement contamination
// on shared machines (the statistical noise model in internal/uarch/hpc
// approximates the same thing post-hoc; this injects it mechanically).
type CoRunnerConfig struct {
	// EveryN injects a burst after every N demand accesses of the measured
	// process (0 disables the co-runner).
	EveryN int
	// Burst is the number of co-runner LLC accesses per injection.
	Burst int
	// FootprintB is the byte size of the co-runner's working set; larger
	// footprints cause more evictions of the victim's lines.
	FootprintB uint64
	// Seed drives the co-runner's access pattern.
	Seed uint64
}

// coRunner is the runtime state of the interfering process.
type coRunner struct {
	cfg     CoRunnerConfig
	r       *rng.Rand
	counter int
	llc     cache.Level
}

// corunnerBase places the co-runner's working set away from the victim's.
const corunnerBase = 0x6000_0000

// newCoRunner builds the injector (nil when disabled).
func newCoRunner(cfg CoRunnerConfig, llc cache.Level) *coRunner {
	if cfg.EveryN <= 0 || cfg.Burst <= 0 {
		return nil
	}
	if cfg.FootprintB == 0 {
		cfg.FootprintB = 1 << 20
	}
	return &coRunner{cfg: cfg, r: rng.New(cfg.Seed ^ 0xc0c0), llc: llc}
}

// reset restarts the co-runner's deterministic stream so per-image counts
// stay reproducible. The generator is reseeded in place (not reallocated) so
// resetting between inferences does not produce garbage.
func (c *coRunner) reset() {
	c.r.Reseed(c.cfg.Seed ^ 0xc0c0)
	c.counter = 0
}

// tick is called once per victim demand access and occasionally injects a
// burst of co-runner traffic into the shared LLC.
func (c *coRunner) tick() {
	c.counter++
	if c.counter%c.cfg.EveryN != 0 {
		return
	}
	lines := c.cfg.FootprintB / 64
	for i := 0; i < c.cfg.Burst; i++ {
		addr := corunnerBase + uint64(c.r.Intn(int(lines)))*64
		c.llc.Access(addr, cache.Load)
	}
}
