package engine

import (
	"fmt"
	"math"

	"advhunter/internal/models"
	"advhunter/internal/nn"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// Engine runs a model on a simulated machine.
type Engine struct {
	Model *models.Model
	M     *Machine

	cfg     MachineConfig
	lo      *layout
	ar      arena
	branchy bool
	qlevels int

	// Fast-path state (nil/unused when cfg.ScalarReplay is set): the layer
	// scratch arena plus ordered-replay pools for ref metadata. Together they
	// make steady-state Infer allocation-free.
	sc    *nn.Scratch
	lzs   slicePool[bool]
	rzs   slicePool[[]bool]
	refs  slicePool[tref]
	touts slicePool[*tensor.Tensor]
	rgz   []bool
	pair  [2]*tensor.Tensor

	// Profiling hook (nil outside InferProfile): per-leaf samples of the
	// machine counters taken at leaf entry, consumed by InferProfile.
	prof []leafSample

	// ForwardStats walk state. Kept on the engine rather than threaded
	// through the recursion so the stats walker stays allocation-free.
	statSp  []float64
	statIdx int

	// Batched-execution state (batch.go). Phase A of InferBatch records the
	// batch tensor produced at every materialization point of the walk; in
	// phase B bN > 0 makes forward/concat/residual-sum return per-sample
	// views of those recordings instead of recomputing, so the μarch replay
	// stays strictly per-sample while the arithmetic ran once per batch.
	breps   []brec
	bcur    int
	bsample int
	bN      int
	bviews  []*tensor.Tensor
	bvi     int
	bshape  []int

	// ForwardStatsBatch walk state: per-sample sparsity rows and the batch
	// width of the current stats walk.
	bstatSp [][]float64
	bstatN  int
}

// New builds an engine for the model on the configured machine.
func New(m *models.Model, cfg MachineConfig) *Engine {
	e := &Engine{
		Model:   m,
		M:       NewMachine(cfg),
		cfg:     cfg,
		lo:      buildLayout(m.Net),
		branchy: cfg.BranchyKernels,
		qlevels: cfg.QuantLevels,
	}
	if !cfg.ScalarReplay {
		e.sc = &nn.Scratch{}
	}
	return e
}

// NewDefault builds an engine on the default machine.
func NewDefault(m *models.Model) *Engine { return New(m, DefaultMachineConfig()) }

// Clone returns an independent engine replica for concurrent measurement:
// the machine — cache hierarchy, branch predictor, co-runner — is rebuilt
// from the engine's MachineConfig in its power-on state, and the replica gets
// its own scratch arena and replay pools. The model and the address layout
// are shared: the fast-path forward (nn.ScratchForwarder) never writes layer
// state, so replicas can trace the shared network concurrently, and sharing
// the layout keeps the replica's synthetic address map byte-identical to the
// original's — Infer on a replica returns exactly the counts the original
// would return for the same input. (A ReLU Record hook, if installed, fires
// from every replica; hooks that aggregate must synchronize themselves.)
//
// In scalar-replay mode the layer forwards write backward caches, so the
// model is deep-cloned (sharing weight tensors) and the layout rebuilt; walk
// order is preserved, keeping the address map byte-identical there too.
func (e *Engine) Clone() *Engine {
	if e.sc == nil {
		return New(e.Model.Clone(), e.cfg)
	}
	return &Engine{
		Model:   e.Model,
		M:       NewMachine(e.cfg),
		cfg:     e.cfg,
		lo:      e.lo,
		branchy: e.branchy,
		qlevels: e.qlevels,
		sc:      &nn.Scratch{},
	}
}

// trace resets the machine and replays one forward pass, returning the
// placed output ref. In fast mode the batch tensor and all ref metadata come
// from the engine's pools; in scalar mode the original allocating path runs.
func (e *Engine) trace(x *tensor.Tensor) tref {
	e.M.Reset()
	e.ar.reset()
	meta := e.Model.Meta
	var batch *tensor.Tensor
	if e.sc != nil {
		e.sc.Reset()
		e.lzs.reset()
		e.rzs.reset()
		e.refs.reset()
		e.touts.reset()
		batch = e.sc.Tensor(1, meta.InC, meta.InH, meta.InW)
		bd, xd := batch.Data(), x.Data()
		if len(bd) != len(xd) {
			panic(fmt.Sprintf("engine: input has %d elements, model expects %d", len(xd), len(bd)))
		}
		copy(bd, xd)
	} else {
		batch = x.Clone().Reshape(1, meta.InC, meta.InH, meta.InW)
	}
	in := e.makeRef(batch, inputBase, quantTol(batch, e.qlevels))
	return e.traceLayer(e.Model.Net, in)
}

// Infer classifies the image x (shape [C,H,W]) on the simulated machine and
// returns the hard-label prediction together with the true (noise-free) HPC
// counts of that inference. The machine is reset first, so counts are a
// deterministic function of (model, input).
func (e *Engine) Infer(x *tensor.Tensor) (int, hpc.Counts) {
	out := e.trace(x)
	return out.t.Argmax(), e.M.Counts()
}

// Predict returns only the hard label (convenience for black-box callers).
func (e *Engine) Predict(x *tensor.Tensor) int {
	p, _ := e.Infer(x)
	return p
}

// InferConf is Infer plus the softmax confidence of the predicted class.
// The confidence is derived from the logits of the same traced forward pass,
// so it costs nothing extra on the simulated machine. Black-box detectors
// must not consume it — it exists for the soft-label confidence baseline the
// paper compares against.
func (e *Engine) InferConf(x *tensor.Tensor) (int, float64, hpc.Counts) {
	out := e.trace(x)
	logits := out.t.Data()
	lmax := logits[0]
	for _, v := range logits[1:] {
		if v > lmax {
			lmax = v
		}
	}
	sum := 0.0
	for _, v := range logits {
		sum += math.Exp(v - lmax)
	}
	return out.t.Argmax(), 1 / sum, e.M.Counts()
}

// newOutput places a freshly produced activation tensor in the arena.
func (e *Engine) newOutput(t *tensor.Tensor) tref {
	return e.makeRef(t, e.ar.alloc(t.Len()*8), quantTol(t, e.qlevels))
}

// makeRef builds the zero-metadata ref for t at addr. In fast mode the
// lineZero/rowZero bitmaps come from the ordered-replay pools; scalar mode
// allocates them fresh.
func (e *Engine) makeRef(t *tensor.Tensor, addr uint64, tol float64) tref {
	if e.sc == nil {
		return makeRef(t, addr, tol)
	}
	lz := e.lzs.get(ceilDiv(t.Len(), floatsPerLine))
	var rz [][]bool
	if t.Rank() == 4 && t.Dim(0) == 1 {
		rz = e.rzs.get(t.Dim(1))
		h := t.Dim(2)
		for ci := range rz {
			rz[ci] = e.lzs.get(h)
		}
	}
	return fillRef(t, addr, tol, lz, rz)
}

// forward runs the layer's inference-mode forward pass, through the scratch
// arena when the fast path is active. During a batch replay (bN > 0) the
// layer's output was already computed by the phase-A batch pass: the current
// sample's view of that recording is returned instead.
func (e *Engine) forward(l nn.Layer, x *tensor.Tensor) *tensor.Tensor {
	if e.bN > 0 {
		return e.replayNext()
	}
	if e.sc != nil {
		if sf, ok := l.(nn.ScratchForwarder); ok {
			return sf.ForwardScratch(x, e.sc)
		}
	}
	return l.Forward(x, false)
}

// concat concatenates branch outputs along channels, into a scratch tensor
// on the fast path; batch replays consume the recorded concatenation.
func (e *Engine) concat(outs []*tensor.Tensor) *tensor.Tensor {
	if e.bN > 0 {
		return e.replayNext()
	}
	if e.sc == nil {
		return nn.ConcatChannels(outs...)
	}
	totalC := 0
	for _, o := range outs {
		totalC += o.Dim(1)
	}
	cat := e.sc.Tensor(outs[0].Dim(0), totalC, outs[0].Dim(2), outs[0].Dim(3))
	return nn.ConcatChannelsInto(cat, outs...)
}

// traceLayer dispatches on the concrete layer type, reproducing the
// layer's data flow on the machine and returning the placed output.
func (e *Engine) traceLayer(l nn.Layer, in tref) tref {
	if e.prof != nil {
		e.profObserve(l, in)
	}
	switch l := l.(type) {
	case *nn.Sequential:
		for _, sub := range l.Layers {
			in = e.traceLayer(sub, in)
		}
		return in
	case *nn.Conv2D:
		return e.traceConv(l, in)
	case *nn.DepthwiseConv2D:
		return e.traceDepthwise(l, in)
	case *nn.Linear:
		return e.traceLinear(l, in)
	case *nn.ReLU:
		return e.traceReLU(l, in)
	case *nn.Sigmoid:
		return e.traceEltwise(l, in, 8, false)
	case *nn.BatchNorm2D:
		return e.traceBatchNorm(l, in)
	case *nn.MaxPool2D:
		return e.traceMaxPool(l, in)
	case *nn.AvgPool2D:
		return e.traceAvgPool(l, in)
	case *nn.GlobalAvgPool:
		return e.traceGAP(l, in)
	case *nn.Flatten:
		// A view change: no data movement, shared address.
		out := e.forward(l, in.t)
		return tref{t: out, addr: in.addr, lineZero: in.lineZero}
	case *nn.Dropout:
		// Identity at inference time.
		return in
	case *nn.Residual:
		return e.traceResidual(l, in)
	case *nn.Parallel:
		return e.traceParallel(l, in)
	case *nn.DenseBlock:
		return e.traceDense(l, in)
	case *nn.SqueezeExcite:
		return e.traceSE(l, in)
	default:
		panic(fmt.Sprintf("engine: no tracer for layer type %T (%s)", l, l.Name()))
	}
}

// loadSpan loads the lines covering elements [elemOff, elemOff+n) of ref,
// honouring per-line zero content. The fast path emits the whole span as one
// run (resolved in a tight loop over precomputed set/tag strides); scalar
// mode replays it line by line. Both produce the same event sequence.
func (e *Engine) loadSpan(ref tref, elemOff, n int) {
	first := elemOff / floatsPerLine
	last := (elemOff + n - 1) / floatsPerLine
	if e.sc != nil {
		e.M.loadRun(ref.addr+uint64(first*lineB), last-first+1, ref.lineZero[first:last+1])
		return
	}
	for li := first; li <= last; li++ {
		e.M.loadLine(ref.addr+uint64(li*lineB), ref.lineZero[li])
	}
}

// storeSpan stores the lines covering elements [elemOff, elemOff+n) of ref.
func (e *Engine) storeSpan(ref tref, elemOff, n int) {
	first := elemOff / floatsPerLine
	last := (elemOff + n - 1) / floatsPerLine
	if e.sc != nil {
		e.M.storeRun(ref.addr+uint64(first*lineB), last-first+1, ref.lineZero[first:last+1])
		return
	}
	for li := first; li <= last; li++ {
		e.M.storeLine(ref.addr+uint64(li*lineB), ref.lineZero[li])
	}
}

// loadWeights loads parameter elements [elemOff, elemOff+n) of the layer's
// weight block. Weights are never zero-compressed (dense storage).
func (e *Engine) loadWeights(base uint64, elemOff, n int) {
	first := elemOff / floatsPerLine
	last := (elemOff + n - 1) / floatsPerLine
	if e.sc != nil {
		e.M.loadRun(base+uint64(first*lineB), last-first+1, nil)
		return
	}
	for li := first; li <= last; li++ {
		e.M.loadLine(base+uint64(li*lineB), false)
	}
}

// rowGroupBuf returns the engine's reusable elision-predicate buffer, grown
// to at least n entries. Contents are overwritten by the caller.
func (e *Engine) rowGroupBuf(n int) []bool {
	if cap(e.rgz) < n {
		e.rgz = make([]bool, n)
	}
	return e.rgz[:n]
}

// rowGroupZero reports whether every in-bounds input row feeding output row
// oy of channel ic is entirely zero — the weight-load elision condition.
func rowGroupZero(in tref, ic, oy, stride, kernel, pad, inH int) bool {
	sawRow := false
	for ky := 0; ky < kernel; ky++ {
		iy := oy*stride + ky - pad
		if iy < 0 || iy >= inH {
			continue
		}
		sawRow = true
		if !in.rowZero[ic][iy] {
			return false
		}
	}
	return sawRow
}

// traceConv replays a standard convolution: output rows sweep the image;
// for each (output-channel, input-channel) pair the k×k weight block and the
// k input rows are loaded unless the input row group is all zero, in which
// case the predicated MACs still issue but no data moves.
func (e *Engine) traceConv(l *nn.Conv2D, in tref) tref {
	out := e.newOutput(e.forward(l, in.t))
	inC, inH, inW := in.t.Dim(1), in.t.Dim(2), in.t.Dim(3)
	outC, outH, outW := out.t.Dim(1), out.t.Dim(2), out.t.Dim(3)
	k := l.Kernel
	cb, wb := e.lo.code[l], e.lo.weight[l]
	m := e.M

	rgz := e.rowGroupBuf(inC)
	m.fetchCode(cb, 2)
	for oy := 0; oy < outH; oy++ {
		// The elision predicate depends only on (ic, oy), so it is hoisted
		// out of the output-channel loop: one evaluation feeds all outC uses.
		for ic := 0; ic < inC; ic++ {
			rgz[ic] = rowGroupZero(in, ic, oy, l.Stride, k, l.Pad, inH)
		}
		m.fetchCode(cb+128, 4)
		for oc := 0; oc < outC; oc++ {
			for ic := 0; ic < inC; ic++ {
				// Predicated MACs always retire.
				m.Instructions += uint64(2*k*k*outW + 4)
				if rgz[ic] {
					continue // ZCA: no weight or activation traffic
				}
				e.loadWeights(wb, (oc*inC+ic)*k*k, k*k)
				for ky := 0; ky < k; ky++ {
					iy := oy*l.Stride + ky - l.Pad
					if iy < 0 || iy >= inH {
						continue
					}
					e.loadSpan(in, (ic*inH+iy)*inW, inW)
				}
			}
		}
		for oc := 0; oc < outC; oc++ {
			m.Instructions += uint64(outW) // bias add + writeback
			e.storeSpan(out, (oc*outH+oy)*outW, outW)
		}
		m.loopBranches(cb+8, uint64(outC))
		m.loopBranches(cb+16, uint64(outC*inC))
	}
	m.loopBranches(cb, uint64(outH))
	return out
}

// traceDepthwise replays a depthwise convolution (one filter per channel).
func (e *Engine) traceDepthwise(l *nn.DepthwiseConv2D, in tref) tref {
	out := e.newOutput(e.forward(l, in.t))
	c, inH, inW := in.t.Dim(1), in.t.Dim(2), in.t.Dim(3)
	outH, outW := out.t.Dim(2), out.t.Dim(3)
	k := l.Kernel
	cb, wb := e.lo.code[l], e.lo.weight[l]
	m := e.M

	m.fetchCode(cb, 2)
	for oy := 0; oy < outH; oy++ {
		m.fetchCode(cb+128, 3)
		for ch := 0; ch < c; ch++ {
			m.Instructions += uint64(2*k*k*outW + 4)
			if rowGroupZero(in, ch, oy, l.Stride, k, l.Pad, inH) {
				continue
			}
			e.loadWeights(wb, ch*k*k, k*k)
			for ky := 0; ky < k; ky++ {
				iy := oy*l.Stride + ky - l.Pad
				if iy < 0 || iy >= inH {
					continue
				}
				e.loadSpan(in, (ch*inH+iy)*inW, inW)
			}
			e.storeSpan(out, (ch*outH+oy)*outW, outW)
		}
		m.loopBranches(cb+8, uint64(c))
	}
	m.loopBranches(cb, uint64(outH))
	return out
}

// traceLinear replays a fully connected layer: per output neuron the weight
// row streams in, with the blocks gated by all-zero input lines elided.
func (e *Engine) traceLinear(l *nn.Linear, in tref) tref {
	out := e.newOutput(e.forward(l, in.t))
	inN, outN := l.In, l.Out
	cb, wb := e.lo.code[l], e.lo.weight[l]
	m := e.M
	inLines := ceilDiv(inN, floatsPerLine)

	m.fetchCode(cb, 2)
	for oc := 0; oc < outN; oc++ {
		m.Instructions += uint64(2*inN + 4)
		for li := 0; li < inLines; li++ {
			if in.lineZero[li] {
				continue // predicated MACs, no traffic
			}
			e.loadSpan(in, li*floatsPerLine, 1)
			e.loadWeights(wb, oc*inN+li*floatsPerLine, floatsPerLine)
		}
		m.loopBranches(cb+8, uint64(inLines))
	}
	e.storeSpan(out, 0, out.t.Len())
	m.loopBranches(cb, uint64(outN))
	return out
}

// traceReLU replays the activation. The default (SIMD) kernel computes
// max(x, 0) branchlessly — one load, one max, one store per lane, exactly
// like production DNN kernels — so branch events carry no activation signal.
// In branchy mode (ablation) every element instead takes a conditional
// branch on its sign. Either way, all-zero result lines are absorbed by the
// ZCA structure.
func (e *Engine) traceReLU(l *nn.ReLU, in tref) tref {
	out := e.newOutput(e.forward(l, in.t))
	cb := e.lo.code[l]
	m := e.M
	m.fetchCode(cb, 1)
	d := in.t.Data()
	for li := 0; li < in.lines(); li++ {
		e.loadSpan(in, li*floatsPerLine, 1)
		if e.branchy {
			end := (li + 1) * floatsPerLine
			if end > len(d) {
				end = len(d)
			}
			for _, v := range d[li*floatsPerLine : end] {
				m.condBranch(cb+32, v > 0)
			}
		}
		e.storeSpan(out, li*floatsPerLine, 1)
	}
	m.Instructions += uint64(2 * in.t.Len())
	m.loopBranches(cb, uint64(in.lines()))
	return out
}

// traceEltwise replays a branch-free element-wise map (sigmoid, scaling):
// load, compute, store per line.
func (e *Engine) traceEltwise(l nn.Layer, in tref, instrPerElem int, _ bool) tref {
	out := e.newOutput(e.forward(l, in.t))
	cb := e.lo.code[l]
	m := e.M
	m.fetchCode(cb, 1)
	for li := 0; li < in.lines(); li++ {
		e.loadSpan(in, li*floatsPerLine, 1)
		e.storeSpan(out, li*floatsPerLine, 1)
	}
	m.Instructions += uint64(instrPerElem * in.t.Len())
	m.loopBranches(cb, uint64(in.lines()))
	return out
}

// traceBatchNorm replays the inference-time affine map plus its parameter
// loads.
func (e *Engine) traceBatchNorm(l *nn.BatchNorm2D, in tref) tref {
	out := e.newOutput(e.forward(l, in.t))
	cb, wb := e.lo.code[l], e.lo.weight[l]
	m := e.M
	m.fetchCode(cb, 1)
	e.loadWeights(wb, 0, 2*l.C) // γ and β (folded scale/shift)
	for li := 0; li < in.lines(); li++ {
		e.loadSpan(in, li*floatsPerLine, 1)
		e.storeSpan(out, li*floatsPerLine, 1)
	}
	m.Instructions += uint64(2 * in.t.Len())
	m.loopBranches(cb, uint64(in.lines()))
	return out
}

// traceMaxPool replays pooling with its data-dependent comparison branches.
func (e *Engine) traceMaxPool(l *nn.MaxPool2D, in tref) tref {
	out := e.newOutput(e.forward(l, in.t))
	c, inH, inW := in.t.Dim(1), in.t.Dim(2), in.t.Dim(3)
	outH, outW := out.t.Dim(2), out.t.Dim(3)
	cb := e.lo.code[l]
	m := e.M
	m.fetchCode(cb, 1)
	d := in.t.Data()
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			// Load the input rows feeding this output row once.
			for ky := 0; ky < l.Kernel; ky++ {
				iy := oy*l.Stride + ky - l.Pad
				if iy < 0 || iy >= inH {
					continue
				}
				e.loadSpan(in, (ch*inH+iy)*inW, inW)
			}
			// SIMD kernels reduce windows with max instructions; the
			// branchy ablation takes one compare-and-branch per lane.
			if e.branchy {
				for ox := 0; ox < outW; ox++ {
					best := -1.0e308
					for ky := 0; ky < l.Kernel; ky++ {
						iy := oy*l.Stride + ky - l.Pad
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < l.Kernel; kx++ {
							ix := ox*l.Stride + kx - l.Pad
							if ix < 0 || ix >= inW {
								continue
							}
							v := d[(ch*inH+iy)*inW+ix]
							m.condBranch(cb+32, v > best)
							if v > best {
								best = v
							}
						}
					}
				}
			}
			m.Instructions += uint64(outW * l.Kernel * l.Kernel)
			e.storeSpan(out, (ch*outH+oy)*outW, outW)
		}
		m.loopBranches(cb+8, uint64(outH))
	}
	m.loopBranches(cb, uint64(c))
	return out
}

// traceAvgPool replays average pooling (branch-free accumulation).
func (e *Engine) traceAvgPool(l *nn.AvgPool2D, in tref) tref {
	out := e.newOutput(e.forward(l, in.t))
	c, inH, inW := in.t.Dim(1), in.t.Dim(2), in.t.Dim(3)
	outH, outW := out.t.Dim(2), out.t.Dim(3)
	cb := e.lo.code[l]
	m := e.M
	m.fetchCode(cb, 1)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			for ky := 0; ky < l.Kernel; ky++ {
				iy := oy*l.Stride + ky
				if iy >= inH {
					continue
				}
				e.loadSpan(in, (ch*inH+iy)*inW, inW)
			}
			e.storeSpan(out, (ch*outH+oy)*outW, outW)
		}
	}
	m.Instructions += uint64(in.t.Len() + out.t.Len())
	m.loopBranches(cb, uint64(c*outH))
	return out
}

// traceGAP replays global average pooling.
func (e *Engine) traceGAP(l *nn.GlobalAvgPool, in tref) tref {
	out := e.newOutput(e.forward(l, in.t))
	cb := e.lo.code[l]
	m := e.M
	m.fetchCode(cb, 1)
	for li := 0; li < in.lines(); li++ {
		e.loadSpan(in, li*floatsPerLine, 1)
	}
	e.storeSpan(out, 0, out.t.Len())
	m.Instructions += uint64(in.t.Len() + out.t.Len())
	m.loopBranches(cb, uint64(in.lines()))
	return out
}

// traceResidual replays both paths and the element-wise addition.
func (e *Engine) traceResidual(l *nn.Residual, in tref) tref {
	body := e.traceLayer(l.Body, in)
	short := in
	if l.Shortcut != nil {
		short = e.traceLayer(l.Shortcut, in)
	}
	var sum *tensor.Tensor
	if e.bN > 0 {
		sum = e.replayNext()
	} else if e.sc != nil {
		sum = e.sc.Tensor(body.t.Shape()...)
		copy(sum.Data(), body.t.Data())
		sum.AddInPlace(short.t)
	} else {
		sum = tensor.Add(body.t, short.t)
	}
	out := e.newOutput(sum)
	cb := e.lo.code[l]
	m := e.M
	m.fetchCode(cb, 1)
	for li := 0; li < out.lines(); li++ {
		e.loadSpan(body, li*floatsPerLine, 1)
		e.loadSpan(short, li*floatsPerLine, 1)
		e.storeSpan(out, li*floatsPerLine, 1)
	}
	m.Instructions += uint64(out.t.Len())
	m.loopBranches(cb, uint64(out.lines()))
	return out
}

// traceParallel replays every branch on the same input and the channel
// concatenation of their outputs.
func (e *Engine) traceParallel(l *nn.Parallel, in tref) tref {
	var refs []tref
	var outs []*tensor.Tensor
	if e.sc != nil {
		refs = e.refs.get(len(l.Branches))
		outs = e.touts.get(len(l.Branches))
	} else {
		refs = make([]tref, len(l.Branches))
		outs = make([]*tensor.Tensor, len(l.Branches))
	}
	for i, b := range l.Branches {
		refs[i] = e.traceLayer(b, in)
		outs[i] = refs[i].t
	}
	out := e.newOutput(e.concat(outs))
	cb := e.lo.code[l]
	m := e.M
	m.fetchCode(cb, 1)
	for _, r := range refs {
		for li := 0; li < r.lines(); li++ {
			e.loadSpan(r, li*floatsPerLine, 1)
		}
	}
	for li := 0; li < out.lines(); li++ {
		e.storeSpan(out, li*floatsPerLine, 1)
	}
	m.Instructions += uint64(out.t.Len())
	m.loopBranches(cb, uint64(out.lines()))
	return out
}

// traceDense replays DenseNet growth: each unit's output is concatenated
// onto the running feature map (a copy in real runtimes, and here).
func (e *Engine) traceDense(l *nn.DenseBlock, in tref) tref {
	cur := in
	cb := e.lo.code[l]
	m := e.M
	for _, u := range l.Units {
		y := e.traceLayer(u, cur)
		e.pair[0], e.pair[1] = cur.t, y.t
		cat := e.newOutput(e.concat(e.pair[:]))
		m.fetchCode(cb, 1)
		for li := 0; li < cur.lines(); li++ {
			e.loadSpan(cur, li*floatsPerLine, 1)
		}
		for li := 0; li < y.lines(); li++ {
			e.loadSpan(y, li*floatsPerLine, 1)
		}
		for li := 0; li < cat.lines(); li++ {
			e.storeSpan(cat, li*floatsPerLine, 1)
		}
		m.Instructions += uint64(cat.t.Len())
		m.loopBranches(cb, uint64(cat.lines()))
		cur = cat
	}
	return cur
}

// traceSE replays squeeze-excite: the squeeze reduction, the two-layer
// gating MLP (weights stream like a linear layer), and the channel-scaling
// pass.
func (e *Engine) traceSE(l *nn.SqueezeExcite, in tref) tref {
	out := e.newOutput(e.forward(l, in.t))
	cb, wb := e.lo.code[l], e.lo.weight[l]
	m := e.M
	m.fetchCode(cb, 2)
	// Squeeze: stream the whole input once.
	for li := 0; li < in.lines(); li++ {
		e.loadSpan(in, li*floatsPerLine, 1)
	}
	m.Instructions += uint64(in.t.Len())
	// Gating MLP: FC1 (C→R) and FC2 (R→C) weight streams.
	fc1 := l.C * l.Reduced
	fc2 := l.Reduced * l.C
	e.loadWeights(wb, 0, fc1+fc2)
	m.Instructions += uint64(2*(fc1+fc2) + 10*l.C)
	// Scale: read input and write gated output.
	for li := 0; li < in.lines(); li++ {
		e.loadSpan(in, li*floatsPerLine, 1)
		e.storeSpan(out, li*floatsPerLine, 1)
	}
	m.Instructions += uint64(in.t.Len())
	m.loopBranches(cb, uint64(in.lines()))
	return out
}
