package engine

import (
	"math"
	"testing"

	"advhunter/internal/models"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/cache"
	"advhunter/internal/uarch/hpc"
)

// differentialConfigs spans every machine feature whose event accounting the
// fast replay path re-implements: all four replacement policies, both
// prefetchers, the co-runner (which forces per-line run fallback), branchy
// kernels, quantised zero detection, a TLB-less hierarchy, and a kitchen-sink
// combination.
func differentialConfigs() []MachineConfig {
	var out []MachineConfig
	for _, pol := range []cache.Policy{cache.LRU, cache.PLRU, cache.SRRIP, cache.Random} {
		cfg := DefaultMachineConfig()
		cfg.Hierarchy.L1I.Policy = pol
		cfg.Hierarchy.L1D.Policy = pol
		cfg.Hierarchy.L2.Policy = pol
		cfg.Hierarchy.LLC.Policy = pol
		out = append(out, cfg)
	}
	nl := DefaultMachineConfig()
	nl.Hierarchy.L1DPrefetcher = &cache.NextLinePrefetcher{LineB: 64}
	out = append(out, nl)
	st := DefaultMachineConfig()
	st.Hierarchy.L1DPrefetcher = &cache.StridePrefetcher{LineB: 64, Degree: 2}
	out = append(out, st)
	co := DefaultMachineConfig()
	co.CoRunner = CoRunnerConfig{EveryN: 64, Burst: 4, Seed: 9}
	out = append(out, co)
	br := DefaultMachineConfig()
	br.BranchyKernels = true
	out = append(out, br)
	q := DefaultMachineConfig()
	q.QuantLevels = 127
	out = append(out, q)
	nod := DefaultMachineConfig()
	nod.Hierarchy.DTLB = cache.TLBConfig{}
	out = append(out, nod)
	mix := DefaultMachineConfig()
	mix.Hierarchy.L1D.Policy = cache.SRRIP
	mix.Hierarchy.L2.Policy = cache.PLRU
	mix.Hierarchy.LLC.Policy = cache.Random
	mix.Hierarchy.L1DPrefetcher = &cache.StridePrefetcher{LineB: 64, Degree: 3}
	mix.CoRunner = CoRunnerConfig{EveryN: 37, Burst: 2, Seed: 5}
	mix.BranchyKernels = true
	out = append(out, mix)
	return out
}

// randInput fills a fresh input tensor from r.
func randInput(r *rng.Rand) *tensor.Tensor {
	x := tensor.New(1, 16, 16)
	d := x.Data()
	for i := range d {
		d[i] = r.Float64()*2 - 1
	}
	return x
}

// requireSame asserts two inference outcomes are bit-identical.
func requireSame(t *testing.T, label string, pf, ps int, cf, cs float64, nf, ns hpc.Counts) {
	t.Helper()
	if pf != ps {
		t.Fatalf("%s: pred fast=%d scalar=%d", label, pf, ps)
	}
	if math.Float64bits(cf) != math.Float64bits(cs) {
		t.Fatalf("%s: conf fast=%x scalar=%x", label, math.Float64bits(cf), math.Float64bits(cs))
	}
	for e := hpc.Event(0); e < hpc.NumEvents; e++ {
		if math.Float64bits(nf[e]) != math.Float64bits(ns[e]) {
			t.Fatalf("%s: event %v fast=%v scalar=%v", label, e, nf[e], ns[e])
		}
	}
}

// TestFastReplayMatchesScalar pins the coalesced zero-allocation replay path
// to the original per-line scalar path, count for count: for every
// architecture and machine configuration, predictions, confidences and all
// HPC events must be bit-identical, on the original engines, on Clone
// replicas, and on repeated queries of one input.
func TestFastReplayMatchesScalar(t *testing.T) {
	for _, arch := range models.Architectures() {
		for ci, cfg := range differentialConfigs() {
			scfg := cfg
			scfg.ScalarReplay = true
			// Identically-seeded model builds: scalar-mode forwards write
			// layer caches, so the two engines get private model instances.
			fast := New(models.MustBuild(arch, 1, 16, 16, 10, 7), cfg)
			slow := New(models.MustBuild(arch, 1, 16, 16, 10, 7), scfg)
			r := rng.New(uint64(ci)*1000003 + 17)
			for rep := 0; rep < 2; rep++ {
				x := randInput(r)
				pf, cf, nf := fast.InferConf(x)
				ps, cs, ns := slow.InferConf(x)
				requireSame(t, arch+" rep", pf, ps, cf, cs, nf, ns)
			}
			// Replicas must replay the identical trace.
			fc, sc := fast.Clone(), slow.Clone()
			x := randInput(r)
			pf, cf, nf := fc.InferConf(x)
			ps, cs, ns := sc.InferConf(x)
			requireSame(t, arch+" clone", pf, ps, cf, cs, nf, ns)
			// Repeated query: re-measuring the same input must agree across
			// paths. (Not necessarily with its own first reading — the Random
			// policy's victim stream deliberately survives machine resets.)
			p2, c2, n2 := fc.InferConf(x)
			ps2, cs2, ns2 := sc.InferConf(x)
			requireSame(t, arch+" repeat", p2, ps2, c2, cs2, n2, ns2)
		}
	}
}

// TestCloneSharesLayoutFast verifies the fast-mode Clone fix: replicas share
// the original's model and address layout by pointer identity instead of
// rebuilding them, which both saves the rebuild and guarantees an identical
// synthetic memory map.
func TestCloneSharesLayoutFast(t *testing.T) {
	e := New(models.MustBuild("simplecnn", 1, 16, 16, 10, 3), DefaultMachineConfig())
	c := e.Clone()
	if c.lo != e.lo {
		t.Fatal("fast-mode Clone must share the layout pointer")
	}
	if c.Model != e.Model {
		t.Fatal("fast-mode Clone must share the model")
	}
	// Scalar mode keeps the deep-clone semantics.
	scfg := DefaultMachineConfig()
	scfg.ScalarReplay = true
	se := New(models.MustBuild("simplecnn", 1, 16, 16, 10, 3), scfg)
	sc := se.Clone()
	if sc.Model == se.Model {
		t.Fatal("scalar-mode Clone must deep-clone the model")
	}
}
