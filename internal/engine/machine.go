// Package engine executes a trained model on the simulated machine,
// producing both the model's prediction and the Hardware Performance Counter
// reading an observer of that inference would see.
//
// Execution model. The engine replays the inference as a *predicated sparse*
// runtime: every multiply-accumulate issues as an instruction regardless of
// operand values (so the retired-instruction and branch counts are
// input-independent, as the paper observes on dense PyTorch), but the memory
// system is value-aware — cache lines whose activation data is entirely zero
// are satisfied by the zero-content-aware (ZCA) structure and never move
// data, and weight blocks gated by an all-zero activation row group have
// their loads elided. Which lines move is therefore a function of *which
// neurons fire*, which is exactly the data-flow side channel AdvHunter
// exploits: clean inputs of a class produce a characteristic activation
// sparsity pattern, adversarial inputs steered into that class do not.
//
// The numerical forward pass is delegated to the nn layers themselves, so
// the engine's prediction is the model's prediction by construction; the
// engine only derives the access trace from each layer's (input, output)
// pair and parameters.
package engine

import (
	"advhunter/internal/uarch/branch"
	"advhunter/internal/uarch/cache"
	"advhunter/internal/uarch/hpc"
)

// lineB is the cache-line size the engine assumes when laying out tensors;
// it matches the default hierarchy configuration.
const lineB = 64

// floatsPerLine is how many float64 activations share one cache line.
const floatsPerLine = lineB / 8

// Address-space layout of the simulated process.
const (
	codeBase   = 0x0040_0000 // per-layer code regions, 4 KiB apart
	codeStride = 0x1000
	weightBase = 0x1000_0000 // model parameters, laid out sequentially
	inputBase  = 0x1f00_0000 // the input image buffer
	arenaBase  = 0x2000_0000 // activation arena (ring)
	arenaSize  = 4 << 20
)

// Machine bundles the microarchitectural state of the simulated core.
type Machine struct {
	Hier *cache.Hierarchy
	BP   *branch.Counted
	// Instructions is the architectural retired-instruction counter.
	Instructions uint64

	co     *coRunner
	scalar bool
}

// MachineConfig selects the hardware model.
type MachineConfig struct {
	Hierarchy cache.HierarchyConfig
	// Predictor is the conditional-branch predictor; nil selects a
	// 4096-entry gshare with 8 history bits.
	Predictor branch.Predictor
	// BranchyKernels switches the modelled inference kernels from
	// branchless SIMD (ReLU/pool via max instructions, the way production
	// BLAS/DNN kernels compile — and why the paper sees no branch-miss
	// signal) to scalar code with one conditional branch per element. The
	// branchy mode exists as an ablation: it shows branch-misses becoming a
	// usable side channel when kernels are compiled naively.
	BranchyKernels bool
	// QuantLevels models the deployed tensor storage format: activations
	// whose magnitude falls below maxAbs/QuantLevels quantize to the zero
	// point and are stored as exact zeros. The default of 7 corresponds to
	// 3-bit magnitude storage, i.e. the aggressively quantized block-sparse
	// formats used in edge deployment, and maximises the sparsity the ZCA
	// memory system can see; 127 = int8, 15 = int4, 0 = float storage
	// (only post-ReLU zeros count). Classification is always computed in
	// full precision; QuantLevels only affects which lines the memory
	// system sees as zero. The ablation-quant experiment sweeps this knob.
	QuantLevels int
	// CoRunner optionally injects shared-LLC contention from a co-located
	// process (mechanical interference, as opposed to the post-hoc
	// statistical noise model).
	CoRunner CoRunnerConfig
	// ScalarReplay selects the original per-line replay loops and the
	// allocating layer forward passes instead of the coalesced-run fast path
	// with the scratch arena. Counts and predictions are bit-identical either
	// way — the flag exists so differential tests and ablations can A/B the
	// two implementations.
	ScalarReplay bool
}

// DefaultMachineConfig mirrors the scaled-down desktop part described in
// cache.DefaultHierarchyConfig.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{Hierarchy: cache.DefaultHierarchyConfig(), QuantLevels: 7}
}

// NewMachine builds the simulated core. A configured predictor is forked so
// machines built from one shared MachineConfig never share predictor tables.
func NewMachine(cfg MachineConfig) *Machine {
	var p branch.Predictor
	if cfg.Predictor != nil {
		p = cfg.Predictor.Fork()
	} else {
		p = branch.NewGShare(12, 8)
	}
	hier := cache.NewHierarchy(cfg.Hierarchy)
	return &Machine{
		Hier:   hier,
		BP:     branch.NewCounted(p),
		co:     newCoRunner(cfg.CoRunner, hier.LLC),
		scalar: cfg.ScalarReplay,
	}
}

// Reset returns the machine to a cold, deterministic state.
func (m *Machine) Reset() {
	m.Hier.Reset()
	m.BP.Reset()
	m.Instructions = 0
	if m.co != nil {
		m.co.reset()
	}
}

// Counts snapshots the HPC bank.
func (m *Machine) Counts() hpc.Counts {
	return hpc.Collect(m.Instructions, m.Hier, m.BP)
}

// loadLine issues one demand load of the line containing addr.
func (m *Machine) loadLine(addr uint64, zero bool) {
	m.Hier.Load(addr&^uint64(lineB-1), zero)
	if m.co != nil {
		m.co.tick()
	}
}

// storeLine issues one demand store of the line containing addr.
func (m *Machine) storeLine(addr uint64, zero bool) {
	m.Hier.Store(addr&^uint64(lineB-1), zero)
	if m.co != nil {
		m.co.tick()
	}
}

// loadRun issues n demand loads over consecutive lines starting at base
// (line-aligned), with zero[i] flagging ZCA-absorbed lines (nil = none zero).
// With a co-runner attached, injection ticks must interleave per access, so
// the run degrades to the per-line path; otherwise the whole span is resolved
// by the hierarchy's run loop. Event order is identical in both cases.
func (m *Machine) loadRun(base uint64, n int, zero []bool) {
	if m.co == nil {
		m.Hier.LoadRun(base, n, zero)
		return
	}
	addr := base
	for i := 0; i < n; i++ {
		m.Hier.Load(addr, zero != nil && zero[i])
		m.co.tick()
		addr += lineB
	}
}

// storeRun is loadRun for demand stores.
func (m *Machine) storeRun(base uint64, n int, zero []bool) {
	if m.co == nil {
		m.Hier.StoreRun(base, n, zero)
		return
	}
	addr := base
	for i := 0; i < n; i++ {
		m.Hier.Store(addr, zero != nil && zero[i])
		m.co.tick()
		addr += lineB
	}
}

// fetchCode fetches n consecutive code lines starting at base. Instruction
// fetches never tick the co-runner, so the run path is always legal; the
// scalar loop is kept selectable for honest A/B benchmarking.
func (m *Machine) fetchCode(base uint64, n int) {
	if m.scalar {
		for i := 0; i < n; i++ {
			m.Hier.Fetch(base + uint64(i*lineB))
		}
		return
	}
	m.Hier.FetchRun(base, n)
}

// loopBranches accounts for a counted loop at the given site: iterations
// back-edges predicted taken plus one mispredicted exit.
func (m *Machine) loopBranches(pc uint64, iterations uint64) {
	m.BP.FeedBulk(pc, iterations)
}

// condBranch feeds one data-dependent conditional branch.
func (m *Machine) condBranch(pc uint64, taken bool) {
	m.BP.Feed(pc, taken)
}
