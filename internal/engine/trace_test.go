package engine

import (
	"testing"

	"advhunter/internal/models"
	"advhunter/internal/nn"
	"advhunter/internal/rng"
	"advhunter/internal/tensor"
	"advhunter/internal/uarch/hpc"
)

// tinyModel wraps a hand-built net in a Model so the engine can run it.
func tinyModel(inC, h, w, classes int, layers ...nn.Layer) *models.Model {
	net := nn.NewSequential("tiny", layers...)
	return &models.Model{
		Meta: models.Meta{Arch: "tiny", InC: inC, InH: h, InW: w, Classes: classes},
		Net:  net,
	}
}

// flatten+linear tail so every tiny net ends in logits.
func tail(features, classes int, seed uint64) []nn.Layer {
	fc := nn.NewLinear("fc", features, classes)
	nn.InitHe(rng.New(seed), fc)
	return []nn.Layer{nn.NewFlatten("flat"), fc}
}

func TestConvElisionReducesTraffic(t *testing.T) {
	conv := nn.NewConv2D("c", 2, 4, 3, 1, 1)
	nn.InitHe(rng.New(1), conv)
	m := tinyModel(2, 8, 8, 3, append([]nn.Layer{conv}, tail(4*8*8, 3, 2)...)...)
	e := NewDefault(m)

	dense := tensor.New(2, 8, 8)
	rng.New(3).FillUniform(dense.Data(), 0.5, 1) // no zeros anywhere
	_, cDense := e.Infer(dense)

	half := dense.Clone()
	// Zero out channel 1 entirely: its row groups elide weight+activation loads.
	copy(half.Data()[64:128], make([]float64, 64))
	_, cHalf := e.Infer(half)

	if cHalf.Get(hpc.L1DLoadMisses) >= cDense.Get(hpc.L1DLoadMisses) {
		t.Fatalf("zero channel did not reduce load misses: %v vs %v",
			cHalf.Get(hpc.L1DLoadMisses), cDense.Get(hpc.L1DLoadMisses))
	}
	// Predicated execution: instruction count must NOT change.
	if cHalf.Get(hpc.Instructions) != cDense.Get(hpc.Instructions) {
		t.Fatal("elision changed the instruction count")
	}
}

func TestLinearElisionSkipsWeightLines(t *testing.T) {
	fc := nn.NewLinear("fc", 64, 4)
	nn.InitHe(rng.New(4), fc)
	m := tinyModel(1, 8, 8, 4, nn.NewFlatten("flat"), fc)
	e := NewDefault(m)

	dense := tensor.New(1, 8, 8)
	rng.New(5).FillUniform(dense.Data(), 0.5, 1)
	_, cDense := e.Infer(dense)

	sparse := dense.Clone()
	copy(sparse.Data()[:32], make([]float64, 32)) // 4 of 8 input lines zero
	_, cSparse := e.Infer(sparse)

	if cSparse.Get(hpc.L1DLoadMisses) >= cDense.Get(hpc.L1DLoadMisses) {
		t.Fatal("zero input lines did not skip weight traffic")
	}
}

func TestReLUZeroStoresAbsorbed(t *testing.T) {
	m := tinyModel(1, 8, 8, 2, append([]nn.Layer{nn.NewReLU("r")}, tail(64, 2, 6)...)...)
	e := NewDefault(m)
	neg := tensor.New(1, 8, 8).Fill(-1) // ReLU output all zero
	_, _ = e.Infer(neg)
	if e.M.Hier.ZeroStores == 0 {
		t.Fatal("all-zero ReLU output generated store traffic")
	}
}

func TestBranchyModeAddsDataBranches(t *testing.T) {
	build := func(branchy bool) hpc.Counts {
		relu := nn.NewReLU("r")
		m := tinyModel(1, 8, 8, 2, append([]nn.Layer{relu}, tail(64, 2, 7)...)...)
		cfg := DefaultMachineConfig()
		cfg.BranchyKernels = branchy
		e := New(m, cfg)
		x := tensor.New(1, 8, 8)
		rng.New(8).FillNormal(x.Data(), 0, 1)
		_, c := e.Infer(x)
		return c
	}
	simd := build(false)
	branchy := build(true)
	// Branchy kernels add one branch per element (64).
	if branchy.Get(hpc.Branches) < simd.Get(hpc.Branches)+64 {
		t.Fatalf("branchy mode added %v branches, want ≥ 64",
			branchy.Get(hpc.Branches)-simd.Get(hpc.Branches))
	}
}

func TestInstructionCountScalesWithWork(t *testing.T) {
	// A conv with twice the output channels must retire ~twice the MACs.
	counts := func(outC int) float64 {
		conv := nn.NewConv2D("c", 1, outC, 3, 1, 1)
		nn.InitHe(rng.New(9), conv)
		m := tinyModel(1, 8, 8, 2, append([]nn.Layer{conv}, tail(outC*64, 2, 10)...)...)
		e := NewDefault(m)
		x := tensor.New(1, 8, 8)
		rng.New(11).FillUniform(x.Data(), 0, 1)
		_, c := e.Infer(x)
		return c.Get(hpc.Instructions)
	}
	c4, c8 := counts(4), counts(8)
	ratio := c8 / c4
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("instructions scaled by %.2f for 2x channels", ratio)
	}
}

func TestCoRunnerInflatesLLCTraffic(t *testing.T) {
	build := func(every int) hpc.Counts {
		m := models.MustBuild("simplecnn", 1, 28, 28, 10, 12)
		cfg := DefaultMachineConfig()
		if every > 0 {
			cfg.CoRunner = CoRunnerConfig{EveryN: every, Burst: 4, Seed: 5}
		}
		e := New(m, cfg)
		x := tensor.New(1, 28, 28)
		rng.New(13).FillUniform(x.Data(), 0, 1)
		_, c := e.Infer(x)
		return c
	}
	idle := build(0)
	busy := build(8)
	if busy.Get(hpc.CacheReferences) <= idle.Get(hpc.CacheReferences) {
		t.Fatal("co-runner generated no LLC references")
	}
	if busy.Get(hpc.CacheMisses) <= idle.Get(hpc.CacheMisses) {
		t.Fatal("co-runner contention produced no extra misses")
	}
}

func TestCoRunnerDeterministic(t *testing.T) {
	m := models.MustBuild("simplecnn", 1, 28, 28, 10, 12)
	cfg := DefaultMachineConfig()
	cfg.CoRunner = CoRunnerConfig{EveryN: 16, Burst: 2, Seed: 9}
	e := New(m, cfg)
	x := tensor.New(1, 28, 28)
	rng.New(14).FillUniform(x.Data(), 0, 1)
	_, a := e.Infer(x)
	_, b := e.Infer(x)
	if a != b {
		t.Fatal("co-runner broke per-image determinism")
	}
}

func TestEngineRejectsUnknownLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for untraceable layer")
		}
	}()
	m := tinyModel(1, 4, 4, 2, fakeLayer{})
	e := NewDefault(m)
	e.Infer(tensor.New(1, 4, 4))
}

// fakeLayer is a layer type the engine has no tracer for.
type fakeLayer struct{}

func (fakeLayer) Name() string                                        { return "fake" }
func (fakeLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (fakeLayer) Backward(g *tensor.Tensor) *tensor.Tensor            { return g }
func (fakeLayer) Params() []*nn.Param                                 { return nil }
