package nn

import (
	"math"

	"advhunter/internal/tensor"
)

// BatchNorm2D normalises each channel of a [N, C, H, W] tensor.
//
// Training mode uses batch statistics and updates exponential running
// estimates; inference mode uses the running estimates, making the layer a
// fixed per-channel affine map (which is what the instrumented engine
// replays).
type BatchNorm2D struct {
	label string
	C     int
	Eps   float64
	// Momentum is the update weight of the *new* batch statistic in the
	// running estimates (PyTorch convention, default 0.1).
	Momentum float64

	Gamma, Beta             *Param
	RunningMean, RunningVar *tensor.Tensor

	// caches
	in        *tensor.Tensor
	xhat      []float64
	invStd    []float64 // per channel
	lastTrain bool
	evalScale []float64 // per-channel scale of the last eval-mode forward
}

// NewBatchNorm2D constructs a batch-norm layer with γ=1, β=0 and running
// statistics (mean 0, var 1).
func NewBatchNorm2D(label string, c int) *BatchNorm2D {
	l := &BatchNorm2D{label: label, C: c, Eps: 1e-5, Momentum: 0.1}
	l.Gamma = newParam(label+".gamma", tensor.New(c).Fill(1))
	l.Beta = newParam(label+".beta", tensor.New(c))
	l.RunningMean = tensor.New(c)
	l.RunningVar = tensor.New(c).Fill(1)
	return l
}

// Name returns the layer label.
func (l *BatchNorm2D) Name() string { return l.label }

// Params returns γ and β.
func (l *BatchNorm2D) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// Forward normalises per channel. In training mode batch statistics are used
// and running statistics updated; in inference mode the running statistics
// are applied.
func (l *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	count := float64(n * plane)
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	gd, bd := l.Gamma.Value.Data(), l.Beta.Value.Data()

	l.lastTrain = train
	if !train {
		rm, rv := l.RunningMean.Data(), l.RunningVar.Data()
		l.evalScale = make([]float64, c)
		for ch := 0; ch < c; ch++ {
			scale := gd[ch] / math.Sqrt(rv[ch]+l.Eps)
			shift := bd[ch] - rm[ch]*scale
			l.evalScale[ch] = scale
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for p := 0; p < plane; p++ {
					od[base+p] = xd[base+p]*scale + shift
				}
			}
		}
		return out
	}

	l.in = x
	l.xhat = make([]float64, len(xd))
	l.invStd = make([]float64, c)
	rm, rv := l.RunningMean.Data(), l.RunningVar.Data()
	for ch := 0; ch < c; ch++ {
		mean, sq := 0.0, 0.0
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				v := xd[base+p]
				mean += v
				sq += v * v
			}
		}
		mean /= count
		variance := sq/count - mean*mean
		if variance < 0 {
			variance = 0
		}
		invStd := 1 / math.Sqrt(variance+l.Eps)
		l.invStd[ch] = invStd
		rm[ch] = (1-l.Momentum)*rm[ch] + l.Momentum*mean
		rv[ch] = (1-l.Momentum)*rv[ch] + l.Momentum*variance
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				xh := (xd[base+p] - mean) * invStd
				l.xhat[base+p] = xh
				od[base+p] = gd[ch]*xh + bd[ch]
			}
		}
	}
	return out
}

// Backward implements the batch-norm gradient. After a training-mode
// forward it differentiates through the batch statistics and accumulates
// dγ/dβ. After an inference-mode forward the layer is a fixed affine map, so
// the input gradient is a per-channel scaling and parameter gradients are
// left untouched — this is the path white-box attacks take when
// differentiating the deployed (eval-mode) network.
func (l *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !l.lastTrain {
		n, c := grad.Dim(0), grad.Dim(1)
		plane := grad.Dim(2) * grad.Dim(3)
		dx := tensor.New(grad.Shape()...)
		gd, dxd := grad.Data(), dx.Data()
		for i := 0; i < n; i++ {
			for ch := 0; ch < c; ch++ {
				s := l.evalScale[ch]
				base := (i*c + ch) * plane
				for p := 0; p < plane; p++ {
					dxd[base+p] = gd[base+p] * s
				}
			}
		}
		return dx
	}
	n, c := l.in.Dim(0), l.in.Dim(1)
	plane := l.in.Dim(2) * l.in.Dim(3)
	count := float64(n * plane)
	dx := tensor.New(l.in.Shape()...)
	gd := grad.Data()
	dxd := dx.Data()
	gamma := l.Gamma.Value.Data()
	dGamma, dBeta := l.Gamma.Grad.Data(), l.Beta.Grad.Data()
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				dy := gd[base+p]
				sumDy += dy
				sumDyXhat += dy * l.xhat[base+p]
			}
		}
		dGamma[ch] += sumDyXhat
		dBeta[ch] += sumDy
		k := gamma[ch] * l.invStd[ch]
		meanDy := sumDy / count
		meanDyXhat := sumDyXhat / count
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				dxd[base+p] = k * (gd[base+p] - meanDy - l.xhat[base+p]*meanDyXhat)
			}
		}
	}
	return dx
}

// InferenceAffine returns the per-channel (scale, shift) pair the layer
// applies in inference mode; exposed for the instrumented engine.
func (l *BatchNorm2D) InferenceAffine() (scale, shift []float64) {
	scale = make([]float64, l.C)
	shift = make([]float64, l.C)
	gd, bd := l.Gamma.Value.Data(), l.Beta.Value.Data()
	rm, rv := l.RunningMean.Data(), l.RunningVar.Data()
	for ch := 0; ch < l.C; ch++ {
		scale[ch] = gd[ch] / math.Sqrt(rv[ch]+l.Eps)
		shift[ch] = bd[ch] - rm[ch]*scale[ch]
	}
	return scale, shift
}
