package nn

import (
	"math"

	"advhunter/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
//
// If Record is non-nil it is invoked after every inference-mode forward pass
// with the layer output; Figure 1 of the paper (activation-frequency
// distributions) is produced through this hook.
type ReLU struct {
	label string
	// Record, when set, observes the output of each inference-mode forward.
	Record func(out *tensor.Tensor)

	mask []bool
}

// NewReLU constructs a ReLU activation.
func NewReLU(label string) *ReLU { return &ReLU{label: label} }

// Name returns the layer label.
func (l *ReLU) Name() string { return l.label }

// Params returns nil; ReLU has no parameters.
func (l *ReLU) Params() []*Param { return nil }

// Forward zeroes negative entries and caches the pass-through mask.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	l.mask = make([]bool, len(xd))
	for i, v := range xd {
		if v > 0 {
			od[i] = v
			l.mask[i] = true
		}
	}
	if !train && l.Record != nil {
		l.Record(out)
	}
	return out
}

// Backward passes gradients through the positive mask.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i, m := range l.mask {
		if m {
			od[i] = gd[i]
		}
	}
	return out
}

// Sigmoid applies the logistic function element-wise.
type Sigmoid struct {
	label string
	out   *tensor.Tensor
}

// NewSigmoid constructs a sigmoid activation.
func NewSigmoid(label string) *Sigmoid { return &Sigmoid{label: label} }

// Name returns the layer label.
func (l *Sigmoid) Name() string { return l.label }

// Params returns nil; Sigmoid has no parameters.
func (l *Sigmoid) Params() []*Param { return nil }

// Forward computes 1/(1+e^{-x}).
func (l *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone().Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	l.out = out
	return out
}

// Backward computes grad · σ(x)·(1−σ(x)).
func (l *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	gd, od, sd := grad.Data(), out.Data(), l.out.Data()
	for i := range gd {
		od[i] = gd[i] * sd[i] * (1 - sd[i])
	}
	return out
}

// Flatten reshapes [N, ...] to [N, features].
type Flatten struct {
	label   string
	inShape []int
}

// NewFlatten constructs a flattening layer.
func NewFlatten(label string) *Flatten { return &Flatten{label: label} }

// Name returns the layer label.
func (l *Flatten) Name() string { return l.label }

// Params returns nil; Flatten has no parameters.
func (l *Flatten) Params() []*Param { return nil }

// Forward collapses all non-batch dimensions.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.inShape = append([]int(nil), x.Shape()...)
	features := 1
	for _, d := range x.Shape()[1:] {
		features *= d
	}
	return x.Reshape(x.Dim(0), features)
}

// Backward restores the cached input shape.
func (l *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(l.inShape...)
}

// Dropout zeroes a fraction of activations during training and rescales the
// rest (inverted dropout); inference is the identity.
type Dropout struct {
	label string
	// Rate is the drop probability in [0, 1).
	Rate float64
	// Rand must be set before training-mode forward passes.
	Rand interface{ Float64() float64 }

	mask []float64
}

// NewDropout constructs a dropout layer with the given drop probability.
func NewDropout(label string, rate float64, r interface{ Float64() float64 }) *Dropout {
	return &Dropout{label: label, Rate: rate, Rand: r}
}

// Name returns the layer label.
func (l *Dropout) Name() string { return l.label }

// Params returns nil; Dropout has no parameters.
func (l *Dropout) Params() []*Param { return nil }

// Forward drops activations in training mode and is the identity otherwise.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.Rate == 0 {
		l.mask = nil
		return x
	}
	keep := 1 - l.Rate
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	l.mask = make([]float64, len(xd))
	for i := range xd {
		if l.Rand.Float64() >= l.Rate {
			l.mask[i] = 1 / keep
			od[i] = xd[i] / keep
		}
	}
	return out
}

// Backward applies the cached mask (identity if the last forward was
// inference-mode).
func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		return grad
	}
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i := range gd {
		od[i] = gd[i] * l.mask[i]
	}
	return out
}
