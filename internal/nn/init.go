package nn

import (
	"math"
	"strings"

	"advhunter/internal/rng"
)

// InitHe fills every weight parameter of the given layers with Kaiming-He
// normal values (std = sqrt(2 / fanIn)) and leaves biases and batch-norm
// affine parameters at their constructed values. Parameters are visited in
// declaration order, so a fixed seed yields identical networks.
func InitHe(r *rng.Rand, layers ...Layer) {
	for _, l := range layers {
		for _, p := range l.Params() {
			if !strings.HasSuffix(p.Name, ".W") {
				continue
			}
			fanIn := fanInOf(p.Value.Shape())
			std := math.Sqrt(2 / float64(fanIn))
			r.FillNormal(p.Value.Data(), 0, std)
		}
	}
}

// fanInOf derives the fan-in from a weight shape: [out, in] for linear,
// [outC, inC, k, k] for conv, [C, k, k] for depthwise conv.
func fanInOf(shape []int) int {
	switch len(shape) {
	case 2:
		return shape[1]
	case 3:
		return shape[1] * shape[2]
	case 4:
		return shape[1] * shape[2] * shape[3]
	default:
		n := 1
		for _, d := range shape[1:] {
			n *= d
		}
		if n == 0 {
			return 1
		}
		return n
	}
}

// ZeroGrads clears every parameter gradient of the given layers.
func ZeroGrads(layers ...Layer) {
	for _, l := range layers {
		for _, p := range l.Params() {
			p.ZeroGrad()
		}
	}
}
