package nn

import (
	"fmt"
	"math"

	"advhunter/internal/tensor"
)

// Softmax converts logits [N, C] to probabilities row by row, using the
// max-subtraction trick for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	checkRank("Softmax", logits, 2)
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	ld, od := logits.Data(), out.Data()
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		m := math.Inf(-1)
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			od[i*c+j] = e
			sum += e
		}
		for j := 0; j < c; j++ {
			od[i*c+j] /= sum
		}
	}
	return out
}

// SoftmaxCrossEntropy returns the mean cross-entropy loss over the batch and
// the gradient of that loss with respect to the logits. labels[i] is the
// true class of row i.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	probs := Softmax(logits)
	grad := probs.Clone()
	gd := grad.Data()
	loss := 0.0
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		p := probs.At(i, y)
		loss -= math.Log(math.Max(p, 1e-300))
		gd[i*c+y] -= 1
	}
	grad.ScaleInPlace(invN)
	return loss * invN, grad
}

// CrossEntropyTowards returns the gradient of the mean cross-entropy toward
// an arbitrary per-row target class (identical math to SoftmaxCrossEntropy,
// exposed separately so targeted attacks read naturally at call sites).
func CrossEntropyTowards(logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	return SoftmaxCrossEntropy(logits, targets)
}
