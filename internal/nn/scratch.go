package nn

import (
	"math"

	"advhunter/internal/tensor"
)

// Scratch is a per-engine arena of reusable forward-pass buffers. The
// instrumented engine replays the same deterministic layer sequence every
// inference, so the i-th Tensor/View request of one pass has the same shape
// as the i-th request of the next; Scratch exploits that by handing out the
// same backing buffers in call order. After the first inference a steady-state
// forward pass through ForwardScratch performs zero heap allocations.
//
// Contract:
//   - Reset must be called at the start of every inference; it rewinds the
//     slot cursors without freeing anything.
//   - Tensors returned by Tensor hold UNINITIALIZED contents (whatever the
//     previous pass left there). Every consumer must fully overwrite its
//     output — including explicit zero writes on branches the allocating
//     forward passes got for free from tensor.New.
//   - Buffers remain valid until the next Reset, matching the engine's
//     activation lifetime (traces only reference a layer's input and output).
//
// Scratch is not safe for concurrent use; engine replicas each own one.
type Scratch struct {
	tensors []*tensor.Tensor
	ti      int
	views   []*tensor.Tensor
	vi      int
}

// Reset rewinds the arena for the next inference. Buffers are retained.
func (s *Scratch) Reset() { s.ti, s.vi = 0, 0 }

// Tensor returns a tensor of the given shape backed by the arena. Contents
// are uninitialized. Slot storage is reused whenever its capacity covers the
// requested element count — not only on an exact match — so passes whose
// widths vary (micro-batches of 3, then 8, then 1 through the same engine)
// converge on the high-water buffer instead of reallocating on every width
// change. Undersized slots grow once and stay grown.
func (s *Scratch) Tensor(shape ...int) *tensor.Tensor {
	if s.ti == len(s.tensors) {
		t := tensor.New(shape...)
		s.tensors = append(s.tensors, t)
		s.ti++
		return t
	}
	t := s.tensors[s.ti]
	s.ti++
	n := 1
	for _, d := range shape {
		n *= d
	}
	if d := t.Data(); cap(d) >= n {
		return t.Alias(d[:n], shape...)
	}
	t = tensor.New(shape...)
	s.tensors[s.ti-1] = t
	return t
}

// View returns a pooled tensor aliasing elements [off, off+len(shape)) of
// src's storage — a window, not a copy; writes through the view are writes
// to src.
func (s *Scratch) View(src *tensor.Tensor, off int, shape ...int) *tensor.Tensor {
	if s.vi == len(s.views) {
		s.views = append(s.views, &tensor.Tensor{})
	}
	t := s.views[s.vi]
	s.vi++
	n := 1
	for _, d := range shape {
		n *= d
	}
	return t.Alias(src.Data()[off:off+n], shape...)
}

// ScratchForwarder is implemented by layers that can run an inference-mode
// forward pass entirely out of a Scratch arena: no backward caches are
// written, no heap allocation occurs in steady state, and the returned values
// are bit-identical to Forward(x, false).
type ScratchForwarder interface {
	ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor
}

// ForwardScratch implements ScratchForwarder. Identical arithmetic to
// Forward (im2col + matmul, then bias), but the column and product buffers
// are arena slots reused across samples and passes, and no backward caches
// (in/cols/geom) are recorded. Single samples run the historical per-sample
// path; a batch is fused into ONE panel-packed GEMM over the batched im2col
// operand. Fusion changes only which GEMM call computes each sample's
// columns — the weights operand, k order and zero-skip pattern are shared —
// so batched outputs are bit-identical to the per-sample loop.
func (l *Conv2D) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	checkRank(l.label, x, 4)
	if x.Dim(1) != l.InC {
		panic("nn: " + l.label + ": channel mismatch in scratch forward")
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	g := l.Geom(h, w)
	oh, ow := g.OutH(), g.OutW()
	plane := oh * ow
	out := s.Tensor(n, l.OutC, oh, ow)
	wm := s.View(l.W.Value, 0, l.OutC, l.InC*l.Kernel*l.Kernel)
	bias := l.B.Value.Data()
	od := out.Data()
	if n > 1 {
		cols := s.Tensor(l.InC*l.Kernel*l.Kernel, n*plane)
		tensor.Im2ColBatchInto(cols, x, g)
		y := s.Tensor(l.OutC, n*plane)
		pack := s.Tensor(tensor.MatMulPackLen())
		tensor.MatMulPackedInto(y, wm, cols, pack.Data())
		yd := y.Data()
		for i := 0; i < n; i++ {
			for oc := 0; oc < l.OutC; oc++ {
				src := yd[oc*n*plane+i*plane : oc*n*plane+(i+1)*plane]
				dst := od[(i*l.OutC+oc)*plane : (i*l.OutC+oc+1)*plane]
				b := bias[oc]
				for p, v := range src {
					dst[p] = v + b
				}
			}
		}
		return out
	}
	cols := s.Tensor(l.InC*l.Kernel*l.Kernel, plane)
	y := s.Tensor(l.OutC, plane)
	yd := y.Data()
	sample := l.InC * h * w
	for i := 0; i < n; i++ {
		xi := s.View(x, i*sample, l.InC, h, w)
		tensor.Im2ColInto(cols, xi, g)
		tensor.MatMulInto(y, wm, cols)
		oOff := i * l.OutC * plane
		for oc := 0; oc < l.OutC; oc++ {
			b := bias[oc]
			for p := 0; p < plane; p++ {
				od[oOff+oc*plane+p] = yd[oc*plane+p] + b
			}
		}
	}
	return out
}

// ForwardScratch implements ScratchForwarder with the same direct loops as
// Forward; every output element is written (sum starts from the bias).
func (l *DepthwiseConv2D) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	checkRank(l.label, x, 4)
	if x.Dim(1) != l.C {
		panic("nn: " + l.label + ": channel mismatch in scratch forward")
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	g := tensor.ConvGeom{InC: 1, InH: h, InW: w, Kernel: l.Kernel, Stride: l.Stride, Pad: l.Pad}
	oh, ow := g.OutH(), g.OutW()
	out := s.Tensor(n, l.C, oh, ow)
	wd, bd := l.W.Value.Data(), l.B.Value.Data()
	xd, od := x.Data(), out.Data()
	k := l.Kernel
	for i := 0; i < n; i++ {
		for c := 0; c < l.C; c++ {
			xoff := (i*l.C + c) * h * w
			ooff := (i*l.C + c) * oh * ow
			woff := c * k * k
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := bd[c]
					for ky := 0; ky < k; ky++ {
						iy := oy*l.Stride + ky - l.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*l.Stride + kx - l.Pad
							if ix < 0 || ix >= w {
								continue
							}
							sum += xd[xoff+iy*w+ix] * wd[woff+ky*k+kx]
						}
					}
					od[ooff+oy*ow+ox] = sum
				}
			}
		}
	}
	return out
}

// ForwardScratch implements ScratchForwarder: the weight transpose and the
// product land in arena slots, and the input is not cached.
func (l *Linear) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	checkRank(l.label, x, 2)
	if x.Dim(1) != l.In {
		panic("nn: " + l.label + ": feature mismatch in scratch forward")
	}
	wT := s.Tensor(l.In, l.Out)
	tensor.Transpose2DInto(wT, l.W.Value)
	out := s.Tensor(x.Dim(0), l.Out)
	tensor.MatMulInto(out, x, wT)
	od, bd := out.Data(), l.B.Value.Data()
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		for j := 0; j < l.Out; j++ {
			od[i*l.Out+j] += bd[j]
		}
	}
	return out
}

// ForwardScratch implements ScratchForwarder. The negative branch writes an
// explicit zero (scratch memory is not pre-cleared) and no mask is cached;
// the Record hook still fires, since scratch forwards are inference-mode by
// definition.
func (l *ReLU) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	out := s.Tensor(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		} else {
			od[i] = 0
		}
	}
	if l.Record != nil {
		l.Record(out)
	}
	return out
}

// ForwardScratch implements ScratchForwarder with the same expression
// Forward applies (1/(1+e^{-x}), not the branching stable form), so outputs
// stay bit-identical.
func (l *Sigmoid) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	out := s.Tensor(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		od[i] = 1 / (1 + math.Exp(-v))
	}
	return out
}

// ForwardScratch implements ScratchForwarder: a pooled view over the same
// storage, mirroring Forward's Reshape (which also shares storage).
func (l *Flatten) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	features := 1
	for _, d := range x.Shape()[1:] {
		features *= d
	}
	return s.View(x, 0, x.Dim(0), features)
}

// ForwardScratch implements ScratchForwarder for the inference-mode affine
// map; the per-channel scale cache is skipped.
func (l *BatchNorm2D) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	out := s.Tensor(x.Shape()...)
	xd, od := x.Data(), out.Data()
	gd, bd := l.Gamma.Value.Data(), l.Beta.Value.Data()
	rm, rv := l.RunningMean.Data(), l.RunningVar.Data()
	for ch := 0; ch < c; ch++ {
		scale := gd[ch] / math.Sqrt(rv[ch]+l.Eps)
		shift := bd[ch] - rm[ch]*scale
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				od[base+p] = xd[base+p]*scale + shift
			}
		}
	}
	return out
}

// ForwardScratch implements ScratchForwarder; winner indices are not
// recorded. Every output is written (windows fully inside padding yield
// -Inf, exactly as in Forward).
func (l *MaxPool2D) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := l.OutSize(h, w)
	out := s.Tensor(n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			obase := (i*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					for ky := 0; ky < l.Kernel; ky++ {
						iy := oy*l.Stride + ky - l.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < l.Kernel; kx++ {
							ix := ox*l.Stride + kx - l.Pad
							if ix < 0 || ix >= w {
								continue
							}
							if v := xd[base+iy*w+ix]; v > best {
								best = v
							}
						}
					}
					od[obase+oy*ow+ox] = best
				}
			}
		}
	}
	return out
}

// ForwardScratch implements ScratchForwarder without the input-shape cache.
func (l *AvgPool2D) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := l.OutSize(h, w)
	out := s.Tensor(n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	inv := 1 / float64(l.Kernel*l.Kernel)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			obase := (i*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := 0.0
					for ky := 0; ky < l.Kernel; ky++ {
						for kx := 0; kx < l.Kernel; kx++ {
							sum += xd[base+(oy*l.Stride+ky)*w+(ox*l.Stride+kx)]
						}
					}
					od[obase+oy*ow+ox] = sum * inv
				}
			}
		}
	}
	return out
}

// ForwardScratch implements ScratchForwarder without the input-shape cache.
func (l *GlobalAvgPool) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := s.Tensor(n, c)
	xd, od := x.Data(), out.Data()
	plane := h * w
	inv := 1 / float64(plane)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * plane
			sum := 0.0
			for p := 0; p < plane; p++ {
				sum += xd[base+p]
			}
			od[i*c+ch] = sum * inv
		}
	}
	return out
}

// ForwardScratch implements ScratchForwarder: squeeze, gating MLP (through
// the Linear scratch paths) and channel scaling all land in arena slots; the
// backward caches (in/squeeze/hidden/gate) are skipped.
func (l *SqueezeExcite) ForwardScratch(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	sq := s.Tensor(n, c)
	xd, sqd := x.Data(), sq.Data()
	inv := 1 / float64(plane)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * plane
			sum := 0.0
			for p := 0; p < plane; p++ {
				sum += xd[base+p]
			}
			sqd[i*c+ch] = sum * inv
		}
	}
	hPre := l.FC1.ForwardScratch(sq, s)
	hidden := s.Tensor(hPre.Shape()...)
	hd := hidden.Data()
	for i, v := range hPre.Data() {
		if v < 0 {
			hd[i] = 0
		} else {
			hd[i] = v
		}
	}
	gPre := l.FC2.ForwardScratch(hidden, s)
	gate := s.Tensor(gPre.Shape()...)
	gd := gate.Data()
	for i, v := range gPre.Data() {
		gd[i] = sigmoid(v)
	}
	out := s.Tensor(x.Shape()...)
	od := out.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := gd[i*c+ch]
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				od[base+p] = xd[base+p] * g
			}
		}
	}
	return out
}

// ConcatChannelsInto concatenates rank-4 tensors along the channel dimension
// into dst, which must already have the concatenated shape. Semantics match
// ConcatChannels; dst is fully overwritten.
func ConcatChannelsInto(dst *tensor.Tensor, xs ...*tensor.Tensor) *tensor.Tensor {
	n, h, w := xs[0].Dim(0), xs[0].Dim(2), xs[0].Dim(3)
	totalC := 0
	for _, x := range xs {
		totalC += x.Dim(1)
	}
	if dst.Rank() != 4 || dst.Dim(0) != n || dst.Dim(1) != totalC || dst.Dim(2) != h || dst.Dim(3) != w {
		panic("nn: ConcatChannelsInto dst shape mismatch")
	}
	od := dst.Data()
	plane := h * w
	for i := 0; i < n; i++ {
		cOff := 0
		for _, x := range xs {
			c := x.Dim(1)
			if x.Rank() != 4 || x.Dim(0) != n || x.Dim(2) != h || x.Dim(3) != w {
				panic("nn: ConcatChannelsInto input shape mismatch")
			}
			src := x.Data()[i*c*plane : (i+1)*c*plane]
			copy(od[(i*totalC+cOff)*plane:(i*totalC+cOff)*plane+c*plane], src)
			cOff += c
		}
	}
	return dst
}
