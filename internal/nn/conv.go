package nn

import (
	"fmt"

	"advhunter/internal/tensor"
)

// Conv2D is a standard 2-D convolution with square kernels.
//
// Weight layout: W[outC, inC, k, k], bias B[outC]. Input [N, inC, H, W],
// output [N, outC, H', W'] with H' = (H+2·Pad−Kernel)/Stride + 1.
type Conv2D struct {
	label          string
	InC, OutC      int
	Kernel, Stride int
	Pad            int
	W, B           *Param

	// caches for backward
	in   *tensor.Tensor
	cols []*tensor.Tensor
	geom tensor.ConvGeom
}

// NewConv2D constructs a convolution layer with zero-valued parameters; use
// an initialiser from init.go to fill them.
func NewConv2D(label string, inC, outC, kernel, stride, pad int) *Conv2D {
	l := &Conv2D{label: label, InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad}
	l.W = newParam(label+".W", tensor.New(outC, inC, kernel, kernel))
	l.B = newParam(label+".B", tensor.New(outC))
	return l
}

// Name returns the layer label.
func (l *Conv2D) Name() string { return l.label }

// Params returns weight and bias.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }

// Geom returns the convolution geometry for an input of the given spatial
// size. Exposed for the instrumented engine.
func (l *Conv2D) Geom(h, w int) tensor.ConvGeom {
	return tensor.ConvGeom{InC: l.InC, InH: h, InW: w, Kernel: l.Kernel, Stride: l.Stride, Pad: l.Pad}
}

// Forward computes the batched convolution via im2col + matmul.
func (l *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank(l.label, x, 4)
	if x.Dim(1) != l.InC {
		panic(fmt.Sprintf("nn: %s expects %d input channels, got %d", l.label, l.InC, x.Dim(1)))
	}
	n := x.Dim(0)
	g := l.Geom(x.Dim(2), x.Dim(3))
	oh, ow := g.OutH(), g.OutW()
	out := tensor.New(n, l.OutC, oh, ow)
	wm := l.W.Value.Reshape(l.OutC, l.InC*l.Kernel*l.Kernel)
	l.in, l.geom = x, g
	l.cols = make([]*tensor.Tensor, n)
	bias := l.B.Value.Data()
	for i := 0; i < n; i++ {
		cols := tensor.Im2Col(sampleView(x, i), g)
		l.cols[i] = cols
		y := tensor.MatMul(wm, cols) // [outC, oh*ow]
		yd := y.Data()
		od := sampleView(out, i).Data()
		plane := oh * ow
		for oc := 0; oc < l.OutC; oc++ {
			b := bias[oc]
			for p := 0; p < plane; p++ {
				od[oc*plane+p] = yd[oc*plane+p] + b
			}
		}
	}
	return out
}

// Backward accumulates dW, dB and returns dX.
func (l *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	oh, ow := l.geom.OutH(), l.geom.OutW()
	plane := oh * ow
	dx := tensor.New(l.in.Shape()...)
	wmT := tensor.Transpose2D(l.W.Value.Reshape(l.OutC, l.InC*l.Kernel*l.Kernel))
	dwm := l.W.Grad.Reshape(l.OutC, l.InC*l.Kernel*l.Kernel)
	db := l.B.Grad.Data()
	for i := 0; i < n; i++ {
		gy := sampleView(grad, i).Reshape(l.OutC, plane)
		// dB: row sums of gy.
		gyd := gy.Data()
		for oc := 0; oc < l.OutC; oc++ {
			s := 0.0
			for p := 0; p < plane; p++ {
				s += gyd[oc*plane+p]
			}
			db[oc] += s
		}
		// dW += gy · colsᵀ
		dwm.AddInPlace(tensor.MatMul(gy, tensor.Transpose2D(l.cols[i])))
		// dX sample = col2im(Wᵀ · gy)
		dcols := tensor.MatMul(wmT, gy)
		sampleView(dx, i).AddInPlace(tensor.Col2Im(dcols, l.geom))
	}
	return dx
}

// DepthwiseConv2D convolves each input channel with its own single filter
// (channel multiplier 1), as used by MBConv blocks in EfficientNet-style
// networks. Weight layout: W[C, k, k], bias B[C].
type DepthwiseConv2D struct {
	label          string
	C              int
	Kernel, Stride int
	Pad            int
	W, B           *Param

	in   *tensor.Tensor
	geom tensor.ConvGeom
}

// NewDepthwiseConv2D constructs a depthwise convolution with zero parameters.
func NewDepthwiseConv2D(label string, c, kernel, stride, pad int) *DepthwiseConv2D {
	l := &DepthwiseConv2D{label: label, C: c, Kernel: kernel, Stride: stride, Pad: pad}
	l.W = newParam(label+".W", tensor.New(c, kernel, kernel))
	l.B = newParam(label+".B", tensor.New(c))
	return l
}

// Name returns the layer label.
func (l *DepthwiseConv2D) Name() string { return l.label }

// Params returns weight and bias.
func (l *DepthwiseConv2D) Params() []*Param { return []*Param{l.W, l.B} }

// Geom returns the per-channel convolution geometry for the given input size.
func (l *DepthwiseConv2D) Geom(h, w int) tensor.ConvGeom {
	return tensor.ConvGeom{InC: 1, InH: h, InW: w, Kernel: l.Kernel, Stride: l.Stride, Pad: l.Pad}
}

// Forward computes the depthwise convolution directly from the definition.
func (l *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank(l.label, x, 4)
	if x.Dim(1) != l.C {
		panic(fmt.Sprintf("nn: %s expects %d channels, got %d", l.label, l.C, x.Dim(1)))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	g := tensor.ConvGeom{InC: 1, InH: h, InW: w, Kernel: l.Kernel, Stride: l.Stride, Pad: l.Pad}
	oh, ow := g.OutH(), g.OutW()
	out := tensor.New(n, l.C, oh, ow)
	l.in, l.geom = x, g
	wd, bd := l.W.Value.Data(), l.B.Value.Data()
	xd, od := x.Data(), out.Data()
	k := l.Kernel
	for i := 0; i < n; i++ {
		for c := 0; c < l.C; c++ {
			xoff := (i*l.C + c) * h * w
			ooff := (i*l.C + c) * oh * ow
			woff := c * k * k
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := bd[c]
					for ky := 0; ky < k; ky++ {
						iy := oy*l.Stride + ky - l.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*l.Stride + kx - l.Pad
							if ix < 0 || ix >= w {
								continue
							}
							sum += xd[xoff+iy*w+ix] * wd[woff+ky*k+kx]
						}
					}
					od[ooff+oy*ow+ox] = sum
				}
			}
		}
	}
	return out
}

// Backward accumulates dW, dB and returns dX for the depthwise convolution.
func (l *DepthwiseConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, h, w := l.in.Dim(0), l.in.Dim(2), l.in.Dim(3)
	oh, ow := l.geom.OutH(), l.geom.OutW()
	dx := tensor.New(l.in.Shape()...)
	xd, gd, dxd := l.in.Data(), grad.Data(), dx.Data()
	wd, dwd, dbd := l.W.Value.Data(), l.W.Grad.Data(), l.B.Grad.Data()
	k := l.Kernel
	for i := 0; i < n; i++ {
		for c := 0; c < l.C; c++ {
			xoff := (i*l.C + c) * h * w
			goff := (i*l.C + c) * oh * ow
			woff := c * k * k
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gd[goff+oy*ow+ox]
					if g == 0 {
						continue
					}
					dbd[c] += g
					for ky := 0; ky < k; ky++ {
						iy := oy*l.Stride + ky - l.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*l.Stride + kx - l.Pad
							if ix < 0 || ix >= w {
								continue
							}
							dwd[woff+ky*k+kx] += g * xd[xoff+iy*w+ix]
							dxd[xoff+iy*w+ix] += g * wd[woff+ky*k+kx]
						}
					}
				}
			}
		}
	}
	return dx
}

// Linear is a fully connected layer: y = x·Wᵀ + b with W[out, in].
type Linear struct {
	label   string
	In, Out int
	W, B    *Param

	in *tensor.Tensor
}

// NewLinear constructs a fully connected layer with zero parameters.
func NewLinear(label string, in, out int) *Linear {
	l := &Linear{label: label, In: in, Out: out}
	l.W = newParam(label+".W", tensor.New(out, in))
	l.B = newParam(label+".B", tensor.New(out))
	return l
}

// Name returns the layer label.
func (l *Linear) Name() string { return l.label }

// Params returns weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Forward computes the batched affine map for input [N, In].
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank(l.label, x, 2)
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s expects %d features, got %d", l.label, l.In, x.Dim(1)))
	}
	l.in = x
	out := tensor.MatMul(x, tensor.Transpose2D(l.W.Value)) // [N, Out]
	od, bd := out.Data(), l.B.Value.Data()
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		for j := 0; j < l.Out; j++ {
			od[i*l.Out+j] += bd[j]
		}
	}
	return out
}

// Backward accumulates dW = gradᵀ·x, dB = Σ grad rows, and returns grad·W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.W.Grad.AddInPlace(tensor.MatMul(tensor.Transpose2D(grad), l.in))
	gd, dbd := grad.Data(), l.B.Grad.Data()
	n := grad.Dim(0)
	for i := 0; i < n; i++ {
		for j := 0; j < l.Out; j++ {
			dbd[j] += gd[i*l.Out+j]
		}
	}
	return tensor.MatMul(grad, l.W.Value)
}
