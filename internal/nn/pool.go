package nn

import (
	"fmt"
	"math"

	"advhunter/internal/tensor"
)

// MaxPool2D applies max pooling with a square window. Padding positions are
// treated as -inf (they never win a window).
type MaxPool2D struct {
	label          string
	Kernel, Stride int
	Pad            int

	inShape []int
	argmax  []int // flat input index chosen for each output element
}

// NewMaxPool2D constructs an unpadded max-pooling layer.
func NewMaxPool2D(label string, kernel, stride int) *MaxPool2D {
	return &MaxPool2D{label: label, Kernel: kernel, Stride: stride}
}

// NewMaxPool2DPadded constructs a max-pooling layer with symmetric padding.
func NewMaxPool2DPadded(label string, kernel, stride, pad int) *MaxPool2D {
	return &MaxPool2D{label: label, Kernel: kernel, Stride: stride, Pad: pad}
}

// Name returns the layer label.
func (l *MaxPool2D) Name() string { return l.label }

// Params returns nil; pooling has no parameters.
func (l *MaxPool2D) Params() []*Param { return nil }

// OutSize returns the pooled spatial size for the given input size.
func (l *MaxPool2D) OutSize(h, w int) (int, int) {
	return (h+2*l.Pad-l.Kernel)/l.Stride + 1, (w+2*l.Pad-l.Kernel)/l.Stride + 1
}

// Forward computes per-window maxima and records winner indices.
func (l *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := l.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d/%d too large for %dx%d", l.label, l.Kernel, l.Stride, h, w))
	}
	out := tensor.New(n, c, oh, ow)
	l.inShape = append([]int(nil), x.Shape()...)
	l.argmax = make([]int, out.Len())
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			obase := (i*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best, bestIdx := math.Inf(-1), -1
					for ky := 0; ky < l.Kernel; ky++ {
						iy := oy*l.Stride + ky - l.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < l.Kernel; kx++ {
							ix := ox*l.Stride + kx - l.Pad
							if ix < 0 || ix >= w {
								continue
							}
							idx := base + iy*w + ix
							if xd[idx] > best {
								best, bestIdx = xd[idx], idx
							}
						}
					}
					oidx := obase + oy*ow + ox
					od[oidx] = best
					l.argmax[oidx] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to its winning input element.
func (l *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(l.inShape...)
	gd, dxd := grad.Data(), dx.Data()
	for oidx, iidx := range l.argmax {
		if iidx >= 0 { // windows fully inside padding contribute nothing
			dxd[iidx] += gd[oidx]
		}
	}
	return dx
}

// AvgPool2D applies average pooling with a square window.
type AvgPool2D struct {
	label          string
	Kernel, Stride int

	inShape []int
}

// NewAvgPool2D constructs an average-pooling layer.
func NewAvgPool2D(label string, kernel, stride int) *AvgPool2D {
	return &AvgPool2D{label: label, Kernel: kernel, Stride: stride}
}

// Name returns the layer label.
func (l *AvgPool2D) Name() string { return l.label }

// Params returns nil; pooling has no parameters.
func (l *AvgPool2D) Params() []*Param { return nil }

// OutSize returns the pooled spatial size for the given input size.
func (l *AvgPool2D) OutSize(h, w int) (int, int) {
	return (h-l.Kernel)/l.Stride + 1, (w-l.Kernel)/l.Stride + 1
}

// Forward computes per-window means.
func (l *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := l.OutSize(h, w)
	out := tensor.New(n, c, oh, ow)
	l.inShape = append([]int(nil), x.Shape()...)
	xd, od := x.Data(), out.Data()
	inv := 1 / float64(l.Kernel*l.Kernel)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			obase := (i*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := 0.0
					for ky := 0; ky < l.Kernel; ky++ {
						for kx := 0; kx < l.Kernel; kx++ {
							sum += xd[base+(oy*l.Stride+ky)*w+(ox*l.Stride+kx)]
						}
					}
					od[obase+oy*ow+ox] = sum * inv
				}
			}
		}
	}
	return out
}

// Backward spreads each output gradient uniformly over its window.
func (l *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(l.inShape...)
	n, c, h, w := l.inShape[0], l.inShape[1], l.inShape[2], l.inShape[3]
	oh, ow := grad.Dim(2), grad.Dim(3)
	gd, dxd := grad.Data(), dx.Data()
	inv := 1 / float64(l.Kernel*l.Kernel)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			obase := (i*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gd[obase+oy*ow+ox] * inv
					for ky := 0; ky < l.Kernel; ky++ {
						for kx := 0; kx < l.Kernel; kx++ {
							dxd[base+(oy*l.Stride+ky)*w+(ox*l.Stride+kx)] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// GlobalAvgPool reduces [N, C, H, W] to [N, C] by spatial averaging.
type GlobalAvgPool struct {
	label   string
	inShape []int
}

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(label string) *GlobalAvgPool { return &GlobalAvgPool{label: label} }

// Name returns the layer label.
func (l *GlobalAvgPool) Name() string { return l.label }

// Params returns nil; pooling has no parameters.
func (l *GlobalAvgPool) Params() []*Param { return nil }

// Forward averages each channel plane.
func (l *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	l.inShape = append([]int(nil), x.Shape()...)
	out := tensor.New(n, c)
	xd, od := x.Data(), out.Data()
	plane := h * w
	inv := 1 / float64(plane)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * plane
			sum := 0.0
			for p := 0; p < plane; p++ {
				sum += xd[base+p]
			}
			od[i*c+ch] = sum * inv
		}
	}
	return out
}

// Backward spreads the channel gradient uniformly over the plane.
func (l *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := l.inShape[0], l.inShape[1], l.inShape[2], l.inShape[3]
	dx := tensor.New(l.inShape...)
	gd, dxd := grad.Data(), dx.Data()
	plane := h * w
	inv := 1 / float64(plane)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := gd[i*c+ch] * inv
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				dxd[base+p] = g
			}
		}
	}
	return dx
}
