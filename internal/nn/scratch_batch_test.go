package nn

import (
	"math"
	"testing"

	"advhunter/internal/rng"
	"advhunter/internal/tensor"
)

// The fused batch GEMM in Conv2D.ForwardScratch must reproduce the
// per-sample loop bit-for-bit: run the batch through one arena, each sample
// alone through another, and compare raw float bits.
func TestConvScratchBatchBitIdentical(t *testing.T) {
	r := rng.New(3)
	l := NewConv2D("c", 3, 6, 3, 2, 1)
	r.FillNormal(l.W.Value.Data(), 0, 0.5)
	r.FillNormal(l.B.Value.Data(), 0, 0.5)
	for _, batch := range []int{1, 3, 8, 17} {
		x := tensor.New(batch, 3, 11, 9)
		r.FillNormal(x.Data(), 0, 1)
		var sb Scratch
		sb.Reset()
		got := l.ForwardScratch(x, &sb)
		per := got.Len() / batch
		for s := 0; s < batch; s++ {
			xi := tensor.FromSlice(x.Data()[s*3*11*9:(s+1)*3*11*9], 1, 3, 11, 9)
			var s1 Scratch
			s1.Reset()
			want := l.ForwardScratch(xi, &s1)
			for i, w := range want.Data() {
				g := got.Data()[s*per+i]
				if math.Float64bits(w) != math.Float64bits(g) {
					t.Fatalf("batch %d sample %d element %d: %g vs %g", batch, s, i, w, g)
				}
			}
		}
	}
}

// Varying batch widths through one arena must converge on the high-water
// buffers: after seeing the widest batch once, narrower (and repeated widest)
// passes perform zero allocations.
func TestScratchCapacityReuseAcrossWidths(t *testing.T) {
	r := rng.New(5)
	l := NewConv2D("c", 2, 4, 3, 1, 1)
	r.FillNormal(l.W.Value.Data(), 0, 0.5)
	xs := map[int]*tensor.Tensor{}
	for _, b := range []int{1, 3, 8} {
		xs[b] = tensor.New(b, 2, 8, 8)
		r.FillNormal(xs[b].Data(), 0, 1)
	}
	var s Scratch
	for _, b := range []int{1, 3, 8} { // warm to the high-water width
		s.Reset()
		l.ForwardScratch(xs[b], &s)
	}
	for _, b := range []int{8, 1, 3, 8} {
		allocs := testing.AllocsPerRun(10, func() {
			s.Reset()
			l.ForwardScratch(xs[b], &s)
		})
		if allocs != 0 {
			t.Fatalf("width %d: %v allocs/run after warm-up, want 0", b, allocs)
		}
	}
}
