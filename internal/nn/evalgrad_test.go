package nn

import (
	"math"
	"testing"

	"advhunter/internal/rng"
)

// TestBatchNormEvalBackward verifies the inference-mode input gradient (the
// path white-box attacks differentiate) against finite differences.
func TestBatchNormEvalBackward(t *testing.T) {
	l := NewBatchNorm2D("bn", 3)
	rng.New(70).FillNormal(l.Gamma.Value.Data(), 1, 0.3)
	rng.New(71).FillNormal(l.Beta.Value.Data(), 0, 0.3)
	rng.New(72).FillNormal(l.RunningMean.Data(), 0, 0.5)
	rng.New(73).FillUniform(l.RunningVar.Data(), 0.5, 2)
	x := randInput(74, 2, 3, 4, 4)
	checkInputGrad(t, l, x, false, 1e-6)
}

// TestEvalModeNetworkGradient checks the full inference-mode gradient of a
// small batch-norm network numerically — exactly what FGSM consumes.
func TestEvalModeNetworkGradient(t *testing.T) {
	net := NewSequential("net",
		NewConv2D("c1", 1, 3, 3, 1, 1),
		NewBatchNorm2D("bn1", 3),
		NewReLU("r1"),
		NewFlatten("flat"),
		NewLinear("fc", 3*5*5, 4),
	)
	InitHe(rng.New(75), net)
	// Move running stats off their init so eval differs from identity.
	warm := randInput(76, 8, 1, 5, 5)
	_ = net.Forward(warm, true)

	x := randInput(77, 1, 1, 5, 5)
	awayFromKinks(x)
	labels := []int{2}

	lossAt := func() float64 {
		logits := net.Forward(x, false)
		loss, _ := SoftmaxCrossEntropy(logits, labels)
		return loss
	}
	logits := net.Forward(x, false)
	_, g := SoftmaxCrossEntropy(logits, labels)
	dx := net.Backward(g)

	const h = 1e-6
	xd := x.Data()
	for i := 0; i < len(xd); i += 3 {
		orig := xd[i]
		xd[i] = orig + h
		lp := lossAt()
		xd[i] = orig - h
		lm := lossAt()
		xd[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-dx.Data()[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("eval grad[%d]: analytic %g vs numeric %g", i, dx.Data()[i], num)
		}
	}
}

// TestEvalBackwardDoesNotTouchParams ensures attacks cannot corrupt training
// state: inference-mode backward must leave parameter gradients untouched.
func TestEvalBackwardDoesNotTouchParams(t *testing.T) {
	l := NewBatchNorm2D("bn", 2)
	x := randInput(78, 1, 2, 3, 3)
	y := l.Forward(x, false)
	_ = l.Backward(y)
	for _, p := range l.Params() {
		for _, v := range p.Grad.Data() {
			if v != 0 {
				t.Fatal("eval-mode backward accumulated parameter gradients")
			}
		}
	}
}
