// Package nn implements the neural-network substrate: layers with exact
// forward and backward passes (pure Go, float64), containers, weight
// initialisation, and the softmax cross-entropy loss. Backward passes return
// input gradients, which is what the white-box attacker (internal/attack)
// needs, and accumulate parameter gradients, which is what the trainer
// (internal/train) needs.
//
// Tensors flow through layers with an explicit leading batch dimension:
// convolutional layers take [N, C, H, W], fully connected layers take
// [N, features]. Layers cache whatever the backward pass needs during
// Forward; a Forward/Backward pair must therefore not be interleaved with
// another Forward on the same layer.
package nn

import (
	"fmt"

	"advhunter/internal/tensor"
)

// Param is a trainable tensor together with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// newParam allocates a parameter with a zeroed gradient of matching shape.
func newParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable computation stage.
type Layer interface {
	// Name returns a short human-readable identifier for diagnostics.
	Name() string
	// Forward computes the layer output for a batched input. train selects
	// training-mode behaviour (batch statistics, dropout); inference uses
	// train=false.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient of the loss with respect to the
	// layer's output (same shape as the last Forward result), accumulates
	// parameter gradients, and returns the gradient with respect to the
	// layer's input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers, feeding each layer's output to the next.
type Sequential struct {
	label  string
	Layers []Layer
}

// NewSequential builds a named layer chain.
func NewSequential(label string, layers ...Layer) *Sequential {
	return &Sequential{label: label, Layers: layers}
}

// Name returns the chain's label.
func (s *Sequential) Name() string { return s.label }

// Forward applies every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient through the chain in reverse.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params collects parameters from all layers in order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

// Walk visits every layer in the chain depth-first, descending into
// composite layers. It is used by the instrumented engine and by experiment
// code that needs to locate specific layer types (e.g. ReLU recorders).
func (s *Sequential) Walk(visit func(Layer)) {
	for _, l := range s.Layers {
		walkLayer(l, visit)
	}
}

// walkLayer visits l and recursively its children for known composite types.
func walkLayer(l Layer, visit func(Layer)) {
	visit(l)
	switch c := l.(type) {
	case *Sequential:
		for _, sub := range c.Layers {
			walkLayer(sub, visit)
		}
	case *Residual:
		walkLayer(c.Body, visit)
		if c.Shortcut != nil {
			walkLayer(c.Shortcut, visit)
		}
	case *Parallel:
		for _, b := range c.Branches {
			walkLayer(b, visit)
		}
	case *DenseBlock:
		for _, u := range c.Units {
			walkLayer(u, visit)
		}
	case *SqueezeExcite:
		// Leaf from the walker's perspective; its FCs are internal.
	}
}

// sampleView returns sample n of a batched tensor as an unbatched view
// sharing storage.
func sampleView(x *tensor.Tensor, n int) *tensor.Tensor {
	shape := x.Shape()
	sz := 1
	for _, d := range shape[1:] {
		sz *= d
	}
	return tensor.FromSlice(x.Data()[n*sz:(n+1)*sz], shape[1:]...)
}

// checkRank panics unless x has the wanted rank.
func checkRank(layer string, x *tensor.Tensor, rank int) {
	if x.Rank() != rank {
		panic(fmt.Sprintf("nn: %s expects rank-%d input, got shape %v", layer, rank, x.Shape()))
	}
}
