package nn

import "fmt"

// CloneShared returns a structural copy of root in which every parameter
// VALUE tensor is shared with the original (weights are never duplicated)
// while all mutable per-forward state — backward caches, gradient
// accumulators, batch-norm running-statistic update targets — is private to
// the copy. The result is safe to run Forward(train=false) and Backward on
// concurrently with the original or with other clones: those paths only read
// the shared tensors.
//
// Two deliberate non-goals:
//   - training-mode forward passes on a clone (they would write the SHARED
//     batch-norm running statistics);
//   - ReLU Record hooks, which are instrumentation wired to one specific
//     replica and are therefore left nil on the copy.
//
// Cloning preserves layer order and structure exactly, so a Walk over the
// clone visits layers in the same order as over the original — the engine's
// synthetic address layout is identical for every replica.
func CloneShared(root *Sequential) *Sequential {
	return cloneLayer(root).(*Sequential)
}

// shareParam wraps a parameter for a clone: shared value, private gradient.
func shareParam(p *Param) *Param {
	return newParam(p.Name, p.Value)
}

func cloneLayer(l Layer) Layer {
	switch c := l.(type) {
	case *Sequential:
		out := &Sequential{label: c.label, Layers: make([]Layer, len(c.Layers))}
		for i, sub := range c.Layers {
			out.Layers[i] = cloneLayer(sub)
		}
		return out
	case *Conv2D:
		return &Conv2D{
			label: c.label, InC: c.InC, OutC: c.OutC,
			Kernel: c.Kernel, Stride: c.Stride, Pad: c.Pad,
			W: shareParam(c.W), B: shareParam(c.B),
		}
	case *DepthwiseConv2D:
		return &DepthwiseConv2D{
			label: c.label, C: c.C, Kernel: c.Kernel, Stride: c.Stride, Pad: c.Pad,
			W: shareParam(c.W), B: shareParam(c.B),
		}
	case *Linear:
		return &Linear{
			label: c.label, In: c.In, Out: c.Out,
			W: shareParam(c.W), B: shareParam(c.B),
		}
	case *BatchNorm2D:
		return &BatchNorm2D{
			label: c.label, C: c.C, Eps: c.Eps, Momentum: c.Momentum,
			Gamma: shareParam(c.Gamma), Beta: shareParam(c.Beta),
			// Running statistics are read-only in inference mode; training a
			// clone is out of contract (see CloneShared doc).
			RunningMean: c.RunningMean, RunningVar: c.RunningVar,
		}
	case *ReLU:
		return &ReLU{label: c.label}
	case *Sigmoid:
		return &Sigmoid{label: c.label}
	case *Flatten:
		return &Flatten{label: c.label}
	case *Dropout:
		return &Dropout{label: c.label, Rate: c.Rate, Rand: c.Rand}
	case *MaxPool2D:
		return &MaxPool2D{label: c.label, Kernel: c.Kernel, Stride: c.Stride, Pad: c.Pad}
	case *AvgPool2D:
		return &AvgPool2D{label: c.label, Kernel: c.Kernel, Stride: c.Stride}
	case *GlobalAvgPool:
		return &GlobalAvgPool{label: c.label}
	case *Residual:
		out := &Residual{label: c.label, Body: cloneLayer(c.Body)}
		if c.Shortcut != nil {
			out.Shortcut = cloneLayer(c.Shortcut)
		}
		return out
	case *Parallel:
		out := &Parallel{label: c.label, Branches: make([]Layer, len(c.Branches))}
		for i, b := range c.Branches {
			out.Branches[i] = cloneLayer(b)
		}
		return out
	case *DenseBlock:
		out := &DenseBlock{label: c.label, Units: make([]Layer, len(c.Units))}
		for i, u := range c.Units {
			out.Units[i] = cloneLayer(u)
		}
		return out
	case *SqueezeExcite:
		return &SqueezeExcite{
			label: c.label, C: c.C, Reduced: c.Reduced,
			FC1: cloneLayer(c.FC1).(*Linear),
			FC2: cloneLayer(c.FC2).(*Linear),
		}
	default:
		panic(fmt.Sprintf("nn: CloneShared does not know layer type %T (%s)", l, l.Name()))
	}
}
