package nn

import (
	"math"
	"testing"

	"advhunter/internal/rng"
	"advhunter/internal/tensor"
)

// lossOf computes a deterministic scalar "loss" — a weighted sum of the layer
// output — so that analytic gradients can be compared with finite
// differences.
func lossOf(l Layer, x, w *tensor.Tensor, train bool) float64 {
	return tensor.Dot(l.Forward(x, train), w)
}

// checkInputGrad compares the layer's backward input gradient against central
// finite differences.
func checkInputGrad(t *testing.T, l Layer, x *tensor.Tensor, train bool, tol float64) {
	t.Helper()
	out := l.Forward(x, train)
	w := tensor.New(out.Shape()...)
	rng.New(999).FillNormal(w.Data(), 0, 1)
	_ = l.Forward(x, train) // refresh caches after shape probe
	dx := l.Backward(w)

	const h = 1e-6
	xd := x.Data()
	for i := 0; i < len(xd); i += 1 + len(xd)/40 { // sample ~40 coordinates
		orig := xd[i]
		xd[i] = orig + h
		lp := lossOf(l, x, w, train)
		xd[i] = orig - h
		lm := lossOf(l, x, w, train)
		xd[i] = orig
		num := (lp - lm) / (2 * h)
		got := dx.Data()[i]
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s input grad[%d]: analytic %g vs numeric %g", l.Name(), i, got, num)
		}
	}
}

// checkParamGrad compares accumulated parameter gradients against central
// finite differences.
func checkParamGrad(t *testing.T, l Layer, x *tensor.Tensor, train bool, tol float64) {
	t.Helper()
	out := l.Forward(x, train)
	w := tensor.New(out.Shape()...)
	rng.New(998).FillNormal(w.Data(), 0, 1)
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	_ = l.Forward(x, train)
	_ = l.Backward(w)

	const h = 1e-6
	for _, p := range l.Params() {
		pd := p.Value.Data()
		for i := 0; i < len(pd); i += 1 + len(pd)/20 {
			orig := pd[i]
			pd[i] = orig + h
			lp := lossOf(l, x, w, train)
			pd[i] = orig - h
			lm := lossOf(l, x, w, train)
			pd[i] = orig
			num := (lp - lm) / (2 * h)
			got := p.Grad.Data()[i]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s param %s grad[%d]: analytic %g vs numeric %g", l.Name(), p.Name, i, got, num)
			}
		}
	}
}

// awayFromKinks nudges values off 0 so ReLU/MaxPool finite differences are
// taken on a smooth neighbourhood.
func awayFromKinks(x *tensor.Tensor) {
	for i, v := range x.Data() {
		if math.Abs(v) < 0.05 {
			if v >= 0 {
				x.Data()[i] = v + 0.1
			} else {
				x.Data()[i] = v - 0.1
			}
		}
	}
}

func randInput(seed uint64, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	rng.New(seed).FillNormal(x.Data(), 0, 1)
	return x
}

func TestConv2DGradients(t *testing.T) {
	l := NewConv2D("conv", 2, 3, 3, 2, 1)
	InitHe(rng.New(1), l)
	x := randInput(2, 2, 2, 7, 8)
	checkInputGrad(t, l, x, true, 1e-4)
	checkParamGrad(t, l, x, true, 1e-4)
}

func TestConv2DStride1NoPad(t *testing.T) {
	l := NewConv2D("conv", 1, 2, 3, 1, 0)
	InitHe(rng.New(2), l)
	x := randInput(3, 1, 1, 6, 6)
	checkInputGrad(t, l, x, true, 1e-4)
	checkParamGrad(t, l, x, true, 1e-4)
}

func TestDepthwiseConv2DGradients(t *testing.T) {
	l := NewDepthwiseConv2D("dw", 3, 3, 1, 1)
	InitHe(rng.New(3), l)
	x := randInput(4, 2, 3, 6, 5)
	checkInputGrad(t, l, x, true, 1e-4)
	checkParamGrad(t, l, x, true, 1e-4)
}

func TestDepthwiseConv2DStride2(t *testing.T) {
	l := NewDepthwiseConv2D("dw", 2, 3, 2, 1)
	InitHe(rng.New(4), l)
	x := randInput(5, 1, 2, 8, 8)
	checkInputGrad(t, l, x, true, 1e-4)
}

func TestLinearGradients(t *testing.T) {
	l := NewLinear("fc", 7, 4)
	InitHe(rng.New(5), l)
	x := randInput(6, 3, 7)
	checkInputGrad(t, l, x, true, 1e-5)
	checkParamGrad(t, l, x, true, 1e-5)
}

func TestReLUGradient(t *testing.T) {
	l := NewReLU("relu")
	x := randInput(7, 2, 3, 4, 4)
	awayFromKinks(x)
	checkInputGrad(t, l, x, true, 1e-5)
}

func TestSigmoidGradient(t *testing.T) {
	l := NewSigmoid("sig")
	x := randInput(8, 3, 5)
	checkInputGrad(t, l, x, true, 1e-5)
}

func TestMaxPoolGradient(t *testing.T) {
	l := NewMaxPool2D("pool", 2, 2)
	x := randInput(9, 2, 2, 6, 6)
	awayFromKinks(x)
	checkInputGrad(t, l, x, true, 1e-5)
}

func TestAvgPoolGradient(t *testing.T) {
	l := NewAvgPool2D("pool", 2, 2)
	x := randInput(10, 2, 2, 6, 6)
	checkInputGrad(t, l, x, true, 1e-5)
}

func TestGlobalAvgPoolGradient(t *testing.T) {
	l := NewGlobalAvgPool("gap")
	x := randInput(11, 2, 3, 5, 5)
	checkInputGrad(t, l, x, true, 1e-5)
}

func TestBatchNormGradients(t *testing.T) {
	l := NewBatchNorm2D("bn", 3)
	// Non-trivial gamma/beta.
	rng.New(12).FillNormal(l.Gamma.Value.Data(), 1, 0.2)
	rng.New(13).FillNormal(l.Beta.Value.Data(), 0, 0.2)
	x := randInput(14, 3, 3, 4, 4)
	checkInputGrad(t, l, x, true, 1e-3)
	checkParamGrad(t, l, x, true, 1e-3)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	l := NewBatchNorm2D("bn", 2)
	x := randInput(15, 4, 2, 3, 3)
	// Train once to move running stats.
	_ = l.Forward(x, true)
	y := l.Forward(x, false)
	scale, shift := l.InferenceAffine()
	// Check one element against the affine form.
	want := x.At(1, 1, 2, 2)*scale[1] + shift[1]
	if math.Abs(y.At(1, 1, 2, 2)-want) > 1e-12 {
		t.Fatalf("eval batch-norm is not the affine map: %g vs %g", y.At(1, 1, 2, 2), want)
	}
}

func TestResidualIdentityGradient(t *testing.T) {
	body := NewSequential("body",
		NewConv2D("c1", 2, 2, 3, 1, 1),
		NewReLU("r1"),
	)
	l := NewResidual("res", body, nil)
	InitHe(rng.New(16), l)
	x := randInput(17, 2, 2, 5, 5)
	awayFromKinks(x)
	checkInputGrad(t, l, x, true, 1e-4)
}

func TestResidualProjectionGradient(t *testing.T) {
	body := NewSequential("body", NewConv2D("c1", 2, 4, 3, 2, 1))
	short := NewConv2D("sc", 2, 4, 1, 2, 0)
	l := NewResidual("res", body, short)
	InitHe(rng.New(18), l)
	x := randInput(19, 2, 2, 6, 6)
	checkInputGrad(t, l, x, true, 1e-4)
	checkParamGrad(t, l, x, true, 1e-4)
}

func TestParallelGradient(t *testing.T) {
	l := NewParallel("inception",
		NewConv2D("b1", 2, 2, 1, 1, 0),
		NewConv2D("b2", 2, 3, 3, 1, 1),
	)
	InitHe(rng.New(20), l)
	x := randInput(21, 2, 2, 5, 5)
	checkInputGrad(t, l, x, true, 1e-4)
	checkParamGrad(t, l, x, true, 1e-4)
}

func TestDenseBlockGradient(t *testing.T) {
	l := NewDenseBlock("dense",
		NewConv2D("u1", 2, 2, 3, 1, 1),
		NewConv2D("u2", 4, 2, 3, 1, 1),
	)
	InitHe(rng.New(22), l)
	x := randInput(23, 2, 2, 4, 4)
	checkInputGrad(t, l, x, true, 1e-4)
	checkParamGrad(t, l, x, true, 1e-4)
}

func TestDenseBlockOutputChannels(t *testing.T) {
	l := NewDenseBlock("dense",
		NewConv2D("u1", 3, 4, 3, 1, 1),
		NewConv2D("u2", 7, 4, 3, 1, 1),
	)
	InitHe(rng.New(24), l)
	y := l.Forward(randInput(25, 1, 3, 4, 4), false)
	if y.Dim(1) != 3+4+4 {
		t.Fatalf("dense block channels = %d, want 11", y.Dim(1))
	}
}

func TestSqueezeExciteGradient(t *testing.T) {
	l := NewSqueezeExcite("se", 4, 2)
	InitHe(rng.New(26), l)
	x := randInput(27, 2, 4, 3, 3)
	awayFromKinks(x)
	checkInputGrad(t, l, x, true, 1e-4)
	checkParamGrad(t, l, x, true, 1e-4)
}

func TestFlattenRoundTrip(t *testing.T) {
	l := NewFlatten("flat")
	x := randInput(28, 2, 3, 4, 5)
	y := l.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	g := l.Backward(y)
	if g.Rank() != 4 || g.Dim(3) != 5 {
		t.Fatalf("unflatten shape %v", g.Shape())
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	l := NewDropout("drop", 0.5, rng.New(29))
	x := randInput(30, 2, 8)
	y := l.Forward(x, false)
	if !tensor.Equal(x, y, 0) {
		t.Fatal("eval-mode dropout changed values")
	}
	g := l.Backward(y)
	if !tensor.Equal(g, y, 0) {
		t.Fatal("eval-mode dropout changed gradient")
	}
}

func TestDropoutTrainScalesExpectation(t *testing.T) {
	l := NewDropout("drop", 0.25, rng.New(31))
	x := tensor.New(1, 20000).Fill(1)
	y := l.Forward(x, true)
	mean := y.Mean()
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("inverted dropout mean = %v, want ~1", mean)
	}
}

func TestSequentialGradient(t *testing.T) {
	m := NewSequential("net",
		NewConv2D("c1", 1, 2, 3, 1, 1),
		NewReLU("r1"),
		NewMaxPool2D("p1", 2, 2),
		NewFlatten("flat"),
		NewLinear("fc", 2*3*3, 4),
	)
	InitHe(rng.New(32), m)
	x := randInput(33, 2, 1, 6, 6)
	awayFromKinks(x)
	checkInputGrad(t, m, x, true, 1e-4)
	checkParamGrad(t, m, x, true, 1e-4)
}

func TestWalkVisitsNested(t *testing.T) {
	m := NewSequential("net",
		NewResidual("res", NewSequential("body", NewReLU("inner")), NewConv2D("sc", 1, 1, 1, 1, 0)),
		NewParallel("par", NewReLU("b1"), NewReLU("b2")),
	)
	var names []string
	m.Walk(func(l Layer) { names = append(names, l.Name()) })
	want := map[string]bool{"res": true, "body": true, "inner": true, "sc": true, "par": true, "b1": true, "b2": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("Walk missed layers: %v (visited %v)", want, names)
	}
}
