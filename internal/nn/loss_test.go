package nn

import (
	"math"
	"testing"
	"testing/quick"

	"advhunter/internal/rng"
	"advhunter/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, c := r.Intn(5)+1, r.Intn(8)+2
		logits := tensor.New(n, c)
		r.FillNormal(logits.Data(), 0, 5)
		p := Softmax(logits)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < c; j++ {
				v := p.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 1001, 999}, 1, 3)
	p := Softmax(logits)
	for _, v := range p.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", p.Data())
		}
	}
	if p.At(0, 1) <= p.At(0, 0) {
		t.Fatal("softmax ordering broken")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = log(4).
	logits := tensor.New(2, 4)
	loss, _ := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want log 4", loss)
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	r := rng.New(44)
	logits := tensor.New(3, 5)
	r.FillNormal(logits.Data(), 0, 2)
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)

	const h = 1e-6
	ld := logits.Data()
	for i := range ld {
		orig := ld[i]
		ld[i] = orig + h
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		ld[i] = orig - h
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		ld[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data()[i]) > 1e-5 {
			t.Fatalf("xent grad[%d]: analytic %g vs numeric %g", i, grad.Data()[i], num)
		}
	}
}

func TestCrossEntropyGradientSumsToZeroPerRow(t *testing.T) {
	// Softmax-xent gradient rows sum to zero (probabilities minus one-hot).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, c := r.Intn(4)+1, r.Intn(6)+2
		logits := tensor.New(n, c)
		r.FillNormal(logits.Data(), 0, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(c)
		}
		_, grad := SoftmaxCrossEntropy(logits, labels)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < c; j++ {
				sum += grad.At(i, j)
			}
			if math.Abs(sum) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEntropyPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 3), []int{3})
}

func TestInitHeStatistics(t *testing.T) {
	l := NewLinear("fc", 1000, 50)
	InitHe(rng.New(45), l)
	wd := l.W.Value.Data()
	var sum, sq float64
	for _, v := range wd {
		sum += v
		sq += v * v
	}
	n := float64(len(wd))
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	want := math.Sqrt(2.0 / 1000)
	if math.Abs(mean) > 0.01 || math.Abs(std-want) > 0.005 {
		t.Fatalf("He init mean %v std %v (want 0, %v)", mean, std, want)
	}
	// Bias must stay zero.
	for _, v := range l.B.Value.Data() {
		if v != 0 {
			t.Fatal("He init touched bias")
		}
	}
}

func TestZeroGrads(t *testing.T) {
	l := NewLinear("fc", 3, 2)
	InitHe(rng.New(46), l)
	x := tensor.New(1, 3).Fill(1)
	y := l.Forward(x, true)
	_ = l.Backward(y)
	ZeroGrads(l)
	for _, p := range l.Params() {
		for _, v := range p.Grad.Data() {
			if v != 0 {
				t.Fatal("ZeroGrads left residue")
			}
		}
	}
}
