package nn

import (
	"fmt"
	"math"

	"advhunter/internal/tensor"
)

// ConcatChannels concatenates rank-4 tensors along the channel dimension.
// All inputs must share batch and spatial dimensions.
func ConcatChannels(xs ...*tensor.Tensor) *tensor.Tensor {
	n, h, w := xs[0].Dim(0), xs[0].Dim(2), xs[0].Dim(3)
	totalC := 0
	for _, x := range xs {
		if x.Rank() != 4 || x.Dim(0) != n || x.Dim(2) != h || x.Dim(3) != w {
			panic(fmt.Sprintf("nn: concat mismatch %v vs [N=%d,?,%d,%d]", x.Shape(), n, h, w))
		}
		totalC += x.Dim(1)
	}
	out := tensor.New(n, totalC, h, w)
	od := out.Data()
	plane := h * w
	for i := 0; i < n; i++ {
		cOff := 0
		for _, x := range xs {
			c := x.Dim(1)
			src := x.Data()[i*c*plane : (i+1)*c*plane]
			copy(od[(i*totalC+cOff)*plane:(i*totalC+cOff)*plane+c*plane], src)
			cOff += c
		}
	}
	return out
}

// SplitChannels is the inverse of ConcatChannels for the given channel sizes.
func SplitChannels(x *tensor.Tensor, sizes []int) []*tensor.Tensor {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	plane := h * w
	totalC := x.Dim(1)
	outs := make([]*tensor.Tensor, len(sizes))
	xd := x.Data()
	cOff := 0
	for bi, c := range sizes {
		part := tensor.New(n, c, h, w)
		pd := part.Data()
		for i := 0; i < n; i++ {
			copy(pd[i*c*plane:(i+1)*c*plane], xd[(i*totalC+cOff)*plane:(i*totalC+cOff)*plane+c*plane])
		}
		outs[bi] = part
		cOff += c
	}
	if cOff != totalC {
		panic(fmt.Sprintf("nn: split sizes %v do not cover %d channels", sizes, totalC))
	}
	return outs
}

// Residual computes Body(x) + Shortcut(x); a nil Shortcut is the identity.
// This is the basic building block of ResNet-style networks.
type Residual struct {
	label    string
	Body     Layer
	Shortcut Layer // nil means identity
}

// NewResidual constructs a residual block.
func NewResidual(label string, body, shortcut Layer) *Residual {
	return &Residual{label: label, Body: body, Shortcut: shortcut}
}

// Name returns the block label.
func (l *Residual) Name() string { return l.label }

// Params returns the parameters of body and shortcut.
func (l *Residual) Params() []*Param {
	ps := l.Body.Params()
	if l.Shortcut != nil {
		ps = append(ps, l.Shortcut.Params()...)
	}
	return ps
}

// Forward computes the two paths and sums them.
func (l *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := l.Body.Forward(x, train)
	if l.Shortcut != nil {
		return y.AddInPlace(l.Shortcut.Forward(x, train))
	}
	return y.AddInPlace(x)
}

// Backward sums the gradients of the two paths.
func (l *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := l.Body.Backward(grad)
	if l.Shortcut != nil {
		return dx.AddInPlace(l.Shortcut.Backward(grad))
	}
	return dx.AddInPlace(grad)
}

// Parallel applies every branch to the same input and concatenates branch
// outputs along the channel dimension — the Inception module shape used by
// GoogLeNet-style networks.
type Parallel struct {
	label    string
	Branches []Layer

	branchC []int
}

// NewParallel constructs a branch-and-concat combinator.
func NewParallel(label string, branches ...Layer) *Parallel {
	return &Parallel{label: label, Branches: branches}
}

// Name returns the block label.
func (l *Parallel) Name() string { return l.label }

// Params returns the parameters of all branches.
func (l *Parallel) Params() []*Param {
	var ps []*Param
	for _, b := range l.Branches {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// Forward evaluates branches and concatenates their channel outputs.
func (l *Parallel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	outs := make([]*tensor.Tensor, len(l.Branches))
	l.branchC = make([]int, len(l.Branches))
	for i, b := range l.Branches {
		outs[i] = b.Forward(x, train)
		l.branchC[i] = outs[i].Dim(1)
	}
	return ConcatChannels(outs...)
}

// Backward splits the gradient per branch and sums input gradients.
func (l *Parallel) Backward(grad *tensor.Tensor) *tensor.Tensor {
	parts := SplitChannels(grad, l.branchC)
	var dx *tensor.Tensor
	for i, b := range l.Branches {
		g := b.Backward(parts[i])
		if dx == nil {
			dx = g
		} else {
			dx.AddInPlace(g)
		}
	}
	return dx
}

// DenseBlock implements DenseNet-style growth: each unit consumes the
// concatenation of the block input and all previous unit outputs, and its
// output is appended to that running concatenation.
type DenseBlock struct {
	label string
	Units []Layer

	unitC []int // channel count produced by each unit
	inC   int
}

// NewDenseBlock constructs a dense block from growth units.
func NewDenseBlock(label string, units ...Layer) *DenseBlock {
	return &DenseBlock{label: label, Units: units}
}

// Name returns the block label.
func (l *DenseBlock) Name() string { return l.label }

// Params returns the parameters of all units.
func (l *DenseBlock) Params() []*Param {
	var ps []*Param
	for _, u := range l.Units {
		ps = append(ps, u.Params()...)
	}
	return ps
}

// Forward grows the channel concatenation unit by unit.
func (l *DenseBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.inC = x.Dim(1)
	l.unitC = make([]int, len(l.Units))
	cur := x
	for i, u := range l.Units {
		y := u.Forward(cur, train)
		l.unitC[i] = y.Dim(1)
		cur = ConcatChannels(cur, y)
	}
	return cur
}

// Backward walks units in reverse, splitting the running gradient into the
// part feeding earlier features and the part feeding the unit output.
func (l *DenseBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(l.Units) - 1; i >= 0; i-- {
		prevC := l.inC
		for j := 0; j < i; j++ {
			prevC += l.unitC[j]
		}
		parts := SplitChannels(grad, []int{prevC, l.unitC[i]})
		gPrev, gUnit := parts[0], parts[1]
		gPrev.AddInPlace(l.Units[i].Backward(gUnit))
		grad = gPrev
	}
	return grad
}

// SqueezeExcite recalibrates channels: s = spatial mean per channel,
// g = σ(W2·relu(W1·s)), out = x ⊙ g (broadcast over space). Used by
// EfficientNet-style MBConv blocks.
type SqueezeExcite struct {
	label string
	C     int
	// Reduced is the bottleneck width of the gating MLP.
	Reduced  int
	FC1, FC2 *Linear

	in      *tensor.Tensor
	squeeze *tensor.Tensor // [N, C]
	hidden  *tensor.Tensor // [N, Reduced] post-ReLU
	gate    *tensor.Tensor // [N, C] post-sigmoid
}

// NewSqueezeExcite constructs an SE block with bottleneck width reduced.
func NewSqueezeExcite(label string, c, reduced int) *SqueezeExcite {
	return &SqueezeExcite{
		label:   label,
		C:       c,
		Reduced: reduced,
		FC1:     NewLinear(label+".fc1", c, reduced),
		FC2:     NewLinear(label+".fc2", reduced, c),
	}
}

// Name returns the block label.
func (l *SqueezeExcite) Name() string { return l.label }

// Params returns the gating MLP parameters.
func (l *SqueezeExcite) Params() []*Param {
	return append(l.FC1.Params(), l.FC2.Params()...)
}

// Forward computes the gated output.
func (l *SqueezeExcite) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkRank(l.label, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	l.in = x
	// Squeeze: per-channel spatial mean.
	sq := tensor.New(n, c)
	xd, sqd := x.Data(), sq.Data()
	inv := 1 / float64(plane)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * plane
			sum := 0.0
			for p := 0; p < plane; p++ {
				sum += xd[base+p]
			}
			sqd[i*c+ch] = sum * inv
		}
	}
	l.squeeze = sq
	// Excite: two FC layers.
	hPre := l.FC1.Forward(sq, train)
	hidden := hPre.Clone()
	for i, v := range hidden.Data() {
		if v < 0 {
			hidden.Data()[i] = 0
		}
	}
	l.hidden = hidden
	gPre := l.FC2.Forward(hidden, train)
	gate := gPre.Clone().Apply(sigmoid)
	l.gate = gate
	// Scale channels.
	out := tensor.New(x.Shape()...)
	od, gd := out.Data(), gate.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := gd[i*c+ch]
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				od[base+p] = xd[base+p] * g
			}
		}
	}
	return out
}

// Backward differentiates both the direct scaling path and the gate path.
func (l *SqueezeExcite) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := l.in.Dim(0), l.in.Dim(1), l.in.Dim(2), l.in.Dim(3)
	plane := h * w
	xd, gd := l.in.Data(), l.gate.Data()
	dyd := grad.Data()

	// dGate[n,c] = Σ_{hw} dy·x ; direct term dx = dy·g.
	dx := tensor.New(l.in.Shape()...)
	dxd := dx.Data()
	dGatePre := tensor.New(n, c) // gradient at FC2 output (pre-sigmoid)
	dgd := dGatePre.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * plane
			g := gd[i*c+ch]
			sum := 0.0
			for p := 0; p < plane; p++ {
				dy := dyd[base+p]
				sum += dy * xd[base+p]
				dxd[base+p] = dy * g
			}
			// σ'(z) = g(1-g)
			dgd[i*c+ch] = sum * g * (1 - g)
		}
	}
	// Through FC2, hidden ReLU, FC1.
	dHidden := l.FC2.Backward(dGatePre)
	hd := l.hidden.Data()
	dhd := dHidden.Data()
	for i := range dhd {
		if hd[i] <= 0 {
			dhd[i] = 0
		}
	}
	dSqueeze := l.FC1.Backward(dHidden) // [N, C]
	// Squeeze backward: distribute mean gradient over the plane.
	dsd := dSqueeze.Data()
	inv := 1 / float64(plane)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := dsd[i*c+ch] * inv
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				dxd[base+p] += g
			}
		}
	}
	return dx
}

// sigmoid is the numerically stable logistic function used by SqueezeExcite.
func sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}
