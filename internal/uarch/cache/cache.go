// Package cache implements the memory-hierarchy model of the simulated
// machine: set-associative write-back, write-allocate caches with pluggable
// replacement policies (LRU, tree-PLRU, SRRIP, random), optional next-line
// and stride prefetchers, and a composable multi-level hierarchy (L1I, L1D,
// unified L2, LLC) whose per-level statistics back the perf-style events in
// internal/uarch/hpc.
//
// The model is a trace-driven functional simulator: it tracks tags and
// dirtiness, not data or timing. That is exactly the fidelity Hardware
// Performance Counters expose — event *counts* — which is all AdvHunter
// consumes.
package cache

import (
	"fmt"
	"math/bits"

	"advhunter/internal/rng"
)

// AccessKind distinguishes demand loads, stores and instruction fetches.
type AccessKind int

// Access kinds. Prefetch fills a line like a load but is accounted
// separately so prefetching reduces (rather than relabels) demand misses.
const (
	Load AccessKind = iota
	Store
	Fetch
	Prefetch
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Fetch:
		return "fetch"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Policy selects the replacement strategy of a cache.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	PLRU
	SRRIP
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case PLRU:
		return "plru"
	case SRRIP:
		return "srrip"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	Name   string
	SizeB  int // total capacity in bytes
	Ways   int
	LineB  int // line size in bytes (power of two)
	Policy Policy
	// Seed drives the Random policy (ignored otherwise).
	Seed uint64
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeB / (c.Ways * c.LineB) }

// Validate panics on degenerate configurations.
func (c Config) Validate() {
	if c.SizeB <= 0 || c.Ways <= 0 || c.LineB <= 0 {
		panic(fmt.Sprintf("cache: non-positive geometry in %+v", c))
	}
	if c.LineB&(c.LineB-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", c.LineB))
	}
	if c.SizeB%(c.Ways*c.LineB) != 0 || c.Sets() == 0 {
		panic(fmt.Sprintf("cache: size %dB not divisible into %d ways of %dB lines", c.SizeB, c.Ways, c.LineB))
	}
	if s := c.Sets(); s&(s-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", s))
	}
}

// Stats counts the events observed at one cache level.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	LoadMisses     uint64
	StoreMisses    uint64
	FetchMisses    uint64
	PrefetchMisses uint64
	Evictions      uint64
	WriteBacks     uint64
}

// MissRate returns misses per access (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Level is anything that can absorb a memory access: a lower cache or DRAM.
type Level interface {
	Access(addr uint64, kind AccessKind)
}

// Memory is the terminal level; it only counts traffic.
type Memory struct {
	Accesses uint64
}

// Access counts one DRAM transaction.
func (m *Memory) Access(addr uint64, kind AccessKind) { m.Accesses++ }

// Reset clears the DRAM counter.
func (m *Memory) Reset() { m.Accesses = 0 }

// line is one cache line's metadata.
type line struct {
	valid bool
	dirty bool
	tag   uint64
	// lru is a per-set timestamp for LRU, and the RRPV for SRRIP.
	lru uint64
}

// Cache is one set-associative level.
type Cache struct {
	cfg      Config
	Next     Level
	sets     []line // Sets()*Ways entries, set-major
	plruBits []uint64
	tick     uint64
	rand     *rng.Rand
	stats    Stats
	shift    uint
	setMask  uint64
}

// New builds a cache level on top of next.
func New(cfg Config, next Level) *Cache {
	cfg.Validate()
	if next == nil {
		panic("cache: nil next level")
	}
	c := &Cache{
		cfg:     cfg,
		Next:    next,
		sets:    make([]line, cfg.Sets()*cfg.Ways),
		shift:   uint(bits.TrailingZeros(uint(cfg.LineB))),
		setMask: uint64(cfg.Sets() - 1),
	}
	if cfg.Policy == PLRU {
		c.plruBits = make([]uint64, cfg.Sets())
	}
	if cfg.Policy == Random {
		c.rand = rng.New(cfg.Seed ^ 0xcafef00d)
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset invalidates all lines and clears statistics, returning the cache to
// a cold state. The Random policy stream is NOT reset so repeated
// measurements see fresh victim choices.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = line{}
	}
	for i := range c.plruBits {
		c.plruBits[i] = 0
	}
	c.tick = 0
	c.stats = Stats{}
}

// Access performs one demand access, recursing into lower levels on miss and
// on dirty-victim write-back.
func (c *Cache) Access(addr uint64, kind AccessKind) {
	c.stats.Accesses++
	set := (addr >> c.shift) & c.setMask
	tag := addr >> c.shift
	base := int(set) * c.cfg.Ways
	ways := c.sets[base : base+c.cfg.Ways]

	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			c.stats.Hits++
			c.touch(set, ways, w)
			if kind == Store {
				ways[w].dirty = true
			}
			return
		}
	}

	// Miss.
	c.stats.Misses++
	switch kind {
	case Load:
		c.stats.LoadMisses++
	case Store:
		c.stats.StoreMisses++
	case Fetch:
		c.stats.FetchMisses++
	case Prefetch:
		c.stats.PrefetchMisses++
	}
	victim := c.victim(set, ways)
	if ways[victim].valid {
		c.stats.Evictions++
		if ways[victim].dirty {
			c.stats.WriteBacks++
			c.Next.Access(ways[victim].tag<<c.shift, Store)
		}
	}
	// Fill from below (write-allocate: stores also fetch the line).
	fillKind := Load
	if kind == Fetch {
		fillKind = Fetch
	}
	c.Next.Access(addr, fillKind)
	ways[victim] = line{valid: true, dirty: kind == Store, tag: tag}
	c.insert(set, ways, victim)
}

// touch updates replacement metadata on a hit.
func (c *Cache) touch(set uint64, ways []line, w int) {
	switch c.cfg.Policy {
	case LRU:
		c.tick++
		ways[w].lru = c.tick
	case PLRU:
		c.plruTouch(set, w)
	case SRRIP:
		ways[w].lru = 0 // promote to near-immediate re-reference
	case Random:
		// stateless
	}
}

// insert initialises replacement metadata for a newly filled way.
func (c *Cache) insert(set uint64, ways []line, w int) {
	switch c.cfg.Policy {
	case LRU:
		c.tick++
		ways[w].lru = c.tick
	case PLRU:
		c.plruTouch(set, w)
	case SRRIP:
		ways[w].lru = 2 // long re-reference interval on insertion
	case Random:
	}
}

// victim selects the way to replace in the set.
func (c *Cache) victim(set uint64, ways []line) int {
	// Invalid ways first, for every policy.
	for w := range ways {
		if !ways[w].valid {
			return w
		}
	}
	switch c.cfg.Policy {
	case LRU:
		best, bestTick := 0, ways[0].lru
		for w := 1; w < len(ways); w++ {
			if ways[w].lru < bestTick {
				best, bestTick = w, ways[w].lru
			}
		}
		return best
	case PLRU:
		return c.plruVictim(set)
	case SRRIP:
		// Find (aging as needed) a way with maximal RRPV (3).
		for {
			for w := range ways {
				if ways[w].lru >= 3 {
					return w
				}
			}
			for w := range ways {
				ways[w].lru++
			}
		}
	case Random:
		return c.rand.Intn(len(ways))
	}
	return 0
}

// plruTouch flips the tree bits along w's path so the path points away.
func (c *Cache) plruTouch(set uint64, w int) {
	bitsState := c.plruBits[set]
	node := 0
	levels := bits.Len(uint(c.cfg.Ways)) - 1
	for level := 0; level < levels; level++ {
		bit := (w >> (levels - 1 - level)) & 1
		if bit == 0 {
			bitsState |= 1 << uint(node) // point right (away from taken left path)
			node = 2*node + 1
		} else {
			bitsState &^= 1 << uint(node) // point left
			node = 2*node + 2
		}
	}
	c.plruBits[set] = bitsState
}

// plruVictim follows the tree bits to the pseudo-LRU way.
func (c *Cache) plruVictim(set uint64) int {
	bitsState := c.plruBits[set]
	node, w := 0, 0
	levels := bits.Len(uint(c.cfg.Ways)) - 1
	for level := 0; level < levels; level++ {
		if bitsState&(1<<uint(node)) != 0 { // points right
			w = w<<1 | 1
			node = 2*node + 2
		} else {
			w = w << 1
			node = 2*node + 1
		}
	}
	return w
}
