// Package cache implements the memory-hierarchy model of the simulated
// machine: set-associative write-back, write-allocate caches with pluggable
// replacement policies (LRU, tree-PLRU, SRRIP, random), optional next-line
// and stride prefetchers, and a composable multi-level hierarchy (L1I, L1D,
// unified L2, LLC) whose per-level statistics back the perf-style events in
// internal/uarch/hpc.
//
// The model is a trace-driven functional simulator: it tracks tags and
// dirtiness, not data or timing. That is exactly the fidelity Hardware
// Performance Counters expose — event *counts* — which is all AdvHunter
// consumes.
package cache

import (
	"fmt"
	"math/bits"

	"advhunter/internal/rng"
)

// AccessKind distinguishes demand loads, stores and instruction fetches.
type AccessKind int

// Access kinds. Prefetch fills a line like a load but is accounted
// separately so prefetching reduces (rather than relabels) demand misses.
const (
	Load AccessKind = iota
	Store
	Fetch
	Prefetch
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Fetch:
		return "fetch"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Policy selects the replacement strategy of a cache.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	PLRU
	SRRIP
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case PLRU:
		return "plru"
	case SRRIP:
		return "srrip"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	Name   string
	SizeB  int // total capacity in bytes
	Ways   int
	LineB  int // line size in bytes (power of two)
	Policy Policy
	// Seed drives the Random policy (ignored otherwise).
	Seed uint64
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeB / (c.Ways * c.LineB) }

// Validate panics on degenerate configurations.
func (c Config) Validate() {
	if c.SizeB <= 0 || c.Ways <= 0 || c.LineB <= 0 {
		panic(fmt.Sprintf("cache: non-positive geometry in %+v", c))
	}
	if c.LineB&(c.LineB-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", c.LineB))
	}
	if c.SizeB%(c.Ways*c.LineB) != 0 || c.Sets() == 0 {
		panic(fmt.Sprintf("cache: size %dB not divisible into %d ways of %dB lines", c.SizeB, c.Ways, c.LineB))
	}
	if s := c.Sets(); s&(s-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", s))
	}
}

// Stats counts the events observed at one cache level.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	LoadMisses     uint64
	StoreMisses    uint64
	FetchMisses    uint64
	PrefetchMisses uint64
	Evictions      uint64
	WriteBacks     uint64
}

// MissRate returns misses per access (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Level is anything that can absorb a memory access: a lower cache or DRAM.
type Level interface {
	Access(addr uint64, kind AccessKind)
}

// Memory is the terminal level; it only counts traffic.
type Memory struct {
	Accesses uint64
}

// Access counts one DRAM transaction.
func (m *Memory) Access(addr uint64, kind AccessKind) { m.Accesses++ }

// Reset clears the DRAM counter.
func (m *Memory) Reset() { m.Accesses = 0 }

// line is one cache line's metadata.
type line struct {
	valid bool
	dirty bool
	tag   uint64
	// lru is the RRPV for SRRIP and the recency stamp for the TLB; the
	// cache-level LRU policy keeps an explicit recency list instead.
	lru uint64
}

// Cache is one set-associative level.
type Cache struct {
	cfg      Config
	Next     Level
	sets     []line // Sets()*Ways entries, set-major
	plruBits []uint64
	rand     *rng.Rand
	stats    Stats
	shift    uint
	setMask  uint64

	// mru[s] is the way of set s touched most recently (hit or fill). A
	// demand access probes it before the full way scan; tags are unique
	// within a set, so the probe finds exactly the way the scan would and
	// replacement state sees the identical update. It is purely a search
	// shortcut for the L1 re-touch pattern of the conv inner loop.
	mru []int16
	// fillCount[s] is the number of valid ways in set s. Lines only become
	// valid (fills) and are never invalidated outside Reset, so the valid
	// ways always form the prefix [0, fillCount) and the "first invalid
	// way" victim scan reduces to reading the counter.
	fillCount []int16
	// Per-set recency list for the LRU policy (head = most recent, tail =
	// least). The list order is exactly descending order of the global
	// timestamps the previous implementation stamped on touch/insert —
	// timestamps were unique, so the tail is precisely the way the
	// min-timestamp scan picked, found in O(1) instead of O(ways).
	lruHead, lruTail []int16
	lruNext, lruPrev []int16 // indexed set*Ways+way; -1 terminates

	// sig packs one signature byte per way (wpset words per set): the eight
	// tag bits just above the set index, the first bits that differ between
	// tags competing for one set. A probe broadcasts the lookup signature and
	// finds candidate ways with a SWAR zero-byte scan, so the common miss
	// costs a couple of word ops instead of a full way walk. Candidates are
	// re-verified against the real tag (valid ways hold unique tags, unfilled
	// ways read as signature 0), so the index can only save work, never
	// change an outcome.
	sig      []uint64
	wpset    int
	sigShift uint
}

// New builds a cache level on top of next.
func New(cfg Config, next Level) *Cache {
	cfg.Validate()
	if next == nil {
		panic("cache: nil next level")
	}
	sets := cfg.Sets()
	wpset := (cfg.Ways + 7) / 8
	c := &Cache{
		cfg:       cfg,
		Next:      next,
		sets:      make([]line, sets*cfg.Ways),
		shift:     uint(bits.TrailingZeros(uint(cfg.LineB))),
		setMask:   uint64(sets - 1),
		mru:       make([]int16, sets),
		fillCount: make([]int16, sets),
		sig:       make([]uint64, sets*wpset),
		wpset:     wpset,
		sigShift:  uint(bits.Len(uint(sets - 1))),
	}
	if cfg.Policy == PLRU {
		c.plruBits = make([]uint64, sets)
	}
	if cfg.Policy == LRU {
		c.lruHead = make([]int16, sets)
		c.lruTail = make([]int16, sets)
		c.lruNext = make([]int16, sets*cfg.Ways)
		c.lruPrev = make([]int16, sets*cfg.Ways)
		for i := range c.lruHead {
			c.lruHead[i], c.lruTail[i] = -1, -1
		}
	}
	if cfg.Policy == Random {
		c.rand = rng.New(cfg.Seed ^ 0xcafef00d)
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset invalidates all lines and clears statistics, returning the cache to
// a cold state. The Random policy stream is NOT reset so repeated
// measurements see fresh victim choices.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = line{}
	}
	for i := range c.plruBits {
		c.plruBits[i] = 0
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	for i := range c.fillCount {
		c.fillCount[i] = 0
	}
	for i := range c.lruHead {
		c.lruHead[i], c.lruTail[i] = -1, -1
	}
	for i := range c.sig {
		c.sig[i] = 0
	}
	c.stats = Stats{}
}

// Access performs one demand access, recursing into lower levels on miss and
// on dirty-victim write-back.
func (c *Cache) Access(addr uint64, kind AccessKind) {
	c.access(addr, addr>>c.shift, kind)
}

// AccessRun performs n demand accesses of kind over the consecutive lines
// starting at base. It is behaviour-identical to calling Access once per
// line — same hits, misses, evictions, write-backs and replacement updates
// in the same order — but decomposes the address once and walks the tag in
// a tight loop.
func (c *Cache) AccessRun(base uint64, n int, kind AccessKind) {
	lineB := uint64(c.cfg.LineB)
	addr, tag := base, base>>c.shift
	for i := 0; i < n; i++ {
		c.access(addr, tag, kind)
		addr += lineB
		tag++
	}
}

func (c *Cache) access(addr, tag uint64, kind AccessKind) {
	c.stats.Accesses++
	set := tag & c.setMask
	base := int(set) * c.cfg.Ways

	// MRU short-circuit: the conv inner loop re-reads the same input rows
	// once per output channel, so the hottest line of a set is hit over and
	// over. The probe is re-verified (valid + tag), and a set never holds
	// two ways with one tag (fills happen only after a full-scan miss), so
	// a probe hit is exactly the hit the scan would have found.
	if m := int(c.mru[set]); c.sets[base+m].valid && c.sets[base+m].tag == tag {
		c.stats.Hits++
		c.touch(set, base, m)
		if kind == Store {
			c.sets[base+m].dirty = true
		}
		return
	}

	// Signature probe: broadcast the lookup byte and flag matching ways with
	// the SWAR zero-byte trick. False positives (and flagged bytes past the
	// last way, which read as 0) are rejected by the tag re-check; a verified
	// match is THE match, since valid tags are unique within a set.
	ways := c.sets[base : base+c.cfg.Ways]
	sigBase := int(set) * c.wpset
	bcast := uint64(uint8(tag>>c.sigShift)) * 0x0101010101010101
	for wi := 0; wi < c.wpset; wi++ {
		x := c.sig[sigBase+wi] ^ bcast
		m := (x - 0x0101010101010101) &^ x & 0x8080808080808080
		for m != 0 {
			w := wi<<3 + bits.TrailingZeros64(m)>>3
			if w < len(ways) && ways[w].valid && ways[w].tag == tag {
				c.stats.Hits++
				c.mru[set] = int16(w)
				c.touch(set, base, w)
				if kind == Store {
					ways[w].dirty = true
				}
				return
			}
			m &= m - 1
		}
	}

	// Miss.
	c.stats.Misses++
	switch kind {
	case Load:
		c.stats.LoadMisses++
	case Store:
		c.stats.StoreMisses++
	case Fetch:
		c.stats.FetchMisses++
	case Prefetch:
		c.stats.PrefetchMisses++
	}
	victim := c.victim(set, base, ways)
	if ways[victim].valid {
		c.stats.Evictions++
		if ways[victim].dirty {
			c.stats.WriteBacks++
			c.nextAccess(ways[victim].tag<<c.shift, Store)
		}
	} else {
		c.fillCount[set]++
	}
	// Fill from below (write-allocate: stores also fetch the line).
	fillKind := Load
	if kind == Fetch {
		fillKind = Fetch
	}
	c.nextAccess(addr, fillKind)
	ways[victim] = line{valid: true, dirty: kind == Store, tag: tag}
	sw := sigBase + victim>>3
	sh := uint(victim&7) * 8
	c.sig[sw] = c.sig[sw]&^(0xff<<sh) | uint64(uint8(tag>>c.sigShift))<<sh
	c.mru[set] = int16(victim)
	c.insert(set, base, victim)
}

// nextAccess forwards a miss-path transaction to the next level. The type
// assertion devirtualises the common cache-below-cache case (skipping the
// interface dispatch and the exported wrapper) while still reading Next at
// call time, so tests that interpose a recording Level keep working.
func (c *Cache) nextAccess(addr uint64, kind AccessKind) {
	if nc, ok := c.Next.(*Cache); ok {
		nc.access(addr, addr>>nc.shift, kind)
	} else {
		c.Next.Access(addr, kind)
	}
}

// touch updates replacement metadata on a hit.
func (c *Cache) touch(set uint64, base, w int) {
	switch c.cfg.Policy {
	case LRU:
		// Head check here keeps the dominant already-most-recent hit free of
		// the list-surgery call.
		if int(c.lruHead[set]) != w {
			c.lruMoveFront(set, base, w)
		}
	case PLRU:
		c.plruTouch(set, w)
	case SRRIP:
		c.sets[base+w].lru = 0 // promote to near-immediate re-reference
	case Random:
		// stateless
	}
}

// insert initialises replacement metadata for a newly filled way. For LRU
// the way is never on the list here: either it was invalid (first fill) or
// it is the evicted tail, which victim unlinked.
func (c *Cache) insert(set uint64, base, w int) {
	switch c.cfg.Policy {
	case LRU:
		c.lruPushFront(set, base, w)
	case PLRU:
		c.plruTouch(set, w)
	case SRRIP:
		c.sets[base+w].lru = 2 // long re-reference interval on insertion
	case Random:
	}
}

// victim selects the way to replace in the set. It is only called on the
// miss path, and the caller always refills the returned way immediately.
func (c *Cache) victim(set uint64, base int, ways []line) int {
	// Invalid ways first, for every policy: fills land at increasing way
	// indices, so the first invalid way is exactly fillCount.
	if f := int(c.fillCount[set]); f < c.cfg.Ways {
		return f
	}
	switch c.cfg.Policy {
	case LRU:
		// The recency-list tail; unlink it here so insert can push the
		// refilled way back to the front unconditionally.
		w := int(c.lruTail[set])
		p := c.lruPrev[base+w]
		c.lruTail[set] = p
		if p >= 0 {
			c.lruNext[base+int(p)] = -1
		} else {
			c.lruHead[set] = -1
		}
		return w
	case PLRU:
		return c.plruVictim(set)
	case SRRIP:
		// Find (aging as needed) a way with maximal RRPV (3).
		for {
			for w := range ways {
				if ways[w].lru >= 3 {
					return w
				}
			}
			for w := range ways {
				ways[w].lru++
			}
		}
	case Random:
		return c.rand.Intn(len(ways))
	}
	return 0
}

// lruPushFront links w (currently unlinked) at the head of set's recency
// list.
func (c *Cache) lruPushFront(set uint64, base, w int) {
	h := c.lruHead[set]
	c.lruNext[base+w] = h
	c.lruPrev[base+w] = -1
	if h >= 0 {
		c.lruPrev[base+int(h)] = int16(w)
	} else {
		c.lruTail[set] = int16(w)
	}
	c.lruHead[set] = int16(w)
}

// lruMoveFront moves an on-list way to the head of set's recency list.
func (c *Cache) lruMoveFront(set uint64, base, w int) {
	if int(c.lruHead[set]) == w {
		return
	}
	p, n := c.lruPrev[base+w], c.lruNext[base+w] // p >= 0: w is not the head
	c.lruNext[base+int(p)] = n
	if n >= 0 {
		c.lruPrev[base+int(n)] = p
	} else {
		c.lruTail[set] = p
	}
	c.lruPushFront(set, base, w)
}

// plruTouch flips the tree bits along w's path so the path points away.
func (c *Cache) plruTouch(set uint64, w int) {
	bitsState := c.plruBits[set]
	node := 0
	levels := bits.Len(uint(c.cfg.Ways)) - 1
	for level := 0; level < levels; level++ {
		bit := (w >> (levels - 1 - level)) & 1
		if bit == 0 {
			bitsState |= 1 << uint(node) // point right (away from taken left path)
			node = 2*node + 1
		} else {
			bitsState &^= 1 << uint(node) // point left
			node = 2*node + 2
		}
	}
	c.plruBits[set] = bitsState
}

// plruVictim follows the tree bits to the pseudo-LRU way.
func (c *Cache) plruVictim(set uint64) int {
	bitsState := c.plruBits[set]
	node, w := 0, 0
	levels := bits.Len(uint(c.cfg.Ways)) - 1
	for level := 0; level < levels; level++ {
		if bitsState&(1<<uint(node)) != 0 { // points right
			w = w<<1 | 1
			node = 2*node + 2
		} else {
			w = w << 1
			node = 2*node + 1
		}
	}
	return w
}
