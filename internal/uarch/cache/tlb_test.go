package cache

import (
	"testing"
	"testing/quick"

	"advhunter/internal/rng"
)

func TestTLBHitOnSamePage(t *testing.T) {
	tlb := NewTLB(DefaultDTLBConfig(), nil)
	tlb.Translate(0x1000)
	tlb.Translate(0x1fff) // same 4 KiB page
	st := tlb.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTLBDistinctPagesMiss(t *testing.T) {
	tlb := NewTLB(DefaultDTLBConfig(), nil)
	for i := uint64(0); i < 10; i++ {
		tlb.Translate(i * 4096)
	}
	if tlb.Stats().Misses != 10 {
		t.Fatalf("misses %d, want 10 cold misses", tlb.Stats().Misses)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	cfg := TLBConfig{Name: "t", Entries: 8, Ways: 2, PageB: 4096}
	tlb := NewTLB(cfg, nil)
	// Hammer one set: pages with equal set index (stride = sets*pageB).
	stride := uint64(4) * 4096
	tlb.Translate(0)
	tlb.Translate(stride)
	tlb.Translate(2 * stride) // evicts page 0 (LRU)
	pre := tlb.Stats().Hits
	tlb.Translate(0)
	if tlb.Stats().Hits != pre {
		t.Fatal("evicted page still hit")
	}
}

func TestTLBWalkTraffic(t *testing.T) {
	mem := &Memory{}
	tlb := NewTLB(DefaultDTLBConfig(), mem)
	tlb.Translate(0x10000)
	if mem.Accesses != uint64(tlb.WalkLevels) {
		t.Fatalf("walk issued %d accesses, want %d", mem.Accesses, tlb.WalkLevels)
	}
	tlb.Translate(0x10040) // hit: no walk
	if mem.Accesses != uint64(tlb.WalkLevels) {
		t.Fatal("hit generated walk traffic")
	}
}

func TestTLBAccountingInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		tlb := NewTLB(DefaultDTLBConfig(), nil)
		r := rng.New(seed)
		for i := 0; i < 500; i++ {
			tlb.Translate(uint64(r.Intn(1 << 22)))
		}
		st := tlb.Stats()
		return st.Hits+st.Misses == st.Accesses && st.Walks == st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBReset(t *testing.T) {
	tlb := NewTLB(DefaultDTLBConfig(), nil)
	tlb.Translate(0x5000)
	tlb.Reset()
	if tlb.Stats().Accesses != 0 {
		t.Fatal("stats survived reset")
	}
	tlb.Translate(0x5000)
	if tlb.Stats().Misses != 1 {
		t.Fatal("entry survived reset")
	}
}

func TestTLBConfigValidate(t *testing.T) {
	bad := []TLBConfig{
		{Entries: 0, Ways: 1, PageB: 4096},
		{Entries: 8, Ways: 3, PageB: 4096},  // not divisible
		{Entries: 8, Ways: 2, PageB: 3000},  // page not power of two
		{Entries: 24, Ways: 2, PageB: 4096}, // 12 sets: not a power of two
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d did not panic", i)
				}
			}()
			cfg.Validate()
		}()
	}
}

func TestHierarchyTranslatesZeroTraffic(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// ZCA-absorbed accesses still need translation (physically indexed tags).
	h.Load(0x100000, true)
	if h.DTLB.Stats().Accesses != 1 {
		t.Fatal("zero-line load skipped translation")
	}
	if h.L1D.Stats().Accesses != 0 {
		t.Fatal("zero-line load reached the data cache")
	}
}

func TestHierarchyDTLBDisable(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.DTLB = TLBConfig{}
	h := NewHierarchy(cfg)
	if h.DTLB != nil {
		t.Fatal("zero-valued TLB config did not disable the TLB")
	}
	h.Load(0x100, false) // must not panic
}
