package cache

import (
	"reflect"
	"testing"

	"advhunter/internal/rng"
)

// recLevel records every transaction it absorbs, in order. It also exercises
// the non-devirtualised Next path (it is not a *Cache).
type recLevel struct {
	events []recEvent
}

type recEvent struct {
	addr uint64
	kind AccessKind
}

func (r *recLevel) Access(addr uint64, kind AccessKind) {
	r.events = append(r.events, recEvent{addr, kind})
}

// TestAccessRunMatchesScalar drives one cache with AccessRun and a twin with
// the per-line Access loop over an adversarial mixed schedule, for every
// policy, and requires identical statistics AND an identical downstream
// transaction sequence — the strongest observable equivalence the model has.
func TestAccessRunMatchesScalar(t *testing.T) {
	for _, pol := range []Policy{LRU, PLRU, SRRIP, Random} {
		cfg := Config{Name: "t", SizeB: 1024, Ways: 4, LineB: 64, Policy: pol, Seed: 7}
		runNext, scalNext := &recLevel{}, &recLevel{}
		run, scal := New(cfg, runNext), New(cfg, scalNext)
		r := rng.New(99)
		for step := 0; step < 400; step++ {
			base := uint64(r.Intn(1<<14)) &^ 63
			n := 1 + r.Intn(9)
			kind := Load
			switch r.Intn(3) {
			case 1:
				kind = Store
			case 2:
				kind = Fetch
			}
			run.AccessRun(base, n, kind)
			for i := 0; i < n; i++ {
				scal.Access(base+uint64(i*64), kind)
			}
		}
		if run.Stats() != scal.Stats() {
			t.Fatalf("%v: run stats %+v != scalar %+v", pol, run.Stats(), scal.Stats())
		}
		if !reflect.DeepEqual(runNext.events, scalNext.events) {
			t.Fatalf("%v: downstream transaction sequences diverge", pol)
		}
	}
}

// TestHierarchyRunsMatchScalar pins LoadRun/StoreRun/FetchRun to the per-line
// Load/Store/Fetch calls across policies, prefetchers, zero masks, and the
// page-crossing runs that exercise the TLB bulk-accounting path.
func TestHierarchyRunsMatchScalar(t *testing.T) {
	pfs := []func() Prefetcher{
		func() Prefetcher { return nil },
		func() Prefetcher { return &NextLinePrefetcher{LineB: 64} },
		func() Prefetcher { return &StridePrefetcher{LineB: 64, Degree: 2} },
	}
	for _, pol := range []Policy{LRU, PLRU, SRRIP, Random} {
		for pi, mk := range pfs {
			cfg := DefaultHierarchyConfig()
			cfg.L1I.Policy = pol
			cfg.L1D.Policy = pol
			cfg.L2.Policy = pol
			cfg.LLC.Policy = pol
			cfg.L1DPrefetcher = mk()
			hr, hs := NewHierarchy(cfg), NewHierarchy(cfg)
			r := rng.New(uint64(pi)*131 + 5)
			for step := 0; step < 120; step++ {
				// Long runs cross 4 KiB pages (64 lines of 64 B).
				base := uint64(r.Intn(1<<18)) &^ 63
				n := 1 + r.Intn(100)
				var zero []bool
				if r.Intn(2) == 0 {
					zero = make([]bool, n)
					for i := range zero {
						zero[i] = r.Intn(3) == 0
					}
				}
				switch r.Intn(3) {
				case 0:
					hr.LoadRun(base, n, zero)
					for i := 0; i < n; i++ {
						hs.Load(base+uint64(i*64), zero != nil && zero[i])
					}
				case 1:
					hr.StoreRun(base, n, zero)
					for i := 0; i < n; i++ {
						hs.Store(base+uint64(i*64), zero != nil && zero[i])
					}
				case 2:
					hr.FetchRun(base, n)
					for i := 0; i < n; i++ {
						hs.Fetch(base + uint64(i*64))
					}
				}
			}
			for _, pair := range []struct {
				name     string
				run, sca Stats
			}{
				{"L1I", hr.L1I.Stats(), hs.L1I.Stats()},
				{"L1D", hr.L1D.Stats(), hs.L1D.Stats()},
				{"L2", hr.L2.Stats(), hs.L2.Stats()},
				{"LLC", hr.LLC.Stats(), hs.LLC.Stats()},
			} {
				if pair.run != pair.sca {
					t.Fatalf("%v pf%d %s: run %+v != scalar %+v", pol, pi, pair.name, pair.run, pair.sca)
				}
			}
			if hr.DTLB.Stats() != hs.DTLB.Stats() {
				t.Fatalf("%v pf%d dTLB: run %+v != scalar %+v", pol, pi, hr.DTLB.Stats(), hs.DTLB.Stats())
			}
			if hr.ZeroLoads != hs.ZeroLoads || hr.ZeroStores != hs.ZeroStores {
				t.Fatalf("%v pf%d ZCA: run %d/%d != scalar %d/%d",
					pol, pi, hr.ZeroLoads, hr.ZeroStores, hs.ZeroLoads, hs.ZeroStores)
			}
			if hr.Mem.Accesses != hs.Mem.Accesses {
				t.Fatalf("%v pf%d DRAM: run %d != scalar %d", pol, pi, hr.Mem.Accesses, hs.Mem.Accesses)
			}
		}
	}
}

// TestSRRIPRetouchPromotion verifies that a hit resets a line's re-reference
// prediction to near-immediate (RRPV 0) while untouched lines age: after the
// set fills, the re-touched line must survive the next two victim selections
// and the never-retouched insertion-RRPV lines must go first.
func TestSRRIPRetouchPromotion(t *testing.T) {
	// 1 set × 4 ways: SizeB = 4 * 64, line addresses collide in set 0.
	c := New(Config{Name: "t", SizeB: 256, Ways: 4, LineB: 64, Policy: SRRIP}, &Memory{})
	line := func(i int) uint64 { return uint64(i) << 6 }
	for i := 0; i < 4; i++ {
		c.Access(line(i), Load) // fill; RRPV 2 each
	}
	c.Access(line(0), Load) // re-touch: RRPV 0
	// Miss: aging raises {1,2,3} to 3 before line 0 reaches it; way 1 evicts.
	c.Access(line(4), Load)
	c.Access(line(0), Load)
	c.Access(line(1), Load) // miss: line 1 was evicted, and evicts another aged way
	st := c.Stats()
	if st.Hits != 2 {
		t.Fatalf("retouches should both hit, stats %+v", st)
	}
	c.Access(line(0), Load)
	if got := c.Stats().Hits; got != 3 {
		t.Fatalf("promoted line 0 must survive both evictions, stats %+v", c.Stats())
	}
}

// TestPLRUHitAndFillFlipBits verifies the tree-PLRU bit updates are the same
// on hit and on fill — both must point the tree away from the touched way —
// by checking which way the next victim selection picks.
func TestPLRUHitAndFillFlipBits(t *testing.T) {
	// 1 set × 4 ways. Tree: bit0 root, bit1 left pair (ways 0,1), bit2 right
	// pair (ways 2,3).
	mk := func() *Cache {
		return New(Config{Name: "t", SizeB: 256, Ways: 4, LineB: 64, Policy: PLRU}, &Memory{})
	}
	line := func(i int) uint64 { return uint64(i) << 6 }

	// Fill path: after filling 0,1,2,3 in order the last touch (way 3) points
	// the tree left-left, so the victim is way 0.
	c := mk()
	for i := 0; i < 4; i++ {
		c.Access(line(i), Load)
	}
	c.Access(line(4), Load) // evicts way 0
	if c.Stats().Evictions != 1 {
		t.Fatalf("expected one eviction, stats %+v", c.Stats())
	}
	c.Access(line(0), Load)
	if c.Stats().Misses != 6 {
		t.Fatalf("line 0 must have been the victim (miss on re-access), stats %+v", c.Stats())
	}

	// Hit path: same fill, then a hit on way 0 re-points the tree; the victim
	// becomes way 2 (root flipped right, right-pair bit points at 2).
	c = mk()
	for i := 0; i < 4; i++ {
		c.Access(line(i), Load)
	}
	c.Access(line(0), Load) // hit flips the same bits a fill would
	c.Access(line(4), Load) // evicts way 2
	c.Access(line(2), Load) // must miss
	c.Access(line(0), Load) // must hit — way 0 was protected by its hit
	st := c.Stats()
	if st.Misses != 6 || st.Hits != 2 {
		t.Fatalf("hit-path PLRU update wrong: stats %+v", st)
	}
}

// TestDirtyVictimWriteBackOrdering verifies the run path preserves the exact
// downstream transaction order on dirty evictions: write-back of the victim
// line first, then the fill of the missing line, for each line in run order.
func TestDirtyVictimWriteBackOrdering(t *testing.T) {
	// 1 set × 2 ways, LRU: deterministic victims.
	next := &recLevel{}
	c := New(Config{Name: "t", SizeB: 128, Ways: 2, LineB: 64, Policy: LRU}, next)
	line := func(i int) uint64 { return uint64(i) << 6 }
	c.AccessRun(line(0), 2, Store) // dirty-fill ways 0 and 1
	next.events = nil
	// Both lines of this run evict a dirty line; each must emit write-back
	// then fill, in run order.
	c.AccessRun(line(2), 2, Load)
	want := []recEvent{
		{line(0), Store}, // write-back of victim 0
		{line(2), Load},  // fill
		{line(1), Store}, // write-back of victim 1
		{line(3), Load},  // fill
	}
	if !reflect.DeepEqual(next.events, want) {
		t.Fatalf("transaction order = %v, want %v", next.events, want)
	}
	if st := c.Stats(); st.WriteBacks != 2 || st.Evictions != 2 {
		t.Fatalf("stats %+v, want 2 write-backs / 2 evictions", st)
	}
}

// TestCacheAccessZeroAlloc gates the steady-state allocation behaviour of the
// demand-access paths: after warm-up, neither Access nor AccessRun may touch
// the heap.
func TestCacheAccessZeroAlloc(t *testing.T) {
	for _, pol := range []Policy{LRU, PLRU, SRRIP, Random} {
		c, _ := smallCache(pol)
		r := rng.New(3)
		addrs := make([]uint64, 512)
		for i := range addrs {
			addrs[i] = uint64(r.Intn(1 << 15))
		}
		probe := func() {
			for _, a := range addrs {
				c.Access(a, Load)
			}
			c.AccessRun(0x4000, 32, Store)
		}
		probe() // warm up
		if allocs := testing.AllocsPerRun(10, probe); allocs != 0 {
			t.Fatalf("%v: %v allocs/run, want 0", pol, allocs)
		}
	}
}

// TestHierarchyRunZeroAlloc gates the run-granular hierarchy entry points.
func TestHierarchyRunZeroAlloc(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	zero := make([]bool, 128)
	for i := range zero {
		zero[i] = i%3 == 0
	}
	probe := func() {
		h.LoadRun(0, 128, zero)
		h.StoreRun(1<<14, 128, nil)
		h.FetchRun(1<<16, 16)
	}
	probe()
	if allocs := testing.AllocsPerRun(10, probe); allocs != 0 {
		t.Fatalf("%v allocs/run, want 0", allocs)
	}
}
