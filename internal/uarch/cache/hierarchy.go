package cache

// Prefetcher issues speculative fills into a cache level after demand
// accesses. Prefetch traffic is modelled as ordinary fills (it displaces
// lines and can generate lower-level traffic) but is not counted as a demand
// access by callers of Hierarchy.
type Prefetcher interface {
	// Observe is called with each demand access address (line-aligned) and
	// whether it missed; the prefetcher may issue fills into the target.
	Observe(addr uint64, miss bool, target Level)
	// Fork returns an independent prefetcher of the same configuration in its
	// power-on state, so concurrent hierarchy replicas built from one shared
	// HierarchyConfig do not share stride/confidence state.
	Fork() Prefetcher
	// Reset returns the prefetcher to its power-on state in place, without
	// allocating. Equivalent to replacing it with Fork()'s result.
	Reset()
}

// NextLinePrefetcher fetches addr+LineB on every demand miss.
type NextLinePrefetcher struct {
	LineB int
	// Issued counts prefetches sent.
	Issued uint64
}

// Observe implements Prefetcher.
func (p *NextLinePrefetcher) Observe(addr uint64, miss bool, target Level) {
	if miss {
		p.Issued++
		target.Access(addr+uint64(p.LineB), Prefetch)
	}
}

// Fork implements Prefetcher.
func (p *NextLinePrefetcher) Fork() Prefetcher {
	return &NextLinePrefetcher{LineB: p.LineB}
}

// Reset implements Prefetcher.
func (p *NextLinePrefetcher) Reset() { p.Issued = 0 }

// StridePrefetcher detects a constant line stride over recent accesses and
// runs ahead by Degree lines once locked.
type StridePrefetcher struct {
	LineB  int
	Degree int
	// Issued counts prefetches sent.
	Issued uint64

	last   uint64
	stride int64
	conf   int
}

// Observe implements Prefetcher.
func (p *StridePrefetcher) Observe(addr uint64, miss bool, target Level) {
	if p.last != 0 {
		s := int64(addr) - int64(p.last)
		if s == p.stride && s != 0 {
			if p.conf < 3 {
				p.conf++
			}
		} else {
			p.stride = s
			p.conf = 0
		}
	}
	p.last = addr
	if p.conf >= 2 && p.stride != 0 {
		degree := p.Degree
		if degree <= 0 {
			degree = 2
		}
		for d := 1; d <= degree; d++ {
			p.Issued++
			target.Access(uint64(int64(addr)+p.stride*int64(d)), Prefetch)
		}
	}
}

// Fork implements Prefetcher.
func (p *StridePrefetcher) Fork() Prefetcher {
	return &StridePrefetcher{LineB: p.LineB, Degree: p.Degree}
}

// Reset implements Prefetcher.
func (p *StridePrefetcher) Reset() {
	p.Issued = 0
	p.last = 0
	p.stride = 0
	p.conf = 0
}

// HierarchyConfig describes the full simulated memory system.
type HierarchyConfig struct {
	L1I, L1D, L2, LLC Config
	// L1DPrefetcher optionally attaches a prefetcher to the L1 data cache.
	L1DPrefetcher Prefetcher
	// DTLB configures the data TLB. A zero-valued config disables it.
	DTLB TLBConfig
}

// DefaultHierarchyConfig models a scaled-down desktop part (the paper used
// an Intel i7-9700). Capacities are shrunk in proportion to the lite models'
// working sets so the LLC is contended the way a full-size model contends a
// full-size LLC.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:  Config{Name: "L1I", SizeB: 8 << 10, Ways: 4, LineB: 64, Policy: LRU},
		L1D:  Config{Name: "L1D", SizeB: 8 << 10, Ways: 8, LineB: 64, Policy: LRU},
		L2:   Config{Name: "L2", SizeB: 64 << 10, Ways: 8, LineB: 64, Policy: LRU},
		LLC:  Config{Name: "LLC", SizeB: 64 << 10, Ways: 16, LineB: 64, Policy: LRU},
		DTLB: DefaultDTLBConfig(),
	}
}

// Hierarchy wires L1I and L1D above a unified L2 above the LLC above DRAM,
// and adds the zero-content-aware (ZCA) front-end: loads and stores of cache
// lines whose data is entirely zero are satisfied by a zero-line tag
// structure and never move data (Dusser et al., ICS'09). The instrumented
// engine decides zero-ness from actual activation values.
type Hierarchy struct {
	L1I, L1D, L2, LLC *Cache
	// DTLB is the data TLB (nil when disabled). Every demand data access —
	// including those the ZCA structure absorbs — is translated first,
	// since the zero-line tags are physically indexed; translation traffic
	// is therefore (nearly) input-independent.
	DTLB       *TLB
	Mem        *Memory
	prefetcher Prefetcher

	// ZeroLoads and ZeroStores count accesses absorbed by the ZCA buffer.
	ZeroLoads  uint64
	ZeroStores uint64
}

// NewHierarchy builds the four-level system. The configured L1D prefetcher,
// if any, is forked so that hierarchies built from one shared config never
// share prefetcher state.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	mem := &Memory{}
	llc := New(cfg.LLC, mem)
	l2 := New(cfg.L2, llc)
	var pf Prefetcher
	if cfg.L1DPrefetcher != nil {
		pf = cfg.L1DPrefetcher.Fork()
	}
	h := &Hierarchy{
		L1I:        New(cfg.L1I, l2),
		L1D:        New(cfg.L1D, l2),
		L2:         l2,
		LLC:        llc,
		Mem:        mem,
		prefetcher: pf,
	}
	if cfg.DTLB.Entries > 0 {
		h.DTLB = NewTLB(cfg.DTLB, l2)
	}
	return h
}

// Load issues a demand data load. zero marks the line as all-zero content,
// which the ZCA front-end absorbs.
func (h *Hierarchy) Load(addr uint64, zero bool) {
	if h.DTLB != nil {
		h.DTLB.Translate(addr)
	}
	if zero {
		h.ZeroLoads++
		return
	}
	before := h.L1D.stats.Misses
	h.L1D.Access(addr, Load)
	if h.prefetcher != nil {
		h.prefetcher.Observe(addr, h.L1D.stats.Misses != before, h.L1D)
	}
}

// Store issues a demand data store; all-zero lines are absorbed by the ZCA
// tag structure.
func (h *Hierarchy) Store(addr uint64, zero bool) {
	if h.DTLB != nil {
		h.DTLB.Translate(addr)
	}
	if zero {
		h.ZeroStores++
		return
	}
	h.L1D.Access(addr, Store)
}

// Fetch issues an instruction fetch.
func (h *Hierarchy) Fetch(addr uint64) {
	h.L1I.Access(addr, Fetch)
}

// LoadRun issues n demand loads over the consecutive lines starting at base
// (which must be line-aligned). zero, when non-nil, marks per line whether
// its content is all zero, in which case the ZCA front-end absorbs it. The
// run is behaviour-identical to n Load calls. Per-line event order —
// translate, then ZCA check, then L1D access, then prefetcher observation —
// is part of the contract, because DTLB walks inject page-table traffic into
// the L2 and reordering them against demand fills would change its state and
// therefore the counts. The run is therefore processed one page segment at a
// time: the segment's translations run first (only the first can miss and
// walk; the rest are guaranteed hits with no L2 side effects, so hoisting
// them above the segment's data accesses is invisible), then the segment's
// data accesses — which keeps every walk ordered against demand traffic
// exactly as the scalar interleaving would.
func (h *Hierarchy) LoadRun(base uint64, n int, zero []bool) {
	lineB := uint64(h.L1D.cfg.LineB)
	dtlb, l1d, pf := h.DTLB, h.L1D, h.prefetcher
	addr, i := base, 0
	for i < n {
		k := n - i
		if dtlb != nil {
			if linesLeft := int((dtlb.pageEnd(addr) - addr) / lineB); linesLeft < k {
				k = linesLeft
			}
			dtlb.TranslateRun(addr, lineB, k)
		}
		if zero == nil && pf == nil {
			// Weight streams: no ZCA mask, no prefetcher — hand the whole
			// segment to the tight tag-walking loop.
			l1d.AccessRun(addr, k, Load)
			addr += uint64(k) * lineB
		} else {
			for j := 0; j < k; j++ {
				if zero != nil && zero[i+j] {
					h.ZeroLoads++
				} else if pf != nil {
					before := l1d.stats.Misses
					l1d.Access(addr, Load)
					pf.Observe(addr, l1d.stats.Misses != before, l1d)
				} else {
					l1d.Access(addr, Load)
				}
				addr += lineB
			}
		}
		i += k
	}
}

// StoreRun issues n demand stores over the consecutive lines starting at
// base, behaviour-identical to n Store calls (see LoadRun for the page-
// segment ordering argument).
func (h *Hierarchy) StoreRun(base uint64, n int, zero []bool) {
	lineB := uint64(h.L1D.cfg.LineB)
	dtlb, l1d := h.DTLB, h.L1D
	addr, i := base, 0
	for i < n {
		k := n - i
		if dtlb != nil {
			if linesLeft := int((dtlb.pageEnd(addr) - addr) / lineB); linesLeft < k {
				k = linesLeft
			}
			dtlb.TranslateRun(addr, lineB, k)
		}
		if zero == nil {
			l1d.AccessRun(addr, k, Store)
			addr += uint64(k) * lineB
		} else {
			for j := 0; j < k; j++ {
				if zero[i+j] {
					h.ZeroStores++
				} else {
					l1d.Access(addr, Store)
				}
				addr += lineB
			}
		}
		i += k
	}
}

// FetchRun issues n instruction fetches over the consecutive lines starting
// at base.
func (h *Hierarchy) FetchRun(base uint64, n int) {
	h.L1I.AccessRun(base, n, Fetch)
}

// Reset returns every level (and the ZCA counters) to a cold state. The
// prefetcher is reset to its power-on state so that stride/confidence
// carry-over cannot leak one measurement's access pattern into the next —
// each post-Reset run is a pure function of the inference it observes.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.LLC.Reset()
	if h.prefetcher != nil {
		h.prefetcher.Reset()
	}
	if h.DTLB != nil {
		h.DTLB.Reset()
	}
	h.Mem.Reset()
	h.ZeroLoads = 0
	h.ZeroStores = 0
}
