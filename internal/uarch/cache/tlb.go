package cache

import "math/bits"

// TLBConfig describes a set-associative translation look-aside buffer.
type TLBConfig struct {
	Name    string
	Entries int
	Ways    int
	// PageB is the page size in bytes (power of two; 4 KiB by default).
	PageB int
}

// DefaultDTLBConfig models a small first-level data TLB.
func DefaultDTLBConfig() TLBConfig {
	return TLBConfig{Name: "dTLB", Entries: 64, Ways: 4, PageB: 4096}
}

// Validate panics on degenerate configurations.
func (c TLBConfig) Validate() {
	if c.Entries <= 0 || c.Ways <= 0 || c.PageB <= 0 {
		panic("cache: non-positive TLB geometry")
	}
	if c.PageB&(c.PageB-1) != 0 {
		panic("cache: TLB page size not a power of two")
	}
	if c.Entries%c.Ways != 0 {
		panic("cache: TLB entries not divisible by ways")
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		panic("cache: TLB set count not a power of two")
	}
}

// TLBStats counts translation activity.
type TLBStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	// Walks counts page-table walks (one per miss).
	Walks uint64
}

// TLB is an LRU set-associative translation buffer. A miss triggers a page
// walk, modelled as WalkLevels loads of page-table lines through the walk
// target (the unified L2 in the default hierarchy), so translation misses
// pollute the caches exactly like hardware walkers do.
type TLB struct {
	cfg     TLBConfig
	entries []line
	tick    uint64
	stats   TLBStats
	shift   uint
	setMask uint64
	// WalkTarget absorbs page-walk memory traffic (nil disables the walk
	// side effects; misses are still counted).
	WalkTarget Level
	// WalkLevels is the number of page-table levels touched per walk.
	WalkLevels int
	// walkTableBase is where the simulated page tables live.
	walkTableBase uint64

	// lastPage/lastSlot memoise the most recent translation. Spans walk
	// consecutive lines within a page, so the common case re-translates the
	// page just translated. The slot is re-verified (valid + tag) before
	// use and page tags are unique per set, so the memo is only a search
	// shortcut — hit accounting and LRU stamping are identical to the scan.
	lastPage uint64
	lastSlot int32
}

// NewTLB builds the translation buffer.
func NewTLB(cfg TLBConfig, walkTarget Level) *TLB {
	cfg.Validate()
	sets := cfg.Entries / cfg.Ways
	return &TLB{
		cfg:           cfg,
		entries:       make([]line, cfg.Entries),
		shift:         uint(bits.TrailingZeros(uint(cfg.PageB))),
		setMask:       uint64(sets - 1),
		WalkTarget:    walkTarget,
		WalkLevels:    2,
		walkTableBase: 0x7f00_0000,
		lastSlot:      -1,
	}
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Reset restores the power-on state.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = line{}
	}
	t.tick = 0
	t.stats = TLBStats{}
	t.lastPage, t.lastSlot = 0, -1
}

// Translate looks up the page of addr, walking the page table on a miss.
func (t *TLB) Translate(addr uint64) {
	t.stats.Accesses++
	page := addr >> t.shift
	if t.lastSlot >= 0 && page == t.lastPage {
		if e := &t.entries[t.lastSlot]; e.valid && e.tag == page {
			t.stats.Hits++
			t.tick++
			e.lru = t.tick
			return
		}
	}
	set := page & t.setMask
	base := int(set) * t.cfg.Ways
	ways := t.entries[base : base+t.cfg.Ways]
	for w := range ways {
		if ways[w].valid && ways[w].tag == page {
			t.stats.Hits++
			t.tick++
			ways[w].lru = t.tick
			t.lastPage, t.lastSlot = page, int32(base+w)
			return
		}
	}
	t.stats.Misses++
	t.stats.Walks++
	if t.WalkTarget != nil {
		// Each level of the walk reads one page-table line; the line
		// address is derived from the page number so distinct pages touch
		// distinct (but repeatable) table lines.
		for lvl := 0; lvl < t.WalkLevels; lvl++ {
			entry := t.walkTableBase + uint64(lvl)<<20 + (page>>(uint(lvl)*9))*8
			t.WalkTarget.Access(entry&^63, Load)
		}
	}
	victim := 0
	bestTick := ways[0].lru
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < bestTick {
			victim, bestTick = w, ways[w].lru
		}
	}
	t.tick++
	ways[victim] = line{valid: true, tag: page, lru: t.tick}
	t.lastPage, t.lastSlot = page, int32(base+victim)
}

// pageEnd returns the first address past addr's page.
func (t *TLB) pageEnd(addr uint64) uint64 {
	return (addr>>t.shift + 1) << t.shift
}

// TranslateRun translates n consecutive lines of size lineB starting at addr,
// leaving exactly the statistics, replacement state, and page-walk traffic of
// n individual Translate calls. After the first line of a page is translated
// its entry is resident and nothing else touches the TLB before the run's
// remaining same-page lines, so those are guaranteed hits whose only effects
// are counter increments and a recency restamp — they are accounted in bulk
// instead of re-probed one by one.
func (t *TLB) TranslateRun(addr, lineB uint64, n int) {
	for n > 0 {
		t.Translate(addr)
		// Lines left in this page after addr's; each is a guaranteed hit on
		// the slot Translate just installed (lastSlot).
		pageEnd := (addr>>t.shift + 1) << t.shift
		k := int((pageEnd - addr) / lineB)
		if k > n {
			k = n
		}
		if k > 1 {
			// Scalar equivalent: k-1 × {Accesses++, Hits++, tick++, lru=tick}.
			t.stats.Accesses += uint64(k - 1)
			t.stats.Hits += uint64(k - 1)
			t.tick += uint64(k - 1)
			t.entries[t.lastSlot].lru = t.tick
		}
		addr += uint64(k) * lineB
		n -= k
	}
}
