package cache

import (
	"testing"
	"testing/quick"

	"advhunter/internal/rng"
)

func smallCache(policy Policy) (*Cache, *Memory) {
	mem := &Memory{}
	c := New(Config{Name: "t", SizeB: 1024, Ways: 4, LineB: 64, Policy: policy, Seed: 7}, mem)
	return c, mem
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{Name: "x", SizeB: 32 << 10, Ways: 8, LineB: 64}
	if cfg.Sets() != 64 {
		t.Fatalf("sets = %d, want 64", cfg.Sets())
	}
}

func TestConfigValidatePanics(t *testing.T) {
	bad := []Config{
		{SizeB: 0, Ways: 1, LineB: 64},
		{SizeB: 1024, Ways: 4, LineB: 48},       // non-power-of-two line
		{SizeB: 1000, Ways: 4, LineB: 64},       // not divisible
		{SizeB: 64 * 4 * 3, Ways: 4, LineB: 64}, // 3 sets: not a power of two
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d did not panic", i)
				}
			}()
			cfg.Validate()
		}()
	}
}

func TestHitOnRepeat(t *testing.T) {
	for _, pol := range []Policy{LRU, PLRU, SRRIP, Random} {
		c, _ := smallCache(pol)
		c.Access(0x1000, Load)
		c.Access(0x1000, Load)
		c.Access(0x1008, Load) // same line
		st := c.Stats()
		if st.Misses != 1 || st.Hits != 2 {
			t.Fatalf("%v: misses=%d hits=%d", pol, st.Misses, st.Hits)
		}
	}
}

// Property: hits + misses == accesses for any trace and policy.
func TestAccountingInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		for _, pol := range []Policy{LRU, PLRU, SRRIP, Random} {
			c, _ := smallCache(pol)
			for i := 0; i < 500; i++ {
				addr := uint64(r.Intn(1 << 14))
				kind := AccessKind(r.Intn(3))
				c.Access(addr, kind)
			}
			st := c.Stats()
			if st.Hits+st.Misses != st.Accesses {
				return false
			}
			if st.LoadMisses+st.StoreMisses+st.FetchMisses != st.Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a working set that fits sees no misses after one cold pass (LRU).
func TestFittingWorkingSetConverges(t *testing.T) {
	c, _ := smallCache(LRU) // 1 KiB = 16 lines
	lines := []uint64{0, 64, 128, 192, 256, 320}
	for pass := 0; pass < 3; pass++ {
		for _, a := range lines {
			c.Access(a, Load)
		}
	}
	st := c.Stats()
	if st.Misses != uint64(len(lines)) {
		t.Fatalf("misses = %d, want %d cold misses only", st.Misses, len(lines))
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 4-way cache; hammer one set (set stride = Sets*LineB = 4*64 = 256).
	c, _ := smallCache(LRU)
	set0 := func(i uint64) uint64 { return i * 256 }
	for i := uint64(0); i < 4; i++ {
		c.Access(set0(i), Load)
	}
	c.Access(set0(0), Load) // refresh 0; LRU is now 1
	c.Access(set0(4), Load) // evicts 1
	c.Access(set0(0), Load) // hit
	pre := c.Stats().Hits
	c.Access(set0(1), Load) // must miss (was evicted)
	if c.Stats().Hits != pre {
		t.Fatal("line 1 unexpectedly survived; LRU order broken")
	}
}

func TestWriteBackOnDirtyEviction(t *testing.T) {
	mem := &Memory{}
	c := New(Config{Name: "t", SizeB: 256, Ways: 1, LineB: 64}, mem) // 4 sets, direct-mapped
	c.Access(0x0, Store)                                             // dirty line in set 0; mem: 1 fill
	c.Access(0x400, Load)                                            // same set (stride 256B covers 4 sets ⇒ 0x400 maps to set 0); evicts dirty ⇒ write-back + fill
	if got := c.Stats().WriteBacks; got != 1 {
		t.Fatalf("write-backs = %d, want 1", got)
	}
	if mem.Accesses != 3 { // fill, write-back, fill
		t.Fatalf("memory accesses = %d, want 3", mem.Accesses)
	}
}

func TestCleanEvictionNoWriteBack(t *testing.T) {
	mem := &Memory{}
	c := New(Config{Name: "t", SizeB: 256, Ways: 1, LineB: 64}, mem)
	c.Access(0x0, Load)
	c.Access(0x400, Load)
	if c.Stats().WriteBacks != 0 {
		t.Fatal("clean eviction wrote back")
	}
	if mem.Accesses != 2 {
		t.Fatalf("memory accesses = %d, want 2", mem.Accesses)
	}
}

func TestWriteAllocate(t *testing.T) {
	c, _ := smallCache(LRU)
	c.Access(0x2000, Store)
	pre := c.Stats().Hits
	c.Access(0x2000, Load)
	if c.Stats().Hits != pre+1 {
		t.Fatal("store did not allocate the line")
	}
}

func TestResetColdState(t *testing.T) {
	c, _ := smallCache(LRU)
	c.Access(0x0, Load)
	c.Reset()
	if c.Stats().Accesses != 0 {
		t.Fatal("stats survived reset")
	}
	c.Access(0x0, Load)
	if c.Stats().Misses != 1 {
		t.Fatal("line survived reset")
	}
}

func TestRandomPolicyDeterministicBySeed(t *testing.T) {
	run := func() Stats {
		c, _ := smallCache(Random)
		r := rng.New(99)
		for i := 0; i < 2000; i++ {
			c.Access(uint64(r.Intn(1<<13)), Load)
		}
		return c.Stats()
	}
	if run() != run() {
		t.Fatal("random policy not reproducible with equal seeds")
	}
}

func TestSRRIPTerminates(t *testing.T) {
	c, _ := smallCache(SRRIP)
	r := rng.New(3)
	for i := 0; i < 5000; i++ {
		c.Access(uint64(r.Intn(1<<14)), Load)
	}
	st := c.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Fatal("SRRIP accounting broken")
	}
}

func TestPoliciesDifferOnCyclicScan(t *testing.T) {
	// One hot line re-referenced every iteration plus a one-shot scan
	// through the same set: LRU lets the scan push the hot line out, while
	// SRRIP's re-reference prediction keeps the hot line resident. Set
	// stride is Sets*LineB = 256.
	trace := func(c *Cache) uint64 {
		hot := uint64(0)
		c.Access(hot, Load)
		c.Access(hot, Load) // warm: SRRIP re-reference bit earned
		var hotHits uint64
		scan := uint64(0x100000)
		for rep := 0; rep < 200; rep++ {
			for i := uint64(0); i < 4; i++ {
				c.Access(scan, Load)
				scan += 256
			}
			pre := c.Stats().Hits
			c.Access(hot, Load)
			if c.Stats().Hits != pre {
				hotHits++
			}
		}
		return hotHits
	}
	lru, _ := smallCache(LRU)
	srrip, _ := smallCache(SRRIP)
	lruHot := trace(lru)
	srripHot := trace(srrip)
	if lruHot > 5 {
		t.Fatalf("LRU kept the hot line through a full-set scan (%d hits)", lruHot)
	}
	if srripHot < 100 {
		t.Fatalf("SRRIP hot-line hits = %d, want scan resistance (>=100)", srripHot)
	}
}

func TestHierarchyInclusionOfTraffic(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	r := rng.New(5)
	for i := 0; i < 5000; i++ {
		h.Load(uint64(r.Intn(1<<18)), false)
	}
	l1d := h.L1D.Stats()
	l2 := h.L2.Stats()
	// Every L2 access must be caused by an L1 miss, an L1 write-back, or a
	// page-table walk.
	caused := l1d.Misses + l1d.WriteBacks + h.DTLB.Stats().Walks*uint64(h.DTLB.WalkLevels)
	if l2.Accesses != caused {
		t.Fatalf("L2 accesses %d != L1D misses+writebacks+walks %d", l2.Accesses, caused)
	}
}

func TestHierarchyZCAAbsorbsZeroTraffic(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Load(0x100, true)
	h.Store(0x140, true)
	if h.L1D.Stats().Accesses != 0 {
		t.Fatal("zero-line traffic reached the data cache")
	}
	if h.ZeroLoads != 1 || h.ZeroStores != 1 {
		t.Fatalf("ZCA counters %d/%d", h.ZeroLoads, h.ZeroStores)
	}
}

func TestHierarchyFetchGoesToL1I(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Fetch(0x400000)
	if h.L1I.Stats().Accesses != 1 || h.L1D.Stats().Accesses != 0 {
		t.Fatal("instruction fetch misrouted")
	}
}

func TestNextLinePrefetcherCutsSequentialMisses(t *testing.T) {
	base := DefaultHierarchyConfig()
	plain := NewHierarchy(base)
	pf := base
	pf.L1DPrefetcher = &NextLinePrefetcher{LineB: 64}
	fetching := NewHierarchy(pf)
	for i := uint64(0); i < 4096; i++ {
		plain.Load(i*8, false) // sequential bytes
		fetching.Load(i*8, false)
	}
	if fetching.L1D.Stats().LoadMisses >= plain.L1D.Stats().LoadMisses {
		t.Fatalf("next-line prefetcher did not help: %d vs %d",
			fetching.L1D.Stats().LoadMisses, plain.L1D.Stats().LoadMisses)
	}
}

func TestStridePrefetcherLocksOnStride(t *testing.T) {
	p := &StridePrefetcher{LineB: 64, Degree: 2}
	mem := &Memory{}
	target := New(Config{Name: "t", SizeB: 4096, Ways: 4, LineB: 64}, mem)
	for i := uint64(0); i < 50; i++ {
		p.Observe(i*128, true, target)
	}
	if p.Issued == 0 {
		t.Fatal("stride prefetcher never locked")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, _ := smallCache(LRU)
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], Load)
	}
}

func BenchmarkHierarchyLoad(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(addrs[i&4095], false)
	}
}
