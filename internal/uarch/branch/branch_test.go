package branch

import (
	"testing"
	"testing/quick"
)

func TestStaticPredictsTaken(t *testing.T) {
	c := NewCounted(NewStatic())
	for _, taken := range []bool{true, false, true, true, false} {
		c.Feed(0x10, taken)
	}
	if c.S.Branches != 5 || c.S.Mispredicts != 2 {
		t.Fatalf("static stats: %+v", c.S)
	}
}

func TestTwoBitLearnsConstantStream(t *testing.T) {
	c := NewCounted(NewTwoBit(10))
	for i := 0; i < 100; i++ {
		c.Feed(0x40, true)
	}
	if c.S.Mispredicts > 1 {
		t.Fatalf("two-bit mispredicted a constant stream %d times", c.S.Mispredicts)
	}
	// A constant not-taken stream needs at most 2 transitions.
	c2 := NewCounted(NewTwoBit(10))
	for i := 0; i < 100; i++ {
		c2.Feed(0x80, false)
	}
	if c2.S.Mispredicts > 2 {
		t.Fatalf("two-bit mispredicted constant-NT stream %d times", c2.S.Mispredicts)
	}
}

func TestTwoBitHystersisOnRareFlips(t *testing.T) {
	// T T T N T T T N ... : the single N must not flip the prediction.
	c := NewCounted(NewTwoBit(10))
	miss := 0
	for i := 0; i < 400; i++ {
		taken := i%4 != 3
		pre := c.S.Mispredicts
		c.Feed(0x99, taken)
		if c.S.Mispredicts != pre && taken {
			miss++
		}
	}
	if miss > 2 {
		t.Fatalf("two-bit lost its bias after rare flips (%d taken-mispredicts)", miss)
	}
}

func TestGShareLearnsAlternatingPattern(t *testing.T) {
	// T N T N ... is hard for bimodal but trivial for history-based gshare.
	bimodal := NewCounted(NewTwoBit(12))
	gshare := NewCounted(NewGShare(12, 8))
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		bimodal.Feed(0x123, taken)
		gshare.Feed(0x123, taken)
	}
	if gshare.S.Rate() > 0.05 {
		t.Fatalf("gshare failed the alternating pattern: rate %.3f", gshare.S.Rate())
	}
	if gshare.S.Rate() >= bimodal.S.Rate() {
		t.Fatalf("gshare (%.3f) not better than bimodal (%.3f) on periodic stream",
			gshare.S.Rate(), bimodal.S.Rate())
	}
}

func TestGShareOnRandomStreamNearChance(t *testing.T) {
	g := NewCounted(NewGShare(12, 12))
	for i, taken := range RandomOutcomes(42, 20000, 0.5) {
		g.Feed(uint64(0x200+i%7), taken)
	}
	if r := g.S.Rate(); r < 0.35 || r > 0.65 {
		t.Fatalf("gshare on random stream: rate %.3f, want ~0.5", r)
	}
}

func TestPredictorsExploitBias(t *testing.T) {
	// 90%-taken stream: a learning predictor must beat the 10% floor
	// substantially less than chance.
	g := NewCounted(NewGShare(12, 8))
	for _, taken := range RandomOutcomes(7, 20000, 0.9) {
		g.Feed(0x300, taken)
	}
	if r := g.S.Rate(); r > 0.2 {
		t.Fatalf("gshare on 90%% biased stream: rate %.3f", r)
	}
}

func TestFeedBulkAccounting(t *testing.T) {
	c := NewCounted(NewTwoBit(8))
	c.FeedBulk(0x11, 1000)
	if c.S.Branches != 1000 || c.S.Mispredicts != 1 {
		t.Fatalf("bulk stats %+v", c.S)
	}
	c.FeedBulk(0x11, 0)
	if c.S.Branches != 1000 {
		t.Fatal("zero-iteration bulk changed stats")
	}
}

func TestCountedReset(t *testing.T) {
	c := NewCounted(NewGShare(8, 4))
	c.Feed(1, true)
	c.Reset()
	if c.S.Branches != 0 || c.S.Mispredicts != 0 {
		t.Fatal("reset left stats")
	}
}

func TestRateZeroWhenIdle(t *testing.T) {
	var s Stats
	if s.Rate() != 0 {
		t.Fatal("idle rate")
	}
}

// Property: mispredicts never exceed branches.
func TestMispredictBound(t *testing.T) {
	f := func(seed uint64) bool {
		c := NewCounted(NewGShare(10, 6))
		for i, taken := range RandomOutcomes(seed, 500, 0.7) {
			c.Feed(uint64(i%13), taken)
		}
		return c.S.Mispredicts <= c.S.Branches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorNames(t *testing.T) {
	for _, p := range []Predictor{NewStatic(), NewTwoBit(4), NewGShare(4, 2)} {
		if p.Name() == "" {
			t.Fatal("empty predictor name")
		}
	}
}

func BenchmarkGShare(b *testing.B) {
	g := NewGShare(12, 12)
	for i := 0; i < b.N; i++ {
		g.Predict(uint64(i&1023), i&3 != 0)
	}
}
