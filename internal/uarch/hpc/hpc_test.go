package hpc

import (
	"math"
	"testing"

	"advhunter/internal/uarch/branch"
	"advhunter/internal/uarch/cache"
)

func TestEventStringParseRoundTrip(t *testing.T) {
	for _, e := range AllEvents() {
		got, err := ParseEvent(e.String())
		if err != nil || got != e {
			t.Fatalf("round trip failed for %v: %v %v", e, got, err)
		}
	}
	if _, err := ParseEvent("tlb-misses"); err == nil {
		t.Fatal("expected error for unknown event")
	}
}

func TestEventGroups(t *testing.T) {
	if len(CoreEvents()) != 5 {
		t.Fatal("core events")
	}
	if len(CacheAblationEvents()) != 4 {
		t.Fatal("ablation events")
	}
	if len(AllEvents()) != int(NumEvents) {
		t.Fatal("all events")
	}
}

func TestCollectMapping(t *testing.T) {
	cfg := cache.DefaultHierarchyConfig()
	cfg.DTLB = cache.TLBConfig{} // disable translation so counts stay exact
	h := cache.NewHierarchy(cfg)
	bp := branch.NewCounted(branch.NewGShare(10, 8))
	// Generate known activity: two distinct cold lines + one hit.
	h.Load(0x1000, false)
	h.Load(0x1000, false)
	h.Load(0x2000, false)
	h.Store(0x3000, false)
	h.Fetch(0x400000)
	bp.Feed(1, true)
	bp.Feed(1, true)
	bp.Feed(1, false)

	c := Collect(1234, h, bp)
	if c.Get(Instructions) != 1234 {
		t.Fatal("instructions")
	}
	if c.Get(Branches) != 3 {
		t.Fatal("branches")
	}
	if c.Get(BranchMisses) == 0 || c.Get(BranchMisses) > 3 {
		t.Fatalf("branch misses %v", c.Get(BranchMisses))
	}
	if c.Get(L1DLoadMisses) != 2 {
		t.Fatalf("l1d load misses %v", c.Get(L1DLoadMisses))
	}
	if c.Get(L1ILoadMisses) != 1 {
		t.Fatalf("l1i misses %v", c.Get(L1ILoadMisses))
	}
	// Cold hierarchy: every L2 miss reaches the LLC and misses it.
	if c.Get(CacheReferences) != 4 || c.Get(CacheMisses) != 4 {
		t.Fatalf("LLC refs/misses %v/%v", c.Get(CacheReferences), c.Get(CacheMisses))
	}
	if c.Get(LLCLoadMisses)+c.Get(LLCStoreMisses) != c.Get(CacheMisses) {
		t.Fatal("LLC miss split inconsistent")
	}
}

func TestSamplerDeterministic(t *testing.T) {
	truth := Counts{1e6, 2e5, 1e4, 5e3, 800, 2e3, 100, 600, 200, 50}
	a := NewSampler(DefaultNoise(), 42).Sample(truth)
	b := NewSampler(DefaultNoise(), 42).Sample(truth)
	if a != b {
		t.Fatal("equal-seed samplers diverged")
	}
	c := NewSampler(DefaultNoise(), 43).Sample(truth)
	if a == c {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestSampleNonNegativeAndUnbiasedish(t *testing.T) {
	truth := Counts{1e6, 2e5, 1e4, 5e3, 800, 2e3, 100, 600, 200, 50}
	s := NewSampler(DefaultNoise(), 7)
	var acc Counts
	const n = 3000
	for i := 0; i < n; i++ {
		one := s.Sample(truth)
		for e := range acc {
			if one[e] < 0 {
				t.Fatal("negative counter reading")
			}
			acc[e] += one[e]
		}
	}
	for e := Event(0); e < NumEvents; e++ {
		mean := acc[e] / n
		// Background contamination only adds counts: mean must sit at or
		// slightly above truth, never far below.
		if mean < truth[e]*0.99 {
			t.Fatalf("%v mean %.1f below truth %.1f", e, mean, truth[e])
		}
		if mean > truth[e]*1.6+50 {
			t.Fatalf("%v mean %.1f wildly above truth %.1f", e, mean, truth[e])
		}
	}
}

func TestRepeatsReduceVariance(t *testing.T) {
	truth := Counts{}
	truth[CacheMisses] = 1000
	varOf := func(repeats int) float64 {
		s := NewSampler(DefaultNoise(), 11)
		var vals []float64
		for i := 0; i < 400; i++ {
			vals = append(vals, s.MeasureMean(truth, repeats)[CacheMisses])
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var variance float64
		for _, v := range vals {
			variance += (v - mean) * (v - mean)
		}
		return variance / float64(len(vals))
	}
	v1, v10 := varOf(1), varOf(10)
	if v10 >= v1 {
		t.Fatalf("R=10 variance %.2f not below R=1 variance %.2f", v10, v1)
	}
	if v10 > v1/3 {
		t.Fatalf("averaging barely helped: %.2f vs %.2f", v10, v1)
	}
}

func TestNoiseDisturbsQuietEventsLess(t *testing.T) {
	// The relative disturbance of LLC misses must be smaller than that of
	// instructions: this is what makes cache events usable at all.
	truth := Counts{}
	truth[Instructions] = 1e6
	truth[CacheMisses] = 1e6 // same magnitude to compare floors fairly
	s := NewSampler(DefaultNoise(), 13)
	var devI, devM float64
	const n = 2000
	for i := 0; i < n; i++ {
		one := s.Sample(truth)
		devI += math.Abs(one[Instructions] - truth[Instructions])
		devM += math.Abs(one[CacheMisses] - truth[CacheMisses])
	}
	if devM >= devI {
		t.Fatalf("cache-miss readings noisier than instructions: %.0f vs %.0f", devM, devI)
	}
}

func TestMeasureMeanPanicsOnZeroRepeats(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSampler(DefaultNoise(), 1).MeasureMean(Counts{}, 0)
}

func TestEventTextMarshalling(t *testing.T) {
	b, err := CacheMisses.MarshalText()
	if err != nil || string(b) != "cache-misses" {
		t.Fatalf("marshal: %q %v", b, err)
	}
	var e Event
	if err := e.UnmarshalText([]byte("LLC-load-misses")); err != nil || e != LLCLoadMisses {
		t.Fatalf("unmarshal: %v %v", e, err)
	}
	if err := e.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("expected error")
	}
}
