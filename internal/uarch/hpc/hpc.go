// Package hpc models the Hardware Performance Counter interface of the
// simulated machine: the nine perf events the paper studies, a counter bank
// populated from the cache hierarchy and branch predictor, and the
// measurement-noise model (background-process interference) that motivates
// the paper's R-fold repetition of every reading.
package hpc

import (
	"fmt"

	"advhunter/internal/rng"
	"advhunter/internal/uarch/branch"
	"advhunter/internal/uarch/cache"
)

// Event identifies one perf-style counter.
type Event int

// The five core events plus the four cache-miss sub-events of the ablation
// study (Section 6 of the paper).
const (
	Instructions Event = iota
	Branches
	BranchMisses
	CacheReferences
	CacheMisses
	L1DLoadMisses
	L1ILoadMisses
	LLCLoadMisses
	LLCStoreMisses
	DTLBLoadMisses
	NumEvents // sentinel
)

// String returns the perf-tool spelling of the event.
func (e Event) String() string {
	switch e {
	case Instructions:
		return "instructions"
	case Branches:
		return "branches"
	case BranchMisses:
		return "branch-misses"
	case CacheReferences:
		return "cache-references"
	case CacheMisses:
		return "cache-misses"
	case L1DLoadMisses:
		return "L1-dcache-load-misses"
	case L1ILoadMisses:
		return "L1-icache-load-misses"
	case LLCLoadMisses:
		return "LLC-load-misses"
	case LLCStoreMisses:
		return "LLC-store-misses"
	case DTLBLoadMisses:
		return "dTLB-load-misses"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// ParseEvent maps a perf-tool event name back to its identifier.
func ParseEvent(name string) (Event, error) {
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("hpc: unknown event %q", name)
}

// CoreEvents returns the five events of the paper's main evaluation.
func CoreEvents() []Event {
	return []Event{Instructions, Branches, BranchMisses, CacheReferences, CacheMisses}
}

// CacheAblationEvents returns the four cache-miss sub-events of the paper's
// ablation study.
func CacheAblationEvents() []Event {
	return []Event{L1DLoadMisses, L1ILoadMisses, LLCLoadMisses, LLCStoreMisses}
}

// AllEvents returns every modelled event.
func AllEvents() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// Counts is one full reading of the counter bank (true, noise-free values;
// stored as float64 because downstream statistics are real-valued).
type Counts [NumEvents]float64

// Get returns the value of one event.
func (c Counts) Get(e Event) float64 { return c[e] }

// Collect derives a Counts snapshot from the simulated hardware after an
// inference run. instructions is the architectural retired-instruction
// count maintained by the engine.
//
// Event mapping (matching how the perf generic events alias on Intel parts):
// cache-references / cache-misses count demand traffic reaching the LLC and
// missing it; LLC-load-misses / LLC-store-misses split LLC misses by kind;
// L1-dcache-load-misses and L1-icache-load-misses come from the private L1s.
func Collect(instructions uint64, h *cache.Hierarchy, bp *branch.Counted) Counts {
	var c Counts
	llc := h.LLC.Stats()
	l1d := h.L1D.Stats()
	l1i := h.L1I.Stats()
	c[Instructions] = float64(instructions)
	c[Branches] = float64(bp.S.Branches)
	c[BranchMisses] = float64(bp.S.Mispredicts)
	c[CacheReferences] = float64(llc.Accesses)
	c[CacheMisses] = float64(llc.Misses)
	c[L1DLoadMisses] = float64(l1d.LoadMisses)
	c[L1ILoadMisses] = float64(l1i.FetchMisses)
	c[LLCLoadMisses] = float64(llc.LoadMisses + llc.FetchMisses)
	c[LLCStoreMisses] = float64(llc.StoreMisses)
	if h.DTLB != nil {
		c[DTLBLoadMisses] = float64(h.DTLB.Stats().Misses)
	}
	return c
}

// NoiseModel describes measurement disturbance from background activity.
// A reading of a true count t for event e is distributed as
//
//	t·(1 + N(0, Rel)) + |N(0, EventRel[e]·t)| + spike
//
// where Rel is the base jitter every counter shows (cycle drift, counter
// multiplexing), EventRel is per-event background contamination, and spike
// is an occasional large disturbance (a context switch landing inside the
// measured region) of size SpikeScale·EventRel[e]·t.
type NoiseModel struct {
	// Rel is the relative jitter applied to every event.
	Rel float64
	// EventRel is the per-event relative scale of additive background
	// contamination.
	EventRel [NumEvents]float64
	// AbsFloor is a per-event absolute contamination floor (counts added by
	// background activity even when the measured process generates none,
	// e.g. write-backs from other processes landing in the counting window).
	AbsFloor [NumEvents]float64
	// SpikeProb is the per-reading probability of a contamination spike.
	SpikeProb float64
	// SpikeScale multiplies the additive contamination during a spike.
	SpikeScale float64
}

// DefaultNoise reflects the character of run-to-run `perf stat` variation
// on a desktop: high-rate events (instructions, branches) absorb lots of
// background activity; generic cache-references additionally counts
// speculative and prefetcher LLC probes, making it by far the noisiest
// cache event; demand-miss counts are comparatively quiet, with store-side
// (write-back) counts noisier than load-side ones because write-back timing
// depends on eviction pressure from other processes.
func DefaultNoise() NoiseModel {
	m := NoiseModel{Rel: 0.005, SpikeProb: 0.02, SpikeScale: 8}
	m.EventRel[Instructions] = 0.03
	m.EventRel[Branches] = 0.03
	m.EventRel[BranchMisses] = 0.05
	m.EventRel[CacheReferences] = 0.35
	m.EventRel[CacheMisses] = 0.004
	m.EventRel[L1DLoadMisses] = 0.01
	m.EventRel[L1ILoadMisses] = 0.02
	m.EventRel[LLCLoadMisses] = 0.006
	m.EventRel[LLCStoreMisses] = 0.04
	m.EventRel[DTLBLoadMisses] = 0.05
	m.AbsFloor[BranchMisses] = 6
	m.AbsFloor[LLCStoreMisses] = 10
	m.AbsFloor[L1ILoadMisses] = 2
	return m
}

// Sampler draws noisy readings of a true counter snapshot.
type Sampler struct {
	Model NoiseModel
	r     *rng.Rand
}

// NewSampler builds a sampler with its own deterministic noise stream.
func NewSampler(model NoiseModel, seed uint64) *Sampler {
	return &Sampler{Model: model, r: rng.New(seed)}
}

// NewSamplerFrom builds a sampler around an existing noise stream. It is the
// hook for per-sample noise re-keying: callers fork one stream per sample so
// that reading i is a pure function of (model, truth, seed, i) and therefore
// independent of which worker performs it.
func NewSamplerFrom(model NoiseModel, r *rng.Rand) *Sampler {
	return &Sampler{Model: model, r: r}
}

// Sample returns one noisy reading of the true counts.
func (s *Sampler) Sample(truth Counts) Counts {
	var out Counts
	for e := Event(0); e < NumEvents; e++ {
		t := truth[e]
		v := t * (1 + s.r.Normal(0, s.Model.Rel))
		contam := s.Model.EventRel[e]*t + s.Model.AbsFloor[e]
		if contam > 0 {
			n := s.r.Normal(0, contam)
			if n < 0 {
				n = -n
			}
			v += n
		}
		if s.r.Float64() < s.Model.SpikeProb {
			v += s.Model.SpikeScale * contam
		}
		if v < 0 {
			v = 0
		}
		out[e] = v
	}
	return out
}

// MeasureMean simulates the paper's protocol: read the counters R times and
// keep the per-event mean (Section 5.2's Ē statistics).
func (s *Sampler) MeasureMean(truth Counts, repeats int) Counts {
	if repeats <= 0 {
		panic("hpc: non-positive repeat count")
	}
	var acc Counts
	for i := 0; i < repeats; i++ {
		one := s.Sample(truth)
		for e := range acc {
			acc[e] += one[e]
		}
	}
	for e := range acc {
		acc[e] /= float64(repeats)
	}
	return acc
}

// MarshalText lets events serve as JSON map keys and text fields.
func (e Event) MarshalText() ([]byte, error) { return []byte(e.String()), nil }

// UnmarshalText parses the perf spelling of an event.
func (e *Event) UnmarshalText(b []byte) error {
	ev, err := ParseEvent(string(b))
	if err != nil {
		return err
	}
	*e = ev
	return nil
}
