// Package models provides the CNN zoo used by the evaluation scenarios:
// the 4-conv case-study network of the paper's Figure 1 plus scaled-down
// ("lite") versions of the EfficientNet, ResNet-18, DenseNet and GoogLeNet
// families. Widths and depths are reduced so that pure-Go single-core
// training converges in seconds-to-minutes, while each family keeps its
// characteristic block structure (MBConv + squeeze-excite, residual basic
// blocks, dense concatenation growth, inception branches) so the
// instrumented engine exercises the same data-flow shapes as the originals.
package models

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"advhunter/internal/nn"
	"advhunter/internal/tensor"
)

// Meta records the input/output contract of a model.
type Meta struct {
	Arch    string
	InC     int
	InH     int
	InW     int
	Classes int
}

// Model is a named network with its input/output metadata.
type Model struct {
	Meta Meta
	Net  *nn.Sequential
}

// Logits runs an inference-mode forward pass over a batch [N,C,H,W].
func (m *Model) Logits(x *tensor.Tensor) *tensor.Tensor {
	return m.Net.Forward(x, false)
}

// Predict classifies a single image [C,H,W] and returns the hard label —
// exactly the access a hard-label black-box defender has.
func (m *Model) Predict(x *tensor.Tensor) int {
	batch := x.Reshape(1, m.Meta.InC, m.Meta.InH, m.Meta.InW)
	return m.Logits(batch).Argmax()
}

// PredictBatch classifies a batch and returns per-row hard labels.
func (m *Model) PredictBatch(x *tensor.Tensor) []int {
	logits := m.Logits(x)
	n, c := logits.Dim(0), logits.Dim(1)
	out := make([]int, n)
	ld := logits.Data()
	for i := 0; i < n; i++ {
		best, bestV := 0, ld[i*c]
		for j := 1; j < c; j++ {
			if ld[i*c+j] > bestV {
				best, bestV = j, ld[i*c+j]
			}
		}
		out[i] = best
	}
	return out
}

// state is the serialised form of a model: architecture metadata plus every
// tensor keyed by a unique name.
type state struct {
	Meta    Meta
	Tensors map[string][]float64
}

// stateTensors enumerates every persistent tensor of the model: trainable
// parameters plus batch-norm running statistics. Keys are unique because
// layer labels are unique within each architecture.
func (m *Model) stateTensors() map[string]*tensor.Tensor {
	ts := make(map[string]*tensor.Tensor)
	for _, p := range m.Net.Params() {
		if _, dup := ts[p.Name]; dup {
			panic(fmt.Sprintf("models: duplicate parameter name %q in %s", p.Name, m.Meta.Arch))
		}
		ts[p.Name] = p.Value
	}
	m.Net.Walk(func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			ts[bn.Name()+".running_mean"] = bn.RunningMean
			ts[bn.Name()+".running_var"] = bn.RunningVar
		}
	})
	return ts
}

// Save serialises the model parameters to path (gob format), creating parent
// directories as needed.
func (m *Model) Save(path string) error {
	st := state{Meta: m.Meta, Tensors: make(map[string][]float64)}
	for name, t := range m.stateTensors() {
		st.Tensors[name] = append([]float64(nil), t.Data()...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return fmt.Errorf("models: encoding %s: %w", m.Meta.Arch, err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Load restores parameters saved by Save into an architecture-compatible
// model (the model must already be constructed with matching Meta).
func (m *Model) Load(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var st state
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&st); err != nil {
		return fmt.Errorf("models: decoding %s: %w", path, err)
	}
	if st.Meta != m.Meta {
		return fmt.Errorf("models: checkpoint meta %+v does not match model %+v", st.Meta, m.Meta)
	}
	ts := m.stateTensors()
	if len(ts) != len(st.Tensors) {
		return fmt.Errorf("models: checkpoint has %d tensors, model has %d", len(st.Tensors), len(ts))
	}
	for name, t := range ts {
		data, ok := st.Tensors[name]
		if !ok {
			return fmt.Errorf("models: checkpoint missing tensor %q", name)
		}
		if len(data) != t.Len() {
			return fmt.Errorf("models: tensor %q has %d values, want %d", name, len(data), t.Len())
		}
		copy(t.Data(), data)
	}
	return nil
}

// Clone returns a replica of the model that shares its weight tensors with
// the receiver but owns all per-forward mutable state (layer caches, gradient
// accumulators). Replicas support concurrent inference-mode Forward/Backward
// — one per worker in parallel measurement and attack-crafting loops — at a
// per-replica cost of the layer structs only, not the weights.
func (m *Model) Clone() *Model {
	return &Model{Meta: m.Meta, Net: nn.CloneShared(m.Net)}
}

// ParamCount returns the total number of trainable scalars.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.Net.Params() {
		n += p.Value.Len()
	}
	return n
}

// ReLULayers returns the model's ReLU layers in network order; the Figure-1
// activation study attaches recorders to them.
func (m *Model) ReLULayers() []*nn.ReLU {
	var rs []*nn.ReLU
	m.Net.Walk(func(l nn.Layer) {
		if r, ok := l.(*nn.ReLU); ok {
			rs = append(rs, r)
		}
	})
	return rs
}

// Architectures lists the registered architecture names in sorted order.
func Architectures() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// builder constructs a freshly initialised model.
type builder func(meta Meta, seed uint64) *Model

var builders = map[string]builder{
	"simplecnn":    buildSimpleCNN,
	"efficientnet": buildEfficientNetLite,
	"resnet18":     buildResNet18Lite,
	"densenet":     buildDenseNetLite,
	"googlenet":    buildGoogLeNetLite,
}

// Build constructs an initialised model of the named architecture for the
// given input geometry and class count. The seed fully determines the
// initial weights.
func Build(arch string, inC, inH, inW, classes int, seed uint64) (*Model, error) {
	b, ok := builders[arch]
	if !ok {
		return nil, fmt.Errorf("models: unknown architecture %q (have %v)", arch, Architectures())
	}
	meta := Meta{Arch: arch, InC: inC, InH: inH, InW: inW, Classes: classes}
	return b(meta, seed), nil
}

// MustBuild is Build for static architecture names; it panics on error.
func MustBuild(arch string, inC, inH, inW, classes int, seed uint64) *Model {
	m, err := Build(arch, inC, inH, inW, classes, seed)
	if err != nil {
		panic(err)
	}
	return m
}
